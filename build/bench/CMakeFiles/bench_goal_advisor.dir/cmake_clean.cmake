file(REMOVE_RECURSE
  "CMakeFiles/bench_goal_advisor.dir/bench_goal_advisor.cc.o"
  "CMakeFiles/bench_goal_advisor.dir/bench_goal_advisor.cc.o.d"
  "bench_goal_advisor"
  "bench_goal_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_goal_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
