# Empty dependencies file for bench_goal_advisor.
# This may be replaced when dependencies are built.
