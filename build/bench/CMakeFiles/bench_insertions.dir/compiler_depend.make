# Empty compiler generated dependencies file for bench_insertions.
# This may be replaced when dependencies are built.
