file(REMOVE_RECURSE
  "CMakeFiles/bench_insertions.dir/bench_insertions.cc.o"
  "CMakeFiles/bench_insertions.dir/bench_insertions.cc.o.d"
  "bench_insertions"
  "bench_insertions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_insertions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
