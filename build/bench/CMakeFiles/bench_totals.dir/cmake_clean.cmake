file(REMOVE_RECURSE
  "CMakeFiles/bench_totals.dir/bench_totals.cc.o"
  "CMakeFiles/bench_totals.dir/bench_totals.cc.o.d"
  "bench_totals"
  "bench_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
