# Empty dependencies file for bench_totals.
# This may be replaced when dependencies are built.
