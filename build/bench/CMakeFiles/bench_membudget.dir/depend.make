# Empty dependencies file for bench_membudget.
# This may be replaced when dependencies are built.
