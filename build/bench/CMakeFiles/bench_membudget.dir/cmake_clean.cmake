file(REMOVE_RECURSE
  "CMakeFiles/bench_membudget.dir/bench_membudget.cc.o"
  "CMakeFiles/bench_membudget.dir/bench_membudget.cc.o.d"
  "bench_membudget"
  "bench_membudget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_membudget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
