file(REMOVE_RECURSE
  "CMakeFiles/advisor_shootout.dir/advisor_shootout.cpp.o"
  "CMakeFiles/advisor_shootout.dir/advisor_shootout.cpp.o.d"
  "advisor_shootout"
  "advisor_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
