# Empty dependencies file for advisor_shootout.
# This may be replaced when dependencies are built.
