file(REMOVE_RECURSE
  "CMakeFiles/goal_driven_tuning.dir/goal_driven_tuning.cpp.o"
  "CMakeFiles/goal_driven_tuning.dir/goal_driven_tuning.cpp.o.d"
  "goal_driven_tuning"
  "goal_driven_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/goal_driven_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
