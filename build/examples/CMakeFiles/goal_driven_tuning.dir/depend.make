# Empty dependencies file for goal_driven_tuning.
# This may be replaced when dependencies are built.
