# Empty compiler generated dependencies file for tabbench_cli.
# This may be replaced when dependencies are built.
