file(REMOVE_RECURSE
  "CMakeFiles/tabbench_cli.dir/tabbench_cli.cpp.o"
  "CMakeFiles/tabbench_cli.dir/tabbench_cli.cpp.o.d"
  "tabbench_cli"
  "tabbench_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tabbench_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
