file(REMOVE_RECURSE
  "CMakeFiles/nref_exploration.dir/nref_exploration.cpp.o"
  "CMakeFiles/nref_exploration.dir/nref_exploration.cpp.o.d"
  "nref_exploration"
  "nref_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nref_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
