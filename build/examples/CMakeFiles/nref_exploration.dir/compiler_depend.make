# Empty compiler generated dependencies file for nref_exploration.
# This may be replaced when dependencies are built.
