
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/advisor_test.cc" "tests/CMakeFiles/tabbench_tests.dir/advisor_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/advisor_test.cc.o.d"
  "/root/repo/tests/analyze_test.cc" "tests/CMakeFiles/tabbench_tests.dir/analyze_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/analyze_test.cc.o.d"
  "/root/repo/tests/btree_test.cc" "tests/CMakeFiles/tabbench_tests.dir/btree_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/btree_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/tabbench_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/core_test.cc" "tests/CMakeFiles/tabbench_tests.dir/core_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/core_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/tabbench_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/engine_test.cc" "tests/CMakeFiles/tabbench_tests.dir/engine_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/engine_test.cc.o.d"
  "/root/repo/tests/equivalence_test.cc" "tests/CMakeFiles/tabbench_tests.dir/equivalence_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/equivalence_test.cc.o.d"
  "/root/repo/tests/exec_context_test.cc" "tests/CMakeFiles/tabbench_tests.dir/exec_context_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/exec_context_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/tabbench_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/extensions_test.cc" "tests/CMakeFiles/tabbench_tests.dir/extensions_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/extensions_test.cc.o.d"
  "/root/repo/tests/goal_advisor_test.cc" "tests/CMakeFiles/tabbench_tests.dir/goal_advisor_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/goal_advisor_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tabbench_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/tabbench_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/sql_test.cc" "tests/CMakeFiles/tabbench_tests.dir/sql_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/sql_test.cc.o.d"
  "/root/repo/tests/stats_test.cc" "tests/CMakeFiles/tabbench_tests.dir/stats_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/stats_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/tabbench_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/tabbench_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/tabbench_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/value_test.cc" "tests/CMakeFiles/tabbench_tests.dir/value_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/value_test.cc.o.d"
  "/root/repo/tests/workload_io_test.cc" "tests/CMakeFiles/tabbench_tests.dir/workload_io_test.cc.o" "gcc" "tests/CMakeFiles/tabbench_tests.dir/workload_io_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_goalcore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
