# Empty dependencies file for tabbench_tests.
# This may be replaced when dependencies are built.
