
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/btree.cc" "src/CMakeFiles/tb_storage.dir/storage/btree.cc.o" "gcc" "src/CMakeFiles/tb_storage.dir/storage/btree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tb_storage.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tb_storage.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/heap_table.cc" "src/CMakeFiles/tb_storage.dir/storage/heap_table.cc.o" "gcc" "src/CMakeFiles/tb_storage.dir/storage/heap_table.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/CMakeFiles/tb_storage.dir/storage/page_store.cc.o" "gcc" "src/CMakeFiles/tb_storage.dir/storage/page_store.cc.o.d"
  "/root/repo/src/storage/stats_collector.cc" "src/CMakeFiles/tb_storage.dir/storage/stats_collector.cc.o" "gcc" "src/CMakeFiles/tb_storage.dir/storage/stats_collector.cc.o.d"
  "/root/repo/src/storage/tuple_codec.cc" "src/CMakeFiles/tb_storage.dir/storage/tuple_codec.cc.o" "gcc" "src/CMakeFiles/tb_storage.dir/storage/tuple_codec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
