file(REMOVE_RECURSE
  "libtb_storage.a"
)
