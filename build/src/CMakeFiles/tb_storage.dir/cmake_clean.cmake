file(REMOVE_RECURSE
  "CMakeFiles/tb_storage.dir/storage/btree.cc.o"
  "CMakeFiles/tb_storage.dir/storage/btree.cc.o.d"
  "CMakeFiles/tb_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/tb_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/tb_storage.dir/storage/heap_table.cc.o"
  "CMakeFiles/tb_storage.dir/storage/heap_table.cc.o.d"
  "CMakeFiles/tb_storage.dir/storage/page_store.cc.o"
  "CMakeFiles/tb_storage.dir/storage/page_store.cc.o.d"
  "CMakeFiles/tb_storage.dir/storage/stats_collector.cc.o"
  "CMakeFiles/tb_storage.dir/storage/stats_collector.cc.o.d"
  "CMakeFiles/tb_storage.dir/storage/tuple_codec.cc.o"
  "CMakeFiles/tb_storage.dir/storage/tuple_codec.cc.o.d"
  "libtb_storage.a"
  "libtb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
