# Empty dependencies file for tb_storage.
# This may be replaced when dependencies are built.
