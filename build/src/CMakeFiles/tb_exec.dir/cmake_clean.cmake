file(REMOVE_RECURSE
  "CMakeFiles/tb_exec.dir/exec/exec_context.cc.o"
  "CMakeFiles/tb_exec.dir/exec/exec_context.cc.o.d"
  "CMakeFiles/tb_exec.dir/exec/operators.cc.o"
  "CMakeFiles/tb_exec.dir/exec/operators.cc.o.d"
  "CMakeFiles/tb_exec.dir/exec/plan.cc.o"
  "CMakeFiles/tb_exec.dir/exec/plan.cc.o.d"
  "CMakeFiles/tb_exec.dir/exec/plan_executor.cc.o"
  "CMakeFiles/tb_exec.dir/exec/plan_executor.cc.o.d"
  "CMakeFiles/tb_exec.dir/exec/plan_validate.cc.o"
  "CMakeFiles/tb_exec.dir/exec/plan_validate.cc.o.d"
  "libtb_exec.a"
  "libtb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
