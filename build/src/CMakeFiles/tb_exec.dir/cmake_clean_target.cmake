file(REMOVE_RECURSE
  "libtb_exec.a"
)
