# Empty dependencies file for tb_exec.
# This may be replaced when dependencies are built.
