
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/exec_context.cc" "src/CMakeFiles/tb_exec.dir/exec/exec_context.cc.o" "gcc" "src/CMakeFiles/tb_exec.dir/exec/exec_context.cc.o.d"
  "/root/repo/src/exec/operators.cc" "src/CMakeFiles/tb_exec.dir/exec/operators.cc.o" "gcc" "src/CMakeFiles/tb_exec.dir/exec/operators.cc.o.d"
  "/root/repo/src/exec/plan.cc" "src/CMakeFiles/tb_exec.dir/exec/plan.cc.o" "gcc" "src/CMakeFiles/tb_exec.dir/exec/plan.cc.o.d"
  "/root/repo/src/exec/plan_executor.cc" "src/CMakeFiles/tb_exec.dir/exec/plan_executor.cc.o" "gcc" "src/CMakeFiles/tb_exec.dir/exec/plan_executor.cc.o.d"
  "/root/repo/src/exec/plan_validate.cc" "src/CMakeFiles/tb_exec.dir/exec/plan_validate.cc.o" "gcc" "src/CMakeFiles/tb_exec.dir/exec/plan_validate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
