# Empty compiler generated dependencies file for tb_sql.
# This may be replaced when dependencies are built.
