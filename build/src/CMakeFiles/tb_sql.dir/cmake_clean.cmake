file(REMOVE_RECURSE
  "CMakeFiles/tb_sql.dir/sql/ast.cc.o"
  "CMakeFiles/tb_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/tb_sql.dir/sql/binder.cc.o"
  "CMakeFiles/tb_sql.dir/sql/binder.cc.o.d"
  "CMakeFiles/tb_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/tb_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/tb_sql.dir/sql/parser.cc.o"
  "CMakeFiles/tb_sql.dir/sql/parser.cc.o.d"
  "libtb_sql.a"
  "libtb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
