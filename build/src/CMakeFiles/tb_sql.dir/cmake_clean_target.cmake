file(REMOVE_RECURSE
  "libtb_sql.a"
)
