file(REMOVE_RECURSE
  "libtb_advisor.a"
)
