# Empty dependencies file for tb_advisor.
# This may be replaced when dependencies are built.
