file(REMOVE_RECURSE
  "CMakeFiles/tb_advisor.dir/advisor/advisor.cc.o"
  "CMakeFiles/tb_advisor.dir/advisor/advisor.cc.o.d"
  "CMakeFiles/tb_advisor.dir/advisor/candidates.cc.o"
  "CMakeFiles/tb_advisor.dir/advisor/candidates.cc.o.d"
  "CMakeFiles/tb_advisor.dir/advisor/goal_advisor.cc.o"
  "CMakeFiles/tb_advisor.dir/advisor/goal_advisor.cc.o.d"
  "CMakeFiles/tb_advisor.dir/advisor/profiles.cc.o"
  "CMakeFiles/tb_advisor.dir/advisor/profiles.cc.o.d"
  "libtb_advisor.a"
  "libtb_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
