# Empty compiler generated dependencies file for tb_goalcore.
# This may be replaced when dependencies are built.
