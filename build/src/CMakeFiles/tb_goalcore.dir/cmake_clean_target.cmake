file(REMOVE_RECURSE
  "libtb_goalcore.a"
)
