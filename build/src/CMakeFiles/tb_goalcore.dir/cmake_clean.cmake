file(REMOVE_RECURSE
  "CMakeFiles/tb_goalcore.dir/core/cfc.cc.o"
  "CMakeFiles/tb_goalcore.dir/core/cfc.cc.o.d"
  "CMakeFiles/tb_goalcore.dir/core/goal.cc.o"
  "CMakeFiles/tb_goalcore.dir/core/goal.cc.o.d"
  "libtb_goalcore.a"
  "libtb_goalcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_goalcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
