file(REMOVE_RECURSE
  "libtb_engine.a"
)
