# Empty compiler generated dependencies file for tb_engine.
# This may be replaced when dependencies are built.
