file(REMOVE_RECURSE
  "CMakeFiles/tb_engine.dir/engine/config_builder.cc.o"
  "CMakeFiles/tb_engine.dir/engine/config_builder.cc.o.d"
  "CMakeFiles/tb_engine.dir/engine/database.cc.o"
  "CMakeFiles/tb_engine.dir/engine/database.cc.o.d"
  "libtb_engine.a"
  "libtb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
