# Empty compiler generated dependencies file for tb_core.
# This may be replaced when dependencies are built.
