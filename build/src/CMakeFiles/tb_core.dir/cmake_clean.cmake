file(REMOVE_RECURSE
  "CMakeFiles/tb_core.dir/core/benchmark_suite.cc.o"
  "CMakeFiles/tb_core.dir/core/benchmark_suite.cc.o.d"
  "CMakeFiles/tb_core.dir/core/configurations.cc.o"
  "CMakeFiles/tb_core.dir/core/configurations.cc.o.d"
  "CMakeFiles/tb_core.dir/core/improvement.cc.o"
  "CMakeFiles/tb_core.dir/core/improvement.cc.o.d"
  "CMakeFiles/tb_core.dir/core/nref_families.cc.o"
  "CMakeFiles/tb_core.dir/core/nref_families.cc.o.d"
  "CMakeFiles/tb_core.dir/core/query_family.cc.o"
  "CMakeFiles/tb_core.dir/core/query_family.cc.o.d"
  "CMakeFiles/tb_core.dir/core/report.cc.o"
  "CMakeFiles/tb_core.dir/core/report.cc.o.d"
  "CMakeFiles/tb_core.dir/core/runner.cc.o"
  "CMakeFiles/tb_core.dir/core/runner.cc.o.d"
  "CMakeFiles/tb_core.dir/core/sampling.cc.o"
  "CMakeFiles/tb_core.dir/core/sampling.cc.o.d"
  "CMakeFiles/tb_core.dir/core/tpch_families.cc.o"
  "CMakeFiles/tb_core.dir/core/tpch_families.cc.o.d"
  "CMakeFiles/tb_core.dir/core/workload_io.cc.o"
  "CMakeFiles/tb_core.dir/core/workload_io.cc.o.d"
  "libtb_core.a"
  "libtb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
