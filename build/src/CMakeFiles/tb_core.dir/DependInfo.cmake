
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/benchmark_suite.cc" "src/CMakeFiles/tb_core.dir/core/benchmark_suite.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/benchmark_suite.cc.o.d"
  "/root/repo/src/core/configurations.cc" "src/CMakeFiles/tb_core.dir/core/configurations.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/configurations.cc.o.d"
  "/root/repo/src/core/improvement.cc" "src/CMakeFiles/tb_core.dir/core/improvement.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/improvement.cc.o.d"
  "/root/repo/src/core/nref_families.cc" "src/CMakeFiles/tb_core.dir/core/nref_families.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/nref_families.cc.o.d"
  "/root/repo/src/core/query_family.cc" "src/CMakeFiles/tb_core.dir/core/query_family.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/query_family.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/tb_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/runner.cc" "src/CMakeFiles/tb_core.dir/core/runner.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/runner.cc.o.d"
  "/root/repo/src/core/sampling.cc" "src/CMakeFiles/tb_core.dir/core/sampling.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/sampling.cc.o.d"
  "/root/repo/src/core/tpch_families.cc" "src/CMakeFiles/tb_core.dir/core/tpch_families.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/tpch_families.cc.o.d"
  "/root/repo/src/core/workload_io.cc" "src/CMakeFiles/tb_core.dir/core/workload_io.cc.o" "gcc" "src/CMakeFiles/tb_core.dir/core/workload_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_advisor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_goalcore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
