file(REMOVE_RECURSE
  "CMakeFiles/tb_optimizer.dir/optimizer/cardinality.cc.o"
  "CMakeFiles/tb_optimizer.dir/optimizer/cardinality.cc.o.d"
  "CMakeFiles/tb_optimizer.dir/optimizer/cost_model.cc.o"
  "CMakeFiles/tb_optimizer.dir/optimizer/cost_model.cc.o.d"
  "CMakeFiles/tb_optimizer.dir/optimizer/planner.cc.o"
  "CMakeFiles/tb_optimizer.dir/optimizer/planner.cc.o.d"
  "CMakeFiles/tb_optimizer.dir/optimizer/whatif.cc.o"
  "CMakeFiles/tb_optimizer.dir/optimizer/whatif.cc.o.d"
  "libtb_optimizer.a"
  "libtb_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
