file(REMOVE_RECURSE
  "libtb_optimizer.a"
)
