# Empty dependencies file for tb_optimizer.
# This may be replaced when dependencies are built.
