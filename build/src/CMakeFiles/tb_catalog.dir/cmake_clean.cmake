file(REMOVE_RECURSE
  "CMakeFiles/tb_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/tb_catalog.dir/catalog/catalog.cc.o.d"
  "CMakeFiles/tb_catalog.dir/catalog/configuration.cc.o"
  "CMakeFiles/tb_catalog.dir/catalog/configuration.cc.o.d"
  "CMakeFiles/tb_catalog.dir/catalog/table_def.cc.o"
  "CMakeFiles/tb_catalog.dir/catalog/table_def.cc.o.d"
  "libtb_catalog.a"
  "libtb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
