# Empty compiler generated dependencies file for tb_catalog.
# This may be replaced when dependencies are built.
