file(REMOVE_RECURSE
  "libtb_catalog.a"
)
