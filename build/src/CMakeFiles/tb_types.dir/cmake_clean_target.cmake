file(REMOVE_RECURSE
  "libtb_types.a"
)
