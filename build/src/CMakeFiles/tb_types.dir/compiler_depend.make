# Empty compiler generated dependencies file for tb_types.
# This may be replaced when dependencies are built.
