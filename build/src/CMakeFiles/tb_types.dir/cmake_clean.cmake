file(REMOVE_RECURSE
  "CMakeFiles/tb_types.dir/types/tuple.cc.o"
  "CMakeFiles/tb_types.dir/types/tuple.cc.o.d"
  "CMakeFiles/tb_types.dir/types/value.cc.o"
  "CMakeFiles/tb_types.dir/types/value.cc.o.d"
  "libtb_types.a"
  "libtb_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
