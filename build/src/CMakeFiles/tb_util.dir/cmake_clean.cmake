file(REMOVE_RECURSE
  "CMakeFiles/tb_util.dir/util/rng.cc.o"
  "CMakeFiles/tb_util.dir/util/rng.cc.o.d"
  "CMakeFiles/tb_util.dir/util/status.cc.o"
  "CMakeFiles/tb_util.dir/util/status.cc.o.d"
  "CMakeFiles/tb_util.dir/util/strings.cc.o"
  "CMakeFiles/tb_util.dir/util/strings.cc.o.d"
  "CMakeFiles/tb_util.dir/util/zipf.cc.o"
  "CMakeFiles/tb_util.dir/util/zipf.cc.o.d"
  "libtb_util.a"
  "libtb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
