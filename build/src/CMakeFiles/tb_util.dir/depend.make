# Empty dependencies file for tb_util.
# This may be replaced when dependencies are built.
