file(REMOVE_RECURSE
  "libtb_util.a"
)
