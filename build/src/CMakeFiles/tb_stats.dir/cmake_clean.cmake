file(REMOVE_RECURSE
  "CMakeFiles/tb_stats.dir/stats/column_stats.cc.o"
  "CMakeFiles/tb_stats.dir/stats/column_stats.cc.o.d"
  "CMakeFiles/tb_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/tb_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/tb_stats.dir/stats/table_stats.cc.o"
  "CMakeFiles/tb_stats.dir/stats/table_stats.cc.o.d"
  "libtb_stats.a"
  "libtb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
