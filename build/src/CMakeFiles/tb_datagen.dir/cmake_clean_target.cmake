file(REMOVE_RECURSE
  "libtb_datagen.a"
)
