# Empty dependencies file for tb_datagen.
# This may be replaced when dependencies are built.
