file(REMOVE_RECURSE
  "CMakeFiles/tb_datagen.dir/datagen/nref_gen.cc.o"
  "CMakeFiles/tb_datagen.dir/datagen/nref_gen.cc.o.d"
  "CMakeFiles/tb_datagen.dir/datagen/tpch_gen.cc.o"
  "CMakeFiles/tb_datagen.dir/datagen/tpch_gen.cc.o.d"
  "libtb_datagen.a"
  "libtb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
