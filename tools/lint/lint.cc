#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <regex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "cpptok.h"

namespace tabbench_lint {

namespace {

// Source preprocessing lives in tools/common/cpptok (shared with
// tools/analyze): comment/string stripping for the code the rules scan,
// comment-only text for the suppression markers.
using tabbench_tok::KeepCommentsOnly;
using tabbench_tok::SplitLines;
using tabbench_tok::StripCommentsAndStrings;

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

// ---------------------------------------------------------------------------
// Suppressions: NOLINT(rule) / NOLINT on the offending line,
// NOLINTNEXTLINE(rule) on the preceding line, NOLINTFILE(rule) anywhere.
//
// Markers are parsed from comment text only (KeepCommentsOnly), so a marker
// quoted inside a string literal — e.g. a fixture snippet embedded in
// tests/lint_test.cc — cannot silently suppress rules across the file that
// quotes it.
// ---------------------------------------------------------------------------

struct Suppressions {
  // line (1-based) -> rules suppressed there ("*" = all).
  std::unordered_map<size_t, std::unordered_set<std::string>> by_line;
  std::unordered_set<std::string> whole_file;

  bool Suppressed(size_t line, const std::string& rule) const {
    if (whole_file.count("*") != 0 || whole_file.count(rule) != 0) {
      return true;
    }
    auto it = by_line.find(line);
    if (it == by_line.end()) return false;
    return it->second.count("*") != 0 || it->second.count(rule) != 0;
  }
};

void AddRuleList(const std::string& args,
                 std::unordered_set<std::string>* out) {
  if (args.empty()) {
    out->insert("*");
    return;
  }
  std::stringstream ss(args);
  std::string rule;
  while (std::getline(ss, rule, ',')) {
    rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
               rule.end());
    if (!rule.empty()) out->insert(rule);
  }
}

Suppressions ParseSuppressions(
    const std::vector<std::string>& comment_lines) {
  static const std::regex kMarker(
      R"(NOLINT(NEXTLINE|FILE)?\s*(?:\(([^)]*)\))?)");
  Suppressions sup;
  for (size_t ln = 0; ln < comment_lines.size(); ++ln) {
    auto begin = std::sregex_iterator(comment_lines[ln].begin(),
                                      comment_lines[ln].end(), kMarker);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string kind = (*it)[1].str();
      const std::string args = (*it)[2].str();
      if (kind == "FILE") {
        AddRuleList(args, &sup.whole_file);
      } else if (kind == "NEXTLINE") {
        AddRuleList(args, &sup.by_line[ln + 2]);
      } else {
        AddRuleList(args, &sup.by_line[ln + 1]);
      }
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Per-file analysis state shared by the rules
// ---------------------------------------------------------------------------

struct FileState {
  SourceFile* file = nullptr;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // comments/strings blanked
  Suppressions sup;
};

void Report(const FileState& fs, size_t line, const char* rule,
            std::string message, bool fixable,
            std::vector<Finding>* findings) {
  if (fs.sup.Suppressed(line, rule)) return;
  findings->push_back(
      Finding{fs.file->path, line, rule, std::move(message), fixable});
}

// ---------------------------------------------------------------------------
// Rule: tabbench-determinism
//
// The paper's measurements are only meaningful if A(W,C) is a function —
// same workload, same configuration, same number — so the benchmark result
// paths (src/core, src/engine, src/exec/vec) must not read ambient entropy
// or wall clocks. All randomness flows through util/rng.h (explicit seed).
// ---------------------------------------------------------------------------

void CheckDeterminism(const FileState& fs, std::vector<Finding>* findings) {
  const std::string& p = fs.file->path;
  // src/exec/vec is in scope too: the vectorized engine promises simulated
  // costs bit-identical to the Volcano executor, which an ambient-entropy
  // or wall-clock read (e.g. in morsel scheduling) would silently break.
  if (!StartsWith(p, "src/core/") && !StartsWith(p, "src/engine/") &&
      !StartsWith(p, "src/exec/vec/")) {
    return;
  }
  struct Pattern {
    std::regex re;
    const char* what;
  };
  static const Pattern kPatterns[] = {
      {std::regex(R"(\b(?:std\s*::\s*)?s?rand\s*\()"),
       "rand()/srand() is ambient entropy"},
      {std::regex(R"(\brandom_device\b)"),
       "std::random_device is ambient entropy"},
      {std::regex(R"(\btime\s*\(\s*(?:nullptr|NULL|0)\s*\))"),
       "time(nullptr) reads the wall clock"},
      {std::regex(R"(\bsystem_clock\s*::\s*now\s*\(\s*\))"),
       "system_clock::now() reads the wall clock"},
  };
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    for (const auto& pat : kPatterns) {
      if (std::regex_search(fs.code_lines[ln], pat.re)) {
        Report(fs, ln + 1, "tabbench-determinism",
               std::string(pat.what) +
                   "; benchmark result paths must draw randomness from an "
                   "explicitly seeded util/rng.h Rng",
               false, findings);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-naked-new
// ---------------------------------------------------------------------------

void CheckNakedNew(const FileState& fs, std::vector<Finding>* findings) {
  static const std::regex kNew(R"(\bnew\b(?!\s*;))");
  static const std::regex kDeletedFn(R"(=\s*delete\b)");
  static const std::regex kDelete(R"(\bdelete\b)");
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    const std::string& line = fs.code_lines[ln];
    if (std::regex_search(line, kNew)) {
      Report(fs, ln + 1, "tabbench-naked-new",
             "naked `new`; use std::make_unique/std::make_shared so "
             "ownership is explicit and exception-safe",
             false, findings);
    }
    // `= delete` (deleted special members) is not a deallocation.
    std::string scrubbed = std::regex_replace(line, kDeletedFn, "");
    if (std::regex_search(scrubbed, kDelete)) {
      Report(fs, ln + 1, "tabbench-naked-new",
             "naked `delete`; owning pointers should be std::unique_ptr "
             "so destruction is automatic",
             false, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-raw-sleep
//
// Waiting in product code must stay cancellation- and deadline-aware: a raw
// std::this_thread sleep cannot be interrupted, so a cancelled job (or an
// expired wall budget) would hang for the whole delay. All blocking delays
// go through util/retry.h's SleepWithCancellation; its implementation in
// src/util/retry.cc is the one sanctioned raw-sleep site (it sleeps in
// ~1ms poll slices between cancellation checks).
// ---------------------------------------------------------------------------

void CheckRawSleep(const FileState& fs, std::vector<Finding>* findings) {
  std::string p = fs.file->path;
  if (StartsWith(p, "./")) p = p.substr(2);
  if (!StartsWith(p, "src/")) return;  // tests/bench may sleep deliberately
  if (p == "src/util/retry.cc") return;  // the sanctioned poll-slice sleep
  static const std::regex kSleep(
      R"(\bthis_thread\s*::\s*sleep_(for|until)\s*\()");
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    if (std::regex_search(fs.code_lines[ln], kSleep)) {
      Report(fs, ln + 1, "tabbench-raw-sleep",
             "raw this_thread sleep cannot be cancelled; use "
             "SleepWithCancellation from util/retry.h so delays stay "
             "cancellation- and deadline-aware",
             false, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-float-equal
//
// Cost and CFC arithmetic is floating point end to end; == against a float
// literal is almost always a latent bug (and a replay hazard: two
// plattforms' FP rounding can diverge). Applies to the cost/CFC files.
// ---------------------------------------------------------------------------

void CheckFloatEqual(const FileState& fs, std::vector<Finding>* findings) {
  static const std::regex kScope(
      R"((cost_model|cfc|improvement|goal)[^/]*\.(h|cc)$)");
  if (!std::regex_search(fs.file->path, kScope)) return;
  // A float literal adjacent to == or != on either side.
  static const std::regex kFloatEq(
      R"((?:[=!]=\s*[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?\b)|(?:\b(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?\s*[=!]=))");
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    if (std::regex_search(fs.code_lines[ln], kFloatEq)) {
      Report(fs, ln + 1, "tabbench-float-equal",
             "floating-point equality comparison in cost/CFC code; compare "
             "with an explicit tolerance (std::abs(a - b) < eps) or "
             "restructure to avoid the comparison",
             false, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-unsynced-write
//
// Benchmark artifacts must survive a crash: src/core and src/service write
// results through util/file_util.h (AtomicWriteFile: temp file + rename,
// crc32c trailer) or the fsync'd run journal (util/run_journal.h). A direct
// std::ofstream — or C stdio opened for writing — bypasses both: a SIGKILL
// mid-write leaves a torn, checksum-less file that the resume machinery
// cannot trust. Reads (ifstream) are fine.
// ---------------------------------------------------------------------------

void CheckUnsyncedWrite(const FileState& fs,
                        std::vector<Finding>* findings) {
  std::string p = fs.file->path;
  if (StartsWith(p, "./")) p = p.substr(2);
  if (!StartsWith(p, "src/core/") && !StartsWith(p, "src/service/")) return;
  static const std::regex kOfstream(
      R"(\b(?:std\s*::\s*)?(?:ofstream|fstream)\b)");
  static const std::regex kPreprocessor(R"(^\s*#)");
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    // `#include <fstream>` names the header, not a write.
    if (std::regex_search(fs.code_lines[ln], kPreprocessor)) continue;
    if (std::regex_search(fs.code_lines[ln], kOfstream)) {
      Report(fs, ln + 1, "tabbench-unsynced-write",
             "direct ofstream/fstream in src/core|src/service bypasses the "
             "durable write paths; save artifacts via AtomicWriteFile "
             "(util/file_util.h, crc32c trailer) or append to the fsync'd "
             "run journal (util/run_journal.h)",
             false, findings);
    }
  }
  // fopen with a write/append mode string ("w", "a", "r+", "wb", ...). The
  // mode is a string literal, which the stripper blanks, so scan raw lines.
  static const std::regex kFopenWrite(
      R"(\bfopen\s*\([^;]*,\s*"[^"]*[wa+][^"]*")");
  for (size_t ln = 0; ln < fs.raw_lines.size(); ++ln) {
    if (std::regex_search(fs.raw_lines[ln], kFopenWrite)) {
      Report(fs, ln + 1, "tabbench-unsynced-write",
             "fopen for writing in src/core|src/service bypasses the "
             "durable write paths; use AtomicWriteFile or the run journal",
             false, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-unchecked-status
//
// Regex-level twin of [[nodiscard]] on Status/Result: a whole-statement
// call to a function declared (anywhere in the analyzed set) as returning
// Status or Result<T>, with the value discarded.
// ---------------------------------------------------------------------------

std::unordered_set<std::string> CollectStatusFunctions(
    const std::vector<FileState>& states) {
  // Matches declarations/definitions like:
  //   Status Submit(...)        Result<double> SessionClock(...)
  //   static Status OK()        Status ThreadPool::Submit(...)
  static const std::regex kDecl(
      R"(\b(?:Status|Result\s*<[^;{}=]*>)\s+(?:\w+\s*::\s*)?(\w+)\s*\()");
  // Name-level analysis cannot resolve overloads, so a name that is *also*
  // declared with a non-Status return type anywhere (e.g. void
  // BTree::Insert vs Status Database::Insert) is ambiguous and skipped —
  // [[nodiscard]] catches the real Status overloads at compile time anyway.
  static const std::regex kOtherDecl(
      R"(\b(?:void|bool|int|size_t|uint64_t|int64_t|double)\s+(?:\w+\s*::\s*)?(\w+)\s*\()");
  std::unordered_set<std::string> names;
  std::unordered_set<std::string> ambiguous;
  for (const auto& fs : states) {
    for (const auto& line : fs.code_lines) {
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kDecl);
           it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1].str());
      }
      for (auto it =
               std::sregex_iterator(line.begin(), line.end(), kOtherDecl);
           it != std::sregex_iterator(); ++it) {
        ambiguous.insert((*it)[1].str());
      }
    }
  }
  // Order-insensitive: set subtraction only.
  for (const auto& name : ambiguous) {  // NOLINT(tabbench-unordered-iter)
    names.erase(name);
  }
  return names;
}

void CheckUncheckedStatus(const FileState& fs,
                          const std::unordered_set<std::string>& status_fns,
                          std::vector<Finding>* findings) {
  // A full-statement call on one line: `Foo(...)`, `obj.Foo(...)`,
  // `ptr->Foo(...)`, `Ns::Foo(...)` ... ending in `;` with nothing
  // consuming the value.
  static const std::regex kBareCall(
      R"(^\s*(?:[A-Za-z_]\w*(?:\s*(?:\.|->|::)\s*))*([A-Za-z_]\w*)\s*\(.*\)\s*;\s*$)");
  auto is_continuation = [&fs](size_t ln) {
    // A line is a continuation when the previous non-blank code line does
    // not end a statement/block — e.g. the trailing argument of a
    // multi-line TB_ASSIGN_OR_RETURN(...) would otherwise look like a
    // bare call.
    for (size_t p = ln; p-- > 0;) {
      const std::string& prev = fs.code_lines[p];
      size_t last = prev.find_last_not_of(" \t\r");
      if (last == std::string::npos) continue;  // blank: keep looking
      char c = prev[last];
      return c != ';' && c != '{' && c != '}' && c != ':';
    }
    return false;
  };
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    const std::string& line = fs.code_lines[ln];
    std::smatch m;
    if (!std::regex_match(line, m, kBareCall)) continue;
    if (is_continuation(ln)) continue;
    const std::string callee = m[1].str();
    if (status_fns.count(callee) == 0) continue;
    Report(fs, ln + 1, "tabbench-unchecked-status",
           "result of `" + callee +
               "` (returns Status/Result) is discarded; check it, "
               "propagate with TB_RETURN_IF_ERROR, or cast to (void) with "
               "a comment saying why the outcome does not matter",
           false, findings);
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-unordered-iter
//
// Range-for over a std::unordered_{map,set} declared in the same file.
// Hash-table iteration order is an implementation detail; if it feeds
// ordered output (reports, replay logs, workload files) the run is not
// reproducible across standard libraries. Order-insensitive uses are
// expected to carry a NOLINT with a reason.
// ---------------------------------------------------------------------------

void CheckUnorderedIter(const FileState& fs,
                        std::vector<Finding>* findings) {
  // A declaration whose *outermost* type is unordered (the `(^|[^<:\w])`
  // prefix rejects `std::vector<std::unordered_set<...>> v`, where
  // iteration order is actually the vector's and deterministic; `:` is
  // excluded so the engine cannot skip the optional `std::` and match the
  // nested type via the `::` qualifier).
  static const std::regex kDecl(
      R"((?:^|[^<:\w])(?:std\s*::\s*)?unordered_(?:map|set)\s*<[^;]*>\s+(\w+)\s*[;{=(,)])");
  // Range-for colon is space-separated in project style, which keeps `::`
  // qualifiers in the declaration part from matching.
  static const std::regex kRangeFor(R"(\bfor\s*\([^;]*\s:\s*(\w+)\s*\))");
  std::unordered_set<std::string> unordered_vars;
  for (const auto& line : fs.code_lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      unordered_vars.insert((*it)[1].str());
    }
  }
  if (unordered_vars.empty()) return;
  for (size_t ln = 0; ln < fs.code_lines.size(); ++ln) {
    std::smatch m;
    if (std::regex_search(fs.code_lines[ln], m, kRangeFor) &&
        unordered_vars.count(m[1].str()) != 0) {
      Report(fs, ln + 1, "tabbench-unordered-iter",
             "range-for over unordered container `" + m[1].str() +
                 "`; hash-iteration order is unspecified — sort before "
                 "emitting ordered output, or NOLINT with a reason if the "
                 "consumer is order-insensitive",
             false, findings);
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: tabbench-include-guard (fixable)
// ---------------------------------------------------------------------------

struct GuardInfo {
  bool has_ifndef = false;
  size_t ifndef_line = 0;  // 0-based index into lines
  std::string name;
  bool has_define = false;
  size_t define_line = 0;
};

GuardInfo FindGuard(const std::vector<std::string>& code_lines) {
  static const std::regex kIfndef(R"(^\s*#\s*ifndef\s+(\w+))");
  static const std::regex kDefine(R"(^\s*#\s*define\s+(\w+))");
  GuardInfo g;
  for (size_t ln = 0; ln < code_lines.size(); ++ln) {
    std::smatch m;
    if (!g.has_ifndef) {
      if (std::regex_search(code_lines[ln], m, kIfndef)) {
        g.has_ifndef = true;
        g.ifndef_line = ln;
        g.name = m[1].str();
      } else if (std::regex_search(code_lines[ln],
                                   std::regex(R"(^\s*#)"))) {
        break;  // some other directive before any guard: treat as missing
      }
    } else {
      // Skip blank lines between the #ifndef and its #define.
      if (code_lines[ln].find_first_not_of(" \t\r") == std::string::npos) {
        continue;
      }
      if (std::regex_search(code_lines[ln], m, kDefine) &&
          m[1].str() == g.name) {
        g.has_define = true;
        g.define_line = ln;
      }
      break;
    }
  }
  return g;
}

void FixGuard(SourceFile* file, const GuardInfo& g,
              const std::string& want) {
  std::vector<std::string> lines = SplitLines(file->content);
  if (g.has_ifndef && g.has_define) {
    // Rewrite the existing guard triple in place.
    lines[g.ifndef_line] = "#ifndef " + want;
    lines[g.define_line] = "#define " + want;
    static const std::regex kEndif(R"(^\s*#\s*endif\b.*$)");
    for (size_t ln = lines.size(); ln-- > 0;) {
      if (std::regex_match(lines[ln], kEndif)) {
        lines[ln] = "#endif  // " + want;
        break;
      }
    }
  } else {
    // No guard at all: wrap the whole file.
    lines.insert(lines.begin(), {"#ifndef " + want, "#define " + want, ""});
    while (!lines.empty() && lines.back().empty()) lines.pop_back();
    lines.push_back("");
    lines.push_back("#endif  // " + want);
    lines.push_back("");
  }
  std::string out;
  for (size_t i = 0; i < lines.size(); ++i) {
    out += lines[i];
    if (i + 1 < lines.size()) out += '\n';
  }
  file->content = out;
}

void CheckIncludeGuard(FileState* fs, const Options& opts,
                       std::vector<Finding>* findings) {
  if (!IsHeader(fs->file->path)) return;
  const std::string want = CanonicalGuard(fs->file->path);
  GuardInfo g = FindGuard(fs->code_lines);
  std::string problem;
  if (!g.has_ifndef || !g.has_define) {
    problem = "missing include guard";
  } else if (g.name != want) {
    problem = "include guard `" + g.name + "` does not match canonical `" +
              want + "`";
  } else {
    return;
  }
  const size_t line = g.has_ifndef ? g.ifndef_line + 1 : 1;
  if (fs->sup.Suppressed(line, "tabbench-include-guard")) return;
  bool fixed = false;
  if (opts.fix) {
    FixGuard(fs->file, g, want);
    fixed = true;
  }
  findings->push_back(Finding{fs->file->path, line,
                              "tabbench-include-guard",
                              problem + (fixed ? " [fixed]" : ""), true});
}

// ---------------------------------------------------------------------------
// Rule: tabbench-include-hygiene
// ---------------------------------------------------------------------------

void CheckIncludeHygiene(const FileState& fs,
                         std::vector<Finding>* findings) {
  // Raw lines: include paths live inside string-ish tokens the stripper
  // blanks, so inspect the original text.
  static const std::regex kParentRelative(
      R"(^\s*#\s*include\s+"[^"]*\.\./)");
  for (size_t ln = 0; ln < fs.raw_lines.size(); ++ln) {
    if (std::regex_search(fs.raw_lines[ln], kParentRelative)) {
      Report(fs, ln + 1, "tabbench-include-hygiene",
             "parent-relative #include; include project headers by their "
             "src/-relative path (the build adds src/ to the include path)",
             false, findings);
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"tabbench-determinism",
       "no ambient entropy or wall-clock reads in src/core, src/engine, and "
       "src/exec/vec result paths; randomness flows through util/rng.h",
       false},
      {"tabbench-naked-new",
       "no naked new/delete; ownership via make_unique/unique_ptr", false},
      {"tabbench-raw-sleep",
       "no raw this_thread sleeps in src/ (uninterruptible); delays go "
       "through util/retry.h SleepWithCancellation",
       false},
      {"tabbench-float-equal",
       "no float-literal ==/!= comparisons in cost/CFC code", false},
      {"tabbench-unsynced-write",
       "no direct ofstream/fopen writes in src/core|src/service; durable "
       "artifacts go through AtomicWriteFile or the run journal",
       false},
      {"tabbench-unchecked-status",
       "every discarded call to a Status/Result-returning function is an "
       "error (compile-time twin: [[nodiscard]] in util/status.h)",
       false},
      {"tabbench-unordered-iter",
       "range-for over unordered containers is a replay-order hazard; sort "
       "or NOLINT with a reason",
       false},
      {"tabbench-include-guard",
       "headers carry a canonical TABBENCH_<PATH>_H_ include guard", true},
      {"tabbench-include-hygiene",
       "no parent-relative (\"../\") includes", false},
  };
  return kRules;
}

std::string CanonicalGuard(const std::string& path) {
  std::string p = path;
  if (StartsWith(p, "./")) p = p.substr(2);
  if (StartsWith(p, "src/")) p = p.substr(4);
  std::string guard = "TABBENCH_";
  for (char c : p) {
    guard += std::isalnum(static_cast<unsigned char>(c))
                 ? static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)))
                 : '_';
  }
  guard += '_';
  return guard;
}

std::vector<Finding> Lint(std::vector<SourceFile>& files,
                          const Options& opts) {
  std::vector<FileState> states;
  states.reserve(files.size());
  for (auto& f : files) {
    FileState fs;
    fs.file = &f;
    fs.raw_lines = SplitLines(f.content);
    fs.code_lines = SplitLines(StripCommentsAndStrings(f.content));
    fs.sup = ParseSuppressions(SplitLines(KeepCommentsOnly(f.content)));
    states.push_back(std::move(fs));
  }

  const std::unordered_set<std::string> status_fns =
      CollectStatusFunctions(states);

  std::vector<Finding> findings;
  for (auto& fs : states) {
    CheckDeterminism(fs, &findings);
    CheckNakedNew(fs, &findings);
    CheckRawSleep(fs, &findings);
    CheckFloatEqual(fs, &findings);
    CheckUnsyncedWrite(fs, &findings);
    CheckUncheckedStatus(fs, status_fns, &findings);
    CheckUnorderedIter(fs, &findings);
    CheckIncludeGuard(&fs, opts, &findings);
    CheckIncludeHygiene(fs, &findings);
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return findings;
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ToJson(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + JsonEscape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           JsonEscape(f.rule) + "\", \"fixable\": " +
           (f.fixable ? "true" : "false") + ", \"message\": \"" +
           JsonEscape(f.message) + "\"}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string ToText(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file + ":" + std::to_string(f.line) + ": [" + f.rule + "] " +
           f.message + "\n";
  }
  if (!findings.empty()) {
    out += std::to_string(findings.size()) + " finding(s)\n";
  }
  return out;
}

}  // namespace tabbench_lint
