// tabbench_lint — project static-analysis CLI.
//
// Usage:
//   tabbench_lint [--root DIR] [--json] [--fix] [--list-rules] [paths...]
//
// Walks the given paths (default: src bench tests tools examples) under
// --root (default: cwd), lints every .h/.cc/.cpp file, and prints findings
// in human (default) or JSON (--json) form. Exit status: 0 clean, 1 when
// unfixed findings remain, 2 on usage or I/O errors. With --fix, fixable
// findings (include guards) are repaired in place and do not count toward
// the exit status.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool IsExcludedDir(const std::string& name) {
  // Build trees and VCS metadata; "build", "build-tsan", "build-asan", ...
  return name == ".git" || name.rfind("build", 0) == 0;
}

void CollectFiles(const fs::path& root, const fs::path& rel,
                  std::vector<std::string>* out) {
  fs::path abs = root / rel;
  std::error_code ec;
  if (fs::is_regular_file(abs, ec)) {
    if (HasSourceExtension(abs)) out->push_back(rel.generic_string());
    return;
  }
  if (!fs::is_directory(abs, ec)) return;
  for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      if (IsExcludedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
      out->push_back(
          fs::relative(it->path(), root, ec).generic_string());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  bool json = false;
  tabbench_lint::Options options;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) {
        std::cerr << "--root needs a directory argument\n";
        return 2;
      }
      root = argv[i];
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--fix") {
      options.fix = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : tabbench_lint::Rules()) {
        std::cout << rule.name << (rule.fixable ? " [fixable]" : "")
                  << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tabbench_lint [--root DIR] [--json] [--fix] "
                   "[--list-rules] [paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "bench", "tests", "tools", "examples"};
  }

  std::vector<std::string> rel_files;
  for (const auto& p : paths) {
    CollectFiles(root, p, &rel_files);
  }
  if (rel_files.empty()) {
    std::cerr << "tabbench_lint: no source files under " << root << "\n";
    return 2;
  }
  std::sort(rel_files.begin(), rel_files.end());

  std::vector<tabbench_lint::SourceFile> files;
  std::vector<std::string> originals;
  files.reserve(rel_files.size());
  originals.reserve(rel_files.size());
  for (const auto& rel : rel_files) {
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    if (!in) {
      std::cerr << "tabbench_lint: cannot read " << rel << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    files.push_back({rel, ss.str()});
    originals.push_back(files.back().content);
  }

  std::vector<tabbench_lint::Finding> findings =
      tabbench_lint::Lint(files, options);

  if (options.fix) {
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i].content == originals[i]) continue;
      std::ofstream out(fs::path(root) / files[i].path,
                        std::ios::binary | std::ios::trunc);
      out << files[i].content;
    }
  }

  if (json) {
    std::cout << tabbench_lint::ToJson(findings);
  } else {
    std::cout << tabbench_lint::ToText(findings);
    if (findings.empty()) {
      std::cout << "tabbench_lint: " << files.size() << " files clean\n";
    }
  }

  size_t unfixed = 0;
  for (const auto& f : findings) {
    if (f.message.find("[fixed]") == std::string::npos) ++unfixed;
  }
  return unfixed == 0 ? 0 : 1;
}
