#ifndef TABBENCH_TOOLS_LINT_LINT_H_
#define TABBENCH_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <string>
#include <vector>

/// tabbench_lint — the project's static-analysis rules as a library.
///
/// The linter works at token/regex level over comment- and string-stripped
/// source (no libclang dependency), which is exactly enough for the project
/// rules it enforces: the determinism contract (all randomness through
/// util/rng.h, no wall-clock reads in result paths), ownership hygiene (no
/// naked new/delete), numeric hygiene (no float equality in cost/CFC code),
/// error hygiene (no dropped Status), replay-order hazards (no range-for
/// over unordered containers), and header hygiene (canonical include
/// guards, no parent-relative includes).
///
/// The library is deliberately dependency-free (standard library only) so
/// the lint binary builds before — and independently of — everything it
/// checks. tests/lint_test.cc feeds it in-memory snippets.
namespace tabbench_lint {

/// One file to analyze. `path` should be repo-relative with forward
/// slashes; rule applicability (e.g. "determinism applies to src/core and
/// src/engine") is decided from it.
struct SourceFile {
  std::string path;
  std::string content;
};

/// One rule violation at a specific line.
struct Finding {
  std::string file;
  size_t line = 0;  // 1-based
  std::string rule;  // "tabbench-<rule>"
  std::string message;
  bool fixable = false;
};

struct RuleInfo {
  const char* name;     // "tabbench-<rule>"
  const char* summary;  // one line, shown by --list-rules
  bool fixable;         // --fix can repair it mechanically
};

struct Options {
  /// Mechanically repair fixable findings by rewriting SourceFile::content
  /// in place (the caller persists). Fixed findings are still reported,
  /// with "[fixed]" appended to the message.
  bool fix = false;
};

/// The rule table, in evaluation order.
const std::vector<RuleInfo>& Rules();

/// Runs every rule over `files`. Cross-file knowledge (the set of functions
/// returning Status/Result, used by the unchecked-status rule) is built
/// from the whole set, so pass everything you want analyzed in one call.
/// With opts.fix, fixable findings mutate the file contents in place.
std::vector<Finding> Lint(std::vector<SourceFile>& files,
                          const Options& opts = {});

/// Canonical include guard for a header path:
/// "src/util/mutex.h" -> "TABBENCH_UTIL_MUTEX_H_" (leading "src/" drops,
/// every other component is kept).
std::string CanonicalGuard(const std::string& path);

/// Serializers for the CLI.
std::string ToJson(const std::vector<Finding>& findings);
std::string ToText(const std::vector<Finding>& findings);

}  // namespace tabbench_lint

#endif  // TABBENCH_TOOLS_LINT_LINT_H_
