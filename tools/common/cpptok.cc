#include "cpptok.h"

#include <cctype>

namespace tabbench_tok {

namespace {

/// One state machine serves both stripping directions: `keep_comments`
/// selects whether comment interiors or code survive. Line structure is
/// preserved either way.
/// Length of the raw-string introducer at src[i] — `R"`, or `R"` behind an
/// encoding prefix (`u8R"`, `uR"`, `UR"`, `LR"`) — or 0 when there is none.
/// Without the prefix cases an `LR"(a "b" c)"` literal would be scanned as
/// an ordinary string, terminate at the first embedded quote, and leak the
/// rest of the literal into the token stream as code.
size_t RawIntroLen(const std::string& src, size_t i) {
  const size_t n = src.size();
  size_t r = i;
  if (r < n && src[r] == 'u' && r + 1 < n && src[r + 1] == '8') {
    r += 2;
  } else if (r < n && (src[r] == 'u' || src[r] == 'U' || src[r] == 'L')) {
    r += 1;
  }
  if (r + 1 < n && src[r] == 'R' && src[r + 1] == '"') return r + 2 - i;
  return 0;
}

std::string StripImpl(const std::string& src, bool keep_comments) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw };
  St st = St::kCode;
  std::string raw_delim;  // for kRaw: the )delim" terminator
  size_t i = 0;
  const size_t n = src.size();
  auto blank = [&](size_t pos) {
    if (out[pos] != '\n') out[pos] = ' ';
  };
  // In keep_comments mode every non-comment byte is blanked; in the
  // default mode only comment/string/char interiors are.
  auto code = [&](size_t pos) {
    if (keep_comments) blank(pos);
  };
  auto comment = [&](size_t pos) {
    if (!keep_comments) blank(pos);
  };
  while (i < n) {
    char c = src[i];
    char next = i + 1 < n ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          // The marker itself is neither code nor comment text: blank it in
          // both modes so stripped output never tokenizes stray '/' or '"'.
          st = St::kLine;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (c == '/' && next == '*') {
          st = St::kBlock;
          blank(i);
          blank(i + 1);
          i += 2;
        } else if (RawIntroLen(src, i) != 0 &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          // Raw string literal: [u8|u|U|L]R"delim( ... )delim"
          size_t p = i + RawIntroLen(src, i);
          std::string delim;
          while (p < n && src[p] != '(') delim += src[p++];
          raw_delim = ")" + delim + "\"";
          st = St::kRaw;
          for (size_t b = i; b < p + 1 && b < n; ++b) blank(b);
          i = p + 1;
        } else if (c == '"') {
          st = St::kStr;
          blank(i);
          ++i;
        } else if (c == '\'') {
          st = St::kChar;
          blank(i);
          ++i;
        } else {
          code(i);
          ++i;
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          comment(i);
        }
        ++i;
        break;
      case St::kBlock:
        if (c == '*' && next == '/') {
          st = St::kCode;
          blank(i);
          blank(i + 1);
          i += 2;
        } else {
          comment(i);
          ++i;
        }
        break;
      case St::kStr:
        if (c == '\\') {
          blank(i);
          if (i + 1 < n) blank(i + 1);
          i += 2;
        } else if (c == '"') {
          st = St::kCode;
          blank(i);
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kChar:
        if (c == '\\') {
          blank(i);
          if (i + 1 < n) blank(i + 1);
          i += 2;
        } else if (c == '\'') {
          st = St::kCode;
          blank(i);
          ++i;
        } else {
          blank(i);
          ++i;
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t b = i; b < i + raw_delim.size(); ++b) blank(b);
          i += raw_delim.size();
          st = St::kCode;
        } else {
          blank(i);
          ++i;
        }
        break;
    }
  }
  return out;
}

}  // namespace

std::string StripCommentsAndStrings(const std::string& src) {
  return StripImpl(src, /*keep_comments=*/false);
}

std::string KeepCommentsOnly(const std::string& src) {
  return StripImpl(src, /*keep_comments=*/true);
}

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

std::vector<Token> Tokenize(const std::string& stripped_src) {
  static const char* kTwoCharPunct[] = {"::", "->", "<<", ">>", "==", "!=",
                                        "<=", ">=", "&&", "||", "+=", "-="};
  std::vector<Token> toks;
  size_t line = 1;
  const size_t n = stripped_src.size();
  size_t i = 0;
  while (i < n) {
    const char c = stripped_src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(
                           stripped_src[i])) ||
                       stripped_src[i] == '_')) {
        ++i;
      }
      toks.push_back(
          {TokKind::kIdent, stripped_src.substr(start, i - start), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // pp-number approximation: digits, letters, dots, and exponent signs.
      size_t start = i;
      while (i < n) {
        const char d = stripped_src[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' ||
            d == '_') {
          ++i;
        } else if ((d == '+' || d == '-') && i > start &&
                   (stripped_src[i - 1] == 'e' ||
                    stripped_src[i - 1] == 'E')) {
          ++i;
        } else {
          break;
        }
      }
      toks.push_back(
          {TokKind::kNumber, stripped_src.substr(start, i - start), line});
      continue;
    }
    // Punctuation: prefer the two-char operators the scanners care about.
    if (i + 1 < n) {
      const std::string two = stripped_src.substr(i, 2);
      for (const char* op : kTwoCharPunct) {
        if (two == op) {
          toks.push_back({TokKind::kPunct, two, line});
          i += 2;
          goto next;
        }
      }
    }
    toks.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  next:;
  }
  return toks;
}

}  // namespace tabbench_tok
