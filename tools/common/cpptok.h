#ifndef TABBENCH_TOOLS_COMMON_CPPTOK_H_
#define TABBENCH_TOOLS_COMMON_CPPTOK_H_

#include <cstddef>
#include <string>
#include <vector>

/// cpptok — the lightweight C++ source scanner shared by the project's
/// static-analysis tools (tools/lint, tools/analyze).
///
/// It is not a compiler front end: no preprocessing, no templates, no
/// overload resolution. What it does do — exactly and deterministically —
/// is separate code from comments/strings while preserving line structure,
/// and split code into identifier/number/punctuation tokens tagged with
/// line numbers. That is enough for every project rule: the rules reason
/// about project idioms (MutexLock, Status locals, #include lines), not
/// about arbitrary C++.
///
/// Dependency-free (standard library only) so the tools build before — and
/// independently of — everything they check.
namespace tabbench_tok {

/// Replaces the *contents* of comments, string literals, and char literals
/// with spaces while preserving length and line structure, so token- and
/// regex-level rules never fire on prose or quoted text. Handles //,
/// /* */, "..." (with escapes), '...', and raw strings R"delim(...)delim".
std::string StripCommentsAndStrings(const std::string& src);

/// The complement used for suppression markers: blanks code, string, and
/// char-literal contents but *keeps* comment text. Parsing NOLINT markers
/// from this (rather than from raw source) means a marker quoted inside a
/// string literal — e.g. a linter-test fixture — does not suppress
/// anything in the file that quotes it.
std::string KeepCommentsOnly(const std::string& src);

/// Splits on '\n'; a trailing newline yields a final empty line, matching
/// how editors count lines.
std::vector<std::string> SplitLines(const std::string& s);

enum class TokKind {
  kIdent,   // identifiers and keywords: [A-Za-z_]\w*
  kNumber,  // numeric literals (pp-number approximation)
  kPunct,   // everything else; multi-char operators kept together
};

struct Token {
  TokKind kind;
  std::string text;
  size_t line = 0;  // 1-based
};

/// Tokenizes comment/string-stripped code (run StripCommentsAndStrings
/// first; quoted text would otherwise tokenize as code). Multi-char
/// operators that matter for scanning C++ declarations — `::`, `->`,
/// `<<`, `>>`, `==`, `!=`, `<=`, `>=`, `&&`, `||`, `+=`, `-=` — stay
/// single tokens; all other punctuation is emitted one char at a time.
std::vector<Token> Tokenize(const std::string& stripped_src);

}  // namespace tabbench_tok

#endif  // TABBENCH_TOOLS_COMMON_CPPTOK_H_
