#include "model.h"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

namespace tabbench_analyze {

namespace {

using tabbench_tok::KeepCommentsOnly;
using tabbench_tok::SplitLines;
using tabbench_tok::StripCommentsAndStrings;
using tabbench_tok::TokKind;
using tabbench_tok::Tokenize;

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

const std::set<std::string>& TypeQualifiers() {
  static const std::set<std::string> kQuals = {
      "mutable", "static",   "const",    "constexpr", "inline",
      "volatile", "explicit", "virtual",  "extern",    "thread_local"};
  return kQuals;
}

bool IsAnnotationMacro(const std::string& name) {
  return name.rfind("TB_", 0) == 0 || name == "GUARDED_BY" ||
         name == "ACQUIRED_BEFORE" || name == "ACQUIRED_AFTER" ||
         name == "PT_GUARDED_BY";
}

// ---------------------------------------------------------------------------
// Suppressions (same marker syntax as tools/lint, parsed from comments)
// ---------------------------------------------------------------------------

void AddRuleList(const std::string& args, std::set<std::string>* out) {
  if (args.empty()) {
    out->insert("*");
    return;
  }
  std::string rule;
  std::stringstream ss(args);
  while (std::getline(ss, rule, ',')) {
    rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
               rule.end());
    if (!rule.empty()) out->insert(rule);
  }
}

Suppressions ParseSuppressions(const std::vector<std::string>& comments) {
  static const std::regex kMarker(
      R"(NOLINT(NEXTLINE|FILE)?\s*(?:\(([^)]*)\))?)");
  Suppressions sup;
  for (size_t ln = 0; ln < comments.size(); ++ln) {
    auto begin = std::sregex_iterator(comments[ln].begin(),
                                      comments[ln].end(), kMarker);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const std::string kind = (*it)[1].str();
      const std::string args = (*it)[2].str();
      if (kind == "FILE") {
        AddRuleList(args, &sup.whole_file);
      } else if (kind == "NEXTLINE") {
        AddRuleList(args, &sup.by_line[ln + 2]);
      } else {
        AddRuleList(args, &sup.by_line[ln + 1]);
      }
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Scope scanner
// ---------------------------------------------------------------------------

struct Scope {
  enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
  std::string name;        // class scopes: possibly "Outer::Inner"
  size_t function_index;   // into pf->functions when kind == kFunction
};

/// Joins the text of tokens [b, e), space-free for simple expressions
/// ("mu_", "session->mu_").
std::string JoinTokens(const std::vector<Token>& toks, size_t b, size_t e) {
  std::string out;
  for (size_t i = b; i < e; ++i) out += toks[i].text;
  return out;
}

/// First '(' in [b, e) at angle-bracket depth 0 (so the parens of a
/// `std::function<void()>` return type do not win). Returns e when none.
size_t FirstTopLevelParen(const std::vector<Token>& toks, size_t b,
                          size_t e) {
  int angle = 0;
  for (size_t i = b; i < e; ++i) {
    if (IsPunct(toks[i], "<")) ++angle;
    if (IsPunct(toks[i], ">") && angle > 0) --angle;
    // The tokenizer keeps ">>" whole; in a declaration prefix it is two
    // template closers (std::future<Result<T>>), never a shift.
    if (IsPunct(toks[i], ">>")) angle = angle > 1 ? angle - 2 : 0;
    if (angle == 0 && IsPunct(toks[i], "(")) return i;
  }
  return e;
}

struct ScanState {
  ParsedFile* pf = nullptr;
  ClassInfo* cls = nullptr;  // innermost class scope, or nullptr
  std::string cls_name;
};

/// Splits annotation-argument tokens [b, e) on top-level commas.
std::vector<std::string> SplitAnnotationArgs(const std::vector<Token>& toks,
                                             size_t b, size_t e) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (size_t i = b; i < e; ++i) {
    if (IsPunct(toks[i], "(")) ++depth;
    if (IsPunct(toks[i], ")")) --depth;
    if (depth == 0 && IsPunct(toks[i], ",")) {
      if (!cur.empty()) args.push_back(cur);
      cur.clear();
      continue;
    }
    cur += toks[i].text;
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

/// Parses a class-scope declaration segment [b, e): a data member
/// (recorded, with annotations) or a method declaration (only its
/// TB_REQUIRES set is kept — definitions are what the passes walk).
void ParseMember(ParsedFile* pf, ClassInfo* cls, const std::string& cls_name,
                 size_t b, size_t e, size_t file_index) {
  const std::vector<Token>& toks = pf->toks;
  // An access label opens the segment of the member that follows it
  // (`private: Mutex mu_;` is one `;`-delimited segment): step past it.
  while (b + 1 < e && toks[b].kind == TokKind::kIdent &&
         (toks[b].text == "public" || toks[b].text == "private" ||
          toks[b].text == "protected") &&
         IsPunct(toks[b + 1], ":")) {
    b += 2;
  }
  if (b >= e) return;
  if (toks[b].kind == TokKind::kIdent &&
      (toks[b].text == "friend" || toks[b].text == "using" ||
       toks[b].text == "typedef" || toks[b].text == "public" ||
       toks[b].text == "private" || toks[b].text == "protected" ||
       toks[b].text == "enum" || toks[b].text == "class" ||
       toks[b].text == "struct" || toks[b].text == "template")) {
    return;
  }

  // Cut at the first top-level `=` (default member initializer / deleted
  // function); annotations always precede it in project style.
  size_t cut = e;
  {
    int angle = 0, paren = 0;
    for (size_t i = b; i < e; ++i) {
      if (IsPunct(toks[i], "<")) ++angle;
      if (IsPunct(toks[i], ">") && angle > 0) --angle;
      if (IsPunct(toks[i], ">>")) angle = angle > 1 ? angle - 2 : 0;
      if (IsPunct(toks[i], "(")) ++paren;
      if (IsPunct(toks[i], ")") && paren > 0) --paren;
      if (angle == 0 && paren == 0 && IsPunct(toks[i], "=")) {
        cut = i;
        break;
      }
    }
  }

  // Separate trailing annotation macro groups from the declarator, and
  // remember each annotation's argument tokens.
  struct Annotation {
    std::string macro;
    size_t arg_begin, arg_end;  // tokens inside the parens
    size_t line;
  };
  std::vector<Annotation> annotations;
  size_t decl_end = cut;
  // Scan forward; the first annotation macro ends the declarator.
  for (size_t i = b; i < cut; ++i) {
    if (IsIdent(toks[i]) && IsAnnotationMacro(toks[i].text) && i + 1 < cut &&
        IsPunct(toks[i + 1], "(")) {
      if (decl_end == cut) decl_end = i;
      int depth = 1;
      size_t j = i + 2;
      while (j < cut && depth > 0) {
        if (IsPunct(toks[j], "(")) ++depth;
        if (IsPunct(toks[j], ")")) --depth;
        ++j;
      }
      annotations.push_back({toks[i].text, i + 2, j - 1, toks[i].line});
      i = j - 1;
    }
  }

  if (decl_end <= b) return;

  auto qualify = [&cls_name](std::string arg) -> std::string {
    // Strip whitespace and any quotes left by the raw-line annotation scan.
    arg.erase(std::remove_if(arg.begin(), arg.end(),
                             [](char c) { return std::isspace(
                                   static_cast<unsigned char>(c)) ||
                                   c == '"'; }),
              arg.end());
    if (arg.empty()) return arg;
    if (arg.find("::") != std::string::npos) return arg;
    return cls_name + "::" + arg;
  };

  // A declarator ending in ')' — possibly after const/noexcept/override —
  // is a method declaration: keep its TB_REQUIRES set (definitions rarely
  // repeat the annotation) and stop.
  {
    size_t d = decl_end;
    while (d > b && IsIdent(toks[d - 1]) &&
           (toks[d - 1].text == "const" || toks[d - 1].text == "noexcept" ||
            toks[d - 1].text == "override" || toks[d - 1].text == "final")) {
      --d;
    }
    if (d > b && IsPunct(toks[d - 1], ")")) {
      const size_t p = FirstTopLevelParen(toks, b, d);
      if (p < d && p > b && IsIdent(toks[p - 1])) {
        for (const Annotation& a : annotations) {
          if (a.macro != "TB_REQUIRES" && a.macro != "REQUIRES") continue;
          for (const std::string& arg :
               SplitAnnotationArgs(toks, a.arg_begin, a.arg_end)) {
            cls->method_requires[toks[p - 1].text].insert(qualify(arg));
          }
        }
      }
      return;
    }
  }

  const Token& name_tok = toks[decl_end - 1];
  if (!IsIdent(name_tok)) return;
  if (TypeQualifiers().count(name_tok.text) != 0) return;
  // `Mutex& operator=(const Mutex&) = delete;` cuts at the operator's `=`,
  // leaving "operator" as the declarator tail: a function, not a member.
  if (name_tok.text == "operator") return;

  // Type: first identifier that is not a qualifier keyword.
  std::string type;
  for (size_t i = b; i + 1 < decl_end; ++i) {
    if (IsIdent(toks[i]) && TypeQualifiers().count(toks[i].text) == 0) {
      type = toks[i].text;
      break;
    }
  }
  if (type.empty()) return;  // e.g. a lone identifier: not a declaration

  MemberInfo info;
  info.type = type;
  info.line = name_tok.line;
  info.file_index = file_index;
  // const/atomic only count at angle-bracket depth 0: a `const` buried in
  // a template argument does not make the member itself immutable.
  {
    int angle = 0;
    for (size_t i = b; i + 1 < decl_end; ++i) {
      if (IsPunct(toks[i], "<")) ++angle;
      if (IsPunct(toks[i], ">") && angle > 0) --angle;
      if (IsPunct(toks[i], ">>")) angle = angle > 1 ? angle - 2 : 0;
      if (angle != 0 || !IsIdent(toks[i])) continue;
      if (toks[i].text == "const" || toks[i].text == "constexpr") {
        info.is_const = true;
      }
      if (toks[i].text == "atomic" || toks[i].text == "atomic_flag") {
        info.is_atomic = true;
      }
    }
  }
  const std::string qualified_self = cls_name + "::" + name_tok.text;

  for (const Annotation& a : annotations) {
    const std::string arg =
        JoinTokens(toks, a.arg_begin, a.arg_end);
    if (a.macro == "TB_GUARDED_BY" || a.macro == "GUARDED_BY" ||
        a.macro == "TB_PT_GUARDED_BY" || a.macro == "PT_GUARDED_BY") {
      info.guarded_by = qualify(arg);
      // The guard expression names a mutex even if its own declaration
      // was not parsed (e.g. declared via a macro).
      if (arg.find("::") == std::string::npos && !arg.empty()) {
        cls->mutexes.insert(arg);
      }
    }
  }

  // TB_ACQUIRED_BEFORE/AFTER arguments are typically string literals
  // ("ThreadPool::mu_"), which the stripper blanks — recover them from the
  // raw source lines of this declaration.
  {
    static const std::regex kOrder(
        R"(TB_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\))");
    // Scan through the end of the whole declaration (annotations may wrap
    // onto their own line after the member name).
    const size_t first = toks[b].line, last = toks[e - 1].line;
    for (size_t ln = first; ln <= last && ln <= pf->raw_lines.size();
         ++ln) {
      const std::string& raw = pf->raw_lines[ln - 1];
      auto begin = std::sregex_iterator(raw.begin(), raw.end(), kOrder);
      for (auto it = begin; it != std::sregex_iterator(); ++it) {
        const bool before = (*it)[1].str() == "BEFORE";
        std::stringstream ss((*it)[2].str());
        std::string arg;
        while (std::getline(ss, arg, ',')) {
          const std::string other = qualify(arg);
          if (other.empty()) continue;
          ClassInfo::DeclaredEdge edge;
          edge.from = before ? qualified_self : other;
          edge.to = before ? other : qualified_self;
          edge.line = ln;
          cls->declared_edges.push_back(edge);
        }
        cls->mutexes.insert(name_tok.text);
      }
    }
  }

  if (type == "Mutex") cls->mutexes.insert(name_tok.text);
  cls->members[name_tok.text] = info;
}

void ScanFile(ParsedFile* pf, Model* model, size_t file_index) {
  const std::vector<Token>& toks = pf->toks;
  std::vector<Scope> stack;
  size_t stmt_start = 0;
  int paren = 0;

  auto innermost_class = [&]() -> Scope* {
    for (size_t s = stack.size(); s-- > 0;) {
      if (stack[s].kind == Scope::kFunction) return nullptr;
      if (stack[s].kind == Scope::kClass) return &stack[s];
    }
    return nullptr;
  };
  auto inside_function = [&]() {
    for (const Scope& s : stack) {
      if (s.kind == Scope::kFunction) return true;
    }
    return false;
  };

  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kPunct) continue;
    if (t.text == "(") {
      ++paren;
      continue;
    }
    if (t.text == ")") {
      if (paren > 0) --paren;
      continue;
    }
    if (paren > 0) continue;  // braces/semicolons inside arguments

    if (t.text == ";") {
      Scope* cls_scope = innermost_class();
      if (cls_scope != nullptr && !inside_function()) {
        ParseMember(pf, &model->classes[cls_scope->name], cls_scope->name,
                    stmt_start, i, file_index);
      }
      stmt_start = i + 1;
      continue;
    }

    if (t.text == "{") {
      size_t b = stmt_start;
      const size_t e = i;
      // An access label may open the segment (`public: struct Options {`);
      // step past it so the class/struct detection below still fires.
      while (b + 1 < e && IsIdent(toks[b]) &&
             (toks[b].text == "public" || toks[b].text == "private" ||
              toks[b].text == "protected") &&
             IsPunct(toks[b + 1], ":")) {
        b += 2;
      }
      Scope scope{Scope::kBlock, "", 0};
      if (b < e && IsIdent(toks[b]) && toks[b].text == "namespace") {
        scope.kind = Scope::kNamespace;
        scope.name = (b + 1 < e && IsIdent(toks[b + 1]))
                         ? toks[b + 1].text
                         : "<anon>";
      } else if (b < e && IsIdent(toks[b]) &&
                 (toks[b].text == "class" || toks[b].text == "struct") &&
                 b + 1 < e && IsIdent(toks[b + 1])) {
        scope.kind = Scope::kClass;
        std::string name = toks[b + 1].text;
        // `class TB_CAPABILITY("mutex") Mutex` — the attribute macro is
        // followed by its (stripped) argument parens, then the real name.
        if (IsAnnotationMacro(name) || name == "alignas") {
          for (size_t j = b + 2; j < e; ++j) {
            if (IsIdent(toks[j]) && !IsAnnotationMacro(toks[j].text)) {
              name = toks[j].text;
              break;
            }
          }
        }
        Scope* outer = innermost_class();
        scope.name = outer != nullptr ? outer->name + "::" + name : name;
        model->classes[scope.name].name = scope.name;
      } else if (!inside_function()) {
        const size_t p = FirstTopLevelParen(toks, b, e);
        if (p < e && p > b && IsIdent(toks[p - 1])) {
          std::string name = toks[p - 1].text;
          size_t q = p - 1;
          if (q > b && IsPunct(toks[q - 1], "~")) {
            name = "~" + name;
            --q;
          }
          std::string cls;
          // Walk back `Class ::` qualifiers; the innermost one is the
          // class the method belongs to.
          while (q >= b + 2 && IsPunct(toks[q - 1], "::") &&
                 IsIdent(toks[q - 2])) {
            cls = toks[q - 2].text;
            q -= 2;
            break;  // innermost qualifier only
          }
          if (cls.empty()) {
            Scope* outer = innermost_class();
            if (outer != nullptr) cls = outer->name;
          }
          FunctionInfo fn;
          fn.name = name;
          fn.cls = cls;
          fn.qualified = cls.empty() ? name : cls + "::" + name;
          fn.file_index = file_index;
          fn.line = toks[p - 1].line;
          fn.body_begin = i + 1;
          fn.body_end = i + 1;  // patched when the scope pops
          // Parameter token range: inside the declarator parens.
          {
            int depth = 0;
            for (size_t j = p; j < e; ++j) {
              if (IsPunct(toks[j], "(")) ++depth;
              if (IsPunct(toks[j], ")") && --depth == 0) {
                fn.params_begin = p + 1;
                fn.params_end = j;
                // TB_REQUIRES on the definition sits between the
                // parameter close and the body brace.
                for (size_t k = j + 1; k + 1 < e; ++k) {
                  if (!IsIdent(toks[k]) ||
                      (toks[k].text != "TB_REQUIRES" &&
                       toks[k].text != "REQUIRES") ||
                      !IsPunct(toks[k + 1], "(")) {
                    continue;
                  }
                  int d2 = 1;
                  size_t m = k + 2;
                  while (m < e && d2 > 0) {
                    if (IsPunct(toks[m], "(")) ++d2;
                    if (IsPunct(toks[m], ")")) --d2;
                    ++m;
                  }
                  for (std::string arg :
                       SplitAnnotationArgs(toks, k + 2, m - 1)) {
                    if (arg.find("::") == std::string::npos &&
                        !cls.empty()) {
                      arg = cls + "::" + arg;
                    }
                    fn.requires_held.insert(arg);
                  }
                }
                break;
              }
            }
          }
          scope.kind = Scope::kFunction;
          scope.function_index = pf->functions.size();
          pf->functions.push_back(fn);
        } else {
          // Possibly a brace-initialized member: `std::atomic<int> n_{0}`.
          Scope* cls_scope = innermost_class();
          if (cls_scope != nullptr) {
            ParseMember(pf, &model->classes[cls_scope->name],
                        cls_scope->name, b, e, file_index);
          }
        }
      }
      stack.push_back(scope);
      stmt_start = i + 1;
      continue;
    }

    if (t.text == "}") {
      if (!stack.empty()) {
        if (stack.back().kind == Scope::kFunction) {
          pf->functions[stack.back().function_index].body_end = i;
        }
        stack.pop_back();
      }
      stmt_start = i + 1;
      continue;
    }
  }
}

}  // namespace

bool Suppressions::Suppressed(size_t line, const std::string& rule) const {
  if (whole_file.count("*") != 0 || whole_file.count(rule) != 0) {
    return true;
  }
  auto it = by_line.find(line);
  if (it == by_line.end()) return false;
  return it->second.count("*") != 0 || it->second.count(rule) != 0;
}

Model BuildModel(const std::vector<SourceFile>& files) {
  Model model;
  model.files.reserve(files.size());

  std::set<std::string> paths;
  for (const SourceFile& f : files) paths.insert(f.path);

  static const std::regex kInclude(R"re(^\s*#\s*include\s+"([^"]+)")re");
  for (const SourceFile& f : files) {
    ParsedFile pf;
    pf.src = &f;
    pf.raw_lines = SplitLines(f.content);
    const std::string stripped = StripCommentsAndStrings(f.content);
    pf.code_lines = SplitLines(stripped);
    pf.toks = Tokenize(stripped);
    pf.sup = ParseSuppressions(SplitLines(KeepCommentsOnly(f.content)));

    const std::string dir =
        f.path.find('/') != std::string::npos
            ? f.path.substr(0, f.path.rfind('/') + 1)
            : "";
    for (size_t ln = 0; ln < pf.raw_lines.size(); ++ln) {
      std::smatch m;
      if (!std::regex_search(pf.raw_lines[ln], m, kInclude)) continue;
      IncludeEdge edge;
      edge.raw = m[1].str();
      edge.line = ln + 1;
      for (const std::string& cand :
           {edge.raw, "src/" + edge.raw, dir + edge.raw}) {
        if (paths.count(cand) != 0) {
          edge.resolved = cand;
          break;
        }
      }
      pf.includes.push_back(edge);
    }
    model.files.push_back(std::move(pf));
  }

  for (size_t fi = 0; fi < model.files.size(); ++fi) {
    ScanFile(&model.files[fi], &model, fi);
  }
  for (ParsedFile& pf : model.files) {
    for (const FunctionInfo& fn : pf.functions) {
      model.by_name[fn.name].push_back(model.functions.size());
      model.by_qualified[fn.qualified].push_back(model.functions.size());
      model.functions.push_back(fn);
    }
  }
  return model;
}

std::vector<size_t> ResolveCall(const Model& model,
                                const std::string& receiver_type,
                                const std::string& caller_cls,
                                const std::string& name) {
  if (!receiver_type.empty()) {
    auto it = model.by_qualified.find(receiver_type + "::" + name);
    if (it != model.by_qualified.end()) return it->second;
    return {};
  }
  if (!caller_cls.empty()) {
    auto it = model.by_qualified.find(caller_cls + "::" + name);
    if (it != model.by_qualified.end()) return it->second;
  }
  auto it = model.by_name.find(name);
  if (it == model.by_name.end()) return {};
  // Unqualified cross-file resolution only when the name is unambiguous:
  // every definition must share one qualified name.
  std::set<std::string> distinct;
  for (size_t idx : it->second) {
    distinct.insert(model.functions[idx].qualified);
  }
  if (distinct.size() != 1) return {};
  return it->second;
}

}  // namespace tabbench_analyze
