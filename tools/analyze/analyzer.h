#ifndef TABBENCH_TOOLS_ANALYZE_ANALYZER_H_
#define TABBENCH_TOOLS_ANALYZE_ANALYZER_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

/// tabbench_analyze — the project's cross-translation-unit static analyzer.
///
/// Where tabbench_lint (tools/lint) applies per-file regex rules, this tool
/// parses the whole tree once (tools/common/cpptok tokens) into a project
/// model — includes, classes and their members, function bodies, call
/// sites, mutex acquisitions — and runs ten whole-program passes over
/// it:
///
///   1. layering          — the architecture DAG declared in layers.txt:
///                          a file may include only its own or lower
///                          layers; `forbid` edges are refused outright;
///                          include cycles are reported separately.
///   2. lock-order        — a global mutex-acquisition graph built from
///                          nested MutexLock scopes, calls made while a
///                          lock is held (resolved cross-file through
///                          member types), and TB_ACQUIRED_BEFORE/AFTER
///                          annotations; any cycle is a potential deadlock
///                          and is reported with every acquisition site.
///   3. status-flow       — intraprocedural dataflow the [[nodiscard]] +
///                          regex approach misses: Status locals that are
///                          never consumed, Result values used on the
///                          error path, and std::move-then-use.
///   4. nondeterminism    — "touches wall clock / system RNG" propagated
///                          transitively through the call graph; any
///                          tainted function defined in src/core or
///                          src/engine (the simulation's result paths) is
///                          flagged with its taint chain.
///   5. lockset           — Eraser-style inference: the set of mutexes
///                          held at every member-field access site
///                          (MutexLock scopes, TB_REQUIRES contracts, and
///                          lambda frames tracked separately). Fields
///                          accessed both under a lock and bare are
///                          inconsistent; fields with a consistent
///                          inferred guard but no TB_GUARDED_BY get a
///                          suggested annotation (insertable via
///                          --fix-annotations); declared annotations the
///                          locksets contradict are reported against the
///                          offending site.
///   6. blocking-under-lock — fsync/sleeps/non-condvar Waits executed, or
///                          reachable through resolved calls, while a
///                          mutex is held.
///   7. cancellation-poll — unbounded loops (for(;;)/while(true)) in the
///                          worker-loop surfaces (src/exec/vec/,
///                          src/core/runner.cc, src/service/) must reach
///                          a cancellation/stop/watchdog poll, directly
///                          or through a callee.
///
/// Passes 8–10 are *path-sensitive*: they run on per-function control-flow
/// graphs recovered from the token stream (cfg.h) with a forward dataflow
/// solver (dataflow.h), so they reason about orderings and per-path facts
/// the scope-based passes cannot:
///
///   8. durability-ordering — per-journal protocols declared in
///                          tools/analyze/protocols.txt: a commit /
///                          externalization op must be preceded by the
///                          protocol's append+fsync on *every* CFG path
///                          ("syncing" is propagated through callees, so
///                          deleting the fsync inside a helper trips the
///                          callers).
///   9. release-on-path   — manual acquire/release pairs (Lock/Unlock,
///                          watchdog Watch/Release, shard attempt
///                          registration) must balance on every path,
///                          including TB_RETURN_IF_ERROR early returns;
///                          the escaping exit edges are reported.
///  10. error-path        — on paths where !v.ok() must hold: uses of the
///                          would-be value, journaled units (protocol
///                          `begin` ops) left open at error exits, and
///                          blocking calls in retry loops that can
///                          re-iterate without a cancellation re-check.
///
/// Findings are emitted as text or SARIF 2.1.0, and diffed against a
/// checked-in baseline (tools/analyze/baseline.json) under a ratchet
/// policy: CI fails on any finding not in the baseline, and — in strict
/// mode — on baseline entries that no longer fire, so the baseline can
/// only shrink.
///
/// Like the linter, the library is dependency-free and analyzes in-memory
/// SourceFiles, so tests/analyze_tool_test.cc drives every pass on fixture
/// snippets without touching the real tree.
namespace tabbench_analyze {

/// One file to analyze. `path` is repo-relative with forward slashes; pass
/// the whole program in one call — the passes are only as cross-TU as the
/// file set they see.
struct SourceFile {
  std::string path;
  std::string content;
};

/// A secondary location attached to a finding (the other acquisition site
/// of a lock-order edge, the members of an include cycle, the taint
/// source).
struct RelatedSite {
  std::string file;
  size_t line = 0;
  std::string note;
};

struct Finding {
  std::string file;
  size_t line = 0;  // 1-based anchor
  std::string rule;  // "tabbench-<rule>"
  std::string message;  // deliberately line-free: it is the baseline key
  std::vector<RelatedSite> related;
  /// Machine-applicable fix (today: lockset-unannotated suggestions).
  /// When `text` is non-empty, inserting it immediately after the first
  /// whole-word occurrence of `after_word` on `line` of `file` (skipping
  /// any array brackets) resolves the finding. Applied by
  /// ApplyAnnotationFixes / --fix-annotations.
  struct FixHint {
    std::string after_word;
    std::string text;
  };
  FixHint fix;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// The rule table (for --list-rules and the SARIF rules array).
const std::vector<RuleInfo>& Rules();

/// Architecture layers, lowest first. A file belongs to the layer with the
/// longest matching directory prefix; files outside every layer (tests,
/// tools, bench, examples) are exempt from the layering pass.
struct LayerSpec {
  struct Layer {
    std::string name;
    std::vector<std::string> dirs;  // e.g. {"src/core", "src/advisor"}
  };
  std::vector<Layer> layers;
  /// Extra forbidden edges by layer name (checked on top of the order, so
  /// the architectural intent survives even a layer reordering).
  std::vector<std::pair<std::string, std::string>> forbid;
};

/// Parses the layers.txt format:
///
///   # comment
///   layer util: src/util
///   layer tuning: src/core src/advisor
///   forbid tuning -> service
///
/// Returns false and sets *error on malformed input (unknown directive,
/// forbid naming an undeclared layer, duplicate layer name).
bool ParseLayerSpec(const std::string& text, LayerSpec* spec,
                    std::string* error);

/// Durability protocols for the path-sensitive passes, declared per
/// journal type in tools/analyze/protocols.txt. Within each protocol's
/// `files`, every `commit` op must be dominated (in the must-dataflow
/// sense: on every path) by a `sync` op — directly or through a callee
/// whose every success return performs one — and error exits reached after
/// a `begin` op require an `abort` op first.
struct ProtocolSpec {
  /// An operation referenced by call name; when `arg` is non-empty the
  /// call only matches if `arg` appears as a token between its parens
  /// (e.g. EnterState:kLive matches EnterState(IndexBuildState::kLive)).
  struct Op {
    std::string name;
    std::string arg;
  };
  struct Protocol {
    std::string name;
    std::vector<std::string> files;  // repo-relative paths in scope
    std::vector<std::string> sync;   // root durable-write call names
    std::vector<Op> commit;          // externalizations needing sync first
    std::vector<Op> begin;           // opens a journaled unit of work
    std::vector<Op> abort;           // closes it on the error path
  };
  std::vector<Protocol> protocols;
};

/// Parses the protocols.txt format:
///
///   # comment
///   protocol run_journal
///   file src/util/run_journal.cc
///   sync fsync
///   commit raise
///
/// Returns false and sets *error on malformed input (directive before the
/// first `protocol`, unknown directive, duplicate protocol name).
bool ParseProtocolSpec(const std::string& text, ProtocolSpec* spec,
                       std::string* error);

struct Options {
  LayerSpec layers;
  ProtocolSpec protocols;
};

/// Runs all ten passes over `files`. Findings are sorted by (file,
/// line, rule). NOLINT(rule) comment markers on the anchor line and
/// NOLINTFILE(rule) markers suppress findings, same syntax as the linter.
std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const Options& opts);

/// Applies the FixHints carried by `findings` to the matching in-memory
/// files, in place. Lines that already carry a GUARDED_BY are left alone,
/// so re-running over already-fixed sources is a no-op (idempotent).
/// Returns the number of insertions made.
size_t ApplyAnnotationFixes(const std::vector<Finding>& findings,
                            std::vector<SourceFile>* files);

/// Plain-text TB_FAULT_POINT coverage report: sites per declared layer
/// (file:line and fault-point name) plus the layers with zero sites —
/// the chaos suite's blind spots (--fault-coverage).
std::string FaultCoverageReport(const std::vector<SourceFile>& files,
                                const LayerSpec& layers);

/// TB_FAULT_POINT sites per declared layer name (layers with zero sites
/// are present with count 0). Files outside every layer are ignored.
std::map<std::string, size_t> FaultSitesPerLayer(
    const std::vector<SourceFile>& files, const LayerSpec& layers);

/// The fault-coverage CI ratchet (--check-fault-coverage): `required_text`
/// lists, one per line, layers that must keep TB_FAULT_POINT coverage —
/// `<layer> [min_sites]`, '#' comments, default minimum 1. Returns one
/// message per violated requirement (unknown layer, or site count below
/// the recorded floor); empty means the ratchet holds. The floor file is
/// committed, so a layer that once had fault points can never silently
/// drop back to zero.
std::vector<std::string> CheckFaultCoverage(
    const std::vector<SourceFile>& files, const LayerSpec& layers,
    const std::string& required_text);

// ---------------------------------------------------------------- output

std::string ToText(const std::vector<Finding>& findings);

/// SARIF 2.1.0: one run, driver "tabbench_analyze", every rule in the
/// rules array, one result per finding with physical + related locations.
std::string ToSarif(const std::vector<Finding>& findings);

// -------------------------------------------------------------- baseline

/// Baseline entries key findings by (rule, file, message) — no line
/// number, so unrelated edits above a baselined finding do not churn the
/// file. Duplicate keys are multiset-counted.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::string message;
};

std::string ToBaselineJson(const std::vector<Finding>& findings);

/// Parses what ToBaselineJson writes (and hand-trimmed versions of it).
bool ParseBaselineJson(const std::string& text,
                       std::vector<BaselineEntry>* out, std::string* error);

struct BaselineDiff {
  std::vector<Finding> fresh;        // findings not covered by the baseline
  std::vector<BaselineEntry> stale;  // baseline entries that no longer fire
  size_t matched = 0;                // findings absorbed by the baseline
};

BaselineDiff DiffBaseline(const std::vector<Finding>& findings,
                          const std::vector<BaselineEntry>& baseline);

}  // namespace tabbench_analyze

#endif  // TABBENCH_TOOLS_ANALYZE_ANALYZER_H_
