#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "model.h"

/// The four whole-program passes. Everything here consumes the Model built
/// by model.cc and appends Findings; suppression and sorting happen in
/// Analyze() (analyzer.cc).
namespace tabbench_analyze {

namespace {

using tabbench_tok::TokKind;

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------------
// Layering pass
// ---------------------------------------------------------------------------

/// Index of the layer owning `path` (longest matching dir prefix wins), or
/// -1 when the file is outside every declared layer (exempt).
int LayerOf(const LayerSpec& spec, const std::string& path) {
  int best = -1;
  size_t best_len = 0;
  for (size_t li = 0; li < spec.layers.size(); ++li) {
    for (const std::string& dir : spec.layers[li].dirs) {
      const std::string prefix = dir + "/";
      if (path.rfind(prefix, 0) == 0 && prefix.size() > best_len) {
        best = static_cast<int>(li);
        best_len = prefix.size();
      }
    }
  }
  return best;
}

/// Tarjan SCC over an adjacency map keyed by string node ids. Returns the
/// components (each sorted) that contain a cycle: size > 1, or a self-edge.
std::vector<std::vector<std::string>> CyclicComponents(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> nodes;
  for (const auto& [n, outs] : adj) {
    nodes.push_back(n);
    for (const std::string& m : outs) nodes.push_back(m);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::map<std::string, size_t> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  size_t counter = 0;
  std::vector<std::vector<std::string>> cyclic;

  // Iterative Tarjan (explicit frame stack keeps deep include chains from
  // overflowing the call stack).
  struct Frame {
    std::string node;
    std::vector<std::string> outs;
    size_t next = 0;
  };
  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames;
    auto push_node = [&](const std::string& n) {
      index[n] = low[n] = counter++;
      stack.push_back(n);
      on_stack.insert(n);
      Frame fr;
      fr.node = n;
      auto it = adj.find(n);
      if (it != adj.end()) {
        fr.outs.assign(it->second.begin(), it->second.end());
      }
      frames.push_back(std::move(fr));
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.next < fr.outs.size()) {
        const std::string& m = fr.outs[fr.next++];
        if (index.count(m) == 0) {
          push_node(m);
        } else if (on_stack.count(m) != 0) {
          low[fr.node] = std::min(low[fr.node], index[m]);
        }
      } else {
        if (low[fr.node] == index[fr.node]) {
          std::vector<std::string> comp;
          while (true) {
            const std::string n = stack.back();
            stack.pop_back();
            on_stack.erase(n);
            comp.push_back(n);
            if (n == fr.node) break;
          }
          bool self_loop = false;
          auto it = adj.find(fr.node);
          if (comp.size() == 1 && it != adj.end() &&
              it->second.count(fr.node) != 0) {
            self_loop = true;
          }
          if (comp.size() > 1 || self_loop) {
            std::sort(comp.begin(), comp.end());
            cyclic.push_back(std::move(comp));
          }
        }
        const std::string done = fr.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  std::sort(cyclic.begin(), cyclic.end());
  return cyclic;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

void RunLayeringPass(const Model& model, const LayerSpec& spec,
                     std::vector<Finding>* findings) {
  std::set<std::pair<std::string, std::string>> forbidden(
      spec.forbid.begin(), spec.forbid.end());

  // Edge checks: order violations and forbid pairs.
  for (const ParsedFile& pf : model.files) {
    const int src_layer = LayerOf(spec, pf.src->path);
    if (src_layer < 0) continue;
    for (const IncludeEdge& inc : pf.includes) {
      if (inc.resolved.empty()) continue;
      const int dst_layer = LayerOf(spec, inc.resolved);
      if (dst_layer < 0) continue;
      const std::string& src_name = spec.layers[src_layer].name;
      const std::string& dst_name = spec.layers[dst_layer].name;
      Finding f;
      f.file = pf.src->path;
      f.line = inc.line;
      f.rule = "tabbench-layering";
      if (forbidden.count({src_name, dst_name}) != 0) {
        f.message = "layer '" + src_name + "' must never include layer '" +
                    dst_name + "' (forbidden edge), but includes \"" +
                    inc.raw + "\"";
      } else if (dst_layer > src_layer) {
        f.message = "layer '" + src_name + "' includes \"" + inc.raw +
                    "\" from higher layer '" + dst_name +
                    "'; dependencies must point downward";
      } else {
        continue;
      }
      f.related.push_back({inc.resolved, 1, "included file (layer '" +
                                                dst_name + "')"});
      findings->push_back(std::move(f));
    }
  }

  // Include cycles (checked across the whole file set, layered or not —
  // a cycle is broken architecture regardless of layer assignment).
  std::map<std::string, std::set<std::string>> graph;
  std::map<std::pair<std::string, std::string>, size_t> edge_line;
  for (const ParsedFile& pf : model.files) {
    for (const IncludeEdge& inc : pf.includes) {
      if (inc.resolved.empty() || inc.resolved == pf.src->path) continue;
      graph[pf.src->path].insert(inc.resolved);
      edge_line.emplace(std::make_pair(pf.src->path, inc.resolved),
                        inc.line);
    }
  }
  for (const std::vector<std::string>& comp : CyclicComponents(graph)) {
    Finding f;
    f.rule = "tabbench-include-cycle";
    f.message = "include cycle among: " + JoinNames(comp);
    const std::set<std::string> in_comp(comp.begin(), comp.end());
    for (const std::string& a : comp) {
      auto it = graph.find(a);
      if (it == graph.end()) continue;
      for (const std::string& b : it->second) {
        if (in_comp.count(b) == 0) continue;
        const size_t line = edge_line[{a, b}];
        if (f.file.empty()) {
          f.file = a;
          f.line = line;
        }
        f.related.push_back({a, line, "includes " + b});
      }
    }
    findings->push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Shared body facts (lock-order + taint)
// ---------------------------------------------------------------------------

namespace {

struct BodyFacts {
  struct Acquire {
    std::string mutex;  // qualified ("ThreadPool::mu_") or bare local name
    size_t line = 0;
    bool in_lambda = false;
  };
  struct Call {
    std::string receiver_type;  // "" for a bare call
    std::string name;
    size_t line = 0;
    bool in_lambda = false;
    std::vector<Acquire> held;  // locks held at the call site
  };
  std::vector<Acquire> acquires;
  std::vector<Call> calls;
  struct Source {
    std::string what;
    size_t line = 0;
  };
  std::vector<Source> taint_sources;
  /// Nested-acquisition edges observed directly in this body:
  /// (held lock, newly acquired lock).
  std::vector<std::pair<Acquire, Acquire>> nested;
};

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kKw = {
      "if",          "for",     "while",       "switch",  "return",
      "sizeof",      "catch",   "new",         "delete",  "throw",
      "static_cast", "assert",  "const_cast",  "alignof", "decltype",
      "noexcept",    "typeid",  "co_return",   "case",    "else",
      "do",          "default", "co_await",    "defined"};
  return kKw;
}

/// Resolves the expression tokens of `MutexLock lock(&<expr>)` to a
/// qualified mutex id; "" when the receiver's type is unknown.
std::string ResolveMutexExpr(const Model& model, const FunctionInfo& fn,
                             const std::vector<Token>& toks, size_t b,
                             size_t e) {
  std::vector<const Token*> parts;
  for (size_t i = b; i < e; ++i) parts.push_back(&toks[i]);
  if (parts.empty()) return "";
  if (parts.size() == 1 && IsIdent(*parts[0])) {
    const std::string& name = parts[0]->text;
    if (!fn.cls.empty()) return fn.cls + "::" + name;
    return name;  // local or global mutex in a free function
  }
  // this->mu_ / obj.mu_ / obj->mu_ / Class::mu
  if (parts.size() == 3 && IsIdent(*parts[0]) && IsIdent(*parts[2])) {
    const std::string& recv = parts[0]->text;
    const std::string& name = parts[2]->text;
    if (IsPunct(*parts[1], "::")) return recv + "::" + name;
    if (IsPunct(*parts[1], "->") || IsPunct(*parts[1], ".")) {
      if (recv == "this" && !fn.cls.empty()) return fn.cls + "::" + name;
      if (!fn.cls.empty()) {
        auto cit = model.classes.find(fn.cls);
        if (cit != model.classes.end()) {
          auto mit = cit->second.members.find(recv);
          if (mit != cit->second.members.end() &&
              !mit->second.type.empty() && mit->second.type != "std") {
            return mit->second.type + "::" + name;
          }
        }
      }
    }
  }
  return "";
}

/// Matching close for the bracket at `open` (toks[open] is "(" / "[" /
/// "{"); returns body_end when unbalanced.
size_t MatchBracket(const std::vector<Token>& toks, size_t open,
                    size_t body_end, const char* open_text,
                    const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < body_end; ++i) {
    if (IsPunct(toks[i], open_text)) ++depth;
    if (IsPunct(toks[i], close_text) && --depth == 0) return i;
  }
  return body_end;
}

/// Token indices of braces that open lambda bodies within
/// [body_begin, body_end): `[caps] (params)? specifiers* {`.
std::set<size_t> LambdaBraces(const std::vector<Token>& toks,
                              size_t body_begin, size_t body_end) {
  std::set<size_t> braces;
  for (size_t i = body_begin; i < body_end; ++i) {
    if (!IsPunct(toks[i], "[")) continue;
    size_t close = MatchBracket(toks, i, body_end, "[", "]");
    if (close >= body_end) continue;
    size_t j = close + 1;
    if (j < body_end && IsPunct(toks[j], "(")) {
      j = MatchBracket(toks, j, body_end, "(", ")") + 1;
    }
    // Trailing specifiers / return type before the body.
    while (j < body_end &&
           (IsPunct(toks[j], "->") ||
            (IsIdent(toks[j]) &&
             (toks[j].text == "mutable" || toks[j].text == "noexcept" ||
              toks[j].text == "const")) ||
            IsPunct(toks[j], "::") || IsPunct(toks[j], "<") ||
            IsPunct(toks[j], ">") ||
            (IsIdent(toks[j]) && j + 1 < body_end &&
             (IsPunct(toks[j + 1], "{") || IsPunct(toks[j + 1], "::") ||
              IsPunct(toks[j + 1], "<"))))) {
      ++j;
    }
    if (j < body_end && IsPunct(toks[j], "{")) braces.insert(j);
  }
  return braces;
}

BodyFacts ExtractBodyFacts(const Model& model, const FunctionInfo& fn) {
  const ParsedFile& pf = model.files[fn.file_index];
  const std::vector<Token>& toks = pf.toks;
  BodyFacts facts;

  const std::set<size_t> lambda_braces =
      LambdaBraces(toks, fn.body_begin, fn.body_end);

  struct Held {
    BodyFacts::Acquire acq;
    int depth;
  };
  std::vector<Held> held;
  std::vector<bool> brace_is_lambda;  // stack mirroring brace depth
  int lambda_depth = 0;

  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      const bool is_lambda = lambda_braces.count(i) != 0;
      brace_is_lambda.push_back(is_lambda);
      if (is_lambda) ++lambda_depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      if (!brace_is_lambda.empty()) {
        if (brace_is_lambda.back()) --lambda_depth;
        brace_is_lambda.pop_back();
      }
      const int depth = static_cast<int>(brace_is_lambda.size());
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (!IsIdent(t)) continue;
    const bool in_lambda = lambda_depth > 0;

    // MutexLock <name> ( & <expr> )
    if (t.text == "MutexLock" && i + 2 < fn.body_end &&
        IsIdent(toks[i + 1]) && IsPunct(toks[i + 2], "(")) {
      const size_t close = MatchBracket(toks, i + 2, fn.body_end, "(", ")");
      size_t eb = i + 3;
      if (eb < close && IsPunct(toks[eb], "&")) ++eb;
      const std::string mutex = ResolveMutexExpr(model, fn, toks, eb, close);
      if (!mutex.empty()) {
        BodyFacts::Acquire acq{mutex, t.line, in_lambda};
        facts.acquires.push_back(acq);
        if (!in_lambda) {
          for (const Held& h : held) facts.nested.emplace_back(h.acq, acq);
          held.push_back({acq, static_cast<int>(brace_is_lambda.size())});
        }
      }
      i = close;
      continue;
    }

    // Taint sources.
    if (t.text == "system_clock" && i + 2 < fn.body_end &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2]) &&
        toks[i + 2].text == "now") {
      facts.taint_sources.push_back({"system_clock::now()", t.line});
      i += 2;
      continue;
    }
    if (t.text == "random_device") {
      facts.taint_sources.push_back({"std::random_device", t.line});
      continue;
    }
    const bool prev_is_member_access =
        i > fn.body_begin &&
        (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if ((t.text == "rand" || t.text == "srand") && !prev_is_member_access &&
        i + 1 < fn.body_end && IsPunct(toks[i + 1], "(")) {
      facts.taint_sources.push_back({t.text + "()", t.line});
    }
    if (t.text == "time" && !prev_is_member_access && i + 2 < fn.body_end &&
        IsPunct(toks[i + 1], "(") && IsIdent(toks[i + 2]) &&
        (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL")) {
      facts.taint_sources.push_back({"time(nullptr)", t.line});
    }

    // Call sites: ident followed by "(", excluding keywords and
    // declarations (`Type name(...)` — ident preceded by another ident).
    if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "(") &&
        CallKeywords().count(t.text) == 0) {
      if (i > fn.body_begin && IsIdent(toks[i - 1]) &&
          CallKeywords().count(toks[i - 1].text) == 0) {
        continue;  // declaration, not a call
      }
      BodyFacts::Call call;
      call.name = t.text;
      call.line = t.line;
      call.in_lambda = in_lambda;
      if (i >= fn.body_begin + 2 && IsIdent(toks[i - 2])) {
        const std::string& recv = toks[i - 2].text;
        if (IsPunct(toks[i - 1], "::")) {
          call.receiver_type = recv;
        } else if (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) {
          if (recv == "this") {
            call.receiver_type = fn.cls;
          } else {
            auto cit = model.classes.find(fn.cls);
            if (cit == model.classes.end()) continue;  // unknown class
            auto mit = cit->second.members.find(recv);
            if (mit == cit->second.members.end() ||
                mit->second.type.empty() || mit->second.type == "std") {
              continue;  // local or std receiver: unresolvable, skipped
            }
            call.receiver_type = mit->second.type;
          }
        }
      } else if (i > fn.body_begin && (IsPunct(toks[i - 1], ".") ||
                                       IsPunct(toks[i - 1], "->"))) {
        continue;  // complex receiver expression: unresolvable
      }
      if (!in_lambda) {
        for (const Held& h : held) call.held.push_back(h.acq);
      }
      facts.calls.push_back(std::move(call));
    }
  }
  return facts;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lock-order pass
// ---------------------------------------------------------------------------

void RunLockOrderPass(const Model& model, std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
  }

  // Representative acquisition site per mutex (for related locations).
  std::map<std::string, RelatedSite> acq_site;
  for (size_t i = 0; i < n; ++i) {
    const std::string& file =
        model.files[model.functions[i].file_index].src->path;
    for (const BodyFacts::Acquire& a : facts[i].acquires) {
      acq_site.emplace(a.mutex,
                       RelatedSite{file, a.line,
                                   "acquired in " +
                                       model.functions[i].qualified});
    }
  }

  // may_acquire: mutexes a function can take, directly or via callees
  // (lambda bodies excluded — they run outside the caller's lock scope).
  std::vector<std::set<std::string>> may_acquire(n);
  std::vector<std::vector<size_t>> callees(n);
  for (size_t i = 0; i < n; ++i) {
    for (const BodyFacts::Acquire& a : facts[i].acquires) {
      if (!a.in_lambda) may_acquire[i].insert(a.mutex);
    }
    std::set<size_t> seen;
    for (const BodyFacts::Call& c : facts[i].calls) {
      if (c.in_lambda) continue;
      for (size_t callee : ResolveCall(model, c.receiver_type,
                                       model.functions[i].cls, c.name)) {
        if (callee != i && seen.insert(callee).second) {
          callees[i].push_back(callee);
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      for (size_t c : callees[i]) {
        for (const std::string& m : may_acquire[c]) {
          if (may_acquire[i].insert(m).second) changed = true;
        }
      }
    }
  }

  // The acquisition-order graph: direct nesting, calls under a held lock,
  // and declared TB_ACQUIRED_BEFORE/AFTER edges.
  struct EdgeInfo {
    std::string file;
    size_t line = 0;
    std::vector<RelatedSite> related;
  };
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           EdgeInfo info) {
    edges.emplace(std::make_pair(from, to), std::move(info));
  };

  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    const std::string& file = model.files[fn.file_index].src->path;
    for (const auto& [from, to] : facts[i].nested) {
      EdgeInfo info;
      info.file = file;
      info.line = to.line;
      info.related.push_back(
          {file, from.line, from.mutex + " acquired here, still held"});
      info.related.push_back(
          {file, to.line, to.mutex + " acquired while holding " +
                              from.mutex + " (in " + fn.qualified + ")"});
      add_edge(from.mutex, to.mutex, std::move(info));
    }
    for (const BodyFacts::Call& c : facts[i].calls) {
      if (c.in_lambda || c.held.empty()) continue;
      for (size_t callee : ResolveCall(model, c.receiver_type, fn.cls,
                                       c.name)) {
        for (const std::string& m : may_acquire[callee]) {
          for (const BodyFacts::Acquire& h : c.held) {
            EdgeInfo info;
            info.file = file;
            info.line = c.line;
            info.related.push_back(
                {file, h.line, h.mutex + " acquired here, still held"});
            info.related.push_back(
                {file, c.line,
                 "call to " + model.functions[callee].qualified +
                     " which may acquire " + m + " (in " + fn.qualified +
                     ")"});
            auto site = acq_site.find(m);
            if (site != acq_site.end()) info.related.push_back(site->second);
            add_edge(h.mutex, m, std::move(info));
          }
        }
      }
    }
  }
  for (const auto& [cls_name, cls] : model.classes) {
    (void)cls_name;
    for (const ClassInfo::DeclaredEdge& de : cls.declared_edges) {
      // Find the file that declares the edge for the site.
      for (const ParsedFile& pf : model.files) {
        if (de.line == 0 || de.line > pf.raw_lines.size()) continue;
        if (pf.raw_lines[de.line - 1].find("TB_ACQUIRED_") ==
            std::string::npos) {
          continue;
        }
        EdgeInfo info;
        info.file = pf.src->path;
        info.line = de.line;
        info.related.push_back({pf.src->path, de.line,
                                "declared: " + de.from +
                                    " acquired before " + de.to});
        add_edge(de.from, de.to, std::move(info));
        break;
      }
    }
  }

  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, info] : edges) {
    (void)info;
    adj[edge.first].insert(edge.second);
  }
  for (const std::vector<std::string>& comp : CyclicComponents(adj)) {
    const std::set<std::string> in_comp(comp.begin(), comp.end());
    Finding f;
    f.rule = "tabbench-lock-order";
    if (comp.size() == 1) {
      f.message = "recursive acquisition of " + comp[0] +
                  ": already held when acquired again (self-deadlock)";
    } else {
      f.message =
          "lock-order inversion (potential deadlock) among: " +
          JoinNames(comp);
    }
    for (const std::string& a : comp) {
      for (const std::string& b : comp) {
        auto it = edges.find({a, b});
        if (it == edges.end()) continue;
        if (f.file.empty()) {
          f.file = it->second.file;
          f.line = it->second.line;
        }
        for (const RelatedSite& s : it->second.related) {
          f.related.push_back(s);
        }
      }
    }
    findings->push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Status-flow pass
// ---------------------------------------------------------------------------

namespace {

/// True when toks[i] starts a statement (previous token is ; { } or the
/// body beginning).
bool AtStatementStart(const std::vector<Token>& toks, size_t i,
                      size_t body_begin) {
  if (i == body_begin) return true;
  const Token& p = toks[i - 1];
  return IsPunct(p, ";") || IsPunct(p, "{") || IsPunct(p, "}");
}

void CheckStatusLocals(const FunctionInfo& fn, const ParsedFile& pf,
                       std::vector<Finding>* findings) {
  const std::vector<Token>& toks = pf.toks;
  for (size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
    // `Status <name> =` / `Status <name> (` at statement start.
    if (!IsIdent(toks[i]) || toks[i].text != "Status") continue;
    if (!AtStatementStart(toks, i, fn.body_begin)) continue;
    if (!IsIdent(toks[i + 1])) continue;
    if (!IsPunct(toks[i + 2], "=") && !IsPunct(toks[i + 2], "(")) continue;
    const std::string& name = toks[i + 1].text;
    const size_t decl_line = toks[i + 1].line;

    bool used = false;
    for (size_t j = i + 3; j < fn.body_end && !used; ++j) {
      if (!IsIdent(toks[j]) || toks[j].text != name) continue;
      const bool overwrite = AtStatementStart(toks, j, fn.body_begin) &&
                             j + 1 < fn.body_end &&
                             IsPunct(toks[j + 1], "=");
      if (!overwrite) used = true;
    }
    if (!used) {
      Finding f;
      f.file = pf.src->path;
      f.line = decl_line;
      f.rule = "tabbench-status-local";
      f.message = "Status local '" + name + "' in " + fn.qualified +
                  " is never consulted (check .ok() or return it)";
      findings->push_back(std::move(f));
    }
  }
}

void CheckResultOnError(const FunctionInfo& fn, const ParsedFile& pf,
                        std::vector<Finding>* findings) {
  const std::vector<Token>& toks = pf.toks;
  for (size_t i = fn.body_begin; i + 7 < fn.body_end; ++i) {
    // `if ( ! <name> . ok ( ) )` — then look for <name>.value() or
    // *<name> inside the guarded statement/block.
    if (!IsIdent(toks[i]) || toks[i].text != "if") continue;
    if (!IsPunct(toks[i + 1], "(") || !IsPunct(toks[i + 2], "!")) continue;
    if (!IsIdent(toks[i + 3])) continue;
    if (!IsPunct(toks[i + 4], ".") || !IsIdent(toks[i + 5]) ||
        toks[i + 5].text != "ok") {
      continue;
    }
    if (!IsPunct(toks[i + 6], "(") || !IsPunct(toks[i + 7], ")")) continue;
    const size_t cond_close =
        MatchBracket(toks, i + 1, fn.body_end, "(", ")");
    if (cond_close >= fn.body_end || cond_close != i + 8) continue;
    const std::string& name = toks[i + 3].text;

    // Extent of the error path: a braced block, or one statement.
    size_t b = cond_close + 1, e;
    if (b < fn.body_end && IsPunct(toks[b], "{")) {
      e = MatchBracket(toks, b, fn.body_end, "{", "}");
    } else {
      e = b;
      while (e < fn.body_end && !IsPunct(toks[e], ";")) ++e;
    }
    for (size_t j = b; j < e; ++j) {
      if (!IsIdent(toks[j]) || toks[j].text != name) continue;
      const bool value_call = j + 2 < e && IsPunct(toks[j + 1], ".") &&
                              IsIdent(toks[j + 2]) &&
                              (toks[j + 2].text == "value");
      // *r is a deref unless the `*` follows a type name (a `Foo* r`
      // declaration); keywords like `return *r` are still derefs.
      const bool deref =
          j > b && IsPunct(toks[j - 1], "*") &&
          (j < 2 || !IsIdent(toks[j - 2]) ||
           CallKeywords().count(toks[j - 2].text) != 0);
      const bool arrow = j + 1 < e && IsPunct(toks[j + 1], "->");
      if (value_call || deref || arrow) {
        Finding f;
        f.file = pf.src->path;
        f.line = toks[j].line;
        f.rule = "tabbench-result-on-error";
        f.message = "'" + name + "' is accessed on its !ok() path in " +
                    fn.qualified +
                    " (use .status(), the value is not there)";
        f.related.push_back(
            {pf.src->path, toks[i].line, "error path begins here"});
        findings->push_back(std::move(f));
        break;
      }
    }
  }
}

void CheckUseAfterMove(const FunctionInfo& fn, const ParsedFile& pf,
                       std::vector<Finding>* findings) {
  const std::vector<Token>& toks = pf.toks;
  struct Moved {
    size_t line;
    int depth;
  };
  std::map<std::string, Moved> moved;
  int depth = 0;
  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      // Leaving a scope may loop back (for/while): forget moves made
      // inside it rather than flag the next iteration's reuse.
      for (auto it = moved.begin(); it != moved.end();) {
        if (it->second.depth > depth) {
          it = moved.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }
    // std :: move ( <name> )
    if (IsIdent(t) && t.text == "std" && i + 5 < fn.body_end &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2]) &&
        toks[i + 2].text == "move" && IsPunct(toks[i + 3], "(") &&
        IsIdent(toks[i + 4]) && IsPunct(toks[i + 5], ")")) {
      // `x = std::move(x)` rebinds the name (lambda init-capture); later
      // occurrences are the new binding, not the moved-from original.
      const bool rebind = i >= fn.body_begin + 2 &&
                          IsPunct(toks[i - 1], "=") &&
                          IsIdent(toks[i - 2]) &&
                          toks[i - 2].text == toks[i + 4].text;
      if (!rebind) {
        moved.emplace(toks[i + 4].text, Moved{toks[i + 4].line, depth});
      }
      i += 5;
      continue;
    }
    if (!IsIdent(t)) continue;
    auto it = moved.find(t.text);
    if (it == moved.end()) continue;
    const bool overwrite = AtStatementStart(toks, i, fn.body_begin) &&
                           i + 1 < fn.body_end && IsPunct(toks[i + 1], "=");
    // Reinitializing a moved-from object is legal, not a read.
    const bool reinit =
        i + 2 < fn.body_end && IsPunct(toks[i + 1], ".") &&
        IsIdent(toks[i + 2]) &&
        (toks[i + 2].text == "clear" || toks[i + 2].text == "reset" ||
         toks[i + 2].text == "assign");
    if (overwrite || reinit) {
      moved.erase(it);
      continue;
    }
    Finding f;
    f.file = pf.src->path;
    f.line = t.line;
    f.rule = "tabbench-use-after-move";
    f.message = "'" + t.text + "' in " + fn.qualified +
                " is used after std::move; the value is gone";
    f.related.push_back({pf.src->path, it->second.line, "moved-from here"});
    findings->push_back(std::move(f));
    moved.erase(it);  // one finding per move
  }
}

}  // namespace

void RunStatusFlowPass(const Model& model, std::vector<Finding>* findings) {
  for (const FunctionInfo& fn : model.functions) {
    const ParsedFile& pf = model.files[fn.file_index];
    CheckStatusLocals(fn, pf, findings);
    CheckResultOnError(fn, pf, findings);
    CheckUseAfterMove(fn, pf, findings);
  }
}

// ---------------------------------------------------------------------------
// Nondeterminism taint pass
// ---------------------------------------------------------------------------

void RunTaintPass(const Model& model, std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  struct Taint {
    bool tainted = false;
    std::string why;          // "calls X" or the direct source
    size_t via_line = 0;      // call or source line
    size_t source_fn = 0;     // ultimate source function
  };
  std::vector<Taint> taint(n);

  // Direct sources (lambda bodies included: deferred nondeterminism is
  // still nondeterminism).
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
    if (!facts[i].taint_sources.empty()) {
      taint[i].tainted = true;
      taint[i].why = facts[i].taint_sources[0].what;
      taint[i].via_line = facts[i].taint_sources[0].line;
      taint[i].source_fn = i;
    }
  }

  // Propagate caller-ward to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (taint[i].tainted) continue;
      for (const BodyFacts::Call& c : facts[i].calls) {
        for (size_t callee : ResolveCall(model, c.receiver_type,
                                         model.functions[i].cls, c.name)) {
          if (callee == i || !taint[callee].tainted) continue;
          taint[i].tainted = true;
          taint[i].why = "calls " + model.functions[callee].qualified;
          taint[i].via_line = c.line;
          taint[i].source_fn = taint[callee].source_fn;
          changed = true;
          break;
        }
        if (taint[i].tainted) break;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!taint[i].tainted) continue;
    const FunctionInfo& fn = model.functions[i];
    const std::string& path = model.files[fn.file_index].src->path;
    if (path.rfind("src/core/", 0) != 0 &&
        path.rfind("src/engine/", 0) != 0) {
      continue;
    }
    Finding f;
    f.file = path;
    f.line = fn.line;
    f.rule = "tabbench-nondeterminism";
    f.message = "'" + fn.qualified +
                "' can reach wall-clock/system-RNG nondeterminism (" +
                taint[i].why +
                "); core/ and engine/ results must be reproducible";
    f.related.push_back({path, taint[i].via_line, taint[i].why});
    const size_t src = taint[i].source_fn;
    if (src != i) {
      const FunctionInfo& sfn = model.functions[src];
      f.related.push_back({model.files[sfn.file_index].src->path,
                           taint[src].via_line,
                           "ultimate source: " + taint[src].why + " in " +
                               sfn.qualified});
    }
    findings->push_back(std::move(f));
  }
}

}  // namespace tabbench_analyze
