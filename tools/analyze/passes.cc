#include <algorithm>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "model.h"

/// The four whole-program passes. Everything here consumes the Model built
/// by model.cc and appends Findings; suppression and sorting happen in
/// Analyze() (analyzer.cc).
namespace tabbench_analyze {

namespace {

using tabbench_tok::TokKind;

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }
bool IsPunct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

// ---------------------------------------------------------------------------
// Layering pass
// ---------------------------------------------------------------------------

/// Index of the layer owning `path` (longest matching dir prefix wins), or
/// -1 when the file is outside every declared layer (exempt).
int LayerOf(const LayerSpec& spec, const std::string& path) {
  int best = -1;
  size_t best_len = 0;
  for (size_t li = 0; li < spec.layers.size(); ++li) {
    for (const std::string& dir : spec.layers[li].dirs) {
      const std::string prefix = dir + "/";
      if (path.rfind(prefix, 0) == 0 && prefix.size() > best_len) {
        best = static_cast<int>(li);
        best_len = prefix.size();
      }
    }
  }
  return best;
}

/// Tarjan SCC over an adjacency map keyed by string node ids. Returns the
/// components (each sorted) that contain a cycle: size > 1, or a self-edge.
std::vector<std::vector<std::string>> CyclicComponents(
    const std::map<std::string, std::set<std::string>>& adj) {
  std::vector<std::string> nodes;
  for (const auto& [n, outs] : adj) {
    nodes.push_back(n);
    for (const std::string& m : outs) nodes.push_back(m);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  std::map<std::string, size_t> index, low;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  size_t counter = 0;
  std::vector<std::vector<std::string>> cyclic;

  // Iterative Tarjan (explicit frame stack keeps deep include chains from
  // overflowing the call stack).
  struct Frame {
    std::string node;
    std::vector<std::string> outs;
    size_t next = 0;
  };
  for (const std::string& root : nodes) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames;
    auto push_node = [&](const std::string& n) {
      index[n] = low[n] = counter++;
      stack.push_back(n);
      on_stack.insert(n);
      Frame fr;
      fr.node = n;
      auto it = adj.find(n);
      if (it != adj.end()) {
        fr.outs.assign(it->second.begin(), it->second.end());
      }
      frames.push_back(std::move(fr));
    };
    push_node(root);
    while (!frames.empty()) {
      Frame& fr = frames.back();
      if (fr.next < fr.outs.size()) {
        const std::string& m = fr.outs[fr.next++];
        if (index.count(m) == 0) {
          push_node(m);
        } else if (on_stack.count(m) != 0) {
          low[fr.node] = std::min(low[fr.node], index[m]);
        }
      } else {
        if (low[fr.node] == index[fr.node]) {
          std::vector<std::string> comp;
          while (true) {
            const std::string n = stack.back();
            stack.pop_back();
            on_stack.erase(n);
            comp.push_back(n);
            if (n == fr.node) break;
          }
          bool self_loop = false;
          auto it = adj.find(fr.node);
          if (comp.size() == 1 && it != adj.end() &&
              it->second.count(fr.node) != 0) {
            self_loop = true;
          }
          if (comp.size() > 1 || self_loop) {
            std::sort(comp.begin(), comp.end());
            cyclic.push_back(std::move(comp));
          }
        }
        const std::string done = fr.node;
        frames.pop_back();
        if (!frames.empty()) {
          low[frames.back().node] =
              std::min(low[frames.back().node], low[done]);
        }
      }
    }
  }
  std::sort(cyclic.begin(), cyclic.end());
  return cyclic;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

void RunLayeringPass(const Model& model, const LayerSpec& spec,
                     std::vector<Finding>* findings) {
  std::set<std::pair<std::string, std::string>> forbidden(
      spec.forbid.begin(), spec.forbid.end());

  // Edge checks: order violations and forbid pairs.
  for (const ParsedFile& pf : model.files) {
    const int src_layer = LayerOf(spec, pf.src->path);
    if (src_layer < 0) continue;
    for (const IncludeEdge& inc : pf.includes) {
      if (inc.resolved.empty()) continue;
      const int dst_layer = LayerOf(spec, inc.resolved);
      if (dst_layer < 0) continue;
      const std::string& src_name = spec.layers[src_layer].name;
      const std::string& dst_name = spec.layers[dst_layer].name;
      Finding f;
      f.file = pf.src->path;
      f.line = inc.line;
      f.rule = "tabbench-layering";
      if (forbidden.count({src_name, dst_name}) != 0) {
        f.message = "layer '" + src_name + "' must never include layer '" +
                    dst_name + "' (forbidden edge), but includes \"" +
                    inc.raw + "\"";
      } else if (dst_layer > src_layer) {
        f.message = "layer '" + src_name + "' includes \"" + inc.raw +
                    "\" from higher layer '" + dst_name +
                    "'; dependencies must point downward";
      } else {
        continue;
      }
      f.related.push_back({inc.resolved, 1, "included file (layer '" +
                                                dst_name + "')"});
      findings->push_back(std::move(f));
    }
  }

  // Include cycles (checked across the whole file set, layered or not —
  // a cycle is broken architecture regardless of layer assignment).
  std::map<std::string, std::set<std::string>> graph;
  std::map<std::pair<std::string, std::string>, size_t> edge_line;
  for (const ParsedFile& pf : model.files) {
    for (const IncludeEdge& inc : pf.includes) {
      if (inc.resolved.empty() || inc.resolved == pf.src->path) continue;
      graph[pf.src->path].insert(inc.resolved);
      edge_line.emplace(std::make_pair(pf.src->path, inc.resolved),
                        inc.line);
    }
  }
  for (const std::vector<std::string>& comp : CyclicComponents(graph)) {
    Finding f;
    f.rule = "tabbench-include-cycle";
    f.message = "include cycle among: " + JoinNames(comp);
    const std::set<std::string> in_comp(comp.begin(), comp.end());
    for (const std::string& a : comp) {
      auto it = graph.find(a);
      if (it == graph.end()) continue;
      for (const std::string& b : it->second) {
        if (in_comp.count(b) == 0) continue;
        const size_t line = edge_line[{a, b}];
        if (f.file.empty()) {
          f.file = a;
          f.line = line;
        }
        f.related.push_back({a, line, "includes " + b});
      }
    }
    findings->push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Shared body facts (lock-order, taint, lockset, blocking, cancellation)
// ---------------------------------------------------------------------------

namespace {

struct BodyFacts {
  struct Acquire {
    std::string mutex;  // qualified ("ThreadPool::mu_") or bare local name
    size_t line = 0;
    bool in_lambda = false;
  };
  struct Call {
    std::string receiver_type;  // "" for a bare call
    std::string name;
    size_t line = 0;
    size_t tok = 0;  // token index of the callee name
    bool in_lambda = false;
    std::vector<Acquire> held;  // locks held at the call site
  };
  /// A read or write of a class member field ("st->charge_sum",
  /// "queue_", "this->error"), with the lockset held at the site.
  struct Access {
    std::string cls;    // owning class of the field
    std::string field;  // unqualified member name
    size_t line = 0;
    std::set<std::string> held;  // qualified mutexes held here
  };
  /// A directly blocking operation (fsync, sleeps, a Wait on a non-condvar
  /// object), with the lockset held at the site.
  struct Block {
    std::string what;
    size_t line = 0;
    bool in_lambda = false;
    std::vector<Acquire> held;
  };
  /// A loop statement; `unbounded` marks for(;;)/while(true)/while(1).
  /// The token range covers the loop body (and, for while, the condition).
  struct Loop {
    size_t line = 0;
    size_t range_begin = 0;
    size_t range_end = 0;
    bool unbounded = false;
  };
  std::vector<Acquire> acquires;
  std::vector<Call> calls;
  std::vector<Access> accesses;
  std::vector<Block> blocks;
  std::vector<Loop> loops;
  struct Source {
    std::string what;
    size_t line = 0;
  };
  std::vector<Source> taint_sources;
  /// Nested-acquisition edges observed directly in this body:
  /// (held lock, newly acquired lock). Lambda bodies contribute their own
  /// internal edges, but never edges across the lambda boundary.
  std::vector<std::pair<Acquire, Acquire>> nested;
};

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kKw = {
      "if",          "for",     "while",       "switch",  "return",
      "sizeof",      "catch",   "new",         "delete",  "throw",
      "static_cast", "assert",  "const_cast",  "alignof", "decltype",
      "noexcept",    "typeid",  "co_return",   "case",    "else",
      "do",          "default", "co_await",    "defined"};
  return kKw;
}

/// Resolves the class type of a simple receiver name: `this`, a local or
/// parameter from `symbols`, then a member of the enclosing class. Returns
/// "" when unknown.
std::string ResolveReceiverType(
    const Model& model, const FunctionInfo& fn,
    const std::map<std::string, std::string>& symbols,
    const std::string& recv) {
  if (recv == "this") return fn.cls;
  auto sit = symbols.find(recv);
  if (sit != symbols.end()) {
    // Only class types the model knows are usable downstream.
    return model.classes.count(sit->second) != 0 ? sit->second
                                                 : std::string();
  }
  if (!fn.cls.empty()) {
    auto cit = model.classes.find(fn.cls);
    if (cit != model.classes.end()) {
      auto mit = cit->second.members.find(recv);
      if (mit != cit->second.members.end() && !mit->second.type.empty() &&
          mit->second.type != "std") {
        return mit->second.type;
      }
    }
  }
  return "";
}

/// Resolves the expression tokens of `MutexLock lock(&<expr>)` to a
/// qualified mutex id; "" when the receiver's type is unknown.
std::string ResolveMutexExpr(const Model& model, const FunctionInfo& fn,
                             const std::map<std::string, std::string>& symbols,
                             const std::vector<Token>& toks, size_t b,
                             size_t e) {
  std::vector<const Token*> parts;
  for (size_t i = b; i < e; ++i) parts.push_back(&toks[i]);
  if (parts.empty()) return "";
  if (parts.size() == 1 && IsIdent(*parts[0])) {
    const std::string& name = parts[0]->text;
    if (symbols.count(name) != 0) return name;  // a local/param Mutex
    if (!fn.cls.empty()) return fn.cls + "::" + name;
    return name;  // local or global mutex in a free function
  }
  // this->mu_ / obj.mu_ / obj->mu_ / Class::mu
  if (parts.size() == 3 && IsIdent(*parts[0]) && IsIdent(*parts[2])) {
    const std::string& recv = parts[0]->text;
    const std::string& name = parts[2]->text;
    if (IsPunct(*parts[1], "::")) return recv + "::" + name;
    if (IsPunct(*parts[1], "->") || IsPunct(*parts[1], ".")) {
      const std::string type =
          ResolveReceiverType(model, fn, symbols, recv);
      if (!type.empty()) return type + "::" + name;
    }
  }
  return "";
}

/// Matching close for the bracket at `open` (toks[open] is "(" / "[" /
/// "{"); returns body_end when unbalanced.
size_t MatchBracket(const std::vector<Token>& toks, size_t open,
                    size_t body_end, const char* open_text,
                    const char* close_text) {
  int depth = 0;
  for (size_t i = open; i < body_end; ++i) {
    if (IsPunct(toks[i], open_text)) ++depth;
    if (IsPunct(toks[i], close_text) && --depth == 0) return i;
  }
  return body_end;
}

/// Token indices of braces that open lambda bodies within
/// [body_begin, body_end): `[caps] (params)? specifiers* {`.
std::set<size_t> LambdaBraces(const std::vector<Token>& toks,
                              size_t body_begin, size_t body_end) {
  std::set<size_t> braces;
  for (size_t i = body_begin; i < body_end; ++i) {
    if (!IsPunct(toks[i], "[")) continue;
    size_t close = MatchBracket(toks, i, body_end, "[", "]");
    if (close >= body_end) continue;
    size_t j = close + 1;
    if (j < body_end && IsPunct(toks[j], "(")) {
      j = MatchBracket(toks, j, body_end, "(", ")") + 1;
    }
    // Trailing specifiers / return type before the body.
    while (j < body_end &&
           (IsPunct(toks[j], "->") ||
            (IsIdent(toks[j]) &&
             (toks[j].text == "mutable" || toks[j].text == "noexcept" ||
              toks[j].text == "const")) ||
            IsPunct(toks[j], "::") || IsPunct(toks[j], "<") ||
            IsPunct(toks[j], ">") ||
            (IsIdent(toks[j]) && j + 1 < body_end &&
             (IsPunct(toks[j + 1], "{") || IsPunct(toks[j + 1], "::") ||
              IsPunct(toks[j + 1], "<"))))) {
      ++j;
    }
    if (j < body_end && IsPunct(toks[j], "{")) braces.insert(j);
  }
  return braces;
}

/// Local symbol table for a function: parameter and local-declaration
/// names mapped to their type's first identifier ("RunState" for
/// `RunState* st`). Locals are only recorded when the type names a class
/// the model knows, so plain assignments never misparse as declarations.
std::map<std::string, std::string> BuildSymbols(const Model& model,
                                                const FunctionInfo& fn) {
  const std::vector<Token>& toks = model.files[fn.file_index].toks;
  std::map<std::string, std::string> symbols;

  // Parameters: split on top-level commas; the type is the first
  // non-qualifier identifier of the segment, the name the last identifier.
  size_t seg = fn.params_begin;
  int depth = 0;
  for (size_t i = fn.params_begin; i <= fn.params_end; ++i) {
    const bool at_end = i == fn.params_end;
    if (!at_end) {
      if (IsPunct(toks[i], "(") || IsPunct(toks[i], "<")) ++depth;
      if (IsPunct(toks[i], ")") || IsPunct(toks[i], ">")) --depth;
    }
    if (!at_end && !(depth == 0 && IsPunct(toks[i], ","))) continue;
    std::string type, name;
    for (size_t j = seg; j < i; ++j) {
      if (!IsIdent(toks[j])) {
        if (IsPunct(toks[j], "=")) break;  // default argument
        continue;
      }
      if (type.empty() && toks[j].text != "const" &&
          toks[j].text != "struct" && toks[j].text != "class") {
        type = toks[j].text;
      }
      name = toks[j].text;
    }
    if (!type.empty() && !name.empty() && name != type) {
      symbols[name] = type;
    }
    seg = i + 1;
  }

  // Locals: `T name ...` / `T* name` / `T& name` at a statement or
  // parenthesized-header start, T a known class.
  for (size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!IsIdent(toks[i]) || model.classes.count(toks[i].text) == 0) {
      continue;
    }
    if (i > fn.body_begin) {
      const Token& p = toks[i - 1];
      const bool starts = IsPunct(p, ";") || IsPunct(p, "{") ||
                          IsPunct(p, "}") || IsPunct(p, "(") ||
                          (IsIdent(p) && p.text == "const");
      if (!starts) continue;
    }
    size_t j = i + 1;
    while (j < fn.body_end &&
           (IsPunct(toks[j], "*") || IsPunct(toks[j], "&") ||
            (IsIdent(toks[j]) && toks[j].text == "const"))) {
      ++j;
    }
    if (j + 1 >= fn.body_end || !IsIdent(toks[j])) continue;
    const Token& after = toks[j + 1];
    if (IsPunct(after, ";") || IsPunct(after, "=") ||
        IsPunct(after, "(") || IsPunct(after, "{") ||
        IsPunct(after, ":") || IsPunct(after, ",")) {
      symbols[toks[j].text] = toks[i].text;
    }
  }
  return symbols;
}

/// The TB_REQUIRES set in force for `fn`: its definition-site set merged
/// with the in-class declaration's (ClassInfo::method_requires).
std::set<std::string> RequiresHeld(const Model& model,
                                   const FunctionInfo& fn) {
  std::set<std::string> req = fn.requires_held;
  if (!fn.cls.empty()) {
    auto cit = model.classes.find(fn.cls);
    if (cit != model.classes.end()) {
      auto rit = cit->second.method_requires.find(fn.name);
      if (rit != cit->second.method_requires.end()) {
        req.insert(rit->second.begin(), rit->second.end());
      }
    }
  }
  return req;
}

/// Calls that block the thread no matter the receiver.
const std::set<std::string>& BlockingCallNames() {
  static const std::set<std::string> kNames = {
      "fsync",     "fdatasync",  "sleep_for", "sleep_until",
      "usleep",    "nanosleep",  "system",    "popen",
      "SleepWithCancellation"};
  return kNames;
}

BodyFacts ExtractBodyFacts(const Model& model, const FunctionInfo& fn) {
  const ParsedFile& pf = model.files[fn.file_index];
  const std::vector<Token>& toks = pf.toks;
  BodyFacts facts;

  const std::map<std::string, std::string> symbols =
      BuildSymbols(model, fn);
  const std::set<size_t> lambda_braces =
      LambdaBraces(toks, fn.body_begin, fn.body_end);

  // TB_REQUIRES locks are held throughout the function's own frame (but
  // not inside lambdas it defines — those run on another thread later).
  std::vector<BodyFacts::Acquire> requires_acqs;
  for (const std::string& m : RequiresHeld(model, fn)) {
    requires_acqs.push_back({m, fn.line, false});
  }

  struct Held {
    BodyFacts::Acquire acq;
    int depth;
    size_t frame;  // lambda frame the lock was taken in (0 = function)
  };
  std::vector<Held> held;
  std::vector<bool> brace_is_lambda;   // stack mirroring brace depth
  std::vector<size_t> frame_stack;     // open lambda frames
  size_t next_frame = 1;
  auto cur_frame = [&frame_stack]() -> size_t {
    return frame_stack.empty() ? 0 : frame_stack.back();
  };
  // Locks visible at the current point: those taken in the innermost
  // lambda frame (an enclosing function's locks are NOT held when a
  // deferred lambda body eventually runs), plus TB_REQUIRES in frame 0.
  auto effective_held = [&]() {
    std::vector<BodyFacts::Acquire> out;
    const size_t f = cur_frame();
    if (f == 0) out = requires_acqs;
    for (const Held& h : held) {
      if (h.frame == f) out.push_back(h.acq);
    }
    return out;
  };
  auto effective_held_names = [&]() {
    std::set<std::string> out;
    for (const BodyFacts::Acquire& a : effective_held()) {
      out.insert(a.mutex);
    }
    return out;
  };

  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      const bool is_lambda = lambda_braces.count(i) != 0;
      brace_is_lambda.push_back(is_lambda);
      if (is_lambda) frame_stack.push_back(next_frame++);
      continue;
    }
    if (IsPunct(t, "}")) {
      if (!brace_is_lambda.empty()) {
        if (brace_is_lambda.back()) frame_stack.pop_back();
        brace_is_lambda.pop_back();
      }
      const int depth = static_cast<int>(brace_is_lambda.size());
      while (!held.empty() && held.back().depth > depth) held.pop_back();
      continue;
    }
    if (!IsIdent(t)) continue;
    const bool in_lambda = cur_frame() != 0;

    // MutexLock <name> ( & <expr> )
    if (t.text == "MutexLock" && i + 2 < fn.body_end &&
        IsIdent(toks[i + 1]) && IsPunct(toks[i + 2], "(")) {
      const size_t close = MatchBracket(toks, i + 2, fn.body_end, "(", ")");
      size_t eb = i + 3;
      if (eb < close && IsPunct(toks[eb], "&")) ++eb;
      const std::string mutex =
          ResolveMutexExpr(model, fn, symbols, toks, eb, close);
      if (!mutex.empty()) {
        BodyFacts::Acquire acq{mutex, t.line, in_lambda};
        facts.acquires.push_back(acq);
        // Nesting edges form within the current frame only: a lock held
        // at the submit site is not held when the lambda later runs.
        for (const BodyFacts::Acquire& h : effective_held()) {
          facts.nested.emplace_back(h, acq);
        }
        held.push_back({acq, static_cast<int>(brace_is_lambda.size()),
                        cur_frame()});
      }
      i = close;
      continue;
    }

    // Taint sources.
    if (t.text == "system_clock" && i + 2 < fn.body_end &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2]) &&
        toks[i + 2].text == "now") {
      facts.taint_sources.push_back({"system_clock::now()", t.line});
      i += 2;
      continue;
    }
    if (t.text == "random_device") {
      facts.taint_sources.push_back({"std::random_device", t.line});
      continue;
    }
    const bool prev_is_member_access =
        i > fn.body_begin &&
        (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->"));
    if ((t.text == "rand" || t.text == "srand") && !prev_is_member_access &&
        i + 1 < fn.body_end && IsPunct(toks[i + 1], "(")) {
      facts.taint_sources.push_back({t.text + "()", t.line});
    }
    if (t.text == "time" && !prev_is_member_access && i + 2 < fn.body_end &&
        IsPunct(toks[i + 1], "(") && IsIdent(toks[i + 2]) &&
        (toks[i + 2].text == "nullptr" || toks[i + 2].text == "NULL")) {
      facts.taint_sources.push_back({"time(nullptr)", t.line});
    }

    // Loop statements. The trailing `while` of a do-while is skipped (its
    // body, already scanned, precedes it).
    if ((t.text == "for" || t.text == "while") && i + 1 < fn.body_end &&
        IsPunct(toks[i + 1], "(") &&
        !(t.text == "while" && i > fn.body_begin &&
          IsPunct(toks[i - 1], "}"))) {
      const size_t hclose =
          MatchBracket(toks, i + 1, fn.body_end, "(", ")");
      if (hclose < fn.body_end) {
        BodyFacts::Loop loop;
        loop.line = t.line;
        if (t.text == "for") {
          size_t semis = 0, others = 0;
          for (size_t j = i + 2; j < hclose; ++j) {
            if (IsPunct(toks[j], ";")) {
              ++semis;
            } else {
              ++others;
            }
          }
          loop.unbounded = semis == 2 && others == 0;  // for (;;)
        } else {
          loop.unbounded = hclose == i + 3 &&
                           (toks[i + 2].text == "true" ||
                            toks[i + 2].text == "1");
        }
        size_t body_e = hclose + 1;
        if (body_e < fn.body_end && IsPunct(toks[body_e], "{")) {
          body_e = MatchBracket(toks, body_e, fn.body_end, "{", "}");
        } else {
          while (body_e < fn.body_end && !IsPunct(toks[body_e], ";")) {
            ++body_e;
          }
        }
        loop.range_begin = i + 2;  // condition + body
        loop.range_end = body_e;
        facts.loops.push_back(loop);
      }
    }

    // Directly blocking operations, with the lockset held at the site.
    if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "(") &&
        BlockingCallNames().count(t.text) != 0) {
      facts.blocks.push_back(
          {t.text + "()", t.line, in_lambda, effective_held()});
    }
    // A Wait on anything but a CondVar parks the thread (Latch,
    // ThreadPool, futures). CondVar::Wait releases the mutex it requires,
    // so it is the one legitimate wait-under-lock.
    if (t.text == "Wait" && i + 1 < fn.body_end &&
        IsPunct(toks[i + 1], "(") && i >= fn.body_begin + 2 &&
        (IsPunct(toks[i - 1], ".") || IsPunct(toks[i - 1], "->")) &&
        IsIdent(toks[i - 2]) &&
        !(i >= fn.body_begin + 3 && (IsPunct(toks[i - 3], ".") ||
                                     IsPunct(toks[i - 3], "->")))) {
      const std::string type =
          ResolveReceiverType(model, fn, symbols, toks[i - 2].text);
      if (!type.empty() && type != "CondVar") {
        facts.blocks.push_back(
            {type + "::Wait()", t.line, in_lambda, effective_held()});
      }
    }

    // Member-field accesses (for the lockset pass).
    do {
      if (CallKeywords().count(t.text) != 0) break;
      if (i + 1 < fn.body_end && (IsPunct(toks[i + 1], "(") ||
                                  IsPunct(toks[i + 1], "::"))) {
        break;  // a call or a qualifier, not a field read
      }
      if (prev_is_member_access) {
        if (i < fn.body_begin + 2 || !IsIdent(toks[i - 2])) break;
        if (i >= fn.body_begin + 3 && (IsPunct(toks[i - 3], ".") ||
                                       IsPunct(toks[i - 3], "->"))) {
          break;  // chained receiver (a.b.c): unresolvable
        }
        const std::string type =
            ResolveReceiverType(model, fn, symbols, toks[i - 2].text);
        if (type.empty()) break;
        auto cit = model.classes.find(type);
        if (cit == model.classes.end() ||
            cit->second.members.count(t.text) == 0) {
          break;
        }
        facts.accesses.push_back(
            {type, t.text, t.line, effective_held_names()});
      } else {
        if (fn.cls.empty()) break;
        if (i > fn.body_begin &&
            (IsPunct(toks[i - 1], "::") || IsPunct(toks[i - 1], "~"))) {
          break;
        }
        // `Type name` is a declaration of a shadowing local, not a read.
        if (i > fn.body_begin && IsIdent(toks[i - 1]) &&
            CallKeywords().count(toks[i - 1].text) == 0) {
          break;
        }
        if (symbols.count(t.text) != 0) break;  // shadowed local/param
        auto cit = model.classes.find(fn.cls);
        if (cit == model.classes.end() ||
            cit->second.members.count(t.text) == 0) {
          break;
        }
        facts.accesses.push_back(
            {fn.cls, t.text, t.line, effective_held_names()});
      }
    } while (false);

    // Call sites: ident followed by "(", excluding keywords and
    // declarations (`Type name(...)` — ident preceded by another ident).
    if (i + 1 < fn.body_end && IsPunct(toks[i + 1], "(") &&
        CallKeywords().count(t.text) == 0) {
      if (i > fn.body_begin && IsIdent(toks[i - 1]) &&
          CallKeywords().count(toks[i - 1].text) == 0) {
        continue;  // declaration, not a call
      }
      BodyFacts::Call call;
      call.name = t.text;
      call.line = t.line;
      call.tok = i;
      call.in_lambda = in_lambda;
      if (i >= fn.body_begin + 2 && IsIdent(toks[i - 2]) &&
          (IsPunct(toks[i - 1], "::") || IsPunct(toks[i - 1], ".") ||
           IsPunct(toks[i - 1], "->"))) {
        const std::string& recv = toks[i - 2].text;
        if (IsPunct(toks[i - 1], "::")) {
          call.receiver_type = recv;
        } else {
          if (i >= fn.body_begin + 3 && (IsPunct(toks[i - 3], ".") ||
                                         IsPunct(toks[i - 3], "->"))) {
            continue;  // chained receiver expression: unresolvable
          }
          call.receiver_type =
              ResolveReceiverType(model, fn, symbols, recv);
          if (call.receiver_type.empty()) continue;  // unresolvable
        }
      } else if (i > fn.body_begin && (IsPunct(toks[i - 1], ".") ||
                                       IsPunct(toks[i - 1], "->"))) {
        continue;  // complex receiver expression: unresolvable
      }
      call.held = effective_held();
      facts.calls.push_back(std::move(call));
    }
  }
  return facts;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lock-order pass
// ---------------------------------------------------------------------------

void RunLockOrderPass(const Model& model, std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
  }

  // Representative acquisition site per mutex (for related locations).
  std::map<std::string, RelatedSite> acq_site;
  for (size_t i = 0; i < n; ++i) {
    const std::string& file =
        model.files[model.functions[i].file_index].src->path;
    for (const BodyFacts::Acquire& a : facts[i].acquires) {
      acq_site.emplace(a.mutex,
                       RelatedSite{file, a.line,
                                   "acquired in " +
                                       model.functions[i].qualified});
    }
  }

  // may_acquire: mutexes a function can take, directly or via callees
  // (lambda bodies excluded — they run outside the caller's lock scope).
  std::vector<std::set<std::string>> may_acquire(n);
  std::vector<std::vector<size_t>> callees(n);
  for (size_t i = 0; i < n; ++i) {
    for (const BodyFacts::Acquire& a : facts[i].acquires) {
      if (!a.in_lambda) may_acquire[i].insert(a.mutex);
    }
    std::set<size_t> seen;
    for (const BodyFacts::Call& c : facts[i].calls) {
      if (c.in_lambda) continue;
      for (size_t callee : ResolveCall(model, c.receiver_type,
                                       model.functions[i].cls, c.name)) {
        if (callee != i && seen.insert(callee).second) {
          callees[i].push_back(callee);
        }
      }
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      for (size_t c : callees[i]) {
        for (const std::string& m : may_acquire[c]) {
          if (may_acquire[i].insert(m).second) changed = true;
        }
      }
    }
  }

  // The acquisition-order graph: direct nesting, calls under a held lock,
  // and declared TB_ACQUIRED_BEFORE/AFTER edges.
  struct EdgeInfo {
    std::string file;
    size_t line = 0;
    std::vector<RelatedSite> related;
  };
  std::map<std::pair<std::string, std::string>, EdgeInfo> edges;
  auto add_edge = [&edges](const std::string& from, const std::string& to,
                           EdgeInfo info) {
    edges.emplace(std::make_pair(from, to), std::move(info));
  };

  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    const std::string& file = model.files[fn.file_index].src->path;
    for (const auto& [from, to] : facts[i].nested) {
      EdgeInfo info;
      info.file = file;
      info.line = to.line;
      info.related.push_back(
          {file, from.line, from.mutex + " acquired here, still held"});
      info.related.push_back(
          {file, to.line, to.mutex + " acquired while holding " +
                              from.mutex + " (in " + fn.qualified + ")"});
      add_edge(from.mutex, to.mutex, std::move(info));
    }
    for (const BodyFacts::Call& c : facts[i].calls) {
      // c.held is frame-correct: inside a lambda it holds only the
      // lambda's own locks, so these edges are valid there too.
      if (c.held.empty()) continue;
      for (size_t callee : ResolveCall(model, c.receiver_type, fn.cls,
                                       c.name)) {
        for (const std::string& m : may_acquire[callee]) {
          for (const BodyFacts::Acquire& h : c.held) {
            EdgeInfo info;
            info.file = file;
            info.line = c.line;
            info.related.push_back(
                {file, h.line, h.mutex + " acquired here, still held"});
            info.related.push_back(
                {file, c.line,
                 "call to " + model.functions[callee].qualified +
                     " which may acquire " + m + " (in " + fn.qualified +
                     ")"});
            auto site = acq_site.find(m);
            if (site != acq_site.end()) info.related.push_back(site->second);
            add_edge(h.mutex, m, std::move(info));
          }
        }
      }
    }
  }
  for (const auto& [cls_name, cls] : model.classes) {
    (void)cls_name;
    for (const ClassInfo::DeclaredEdge& de : cls.declared_edges) {
      // Find the file that declares the edge for the site.
      for (const ParsedFile& pf : model.files) {
        if (de.line == 0 || de.line > pf.raw_lines.size()) continue;
        if (pf.raw_lines[de.line - 1].find("TB_ACQUIRED_") ==
            std::string::npos) {
          continue;
        }
        EdgeInfo info;
        info.file = pf.src->path;
        info.line = de.line;
        info.related.push_back({pf.src->path, de.line,
                                "declared: " + de.from +
                                    " acquired before " + de.to});
        add_edge(de.from, de.to, std::move(info));
        break;
      }
    }
  }

  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, info] : edges) {
    (void)info;
    adj[edge.first].insert(edge.second);
  }
  for (const std::vector<std::string>& comp : CyclicComponents(adj)) {
    const std::set<std::string> in_comp(comp.begin(), comp.end());
    Finding f;
    f.rule = "tabbench-lock-order";
    if (comp.size() == 1) {
      f.message = "recursive acquisition of " + comp[0] +
                  ": already held when acquired again (self-deadlock)";
    } else {
      f.message =
          "lock-order inversion (potential deadlock) among: " +
          JoinNames(comp);
    }
    for (const std::string& a : comp) {
      for (const std::string& b : comp) {
        auto it = edges.find({a, b});
        if (it == edges.end()) continue;
        if (f.file.empty()) {
          f.file = it->second.file;
          f.line = it->second.line;
        }
        for (const RelatedSite& s : it->second.related) {
          f.related.push_back(s);
        }
      }
    }
    findings->push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Status-flow pass
// ---------------------------------------------------------------------------

namespace {

/// True when toks[i] starts a statement (previous token is ; { } or the
/// body beginning).
bool AtStatementStart(const std::vector<Token>& toks, size_t i,
                      size_t body_begin) {
  if (i == body_begin) return true;
  const Token& p = toks[i - 1];
  return IsPunct(p, ";") || IsPunct(p, "{") || IsPunct(p, "}");
}

void CheckStatusLocals(const FunctionInfo& fn, const ParsedFile& pf,
                       std::vector<Finding>* findings) {
  const std::vector<Token>& toks = pf.toks;
  for (size_t i = fn.body_begin; i + 2 < fn.body_end; ++i) {
    // `Status <name> =` / `Status <name> (` at statement start.
    if (!IsIdent(toks[i]) || toks[i].text != "Status") continue;
    if (!AtStatementStart(toks, i, fn.body_begin)) continue;
    if (!IsIdent(toks[i + 1])) continue;
    if (!IsPunct(toks[i + 2], "=") && !IsPunct(toks[i + 2], "(")) continue;
    const std::string& name = toks[i + 1].text;
    const size_t decl_line = toks[i + 1].line;

    bool used = false;
    for (size_t j = i + 3; j < fn.body_end && !used; ++j) {
      if (!IsIdent(toks[j]) || toks[j].text != name) continue;
      const bool overwrite = AtStatementStart(toks, j, fn.body_begin) &&
                             j + 1 < fn.body_end &&
                             IsPunct(toks[j + 1], "=");
      if (!overwrite) used = true;
    }
    if (!used) {
      Finding f;
      f.file = pf.src->path;
      f.line = decl_line;
      f.rule = "tabbench-status-local";
      f.message = "Status local '" + name + "' in " + fn.qualified +
                  " is never consulted (check .ok() or return it)";
      findings->push_back(std::move(f));
    }
  }
}

void CheckResultOnError(const FunctionInfo& fn, const ParsedFile& pf,
                        std::vector<Finding>* findings) {
  const std::vector<Token>& toks = pf.toks;
  for (size_t i = fn.body_begin; i + 7 < fn.body_end; ++i) {
    // `if ( ! <name> . ok ( ) )` — then look for <name>.value() or
    // *<name> inside the guarded statement/block.
    if (!IsIdent(toks[i]) || toks[i].text != "if") continue;
    if (!IsPunct(toks[i + 1], "(") || !IsPunct(toks[i + 2], "!")) continue;
    if (!IsIdent(toks[i + 3])) continue;
    if (!IsPunct(toks[i + 4], ".") || !IsIdent(toks[i + 5]) ||
        toks[i + 5].text != "ok") {
      continue;
    }
    if (!IsPunct(toks[i + 6], "(") || !IsPunct(toks[i + 7], ")")) continue;
    const size_t cond_close =
        MatchBracket(toks, i + 1, fn.body_end, "(", ")");
    if (cond_close >= fn.body_end || cond_close != i + 8) continue;
    const std::string& name = toks[i + 3].text;

    // Extent of the error path: a braced block, or one statement.
    size_t b = cond_close + 1, e;
    if (b < fn.body_end && IsPunct(toks[b], "{")) {
      e = MatchBracket(toks, b, fn.body_end, "{", "}");
    } else {
      e = b;
      while (e < fn.body_end && !IsPunct(toks[e], ";")) ++e;
    }
    for (size_t j = b; j < e; ++j) {
      if (!IsIdent(toks[j]) || toks[j].text != name) continue;
      const bool value_call = j + 2 < e && IsPunct(toks[j + 1], ".") &&
                              IsIdent(toks[j + 2]) &&
                              (toks[j + 2].text == "value");
      // *r is a deref unless the `*` follows a type name (a `Foo* r`
      // declaration); keywords like `return *r` are still derefs.
      const bool deref =
          j > b && IsPunct(toks[j - 1], "*") &&
          (j < 2 || !IsIdent(toks[j - 2]) ||
           CallKeywords().count(toks[j - 2].text) != 0);
      const bool arrow = j + 1 < e && IsPunct(toks[j + 1], "->");
      if (value_call || deref || arrow) {
        Finding f;
        f.file = pf.src->path;
        f.line = toks[j].line;
        f.rule = "tabbench-result-on-error";
        f.message = "'" + name + "' is accessed on its !ok() path in " +
                    fn.qualified +
                    " (use .status(), the value is not there)";
        f.related.push_back(
            {pf.src->path, toks[i].line, "error path begins here"});
        findings->push_back(std::move(f));
        break;
      }
    }
  }
}

void CheckUseAfterMove(const FunctionInfo& fn, const ParsedFile& pf,
                       std::vector<Finding>* findings) {
  const std::vector<Token>& toks = pf.toks;
  struct Moved {
    size_t line;
    int depth;
  };
  std::map<std::string, Moved> moved;
  int depth = 0;
  for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
    const Token& t = toks[i];
    if (IsPunct(t, "{")) {
      ++depth;
      continue;
    }
    if (IsPunct(t, "}")) {
      --depth;
      // Leaving a scope may loop back (for/while): forget moves made
      // inside it rather than flag the next iteration's reuse.
      for (auto it = moved.begin(); it != moved.end();) {
        if (it->second.depth > depth) {
          it = moved.erase(it);
        } else {
          ++it;
        }
      }
      continue;
    }
    // std :: move ( <name> )
    if (IsIdent(t) && t.text == "std" && i + 5 < fn.body_end &&
        IsPunct(toks[i + 1], "::") && IsIdent(toks[i + 2]) &&
        toks[i + 2].text == "move" && IsPunct(toks[i + 3], "(") &&
        IsIdent(toks[i + 4]) && IsPunct(toks[i + 5], ")")) {
      // `x = std::move(x)` rebinds the name (lambda init-capture); later
      // occurrences are the new binding, not the moved-from original.
      const bool rebind = i >= fn.body_begin + 2 &&
                          IsPunct(toks[i - 1], "=") &&
                          IsIdent(toks[i - 2]) &&
                          toks[i - 2].text == toks[i + 4].text;
      if (!rebind) {
        moved.emplace(toks[i + 4].text, Moved{toks[i + 4].line, depth});
      }
      i += 5;
      continue;
    }
    if (!IsIdent(t)) continue;
    auto it = moved.find(t.text);
    if (it == moved.end()) continue;
    const bool overwrite = AtStatementStart(toks, i, fn.body_begin) &&
                           i + 1 < fn.body_end && IsPunct(toks[i + 1], "=");
    // Reinitializing a moved-from object is legal, not a read.
    const bool reinit =
        i + 2 < fn.body_end && IsPunct(toks[i + 1], ".") &&
        IsIdent(toks[i + 2]) &&
        (toks[i + 2].text == "clear" || toks[i + 2].text == "reset" ||
         toks[i + 2].text == "assign");
    if (overwrite || reinit) {
      moved.erase(it);
      continue;
    }
    Finding f;
    f.file = pf.src->path;
    f.line = t.line;
    f.rule = "tabbench-use-after-move";
    f.message = "'" + t.text + "' in " + fn.qualified +
                " is used after std::move; the value is gone";
    f.related.push_back({pf.src->path, it->second.line, "moved-from here"});
    findings->push_back(std::move(f));
    moved.erase(it);  // one finding per move
  }
}

}  // namespace

void RunStatusFlowPass(const Model& model, std::vector<Finding>* findings) {
  for (const FunctionInfo& fn : model.functions) {
    const ParsedFile& pf = model.files[fn.file_index];
    CheckStatusLocals(fn, pf, findings);
    CheckResultOnError(fn, pf, findings);
    CheckUseAfterMove(fn, pf, findings);
  }
}

// ---------------------------------------------------------------------------
// Nondeterminism taint pass
// ---------------------------------------------------------------------------

void RunTaintPass(const Model& model, std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  struct Taint {
    bool tainted = false;
    std::string why;          // "calls X" or the direct source
    size_t via_line = 0;      // call or source line
    size_t source_fn = 0;     // ultimate source function
  };
  std::vector<Taint> taint(n);

  // Direct sources (lambda bodies included: deferred nondeterminism is
  // still nondeterminism).
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
    if (!facts[i].taint_sources.empty()) {
      taint[i].tainted = true;
      taint[i].why = facts[i].taint_sources[0].what;
      taint[i].via_line = facts[i].taint_sources[0].line;
      taint[i].source_fn = i;
    }
  }

  // Propagate caller-ward to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (taint[i].tainted) continue;
      for (const BodyFacts::Call& c : facts[i].calls) {
        for (size_t callee : ResolveCall(model, c.receiver_type,
                                         model.functions[i].cls, c.name)) {
          if (callee == i || !taint[callee].tainted) continue;
          taint[i].tainted = true;
          taint[i].why = "calls " + model.functions[callee].qualified;
          taint[i].via_line = c.line;
          taint[i].source_fn = taint[callee].source_fn;
          changed = true;
          break;
        }
        if (taint[i].tainted) break;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (!taint[i].tainted) continue;
    const FunctionInfo& fn = model.functions[i];
    const std::string& path = model.files[fn.file_index].src->path;
    if (path.rfind("src/core/", 0) != 0 &&
        path.rfind("src/engine/", 0) != 0) {
      continue;
    }
    Finding f;
    f.file = path;
    f.line = fn.line;
    f.rule = "tabbench-nondeterminism";
    f.message = "'" + fn.qualified +
                "' can reach wall-clock/system-RNG nondeterminism (" +
                taint[i].why +
                "); core/ and engine/ results must be reproducible";
    f.related.push_back({path, taint[i].via_line, taint[i].why});
    const size_t src = taint[i].source_fn;
    if (src != i) {
      const FunctionInfo& sfn = model.functions[src];
      f.related.push_back({model.files[sfn.file_index].src->path,
                           taint[src].via_line,
                           "ultimate source: " + taint[src].why + " in " +
                               sfn.qualified});
    }
    findings->push_back(std::move(f));
  }
}

// ---------------------------------------------------------------------------
// Lockset-inference pass (Eraser-style)
// ---------------------------------------------------------------------------

namespace {

std::string ClassTail(const std::string& cls) {
  const size_t p = cls.rfind("::");
  return p == std::string::npos ? cls : cls.substr(p + 2);
}

/// Constructors and destructors run before/after any sharing, so their
/// accesses to their *own* class's fields never join the lockset sample.
bool IsCtorOrDtor(const FunctionInfo& fn) {
  if (fn.cls.empty()) return false;
  const std::string tail = ClassTail(fn.cls);
  return fn.name == tail || fn.name == "~" + tail;
}

std::string JoinSet(const std::set<std::string>& s) {
  std::string out;
  for (const std::string& m : s) {
    if (!out.empty()) out += ", ";
    out += m;
  }
  return out;
}

bool UnderSrc(const std::string& path) {
  return path.rfind("src/", 0) == 0;
}

}  // namespace

void RunLocksetPass(const Model& model, std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
  }

  // Every access site per (class, field), with its lockset. Tests and
  // tools are single-threaded scaffolding; only src/ samples count.
  struct SiteInfo {
    std::string file;
    size_t line = 0;
    std::string fn;  // qualified accessor
    std::set<std::string> held;
  };
  std::map<std::pair<std::string, std::string>, std::vector<SiteInfo>>
      sites;
  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    const std::string& file = model.files[fn.file_index].src->path;
    if (!UnderSrc(file)) continue;
    for (const BodyFacts::Access& a : facts[i].accesses) {
      if (a.cls == fn.cls && IsCtorOrDtor(fn)) continue;
      sites[{a.cls, a.field}].push_back(
          {file, a.line, fn.qualified, a.held});
    }
  }

  for (const auto& [key, vec] : sites) {
    const std::string& cls = key.first;
    const std::string& field = key.second;
    auto cit = model.classes.find(cls);
    if (cit == model.classes.end()) continue;
    auto mit = cit->second.members.find(field);
    if (mit == cit->second.members.end()) continue;
    const MemberInfo& mem = mit->second;
    // Fields that need no guard: immutable, atomic, or the locks
    // themselves (Mutex/CondVar are internally synchronized).
    if (mem.is_const || mem.is_atomic) continue;
    if (mem.type == "Mutex" || mem.type == "CondVar") continue;
    if (cit->second.mutexes.count(field) != 0) continue;
    // Plain value/option structs own no mutex: their instances are
    // per-call-site, so class-level lockset aggregation would conflate
    // unrelated objects. Only classes that own a lock (or fields with a
    // declared guard) have a protocol to infer.
    if (cit->second.mutexes.empty() && mem.guarded_by.empty()) continue;
    // A member whose type is itself a lock-owning class (CircuitBreaker,
    // ThreadPool) is self-synchronized; calls through it are its own
    // business.
    {
      auto tit = model.classes.find(mem.type);
      if (tit != model.classes.end() && !tit->second.mutexes.empty()) {
        continue;
      }
    }
    const std::string decl_file = model.files[mem.file_index].src->path;
    if (!UnderSrc(decl_file)) continue;

    if (!mem.guarded_by.empty()) {
      // Declared guard: every site must hold it, or the annotation is a
      // model the code contradicts.
      const std::string guard =
          mem.guarded_by.find("::") != std::string::npos
              ? mem.guarded_by
              : cls + "::" + mem.guarded_by;
      std::set<std::string> reported_fns;
      for (const SiteInfo& s : vec) {
        if (s.held.count(guard) != 0) continue;
        if (!reported_fns.insert(s.fn).second) continue;
        Finding f;
        f.file = s.file;
        f.line = s.line;
        f.rule = "tabbench-lockset-contradicted";
        f.message = "field " + cls + "::" + field +
                    " is declared TB_GUARDED_BY(" + mem.guarded_by +
                    ") but " + s.fn + " accesses it without holding " +
                    guard;
        f.related.push_back(
            {decl_file, mem.line, "declared TB_GUARDED_BY here"});
        findings->push_back(std::move(f));
      }
      continue;
    }

    size_t locked = 0, bare = 0;
    std::set<std::string> union_held;
    std::set<std::string> common;
    bool first_locked = true;
    for (const SiteInfo& s : vec) {
      if (s.held.empty()) {
        ++bare;
        continue;
      }
      ++locked;
      union_held.insert(s.held.begin(), s.held.end());
      if (first_locked) {
        common = s.held;
        first_locked = false;
      } else {
        std::set<std::string> inter;
        std::set_intersection(common.begin(), common.end(),
                              s.held.begin(), s.held.end(),
                              std::inserter(inter, inter.begin()));
        common.swap(inter);
      }
    }

    if (locked >= 1 && bare >= 1) {
      Finding f;
      f.file = decl_file;
      f.line = mem.line;
      f.rule = "tabbench-lockset-inconsistent";
      f.message = "field " + cls + "::" + field +
                  " is accessed both under a lock (" +
                  JoinSet(union_held) +
                  ") and with no lock held; the bare sites race";
      size_t shown = 0;
      for (const SiteInfo& s : vec) {
        if (shown >= 6) break;
        f.related.push_back(
            {s.file, s.line,
             (s.held.empty() ? "no lock held, in "
                             : "under " + JoinSet(s.held) + ", in ") +
                 s.fn});
        ++shown;
      }
      findings->push_back(std::move(f));
      continue;
    }

    if (bare == 0 && locked >= 2 && !common.empty()) {
      // A consistent inferred guard with no declared annotation: suggest
      // one (same-class guards are mechanically insertable).
      std::string guard = *common.begin();
      for (const std::string& g : common) {
        if (g.rfind(cls + "::", 0) == 0) {
          guard = g;
          break;
        }
      }
      const bool same_class = guard.rfind(cls + "::", 0) == 0;
      const std::string local =
          same_class ? guard.substr(cls.size() + 2) : guard;
      Finding f;
      f.file = decl_file;
      f.line = mem.line;
      f.rule = "tabbench-lockset-unannotated";
      f.message = "field " + cls + "::" + field +
                  " is consistently accessed holding " + guard +
                  " but lacks a TB_GUARDED_BY(" + local + ") annotation";
      size_t shown = 0;
      for (const SiteInfo& s : vec) {
        if (shown >= 4) break;
        f.related.push_back(
            {s.file, s.line, "under " + JoinSet(s.held) + ", in " + s.fn});
        ++shown;
      }
      if (same_class) {
        f.fix.after_word = field;
        f.fix.text = " TB_GUARDED_BY(" + local + ")";
      }
      findings->push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// Blocking-under-lock pass
// ---------------------------------------------------------------------------

void RunBlockingPass(const Model& model, std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
  }

  // may_block: the function's own frame can park the thread (lambda
  // bodies excluded — they block whichever thread later runs them).
  struct BlockSite {
    bool blocks = false;
    std::string what;
    std::string file;
    size_t line = 0;
  };
  std::vector<BlockSite> may_block(n);
  for (size_t i = 0; i < n; ++i) {
    for (const BodyFacts::Block& b : facts[i].blocks) {
      if (b.in_lambda) continue;
      may_block[i] = {true, b.what,
                      model.files[model.functions[i].file_index].src->path,
                      b.line};
      break;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (may_block[i].blocks) continue;
      for (const BodyFacts::Call& c : facts[i].calls) {
        if (c.in_lambda) continue;
        for (size_t callee : ResolveCall(model, c.receiver_type,
                                         model.functions[i].cls, c.name)) {
          if (callee == i || !may_block[callee].blocks) continue;
          may_block[i] = may_block[callee];
          changed = true;
          break;
        }
        if (may_block[i].blocks) break;
      }
    }
  }

  // Direct blocking operations under a held lock. A lambda body blocking
  // under its *own* lock still counts: b.held is frame-correct.
  std::set<std::pair<std::string, size_t>> direct_sites;
  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    const std::string& file = model.files[fn.file_index].src->path;
    if (!UnderSrc(file)) continue;
    for (const BodyFacts::Block& b : facts[i].blocks) {
      if (b.held.empty()) continue;
      std::set<std::string> held_names;
      for (const BodyFacts::Acquire& a : b.held) held_names.insert(a.mutex);
      Finding f;
      f.file = file;
      f.line = b.line;
      f.rule = "tabbench-blocking-under-lock";
      f.message = "blocking " + b.what + " while holding " +
                  JoinSet(held_names) + " in " + fn.qualified +
                  "; every waiter on the mutex stalls behind it";
      for (const BodyFacts::Acquire& a : b.held) {
        f.related.push_back(
            {file, a.line, a.mutex + " acquired here, still held"});
      }
      direct_sites.insert({file, b.line});
      findings->push_back(std::move(f));
    }
  }

  // Calls made under a lock into functions that (transitively) block.
  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    const std::string& file = model.files[fn.file_index].src->path;
    if (!UnderSrc(file)) continue;
    for (const BodyFacts::Call& c : facts[i].calls) {
      if (c.held.empty()) continue;
      if (direct_sites.count({file, c.line}) != 0) continue;
      for (size_t callee : ResolveCall(model, c.receiver_type, fn.cls,
                                       c.name)) {
        if (callee == i || !may_block[callee].blocks) continue;
        std::set<std::string> held_names;
        for (const BodyFacts::Acquire& a : c.held) {
          held_names.insert(a.mutex);
        }
        Finding f;
        f.file = file;
        f.line = c.line;
        f.rule = "tabbench-blocking-under-lock";
        f.message = "call to " + model.functions[callee].qualified +
                    " blocks (" + may_block[callee].what +
                    ") while holding " + JoinSet(held_names) + " in " +
                    fn.qualified;
        for (const BodyFacts::Acquire& a : c.held) {
          f.related.push_back(
              {file, a.line, a.mutex + " acquired here, still held"});
        }
        f.related.push_back({may_block[callee].file, may_block[callee].line,
                             "blocks here: " + may_block[callee].what});
        findings->push_back(std::move(f));
        break;  // one finding per call site
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cancellation-poll liveness pass
// ---------------------------------------------------------------------------

namespace {

/// The worker loops whose liveness the watchdog depends on.
bool InCancellationScope(const std::string& path) {
  return path.rfind("src/exec/vec/", 0) == 0 ||
         path.rfind("src/service/", 0) == 0 ||
         path == "src/core/runner.cc";
}

/// True when toks[j] reads cancellation/stop state or calls a watchdog
/// poll. Writes (`x = ...`, `x.store(...)`) request cancellation rather
/// than observe it, so they do not count.
bool IsPollToken(const std::vector<Token>& toks, size_t j) {
  if (!IsIdent(toks[j])) return false;
  const std::string& s = toks[j].text;
  if (j + 1 < toks.size() && IsPunct(toks[j + 1], "=")) return false;
  if (j + 2 < toks.size() && IsPunct(toks[j + 1], ".") &&
      IsIdent(toks[j + 2]) && toks[j + 2].text == "store") {
    return false;
  }
  std::string lower;
  for (char ch : s) {
    lower += static_cast<char>(
        ch >= 'A' && ch <= 'Z' ? ch - 'A' + 'a' : ch);
  }
  if (lower.find("cancel") != std::string::npos &&
      lower.find("requestcancel") == std::string::npos) {
    return true;
  }
  static const std::set<std::string> kStopLike = {
      "stop",      "stop_",  "stopped_", "stopping_",
      "shutdown_", "quit_",  "stop_requested"};
  if (kStopLike.count(s) != 0) return true;
  static const std::set<std::string> kPollCalls = {"CheckTimeout",
                                                   "ShouldYield", "Poll"};
  if (kPollCalls.count(s) != 0 && j + 1 < toks.size() &&
      IsPunct(toks[j + 1], "(")) {
    return true;
  }
  return false;
}

bool RangeHasPoll(const std::vector<Token>& toks, size_t b, size_t e) {
  for (size_t j = b; j < e; ++j) {
    if (IsPollToken(toks, j)) return true;
  }
  return false;
}

}  // namespace

void RunCancellationPass(const Model& model,
                         std::vector<Finding>* findings) {
  const size_t n = model.functions.size();
  std::vector<BodyFacts> facts(n);
  for (size_t i = 0; i < n; ++i) {
    facts[i] = ExtractBodyFacts(model, model.functions[i]);
  }

  // fn_polls: the function's body (or a callee's, transitively) observes
  // cancellation — calling it from a loop makes the loop live.
  std::vector<bool> fn_polls(n, false);
  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    fn_polls[i] = RangeHasPoll(model.files[fn.file_index].toks,
                               fn.body_begin, fn.body_end);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (fn_polls[i]) continue;
      for (const BodyFacts::Call& c : facts[i].calls) {
        for (size_t callee : ResolveCall(model, c.receiver_type,
                                         model.functions[i].cls, c.name)) {
          if (callee != i && fn_polls[callee]) {
            fn_polls[i] = true;
            changed = true;
            break;
          }
        }
        if (fn_polls[i]) break;
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const FunctionInfo& fn = model.functions[i];
    const ParsedFile& pf = model.files[fn.file_index];
    if (!InCancellationScope(pf.src->path)) continue;
    for (const BodyFacts::Loop& loop : facts[i].loops) {
      if (!loop.unbounded) continue;
      bool polls = RangeHasPoll(pf.toks, loop.range_begin, loop.range_end);
      if (!polls) {
        for (const BodyFacts::Call& c : facts[i].calls) {
          if (c.tok < loop.range_begin || c.tok >= loop.range_end) {
            continue;
          }
          for (size_t callee : ResolveCall(model, c.receiver_type, fn.cls,
                                           c.name)) {
            if (callee != i && fn_polls[callee]) {
              polls = true;
              break;
            }
          }
          if (polls) break;
        }
      }
      if (polls) continue;
      Finding f;
      f.file = pf.src->path;
      f.line = loop.line;
      f.rule = "tabbench-cancellation-poll";
      f.message = "unbounded loop in " + fn.qualified +
                  " never reaches a cancellation or watchdog poll; a "
                  "wedged iteration can never be cancelled";
      findings->push_back(std::move(f));
    }
  }
}

// ---------------------------------------------------------------------------
// TB_FAULT_POINT coverage report
// ---------------------------------------------------------------------------

namespace {

struct FaultSite {
  std::string file;
  size_t line = 0;
  std::string name;
};

/// Scans every parsed file for TB_FAULT_POINT sites (skipping the macro
/// definition itself), keyed by layer index (-1 = outside every layer).
std::map<int, std::vector<FaultSite>> CollectFaultSites(
    const std::vector<SourceFile>& files, const LayerSpec& layers) {
  const Model model = BuildModel(files);
  std::map<int, std::vector<FaultSite>> by_layer;
  for (const ParsedFile& pf : model.files) {
    for (size_t li = 0; li < pf.code_lines.size(); ++li) {
      const std::string& code = pf.code_lines[li];
      const size_t pos = code.find("TB_FAULT_POINT");
      if (pos == std::string::npos) continue;
      if (code.find("#define") != std::string::npos) continue;
      // The argument is a string literal (blanked in code_lines); read it
      // from the raw line.
      const std::string& raw = pf.raw_lines[li];
      std::string name;
      const size_t open = raw.find('(', raw.find("TB_FAULT_POINT"));
      if (open != std::string::npos) {
        size_t end = open + 1;
        while (end < raw.size() && raw[end] != ',' && raw[end] != ')') {
          ++end;
        }
        name = raw.substr(open + 1, end - open - 1);
        while (!name.empty() && (name.front() == ' ' ||
                                 name.front() == '"')) {
          name.erase(name.begin());
        }
        while (!name.empty() &&
               (name.back() == ' ' || name.back() == '"')) {
          name.pop_back();
        }
      }
      by_layer[LayerOf(layers, pf.src->path)].push_back(
          {pf.src->path, li + 1, name});
    }
  }
  return by_layer;
}

/// "" when a fault-point `name` conforms to the layer.component.action
/// convention; otherwise the reason it does not. `layer_name` is the
/// declared layer of the site's file ("" for files outside every layer,
/// which get the format check only). A layer named with underscores
/// matches either spelling of the prefix: layer exec_vec accepts
/// "exec_vec." and "exec.vec.".
std::string FaultNameProblem(const std::string& name,
                             const std::string& layer_name) {
  if (name.empty()) return "missing fault-point name";
  size_t segs = 1;
  bool bad_char = name.front() == '.' || name.back() == '.';
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '.') {
      ++segs;
      if (i + 1 < name.size() && name[i + 1] == '.') bad_char = true;
    } else if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                 c == '_')) {
      bad_char = true;
    }
  }
  if (bad_char) {
    return "fault-point name '" + name +
           "' must be lowercase dot-separated segments "
           "(layer.component.action)";
  }
  if (segs < 2) {
    return "fault-point name '" + name +
           "' needs at least two segments (layer.component.action)";
  }
  if (!layer_name.empty()) {
    std::string dotted = layer_name;
    for (char& c : dotted) {
      if (c == '_') c = '.';
    }
    if (name.rfind(layer_name + ".", 0) != 0 &&
        name.rfind(dotted + ".", 0) != 0) {
      return "fault-point name '" + name +
             "' must start with its file's layer ('" + layer_name +
             ".'): chaos schedules select faults by layer prefix";
    }
  }
  return "";
}

/// Every naming-convention violation across the collected sites, one
/// "file:line: reason" string per site.
std::vector<std::string> FaultNamingViolations(
    const std::map<int, std::vector<FaultSite>>& by_layer,
    const LayerSpec& layers) {
  std::vector<std::string> out;
  for (const auto& [layer_idx, sites] : by_layer) {
    const std::string layer_name =
        layer_idx >= 0 ? layers.layers[static_cast<size_t>(layer_idx)].name
                       : "";
    for (const FaultSite& s : sites) {
      const std::string problem = FaultNameProblem(s.name, layer_name);
      if (!problem.empty()) {
        out.push_back(s.file + ":" + std::to_string(s.line) + ": " +
                      problem);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string FaultCoverageReport(const std::vector<SourceFile>& files,
                                const LayerSpec& layers) {
  const std::map<int, std::vector<FaultSite>> by_layer =
      CollectFaultSites(files, layers);

  std::string out = "TB_FAULT_POINT coverage by layer\n";
  for (size_t li = 0; li < layers.layers.size(); ++li) {
    const auto it = by_layer.find(static_cast<int>(li));
    const size_t count = it == by_layer.end() ? 0 : it->second.size();
    out += "  " + layers.layers[li].name + ": " + std::to_string(count) +
           (count == 1 ? " site\n" : " sites\n");
    if (it == by_layer.end()) continue;
    for (const FaultSite& s : it->second) {
      out += "    " + s.file + ":" + std::to_string(s.line);
      if (!s.name.empty()) out += "  " + s.name;
      out += "\n";
    }
  }
  std::vector<std::string> zero;
  for (size_t li = 0; li < layers.layers.size(); ++li) {
    if (by_layer.count(static_cast<int>(li)) == 0) {
      zero.push_back(layers.layers[li].name);
    }
  }
  if (!zero.empty()) {
    out += "layers with zero fault points: " + JoinNames(zero) + "\n";
  }
  const auto outside = by_layer.find(-1);
  if (outside != by_layer.end()) {
    out += "outside declared layers: " +
           std::to_string(outside->second.size()) +
           (outside->second.size() == 1 ? " site\n" : " sites\n");
  }
  const std::vector<std::string> naming =
      FaultNamingViolations(by_layer, layers);
  if (!naming.empty()) {
    out += "naming-convention violations (layer.component.action):\n";
    for (const std::string& v : naming) out += "  " + v + "\n";
  }
  return out;
}

std::map<std::string, size_t> FaultSitesPerLayer(
    const std::vector<SourceFile>& files, const LayerSpec& layers) {
  const std::map<int, std::vector<FaultSite>> by_layer =
      CollectFaultSites(files, layers);
  std::map<std::string, size_t> counts;
  for (size_t li = 0; li < layers.layers.size(); ++li) {
    const auto it = by_layer.find(static_cast<int>(li));
    counts[layers.layers[li].name] =
        it == by_layer.end() ? 0 : it->second.size();
  }
  return counts;
}

std::vector<std::string> CheckFaultCoverage(
    const std::vector<SourceFile>& files, const LayerSpec& layers,
    const std::string& required_text) {
  const std::map<int, std::vector<FaultSite>> by_layer =
      CollectFaultSites(files, layers);
  std::map<std::string, size_t> counts;
  for (size_t li = 0; li < layers.layers.size(); ++li) {
    const auto it = by_layer.find(static_cast<int>(li));
    counts[layers.layers[li].name] =
        it == by_layer.end() ? 0 : it->second.size();
  }
  // The ratchet checks naming unconditionally: a site whose name lies
  // about its layer silently escapes every layer-prefixed chaos schedule.
  std::vector<std::string> violations =
      FaultNamingViolations(by_layer, layers);
  std::istringstream in(required_text);
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream fields(line);
    std::string layer;
    if (!(fields >> layer)) continue;  // blank / comment-only line
    size_t min_sites = 1;
    fields >> min_sites;  // optional; keeps the default on parse failure
    const auto it = counts.find(layer);
    if (it == counts.end()) {
      violations.push_back("line " + std::to_string(lineno) + ": layer '" +
                           layer +
                           "' is not declared in the layer spec (renamed or "
                           "removed? update the floor file alongside)");
      continue;
    }
    if (it->second < min_sites) {
      violations.push_back(
          "layer '" + layer + "' has " + std::to_string(it->second) +
          " TB_FAULT_POINT site" + (it->second == 1 ? "" : "s") +
          ", below its recorded floor of " + std::to_string(min_sites) +
          " — fault-injection coverage must not regress");
    }
  }
  return violations;
}

}  // namespace tabbench_analyze
