#include "dataflow.h"

#include <algorithm>

namespace tabbench_analyze {

namespace {

/// Reverse postorder over successor edges; unreachable blocks excluded.
std::vector<size_t> ReversePostorder(const Cfg& cfg) {
  const size_t n = cfg.blocks.size();
  std::vector<size_t> order;
  std::vector<int> state(n, 0);
  std::vector<std::pair<size_t, size_t>> stack;
  stack.emplace_back(cfg.entry, 0);
  state[cfg.entry] = 1;
  while (!stack.empty()) {
    auto& [b, si] = stack.back();
    if (si < cfg.blocks[b].succ.size()) {
      size_t s = cfg.blocks[b].succ[si++].to;
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      order.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Facts Intersect(const Facts& a, const Facts& b) {
  Facts r;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(r, r.begin()));
  return r;
}

}  // namespace

DataflowResult SolveForward(const Cfg& cfg, const DataflowSpec& spec) {
  const size_t n = cfg.blocks.size();
  DataflowResult res;
  res.in.resize(n);
  res.out.resize(n);
  res.reached.assign(n, false);

  const std::vector<size_t> rpo = ReversePostorder(cfg);
  std::vector<std::vector<std::pair<size_t, const CfgEdge*>>> preds(n);
  for (size_t b = 0; b < n; ++b) {
    for (const CfgEdge& e : cfg.blocks[b].succ) {
      preds[e.to].emplace_back(b, &e);
    }
  }

  res.reached[cfg.entry] = true;
  res.in[cfg.entry] = spec.entry_facts;
  res.out[cfg.entry] = spec.entry_facts;
  if (spec.transfer) spec.transfer(cfg.entry, &res.out[cfg.entry]);

  bool changed = true;
  size_t rounds = 0;
  while (changed && rounds < 100) {  // gen/kill converges far sooner
    changed = false;
    ++rounds;
    for (size_t b : rpo) {
      if (b == cfg.entry) continue;
      bool any_pred = false;
      Facts in;
      for (const auto& [p, e] : preds[b]) {
        if (!res.reached[p]) continue;
        Facts along = res.out[p];
        if (spec.edge_transfer) spec.edge_transfer(p, *e, &along);
        if (!any_pred) {
          in = std::move(along);
          any_pred = true;
        } else if (spec.meet == MeetKind::kUnion) {
          in.insert(along.begin(), along.end());
        } else {
          in = Intersect(in, along);
        }
      }
      if (!any_pred) continue;  // all preds still unreached
      Facts out = in;
      if (spec.transfer) spec.transfer(b, &out);
      if (!res.reached[b] || in != res.in[b] || out != res.out[b]) {
        res.reached[b] = true;
        res.in[b] = std::move(in);
        res.out[b] = std::move(out);
        changed = true;
      }
    }
  }
  return res;
}

}  // namespace tabbench_analyze
