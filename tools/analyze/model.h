#ifndef TABBENCH_TOOLS_ANALYZE_MODEL_H_
#define TABBENCH_TOOLS_ANALYZE_MODEL_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.h"
#include "cpptok.h"

/// Internal project model shared by the four passes. Built once per
/// Analyze() call by BuildModel(); not part of the public API.
namespace tabbench_analyze {

using tabbench_tok::Token;

struct IncludeEdge {
  std::string raw;       // the quoted path as written
  std::string resolved;  // path of the included SourceFile; "" if external
  size_t line = 0;
};

/// A function definition (something with a body) found by the scope
/// scanner. Token indices are into ParsedFile::toks and cover the body
/// between, and excluding, the braces.
struct FunctionInfo {
  std::string name;       // unqualified ("Submit")
  std::string cls;        // enclosing/qualifying class ("" for free)
  std::string qualified;  // "ThreadPool::Submit" or "Submit"
  size_t file_index = 0;  // into Model::files
  size_t line = 0;        // definition line
  size_t body_begin = 0;  // first token inside the body
  size_t body_end = 0;    // one past the last body token
  size_t params_begin = 0;  // first token inside the parameter parens
  size_t params_end = 0;    // one past the last parameter token
  /// Mutexes a TB_REQUIRES on the *definition* declares held on entry,
  /// qualified ("BTree::cache_mu_"). Requires on the in-class declaration
  /// land in ClassInfo::method_requires instead; passes merge both.
  std::set<std::string> requires_held;
};

struct MemberInfo {
  std::string type;  // first type identifier ("Mutex", "CircuitBreaker",
                     // "std" for std:: anything, "" when unparsed)
  size_t line = 0;
  size_t file_index = 0;  // file holding this declaration
  /// Mutex this member is guarded by (TB_GUARDED_BY/GUARDED_BY arg), "".
  std::string guarded_by;
  /// `const` / std::atomic at the top level of the declared type: such
  /// members need no lock, so the lockset pass skips them.
  bool is_const = false;
  bool is_atomic = false;
};

struct ClassInfo {
  std::string name;
  std::map<std::string, MemberInfo> members;
  /// Mutex-typed member names (type Mutex, or named by a GUARDED_BY).
  std::set<std::string> mutexes;
  /// TB_REQUIRES sets from in-class *method declarations*, keyed by method
  /// name, args qualified ("BTree::cache_mu_"). Out-of-line definitions
  /// rarely repeat the annotation, so the passes consult this map.
  std::map<std::string, std::set<std::string>> method_requires;
  /// Declared lock-order edges from TB_ACQUIRED_BEFORE/AFTER annotations:
  /// (qualified-this-mutex -> qualified-other-mutex, line). BEFORE(x) on
  /// member m yields Class::m -> x; AFTER(x) yields x -> Class::m.
  struct DeclaredEdge {
    std::string from;
    std::string to;
    size_t line = 0;
  };
  std::vector<DeclaredEdge> declared_edges;
};

/// Line-keyed NOLINT suppressions (parsed from comment text only).
struct Suppressions {
  std::map<size_t, std::set<std::string>> by_line;  // "*" = all rules
  std::set<std::string> whole_file;

  bool Suppressed(size_t line, const std::string& rule) const;
};

struct ParsedFile {
  const SourceFile* src = nullptr;
  std::vector<std::string> raw_lines;
  std::vector<std::string> code_lines;  // comments/strings blanked
  std::vector<Token> toks;
  std::vector<IncludeEdge> includes;
  std::vector<FunctionInfo> functions;
  Suppressions sup;
};

struct Model {
  std::vector<ParsedFile> files;
  /// Class name -> merged info (headers declare members, .cc files add
  /// method bodies; both may contribute).
  std::map<std::string, ClassInfo> classes;
  /// Unqualified function name -> indices of every definition, as
  /// (file_index, function index) pairs flattened into Model::functions.
  std::vector<FunctionInfo> functions;  // all, in file order
  std::map<std::string, std::vector<size_t>> by_name;       // unqualified
  std::map<std::string, std::vector<size_t>> by_qualified;  // "C::m"
};

Model BuildModel(const std::vector<SourceFile>& files);

/// Best-effort callee resolution used by the lock-order and taint passes.
/// `receiver_type` is the class of the object expression ("" for a bare
/// call, in which case `caller_cls` methods win, then a unique global
/// name). Returns indices into model.functions; empty when unresolved or
/// ambiguous (ambiguity is skipped, not guessed).
std::vector<size_t> ResolveCall(const Model& model,
                                const std::string& receiver_type,
                                const std::string& caller_cls,
                                const std::string& name);

// The passes (each appends to *findings; suppression is applied by the
// caller in Analyze()).
void RunLayeringPass(const Model& model, const LayerSpec& layers,
                     std::vector<Finding>* findings);
void RunLockOrderPass(const Model& model, std::vector<Finding>* findings);
void RunStatusFlowPass(const Model& model, std::vector<Finding>* findings);
void RunTaintPass(const Model& model, std::vector<Finding>* findings);
void RunLocksetPass(const Model& model, std::vector<Finding>* findings);
void RunBlockingPass(const Model& model, std::vector<Finding>* findings);
void RunCancellationPass(const Model& model,
                         std::vector<Finding>* findings);

// The path-sensitive passes (passes_cfg.cc): per-function CFGs (cfg.h)
// plus forward dataflow (dataflow.h).
void RunDurabilityPass(const Model& model, const ProtocolSpec& protocols,
                       std::vector<Finding>* findings);
void RunReleasePass(const Model& model, std::vector<Finding>* findings);
void RunErrorPathPass(const Model& model, const ProtocolSpec& protocols,
                      std::vector<Finding>* findings);

}  // namespace tabbench_analyze

#endif  // TABBENCH_TOOLS_ANALYZE_MODEL_H_
