#include "cfg.h"

#include <algorithm>
#include <set>

namespace tabbench_analyze {

namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsIdent(const Token& t) { return t.kind == tabbench_tok::TokKind::kIdent; }

bool IsPunct(const Token& t, const char* s) {
  return t.kind == tabbench_tok::TokKind::kPunct && t.text == s;
}

bool IsIdentText(const Token& t, const char* s) {
  return IsIdent(t) && t.text == s;
}

/// toks[i] is an opening bracket; returns the index of its matching closer
/// (counting all three bracket kinds), or `end` when unbalanced.
size_t MatchBracket(const std::vector<Token>& toks, size_t i, size_t end) {
  int depth = 0;
  for (size_t j = i; j < end; ++j) {
    const Token& t = toks[j];
    if (IsPunct(t, "(") || IsPunct(t, "[") || IsPunct(t, "{")) {
      ++depth;
    } else if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return end;
}

/// True when the `{` at `brace` closes a lambda introducer: `[...]`,
/// optionally followed by a parameter list and specifiers
/// (`mutable`, `noexcept`, `-> Type`). Walks backwards from the brace.
bool IsLambdaBody(const std::vector<Token>& toks, size_t begin,
                  size_t brace) {
  size_t j = brace;
  // Skip trailing-return-type / specifier tokens back to `)` or `]`.
  while (j > begin) {
    const Token& t = toks[j - 1];
    if (IsIdent(t) || IsPunct(t, "::") || IsPunct(t, "<") ||
        IsPunct(t, ">") || IsPunct(t, "*") || IsPunct(t, "&") ||
        IsPunct(t, "->") || IsPunct(t, ",")) {
      --j;
      continue;
    }
    break;
  }
  if (j > begin && IsPunct(toks[j - 1], ")")) {
    // Walk back over the parameter list to its `(`.
    int depth = 0;
    while (j > begin) {
      --j;
      if (IsPunct(toks[j], ")")) ++depth;
      if (IsPunct(toks[j], "(")) {
        --depth;
        if (depth == 0) break;
      }
    }
  }
  return j > begin && IsPunct(toks[j - 1], "]");
}

/// Status factory names that construct a non-OK status. `return
/// Status::<one of these>(...)` is a definite error exit.
bool IsErrorFactory(const std::string& s) {
  static const std::set<std::string> kNames = {
      "Internal",       "InvalidArgument",  "NotFound",
      "AlreadyExists",  "FailedPrecondition", "Unavailable",
      "Cancelled",      "Timeout",          "DataLoss",
      "ResourceExhausted", "Unimplemented", "Aborted",
      "OutOfRange",     "Corruption",       "Unknown"};
  return kNames.count(s) != 0;
}

class CfgBuilder {
 public:
  explicit CfgBuilder(const std::vector<Token>& toks) : toks_(toks) {}

  Cfg Build(size_t begin, size_t end) {
    cfg_.entry = NewBlock(CfgBlockKind::kEntry, 0, 0, begin);
    cfg_.exit = NewBlock(CfgBlockKind::kExit, 0, 0, begin);
    Cursor out = ParseSeq(begin, end, Cursor{cfg_.entry, CfgEdgeKind::kNext});
    if (out.block != kNpos) Edge(out.block, cfg_.exit, out.kind);
    return std::move(cfg_);
  }

 private:
  /// Control arriving from `block` along a not-yet-materialized edge of
  /// `kind`; block == kNpos means the path is dead (after return/break).
  struct Cursor {
    size_t block = kNpos;
    CfgEdgeKind kind = CfgEdgeKind::kNext;
  };

  struct BreakCtx {
    size_t break_target = kNpos;
    size_t continue_target = kNpos;  // kNpos inside switch
  };

  size_t NewBlock(CfgBlockKind kind, size_t b, size_t e, size_t at) {
    CfgBlock blk;
    blk.kind = kind;
    blk.tok_begin = b;
    blk.tok_end = e;
    if (b < e) {
      blk.line = toks_[b].line;
    } else if (at < toks_.size()) {
      blk.line = toks_[at].line;
    }
    cfg_.blocks.push_back(std::move(blk));
    return cfg_.blocks.size() - 1;
  }

  void Edge(size_t from, size_t to, CfgEdgeKind kind) {
    cfg_.blocks[from].succ.push_back(CfgEdge{to, kind});
  }

  /// Creates a block and wires the pending cursor edge into it.
  /// Unreachable statements still get blocks (no predecessors).
  size_t Attach(Cursor in, CfgBlockKind kind, size_t b, size_t e,
                size_t at) {
    size_t nb = NewBlock(kind, b, e, at);
    if (in.block != kNpos) Edge(in.block, nb, in.kind);
    return nb;
  }

  Cursor Merge(Cursor a, Cursor b, size_t at) {
    if (a.block == kNpos) return b;
    if (b.block == kNpos) return a;
    size_t j = NewBlock(CfgBlockKind::kJoin, 0, 0, at);
    Edge(a.block, j, a.kind);
    Edge(b.block, j, b.kind);
    return Cursor{j, CfgEdgeKind::kNext};
  }

  Cursor ParseSeq(size_t i, size_t end, Cursor cur) {
    while (i < end) {
      cur = ParseStmt(&i, end, cur);
    }
    return cur;
  }

  // Parses one statement starting at *i (advancing it past the
  // statement); returns the fall-out cursor.
  Cursor ParseStmt(size_t* i, size_t end, Cursor cur) {
    const Token& t = toks_[*i];
    if (IsPunct(t, ";")) {  // empty statement
      ++*i;
      return cur;
    }
    if (IsPunct(t, "{")) {
      size_t close = MatchBracket(toks_, *i, end);
      Cursor out = ParseSeq(*i + 1, close, cur);
      *i = std::min(close + 1, end);
      return out;
    }
    if (IsIdentText(t, "if")) return ParseIf(i, end, cur);
    if (IsIdentText(t, "while")) return ParseWhile(i, end, cur);
    if (IsIdentText(t, "do")) return ParseDo(i, end, cur);
    if (IsIdentText(t, "for")) return ParseFor(i, end, cur);
    if (IsIdentText(t, "switch")) return ParseSwitch(i, end, cur);
    if (IsIdentText(t, "return")) return ParseReturn(i, end, cur);
    if (IsIdentText(t, "break") || IsIdentText(t, "continue")) {
      return ParseJump(i, end, cur, t.text == "break");
    }
    if (IsIdentText(t, "TB_RETURN_IF_ERROR") ||
        IsIdentText(t, "TB_ASSIGN_OR_RETURN")) {
      return ParseErrorMacro(i, end, cur);
    }
    return ParseExprStmt(i, end, cur);
  }

  /// Finds `( ... )` right after position `i` (a control keyword) and
  /// returns the [inside-begin, inside-end) range via out params.
  bool ParseParens(size_t i, size_t end, size_t* pb, size_t* pe,
                   size_t* after) {
    size_t j = i + 1;
    while (j < end && !IsPunct(toks_[j], "(")) ++j;
    if (j >= end) return false;
    size_t close = MatchBracket(toks_, j, end);
    *pb = j + 1;
    *pe = close;
    *after = std::min(close + 1, end);
    return true;
  }

  Cursor ParseIf(size_t* i, size_t end, Cursor cur) {
    size_t pb = 0, pe = 0, after = 0;
    if (!ParseParens(*i, end, &pb, &pe, &after)) {
      ++*i;
      return cur;
    }
    size_t branch = Attach(cur, CfgBlockKind::kBranch, pb, pe, *i);
    *i = after;
    Cursor then_out = ParseStmt(i, end, Cursor{branch, CfgEdgeKind::kTrue});
    Cursor else_out{branch, CfgEdgeKind::kFalse};
    if (*i < end && IsIdentText(toks_[*i], "else")) {
      ++*i;
      else_out = ParseStmt(i, end, Cursor{branch, CfgEdgeKind::kFalse});
    }
    return Merge(then_out, else_out, pe);
  }

  Cursor ParseWhile(size_t* i, size_t end, Cursor cur) {
    size_t pb = 0, pe = 0, after_pos = 0;
    if (!ParseParens(*i, end, &pb, &pe, &after_pos)) {
      ++*i;
      return cur;
    }
    size_t head = Attach(cur, CfgBlockKind::kLoop, pb, pe, *i);
    size_t after = NewBlock(CfgBlockKind::kJoin, 0, 0, pe);
    Edge(head, after, CfgEdgeKind::kFalse);
    *i = after_pos;
    ctx_.push_back(BreakCtx{after, head});
    Cursor body = ParseStmt(i, end, Cursor{head, CfgEdgeKind::kTrue});
    ctx_.pop_back();
    if (body.block != kNpos) Edge(body.block, head, CfgEdgeKind::kBack);
    return Cursor{after, CfgEdgeKind::kNext};
  }

  Cursor ParseDo(size_t* i, size_t end, Cursor cur) {
    size_t at = *i;
    ++*i;
    // The condition block exists before the body so break/continue can
    // target it; its token range is filled in after the body is parsed.
    size_t landing = Attach(cur, CfgBlockKind::kJoin, 0, 0, at);
    size_t cond = NewBlock(CfgBlockKind::kLoop, 0, 0, at);
    size_t after = NewBlock(CfgBlockKind::kJoin, 0, 0, at);
    ctx_.push_back(BreakCtx{after, cond});
    Cursor body =
        ParseStmt(i, end, Cursor{landing, CfgEdgeKind::kNext});
    ctx_.pop_back();
    if (body.block != kNpos) Edge(body.block, cond, CfgEdgeKind::kNext);
    // Expect `while ( cond ) ;`.
    if (*i < end && IsIdentText(toks_[*i], "while")) {
      size_t pb = 0, pe = 0, after_pos = 0;
      if (ParseParens(*i, end, &pb, &pe, &after_pos)) {
        cfg_.blocks[cond].tok_begin = pb;
        cfg_.blocks[cond].tok_end = pe;
        cfg_.blocks[cond].line = pb < pe ? toks_[pb].line : 0;
        *i = after_pos;
        if (*i < end && IsPunct(toks_[*i], ";")) ++*i;
      } else {
        ++*i;
      }
    }
    Edge(cond, landing, CfgEdgeKind::kBack);
    Edge(cond, after, CfgEdgeKind::kFalse);
    return Cursor{after, CfgEdgeKind::kNext};
  }

  Cursor ParseFor(size_t* i, size_t end, Cursor cur) {
    size_t pb = 0, pe = 0, after_pos = 0;
    size_t at = *i;
    if (!ParseParens(*i, end, &pb, &pe, &after_pos)) {
      ++*i;
      return cur;
    }
    // Split the header on depth-0 semicolons; a range-for has none.
    std::vector<size_t> semis;
    int depth = 0;
    for (size_t j = pb; j < pe; ++j) {
      if (IsPunct(toks_[j], "(") || IsPunct(toks_[j], "[") ||
          IsPunct(toks_[j], "{")) {
        ++depth;
      } else if (IsPunct(toks_[j], ")") || IsPunct(toks_[j], "]") ||
                 IsPunct(toks_[j], "}")) {
        --depth;
      } else if (depth == 0 && IsPunct(toks_[j], ";")) {
        semis.push_back(j);
      }
    }
    size_t head;
    size_t incb = kNpos;
    if (semis.size() == 2) {
      if (semis[0] > pb) {
        cur = Cursor{Attach(cur, CfgBlockKind::kStmt, pb, semis[0], at),
                     CfgEdgeKind::kNext};
      }
      head = Attach(cur, CfgBlockKind::kLoop, semis[0] + 1, semis[1], at);
      if (semis[1] + 1 < pe) {
        incb = NewBlock(CfgBlockKind::kStmt, semis[1] + 1, pe, at);
        Edge(incb, head, CfgEdgeKind::kBack);
      }
    } else {
      // Range-for (or unparsable header): the whole header is the
      // condition — one iteration test per element.
      head = Attach(cur, CfgBlockKind::kLoop, pb, pe, at);
    }
    size_t after = NewBlock(CfgBlockKind::kJoin, 0, 0, pe);
    const bool infinite =
        semis.size() == 2 && semis[0] + 1 == semis[1];  // for (;;)
    if (!infinite) Edge(head, after, CfgEdgeKind::kFalse);
    *i = after_pos;
    size_t cont = incb != kNpos ? incb : head;
    ctx_.push_back(BreakCtx{after, cont});
    Cursor body = ParseStmt(i, end, Cursor{head, CfgEdgeKind::kTrue});
    ctx_.pop_back();
    if (body.block != kNpos) {
      Edge(body.block, cont,
           incb != kNpos ? CfgEdgeKind::kNext : CfgEdgeKind::kBack);
    }
    return Cursor{after, CfgEdgeKind::kNext};
  }

  Cursor ParseSwitch(size_t* i, size_t end, Cursor cur) {
    size_t pb = 0, pe = 0, after_pos = 0;
    size_t at = *i;
    if (!ParseParens(*i, end, &pb, &pe, &after_pos)) {
      ++*i;
      return cur;
    }
    size_t head = Attach(cur, CfgBlockKind::kSwitch, pb, pe, at);
    size_t after = NewBlock(CfgBlockKind::kJoin, 0, 0, pe);
    *i = after_pos;
    if (*i >= end || !IsPunct(toks_[*i], "{")) {
      Edge(head, after, CfgEdgeKind::kCase);
      return Cursor{after, CfgEdgeKind::kNext};
    }
    size_t body_end = MatchBracket(toks_, *i, end);
    size_t j = *i + 1;
    bool has_default = false;
    Cursor seg{kNpos, CfgEdgeKind::kNext};
    ctx_.push_back(BreakCtx{after, kNpos});
    while (j < body_end) {
      const Token& t = toks_[j];
      if (IsIdentText(t, "case") || IsIdentText(t, "default")) {
        if (IsIdentText(t, "default")) has_default = true;
        // Consume `case <expr> :` / `default :`.
        size_t lbl = j;
        while (j < body_end && !IsPunct(toks_[j], ":")) {
          if (IsPunct(toks_[j], "(") || IsPunct(toks_[j], "[") ||
              IsPunct(toks_[j], "{")) {
            j = MatchBracket(toks_, j, body_end);
          }
          ++j;
        }
        if (j < body_end) ++j;  // past ':'
        // Consecutive labels share one landing block.
        if (seg.block != kNpos &&
            cfg_.blocks[seg.block].kind == CfgBlockKind::kJoin &&
            cfg_.blocks[seg.block].succ.empty() &&
            seg.kind == CfgEdgeKind::kNext && LastLabel(seg.block)) {
          Edge(head, seg.block, CfgEdgeKind::kCase);
          continue;
        }
        size_t land = NewBlock(CfgBlockKind::kJoin, 0, 0, lbl);
        label_blocks_.insert(land);
        Edge(head, land, CfgEdgeKind::kCase);
        if (seg.block != kNpos) Edge(seg.block, land, seg.kind);  // fallthrough
        seg = Cursor{land, CfgEdgeKind::kNext};
        continue;
      }
      seg = ParseStmt(&j, body_end, seg);
    }
    ctx_.pop_back();
    if (seg.block != kNpos) Edge(seg.block, after, seg.kind);
    if (!has_default) Edge(head, after, CfgEdgeKind::kCase);
    *i = std::min(body_end + 1, end);
    return Cursor{after, CfgEdgeKind::kNext};
  }

  bool LastLabel(size_t block) const {
    return label_blocks_.count(block) != 0;
  }

  Cursor ParseReturn(size_t* i, size_t end, Cursor cur) {
    size_t at = *i;
    size_t j = *i + 1;
    int depth = 0;
    while (j < end) {
      const Token& t = toks_[j];
      if (IsPunct(t, "(") || IsPunct(t, "[") || IsPunct(t, "{")) ++depth;
      if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) --depth;
      if (depth == 0 && IsPunct(t, ";")) break;
      ++j;
    }
    size_t rb = Attach(cur, CfgBlockKind::kReturn, *i + 1, j, at);
    // `return Status::<ErrorFactory>(...)` is a definite error exit.
    for (size_t k = *i + 1; k + 2 < j; ++k) {
      if (IsIdentText(toks_[k], "Status") && IsPunct(toks_[k + 1], "::") &&
          IsIdent(toks_[k + 2]) && IsErrorFactory(toks_[k + 2].text)) {
        cfg_.blocks[rb].error_return = true;
        break;
      }
    }
    Edge(rb, cfg_.exit, CfgEdgeKind::kNext);
    *i = std::min(j + 1, end);
    return Cursor{kNpos, CfgEdgeKind::kNext};
  }

  Cursor ParseJump(size_t* i, size_t end, Cursor cur, bool is_break) {
    size_t at = *i;
    size_t jb = Attach(cur, CfgBlockKind::kStmt, *i, *i + 1, at);
    size_t target = kNpos;
    for (size_t k = ctx_.size(); k-- > 0;) {
      if (is_break) {
        target = ctx_[k].break_target;
        break;
      }
      if (ctx_[k].continue_target != kNpos) {
        target = ctx_[k].continue_target;
        break;
      }
    }
    if (target != kNpos) {
      Edge(jb, target,
           is_break ? CfgEdgeKind::kBreak : CfgEdgeKind::kContinue);
    }
    ++*i;
    if (*i < end && IsPunct(toks_[*i], ";")) ++*i;
    return Cursor{kNpos, CfgEdgeKind::kNext};
  }

  Cursor ParseErrorMacro(size_t* i, size_t end, Cursor cur) {
    size_t at = *i;
    size_t pb = 0, pe = 0, after_pos = 0;
    if (!ParseParens(*i, end, &pb, &pe, &after_pos)) {
      ++*i;
      return cur;
    }
    size_t mb = Attach(cur, CfgBlockKind::kStmt, *i, pe, at);
    Edge(mb, cfg_.exit, CfgEdgeKind::kErrorReturn);
    *i = after_pos;
    if (*i < end && IsPunct(toks_[*i], ";")) ++*i;
    return Cursor{mb, CfgEdgeKind::kNext};
  }

  /// Expression or declaration statement: everything up to the depth-0
  /// `;`. Lambda bodies inside the expression are carved out (recorded in
  /// lambda_bodies, skipped here), splitting the statement into fragment
  /// blocks so token ranges stay contiguous.
  Cursor ParseExprStmt(size_t* i, size_t end, Cursor cur) {
    size_t at = *i;
    size_t seg_start = *i;
    size_t j = *i;
    int depth = 0;
    while (j < end) {
      const Token& t = toks_[j];
      if (IsPunct(t, "{")) {
        if (IsLambdaBody(toks_, seg_start, j)) {
          size_t close = MatchBracket(toks_, j, end);
          if (j > seg_start) {
            cur = Cursor{Attach(cur, CfgBlockKind::kStmt, seg_start, j, at),
                         CfgEdgeKind::kNext};
          }
          cfg_.lambda_bodies.emplace_back(j + 1, close);
          j = std::min(close + 1, end);
          seg_start = j;
          at = j < end ? j : at;
          continue;
        }
        ++depth;
      } else if (IsPunct(t, "(") || IsPunct(t, "[")) {
        ++depth;
      } else if (IsPunct(t, ")") || IsPunct(t, "]") || IsPunct(t, "}")) {
        --depth;
      } else if (depth == 0 && IsPunct(t, ";")) {
        break;
      }
      ++j;
    }
    if (j > seg_start) {
      cur = Cursor{Attach(cur, CfgBlockKind::kStmt, seg_start, j, at),
                   CfgEdgeKind::kNext};
    }
    *i = std::min(j + 1, end);
    return cur;
  }

  const std::vector<Token>& toks_;
  Cfg cfg_;
  std::vector<BreakCtx> ctx_;
  std::set<size_t> label_blocks_;
};

}  // namespace

size_t CfgNpos() { return kNpos; }

Cfg BuildCfg(const std::vector<Token>& toks, size_t begin, size_t end) {
  CfgBuilder b(toks);
  return b.Build(begin, std::min(end, toks.size()));
}

std::vector<size_t> ComputeDominators(const Cfg& cfg) {
  const size_t n = cfg.blocks.size();
  std::vector<size_t> idom(n, kNpos);
  if (n == 0) return idom;

  // Reverse postorder over successor edges from the entry.
  std::vector<size_t> rpo;
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::pair<size_t, size_t>> stack;  // (block, next succ index)
  stack.emplace_back(cfg.entry, 0);
  state[cfg.entry] = 1;
  while (!stack.empty()) {
    auto& [b, si] = stack.back();
    if (si < cfg.blocks[b].succ.size()) {
      size_t s = cfg.blocks[b].succ[si++].to;
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      state[b] = 2;
      rpo.push_back(b);
      stack.pop_back();
    }
  }
  std::reverse(rpo.begin(), rpo.end());

  std::vector<size_t> rpo_index(n, kNpos);
  for (size_t k = 0; k < rpo.size(); ++k) rpo_index[rpo[k]] = k;
  std::vector<std::vector<size_t>> preds(n);
  for (size_t b = 0; b < n; ++b) {
    for (const CfgEdge& e : cfg.blocks[b].succ) preds[e.to].push_back(b);
  }

  auto intersect = [&](size_t a, size_t b) {
    while (a != b) {
      while (rpo_index[a] > rpo_index[b]) a = idom[a];
      while (rpo_index[b] > rpo_index[a]) b = idom[b];
    }
    return a;
  };

  idom[cfg.entry] = cfg.entry;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t b : rpo) {
      if (b == cfg.entry) continue;
      size_t new_idom = kNpos;
      for (size_t p : preds[b]) {
        if (idom[p] == kNpos) continue;  // unreachable or unprocessed
        new_idom = new_idom == kNpos ? p : intersect(new_idom, p);
      }
      if (new_idom != kNpos && idom[b] != new_idom) {
        idom[b] = new_idom;
        changed = true;
      }
    }
  }
  return idom;
}

bool Dominates(const std::vector<size_t>& idom, size_t a, size_t b) {
  if (b >= idom.size() || idom[b] == kNpos) return false;
  size_t x = b;
  while (true) {
    if (x == a) return true;
    if (idom[x] == x || idom[x] == kNpos) return false;
    x = idom[x];
  }
}

}  // namespace tabbench_analyze
