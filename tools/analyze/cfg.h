#ifndef TABBENCH_TOOLS_ANALYZE_CFG_H_
#define TABBENCH_TOOLS_ANALYZE_CFG_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "cpptok.h"

/// Intraprocedural control-flow graphs recovered from the cpptok token
/// stream (DESIGN.md §6b "Path-sensitive passes"). Like the rest of the
/// analyzer this is not a compiler front end: the builder understands the
/// statement forms the project style actually uses — if/else chains,
/// while/do/for/range-for, switch with fallthrough, break/continue,
/// return, and the early-return macros TB_RETURN_IF_ERROR /
/// TB_ASSIGN_OR_RETURN — and that is enough for the durability-ordering,
/// release-on-path, and error-path passes to reason about orderings the
/// scope-based passes cannot ("is the fsync on *every* path to this
/// externalization?").
///
/// Lambda bodies are carved out of the enclosing function: they execute on
/// their own schedule (often another thread), so their statements must not
/// appear on the enclosing function's paths. Each carved body range is
/// recorded in Cfg::lambda_bodies so callers can analyze it as an
/// independent CFG unit.
namespace tabbench_analyze {

using tabbench_tok::Token;

enum class CfgEdgeKind {
  kNext,         // unconditional fallthrough
  kTrue,         // branch taken (condition holds)
  kFalse,        // branch not taken
  kBack,         // loop back edge
  kBreak,        // break out of loop/switch
  kContinue,     // continue to loop head/increment
  kCase,         // switch dispatch to a case/default label
  kErrorReturn,  // TB_RETURN_IF_ERROR / TB_ASSIGN_OR_RETURN error exit
};

struct CfgEdge {
  size_t to = 0;
  CfgEdgeKind kind = CfgEdgeKind::kNext;
};

enum class CfgBlockKind {
  kEntry,
  kExit,
  kStmt,    // straight-line statement (or statement fragment)
  kBranch,  // if / ternary-free condition; tokens = the condition
  kLoop,    // loop header; tokens = the condition (empty for for(;;))
  kSwitch,  // switch head; tokens = the switched expression
  kReturn,  // return statement; tokens = the returned expression
  kJoin,    // empty merge point
};

struct CfgBlock {
  CfgBlockKind kind = CfgBlockKind::kStmt;
  size_t tok_begin = 0;  // tokens this block evaluates (may be empty)
  size_t tok_end = 0;
  size_t line = 0;  // 1-based source line of the first token (0 if none)
  std::vector<CfgEdge> succ;
  /// For kReturn: the returned expression is a non-OK Status factory
  /// (`return Status::Internal(...)`), i.e. this is a definite error exit.
  bool error_return = false;
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  size_t entry = 0;
  size_t exit = 0;
  /// Token ranges of lambda bodies carved out of this function, in source
  /// order: [first token inside the braces, one past the last).
  std::vector<std::pair<size_t, size_t>> lambda_bodies;
};

/// Builds the CFG for the token range [begin, end) — a function or lambda
/// body, braces excluded. Always yields a well-formed graph with entry and
/// exit blocks; statements after a terminator become unreachable blocks
/// (no predecessors) rather than being dropped, so token coverage is
/// complete.
Cfg BuildCfg(const std::vector<Token>& toks, size_t begin, size_t end);

/// Immediate dominators by iterative dataflow over a reverse postorder.
/// idom[entry] == entry; unreachable blocks get CfgNpos().
std::vector<size_t> ComputeDominators(const Cfg& cfg);

/// True when block `a` dominates block `b` under `idom` (a == b counts).
bool Dominates(const std::vector<size_t>& idom, size_t a, size_t b);

size_t CfgNpos();

}  // namespace tabbench_analyze

#endif  // TABBENCH_TOOLS_ANALYZE_CFG_H_
