#include "analyzer.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "model.h"

namespace tabbench_analyze {

const std::vector<RuleInfo>& Rules() {
  static const std::vector<RuleInfo> kRules = {
      {"tabbench-layering",
       "A file includes a higher layer, or crosses a `forbid` edge, per "
       "tools/analyze/layers.txt. Dependencies must point downward."},
      {"tabbench-include-cycle",
       "A cycle in the quoted-include graph. Cyclic headers cannot be "
       "understood, tested, or rebuilt independently."},
      {"tabbench-lock-order",
       "The global mutex-acquisition graph (nested MutexLock scopes, "
       "calls made under a lock, TB_ACQUIRED_BEFORE/AFTER declarations) "
       "contains a cycle: two threads taking the locks in opposite order "
       "deadlock."},
      {"tabbench-status-local",
       "A Status stored in a local that is never consulted afterwards; "
       "the error is silently dropped."},
      {"tabbench-result-on-error",
       "A Result<T> is dereferenced (.value(), *, ->) on its !ok() path, "
       "where there is no value to read."},
      {"tabbench-use-after-move",
       "A variable is read after std::move handed its contents away in "
       "the same scope."},
      {"tabbench-nondeterminism",
       "A function in src/core or src/engine can transitively reach a "
       "wall-clock or system-RNG call; simulation results must be "
       "reproducible from the seed alone."},
      {"tabbench-lockset-inconsistent",
       "A member field is accessed both while holding a mutex and with no "
       "lock held; the bare sites race with the locked ones (Eraser-style "
       "lockset inference)."},
      {"tabbench-lockset-unannotated",
       "Every access to a member field holds the same mutex, but the "
       "field carries no TB_GUARDED_BY; the inferred annotation is "
       "suggested and --fix-annotations inserts it."},
      {"tabbench-lockset-contradicted",
       "A field declares TB_GUARDED_BY(m) but some access site does not "
       "hold m; the annotation is a model the code contradicts."},
      {"tabbench-blocking-under-lock",
       "A blocking operation (fsync, sleeps, a Wait on a non-condvar) "
       "runs — directly or through resolved calls — while a mutex is "
       "held, stalling every waiter on that mutex."},
      {"tabbench-cancellation-poll",
       "An unbounded loop in a worker surface (src/exec/vec, "
       "src/core/runner.cc, src/service) never reaches a cancellation or "
       "watchdog poll on any path; it cannot be cancelled once wedged."},
      {"tabbench-durability-ordering",
       "A commit/externalization op of a protocol declared in "
       "tools/analyze/protocols.txt is reachable on some CFG path before "
       "the protocol's append+fsync; a crash on that path externalizes "
       "state the journal cannot replay."},
      {"tabbench-release-on-path",
       "A manually acquired resource (Lock/Unlock, watchdog Watch/Release, "
       "shard attempt registration) escapes the function on some CFG path "
       "— an early return, an error edge — without its release."},
      {"tabbench-error-path",
       "On a path where !v.ok() must hold: the would-be value is used, a "
       "journaled unit is left open with no abort record, or a blocking "
       "retry loop re-iterates without re-checking cancellation."},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// layers.txt
// ---------------------------------------------------------------------------

bool ParseLayerSpec(const std::string& text, LayerSpec* spec,
                    std::string* error) {
  *spec = LayerSpec();
  std::istringstream in(text);
  std::string line;
  size_t ln = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "layers.txt:" + std::to_string(ln) + ": " + why;
    }
    return false;
  };
  while (std::getline(in, line)) {
    ++ln;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) continue;
    if (word == "layer") {
      std::string name;
      if (!(words >> name) || name.back() != ':') {
        return fail("expected `layer <name>: <dir>...`");
      }
      name.pop_back();
      for (const LayerSpec::Layer& l : spec->layers) {
        if (l.name == name) return fail("duplicate layer '" + name + "'");
      }
      LayerSpec::Layer layer;
      layer.name = name;
      std::string dir;
      while (words >> dir) {
        while (!dir.empty() && dir.back() == '/') dir.pop_back();
        layer.dirs.push_back(dir);
      }
      if (layer.dirs.empty()) {
        return fail("layer '" + name + "' lists no directories");
      }
      spec->layers.push_back(std::move(layer));
    } else if (word == "forbid") {
      std::string from, arrow, to;
      if (!(words >> from >> arrow >> to) || arrow != "->") {
        return fail("expected `forbid <layer> -> <layer>`");
      }
      for (const std::string& name : {from, to}) {
        bool known = false;
        for (const LayerSpec::Layer& l : spec->layers) {
          known = known || l.name == name;
        }
        if (!known) {
          return fail("forbid names undeclared layer '" + name + "'");
        }
      }
      spec->forbid.emplace_back(from, to);
    } else {
      return fail("unknown directive '" + word + "'");
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// protocols.txt
// ---------------------------------------------------------------------------

bool ParseProtocolSpec(const std::string& text, ProtocolSpec* spec,
                       std::string* error) {
  *spec = ProtocolSpec();
  std::istringstream in(text);
  std::string line;
  size_t ln = 0;
  auto fail = [&](const std::string& why) {
    if (error != nullptr) {
      *error = "protocols.txt:" + std::to_string(ln) + ": " + why;
    }
    return false;
  };
  // `name` or `name:argtok` (the call matches only when argtok appears as
  // a token between its parens).
  auto parse_op = [](const std::string& word) {
    ProtocolSpec::Op op;
    const size_t colon = word.find(':');
    op.name = word.substr(0, colon);
    if (colon != std::string::npos) op.arg = word.substr(colon + 1);
    return op;
  };
  while (std::getline(in, line)) {
    ++ln;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) continue;
    if (word == "protocol") {
      std::string name;
      if (!(words >> name)) return fail("expected `protocol <name>`");
      for (const ProtocolSpec::Protocol& p : spec->protocols) {
        if (p.name == name) {
          return fail("duplicate protocol '" + name + "'");
        }
      }
      ProtocolSpec::Protocol proto;
      proto.name = name;
      spec->protocols.push_back(std::move(proto));
      continue;
    }
    if (spec->protocols.empty()) {
      return fail("'" + word + "' before the first `protocol` directive");
    }
    ProtocolSpec::Protocol& proto = spec->protocols.back();
    std::string value;
    if (!(words >> value)) {
      return fail("'" + word + "' needs at least one value");
    }
    do {
      if (word == "file") {
        proto.files.push_back(value);
      } else if (word == "sync") {
        proto.sync.push_back(value);
      } else if (word == "commit") {
        proto.commit.push_back(parse_op(value));
      } else if (word == "begin") {
        proto.begin.push_back(parse_op(value));
      } else if (word == "abort") {
        proto.abort.push_back(parse_op(value));
      } else {
        return fail("unknown directive '" + word + "'");
      }
    } while (words >> value);
  }
  return true;
}

// ---------------------------------------------------------------------------
// Analyze
// ---------------------------------------------------------------------------

std::vector<Finding> Analyze(const std::vector<SourceFile>& files,
                             const Options& opts) {
  const Model model = BuildModel(files);
  std::vector<Finding> findings;
  RunLayeringPass(model, opts.layers, &findings);
  RunLockOrderPass(model, &findings);
  RunStatusFlowPass(model, &findings);
  RunTaintPass(model, &findings);
  RunLocksetPass(model, &findings);
  RunBlockingPass(model, &findings);
  RunCancellationPass(model, &findings);
  RunDurabilityPass(model, opts.protocols, &findings);
  RunReleasePass(model, &findings);
  RunErrorPathPass(model, opts.protocols, &findings);

  std::map<std::string, const ParsedFile*> by_path;
  for (const ParsedFile& pf : model.files) by_path[pf.src->path] = &pf;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    auto it = by_path.find(f.file);
    if (it != by_path.end() && it->second->sup.Suppressed(f.line, f.rule)) {
      continue;
    }
    kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return kept;
}

size_t ApplyAnnotationFixes(const std::vector<Finding>& findings,
                            std::vector<SourceFile>* files) {
  auto is_word = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '_';
  };
  size_t applied = 0;
  for (const Finding& f : findings) {
    if (f.fix.text.empty() || f.line == 0) continue;
    for (SourceFile& sf : *files) {
      if (sf.path != f.file) continue;
      // Offsets are recomputed from the (possibly already edited) content
      // for every fix, so multiple fixes to one file compose.
      size_t begin = 0;
      bool found = true;
      for (size_t ln = 1; ln < f.line; ++ln) {
        const size_t nl = sf.content.find('\n', begin);
        if (nl == std::string::npos) {
          found = false;
          break;
        }
        begin = nl + 1;
      }
      if (!found) break;
      size_t end = sf.content.find('\n', begin);
      if (end == std::string::npos) end = sf.content.size();
      const std::string line = sf.content.substr(begin, end - begin);
      // Idempotence: a line that already carries an annotation is done.
      if (line.find("GUARDED_BY") != std::string::npos) break;
      size_t pos = std::string::npos;
      for (size_t p = line.find(f.fix.after_word); p != std::string::npos;
           p = line.find(f.fix.after_word, p + 1)) {
        const size_t q = p + f.fix.after_word.size();
        if ((p == 0 || !is_word(line[p - 1])) &&
            (q >= line.size() || !is_word(line[q]))) {
          pos = q;
          break;
        }
      }
      if (pos == std::string::npos) break;
      // The annotation goes after the whole declarator, past any array
      // brackets.
      while (pos < line.size() && line[pos] == '[') {
        const size_t close = line.find(']', pos);
        if (close == std::string::npos) break;
        pos = close + 1;
      }
      sf.content.insert(begin + pos, f.fix.text);
      ++applied;
      break;
    }
  }
  return applied;
}

// ---------------------------------------------------------------------------
// Output
// ---------------------------------------------------------------------------

std::string ToText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
    for (const RelatedSite& s : f.related) {
      out << "    " << s.file << ":" << s.line << ": " << s.note << "\n";
    }
  }
  return out.str();
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendLocation(std::ostringstream& out, const std::string& file,
                    size_t line, const std::string& message) {
  out << "{";
  if (!message.empty()) {
    out << "\"message\": {\"text\": \"" << JsonEscape(message) << "\"}, ";
  }
  out << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
      << JsonEscape(file) << "\"}, \"region\": {\"startLine\": "
      << (line == 0 ? 1 : line) << "}}}";
}

}  // namespace

std::string ToSarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\","
         "\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"tabbench_analyze\",\n"
      << "      \"informationUri\": "
         "\"https://example.invalid/tabbench/tools/analyze\",\n"
      << "      \"rules\": [";
  const auto& rules = Rules();
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out << ", ";
    out << "{\"id\": \"" << rules[i].name
        << "\", \"shortDescription\": {\"text\": \""
        << JsonEscape(rules[i].summary) << "\"}}";
  }
  out << "]\n    }},\n    \"results\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    if (i > 0) out << ", ";
    out << "\n      {\"ruleId\": \"" << f.rule
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << JsonEscape(f.message) << "\"}, \"locations\": [";
    AppendLocation(out, f.file, f.line, "");
    out << "]";
    if (!f.related.empty()) {
      out << ", \"relatedLocations\": [";
      for (size_t j = 0; j < f.related.size(); ++j) {
        if (j > 0) out << ", ";
        AppendLocation(out, f.related[j].file, f.related[j].line,
                       f.related[j].note);
      }
      out << "]";
    }
    out << "}";
  }
  out << "\n    ]\n  }]\n}\n";
  return out.str();
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

std::string ToBaselineJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n  \"tool\": \"tabbench_analyze\",\n  \"findings\": [";
  for (size_t i = 0; i < findings.size(); ++i) {
    if (i > 0) out << ",";
    out << "\n    {\"rule\": \"" << JsonEscape(findings[i].rule)
        << "\", \"file\": \"" << JsonEscape(findings[i].file)
        << "\", \"message\": \"" << JsonEscape(findings[i].message)
        << "\"}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

namespace {

/// Minimal JSON string scanner for the baseline format: finds the value of
/// `"key": "..."` starting at `from`, unescaping. Returns npos when absent.
size_t FindStringValue(const std::string& text, const std::string& key,
                       size_t from, size_t until, std::string* value) {
  const std::string needle = "\"" + key + "\"";
  size_t k = text.find(needle, from);
  if (k == std::string::npos || k >= until) return std::string::npos;
  size_t colon = text.find(':', k + needle.size());
  if (colon == std::string::npos) return std::string::npos;
  size_t q = text.find('"', colon);
  if (q == std::string::npos) return std::string::npos;
  std::string out;
  for (size_t i = q + 1; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      const char c = text[i + 1];
      out += c == 'n' ? '\n' : c == 't' ? '\t' : c;
      ++i;
    } else if (text[i] == '"') {
      *value = out;
      return i;
    } else {
      out += text[i];
    }
  }
  return std::string::npos;
}

}  // namespace

bool ParseBaselineJson(const std::string& text,
                       std::vector<BaselineEntry>* out,
                       std::string* error) {
  out->clear();
  const size_t arr = text.find("\"findings\"");
  if (arr == std::string::npos) {
    if (error != nullptr) *error = "baseline: no \"findings\" array";
    return false;
  }
  size_t pos = text.find('[', arr);
  if (pos == std::string::npos) {
    if (error != nullptr) *error = "baseline: malformed findings array";
    return false;
  }
  while (true) {
    const size_t open = text.find('{', pos);
    if (open == std::string::npos) break;
    const size_t close = text.find('}', open);
    if (close == std::string::npos) {
      if (error != nullptr) *error = "baseline: unterminated entry";
      return false;
    }
    BaselineEntry e;
    if (FindStringValue(text, "rule", open, close, &e.rule) ==
            std::string::npos ||
        FindStringValue(text, "file", open, close, &e.file) ==
            std::string::npos ||
        FindStringValue(text, "message", open, close, &e.message) ==
            std::string::npos) {
      if (error != nullptr) {
        *error = "baseline: entry missing rule/file/message";
      }
      return false;
    }
    out->push_back(std::move(e));
    pos = close + 1;
  }
  return true;
}

BaselineDiff DiffBaseline(const std::vector<Finding>& findings,
                          const std::vector<BaselineEntry>& baseline) {
  // Multiset semantics: two identical findings need two baseline entries.
  std::map<std::tuple<std::string, std::string, std::string>, int> budget;
  for (const BaselineEntry& e : baseline) {
    ++budget[{e.rule, e.file, e.message}];
  }
  BaselineDiff diff;
  for (const Finding& f : findings) {
    auto it = budget.find({f.rule, f.file, f.message});
    if (it != budget.end() && it->second > 0) {
      --it->second;
      ++diff.matched;
    } else {
      diff.fresh.push_back(f);
    }
  }
  for (const auto& [key, count] : budget) {
    for (int i = 0; i < count; ++i) {
      diff.stale.push_back(
          {std::get<0>(key), std::get<1>(key), std::get<2>(key)});
    }
  }
  return diff;
}

}  // namespace tabbench_analyze
