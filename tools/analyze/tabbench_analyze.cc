// tabbench_analyze — cross-translation-unit static-analysis CLI.
//
// Usage:
//   tabbench_analyze [--root DIR] [--layers FILE] [--protocols FILE]
//                    [--baseline FILE] [--write-baseline]
//                    [--strict-baseline] [--sarif FILE]
//                    [--fix-annotations] [--fault-coverage]
//                    [--check-fault-coverage FILE] [--list-rules] [paths...]
//
// Walks the given paths (default: src bench tests tools examples) under
// --root (default: cwd), builds one project model from every .h/.cc/.cpp
// file, and runs the ten passes (see analyzer.h). Findings are diffed
// against the baseline (default: ROOT/tools/analyze/baseline.json when it
// exists): baselined findings are reported but do not fail the run.
// --protocols names the durability-protocol declarations for the
// path-sensitive passes (default: ROOT/tools/analyze/protocols.txt when it
// exists).
//
// --fix-annotations inserts the TB_GUARDED_BY annotations suggested by
// tabbench-lockset-unannotated findings into the source files on disk
// (idempotent; re-running changes nothing). --fault-coverage prints the
// TB_FAULT_POINT coverage report per layer and exits.
// --check-fault-coverage enforces the committed coverage floor
// (ROOT/tools/analyze/fault_layers.txt in CI): each listed layer must keep
// at least its recorded number of fault-point sites, so chaos-test
// coverage a layer once had can never silently regress to zero.
//
// Exit status: 0 clean (or fully baselined), 1 when fresh findings exist —
// or, under --strict-baseline, when baseline entries no longer fire (the
// ratchet: the baseline may shrink, never grow) — 2 on usage/I-O errors.
//
// --write-baseline rewrites the baseline file from the current findings
// (for adopting the tool on a tree with known debt); --sarif additionally
// writes a SARIF 2.1.0 report for code-scanning UIs.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "model.h"

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool IsExcludedDir(const std::string& name) {
  return name == ".git" || name.rfind("build", 0) == 0;
}

void CollectFiles(const fs::path& root, const fs::path& rel,
                  std::vector<std::string>* out) {
  fs::path abs = root / rel;
  std::error_code ec;
  if (fs::is_regular_file(abs, ec)) {
    if (HasSourceExtension(abs)) out->push_back(rel.generic_string());
    return;
  }
  if (!fs::is_directory(abs, ec)) return;
  for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      if (IsExcludedDir(it->path().filename().string())) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
      out->push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string layers_file;     // default: ROOT/tools/analyze/layers.txt
  std::string protocols_file;  // default: ROOT/tools/analyze/protocols.txt
  std::string baseline_file;   // default: ROOT/tools/analyze/baseline.json
  std::string sarif_file;
  bool write_baseline = false;
  bool strict_baseline = false;
  bool dump_model = false;
  bool fix_annotations = false;
  bool fault_coverage = false;
  std::string check_fault_file;  // --check-fault-coverage ratchet floor
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto flag_value = [&](const char* flag, std::string* out) {
      if (++i >= argc) {
        std::cerr << flag << " needs an argument\n";
        return false;
      }
      *out = argv[i];
      return true;
    };
    if (arg == "--root") {
      if (!flag_value("--root", &root)) return 2;
    } else if (arg == "--layers") {
      if (!flag_value("--layers", &layers_file)) return 2;
    } else if (arg == "--protocols") {
      if (!flag_value("--protocols", &protocols_file)) return 2;
    } else if (arg == "--baseline") {
      if (!flag_value("--baseline", &baseline_file)) return 2;
    } else if (arg == "--sarif") {
      if (!flag_value("--sarif", &sarif_file)) return 2;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--strict-baseline") {
      strict_baseline = true;
    } else if (arg == "--dump-model") {
      dump_model = true;
    } else if (arg == "--fix-annotations") {
      fix_annotations = true;
    } else if (arg == "--fault-coverage") {
      fault_coverage = true;
    } else if (arg == "--check-fault-coverage") {
      if (!flag_value("--check-fault-coverage", &check_fault_file)) return 2;
    } else if (arg == "--list-rules") {
      for (const auto& rule : tabbench_analyze::Rules()) {
        std::cout << rule.name << "\n    " << rule.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: tabbench_analyze [--root DIR] [--layers FILE] "
                   "[--protocols FILE] [--baseline FILE] "
                   "[--write-baseline] [--strict-baseline] [--sarif FILE] "
                   "[--fix-annotations] [--fault-coverage] "
                   "[--check-fault-coverage FILE] [--list-rules] "
                   "[paths...]\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    paths = {"src", "bench", "tests", "tools", "examples"};
  }
  if (layers_file.empty()) {
    const fs::path def = fs::path(root) / "tools/analyze/layers.txt";
    std::error_code ec;
    if (fs::is_regular_file(def, ec)) layers_file = def.string();
  }
  if (protocols_file.empty()) {
    const fs::path def = fs::path(root) / "tools/analyze/protocols.txt";
    std::error_code ec;
    if (fs::is_regular_file(def, ec)) protocols_file = def.string();
  }
  if (baseline_file.empty()) {
    const fs::path def = fs::path(root) / "tools/analyze/baseline.json";
    std::error_code ec;
    if (fs::is_regular_file(def, ec)) baseline_file = def.string();
  }

  tabbench_analyze::Options options;
  if (!layers_file.empty()) {
    std::string text, error;
    if (!ReadFile(layers_file, &text)) {
      std::cerr << "tabbench_analyze: cannot read " << layers_file << "\n";
      return 2;
    }
    if (!tabbench_analyze::ParseLayerSpec(text, &options.layers, &error)) {
      std::cerr << "tabbench_analyze: " << error << "\n";
      return 2;
    }
  }
  if (!protocols_file.empty()) {
    std::string text, error;
    if (!ReadFile(protocols_file, &text)) {
      std::cerr << "tabbench_analyze: cannot read " << protocols_file
                << "\n";
      return 2;
    }
    if (!tabbench_analyze::ParseProtocolSpec(text, &options.protocols,
                                             &error)) {
      std::cerr << "tabbench_analyze: " << error << "\n";
      return 2;
    }
  }

  std::vector<std::string> rel_files;
  for (const auto& p : paths) CollectFiles(root, p, &rel_files);
  if (rel_files.empty()) {
    std::cerr << "tabbench_analyze: no source files under " << root << "\n";
    return 2;
  }
  std::sort(rel_files.begin(), rel_files.end());
  rel_files.erase(std::unique(rel_files.begin(), rel_files.end()),
                  rel_files.end());

  std::vector<tabbench_analyze::SourceFile> files;
  files.reserve(rel_files.size());
  for (const auto& rel : rel_files) {
    std::string content;
    if (!ReadFile(fs::path(root) / rel, &content)) {
      std::cerr << "tabbench_analyze: cannot read " << rel << "\n";
      return 2;
    }
    files.push_back({rel, std::move(content)});
  }

  if (dump_model) {
    // Debug view of what the scope scanner extracted (not a stable format).
    const tabbench_analyze::Model model = tabbench_analyze::BuildModel(files);
    for (const auto& fn : model.functions) {
      std::cout << "fn " << fn.qualified << " @ "
                << model.files[fn.file_index].src->path << ":" << fn.line
                << "\n";
    }
    for (const auto& [name, cls] : model.classes) {
      std::cout << "class " << name << " mutexes={";
      for (const auto& m : cls.mutexes) std::cout << m << " ";
      std::cout << "} members={";
      for (const auto& [mn, mi] : cls.members) {
        std::cout << mn << ":" << mi.type << " ";
      }
      std::cout << "}\n";
    }
    return 0;
  }

  if (fault_coverage) {
    std::cout << tabbench_analyze::FaultCoverageReport(files,
                                                       options.layers);
    return 0;
  }

  if (!check_fault_file.empty()) {
    // CI ratchet: every layer listed in the floor file must keep at least
    // its recorded number of TB_FAULT_POINT sites (default 1) — a layer
    // that once had fault-injection coverage can never drop back to zero.
    std::string required;
    if (!ReadFile(check_fault_file, &required)) {
      std::cerr << "tabbench_analyze: cannot read " << check_fault_file
                << "\n";
      return 2;
    }
    const std::vector<std::string> violations =
        tabbench_analyze::CheckFaultCoverage(files, options.layers, required);
    if (violations.empty()) {
      std::cout << "fault-coverage ratchet OK (" << check_fault_file << ")\n";
      return 0;
    }
    for (const std::string& v : violations) {
      std::cerr << "fault-coverage ratchet: " << v << "\n";
    }
    return 1;
  }

  const std::vector<tabbench_analyze::Finding> findings =
      tabbench_analyze::Analyze(files, options);

  if (fix_annotations) {
    std::vector<std::string> before;
    before.reserve(files.size());
    for (const auto& f : files) before.push_back(f.content);
    const size_t applied =
        tabbench_analyze::ApplyAnnotationFixes(findings, &files);
    size_t written = 0;
    for (size_t i = 0; i < files.size(); ++i) {
      if (files[i].content == before[i]) continue;
      std::ofstream out(fs::path(root) / files[i].path,
                        std::ios::binary | std::ios::trunc);
      if (!out) {
        std::cerr << "tabbench_analyze: cannot write " << files[i].path
                  << "\n";
        return 2;
      }
      out << files[i].content;
      ++written;
    }
    std::cout << "tabbench_analyze: inserted " << applied
              << " annotation(s) across " << written << " file(s)\n";
    return 0;
  }

  if (!sarif_file.empty()) {
    std::ofstream out(sarif_file, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "tabbench_analyze: cannot write " << sarif_file << "\n";
      return 2;
    }
    out << tabbench_analyze::ToSarif(findings);
  }

  if (write_baseline) {
    const std::string target =
        baseline_file.empty()
            ? (fs::path(root) / "tools/analyze/baseline.json").string()
            : baseline_file;
    std::ofstream out(target, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "tabbench_analyze: cannot write " << target << "\n";
      return 2;
    }
    out << tabbench_analyze::ToBaselineJson(findings);
    std::cout << "tabbench_analyze: wrote " << findings.size()
              << " baseline entries to " << target << "\n";
    return 0;
  }

  std::vector<tabbench_analyze::BaselineEntry> baseline;
  if (!baseline_file.empty()) {
    std::string text, error;
    if (!ReadFile(baseline_file, &text)) {
      std::cerr << "tabbench_analyze: cannot read " << baseline_file
                << "\n";
      return 2;
    }
    if (!tabbench_analyze::ParseBaselineJson(text, &baseline, &error)) {
      std::cerr << "tabbench_analyze: " << error << "\n";
      return 2;
    }
  }

  const tabbench_analyze::BaselineDiff diff =
      tabbench_analyze::DiffBaseline(findings, baseline);

  std::cout << tabbench_analyze::ToText(diff.fresh);
  if (diff.matched > 0) {
    std::cout << "tabbench_analyze: " << diff.matched
              << " known finding(s) absorbed by baseline\n";
  }
  bool fail = !diff.fresh.empty();
  if (!diff.stale.empty()) {
    for (const auto& e : diff.stale) {
      std::cout << (strict_baseline ? "stale baseline entry (ratchet: "
                                      "remove it): "
                                    : "note: stale baseline entry: ")
                << "[" << e.rule << "] " << e.file << ": " << e.message
                << "\n";
    }
    if (strict_baseline) fail = true;
  }
  if (!fail) {
    std::cout << "tabbench_analyze: " << files.size() << " files, "
              << findings.size() << " finding(s), clean vs baseline\n";
  }
  return fail ? 1 : 0;
}
