/// The path-sensitive passes (analyzer.h passes 8–10): durability-protocol
/// ordering, release-on-all-paths, and error-path soundness. All three run
/// on per-function CFGs (cfg.h) with the forward dataflow solver
/// (dataflow.h); lambda bodies are carved out of their enclosing function
/// and analyzed as independent units, since they run on their own schedule.

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cfg.h"
#include "dataflow.h"
#include "model.h"

namespace tabbench_analyze {

namespace {

using tabbench_tok::TokKind;

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }

bool IsPunct(const Token& t, const char* s) {
  return t.kind == TokKind::kPunct && t.text == s;
}

size_t MatchParen(const std::vector<Token>& toks, size_t open, size_t end) {
  int depth = 0;
  for (size_t j = open; j < end; ++j) {
    if (IsPunct(toks[j], "(") || IsPunct(toks[j], "[") ||
        IsPunct(toks[j], "{")) {
      ++depth;
    } else if (IsPunct(toks[j], ")") || IsPunct(toks[j], "]") ||
               IsPunct(toks[j], "}")) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return end;
}

/// Identifiers that look like calls but are not (control flow, casts, the
/// analyzer-relevant macros that get their own CFG treatment).
bool IsCallKeyword(const std::string& s) {
  static const std::set<std::string> kSet = {
      "if",          "while",       "for",
      "switch",      "return",      "sizeof",
      "alignof",     "decltype",    "static_cast",
      "reinterpret_cast", "const_cast", "dynamic_cast",
      "new",         "delete",      "defined",
      "TB_RETURN_IF_ERROR", "TB_ASSIGN_OR_RETURN"};
  return kSet.count(s) != 0;
}

struct Call {
  size_t tok = 0;  // index of the callee identifier
  std::string name;
  std::string receiver;  // `recv.name(...)` / `recv->name(...)`, else ""
  size_t line = 0;
  size_t args_begin = 0, args_end = 0;  // tokens between the parens
};

std::vector<Call> CallsInRange(const std::vector<Token>& toks, size_t b,
                               size_t e) {
  std::vector<Call> out;
  for (size_t j = b; j + 1 < e; ++j) {
    if (!IsIdent(toks[j]) || !IsPunct(toks[j + 1], "(")) continue;
    if (IsCallKeyword(toks[j].text)) continue;
    Call c;
    c.tok = j;
    c.name = toks[j].text;
    c.line = toks[j].line;
    if (j >= b + 2 &&
        (IsPunct(toks[j - 1], ".") || IsPunct(toks[j - 1], "->")) &&
        IsIdent(toks[j - 2])) {
      c.receiver = toks[j - 2].text;
    }
    size_t close = MatchParen(toks, j + 1, e);
    c.args_begin = j + 2;
    c.args_end = close;
    out.push_back(std::move(c));
  }
  return out;
}

bool ArgsContainIdent(const std::vector<Token>& toks, const Call& c,
                      const std::string& ident) {
  for (size_t j = c.args_begin; j < c.args_end && j < toks.size(); ++j) {
    if (IsIdent(toks[j]) && toks[j].text == ident) return true;
  }
  return false;
}

bool OpMatches(const std::vector<Token>& toks, const Call& c,
               const ProtocolSpec::Op& op) {
  if (c.name != op.name) return false;
  return op.arg.empty() || ArgsContainIdent(toks, c, op.arg);
}

// ------------------------------------------------------------- CFG units

/// One analyzable body: a function, or a lambda carved out of one.
struct CfgUnit {
  size_t file_index = 0;
  const FunctionInfo* fn = nullptr;  // the owning top-level function
  std::string name;
  bool is_lambda = false;
  Cfg cfg;
};

void AppendUnits(const Model& model, const FunctionInfo& fn,
                 std::vector<CfgUnit>* out) {
  const ParsedFile& pf = model.files[fn.file_index];
  CfgUnit top;
  top.file_index = fn.file_index;
  top.fn = &fn;
  top.name = fn.qualified;
  top.cfg = BuildCfg(pf.toks, fn.body_begin, fn.body_end);
  std::vector<std::pair<size_t, size_t>> queue = top.cfg.lambda_bodies;
  out->push_back(std::move(top));
  size_t k = 0;
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    CfgUnit u;
    u.file_index = fn.file_index;
    u.fn = &fn;
    u.is_lambda = true;
    u.name = fn.qualified + "::lambda#" + std::to_string(++k);
    u.cfg = BuildCfg(pf.toks, queue[qi].first, queue[qi].second);
    for (const auto& lb : u.cfg.lambda_bodies) queue.push_back(lb);
    out->push_back(std::move(u));
  }
}

std::vector<CfgUnit> UnitsForFile(const Model& model, size_t file_index) {
  std::vector<CfgUnit> units;
  for (const FunctionInfo& fn : model.functions) {
    if (fn.file_index == file_index) AppendUnits(model, fn, &units);
  }
  return units;
}

/// Edges into the exit block that represent a *success* return: not the
/// TB_RETURN_IF_ERROR error edge, not `return Status::<ErrorFactory>(...)`.
bool IsSuccessExitEdge(const Cfg& cfg, size_t from, const CfgEdge& e) {
  if (e.to != cfg.exit) return false;
  if (e.kind == CfgEdgeKind::kErrorReturn) return false;
  const CfgBlock& src = cfg.blocks[from];
  if (src.kind == CfgBlockKind::kReturn && src.error_return) return false;
  return true;
}

// --------------------------------------------------- durability ordering

const char kSynced[] = "synced";

/// Fixpoint set of functions whose every success return is preceded — on
/// every path — by one of the protocol's sync ops (directly or through a
/// callee already in the set). This is what lets `sync fsync` catch a
/// deleted fsync *inside WriteAndSync* from WriteAndSync's callers.
struct SyncingSet {
  std::set<const FunctionInfo*> fns;
  std::set<std::string> names;  // unqualified, for the cheap pre-filter
};

bool IsSyncCall(const Model& model, const ProtocolSpec::Protocol& proto,
                const SyncingSet& syncing, const std::string& caller_cls,
                const Call& c) {
  if (std::find(proto.sync.begin(), proto.sync.end(), c.name) !=
      proto.sync.end()) {
    return true;
  }
  if (syncing.names.count(c.name) == 0) return false;
  const std::vector<size_t> cands =
      ResolveCall(model, "", caller_cls, c.name);
  if (cands.empty()) return false;
  for (size_t idx : cands) {
    if (syncing.fns.count(&model.functions[idx]) == 0) return false;
  }
  return true;
}

/// Must-dataflow for the "synced" fact over one unit.
DataflowResult SolveSynced(const Model& model,
                           const ProtocolSpec::Protocol& proto,
                           const SyncingSet& syncing, const CfgUnit& unit) {
  const ParsedFile& pf = model.files[unit.file_index];
  DataflowSpec spec;
  spec.meet = MeetKind::kIntersect;
  spec.transfer = [&](size_t block, Facts* facts) {
    const CfgBlock& blk = unit.cfg.blocks[block];
    for (const Call& c : CallsInRange(pf.toks, blk.tok_begin, blk.tok_end)) {
      if (IsSyncCall(model, proto, syncing, unit.fn->cls, c)) {
        facts->insert(kSynced);
      }
    }
  };
  return SolveForward(unit.cfg, spec);
}

bool UnitSyncsOnSuccess(const Model& model,
                        const ProtocolSpec::Protocol& proto,
                        const SyncingSet& syncing, const CfgUnit& unit) {
  const ParsedFile& pf = model.files[unit.file_index];
  // Cheap syntactic gate: no sync-capable callee name, no need to solve.
  bool candidate = false;
  for (const CfgBlock& blk : unit.cfg.blocks) {
    for (const Call& c : CallsInRange(pf.toks, blk.tok_begin, blk.tok_end)) {
      if (std::find(proto.sync.begin(), proto.sync.end(), c.name) !=
              proto.sync.end() ||
          syncing.names.count(c.name) != 0) {
        candidate = true;
      }
    }
  }
  if (!candidate) return false;
  const DataflowResult res = SolveSynced(model, proto, syncing, unit);
  bool any_success_exit = false;
  for (size_t b = 0; b < unit.cfg.blocks.size(); ++b) {
    if (!res.reached[b]) continue;
    for (const CfgEdge& e : unit.cfg.blocks[b].succ) {
      if (!IsSuccessExitEdge(unit.cfg, b, e)) continue;
      any_success_exit = true;
      if (res.out[b].count(kSynced) == 0) return false;
    }
  }
  return any_success_exit;
}

}  // namespace

void RunDurabilityPass(const Model& model, const ProtocolSpec& protocols,
                       std::vector<Finding>* findings) {
  for (const ProtocolSpec::Protocol& proto : protocols.protocols) {
    if (proto.files.empty() || proto.commit.empty()) continue;

    // 1. Propagate "syncing" through callees to a fixpoint. Only
    // top-level functions participate (a lambda is not callable by name).
    SyncingSet syncing;
    std::vector<CfgUnit> all_units;
    std::map<const FunctionInfo*, const CfgUnit*> top_unit;
    for (const FunctionInfo& fn : model.functions) {
      CfgUnit u;
      u.file_index = fn.file_index;
      u.fn = &fn;
      u.name = fn.qualified;
      u.cfg = BuildCfg(model.files[fn.file_index].toks, fn.body_begin,
                       fn.body_end);
      all_units.push_back(std::move(u));
    }
    for (const CfgUnit& u : all_units) top_unit[u.fn] = &u;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const CfgUnit& u : all_units) {
        if (syncing.fns.count(u.fn) != 0) continue;
        if (UnitSyncsOnSuccess(model, proto, syncing, u)) {
          syncing.fns.insert(u.fn);
          syncing.names.insert(u.fn->name);
          changed = true;
        }
      }
    }

    // 2. In the protocol's files: every commit op must see the synced
    // fact on all incoming paths, in statement order within the block.
    std::string sync_list;
    for (const std::string& s : proto.sync) {
      if (!sync_list.empty()) sync_list += ", ";
      sync_list += s;
    }
    for (size_t fi = 0; fi < model.files.size(); ++fi) {
      const ParsedFile& pf = model.files[fi];
      if (std::find(proto.files.begin(), proto.files.end(),
                    pf.src->path) == proto.files.end()) {
        continue;
      }
      for (const CfgUnit& unit : UnitsForFile(model, fi)) {
        const DataflowResult res =
            SolveSynced(model, proto, syncing, unit);
        for (size_t b = 0; b < unit.cfg.blocks.size(); ++b) {
          if (!res.reached[b]) continue;
          Facts facts = res.in[b];
          const CfgBlock& blk = unit.cfg.blocks[b];
          for (const Call& c :
               CallsInRange(pf.toks, blk.tok_begin, blk.tok_end)) {
            bool is_commit = false;
            for (const ProtocolSpec::Op& op : proto.commit) {
              if (OpMatches(pf.toks, c, op)) is_commit = true;
            }
            if (is_commit && facts.count(kSynced) == 0) {
              Finding f;
              f.file = pf.src->path;
              f.line = c.line;
              f.rule = "tabbench-durability-ordering";
              f.message = "'" + c.name + "' is reachable before the " +
                          proto.name +
                          " protocol's append+fsync (declared sync: " +
                          sync_list + ") in " + unit.name;
              f.related.push_back(
                  {pf.src->path, unit.fn->line,
                   "enclosing function: a path from here reaches the "
                   "commit with no sync op on it"});
              findings->push_back(std::move(f));
            }
            if (IsSyncCall(model, proto, syncing, unit.fn->cls, c)) {
              facts.insert(kSynced);
            }
          }
        }
      }
    }
  }
}

// --------------------------------------------------- release on all paths

namespace {

struct PairDef {
  const char* acquire;
  const char* release;
  /// strict: any unbalanced acquire is a finding (manual mutexes — RAII
  /// MutexLock is the sanctioned form, so manual locking must balance).
  /// Non-strict pairs are enforced only when the same function also
  /// releases the same resource somewhere (otherwise ownership was handed
  /// off — watchdog ids and attempt registrations legitimately cross
  /// function boundaries).
  bool strict;
};

const PairDef kReleasePairs[] = {
    {"Lock", "Unlock", true},
    {"Watch", "Release", false},
    {"RegisterAttempt", "UnregisterAttempt", false},
};

struct AcquireSite {
  size_t pair = 0;
  std::string key;  // "<pair>:<receiver>"
  size_t line = 0;
  std::string receiver;
};

/// The function's declaration lines carry a thread-safety annotation that
/// declares intentional lock-state change (MutexLock's constructor, the
/// Mutex wrappers themselves): exempt.
bool DeclaresLockTransfer(const ParsedFile& pf, const FunctionInfo& fn) {
  size_t first_body_line =
      fn.body_begin < pf.toks.size() ? pf.toks[fn.body_begin].line : fn.line;
  for (size_t ln = fn.line; ln <= first_body_line && ln <= pf.raw_lines.size();
       ++ln) {
    const std::string& raw = pf.raw_lines[ln - 1];
    if (raw.find("TB_ACQUIRE") != std::string::npos ||
        raw.find("TB_RELEASE") != std::string::npos ||
        raw.find("TB_TRY_ACQUIRE") != std::string::npos) {
      return true;
    }
  }
  return false;
}

}  // namespace

void RunReleasePass(const Model& model, std::vector<Finding>* findings) {
  const size_t num_pairs = sizeof(kReleasePairs) / sizeof(kReleasePairs[0]);
  for (size_t fi = 0; fi < model.files.size(); ++fi) {
    const ParsedFile& pf = model.files[fi];
    for (const CfgUnit& unit : UnitsForFile(model, fi)) {
      if (!unit.is_lambda && DeclaresLockTransfer(pf, *unit.fn)) continue;

      // Collect acquire/release events per block, in token order.
      struct Event {
        bool acquire = false;
        size_t site = 0;    // index into sites (acquires only)
        std::string key;
      };
      std::vector<AcquireSite> sites;
      std::map<size_t, std::vector<Event>> events;  // block -> ordered
      std::set<std::string> released_keys;
      for (size_t b = 0; b < unit.cfg.blocks.size(); ++b) {
        const CfgBlock& blk = unit.cfg.blocks[b];
        for (const Call& c :
             CallsInRange(pf.toks, blk.tok_begin, blk.tok_end)) {
          for (size_t p = 0; p < num_pairs; ++p) {
            const std::string key =
                std::string(kReleasePairs[p].acquire) + ":" + c.receiver;
            if (c.name == kReleasePairs[p].acquire) {
              events[b].push_back(Event{true, sites.size(), key});
              sites.push_back(AcquireSite{p, key, c.line, c.receiver});
            } else if (c.name == kReleasePairs[p].release) {
              events[b].push_back(Event{false, 0, key});
              released_keys.insert(key);
            }
          }
        }
      }
      if (sites.empty()) continue;

      DataflowSpec spec;
      spec.meet = MeetKind::kUnion;
      spec.transfer = [&](size_t block, Facts* facts) {
        auto it = events.find(block);
        if (it == events.end()) return;
        for (const Event& ev : it->second) {
          if (ev.acquire) {
            facts->insert("h:" + std::to_string(ev.site));
          } else {
            for (size_t s = 0; s < sites.size(); ++s) {
              if (sites[s].key == ev.key) {
                facts->erase("h:" + std::to_string(s));
              }
            }
          }
        }
      };
      const DataflowResult res = SolveForward(unit.cfg, spec);
      if (!res.reached[unit.cfg.exit]) continue;
      for (size_t s = 0; s < sites.size(); ++s) {
        const AcquireSite& site = sites[s];
        const std::string fact = "h:" + std::to_string(s);
        if (res.in[unit.cfg.exit].count(fact) == 0) continue;
        if (!kReleasePairs[site.pair].strict &&
            released_keys.count(site.key) == 0) {
          continue;  // ownership handoff, not a leak
        }
        Finding f;
        f.file = pf.src->path;
        f.line = site.line;
        f.rule = "tabbench-release-on-path";
        const std::string recv =
            site.receiver.empty() ? "this" : site.receiver;
        f.message = "'" + recv + "." + kReleasePairs[site.pair].acquire +
                    "()' in " + unit.name + " is not matched by " +
                    kReleasePairs[site.pair].release +
                    "() on every path to the function exit";
        for (size_t b = 0;
             b < unit.cfg.blocks.size() && f.related.size() < 4; ++b) {
          if (!res.reached[b] || res.out[b].count(fact) == 0) continue;
          for (const CfgEdge& e : unit.cfg.blocks[b].succ) {
            if (e.to != unit.cfg.exit) continue;
            f.related.push_back(
                {pf.src->path, unit.cfg.blocks[b].line,
                 e.kind == CfgEdgeKind::kErrorReturn
                     ? "escaping edge: TB_RETURN_IF_ERROR error path "
                       "leaves with the resource still held"
                     : "escaping edge: this exit is reached with the "
                       "resource still held"});
            break;
          }
        }
        findings->push_back(std::move(f));
      }
    }
  }
}

// ------------------------------------------------------ error-path pass

namespace {

/// `cond` is exactly `[!] v . ok ( )` (outer parens stripped): returns
/// the variable and polarity. Compound conditions yield no fact — half a
/// fact is worse than none for a must-analysis.
bool ParseOkCond(const std::vector<Token>& toks, size_t b, size_t e,
                 std::string* var, bool* negated) {
  while (e > b + 1 && IsPunct(toks[b], "(") &&
         MatchParen(toks, b, e) == e - 1) {
    ++b;
    --e;
  }
  size_t i = b;
  *negated = false;
  if (i < e && IsPunct(toks[i], "!")) {
    *negated = true;
    ++i;
  }
  if (i + 5 != e) return false;
  if (!IsIdent(toks[i]) || !IsPunct(toks[i + 1], ".") ||
      !IsIdent(toks[i + 2]) || toks[i + 2].text != "ok" ||
      !IsPunct(toks[i + 3], "(") || !IsPunct(toks[i + 4], ")")) {
    return false;
  }
  *var = toks[i].text;
  return true;
}

std::string ErrFact(const std::string& var) { return "err:" + var; }

/// Calls that block the thread (mirror of the blocking-under-lock pass).
bool IsBlockingName(const std::string& s) {
  static const std::set<std::string> kNames = {
      "fsync",     "fdatasync",  "sleep_for", "sleep_until",
      "usleep",    "nanosleep",  "system",    "popen",
      "SleepWithCancellation"};
  return kNames.count(s) != 0;
}

/// True when tokens [b,e) observe cancellation/stop state, or check the
/// status a blocking call returned (`rv.ok()`): the re-check that makes a
/// retry loop cancellable.
bool RangeHasCancellationCheck(const std::vector<Token>& toks, size_t b,
                               size_t e, const std::string& rv) {
  for (size_t j = b; j < e; ++j) {
    if (!IsIdent(toks[j])) continue;
    const std::string& s = toks[j].text;
    std::string lower;
    for (char ch : s) {
      lower += static_cast<char>(ch >= 'A' && ch <= 'Z' ? ch - 'A' + 'a'
                                                        : ch);
    }
    if (lower.find("cancel") != std::string::npos &&
        lower.find("requestcancel") == std::string::npos) {
      return true;
    }
    static const std::set<std::string> kStopLike = {
        "stop", "stop_", "stopped_", "stopping_", "shutdown_", "quit_",
        "stop_requested"};
    if (kStopLike.count(s) != 0) return true;
    static const std::set<std::string> kPollCalls = {"CheckTimeout",
                                                     "ShouldYield", "Poll"};
    if (kPollCalls.count(s) != 0 && j + 1 < e &&
        IsPunct(toks[j + 1], "(")) {
      return true;
    }
    if (!rv.empty() && s == rv && j + 2 < e && IsPunct(toks[j + 1], ".") &&
        IsIdent(toks[j + 2]) && toks[j + 2].text == "ok") {
      return true;
    }
  }
  return false;
}

/// Natural loop body of the back/continue edge target `head`: head plus
/// every block that reaches an edge into head without passing through it.
std::set<size_t> LoopBody(const Cfg& cfg, size_t head) {
  std::vector<std::vector<size_t>> preds(cfg.blocks.size());
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const CfgEdge& e : cfg.blocks[b].succ) preds[e.to].push_back(b);
  }
  std::set<size_t> body = {head};
  std::vector<size_t> stack;
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (const CfgEdge& e : cfg.blocks[b].succ) {
      if (e.to == head &&
          (e.kind == CfgEdgeKind::kBack ||
           e.kind == CfgEdgeKind::kContinue)) {
        stack.push_back(b);
      }
    }
  }
  while (!stack.empty()) {
    size_t x = stack.back();
    stack.pop_back();
    if (body.count(x) != 0) continue;
    body.insert(x);
    for (size_t p : preds[x]) stack.push_back(p);
  }
  return body;
}

/// Members that are safe to touch on an error value.
bool IsAllowedErrorAccess(const std::string& member) {
  return member == "ok" || member == "status" || member == "message" ||
         member == "code" || member == "ToString" ||
         (member.size() > 2 && member[0] == 'I' && member[1] == 's');
}

}  // namespace

void RunErrorPathPass(const Model& model, const ProtocolSpec& protocols,
                      std::vector<Finding>* findings) {
  for (size_t fi = 0; fi < model.files.size(); ++fi) {
    const ParsedFile& pf = model.files[fi];
    const std::vector<Token>& toks = pf.toks;
    std::vector<const ProtocolSpec::Protocol*> begin_protos;
    for (const ProtocolSpec::Protocol& proto : protocols.protocols) {
      if (!proto.begin.empty() &&
          std::find(proto.files.begin(), proto.files.end(),
                    pf.src->path) != proto.files.end()) {
        begin_protos.push_back(&proto);
      }
    }
    for (const CfgUnit& unit : UnitsForFile(model, fi)) {
      const Cfg& cfg = unit.cfg;

      // ---- must-err facts: on every path to here, !v.ok() holds.
      DataflowSpec err_spec;
      err_spec.meet = MeetKind::kIntersect;
      err_spec.transfer = [&](size_t block, Facts* facts) {
        const CfgBlock& blk = cfg.blocks[block];
        for (size_t j = blk.tok_begin; j + 1 < blk.tok_end; ++j) {
          if (IsIdent(toks[j]) && IsPunct(toks[j + 1], "=")) {
            facts->erase(ErrFact(toks[j].text));  // reassigned
          }
          if (IsIdent(toks[j]) && toks[j].text == "TB_ASSIGN_OR_RETURN" &&
              j + 2 < blk.tok_end && IsIdent(toks[j + 2])) {
            facts->erase(ErrFact(toks[j + 2].text));
          }
        }
      };
      err_spec.edge_transfer = [&](size_t from, const CfgEdge& e,
                                   Facts* facts) {
        const CfgBlock& blk = cfg.blocks[from];
        if (blk.kind != CfgBlockKind::kBranch &&
            blk.kind != CfgBlockKind::kLoop) {
          return;
        }
        std::string var;
        bool negated = false;
        if (!ParseOkCond(toks, blk.tok_begin, blk.tok_end, &var, &negated)) {
          return;
        }
        const bool err_edge = (e.kind == CfgEdgeKind::kTrue) == negated;
        if (e.kind != CfgEdgeKind::kTrue && e.kind != CfgEdgeKind::kFalse) {
          return;
        }
        if (err_edge) {
          facts->insert(ErrFact(var));
        } else {
          facts->erase(ErrFact(var));
        }
      };
      const DataflowResult err = SolveForward(cfg, err_spec);

      // ---- (a) uses of the would-be value where !v.ok() must hold.
      std::set<std::pair<std::string, size_t>> reported;  // (var, line)
      for (size_t b = 0; b < cfg.blocks.size(); ++b) {
        if (!err.reached[b]) continue;
        Facts facts = err.in[b];
        const CfgBlock& blk = cfg.blocks[b];
        for (size_t j = blk.tok_begin; j < blk.tok_end; ++j) {
          if (!IsIdent(toks[j])) continue;
          const std::string& v = toks[j].text;
          if (j + 1 < blk.tok_end && IsPunct(toks[j + 1], "=")) {
            facts.erase(ErrFact(v));
            continue;
          }
          if (facts.count(ErrFact(v)) == 0) continue;
          bool bad = false;
          if (j + 1 < blk.tok_end && IsPunct(toks[j + 1], "->")) bad = true;
          if (j + 3 < blk.tok_end && IsPunct(toks[j + 1], ".") &&
              IsIdent(toks[j + 2]) &&
              !IsAllowedErrorAccess(toks[j + 2].text) &&
              IsPunct(toks[j + 3], "(")) {
            bad = true;
          }
          if (j > blk.tok_begin && IsPunct(toks[j - 1], "*")) {
            const bool unary =
                j < blk.tok_begin + 2 ||
                !(IsIdent(toks[j - 2]) ||
                  toks[j - 2].kind == TokKind::kNumber ||
                  IsPunct(toks[j - 2], ")") || IsPunct(toks[j - 2], "]"));
            if (unary) bad = true;
          }
          if (bad && reported.emplace(v, toks[j].line).second) {
            Finding f;
            f.file = pf.src->path;
            f.line = toks[j].line;
            f.rule = "tabbench-error-path";
            f.message = "value of '" + v +
                        "' is used on a path where !" + v +
                        ".ok() must hold in " + unit.name;
            findings->push_back(std::move(f));
          }
        }
      }

      // ---- (b) journaled unit (protocol `begin`) open at an error exit.
      for (const ProtocolSpec::Protocol* proto : begin_protos) {
        const std::string fact = "began:" + proto->name;
        DataflowSpec open_spec;
        open_spec.meet = MeetKind::kUnion;
        open_spec.transfer = [&](size_t block, Facts* facts) {
          const CfgBlock& blk = cfg.blocks[block];
          for (const Call& c :
               CallsInRange(toks, blk.tok_begin, blk.tok_end)) {
            for (const ProtocolSpec::Op& op : proto->begin) {
              if (OpMatches(toks, c, op)) facts->insert(fact);
            }
            for (const ProtocolSpec::Op& op : proto->abort) {
              if (OpMatches(toks, c, op)) facts->erase(fact);
            }
            for (const ProtocolSpec::Op& op : proto->commit) {
              if (OpMatches(toks, c, op)) facts->erase(fact);
            }
          }
        };
        const DataflowResult open = SolveForward(cfg, open_spec);
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
          if (!open.reached[b] || open.out[b].count(fact) == 0) continue;
          const CfgBlock& blk = cfg.blocks[b];
          bool error_exit = false;
          for (const CfgEdge& e : blk.succ) {
            if (e.to == cfg.exit && e.kind == CfgEdgeKind::kErrorReturn) {
              error_exit = true;
            }
          }
          if (blk.kind == CfgBlockKind::kReturn && blk.error_return) {
            error_exit = true;
          }
          if (!error_exit) continue;
          Finding f;
          f.file = pf.src->path;
          f.line = blk.line;
          f.rule = "tabbench-error-path";
          f.message = "error path leaves the " + proto->name +
                      " journaled unit open (begin without abort record) "
                      "in " +
                      unit.name;
          findings->push_back(std::move(f));
        }
      }

      // ---- (c) blocking call on an error path can re-enter its retry
      // loop without a cancellation re-check.
      std::set<size_t> flagged;  // blocking-call token, dedup across loops
      for (size_t hb = 0; hb < cfg.blocks.size(); ++hb) {
        bool is_head = false;
        for (size_t b = 0; b < cfg.blocks.size(); ++b) {
          for (const CfgEdge& e : cfg.blocks[b].succ) {
            if (e.to == hb && (e.kind == CfgEdgeKind::kBack ||
                               e.kind == CfgEdgeKind::kContinue)) {
              is_head = true;
            }
          }
        }
        if (!is_head) continue;
        const std::set<size_t> body = LoopBody(cfg, hb);
        for (size_t b : body) {
          if (!err.reached[b] || err.in[b].empty()) continue;
          const CfgBlock& blk = cfg.blocks[b];
          for (const Call& c :
               CallsInRange(toks, blk.tok_begin, blk.tok_end)) {
            if (!IsBlockingName(c.name)) continue;
            if (flagged.count(c.tok) != 0) continue;
            // The variable receiving the call's status, if any:
            // `rv = [::]Blocking(...)`.
            std::string rv;
            size_t before = c.tok;
            if (before > blk.tok_begin &&
                IsPunct(toks[before - 1], "::")) {
              --before;
            }
            if (before >= blk.tok_begin + 2 &&
                IsPunct(toks[before - 1], "=") &&
                IsIdent(toks[before - 2])) {
              rv = toks[before - 2].text;
            }
            // A re-check later in the same statement counts.
            if (c.args_end < blk.tok_end &&
                RangeHasCancellationCheck(toks, c.args_end, blk.tok_end,
                                          rv)) {
              continue;
            }
            // BFS within the loop body; stop at blocks that re-check,
            // flag if the loop head is reachable without one.
            std::set<size_t> seen = {b};
            std::vector<size_t> stack;
            for (const CfgEdge& e : blk.succ) stack.push_back(e.to);
            bool violation = false;
            while (!stack.empty() && !violation) {
              size_t x = stack.back();
              stack.pop_back();
              if (x == hb) {
                violation = true;
                break;
              }
              if (body.count(x) == 0) continue;  // left the loop: fine
              if (seen.count(x) != 0) continue;
              seen.insert(x);
              const CfgBlock& xb = cfg.blocks[x];
              if (RangeHasCancellationCheck(toks, xb.tok_begin, xb.tok_end,
                                            rv)) {
                continue;  // re-check reached before re-iteration
              }
              for (const CfgEdge& e : xb.succ) stack.push_back(e.to);
            }
            if (violation && flagged.insert(c.tok).second) {
              Finding f;
              f.file = pf.src->path;
              f.line = c.line;
              f.rule = "tabbench-error-path";
              f.message =
                  "blocking call '" + c.name +
                  "' on an error path can re-enter its retry loop "
                  "without a cancellation re-check in " +
                  unit.name;
              findings->push_back(std::move(f));
            }
          }
        }
      }
    }
  }
}

}  // namespace tabbench_analyze
