#ifndef TABBENCH_TOOLS_ANALYZE_DATAFLOW_H_
#define TABBENCH_TOOLS_ANALYZE_DATAFLOW_H_

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "cfg.h"

/// A generic forward dataflow solver over the CFGs of cfg.h: gen/kill
/// transfer functions supplied as callbacks, facts as sets of interned
/// strings, fixpoint by round-robin over reverse postorder. Both meet
/// flavors are supported:
///
///   kUnion      — may-analysis ("a path exists on which the fact holds"):
///                 leaked-lock detection, begun-but-not-aborted protocol
///                 units.
///   kIntersect  — must-analysis ("the fact holds on every path"):
///                 append+fsync definitely happened before this
///                 externalization, variable definitely holds an error.
///
/// Transfers run per block; an optional edge transfer refines facts along
/// a specific edge kind (branch polarity, error-return edges), which is
/// what makes the client passes path-sensitive.
namespace tabbench_analyze {

enum class MeetKind { kUnion, kIntersect };

using Facts = std::set<std::string>;

struct DataflowSpec {
  MeetKind meet = MeetKind::kUnion;
  Facts entry_facts;
  /// Applies the block's gen/kill to *facts (facts arrive as the block's
  /// IN set). Required.
  std::function<void(size_t block, Facts* facts)> transfer;
  /// Refines the facts flowing along one edge (called with the source
  /// block's OUT set). Optional; identity when absent.
  std::function<void(size_t from, const CfgEdge& edge, Facts* facts)>
      edge_transfer;
};

struct DataflowResult {
  std::vector<Facts> in, out;
  /// Blocks never reached from the entry keep empty in/out and
  /// reached=false; clients must not report findings in them.
  std::vector<bool> reached;
};

DataflowResult SolveForward(const Cfg& cfg, const DataflowSpec& spec);

}  // namespace tabbench_analyze

#endif  // TABBENCH_TOOLS_ANALYZE_DATAFLOW_H_
