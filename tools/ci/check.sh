#!/usr/bin/env bash
# One-shot local CI gate: configure, build, test, lint — and, when a Clang
# toolchain is on PATH, prove the thread-safety annotations with
# -Werror=thread-safety. Run from anywhere inside the repo:
#
#   tools/ci/check.sh            # full gate
#   SKIP_BUILD=1 tools/ci/check.sh   # reuse an existing build/ tree
#
# Exit status is non-zero on the first failing stage.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${ROOT}/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"

step() { printf '\n==== %s ====\n' "$*"; }

# ---------------------------------------------------------------- build
if [[ -z "${SKIP_BUILD:-}" ]]; then
  step "configure (${BUILD_DIR})"
  cmake -B "${BUILD_DIR}" -S "${ROOT}"
  step "build (-j${JOBS})"
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
fi

# ---------------------------------------------------------------- tests
step "ctest"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# ----------------------------------------------------------------- chaos
# The chaos suite already ran above as part of the full ctest pass; run it
# again with an env-armed fault schedule so the TABBENCH_FAULTS parsing
# path is exercised end to end (the suite disarms programmatically, so the
# env schedule only needs to load cleanly and not break anything).
step "ctest -L chaos (TABBENCH_FAULTS armed)"
TABBENCH_FAULTS="storage.heap_scan=unavailable@prob:0.01:7" \
  ctest --test-dir "${BUILD_DIR}" -L chaos --output-on-failure -j "${JOBS}"

# Chaos under TSan: the fault registry, retry sleeps, and failure
# isolation all run on worker threads; prove them race-free. Works under
# both GCC and Clang (-fsanitize=thread).
step "ctest -L chaos under TABBENCH_SANITIZE=thread"
TSAN_DIR="${ROOT}/build-tsan-chaos"
cmake -B "${TSAN_DIR}" -S "${ROOT}" -DTABBENCH_SANITIZE=thread
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target tabbench_chaos_tests
ctest --test-dir "${TSAN_DIR}" -L chaos --output-on-failure -j "${JOBS}"

# The vectorized golden suite under TSan as well: its morsel workers hammer
# the scheduler's claim loop, the partitioned join merge, and the shared
# fragment buffers — the exact surfaces where a data race would corrupt the
# bit-identity contract without failing any single-threaded test.
step "ctest -L vectorized under TABBENCH_SANITIZE=thread"
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target tabbench_vec_tests
ctest --test-dir "${TSAN_DIR}" -L vectorized --output-on-failure -j "${JOBS}"

# The sharded serving suite under TSan: router dispatchers, shard health
# transitions, the watchdog force-cancel race, and the chaos kill/re-route
# path all cross threads; `-L shard` is the same suite the overload stage
# below leans on, so prove it race-free before trusting its numbers.
step "ctest -L shard under TABBENCH_SANITIZE=thread"
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target tabbench_shard_tests
ctest --test-dir "${TSAN_DIR}" -L shard --output-on-failure -j "${JOBS}"

# The mutation suite under TSan: B+-tree and heap mutations take the tree
# and stats locks from workload threads, and the online index-build side
# log is fed by writer threads while the build step drains it — the exact
# surfaces where a race would corrupt the serial ≡ parallel bit-identity
# contract. The fork/SIGKILL chaos children stay single-threaded, which is
# what TSan requires of forked children.
step "ctest -L mutation under TABBENCH_SANITIZE=thread"
cmake --build "${TSAN_DIR}" -j "${JOBS}" --target tabbench_mutation_tests
ctest --test-dir "${TSAN_DIR}" -L mutation --output-on-failure -j "${JOBS}"

# ------------------------------------------------------------- vectorized
# The morsel-driven vectorized engine: the golden suite proves simulated
# costs bit-identical to the Volcano executor (ctest -L vectorized also ran
# in the full pass above; -L scopes the re-run), then a small bench smoke
# produces a BENCH_*.json perf-trajectory artifact and the schema gate
# validates it — a malformed artifact fails here, not in a later diff.
step "ctest -L vectorized"
ctest --test-dir "${BUILD_DIR}" -L vectorized --output-on-failure -j "${JOBS}"

step "bench smoke: BENCH_parallel.json (emit + schema-check)"
TABBENCH_WORKLOAD=8 TABBENCH_WORKERS=2 \
  "${BUILD_DIR}/bench/bench_parallel" \
  --bench-json "${BUILD_DIR}/BENCH_parallel.json"
"${BUILD_DIR}/bench/bench_json_check" "${BUILD_DIR}/BENCH_parallel.json"
# The gate must also reject a duplicated benchmark name (the same artifact
# listed twice is the degenerate case) — otherwise trajectory plots keyed
# by name would silently average two runs.
if "${BUILD_DIR}/bench/bench_json_check" \
    "${BUILD_DIR}/BENCH_parallel.json" \
    "${BUILD_DIR}/BENCH_parallel.json" >/dev/null 2>&1; then
  echo "bench_json_check failed to reject a duplicate benchmark name"
  exit 1
fi
echo "BENCH artifact: ${BUILD_DIR}/BENCH_parallel.json"

# Write-path trajectory: the Section 4.4 insertion experiment emits
# BENCH_insertions.json (per-insert costs under P/R/1C plus the workload
# reruns drive queries_per_second). Validated alone and cross-file with
# BENCH_parallel.json so a name collision across artifacts fails here.
step "bench smoke: BENCH_insertions.json (emit + schema-check)"
TABBENCH_WORKLOAD=8 \
  "${BUILD_DIR}/bench/bench_insertions" \
  --bench-json "${BUILD_DIR}/BENCH_insertions.json"
"${BUILD_DIR}/bench/bench_json_check" "${BUILD_DIR}/BENCH_insertions.json"
"${BUILD_DIR}/bench/bench_json_check" \
  "${BUILD_DIR}/BENCH_parallel.json" \
  "${BUILD_DIR}/BENCH_insertions.json"
echo "BENCH artifact: ${BUILD_DIR}/BENCH_insertions.json"

# ------------------------------------------------------------- overload
# Open-loop overload smoke for the sharded serving layer: a short sweep
# (sized to stay under a minute) that still crosses saturation, emitting
# the BENCH_service_overload.json saturation record; then the same sweep
# in chaos mode, where the harness kills a shard mid-run and audits the
# router journal for the no-lost-admitted-job invariant. The schema gate
# validates the artifact both alone and cross-file with BENCH_parallel.json
# so a benchmark name collision across artifacts fails here, not in a
# later trajectory diff.
step "overload smoke: BENCH_service_overload.json (emit + schema-check)"
OV_DIR="$(mktemp -d)"   # the harness writes its router journal under cwd
( cd "${OV_DIR}" &&
  TABBENCH_LOAD_SHARDS=2 TABBENCH_LOAD_SHARD_WORKERS=2 \
  TABBENCH_LOAD_QPS=100 TABBENCH_LOAD_STEPS=3 TABBENCH_LOAD_ARRIVALS=60 \
    "${BUILD_DIR}/bench/bench_service_load" \
    --bench-json "${BUILD_DIR}/BENCH_service_overload.json" )
"${BUILD_DIR}/bench/bench_json_check" \
  "${BUILD_DIR}/BENCH_service_overload.json"
"${BUILD_DIR}/bench/bench_json_check" \
  "${BUILD_DIR}/BENCH_parallel.json" \
  "${BUILD_DIR}/BENCH_service_overload.json"

step "overload smoke: chaos mode (shard kill + journal audit)"
( cd "${OV_DIR}" &&
  TABBENCH_LOAD_SHARDS=2 TABBENCH_LOAD_SHARD_WORKERS=2 \
  TABBENCH_LOAD_QPS=100 TABBENCH_LOAD_STEPS=3 TABBENCH_LOAD_ARRIVALS=60 \
  TABBENCH_LOAD_CHAOS=1 \
    "${BUILD_DIR}/bench/bench_service_load" )
rm -rf "${OV_DIR}"
echo "BENCH artifact: ${BUILD_DIR}/BENCH_service_overload.json"

# ------------------------------------------------------------ kill-resume
# Crash-safety proof at the process level, via the CLI rather than gtest:
# a benchmark child is SIGKILLed mid-run by the TABBENCH_JOURNAL_CRASH_AFTER
# hook, resumed from its journal, and the healed journal must be
# byte-identical to one from an uninterrupted run.
step "kill-resume (SIGKILL mid-run, resume, byte-compare journals)"
KR_DIR="$(mktemp -d)"
trap 'rm -rf "${KR_DIR}"' EXIT
CLI="${BUILD_DIR}/examples/tabbench_cli"
set +e
TABBENCH_JOURNAL_CRASH_AFTER=5 \
  "${CLI}" bench nref nref2j "${KR_DIR}/killed.tbj" 800 p
KILL_STATUS=$?
set -e
if [[ ${KILL_STATUS} -ne 137 ]]; then
  echo "expected the child to die by SIGKILL (exit 137), got ${KILL_STATUS}"
  exit 1
fi
"${CLI}" resume "${KR_DIR}/killed.tbj"
"${CLI}" bench nref nref2j "${KR_DIR}/clean.tbj" 800 p
cmp "${KR_DIR}/killed.tbj" "${KR_DIR}/clean.tbj"
echo "resumed journal is byte-identical to the uninterrupted run"

# The same proof for the online index-build state machine: the mutation
# suite's transition walker SIGKILLs a forked child at every index-build
# journal transition (pending → … → live → dropping → dropped), resumes
# each torn journal, and byte-compares the healed journal and install-time
# index fingerprint against an uninterrupted run. Run it standalone so the
# crash-safety evidence lands in this log even when ctest sharding hides it.
step "mutation kill-resume smoke (SIGKILL at every build transition)"
"${BUILD_DIR}/tests/tabbench_mutation_tests" --gtest_brief=1 \
  --gtest_filter='MutationKillResumeTest.SigkillAtEveryBuildTransitionResumesExact'

# ----------------------------------------------------------------- lint
# ctest already ran lint_repo, but run the binary directly too so the
# human-readable findings (if any) land at the end of the log.
step "tabbench_lint"
"${BUILD_DIR}/tools/lint/tabbench_lint" --root "${ROOT}"

# --------------------------------------------------------------- analyze
# The cross-TU analyzer — layering, lock-order, Status-flow, nondeterminism
# taint, the concurrency-soundness passes (lockset inference,
# blocking-under-lock, cancellation-poll liveness), and the path-sensitive
# CFG passes (durability-protocol ordering vs tools/analyze/protocols.txt,
# release-on-all-paths, error-path soundness) — under the ratchet: any
# finding not in tools/analyze/baseline.json fails, and --strict-baseline
# also fails on stale entries, so the baseline can only shrink. The SARIF
# artifact is what a code-scanning UI ingests.
step "tabbench_analyze (ratchet vs tools/analyze/baseline.json)"
"${BUILD_DIR}/tools/analyze/tabbench_analyze" --root "${ROOT}" \
  --strict-baseline --sarif "${BUILD_DIR}/analyze.sarif"
echo "SARIF artifact: ${BUILD_DIR}/analyze.sarif"

# Analyzer perf trajectory: the full-tree run (all ten passes) must stay
# fast enough for the inner CI loop; BENCH_analyze.json goes through the
# same schema gate as the engine benches, alone and cross-file, so a name
# collision or malformed artifact fails here.
step "bench smoke: BENCH_analyze.json (emit + schema-check)"
"${BUILD_DIR}/bench/bench_analyze" --root "${ROOT}" --iters 2 \
  --bench-json "${BUILD_DIR}/BENCH_analyze.json"
"${BUILD_DIR}/bench/bench_json_check" "${BUILD_DIR}/BENCH_analyze.json"
"${BUILD_DIR}/bench/bench_json_check" \
  "${BUILD_DIR}/BENCH_parallel.json" \
  "${BUILD_DIR}/BENCH_analyze.json"
echo "BENCH artifact: ${BUILD_DIR}/BENCH_analyze.json"

# Fault-injection coverage: which layers carry TB_FAULT_POINT sites and
# which carry none — printed for review, then enforced as a ratchet: any
# layer recorded in tools/analyze/fault_layers.txt that drops below its
# floor of sites fails the gate, so chaos-test reach only grows.
step "tabbench_analyze --fault-coverage (ratchet vs fault_layers.txt)"
"${BUILD_DIR}/tools/analyze/tabbench_analyze" --root "${ROOT}" \
  --fault-coverage
"${BUILD_DIR}/tools/analyze/tabbench_analyze" --root "${ROOT}" \
  --check-fault-coverage "${ROOT}/tools/analyze/fault_layers.txt"

# ----------------------------------------------------------------- ubsan
# The util/journal layer does the repo's pointer-and-bit arithmetic (CRC32C
# tables, varint packing, Zipf sampling, journal framing); run those suites
# with every UB report turned into an abort (-fno-sanitize-recover=all).
step "util/journal suites under TABBENCH_SANITIZE=undefined"
UBSAN_DIR="${ROOT}/build-ubsan"
cmake -B "${UBSAN_DIR}" -S "${ROOT}" -DTABBENCH_SANITIZE=undefined
cmake --build "${UBSAN_DIR}" -j "${JOBS}" --target tabbench_tests
"${UBSAN_DIR}/tests/tabbench_tests" --gtest_brief=1 --gtest_filter=\
'Crc32cTest.*:CrcTrailerTest.*:JournalResumeTest.*:ReportIoTest.*'\
':ResultTest.*:RetryTest.*:RngTest.*:RunJournalTest.*:StatusTest.*'\
':StringsTest.*:ZipfTest.*'

# -------------------------------------------------- thread-safety proof
# The TB_GUARDED_BY/TB_REQUIRES annotations only carry weight under
# Clang's -Wthread-safety analysis; GCC compiles them away. Gate this
# stage on clang++ being available rather than failing on GCC-only boxes.
if command -v clang++ >/dev/null 2>&1; then
  step "clang -Werror=thread-safety build"
  TSA_DIR="${ROOT}/build-tsa"
  cmake -B "${TSA_DIR}" -S "${ROOT}" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_C_COMPILER=clang
  # The annotated surfaces: the service layer and the B-tree stats cache.
  cmake --build "${TSA_DIR}" -j "${JOBS}" \
    --target tb_service tb_storage
else
  step "clang++ not found — skipping -Wthread-safety build"
fi

step "all checks passed"
