// Quickstart: create a database, load rows, run a query, apply the paper's
// 1C baseline configuration, and compare estimated/actual costs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build --target quickstart
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/database.h"
#include "core/configurations.h"
#include "util/rng.h"

using namespace tabbench;

int main() {
  // 1. A database with default (unscaled) cost parameters.
  Database db;

  // 2. Schema: two tables with a PK/FK edge and shared semantic domains.
  TableDef authors;
  authors.name = "authors";
  authors.columns = {
      {"author_id", TypeId::kInt, "author", true, 8},
      {"name", TypeId::kString, "name", true, 16},
      {"country", TypeId::kString, "country", true, 12},
  };
  authors.primary_key = {"author_id"};

  TableDef papers;
  papers.name = "papers";
  papers.columns = {
      {"paper_id", TypeId::kInt, "paper", true, 8},
      {"author_id", TypeId::kInt, "author", true, 8},
      {"year", TypeId::kInt, "year", true, 8},
      {"venue", TypeId::kString, "venue", true, 14},
  };
  papers.primary_key = {"paper_id"};
  papers.foreign_keys = {{{"author_id"}, "authors", {"author_id"}}};

  for (const auto* t : {&authors, &papers}) {
    Status st = db.CreateTable(*t);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  // 3. Load synthetic rows.
  Rng rng(7);
  static const char* kCountries[] = {"CA", "US", "BR", "DE", "IN", "JP"};
  static const char* kVenues[] = {"SIGMOD", "VLDB", "ICDE", "EDBT"};
  for (int64_t i = 0; i < 2000; ++i) {
    (void)db.Insert("authors",
                    Tuple({Value(i), Value("author_" + std::to_string(i)),
                           Value(std::string(kCountries[rng.Uniform(6)]))}));
  }
  for (int64_t i = 0; i < 30000; ++i) {
    (void)db.Insert(
        "papers",
        Tuple({Value(i), Value(static_cast<int64_t>(rng.Uniform(2000))),
               Value(static_cast<int64_t>(1995 + rng.Uniform(10))),
               Value(std::string(kVenues[rng.Uniform(4)]))}));
  }

  // 4. FinishLoad collects statistics and builds the PK indexes (this is
  //    the paper's P configuration).
  Status st = db.FinishLoad();
  db.buffer_pool()->Clear();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // 5. Run a query on P: parse -> bind -> optimize -> execute. The filter
  //    is selective (one author of 2000), so indexing will matter.
  const std::string sql =
      "SELECT p.venue, COUNT(*) FROM papers p, authors a "
      "WHERE p.author_id = a.author_id AND a.name = 'author_1234' "
      "GROUP BY p.venue";
  auto plan = db.Plan(sql);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("plan on P:\n%s\n", plan->ToString().c_str());
  auto res = db.Run(sql);
  if (!res.ok()) return 1;
  std::printf("P: %zu result rows in %.3f simulated seconds (%llu pages)\n\n",
              res->rows.size(), res->sim_seconds,
              static_cast<unsigned long long>(res->pages_read));
  for (const auto& row : res->rows) {
    std::printf("  %s\n", row.ToString().c_str());
  }

  // 6. Apply the paper's 1C baseline: one single-column index on every
  //    indexable column.
  auto report = db.ApplyConfiguration(Make1CConfig(db.catalog()));
  if (!report.ok()) return 1;
  std::printf("\nbuilt 1C: %zu indexes, %llu pages, %.1f simulated seconds\n",
              report->objects.size(),
              static_cast<unsigned long long>(report->secondary_pages),
              report->build_seconds);

  db.buffer_pool()->Clear();  // cold start, like the P run
  auto plan1c = db.Plan(sql);
  auto res1c = db.Run(sql);
  if (!plan1c.ok() || !res1c.ok()) return 1;
  std::printf("\nplan on 1C:\n%s\n", plan1c->ToString().c_str());
  std::printf("1C: same %zu rows in %.3f simulated seconds — %.1fx faster\n",
              res1c->rows.size(), res1c->sim_seconds,
              res->sim_seconds / res1c->sim_seconds);
  return 0;
}
