// The Section 1.1 scenario end-to-end: a biologist explores the NREF
// protein database with ad-hoc queries (including the paper's Example 1),
// first on the default primary-key configuration and then on the 1C
// baseline, watching the response-time distribution change shape.

#include <cstdio>

#include "core/cfc.h"
#include "core/configurations.h"
#include "core/report.h"
#include "datagen/nref_gen.h"

using namespace tabbench;

int main() {
  NrefScaleOptions opts;
  opts.scale_inverse = 800.0;  // a lighter instance for the example
  auto dbr = GenerateNref(opts);
  if (!dbr.ok()) {
    std::fprintf(stderr, "%s\n", dbr.status().ToString().c_str());
    return 1;
  }
  auto db = dbr.TakeValue();
  std::printf("NREF loaded at 1/%.0f scale:\n", opts.scale_inverse);
  for (const auto& t : db->catalog().tables()) {
    std::printf("  %-16s %8llu rows\n", t.name.c_str(),
                static_cast<unsigned long long>(db->TableRowCount(t.name)));
  }

  // The paper's Example 1 (rewritten against synthetic names): protein
  // sequences per taxon lineage for one protein name.
  const ColumnStats* names = db->stats().FindColumn("source", "p_name");
  std::string some_name = names->mcvs.front().first.as_string();
  std::string example1 =
      "SELECT t.lineage, COUNT(DISTINCT t2.nref_id) "
      "FROM source s, taxonomy t, taxonomy t2 "
      "WHERE t.nref_id = s.nref_id AND t.lineage = t2.lineage "
      "AND s.p_name = '" + some_name + "' GROUP BY t.lineage";

  // A small exploratory session: Example 1 plus variations.
  std::vector<std::string> session = {example1};
  const ColumnStats* lineages = db->stats().FindColumn("taxonomy", "lineage");
  for (size_t i = 0; i < 4 && i < lineages->mcvs.size(); ++i) {
    session.push_back(
        "SELECT o.name, COUNT(*) FROM taxonomy t, organism o "
        "WHERE t.taxon_id = o.taxon_id AND t.lineage = " +
        lineages->mcvs[i].first.ToString() + " GROUP BY o.name");
  }
  session.push_back(
      "SELECT n.taxon_id_2, COUNT(*) FROM neighboring_seq n, taxonomy t "
      "WHERE n.taxon_id_2 = t.taxon_id AND t.lineage = " +
      lineages->mcvs[0].first.ToString() + " GROUP BY n.taxon_id_2");

  auto run_session = [&](const char* label) {
    std::vector<QueryTiming> timings;
    std::printf("\n-- session on %s --\n", label);
    for (size_t i = 0; i < session.size(); ++i) {
      auto res = db->Run(session[i]);
      if (!res.ok()) {
        std::fprintf(stderr, "query %zu failed: %s\n", i,
                     res.status().ToString().c_str());
        continue;
      }
      timings.push_back(QueryTiming{res->sim_seconds, res->timed_out});
      std::printf("  q%zu: %4zu rows, %10.2fs%s\n", i, res->rows.size(),
                  res->sim_seconds, res->timed_out ? "  ** timeout **" : "");
    }
    return CumulativeFrequency::FromTimings(timings);
  };

  auto cfc_p = run_session("P (primary keys only)");
  auto rep = db->ApplyConfiguration(Make1CConfig(db->catalog()));
  if (!rep.ok()) {
    std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
    return 1;
  }
  std::printf("\nbuilt 1C in %.0f simulated seconds (%llu pages)\n",
              rep->build_seconds,
              static_cast<unsigned long long>(rep->secondary_pages));
  auto cfc_1c = run_session("1C (every indexable column)");

  std::printf("\n%s", RenderCfcComparison({{"P", cfc_p}, {"1C", cfc_1c}}, {},
                                          "-- the biologist's experience --")
                          .c_str());
  std::printf("%s",
              cfc_1c.Dominates(cfc_p)
                  ? "1C first-order stochastically dominates P: the curve "
                    "bends toward the satisfied top-left corner.\n"
                  : "no clean dominance on this tiny session.\n");
  return 0;
}
