// Runs all three modeled recommender profiles (Systems A, B, C) against the
// same NREF2J workload and compares their recommendations — candidate
// counts, picked structures, estimated improvement — and the actual CFC of
// each recommended configuration against the P and 1C anchors.

#include <cstdio>

#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/report.h"
#include "datagen/nref_gen.h"

using namespace tabbench;

int main() {
  NrefScaleOptions opts;
  opts.scale_inverse = 800.0;
  auto dbr = GenerateNref(opts);
  if (!dbr.ok()) return 1;
  auto db = dbr.TakeValue();

  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = 40;
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;
  std::printf("workload: %zu queries sampled from %zu (budget %.0f pages)\n",
              exp.workload().queries.size(), exp.family_size(),
              exp.SpaceBudgetPages());

  std::vector<NamedCurve> curves;
  {
    auto p = exp.RunOn(MakePConfig());
    if (!p.ok()) return 1;
    curves.push_back({"P", p->result.Cfc()});
  }

  for (const char* sys : {"A", "B", "C"}) {
    AdvisorOptions profile = ProfileByName(sys);
    auto rec = exp.Recommend(profile);
    if (!rec.ok()) {
      std::printf("\nsystem %s: DECLINED (%s)\n", sys,
                  rec.status().message().c_str());
      continue;
    }
    std::printf("\nsystem %s: %zu candidates considered, picked %zu indexes"
                " + %zu views (est. %0.fs -> %.0fs, %.0f pages)\n",
                sys, rec->candidates_considered, rec->config.indexes.size(),
                rec->config.views.size(), rec->est_cost_before,
                rec->est_cost_after, rec->est_pages);
    for (const auto& idx : rec->config.indexes) {
      std::printf("    index %-40s on %s\n", idx.name.c_str(),
                  idx.target.c_str());
    }
    for (const auto& v : rec->config.views) {
      std::printf("    view  %s (%zu tables, %zu columns)\n", v.name.c_str(),
                  v.tables.size(), v.projection.size());
    }
    Configuration config = rec->config;
    config.name = std::string("R") + sys;
    auto run = exp.RunOn(config);
    if (!run.ok()) return 1;
    std::printf("    actual: %zu timeouts, clamped total %.0fs\n",
                run->result.timeouts, run->result.total_clamped_seconds);
    curves.push_back({config.name, run->result.Cfc()});
  }

  {
    auto one_c = exp.RunOn(Make1CConfig(db->catalog()));
    if (!one_c.ok()) return 1;
    curves.push_back({"1C", one_c->result.Cfc()});
  }

  std::printf("\n%s", RenderCfcComparison(curves, {},
                                          "-- recommenders vs the 1C baseline "
                                          "(NREF2J) --")
                          .c_str());
  std::printf("\nthe paper's point, in one table: every recommender should "
              "be compared against 1C,\nnot only against P — beating P is "
              "easy, matching 1C is not.\n");
  return 0;
}
