// Uses the paper's quality-of-service formulation (Section 2.2, Example 2):
// a performance goal is a step function G over elapsed times, and a
// configuration satisfies it iff its cumulative frequency curve lies above
// G. This example iterates configurations of increasing strength until the
// goal is met — the tuning loop the paper argues recommenders should offer.

#include <cstdio>

#include "core/benchmark_suite.h"
#include "core/goal.h"
#include "core/nref_families.h"
#include "core/report.h"
#include "datagen/nref_gen.h"
#include "advisor/profiles.h"

using namespace tabbench;

int main() {
  NrefScaleOptions opts;
  opts.scale_inverse = 800.0;
  auto dbr = GenerateNref(opts);
  if (!dbr.ok()) return 1;
  auto db = dbr.TakeValue();

  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = 30;
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;

  PerformanceGoal goal = PerformanceGoal::PaperExample2();
  std::printf("goal G: %s\n", goal.ToString().c_str());
  std::printf("workload: %zu NREF3J queries\n\n",
              exp.workload().queries.size());

  // The tuning ladder: P, then the (System B) recommendation, then 1C.
  struct Step {
    std::string name;
    Configuration config;
  };
  std::vector<Step> ladder;
  ladder.push_back({"P", MakePConfig()});
  auto rec = exp.Recommend(SystemBProfile());
  if (rec.ok()) {
    Configuration r = rec->config;
    r.name = "R";
    ladder.push_back({"R (System B)", r});
  }
  ladder.push_back({"1C", Make1CConfig(db->catalog())});

  std::vector<NamedCurve> curves;
  bool satisfied = false;
  for (const auto& step : ladder) {
    auto run = exp.RunOn(step.config);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    auto cfc = run->result.Cfc();
    double shortfall = goal.Shortfall(cfc);
    std::printf("%-14s timeouts=%2zu  shortfall=%5.1f%%  -> %s\n",
                step.name.c_str(), run->result.timeouts, shortfall * 100.0,
                goal.SatisfiedBy(cfc) ? "GOAL SATISFIED" : "keep tuning");
    curves.push_back({step.config.name, cfc});
    if (goal.SatisfiedBy(cfc)) {
      satisfied = true;
      break;
    }
  }

  std::printf("\n%s", RenderGoalCheck(goal, curves).c_str());
  std::printf("%s", RenderCfcComparison(curves, {}, "-- the tuning ladder --")
                        .c_str());
  if (!satisfied) {
    std::printf("\nno configuration on the ladder met the goal — the "
                "benchmark leaves the gap open (the paper: 'there is the "
                "potential for achieving improvements of several orders of "
                "magnitude compared to current tools').\n");
  }
  return 0;
}
