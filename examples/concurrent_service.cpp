// The WorkloadService in action: sessions with private warm caches,
// per-job deadlines folded into the paper's 30-minute timeout, cooperative
// cancellation, and admission control — all against one shared read-only
// Database. See src/service/ and README.md ("Concurrent execution").

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/nref_gen.h"
#include "service/workload_service.h"

int main() {
  using namespace tabbench;

  NrefScaleOptions gen;
  gen.scale_inverse = 4000.0;        // tiny demo database
  gen.hardware_scale_inverse = 400.0;  // benchmark-calibrated cost params
  auto dbr = GenerateNref(gen);
  if (!dbr.ok()) {
    std::printf("generate failed: %s\n", dbr.status().ToString().c_str());
    return 1;
  }
  auto db = dbr.TakeValue();

  ServiceOptions opts;
  opts.workers = 4;
  opts.max_in_flight = 16;
  WorkloadService service(db.get(), opts);

  const std::string scan =
      "SELECT t.lineage, COUNT(*) FROM protein p, taxonomy t "
      "WHERE p.nref_id = t.nref_id GROUP BY t.lineage";

  // 1. A session keeps a private buffer-pool view: the second run of the
  //    same query hits the session's warm cache.
  SessionId session = service.OpenSession();
  JobOptions on_session;
  on_session.session = session;
  auto cold = service.SubmitQuery(scan, on_session).get();
  auto warm = service.SubmitQuery(scan, on_session).get();
  if (!cold.ok() || !warm.ok()) {
    std::printf("session runs failed\n");
    return 1;
  }
  std::printf("session warm-up: cold %.2f sim-s -> warm %.2f sim-s\n",
              cold->sim_seconds, warm->sim_seconds);

  // 2. A per-job deadline (simulated seconds) trips as a timed-out result,
  //    the paper's t_out convention — not an error.
  JobOptions tight;
  tight.deadline_seconds = cold->sim_seconds / 2.0;
  auto deadline = service.SubmitQuery(scan, tight).get();
  if (deadline.ok() && deadline->timed_out) {
    std::printf("deadline %.2f sim-s: query reported timed-out at the "
                "limit (%.2f sim-s)\n",
                tight.deadline_seconds, deadline->sim_seconds);
  }

  // 3. Cooperative cancellation through the executor's safe points.
  JobOptions doomed;
  doomed.cancel.RequestCancel();
  auto cancelled = service.SubmitQuery(scan, doomed).get();
  std::printf("cancelled job resolved with: %s\n",
              cancelled.status().ToString().c_str());

  // 4. A whole workload as one job: queries run back-to-back on one
  //    session, like the sequential benchmark runner.
  std::vector<std::string> workload(4, scan);
  auto batch = service.SubmitWorkload(workload).get();
  if (batch.ok()) {
    std::printf("workload of %zu queries:", batch->size());
    for (const auto& r : *batch) std::printf(" %.2f", r.sim_seconds);
    std::printf(" sim-s (note the warm-cache decay)\n");
  }

  auto clock = service.SessionClock(session);
  ServiceStats stats = service.stats();
  std::printf("session clock: %.2f sim-s | jobs: %llu submitted, "
              "%llu completed, %llu rejected, %llu cancelled, "
              "%llu query timeouts\n",
              clock.ok() ? *clock : 0.0,
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.cancelled),
              static_cast<unsigned long long>(stats.query_timeouts));

  (void)service.CloseSession(session);
  service.Shutdown();
  return 0;
}
