// An interactive (or piped) SQL shell over the tabbench engine: generate a
// benchmark database, run ad-hoc queries with simulated timings, inspect
// plans, switch physical configurations, and invoke the recommenders.
//
//   $ ./build/examples/tabbench_cli
//   tabbench> \gen nref 800
//   tabbench> SELECT COUNT(*) FROM protein p WHERE p.length = 124
//   tabbench> \explain SELECT ...
//   tabbench> \config 1c
//   tabbench> \advise B nref3j
//   tabbench> \quit
//
// Meta-commands: \gen <nref|skth|unth> [scale]   generate + load a database
//                \tables                         list tables and sizes
//                \config <p|1c>                  apply a configuration
//                \advise <A|B|C> <family>        run a recommender profile
//                \explain <sql>                  show the chosen plan
//                \goal                           Example-2 goal check of the
//                                                last \advise workload
//                \help, \quit
//
// Batch modes (argv instead of the shell):
//
//   $ tabbench bench <nref|skth|unth> <family> <journal> [scale] [p|1c]
//   $ tabbench resume <journal>
//
// `bench` runs a workload with a durable run journal (util/run_journal.h):
// every completed query is fsync'd before the next starts. If the process
// dies — crash, OOM kill, power loss — `resume` rebuilds the database from
// the journal's own metadata, replays the completed prefix bit for bit, and
// finishes the remaining queries, producing the same result an
// uninterrupted run would have.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/tpch_families.h"
#include "datagen/nref_gen.h"
#include "core/runner.h"
#include "core/workload_io.h"
#include "datagen/tpch_gen.h"
#include "util/run_journal.h"
#include "util/strings.h"

using namespace tabbench;

namespace {

/// Builds one of the three paper databases at 1/`scale`.
Result<std::unique_ptr<Database>> BuildDatabase(const std::string& kind,
                                                double scale) {
  if (kind == "nref") {
    NrefScaleOptions opts;
    opts.scale_inverse = scale;
    return GenerateNref(opts);
  }
  if (kind == "skth" || kind == "unth") {
    TpchScaleOptions opts;
    opts.scale_inverse = scale;
    opts.zipf_theta = (kind == "skth") ? 1.0 : 0.0;
    return GenerateTpch(opts);
  }
  return Status::InvalidArgument("unknown database '" + kind +
                                 "' (nref | skth | unth)");
}

QueryFamily FamilyByName(Database* db, const std::string& db_kind,
                         const std::string& name) {
  if (name == "nref2j") return GenerateNref2J(db->catalog(), db->stats());
  if (name == "nref3j") return GenerateNref3J(db->catalog(), db->stats());
  if (name == "3js") return GenerateTpch3Js(db->catalog(), db->stats());
  if (name == "3j") {
    return GenerateTpch3J(db->catalog(), db->stats(),
                          db_kind == "unth" ? "UnTH3J" : "SkTH3J");
  }
  return QueryFamily{};
}

struct Shell {
  std::unique_ptr<Database> db;
  std::string db_kind;

  bool Ready() const {
    if (db == nullptr) {
      std::printf("no database loaded; try: \\gen nref\n");
      return false;
    }
    return true;
  }

  void Generate(const std::string& kind, double scale) {
    auto r = BuildDatabase(kind, scale);
    if (!r.ok()) {
      std::printf("error: %s\n", r.status().ToString().c_str());
      return;
    }
    db = r.TakeValue();
    db_kind = kind;
    std::printf("loaded %s at 1/%.0f scale (config P):\n", kind.c_str(),
                scale);
    Tables();
  }

  void Tables() {
    if (!Ready()) return;
    for (const auto& t : db->catalog().tables()) {
      const TableStats* ts = db->stats().FindTable(t.name);
      std::printf("  %-18s %9llu rows %7llu pages\n", t.name.c_str(),
                  static_cast<unsigned long long>(db->TableRowCount(t.name)),
                  static_cast<unsigned long long>(ts ? ts->pages : 0));
    }
    std::printf("  configuration: %s (%llu secondary pages)\n",
                db->current_config().name.c_str(),
                static_cast<unsigned long long>(db->SecondaryPages()));
  }

  void Config(const std::string& which) {
    if (!Ready()) return;
    if (which == "p") {
      (void)db->ResetToPrimary();
      std::printf("configuration P (primary keys only)\n");
      return;
    }
    if (which == "1c") {
      auto rep = db->ApplyConfiguration(Make1CConfig(db->catalog()));
      if (!rep.ok()) {
        std::printf("error: %s\n", rep.status().ToString().c_str());
        return;
      }
      std::printf("built 1C: %zu indexes, %llu pages, %s simulated\n",
                  rep->objects.size(),
                  static_cast<unsigned long long>(rep->secondary_pages),
                  HumanSeconds(rep->build_seconds).c_str());
      return;
    }
    std::printf("unknown configuration '%s' (p | 1c)\n", which.c_str());
  }

  void Advise(const std::string& system, const std::string& family_name) {
    if (!Ready()) return;
    QueryFamily family = FamilyByName(db.get(), db_kind, family_name);
    if (family.queries.empty()) {
      std::printf("unknown/empty family '%s' "
                  "(nref2j | nref3j | 3j | 3js)\n",
                  family_name.c_str());
      return;
    }
    ExperimentOptions eopts;
    eopts.workload_size = 50;
    FamilyExperiment exp(db.get(), std::move(family), eopts);
    if (!exp.Prepare().ok()) return;
    auto rec = exp.Recommend(ProfileByName(system));
    if (!rec.ok()) {
      std::printf("system %s declined: %s\n", system.c_str(),
                  rec.status().message().c_str());
      return;
    }
    std::printf("system %s recommends %zu indexes, %zu views "
                "(est. %.0fs -> %.0fs, %.0f of %.0f budget pages):\n",
                system.c_str(), rec->config.indexes.size(),
                rec->config.views.size(), rec->est_cost_before,
                rec->est_cost_after, rec->est_pages, exp.SpaceBudgetPages());
    for (const auto& idx : rec->config.indexes) {
      std::printf("  CREATE INDEX %s ON %s(%s)\n", idx.name.c_str(),
                  idx.target.c_str(), StrJoin(idx.columns, ", ").c_str());
    }
    for (const auto& v : rec->config.views) {
      std::printf("  CREATE MATERIALIZED VIEW %s  -- %zu tables, %zu cols\n",
                  v.name.c_str(), v.tables.size(), v.projection.size());
    }
    auto rep = db->ApplyConfiguration(rec->config);
    if (rep.ok()) {
      std::printf("applied (build %s, %llu pages). \\config p to undo.\n",
                  HumanSeconds(rep->build_seconds).c_str(),
                  static_cast<unsigned long long>(rep->secondary_pages));
    }
  }

  void SaveWorkload(const std::string& family_name,
                    const std::string& path) {
    if (!Ready()) return;
    QueryFamily family = FamilyByName(db.get(), db_kind, family_name);
    if (family.queries.empty()) {
      std::printf("unknown/empty family '%s'\n", family_name.c_str());
      return;
    }
    Status st = SaveFamily(family, path);
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("wrote %zu queries of %s to %s\n", family.queries.size(),
                family.name.c_str(), path.c_str());
  }

  void Analyze(const std::string& sql) {
    if (!Ready()) return;
    auto run = db->RunAnalyze(sql);
    if (!run.ok()) {
      std::printf("error: %s\n", run.status().ToString().c_str());
      return;
    }
    std::printf("%s", run->plan.ToString().c_str());
    std::printf("%zu row(s) in %s simulated%s\n", run->result.rows.size(),
                HumanSeconds(run->result.sim_seconds).c_str(),
                run->result.timed_out ? " ** timeout **" : "");
  }

  void Explain(const std::string& sql) {
    if (!Ready()) return;
    auto plan = db->Plan(sql);
    if (!plan.ok()) {
      std::printf("error: %s\n", plan.status().ToString().c_str());
      return;
    }
    std::printf("%s", plan->ToString().c_str());
  }

  void Run(const std::string& sql) {
    if (!Ready()) return;
    auto res = db->Run(sql);
    if (!res.ok()) {
      std::printf("error: %s\n", res.status().ToString().c_str());
      return;
    }
    if (res->timed_out) {
      std::printf("** timeout after %s simulated **\n",
                  HumanSeconds(res->sim_seconds).c_str());
      return;
    }
    size_t shown = 0;
    for (const auto& row : res->rows) {
      if (shown++ >= 20) {
        std::printf("  ... (%zu more rows)\n", res->rows.size() - 20);
        break;
      }
      std::printf("  %s\n", row.ToString().c_str());
    }
    std::printf("%zu row(s) in %s simulated (%llu pages, %llu tuples)\n",
                res->rows.size(), HumanSeconds(res->sim_seconds).c_str(),
                static_cast<unsigned long long>(res->pages_read),
                static_cast<unsigned long long>(res->tuples_processed));
  }

  void Help() {
    std::printf(
        "  \\gen <nref|skth|unth> [scale]   generate + load (default 800)\n"
        "  \\tables                         tables, sizes, configuration\n"
        "  \\config <p|1c>                  switch configuration\n"
        "  \\advise <A|B|C> <family>        recommend + apply "
        "(families: nref2j nref3j 3j 3js)\n"
        "  \\explain <sql>                  show the plan\n"
        "  \\analyze <sql>                  run + estimated vs actual rows\n"
        "  \\save <family> <path>           dump a query family to a file\n"
        "  \\help  \\quit\n"
        "  anything else is run as SQL\n");
  }
};

/// Shared tail of bench/resume: run (or continue) the journaled workload
/// and print the outcome.
int RunJournaled(Database* db, const std::vector<std::string>& sql,
                 const RunOptions& opts) {
  auto res = RunWorkload(db, sql, opts);
  if (!res.ok()) {
    std::fprintf(stderr, "error: %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("done: %zu queries, %s simulated total, %zu timeouts, "
              "%zu failures, %zu retries\n",
              res->timings.size(),
              HumanSeconds(res->total_clamped_seconds).c_str(),
              res->timeouts, res->failures, res->retries);
  std::printf("journal: %s (resume with: tabbench resume %s)\n",
              opts.journal_path.c_str(), opts.journal_path.c_str());
  return 0;
}

/// `tabbench bench <nref|skth|unth> <family> <journal> [scale] [p|1c]`:
/// a crash-safe workload run. The journal's metadata records everything
/// `resume` needs to rebuild the database, so the journal file alone is the
/// checkpoint.
int RunBench(const std::string& kind, const std::string& family_name,
             const std::string& journal, double scale,
             const std::string& config) {
  auto built = BuildDatabase(kind, scale);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = built.TakeValue();
  if (config == "1c") {
    auto rep = db->ApplyConfiguration(Make1CConfig(db->catalog()));
    if (!rep.ok()) {
      std::fprintf(stderr, "error: %s\n", rep.status().ToString().c_str());
      return 1;
    }
  } else if (config != "p") {
    std::fprintf(stderr, "unknown configuration '%s' (p | 1c)\n",
                 config.c_str());
    return 1;
  }
  QueryFamily family = FamilyByName(db.get(), kind, family_name);
  if (family.queries.empty()) {
    std::fprintf(stderr, "unknown/empty family '%s' "
                 "(nref2j | nref3j | 3j | 3js)\n", family_name.c_str());
    return 1;
  }
  RunOptions opts = ResumeFrom(journal);  // picks up a prior partial run
  opts.journal_metadata["db"] = kind;
  opts.journal_metadata["scale"] = StrFormat("%.0f", scale);
  opts.journal_metadata["config"] = config;
  opts.journal_metadata["family"] = family_name;
  std::printf("running %s (%zu queries) on %s 1/%.0f config %s, journal %s\n",
              family.name.c_str(), family.queries.size(), kind.c_str(),
              scale, config.c_str(), journal.c_str());
  return RunJournaled(db.get(), family.Sql(), opts);
}

/// `tabbench resume <journal>`: finish an interrupted `bench` run from
/// nothing but the journal file. The header's metadata rebuilds the
/// database and configuration; the completed prefix is replayed bit for
/// bit; the remaining queries run live.
int RunResume(const std::string& journal) {
  auto loaded = LoadRunJournal(journal);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const JournalHeader& h = loaded->header;
  auto meta = [&](const char* key) -> std::string {
    auto it = h.metadata.find(key);
    return it == h.metadata.end() ? std::string() : it->second;
  };
  const std::string kind = meta("db");
  const std::string config = meta("config").empty() ? "p" : meta("config");
  if (kind.empty()) {
    std::fprintf(stderr,
                 "journal %s carries no 'db' metadata — it was not written "
                 "by `tabbench bench`, so the database cannot be rebuilt "
                 "from it. Re-run the original producer with resume "
                 "enabled instead.\n",
                 journal.c_str());
    return 1;
  }
  double scale = meta("scale").empty() ? 800.0 : std::atof(meta("scale").c_str());
  std::printf("resuming %s: %zu of %u queries already journaled "
              "(db=%s scale=1/%.0f config=%s)\n",
              journal.c_str(), loaded->records.size(), h.query_count,
              kind.c_str(), scale, config.c_str());
  auto built = BuildDatabase(kind, scale);
  if (!built.ok()) {
    std::fprintf(stderr, "error: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = built.TakeValue();
  if (config == "1c") {
    auto rep = db->ApplyConfiguration(Make1CConfig(db->catalog()));
    if (!rep.ok()) {
      std::fprintf(stderr, "error: %s\n", rep.status().ToString().c_str());
      return 1;
    }
  }
  // Mirror the recorded run options exactly — the journal refuses to
  // resume under different ones.
  RunOptions opts = ResumeFrom(journal);
  opts.repetitions = h.repetitions;
  opts.collect_estimates = h.collect_estimates;
  opts.cold_start = h.cold_start;
  opts.fault_scope_salt = h.fault_scope_salt;
  opts.retry = h.retry;
  return RunJournaled(db.get(), h.sql, opts);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const std::string mode = argv[1];
    if (mode == "resume" && argc == 3) return RunResume(argv[2]);
    if (mode == "bench" && (argc == 5 || argc == 6 || argc == 7)) {
      double scale = argc >= 6 ? std::atof(argv[5]) : 800.0;
      if (scale < 50) scale = 800.0;
      return RunBench(argv[2], argv[3], argv[4], scale,
                      argc >= 7 ? argv[6] : "p");
    }
    std::fprintf(stderr,
                 "usage: %s                                   "
                 "interactive shell\n"
                 "       %s bench <nref|skth|unth> <family> <journal> "
                 "[scale] [p|1c]\n"
                 "       %s resume <journal>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
  }
  Shell shell;
  std::printf("tabbench shell — \\help for commands\n");
  std::string line;
  while (true) {
    std::printf("tabbench> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string word;
    in >> word;
    if (word.empty()) continue;
    if (word == "\\quit" || word == "\\q") break;
    if (word == "\\help") {
      shell.Help();
    } else if (word == "\\gen") {
      std::string kind;
      double scale = 800.0;
      in >> kind >> scale;
      if (scale < 50) scale = 800.0;
      shell.Generate(kind, scale);
    } else if (word == "\\tables") {
      shell.Tables();
    } else if (word == "\\config") {
      std::string which;
      in >> which;
      shell.Config(which);
    } else if (word == "\\advise") {
      std::string system, family;
      in >> system >> family;
      shell.Advise(system, family);
    } else if (word == "\\save") {
      std::string family, path;
      in >> family >> path;
      shell.SaveWorkload(family, path);
    } else if (word == "\\analyze") {
      std::string rest;
      std::getline(in, rest);
      shell.Analyze(rest);
    } else if (word == "\\explain") {
      std::string rest;
      std::getline(in, rest);
      shell.Explain(rest);
    } else if (word[0] == '\\') {
      std::printf("unknown command %s (\\help)\n", word.c_str());
    } else {
      shell.Run(line);
    }
  }
  return 0;
}
