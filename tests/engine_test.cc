#include <gtest/gtest.h>

#include "core/configurations.h"
#include "engine/database.h"
#include "test_util.h"

namespace tabbench {
namespace {

using testing::TinyDb;

TEST(EngineTest, CreateTableValidations) {
  Database db;
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d", true, 8}};
  t.primary_key = {"a"};
  ASSERT_TRUE(db.CreateTable(t).ok());
  EXPECT_EQ(db.CreateTable(t).code(), Status::Code::kAlreadyExists);
}

TEST(EngineTest, InsertArityChecked) {
  Database db;
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d", true, 8},
               {"b", TypeId::kInt, "d", true, 8}};
  t.primary_key = {"a"};
  ASSERT_TRUE(db.CreateTable(t).ok());
  EXPECT_FALSE(db.Insert("t", Tuple(std::vector<Value>{Value(int64_t{1})})).ok());
  EXPECT_TRUE(db.Insert("t", Tuple(std::vector<Value>{Value(int64_t{1}),
                                                    Value(int64_t{2})}))
                  .ok());
  EXPECT_TRUE(db.Insert("missing", Tuple()).IsNotFound());
}

TEST(EngineTest, BufferStatsExposeSharedPoolAccounting) {
  TinyDb tiny = TinyDb::Make(500, 10);
  Database* db = tiny.db.get();
  db->buffer_pool()->Clear();
  BufferPoolStats cold = db->buffer_stats();
  EXPECT_EQ(cold.accesses(), 0u);
  EXPECT_EQ(cold.resident, 0u);
  EXPECT_EQ(cold.capacity, db->options().buffer_pool_pages);

  ASSERT_TRUE(db->Run("SELECT p.city, COUNT(*) FROM people p "
                      "GROUP BY p.city").ok());
  BufferPoolStats after_cold = db->buffer_stats();
  EXPECT_GT(after_cold.misses, 0u);

  // A second, warm run only adds hits.
  ASSERT_TRUE(db->Run("SELECT p.city, COUNT(*) FROM people p "
                      "GROUP BY p.city").ok());
  BufferPoolStats after_warm = db->buffer_stats();
  EXPECT_EQ(after_warm.misses, after_cold.misses);
  EXPECT_GT(after_warm.hits, after_cold.hits);
  EXPECT_GT(after_warm.HitRatio(), after_cold.HitRatio());

  // Clear() starts a new accounting epoch (cold-start runs are comparable).
  db->buffer_pool()->Clear();
  EXPECT_EQ(db->buffer_stats().accesses(), 0u);
}

TEST(EngineTest, RunBeforeFinishLoadFails) {
  Database db;
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d", true, 8}};
  t.primary_key = {"a"};
  ASSERT_TRUE(db.CreateTable(t).ok());
  EXPECT_FALSE(db.Run("SELECT a FROM t").ok());
}

TEST(EngineTest, FinishLoadBuildsPkIndexes) {
  TinyDb tiny = TinyDb::Make(500, 10);
  ConfigView v = tiny.db->CurrentView();
  int pk_count = 0;
  for (const auto& idx : v.indexes) {
    if (idx.def.is_primary) ++pk_count;
  }
  EXPECT_EQ(pk_count, 2);  // people_pk + depts_pk
  EXPECT_NE(tiny.db->FindIndex("people_pk"), nullptr);
}

TEST(EngineTest, ApplyAndResetConfiguration) {
  TinyDb tiny = TinyDb::Make(2000, 20);
  Database* db = tiny.db.get();
  uint64_t base = db->BasePages();
  EXPECT_EQ(db->SecondaryPages(), 0u);

  Configuration one_c = Make1CConfig(db->catalog());
  auto rep = db->ApplyConfiguration(one_c);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  EXPECT_EQ(rep->objects.size(), one_c.indexes.size());
  EXPECT_GT(rep->secondary_pages, 0u);
  EXPECT_GT(rep->build_seconds, 0.0);
  EXPECT_EQ(db->SecondaryPages(), rep->secondary_pages);
  EXPECT_EQ(db->BasePages(), base);
  EXPECT_EQ(db->current_config().name, "1C");

  ASSERT_TRUE(db->ResetToPrimary().ok());
  EXPECT_EQ(db->SecondaryPages(), 0u);
  EXPECT_EQ(db->current_config().name, "P");
}

TEST(EngineTest, ReapplyReplacesPreviousConfiguration) {
  TinyDb tiny = TinyDb::Make(1000, 10);
  Database* db = tiny.db.get();
  Configuration a;
  a.name = "A";
  a.indexes.push_back({"ix_a", "people", {"dept"}, false});
  Configuration b;
  b.name = "B";
  b.indexes.push_back({"ix_b", "people", {"city"}, false});
  ASSERT_TRUE(db->ApplyConfiguration(a).ok());
  uint64_t pages_a = db->SecondaryPages();
  ASSERT_TRUE(db->ApplyConfiguration(b).ok());
  EXPECT_EQ(db->FindIndex("ix_a"), nullptr);
  EXPECT_NE(db->FindIndex("ix_b"), nullptr);
  EXPECT_NEAR(static_cast<double>(db->SecondaryPages()),
              static_cast<double>(pages_a), pages_a * 0.9 + 4);
}

TEST(EngineTest, ApplyUnknownTargetFails) {
  TinyDb tiny = TinyDb::Make(100, 5);
  Configuration bad;
  bad.indexes.push_back({"ix", "nope", {"x"}, false});
  EXPECT_FALSE(tiny.db->ApplyConfiguration(bad).ok());
}

TEST(EngineTest, BuildReportTracksPerObjectCosts) {
  TinyDb tiny = TinyDb::Make(3000, 10);
  Configuration cfg;
  cfg.name = "two";
  cfg.indexes.push_back({"ix1", "people", {"dept"}, false});
  cfg.indexes.push_back({"ix2", "people", {"dept", "city", "score"}, false});
  auto rep = tiny.db->ApplyConfiguration(cfg);
  ASSERT_TRUE(rep.ok());
  ASSERT_EQ(rep->objects.size(), 2u);
  // The wider index occupies more pages.
  EXPECT_GT(rep->objects[1].pages, rep->objects[0].pages);
  for (const auto& o : rep->objects) {
    EXPECT_GT(o.build_seconds, 0.0);
    EXPECT_GT(o.pages, 0u);
  }
}

TEST(EngineTest, ViewBuildMaterializesJoin) {
  TinyDb tiny = TinyDb::Make(2000, 20);
  Database* db = tiny.db.get();
  Configuration cfg;
  cfg.name = "V";
  ViewDef v;
  v.name = "pd";
  v.tables = {"people", "depts"};
  v.joins = {{"people", "dept", "depts", "dept_id"}};
  v.projection = {{"people", "id", "people_id"},
                  {"depts", "region", "depts_region"}};
  cfg.views.push_back(v);
  // Plus an index over the view.
  cfg.indexes.push_back({"ix_pd_region", "pd", {"depts_region"}, false});
  auto rep = db->ApplyConfiguration(cfg);
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  const HeapTable* view_heap = db->FindHeap("pd");
  ASSERT_NE(view_heap, nullptr);
  // Every person has a dept (FK): one view row per person.
  EXPECT_EQ(view_heap->num_rows(), 2000u);
  EXPECT_NE(db->FindIndex("ix_pd_region"), nullptr);
  ASSERT_TRUE(db->ResetToPrimary().ok());
  EXPECT_EQ(db->FindHeap("pd"), nullptr);
}

TEST(EngineTest, TimedInsertCostGrowsWithIndexCount) {
  TinyDb tiny = TinyDb::Make(4000, 20);
  Database* db = tiny.db.get();

  auto insert_cost = [&](int64_t id) {
    std::vector<Value> row;
    row.emplace_back(id);
    row.emplace_back(int64_t{3});
    row.emplace_back(std::string("cityX"));
    row.emplace_back(int64_t{500});
    auto c = db->TimedInsert("people", Tuple(std::move(row)));
    EXPECT_TRUE(c.ok());
    return c.ok() ? *c : 0.0;
  };

  ASSERT_TRUE(db->ResetToPrimary().ok());
  double cost_p = insert_cost(1000001);
  ASSERT_TRUE(db->ApplyConfiguration(Make1CConfig(db->catalog())).ok());
  double cost_1c = insert_cost(1000002);
  EXPECT_GT(cost_1c, cost_p);
  ASSERT_TRUE(db->ResetToPrimary().ok());
}

TEST(EngineTest, TimedInsertVisibleToQueries) {
  TinyDb tiny = TinyDb::Make(500, 5);
  Database* db = tiny.db.get();
  auto before = db->Run("SELECT COUNT(*) FROM people p WHERE p.dept = 2");
  ASSERT_TRUE(before.ok());
  std::vector<Value> row{Value(int64_t{990001}), Value(int64_t{2}),
                         Value(std::string("cityZ")), Value(int64_t{1})};
  ASSERT_TRUE(db->TimedInsert("people", Tuple(std::move(row))).ok());
  auto after = db->Run("SELECT COUNT(*) FROM people p WHERE p.dept = 2");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->rows[0].at(0).as_int(),
            before->rows[0].at(0).as_int() + 1);
}

TEST(EngineTest, CollectStatisticsRefreshesCounts) {
  TinyDb tiny = TinyDb::Make(300, 5);
  Database* db = tiny.db.get();
  EXPECT_EQ(db->stats().FindTable("people")->row_count, 300u);
  for (int64_t i = 0; i < 50; ++i) {
    std::vector<Value> row{Value(int64_t{800000 + i}), Value(int64_t{1}),
                           Value(std::string("c")), Value(int64_t{1})};
    ASSERT_TRUE(db->Insert("people", Tuple(std::move(row))).ok());
  }
  ASSERT_TRUE(db->CollectStatistics().ok());
  EXPECT_EQ(db->stats().FindTable("people")->row_count, 350u);
}

TEST(EngineTest, CurrentViewReflectsBuiltState) {
  TinyDb tiny = TinyDb::Make(2000, 10);
  Database* db = tiny.db.get();
  Configuration cfg;
  cfg.name = "one";
  cfg.indexes.push_back({"ix_city", "people", {"city"}, false});
  ASSERT_TRUE(db->ApplyConfiguration(cfg).ok());
  ConfigView v = db->CurrentView();
  const PhysicalIndex* found = nullptr;
  for (const auto& idx : v.indexes) {
    if (idx.def.name == "ix_city") found = &idx;
  }
  ASSERT_NE(found, nullptr);
  EXPECT_FALSE(found->hypothetical);
  EXPECT_DOUBLE_EQ(found->entries, 2000.0);
  EXPECT_GT(found->distinct_keys, 1.0);
  EXPECT_GT(found->leaf_pages, 0.0);
}

}  // namespace
}  // namespace tabbench
