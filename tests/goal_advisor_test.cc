#include <gtest/gtest.h>

#include <memory>

#include "advisor/goal_advisor.h"
#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "test_util.h"

namespace tabbench {
namespace {

using testing::TinyDb;

class GoalAdvisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { tiny_ = std::make_unique<TinyDb>(TinyDb::Make(8000, 60)); }
  static void TearDownTestSuite() {
    tiny_.reset();
  }
  Database* db() { return tiny_->db.get(); }

  std::vector<BoundQuery> Workload() {
    std::vector<std::string> sql = {
        "SELECT p.city, COUNT(*) FROM people p WHERE p.score = 17 "
        "GROUP BY p.city",
        "SELECT p.city, COUNT(*) FROM people p WHERE p.score = 400 "
        "GROUP BY p.city",
        "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
        "d.dept_id AND d.region = 2 GROUP BY p.city",
        "SELECT p.dept, COUNT(*) FROM people p WHERE p.id = 55 "
        "GROUP BY p.dept",
    };
    std::vector<BoundQuery> out;
    for (const auto& q : sql) {
      auto b = ParseAndBind(q, db()->catalog());
      EXPECT_TRUE(b.ok()) << q;
      if (b.ok()) out.push_back(b.TakeValue());
    }
    return out;
  }

  static std::unique_ptr<TinyDb> tiny_;
};

std::unique_ptr<TinyDb> GoalAdvisorTest::tiny_;

TEST_F(GoalAdvisorTest, TrivialGoalPicksNothing) {
  // A goal the P configuration already meets: no structures needed.
  PerformanceGoal lax =
      PerformanceGoal::FromSteps({{1e9, 0.5}});  // half within forever
  GoalDrivenAdvisor advisor(db()->CurrentView(), SystemAProfile(), lax);
  auto rec = advisor.Recommend(Workload());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec->goal_met_by_estimates);
  EXPECT_TRUE(rec->config.indexes.empty());
  EXPECT_DOUBLE_EQ(rec->est_pages, 0.0);
}

TEST_F(GoalAdvisorTest, TightGoalPicksStructures) {
  // Demand most queries complete in ~50ms (estimates): only index probes
  // get there, so structures are required.
  PerformanceGoal tight = PerformanceGoal::FromSteps({{0.05, 0.75}});
  GoalDrivenAdvisor advisor(db()->CurrentView(), SystemAProfile(), tight);
  auto rec = advisor.Recommend(Workload());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec->config.indexes.empty());
  EXPECT_LE(rec->est_shortfall_after, rec->est_shortfall_before);
}

TEST_F(GoalAdvisorTest, ShortfallNeverIncreases) {
  PerformanceGoal goal =
      PerformanceGoal::FromSteps({{0.5, 0.25}, {2.0, 0.75}});
  GoalDrivenAdvisor advisor(db()->CurrentView(), SystemAProfile(), goal);
  auto rec = advisor.Recommend(Workload());
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->est_shortfall_after, rec->est_shortfall_before + 1e-12);
}

TEST_F(GoalAdvisorTest, BudgetStillRespected) {
  PerformanceGoal tight = PerformanceGoal::FromSteps({{0.1, 0.9}});
  AdvisorOptions opts = SystemAProfile();
  opts.space_budget_pages = 15.0;
  GoalDrivenAdvisor advisor(db()->CurrentView(), opts, tight);
  auto rec = advisor.Recommend(Workload());
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->est_pages, 15.0);
}

TEST_F(GoalAdvisorTest, UsesLessSpaceThanTotalCostAdvisorForModestGoal) {
  // The headline property: a modest goal needs less space than minimizing
  // the total.
  PerformanceGoal modest = PerformanceGoal::FromSteps({{5.0, 0.5}});
  AdvisorOptions opts = SystemAProfile();
  GoalDrivenAdvisor goal_advisor(db()->CurrentView(), opts, modest);
  auto rec_goal = goal_advisor.Recommend(Workload());
  Advisor cost_advisor(db()->CurrentView(), opts);
  auto rec_cost = cost_advisor.Recommend(Workload());
  ASSERT_TRUE(rec_goal.ok());
  ASSERT_TRUE(rec_cost.ok());
  if (rec_goal->goal_met_by_estimates) {
    EXPECT_LE(rec_goal->est_pages, rec_cost->est_pages);
  }
}

TEST_F(GoalAdvisorTest, EmptyWorkloadRejected) {
  GoalDrivenAdvisor advisor(db()->CurrentView(), SystemAProfile(),
                            PerformanceGoal::PaperExample2());
  EXPECT_FALSE(advisor.Recommend({}).ok());
}

// ------------------------------------------------- update-aware extension

TEST_F(GoalAdvisorTest, UpdateAwareAdvisorPicksFewerStructures) {
  AdvisorOptions read_only = SystemAProfile();
  AdvisorOptions write_heavy = SystemAProfile();
  write_heavy.updates_per_query = 500.0;  // inserts dominate
  Advisor a_read(db()->CurrentView(), read_only);
  Advisor a_write(db()->CurrentView(), write_heavy);
  auto rec_read = a_read.Recommend(Workload());
  auto rec_write = a_write.Recommend(Workload());
  ASSERT_TRUE(rec_read.ok());
  ASSERT_TRUE(rec_write.ok());
  EXPECT_LT(rec_write->config.indexes.size() + rec_write->config.views.size(),
            rec_read->config.indexes.size() + rec_read->config.views.size());
}

TEST_F(GoalAdvisorTest, MildUpdateRateStillRecommends) {
  AdvisorOptions opts = SystemAProfile();
  opts.updates_per_query = 0.01;
  Advisor advisor(db()->CurrentView(), opts);
  auto rec = advisor.Recommend(Workload());
  ASSERT_TRUE(rec.ok());
  EXPECT_FALSE(rec->config.indexes.empty());
}

}  // namespace
}  // namespace tabbench
