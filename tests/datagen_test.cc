#include <gtest/gtest.h>

#include <memory>

#include <set>

#include "datagen/nref_gen.h"
#include "datagen/tpch_gen.h"
#include "test_util.h"

namespace tabbench {
namespace {

class NrefGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    owner_ = testing::MakeMiniNref(/*scale_inverse=*/2000.0);
    db_ = owner_.get();
  }
  static void TearDownTestSuite() {
    owner_.reset();
    db_ = nullptr;
  }
  // Owning handle; db_ stays a raw alias so call sites read naturally.
  static std::unique_ptr<Database> owner_;
  static Database* db_;
};

std::unique_ptr<Database> NrefGenTest::owner_;
Database* NrefGenTest::db_ = nullptr;

TEST_F(NrefGenTest, RowCountsPreservePaperRatios) {
  ASSERT_NE(db_, nullptr);
  // Paper sizes: Protein 1.1M, Source 3M, Taxonomy 15.1M, Organism 1.2M,
  // Neighboring 78.7M, Identical 0.5M. Scale 1/2000.
  EXPECT_EQ(db_->TableRowCount("protein"), 550u);
  EXPECT_EQ(db_->TableRowCount("source"), 1500u);
  EXPECT_EQ(db_->TableRowCount("taxonomy"), 7550u);
  EXPECT_EQ(db_->TableRowCount("organism"), 600u);
  EXPECT_EQ(db_->TableRowCount("neighboring_seq"), 39350u);
  EXPECT_EQ(db_->TableRowCount("identical_seq"), 250u);
}

TEST_F(NrefGenTest, PrimaryKeysAreUnique) {
  for (const char* table : {"protein", "taxonomy", "neighboring_seq"}) {
    const TableDef* def = db_->catalog().FindTable(table);
    std::vector<int> pk = def->PrimaryKeyColumns();
    const HeapTable* heap = db_->FindHeap(table);
    std::set<std::string> seen;
    auto cur = heap->Scan(nullptr);
    Tuple t;
    while (cur.Next(&t, nullptr)) {
      std::string key;
      for (int c : pk) key += t.at(static_cast<size_t>(c)).ToString() + "|";
      EXPECT_TRUE(seen.insert(key).second)
          << table << " duplicate PK " << key;
    }
  }
}

TEST_F(NrefGenTest, ForeignKeysResolve) {
  // Every source.nref_id references an existing protein.
  uint64_t n_protein = db_->TableRowCount("protein");
  const HeapTable* src = db_->FindHeap("source");
  auto cur = src->Scan(nullptr);
  Tuple t;
  while (cur.Next(&t, nullptr)) {
    int64_t ref = t.at(0).as_int();
    EXPECT_GE(ref, 0);
    EXPECT_LT(ref, static_cast<int64_t>(n_protein));
  }
}

TEST_F(NrefGenTest, StatsReady) {
  EXPECT_NE(db_->stats().FindColumn("taxonomy", "lineage"), nullptr);
  EXPECT_GT(db_->stats().FindColumn("taxonomy", "lineage")->num_distinct, 1u);
}

TEST_F(NrefGenTest, LineageIsSkewedEnoughForConstantRules) {
  const ColumnStats* cs = db_->stats().FindColumn("taxonomy", "lineage");
  ASSERT_NE(cs, nullptr);
  ASSERT_FALSE(cs->freq_examples.empty());
  EXPECT_GE(cs->freq_examples.back().first,
            cs->freq_examples.front().first * 30);
}

TEST_F(NrefGenTest, PkIndexesBuilt) {
  EXPECT_NE(db_->FindIndex("protein_pk"), nullptr);
  EXPECT_NE(db_->FindIndex("neighboring_seq_pk"), nullptr);
  EXPECT_EQ(db_->current_config().name, "P");
}

TEST_F(NrefGenTest, DeterministicGeneration) {
  auto db2 = testing::MakeMiniNref(/*scale_inverse=*/2000.0);
  ASSERT_NE(db2, nullptr);
  // Same seed, same data: compare a fingerprint of one table.
  auto fingerprint = [](Database* db) {
    size_t h = 0;
    const HeapTable* heap = db->FindHeap("taxonomy");
    auto cur = heap->Scan(nullptr);
    Tuple t;
    while (cur.Next(&t, nullptr)) h ^= t.Hash() + 0x9e3779b9 + (h << 6);
    return h;
  };
  EXPECT_EQ(fingerprint(db_), fingerprint(db2.get()));
}

class TpchGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    uniform_owner_ = testing::MakeMiniTpch(2000.0, 0.0);
    skewed_owner_ = testing::MakeMiniTpch(2000.0, 1.0);
    uniform_ = uniform_owner_.get();
    skewed_ = skewed_owner_.get();
  }
  static void TearDownTestSuite() {
    uniform_owner_.reset();
    skewed_owner_.reset();
    uniform_ = skewed_ = nullptr;
  }
  // Owning handles; the raw aliases keep call sites reading naturally.
  static std::unique_ptr<Database> uniform_owner_;
  static std::unique_ptr<Database> skewed_owner_;
  static Database* uniform_;
  static Database* skewed_;
};

std::unique_ptr<Database> TpchGenTest::uniform_owner_;
std::unique_ptr<Database> TpchGenTest::skewed_owner_;
Database* TpchGenTest::uniform_ = nullptr;
Database* TpchGenTest::skewed_ = nullptr;

TEST_F(TpchGenTest, RowCountsAtScale) {
  ASSERT_NE(uniform_, nullptr);
  EXPECT_EQ(uniform_->TableRowCount("lineitem"), 30000u);
  EXPECT_EQ(uniform_->TableRowCount("orders"), 7500u);
  EXPECT_EQ(uniform_->TableRowCount("partsupp"), 4000u);
  EXPECT_EQ(uniform_->TableRowCount("part"), 1000u);
}

TEST_F(TpchGenTest, LineitemFkIntoPartsupp) {
  // (l_partkey, l_suppkey) must exist in partsupp.
  std::set<std::pair<int64_t, int64_t>> ps;
  {
    auto cur = uniform_->FindHeap("partsupp")->Scan(nullptr);
    Tuple t;
    while (cur.Next(&t, nullptr)) {
      ps.insert({t.at(0).as_int(), t.at(1).as_int()});
    }
  }
  auto cur = uniform_->FindHeap("lineitem")->Scan(nullptr);
  Tuple t;
  size_t checked = 0;
  while (cur.Next(&t, nullptr) && checked < 2000) {
    EXPECT_TRUE(ps.count({t.at(2).as_int(), t.at(3).as_int()}))
        << "dangling partsupp ref";
    ++checked;
  }
}

TEST_F(TpchGenTest, SkewChangesFrequencyProfile) {
  const ColumnStats* u = uniform_->stats().FindColumn("lineitem", "l_partkey");
  const ColumnStats* s = skewed_->stats().FindColumn("lineitem", "l_partkey");
  ASSERT_NE(u, nullptr);
  ASSERT_NE(s, nullptr);
  ASSERT_FALSE(u->mcvs.empty());
  ASSERT_FALSE(s->mcvs.empty());
  // Top value under Zipf(1) is far heavier than under uniform.
  EXPECT_GT(s->mcvs[0].second, u->mcvs[0].second * 5);
}

TEST_F(TpchGenTest, UniformDatesCoverRange) {
  const ColumnStats* cs =
      uniform_->stats().FindColumn("orders", "o_orderdate");
  ASSERT_NE(cs, nullptr);
  EXPECT_GT(cs->num_distinct, 1000u);
}

TEST_F(TpchGenTest, SharedDomainsEnableNonKeyJoins) {
  const Catalog& c = uniform_->catalog();
  EXPECT_TRUE(c.JoinCompatible({"lineitem", "l_shipdate"},
                               {"orders", "o_orderdate"}));
  EXPECT_TRUE(c.JoinCompatible({"lineitem", "l_quantity"},
                               {"partsupp", "ps_availqty"}));
  EXPECT_TRUE(c.JoinCompatible({"customer", "c_nationkey"},
                               {"supplier", "s_nationkey"}));
  // Status domains intentionally do NOT join (3-value blow-up guard).
  EXPECT_FALSE(c.JoinCompatible({"lineitem", "l_linestatus"},
                                {"orders", "o_orderstatus"}));
}

TEST(ScaledOptionsTest, HardwareScalesWithData) {
  DatabaseOptions a = ScaledOptions(100.0);
  DatabaseOptions b = ScaledOptions(400.0);
  EXPECT_GT(b.cost.page_io_seconds, a.cost.page_io_seconds);
  EXPECT_LT(b.buffer_pool_pages, a.buffer_pool_pages);
  // Random I/O is a physical seek: never scaled.
  EXPECT_DOUBLE_EQ(b.cost.random_io_seconds, a.cost.random_io_seconds);
  // Timeout is the paper's 30 minutes regardless of scale.
  EXPECT_DOUBLE_EQ(a.cost.timeout_seconds, 1800.0);
  EXPECT_DOUBLE_EQ(b.cost.timeout_seconds, 1800.0);
}

}  // namespace
}  // namespace tabbench
