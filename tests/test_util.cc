#include "test_util.h"

#include "datagen/nref_gen.h"
#include "datagen/tpch_gen.h"
#include "util/rng.h"

namespace tabbench {
namespace testing {

TinyDb TinyDb::Make(size_t n_people, size_t n_depts, uint64_t seed) {
  TinyDb out;
  DatabaseOptions opts;
  opts.buffer_pool_pages = 64;
  opts.cost.page_io_seconds = 0.01;
  opts.cost.random_io_seconds = 0.001;
  opts.cost.cpu_tuple_seconds = 1e-6;
  opts.cost.cpu_hash_seconds = 5e-7;
  opts.cost.work_mem_pages = 16;
  out.db = std::make_unique<Database>(opts);

  TableDef people;
  people.name = "people";
  people.columns = {
      {"id", TypeId::kInt, "id_dom", true, 8},
      {"dept", TypeId::kInt, "dept_dom", true, 8},
      {"city", TypeId::kString, "city_dom", true, 12},
      {"score", TypeId::kInt, "score_dom", true, 8},
  };
  people.primary_key = {"id"};
  people.foreign_keys = {{{"dept"}, "depts", {"dept_id"}}};

  TableDef depts;
  depts.name = "depts";
  depts.columns = {
      {"dept_id", TypeId::kInt, "dept_dom", true, 8},
      {"region", TypeId::kInt, "region_dom", true, 8},
      {"city", TypeId::kString, "city_dom", true, 12},
  };
  depts.primary_key = {"dept_id"};

  Status st = out.db->CreateTable(depts);
  st = out.db->CreateTable(people);
  (void)st;

  Rng rng(seed);
  for (size_t i = 0; i < n_depts; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(static_cast<int64_t>(rng.Uniform(5)));
    row.emplace_back("city" + std::to_string(rng.Uniform(20)));
    st = out.db->Insert("depts", Tuple(std::move(row)));
  }
  for (size_t i = 0; i < n_people; ++i) {
    std::vector<Value> row;
    row.emplace_back(static_cast<int64_t>(i));
    row.emplace_back(static_cast<int64_t>(rng.Uniform(n_depts)));
    // Skewed city frequencies so constant-selection rules are testable.
    size_t city = rng.Uniform(rng.Uniform(200) + 1);
    row.emplace_back("city" + std::to_string(city));
    row.emplace_back(static_cast<int64_t>(rng.Uniform(1000)));
    st = out.db->Insert("people", Tuple(std::move(row)));
  }
  st = out.db->FinishLoad();
  return out;
}

std::unique_ptr<Database> MakeMiniNref(double scale_inverse, uint64_t seed) {
  NrefScaleOptions opts;
  opts.scale_inverse = scale_inverse;
  opts.seed = seed;
  // Tiny data, but cost parameters at the benchmark calibration so queries
  // finish instead of hitting the fixed 30-minute simulated timeout.
  opts.hardware_scale_inverse = 400.0;
  auto db = GenerateNref(opts);
  if (!db.ok()) return nullptr;
  return db.TakeValue();
}

std::unique_ptr<Database> MakeMiniTpch(double scale_inverse, double zipf_theta,
                                       uint64_t seed) {
  TpchScaleOptions opts;
  opts.scale_inverse = scale_inverse;
  opts.zipf_theta = zipf_theta;
  opts.seed = seed;
  opts.hardware_scale_inverse = 400.0;
  auto db = GenerateTpch(opts);
  if (!db.ok()) return nullptr;
  return db.TakeValue();
}

}  // namespace testing
}  // namespace tabbench
