#include <gtest/gtest.h>

#include <memory>

#include "core/configurations.h"
#include "optimizer/cardinality.h"
#include "optimizer/cost_model.h"
#include "optimizer/planner.h"
#include "optimizer/whatif.h"
#include "test_util.h"

namespace tabbench {
namespace {

using testing::TinyDb;

class OptimizerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { tiny_ = std::make_unique<TinyDb>(TinyDb::Make(8000, 60)); }
  static void TearDownTestSuite() {
    tiny_.reset();
  }
  Database* db() { return tiny_->db.get(); }
  static std::unique_ptr<TinyDb> tiny_;
};

std::unique_ptr<TinyDb> OptimizerTest::tiny_;

// ------------------------------------------------------------ cardinality

TEST_F(OptimizerTest, TableRowsMatchesData) {
  ConfigView v = db()->CurrentView();
  CardinalityEstimator card(v);
  EXPECT_DOUBLE_EQ(card.TableRows("people"), 8000.0);
  EXPECT_DOUBLE_EQ(card.TableRows("depts"), 60.0);
}

TEST_F(OptimizerTest, EqSelectivityBounded) {
  ConfigView v = db()->CurrentView();
  CardinalityEstimator card(v);
  double sel = card.EqSelectivity("people", "dept", Value(int64_t{5}));
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 0.2);
}

TEST_F(OptimizerTest, McvSelectivityIsExact) {
  // city0 is by construction the most common city; the MCV list should make
  // the estimate exact.
  ConfigView v = db()->CurrentView();
  CardinalityEstimator card(v);
  const HeapTable* heap = db()->FindHeap("people");
  auto cur = heap->Scan(nullptr);
  Tuple t;
  double actual = 0;
  while (cur.Next(&t, nullptr)) {
    if (t.at(2) == Value(std::string("city0"))) ++actual;
  }
  double est =
      card.EqSelectivity("people", "city", Value(std::string("city0"))) *
      card.TableRows("people");
  EXPECT_NEAR(est, actual, 1.0);
}

TEST_F(OptimizerTest, JoinSelectivityUsesMaxNdv) {
  ConfigView v = db()->CurrentView();
  CardinalityEstimator card(v);
  double sel = card.JoinSelectivity("people", "dept", "depts", "dept_id");
  EXPECT_NEAR(sel, 1.0 / 60.0, 1e-9);
}

TEST_F(OptimizerTest, GroupCountCappedByInput) {
  ConfigView v = db()->CurrentView();
  CardinalityEstimator card(v);
  BoundColumn c;
  c.table = "people";
  c.column = "id";
  EXPECT_LE(card.GroupCount({c, c}, 100.0), 100.0);
  EXPECT_GE(card.GroupCount({}, 100.0), 1.0);
}

// -------------------------------------------------------------- cost model

TEST(CostModelTest, SeqScanScalesWithPages) {
  CostParams p;
  CostModel m(p);
  EXPECT_GT(m.SeqScan(100, 1000), m.SeqScan(10, 1000));
  EXPECT_GT(m.SeqScan(10, 10000), m.SeqScan(10, 1000));
}

TEST(CostModelTest, IndexProbeCheaperThanScanForSelectiveLookups) {
  CostParams p;
  CostModel m(p);
  PhysicalIndex idx;
  idx.height = 3;
  idx.leaf_pages = 1000;
  idx.entries = 500000;
  idx.distinct_keys = 100000;
  idx.clustering_factor = 500000;
  double probe = m.IndexProbe(idx, 5.0, /*index_only=*/false);
  double scan = m.SeqScan(6000, 500000);
  EXPECT_LT(probe, scan / 100.0);
}

TEST(CostModelTest, IndexOnlyCheaperThanFetching) {
  CostParams p;
  CostModel m(p);
  PhysicalIndex idx;
  idx.height = 3;
  idx.leaf_pages = 1000;
  idx.entries = 500000;
  idx.clustering_factor = 500000;  // worst case
  EXPECT_LT(m.IndexProbe(idx, 1000.0, true), m.IndexProbe(idx, 1000.0, false));
}

TEST(CostModelTest, ClusteringReducesFetchCost) {
  CostParams p;
  CostModel m(p);
  PhysicalIndex scattered, clustered;
  scattered.entries = clustered.entries = 100000;
  scattered.leaf_pages = clustered.leaf_pages = 300;
  scattered.height = clustered.height = 3;
  scattered.clustering_factor = 100000;
  clustered.clustering_factor = 1000;
  EXPECT_LT(m.HeapFetch(clustered, 500.0), m.HeapFetch(scattered, 500.0));
}

TEST(CostModelTest, SpillKicksInBeyondWorkMem) {
  CostParams p;
  p.work_mem_pages = 10;
  CostModel m(p);
  EXPECT_DOUBLE_EQ(m.Spill(5.0 * kPageSize), 0.0);
  EXPECT_GT(m.Spill(50.0 * kPageSize), 0.0);
  EXPECT_TRUE(m.WouldSpill(kPageSize * 2, 100.0));
  EXPECT_FALSE(m.WouldSpill(10, 10));
}

// ----------------------------------------------------------------- planner

TEST_F(OptimizerTest, PlansHaveFiniteCosts) {
  auto plan = db()->Plan(
      "SELECT p.city, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY p.city");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_GT(plan->est_cost, 0.0);
  ASSERT_NE(plan->root, nullptr);
  EXPECT_EQ(plan->root->kind, PlanNode::Kind::kHashAggregate);
}

TEST_F(OptimizerTest, PicksIndexForSelectiveFilterIn1C) {
  ASSERT_TRUE(
      db()->ApplyConfiguration(Make1CConfig(db()->catalog())).ok());
  auto plan = db()->Plan(
      "SELECT p.id, COUNT(*) FROM people p WHERE p.id = 17 GROUP BY p.id");
  ASSERT_TRUE(plan.ok());
  // The leaf should be an index access, not a 8000-row scan.
  const PlanNode* n = plan->root.get();
  while (!n->children.empty()) n = n->children[0].get();
  EXPECT_EQ(n->kind, PlanNode::Kind::kIndexScan);
  ASSERT_TRUE(db()->ResetToPrimary().ok());
}

TEST_F(OptimizerTest, EstimateDropsWithIndexes) {
  const std::string q =
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND p.score = 17 GROUP BY p.city";
  ASSERT_TRUE(db()->ResetToPrimary().ok());
  auto ep = db()->Estimate(q);
  ASSERT_TRUE(ep.ok());
  ASSERT_TRUE(
      db()->ApplyConfiguration(Make1CConfig(db()->catalog())).ok());
  auto e1c = db()->Estimate(q);
  ASSERT_TRUE(e1c.ok());
  EXPECT_LT(*e1c, *ep);
  ASSERT_TRUE(db()->ResetToPrimary().ok());
}

TEST_F(OptimizerTest, EstimateInActualBallpark) {
  // E(q, P) should be within an order of magnitude of A(q, P) for simple
  // scans (the model does not know the buffer pool, so exactness is not
  // expected).
  const std::string q =
      "SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept";
  db()->buffer_pool()->Clear();
  auto est = db()->Estimate(q);
  auto act = db()->Run(q);
  ASSERT_TRUE(est.ok());
  ASSERT_TRUE(act.ok());
  EXPECT_LT(*est, act->sim_seconds * 10);
  EXPECT_GT(*est, act->sim_seconds / 10);
}

TEST_F(OptimizerTest, InSetUsesIndexOnlyWalkWhenAvailable) {
  const std::string q =
      "SELECT COUNT(*) FROM people p WHERE p.city IN (SELECT city FROM "
      "people GROUP BY city HAVING COUNT(*) < 10)";
  ASSERT_TRUE(db()->ResetToPrimary().ok());
  auto plan_p = db()->Plan(q);
  ASSERT_TRUE(plan_p.ok());
  EXPECT_TRUE(plan_p->in_sets[0].index_name.empty());
  ASSERT_TRUE(
      db()->ApplyConfiguration(Make1CConfig(db()->catalog())).ok());
  auto plan_1c = db()->Plan(q);
  ASSERT_TRUE(plan_1c.ok());
  EXPECT_FALSE(plan_1c->in_sets[0].index_name.empty());
  ASSERT_TRUE(db()->ResetToPrimary().ok());
}

// ------------------------------------------------------------------ whatif

TEST_F(OptimizerTest, HypotheticalIndexDerivation) {
  IndexDef def;
  def.name = "hx";
  def.target = "people";
  def.columns = {"dept", "city"};
  HypotheticalRules rules;
  PhysicalIndex pi = DeriveHypotheticalIndex(def, db()->catalog(),
                                             db()->stats(), rules, -1.0);
  EXPECT_TRUE(pi.hypothetical);
  EXPECT_DOUBLE_EQ(pi.entries, 8000.0);
  EXPECT_GE(pi.height, 1.0);
  EXPECT_GT(pi.leaf_pages, 0.0);
  // Conservative NDV: leading column only.
  EXPECT_DOUBLE_EQ(pi.distinct_keys, 60.0);
  // Worst-case clustering.
  EXPECT_DOUBLE_EQ(pi.clustering_factor, 8000.0);
}

TEST_F(OptimizerTest, CompositeNdvProductRule) {
  IndexDef def;
  def.target = "people";
  def.columns = {"dept", "city"};
  HypotheticalRules rules;
  rules.composite_ndv_product = true;
  PhysicalIndex pi = DeriveHypotheticalIndex(def, db()->catalog(),
                                             db()->stats(), rules, -1.0);
  EXPECT_GT(pi.distinct_keys, 60.0);
  EXPECT_LE(pi.distinct_keys, 8000.0);
}

TEST_F(OptimizerTest, HypotheticalAtLeastAsConservativeAsBuilt) {
  // H(q, 1C, P) >= E(q, 1C built): the what-if derivation must not be more
  // optimistic than measured statistics (Section 5's direction).
  const std::string queries[] = {
      "SELECT p.id, COUNT(*) FROM people p WHERE p.id = 4000 GROUP BY p.id",
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND p.score = 3 GROUP BY p.city",
  };
  Configuration one_c = Make1CConfig(db()->catalog());
  ASSERT_TRUE(db()->ResetToPrimary().ok());
  HypotheticalRules rules;  // defaults: pessimistic clustering
  std::vector<double> h;
  for (const auto& q : queries) {
    auto est = db()->HypotheticalEstimate(q, one_c, rules);
    ASSERT_TRUE(est.ok());
    h.push_back(*est);
  }
  ASSERT_TRUE(db()->ApplyConfiguration(one_c).ok());
  for (size_t i = 0; i < 2; ++i) {
    auto e = db()->Estimate(queries[i]);
    ASSERT_TRUE(e.ok());
    EXPECT_GE(h[i], *e * 0.99) << queries[i];
  }
  ASSERT_TRUE(db()->ResetToPrimary().ok());
}

TEST_F(OptimizerTest, CreditIndexOnlyToggleMatters) {
  Configuration one_c = Make1CConfig(db()->catalog());
  const std::string q =
      "SELECT COUNT(*) FROM people p WHERE p.city IN (SELECT city FROM "
      "people GROUP BY city HAVING COUNT(*) < 10)";
  HypotheticalRules credit;
  credit.credit_index_only = true;
  HypotheticalRules no_credit;
  no_credit.credit_index_only = false;
  auto with_credit = db()->HypotheticalEstimate(q, one_c, credit);
  auto without = db()->HypotheticalEstimate(q, one_c, no_credit);
  ASSERT_TRUE(with_credit.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_LT(*with_credit, *without);
}

TEST_F(OptimizerTest, EstimateIndexPagesGrowsWithWidth) {
  IndexDef narrow, wide;
  narrow.target = wide.target = "people";
  narrow.columns = {"id"};
  wide.columns = {"id", "dept", "city", "score"};
  double pn = EstimateIndexPages(narrow, db()->catalog(), db()->stats(),
                                 0.67, -1.0);
  double pw =
      EstimateIndexPages(wide, db()->catalog(), db()->stats(), 0.67, -1.0);
  EXPECT_GT(pw, pn);
}

TEST_F(OptimizerTest, ViewSizeEstimateForFkJoin) {
  ViewDef v;
  v.name = "pv";
  v.tables = {"people", "depts"};
  v.joins = {{"people", "dept", "depts", "dept_id"}};
  v.projection = {{"people", "city", "people_city"},
                  {"depts", "region", "depts_region"}};
  ViewSizeEstimate est = EstimateViewSize(v, db()->catalog(), db()->stats());
  // FK join: about one row per person.
  EXPECT_NEAR(est.rows, 8000.0, 8000.0 * 0.2);
  EXPECT_GE(est.pages, 1.0);
}

TEST_F(OptimizerTest, ViewMatchingUsedWhenProfitable) {
  // Build a view pre-joining people x depts and check the planner uses it.
  Configuration cfg;
  cfg.name = "V";
  ViewDef v;
  v.name = "people_depts";
  v.tables = {"people", "depts"};
  v.joins = {{"people", "dept", "depts", "dept_id"}};
  v.projection = {{"people", "city", "people_city"},
                  {"depts", "region", "depts_region"}};
  cfg.views.push_back(v);
  ASSERT_TRUE(db()->ApplyConfiguration(cfg).ok());
  auto plan = db()->Plan(
      "SELECT d.region, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY d.region");
  ASSERT_TRUE(plan.ok());
  // Scanning the single materialized view beats scanning + joining.
  const PlanNode* n = plan->root.get();
  while (!n->children.empty()) n = n->children[0].get();
  EXPECT_TRUE(n->is_view) << plan->ToString();
  // And executing through the view gives the same answer as P.
  auto via_view = db()->Run(
      "SELECT d.region, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY d.region");
  ASSERT_TRUE(via_view.ok());
  ASSERT_TRUE(db()->ResetToPrimary().ok());
  auto via_base = db()->Run(
      "SELECT d.region, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY d.region");
  ASSERT_TRUE(via_base.ok());
  EXPECT_EQ(via_view->rows.size(), via_base->rows.size());
}

}  // namespace
}  // namespace tabbench
