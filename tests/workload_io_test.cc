#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/nref_families.h"
#include "core/workload_io.h"
#include "test_util.h"

namespace tabbench {
namespace {

QueryFamily SampleFamilyFixture() {
  QueryFamily f;
  f.name = "TEST2J";
  f.queries.push_back(
      {"SELECT a FROM t WHERE t.a = 'x;y'", "R=t c1=a"});
  f.queries.push_back({"SELECT b, COUNT(*) FROM u GROUP BY b", ""});
  return f;
}

TEST(WorkloadIoTest, RoundTripThroughString) {
  QueryFamily f = SampleFamilyFixture();
  std::string text = FamilyToString(f);
  auto back = FamilyFromString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name, "TEST2J");
  ASSERT_EQ(back->queries.size(), 2u);
  EXPECT_EQ(back->queries[0].sql, f.queries[0].sql);
  EXPECT_EQ(back->queries[0].binding, "R=t c1=a");
  EXPECT_EQ(back->queries[1].sql, f.queries[1].sql);
  EXPECT_EQ(back->queries[1].binding, "");
}

TEST(WorkloadIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(FamilyFromString("SELECT a FROM t;\n").ok());
}

TEST(WorkloadIoTest, RejectsUnterminatedQuery) {
  EXPECT_FALSE(FamilyFromString("# tabbench workload v1\nSELECT a FROM t\n")
                   .ok());
}

TEST(WorkloadIoTest, SaveAndLoadFile) {
  QueryFamily f = SampleFamilyFixture();
  std::string path = ::testing::TempDir() + "/tabbench_workload_test.sql";
  TB_ASSERT_OK(SaveFamily(f, path));
  auto back = LoadFamily(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->queries.size(), f.queries.size());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, LoadMissingFileIsNotFound) {
  EXPECT_TRUE(LoadFamily("/nonexistent/nowhere.sql").status().IsNotFound());
}

TEST(WorkloadIoTest, SavedFileCarriesCrcTrailerAndTamperIsDataLoss) {
  QueryFamily f = SampleFamilyFixture();
  std::string path = ::testing::TempDir() + "/tabbench_workload_crc.sql";
  TB_ASSERT_OK(SaveFamily(f, path));

  // The saved artifact ends with its checksum trailer.
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  EXPECT_NE(bytes.find("# crc32c: "), std::string::npos);

  // Flip one byte of a query: the parser would happily accept the damaged
  // SQL, so only the checksum stands between bit rot and a silent result.
  size_t at = bytes.find("SELECT");
  ASSERT_NE(at, std::string::npos);
  bytes[at] = 'Z';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto back = LoadFamily(path);
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsDataLoss()) << back.status().ToString();
  EXPECT_NE(back.status().ToString().find("offset"), std::string::npos);
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, LegacyFileWithoutTrailerStillLoads) {
  // Files saved before checksumming carry no trailer; they load unchanged.
  QueryFamily f = SampleFamilyFixture();
  std::string path = ::testing::TempDir() + "/tabbench_workload_legacy.sql";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << FamilyToString(f);
  }
  auto back = LoadFamily(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->queries.size(), f.queries.size());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, GeneratedFamilySurvivesRoundTripAndRebinds) {
  auto db = tabbench::testing::MakeMiniNref(4000.0);
  ASSERT_NE(db, nullptr);
  QueryFamily f = GenerateNref2J(db->catalog(), db->stats());
  ASSERT_FALSE(f.queries.empty());
  auto back = FamilyFromString(FamilyToString(f));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->queries.size(), f.queries.size());
  for (size_t i = 0; i < back->queries.size(); ++i) {
    EXPECT_EQ(back->queries[i].sql, f.queries[i].sql);
    // Every reloaded query must still bind against the schema.
    EXPECT_TRUE(ParseAndBind(back->queries[i].sql, db->catalog()).ok())
        << back->queries[i].sql;
  }
}

}  // namespace
}  // namespace tabbench
