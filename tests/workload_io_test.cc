#include <gtest/gtest.h>

#include <cstdio>

#include "core/nref_families.h"
#include "core/workload_io.h"
#include "test_util.h"

namespace tabbench {
namespace {

QueryFamily SampleFamilyFixture() {
  QueryFamily f;
  f.name = "TEST2J";
  f.queries.push_back(
      {"SELECT a FROM t WHERE t.a = 'x;y'", "R=t c1=a"});
  f.queries.push_back({"SELECT b, COUNT(*) FROM u GROUP BY b", ""});
  return f;
}

TEST(WorkloadIoTest, RoundTripThroughString) {
  QueryFamily f = SampleFamilyFixture();
  std::string text = FamilyToString(f);
  auto back = FamilyFromString(text);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->name, "TEST2J");
  ASSERT_EQ(back->queries.size(), 2u);
  EXPECT_EQ(back->queries[0].sql, f.queries[0].sql);
  EXPECT_EQ(back->queries[0].binding, "R=t c1=a");
  EXPECT_EQ(back->queries[1].sql, f.queries[1].sql);
  EXPECT_EQ(back->queries[1].binding, "");
}

TEST(WorkloadIoTest, RejectsMissingHeader) {
  EXPECT_FALSE(FamilyFromString("SELECT a FROM t;\n").ok());
}

TEST(WorkloadIoTest, RejectsUnterminatedQuery) {
  EXPECT_FALSE(FamilyFromString("# tabbench workload v1\nSELECT a FROM t\n")
                   .ok());
}

TEST(WorkloadIoTest, SaveAndLoadFile) {
  QueryFamily f = SampleFamilyFixture();
  std::string path = ::testing::TempDir() + "/tabbench_workload_test.sql";
  TB_ASSERT_OK(SaveFamily(f, path));
  auto back = LoadFamily(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->queries.size(), f.queries.size());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, LoadMissingFileIsNotFound) {
  EXPECT_TRUE(LoadFamily("/nonexistent/nowhere.sql").status().IsNotFound());
}

TEST(WorkloadIoTest, GeneratedFamilySurvivesRoundTripAndRebinds) {
  auto db = tabbench::testing::MakeMiniNref(4000.0);
  ASSERT_NE(db, nullptr);
  QueryFamily f = GenerateNref2J(db->catalog(), db->stats());
  ASSERT_FALSE(f.queries.empty());
  auto back = FamilyFromString(FamilyToString(f));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->queries.size(), f.queries.size());
  for (size_t i = 0; i < back->queries.size(); ++i) {
    EXPECT_EQ(back->queries[i].sql, f.queries[i].sql);
    // Every reloaded query must still bind against the schema.
    EXPECT_TRUE(ParseAndBind(back->queries[i].sql, db->catalog()).ok())
        << back->queries[i].sql;
  }
}

}  // namespace
}  // namespace tabbench
