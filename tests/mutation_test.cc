// Mutation suite: the insert/update-heavy workload axis and the crash-safe
// online index lifecycle. Covers the deterministic mixed-workload runner
// (serial ≡ parallel bit-identity, journaled resume), the online build state
// machine driven both through the runner and directly, stats staleness, the
// journal audit, and the fork/SIGKILL kill-resume harness extended to fire
// at every index-build state transition — its own binary so `ctest -L
// mutation` (run under TABBENCH_SANITIZE=thread in CI, like the shard
// suite) has a precise target and armed fault schedules stay isolated.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/mutation_workload.h"
#include "core/runner.h"
#include "engine/index_build.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/run_journal.h"
#include "util/thread_pool.h"

namespace tabbench {
namespace {

/// Disarms every fault point on scope exit so a failing ASSERT cannot leak
/// an armed schedule into later tests.
struct FaultGuard {
  FaultGuard() { FaultRegistry::Global().DisarmAll(); }
  ~FaultGuard() { FaultRegistry::Global().DisarmAll(); }
};

class MutationWorkloadTest : public ::testing::Test {
 protected:
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  /// Mutation runs change the database, so every run gets a fresh one —
  /// deterministically rebuilt, which is also what resume relies on.
  static std::unique_ptr<Database> FreshDb() {
    return testing::TinyDb::Make(2000, 20).db;
  }

  static MutationWorkloadSpec Spec(uint32_t num_ops = 120) {
    MutationWorkloadSpec s;
    s.seed = 7;
    s.num_ops = num_ops;
    s.table = "people";
    s.insert_fraction = 0.30;
    s.update_fraction = 0.15;
    s.delete_fraction = 0.15;  // 40% reads
    s.zipf_theta = 0.8;
    s.read_pool = {
        "SELECT p.city, COUNT(*) FROM people p WHERE p.dept = 3 "
        "GROUP BY p.city",
        "SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept",
    };
    return s;
  }

  static IndexBuildRequest BuildReq(const std::string& name,
                                    uint32_t start_op, bool then_drop = false,
                                    uint32_t drop_op = 0) {
    IndexBuildRequest req;
    req.def.name = name;
    req.def.target = "people";
    req.def.columns = {"dept"};
    req.build.rows_per_step = 128;
    req.start_op = start_op;
    req.then_drop = then_drop;
    req.drop_op = drop_op;
    return req;
  }

  /// Exact ==, not approximate: two runs of the same spec apply the same FP
  /// ops in the same order, build maintenance included.
  static void ExpectIdentical(const MutationWorkloadResult& a,
                              const MutationWorkloadResult& b) {
    ASSERT_EQ(a.ops.size(), b.ops.size());
    for (size_t i = 0; i < a.ops.size(); ++i) {
      EXPECT_EQ(a.ops[i].kind, b.ops[i].kind) << i;
      EXPECT_EQ(a.ops[i].seconds, b.ops[i].seconds) << i;
      EXPECT_EQ(a.ops[i].failed, b.ops[i].failed) << i;
      EXPECT_EQ(a.ops[i].has_estimate, b.ops[i].has_estimate) << i;
      EXPECT_EQ(a.ops[i].estimate, b.ops[i].estimate) << i;
    }
    EXPECT_EQ(a.inserts, b.inserts);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.deletes, b.deletes);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.analyze_runs, b.analyze_runs);
    EXPECT_EQ(a.total_seconds, b.total_seconds);
    EXPECT_EQ(a.read_seconds, b.read_seconds);
    EXPECT_EQ(a.maintenance_seconds, b.maintenance_seconds);
    EXPECT_EQ(a.final_staleness, b.final_staleness);
    EXPECT_EQ(a.mean_abs_log2_gap, b.mean_abs_log2_gap);
    ASSERT_EQ(a.build_outcomes.size(), b.build_outcomes.size());
    for (size_t i = 0; i < a.build_outcomes.size(); ++i) {
      EXPECT_EQ(a.build_outcomes[i].name, b.build_outcomes[i].name) << i;
      EXPECT_EQ(a.build_outcomes[i].final_state,
                b.build_outcomes[i].final_state)
          << i;
      EXPECT_EQ(a.build_outcomes[i].fingerprint,
                b.build_outcomes[i].fingerprint)
          << i;
      EXPECT_EQ(a.build_outcomes[i].side_log_peak,
                b.build_outcomes[i].side_log_peak)
          << i;
      EXPECT_EQ(a.build_outcomes[i].build_seconds,
                b.build_outcomes[i].build_seconds)
          << i;
    }
  }
};

TEST_F(MutationWorkloadTest, RejectsInvalidSpecs) {
  auto db = FreshDb();
  MutationWorkloadSpec bad = Spec();
  bad.insert_fraction = 0.9;  // fractions sum past 1
  EXPECT_TRUE(RunMutationWorkload(db.get(), bad).status().IsInvalidArgument());

  bad = Spec();
  bad.table = "nope";
  EXPECT_TRUE(RunMutationWorkload(db.get(), bad).status().IsNotFound());

  bad = Spec();
  bad.read_pool.clear();  // read fraction > 0 with nothing to read
  EXPECT_TRUE(RunMutationWorkload(db.get(), bad).status().IsInvalidArgument());
}

TEST_F(MutationWorkloadTest, DeterministicAcrossIdenticalRuns) {
  auto db1 = FreshDb();
  auto db2 = FreshDb();
  MutationWorkloadOptions opts;
  opts.collect_estimates = true;
  opts.stats_refresh = 40;
  opts.builds.push_back(BuildReq("ix_dyn", 20));
  auto a = RunMutationWorkload(db1.get(), Spec(), opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = RunMutationWorkload(db2.get(), Spec(), opts);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectIdentical(*a, *b);
}

TEST_F(MutationWorkloadTest, OpCountsAndClocksAddUp) {
  auto db = FreshDb();
  MutationWorkloadSpec spec = Spec(200);
  auto r = RunMutationWorkload(db.get(), spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ops.size(), 200u);
  EXPECT_EQ(r->inserts + r->updates + r->deletes + r->reads, 200u);
  // With 30/15/15/40 fractions over 200 draws every class fires.
  EXPECT_GT(r->inserts, 0u);
  EXPECT_GT(r->updates, 0u);
  EXPECT_GT(r->deletes, 0u);
  EXPECT_GT(r->reads, 0u);
  EXPECT_GT(r->total_seconds, 0.0);
  EXPECT_NEAR(r->total_seconds, r->read_seconds + r->maintenance_seconds,
              1e-9 * r->total_seconds);
  // No ANALYZE was requested, so every mutation is still pending stats-wise.
  EXPECT_EQ(r->analyze_runs, 0u);
  EXPECT_EQ(r->final_staleness, r->inserts + r->updates + r->deletes);
}

TEST_F(MutationWorkloadTest, SerialAndParallelBitIdenticalWithJournals) {
  // The tentpole determinism contract: maintenance costs flow through the
  // simulated clock identically whether reads fan out over a pool or not —
  // down to the journal bytes, with an online build riding along.
  MutationWorkloadSpec spec = Spec(150);
  std::string serial_path = TempPath("mut_serial.tbj");
  std::string parallel_path = TempPath("mut_parallel.tbj");
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());

  MutationWorkloadOptions opts;
  opts.collect_estimates = true;
  opts.builds.push_back(BuildReq("ix_live", 25));
  opts.journal_path = serial_path;

  auto db1 = FreshDb();
  auto serial = RunMutationWorkload(db1.get(), spec, opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ThreadPool pool(4);
  opts.pool = &pool;
  opts.journal_path = parallel_path;
  auto db2 = FreshDb();
  auto parallel = RunMutationWorkload(db2.get(), spec, opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  ExpectIdentical(*serial, *parallel);
  EXPECT_EQ(Slurp(serial_path), Slurp(parallel_path));
  // Both journals pass the no-lost-record audit.
  auto audit = AuditMutationJournal(serial_path);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  std::remove(serial_path.c_str());
  std::remove(parallel_path.c_str());
}

TEST_F(MutationWorkloadTest, OnlineBuildRidesTheWorkloadToLive) {
  auto db = FreshDb();
  MutationWorkloadOptions opts;
  opts.builds.push_back(BuildReq("ix_ride", 10));
  auto r = RunMutationWorkload(db.get(), Spec(160), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->build_outcomes.size(), 1u);
  const IndexBuildOutcome& b = r->build_outcomes[0];
  EXPECT_EQ(b.final_state, IndexBuildState::kLive);
  EXPECT_NE(b.fingerprint, 0u);
  // rows_per_step=128 over a 2000-row heap: the scan spans dozens of ops,
  // so concurrent writes must have landed in the side log.
  EXPECT_GT(b.side_log_peak, 0u);
  EXPECT_GT(b.build_seconds, 0.0);
  // The index is installed and queryable. Its *current* fingerprint is not
  // the install-time one — the ~140 workload writes after installation kept
  // maintaining it — which is exactly the online-maintenance contract.
  EXPECT_NE(db->FindIndex("ix_ride"), nullptr);
  auto fp = db->SecondaryIndexFingerprint("ix_ride");
  ASSERT_TRUE(fp.ok());
  EXPECT_NE(*fp, b.fingerprint);
}

TEST_F(MutationWorkloadTest, BuildThenDropLeavesNoIndexBehind) {
  auto db = FreshDb();
  MutationWorkloadOptions opts;
  opts.builds.push_back(BuildReq("ix_tmp", 10, /*then_drop=*/true,
                                 /*drop_op=*/110));
  auto r = RunMutationWorkload(db.get(), Spec(160), opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->build_outcomes.size(), 1u);
  EXPECT_EQ(r->build_outcomes[0].final_state, IndexBuildState::kDropped);
  // It did go live first (the fingerprint was captured at install time).
  EXPECT_NE(r->build_outcomes[0].fingerprint, 0u);
  EXPECT_EQ(db->FindIndex("ix_tmp"), nullptr);
  EXPECT_TRUE(db->SecondaryIndexFingerprint("ix_tmp").status().IsNotFound());
}

TEST_F(MutationWorkloadTest, StatsRefreshBoundsStalenessAndTheEvAGap) {
  // Insert-heavy churn on a small table: without ANALYZE the optimizer's
  // row counts go stale and E(q) diverges from A(q); a stats_refresh budget
  // pays simulated ANALYZE time to pull the gap back in. This is the
  // paper's E-vs-A comparison re-plotted along the write-rate axis.
  MutationWorkloadSpec spec = Spec(300);
  spec.insert_fraction = 0.6;
  spec.update_fraction = 0.0;
  spec.delete_fraction = 0.0;  // 40% reads
  auto mk = [] { return testing::TinyDb::Make(400, 10).db; };

  MutationWorkloadOptions stale;
  stale.collect_estimates = true;
  auto db1 = mk();
  auto without = RunMutationWorkload(db1.get(), spec, stale);
  ASSERT_TRUE(without.ok()) << without.status().ToString();

  MutationWorkloadOptions fresh = stale;
  fresh.stats_refresh = 40;
  auto db2 = mk();
  auto with = RunMutationWorkload(db2.get(), spec, fresh);
  ASSERT_TRUE(with.ok()) << with.status().ToString();

  EXPECT_EQ(without->analyze_runs, 0u);
  EXPECT_GT(with->analyze_runs, 0u);
  EXPECT_LT(with->final_staleness, without->final_staleness);
  // The op streams are identical (same seed), so estimates pair up read for
  // read. Without refresh the optimizer never sees the ~45% table growth —
  // its estimates stay frozen at the initial row count — while under
  // periodic ANALYZE they climb with the heap. Summed over the run the
  // refreshed estimates must be strictly larger, and the frozen ones must
  // never exceed their refreshed twin.
  double est_without = 0.0, est_with = 0.0;
  ASSERT_EQ(without->ops.size(), with->ops.size());
  for (size_t i = 0; i < without->ops.size(); ++i) {
    if (!without->ops[i].has_estimate) continue;
    ASSERT_TRUE(with->ops[i].has_estimate) << i;
    EXPECT_LE(without->ops[i].estimate, with->ops[i].estimate) << i;
    est_without += without->ops[i].estimate;
    est_with += with->ops[i].estimate;
  }
  EXPECT_GT(est_with, est_without);
  // The refresh policy is not free: its ANALYZE scans bill the clock.
  EXPECT_GT(with->maintenance_seconds, without->maintenance_seconds);
}

TEST_F(MutationWorkloadTest, InjectedFaultAbortsBuildButTheRunContinues) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "engine.index_build.backfill=internal@once"));
  MutationWorkloadOptions opts;
  opts.builds.push_back(BuildReq("ix_doomed", 10));
  auto db1 = FreshDb();
  auto a = RunMutationWorkload(db1.get(), Spec(), opts);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_EQ(a->build_outcomes.size(), 1u);
  EXPECT_EQ(a->build_outcomes[0].final_state, IndexBuildState::kAborted);
  EXPECT_EQ(a->build_outcomes[0].fingerprint, 0u);
  EXPECT_EQ(db1->FindIndex("ix_doomed"), nullptr);
  EXPECT_EQ(a->ops.size(), Spec().num_ops);  // the workload itself finished

  // The abort is part of the deterministic schedule: a second run under the
  // same armed spec lands on the same bits.
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "engine.index_build.backfill=internal@once"));
  auto db2 = FreshDb();
  auto b = RunMutationWorkload(db2.get(), Spec(), opts);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ExpectIdentical(*a, *b);
}

// -------------------------------------------------- OnlineIndexBuild (unit)

class OnlineIndexBuildTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing::TinyDb::Make(2000, 20).db; }

  ExecContext Ctx() {
    return db_->MakeSessionContext(db_->buffer_pool(), db_->options().cost);
  }

  static IndexDef Def(const std::string& name) {
    IndexDef def;
    def.name = name;
    def.target = "people";
    def.columns = {"dept"};
    return def;
  }

  /// Steps `build` until live/aborted, asserting it terminates.
  void StepToCompletion(OnlineIndexBuild* build) {
    for (int guard = 0; guard < 1 << 16 && !build->done(); ++guard) {
      ExecContext ctx = Ctx();
      auto st = build->Step(&ctx);
      ASSERT_TRUE(st.ok()) << st.status().ToString();
    }
    ASSERT_TRUE(build->done());
  }

  std::unique_ptr<Database> db_;
};

TEST_F(OnlineIndexBuildTest, UnperturbedOnlineBuildMatchesOfflineBuild) {
  // With no concurrent writes the side log stays empty and the online build
  // reduces to scan + sort + bulk-build — the exact pipeline the offline
  // configuration builder runs, so the trees agree bit for bit (shape and
  // content, via the fingerprint).
  OnlineIndexBuild build(db_.get(), Def("ix_dept"));
  {
    ExecContext ctx = Ctx();
    TB_ASSERT_OK(build.Start(&ctx));
  }
  StepToCompletion(&build);
  ASSERT_EQ(build.state(), IndexBuildState::kLive);
  EXPECT_EQ(build.side_log_size(), 0u);
  auto online_fp = db_->SecondaryIndexFingerprint("ix_dept");
  ASSERT_TRUE(online_fp.ok());

  Configuration cfg;
  cfg.name = "offline";
  cfg.indexes.push_back({"ix_dept", "people", {"dept"}, false});
  ASSERT_TRUE(db_->ApplyConfiguration(cfg).ok());  // resets, rebuilds offline
  auto offline_fp = db_->SecondaryIndexFingerprint("ix_dept");
  ASSERT_TRUE(offline_fp.ok());
  EXPECT_EQ(*online_fp, *offline_fp);
}

TEST_F(OnlineIndexBuildTest, MidBuildChurnFlowsThroughTheSideLog) {
  OnlineIndexBuild build(db_.get(), Def("ix_churn"));
  {
    ExecContext ctx = Ctx();
    TB_ASSERT_OK(build.Start(&ctx));
  }
  // One scan quantum, then writes land while the build is mid-flight.
  {
    ExecContext ctx = Ctx();
    auto st = build.Step(&ctx);
    ASSERT_TRUE(st.ok()) << st.status().ToString();
    ASSERT_EQ(*st, IndexBuildState::kScanning);
  }
  Rid fresh;
  auto ins = db_->TimedInsert(
      "people", Tuple({Value(int64_t{900001}), Value(int64_t{3}),
                       Value(std::string("x")), Value(int64_t{50})}),
      &fresh);
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  // Insert-then-delete of a row the scan never saw: the catch-up delete is
  // a NotFound no-op, not an error.
  Rid doomed;
  ASSERT_TRUE(db_->TimedInsert(
                     "people", Tuple({Value(int64_t{900002}), Value(int64_t{4}),
                                      Value(std::string("y")),
                                      Value(int64_t{25})}),
                     &doomed)
                  .ok());
  ASSERT_TRUE(db_->TimedDelete("people", doomed).ok());
  EXPECT_GE(build.side_log_size(), 3u);

  StepToCompletion(&build);
  ASSERT_EQ(build.state(), IndexBuildState::kLive);
  EXPECT_NE(db_->FindIndex("ix_churn"), nullptr);
}

TEST_F(OnlineIndexBuildTest, AbortDetachesObserverAndInstallsNothing) {
  {
    OnlineIndexBuild build(db_.get(), Def("ix_aborted"));
    ExecContext ctx = Ctx();
    TB_ASSERT_OK(build.Start(&ctx));
    ExecContext step_ctx = Ctx();
    ASSERT_TRUE(build.Step(&step_ctx).ok());
    TB_ASSERT_OK(build.Abort());
    EXPECT_EQ(build.state(), IndexBuildState::kAborted);
    EXPECT_TRUE(build.done());
  }
  EXPECT_EQ(db_->FindIndex("ix_aborted"), nullptr);
  // The observer is gone: writes after the build object died must not
  // touch freed state.
  ASSERT_TRUE(db_->TimedInsert(
                     "people", Tuple({Value(int64_t{900009}), Value(int64_t{1}),
                                      Value(std::string("z")),
                                      Value(int64_t{10})}))
                  .ok());
}

TEST_F(OnlineIndexBuildTest, StartRefusesDuplicateOrUnknownTargets) {
  Configuration cfg;
  cfg.name = "pre";
  cfg.indexes.push_back({"ix_dup", "people", {"dept"}, false});
  ASSERT_TRUE(db_->ApplyConfiguration(cfg).ok());

  OnlineIndexBuild dup(db_.get(), Def("ix_dup"));
  ExecContext ctx = Ctx();
  EXPECT_FALSE(dup.Start(&ctx).ok());

  IndexDef missing = Def("ix_missing");
  missing.target = "nope";
  OnlineIndexBuild bad(db_.get(), missing);
  ExecContext ctx2 = Ctx();
  EXPECT_TRUE(bad.Start(&ctx2).IsNotFound());
}

// ------------------------------------------------------- journal back-compat

class MutationJournalTest : public MutationWorkloadTest {};

TEST_F(MutationJournalTest, RunnerJournalsWithoutBuildFramesStillLoad) {
  // Backward compatibility: a journal written by the core runner (the PR-4
  // format — header + query records, no index-build frames) loads cleanly
  // and passes the mutation audit with an empty build stream.
  auto db = FreshDb();
  std::vector<std::string> sql = Spec().read_pool;
  std::string path = TempPath("legacy_runner.tbj");
  std::remove(path.c_str());
  RunOptions opts;
  opts.journal_path = path;
  auto r = RunWorkload(db.get(), sql, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), sql.size());
  EXPECT_TRUE(loaded->index_builds.empty());

  auto audit = AuditMutationJournal(path);
  ASSERT_TRUE(audit.ok()) << audit.status().ToString();
  std::remove(path.c_str());
}

TEST_F(MutationJournalTest, AuditCatchesLostAndIllegalRecords) {
  JournalHeader header;
  header.query_count = 5;

  {  // A skipped op index: record 1 never made it to disk.
    std::string path = TempPath("audit_torn.tbj");
    auto w = RunJournalWriter::Create(path, header);
    ASSERT_TRUE(w.ok());
    JournalQueryRecord rec;
    rec.query_index = 0;
    TB_ASSERT_OK((*w)->Append(rec));
    rec.query_index = 2;
    TB_ASSERT_OK((*w)->Append(rec));
    w->reset();
    EXPECT_TRUE(AuditMutationJournal(path).status().IsDataLoss());
    std::remove(path.c_str());
  }

  {  // A build stream that does not begin at `pending`.
    std::string path = TempPath("audit_nopending.tbj");
    auto w = RunJournalWriter::Create(path, header);
    ASSERT_TRUE(w.ok());
    JournalIndexBuildRecord rec;
    rec.build_id = 0;
    rec.state = static_cast<uint8_t>(IndexBuildState::kLive);
    rec.index_name = "ix";
    rec.target = "people";
    rec.columns = {"dept"};
    TB_ASSERT_OK((*w)->Append(rec));
    w->reset();
    EXPECT_TRUE(AuditMutationJournal(path).status().IsDataLoss());
    std::remove(path.c_str());
  }

  {  // An illegal forward edge: pending -> live skips three states.
    std::string path = TempPath("audit_skip.tbj");
    auto w = RunJournalWriter::Create(path, header);
    ASSERT_TRUE(w.ok());
    JournalIndexBuildRecord rec;
    rec.build_id = 0;
    rec.state = static_cast<uint8_t>(IndexBuildState::kPending);
    rec.index_name = "ix";
    rec.target = "people";
    rec.columns = {"dept"};
    TB_ASSERT_OK((*w)->Append(rec));
    rec.state = static_cast<uint8_t>(IndexBuildState::kLive);
    TB_ASSERT_OK((*w)->Append(rec));
    w->reset();
    EXPECT_TRUE(AuditMutationJournal(path).status().IsDataLoss());
    std::remove(path.c_str());
  }

  {  // A transition anchored past the op records that actually exist.
    std::string path = TempPath("audit_anchor.tbj");
    auto w = RunJournalWriter::Create(path, header);
    ASSERT_TRUE(w.ok());
    JournalIndexBuildRecord rec;
    rec.build_id = 0;
    rec.state = static_cast<uint8_t>(IndexBuildState::kPending);
    rec.op_index = 4;  // no op records at all
    rec.index_name = "ix";
    rec.target = "people";
    rec.columns = {"dept"};
    TB_ASSERT_OK((*w)->Append(rec));
    w->reset();
    EXPECT_TRUE(AuditMutationJournal(path).status().IsDataLoss());
    std::remove(path.c_str());
  }
}

TEST_F(MutationJournalTest, ResumeRefusesIncompatibleSpecs) {
  std::string path = TempPath("mut_incompat.tbj");
  std::remove(path.c_str());
  MutationWorkloadOptions opts;
  opts.journal_path = path;
  auto db1 = FreshDb();
  ASSERT_TRUE(RunMutationWorkload(db1.get(), Spec(), opts).ok());

  MutationWorkloadSpec other = Spec();
  other.seed = 8;  // a different op stream entirely
  opts.resume = true;
  auto db2 = FreshDb();
  auto r = RunMutationWorkload(db2.get(), other, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();
  std::remove(path.c_str());
}

TEST_F(MutationJournalTest, ResumeOnDivergedStateIsDataLoss) {
  // Replaying a journal against a database that does not reproduce the
  // journaled outcomes must refuse loudly, not continue from garbage.
  std::string path = TempPath("mut_diverged.tbj");
  std::remove(path.c_str());
  MutationWorkloadOptions opts;
  opts.journal_path = path;
  auto db1 = FreshDb();
  ASSERT_TRUE(RunMutationWorkload(db1.get(), Spec(), opts).ok());

  opts.resume = true;
  auto db2 = testing::TinyDb::Make(2500, 20).db;  // a different database
  auto r = RunMutationWorkload(db2.get(), Spec(), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
  std::remove(path.c_str());
}

// ------------------------------------------------------ kill-resume (chaos)
//
// The PR-4 kill-resume harness extended to the write path: a mutation run
// is SIGKILLed by the journal crash hook — including *at* index-build state
// transitions, whose records count toward the hook like query records do —
// and the resumed run must re-execute to the same bits, heal the journal to
// byte-identity, and land the same index fingerprint.

class MutationKillResumeTest : public MutationWorkloadTest {
 protected:
  /// Forks a child that rebuilds the database from scratch and runs the
  /// journaled mutation workload until the TABBENCH_JOURNAL_CRASH_AFTER
  /// hook SIGKILLs it right after the `crash_after`-th fsync'd append (op
  /// records and build transitions both count).
  static void RunChildUntilKilled(const std::string& journal_path,
                                  const MutationWorkloadSpec& spec,
                                  const MutationWorkloadOptions& opts,
                                  size_t crash_after) {
    std::remove(journal_path.c_str());
    ASSERT_EQ(setenv("TABBENCH_JOURNAL_CRASH_AFTER",
                     std::to_string(crash_after).c_str(), 1),
              0);
    pid_t pid = fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      // Child: a fresh deterministic database, exactly what resume gets.
      auto db = FreshDb();
      MutationWorkloadOptions child_opts = opts;
      child_opts.journal_path = journal_path;
      child_opts.pool = nullptr;
      auto r = RunMutationWorkload(db.get(), spec, child_opts);
      (void)r;
      _exit(42);  // reaching here means the hook never fired — loud failure
    }
    unsetenv("TABBENCH_JOURNAL_CRASH_AFTER");
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child survived to exit code "
        << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    auto loaded = LoadRunJournal(journal_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->records.size() + loaded->index_builds.size(),
              crash_after);
  }
};

TEST_F(MutationKillResumeTest, SigkilledMutationRunResumesBitIdentical) {
  MutationWorkloadSpec spec = Spec();
  MutationWorkloadOptions opts;
  opts.collect_estimates = true;
  opts.fault_scope_salt = 5;
  opts.builds.push_back(BuildReq("ix_kr", 15));

  // The uninterrupted run: baseline result + the clean journal bytes.
  std::string clean_path = TempPath("mut_kr_clean.tbj");
  std::remove(clean_path.c_str());
  MutationWorkloadOptions clean_opts = opts;
  clean_opts.journal_path = clean_path;
  auto db0 = FreshDb();
  auto baseline = RunMutationWorkload(db0.get(), spec, clean_opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  Rng rng(20260808);
  for (int round = 0; round < 3; ++round) {
    size_t crash_after = 1 + static_cast<size_t>(rng.Uniform(spec.num_ops));
    std::string path =
        TempPath("mut_kr_" + std::to_string(round) + ".tbj");
    SCOPED_TRACE("crash_after=" + std::to_string(crash_after));
    RunChildUntilKilled(path, spec, opts, crash_after);

    MutationWorkloadOptions resume_opts = opts;
    resume_opts.journal_path = path;
    resume_opts.resume = true;
    auto db = FreshDb();
    auto resumed = RunMutationWorkload(db.get(), spec, resume_opts);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectIdentical(*baseline, *resumed);

    // The healed journal is byte-identical to one never interrupted, and
    // passes the no-lost-record audit.
    EXPECT_EQ(Slurp(path), Slurp(clean_path));
    auto audit = AuditMutationJournal(path);
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();
    std::remove(path.c_str());
  }
  std::remove(clean_path.c_str());
}

TEST_F(MutationKillResumeTest, SigkillAtEveryBuildTransitionResumesExact) {
  // The acceptance gate: SIGKILL *at* each of the seven lifecycle
  // transitions (pending, scanning, backfilling, catching-up, live,
  // dropping, dropped — the drop pair covers mid-drop kills) and resume to
  // the same index bytes. The append ordinal of transition k in the clean
  // journal is op_index + k + 1: op_index query records plus the k earlier
  // transitions precede it in the append order.
  MutationWorkloadSpec spec = Spec();
  MutationWorkloadOptions opts;
  opts.fault_scope_salt = 3;
  opts.builds.push_back(BuildReq("ix_steps", 15, /*then_drop=*/true,
                                 /*drop_op=*/100));

  std::string clean_path = TempPath("mut_tr_clean.tbj");
  std::remove(clean_path.c_str());
  MutationWorkloadOptions clean_opts = opts;
  clean_opts.journal_path = clean_path;
  auto db0 = FreshDb();
  auto baseline = RunMutationWorkload(db0.get(), spec, clean_opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto clean = LoadRunJournal(clean_path);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->index_builds.size(), 7u);

  for (size_t k = 0; k < clean->index_builds.size(); ++k) {
    const JournalIndexBuildRecord& tr = clean->index_builds[k];
    size_t crash_after = tr.op_index + k + 1;
    std::string path = TempPath("mut_tr_" + std::to_string(k) + ".tbj");
    SCOPED_TRACE(std::string("killed entering state ") +
                 IndexBuildStateName(static_cast<IndexBuildState>(tr.state)));
    RunChildUntilKilled(path, spec, opts, crash_after);

    // The journal really ends at this transition.
    auto torn = LoadRunJournal(path);
    ASSERT_TRUE(torn.ok()) << torn.status().ToString();
    ASSERT_EQ(torn->index_builds.size(), k + 1);
    EXPECT_EQ(torn->index_builds.back().state, tr.state);

    MutationWorkloadOptions resume_opts = opts;
    resume_opts.journal_path = path;
    resume_opts.resume = true;
    auto db = FreshDb();
    auto resumed = RunMutationWorkload(db.get(), spec, resume_opts);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectIdentical(*baseline, *resumed);
    EXPECT_EQ(resumed->build_outcomes[0].fingerprint,
              baseline->build_outcomes[0].fingerprint);

    EXPECT_EQ(Slurp(path), Slurp(clean_path));
    auto audit = AuditMutationJournal(path);
    ASSERT_TRUE(audit.ok()) << audit.status().ToString();
    std::remove(path.c_str());
  }
  std::remove(clean_path.c_str());
}

TEST_F(MutationKillResumeTest, SigkilledRunUnderStorageFaultsResumesExact) {
  // Full gauntlet: latched storage-mutation faults plus a SIGKILL. The
  // fault schedule is a pure function of (salt, op index), so the resumed
  // tail re-draws exactly what the dead process would have.
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_insert=unavailable@prob:0.05:13; "
      "storage.btree_insert=unavailable@prob:0.05:29"));
  MutationWorkloadSpec spec = Spec();
  MutationWorkloadOptions opts;
  opts.fault_scope_salt = 11;
  opts.builds.push_back(BuildReq("ix_fault", 20));

  auto db0 = FreshDb();
  auto baseline = RunMutationWorkload(db0.get(), spec, opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  // The probability schedule actually bit somewhere.
  uint64_t failed = 0;
  for (const auto& oo : baseline->ops) failed += oo.failed ? 1 : 0;
  EXPECT_GT(failed, 0u);

  std::string path = TempPath("mut_kr_faulted.tbj");
  RunChildUntilKilled(path, spec, opts, 40);

  MutationWorkloadOptions resume_opts = opts;
  resume_opts.journal_path = path;
  resume_opts.resume = true;
  auto db = FreshDb();
  auto resumed = RunMutationWorkload(db.get(), spec, resume_opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdentical(*baseline, *resumed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabbench
