#include <gtest/gtest.h>

#include <memory>

#include <algorithm>
#include <map>
#include <set>

#include "core/configurations.h"
#include "engine/database.h"
#include "test_util.h"

namespace tabbench {
namespace {

using testing::TinyDb;

/// Brute-force reference evaluation for the TinyDb join-aggregate queries,
/// independent of the executor: materializes tables via raw heap scans.
std::vector<Tuple> ScanAll(const Database& db, const std::string& table) {
  std::vector<Tuple> rows;
  const HeapTable* heap = db.FindHeap(table);
  auto cur = heap->Scan(nullptr);
  Tuple t;
  while (cur.Next(&t, nullptr)) rows.push_back(t);
  return rows;
}

std::multiset<std::string> RowsAsStrings(const std::vector<Tuple>& rows) {
  std::multiset<std::string> out;
  for (const auto& r : rows) out.insert(r.ToString());
  return out;
}

class ExecTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tiny_ = std::make_unique<TinyDb>(TinyDb::Make(4000, 40));
  }
  static void TearDownTestSuite() {
    tiny_.reset();
  }
  Database* db() { return tiny_->db.get(); }

  static std::unique_ptr<TinyDb> tiny_;
};

std::unique_ptr<TinyDb> ExecTest::tiny_;

TEST_F(ExecTest, SeqScanFilterCount) {
  // Reference: count people in dept 7.
  int64_t expected = 0;
  for (const auto& r : ScanAll(*db(), "people")) {
    if (r.at(1) == Value(int64_t{7})) ++expected;
  }
  auto res = db()->Run(
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 7 "
      "GROUP BY p.dept");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].at(1).as_int(), expected);
}

TEST_F(ExecTest, EmptyFilterYieldsNoGroups) {
  auto res = db()->Run(
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 99999 "
      "GROUP BY p.dept");
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->rows.empty());
}

TEST_F(ExecTest, ScalarAggregateOnEmptyInputYieldsZeroRow) {
  auto res = db()->Run("SELECT COUNT(*) FROM people p WHERE p.dept = 99999");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].at(0).as_int(), 0);
}

TEST_F(ExecTest, JoinAggregateMatchesReference) {
  // COUNT per region of people joined to depts.
  std::map<int64_t, int64_t> expected;
  auto people = ScanAll(*db(), "people");
  auto depts = ScanAll(*db(), "depts");
  std::map<int64_t, int64_t> dept_region;
  for (const auto& d : depts) dept_region[d.at(0).as_int()] = d.at(1).as_int();
  for (const auto& p : people) {
    auto it = dept_region.find(p.at(1).as_int());
    if (it != dept_region.end()) expected[it->second]++;
  }

  auto res = db()->Run(
      "SELECT d.region, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY d.region");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  std::map<int64_t, int64_t> actual;
  for (const auto& r : res->rows) {
    actual[r.at(0).as_int()] = r.at(1).as_int();
  }
  EXPECT_EQ(actual, expected);
}

TEST_F(ExecTest, CountDistinctMatchesReference) {
  std::map<int64_t, std::set<std::string>> expected;
  for (const auto& p : ScanAll(*db(), "people")) {
    expected[p.at(1).as_int()].insert(p.at(2).as_string());
  }
  auto res = db()->Run(
      "SELECT p.dept, COUNT(DISTINCT p.city) FROM people p GROUP BY p.dept");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->rows.size(), expected.size());
  for (const auto& r : res->rows) {
    EXPECT_EQ(static_cast<size_t>(r.at(1).as_int()),
              expected[r.at(0).as_int()].size());
  }
}

TEST_F(ExecTest, InFrequencySubqueryMatchesReference) {
  // People whose city occurs fewer than 20 times.
  std::map<std::string, int64_t> city_freq;
  for (const auto& p : ScanAll(*db(), "people")) {
    city_freq[p.at(2).as_string()]++;
  }
  int64_t expected = 0;
  for (const auto& p : ScanAll(*db(), "people")) {
    if (city_freq[p.at(2).as_string()] < 20) ++expected;
  }
  auto res = db()->Run(
      "SELECT COUNT(*) FROM people p WHERE p.city IN "
      "(SELECT city FROM people GROUP BY city HAVING COUNT(*) < 20)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->rows.size(), 1u);
  EXPECT_EQ(res->rows[0].at(0).as_int(), expected);
}

TEST_F(ExecTest, InFrequencyEqualitySubquery) {
  std::map<std::string, int64_t> city_freq;
  for (const auto& p : ScanAll(*db(), "people")) {
    city_freq[p.at(2).as_string()]++;
  }
  int64_t f = city_freq.begin()->second;
  int64_t expected = 0;
  for (const auto& [c, n] : city_freq) {
    if (n == f) expected += n;
  }
  auto res = db()->Run(
      "SELECT COUNT(*) FROM people p WHERE p.city IN "
      "(SELECT city FROM people GROUP BY city HAVING COUNT(*) = " +
      std::to_string(f) + ")");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->rows[0].at(0).as_int(), expected);
}

TEST_F(ExecTest, SelfJoinCountsPairs) {
  // Pairs of people in the same dept with a filter on one side's city:
  // reference via group counts.
  std::map<int64_t, int64_t> dept_count;
  int64_t expected = 0;
  std::vector<Tuple> people = ScanAll(*db(), "people");
  for (const auto& p : people) dept_count[p.at(1).as_int()]++;
  for (const auto& p : people) {
    if (p.at(2) == Value(std::string("city3"))) {
      expected += dept_count[p.at(1).as_int()];
    }
  }
  auto res = db()->Run(
      "SELECT COUNT(*) FROM people a, people b "
      "WHERE a.dept = b.dept AND a.city = 'city3'");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->rows[0].at(0).as_int(), expected);
}

TEST_F(ExecTest, ResultsIdenticalAcrossConfigurations) {
  // The physical design must never change results: run a battery of
  // queries under P and under 1C and compare row multisets.
  const std::vector<std::string> queries = {
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND d.region = 2 GROUP BY p.city",
      "SELECT p.dept, COUNT(DISTINCT p.city) FROM people p WHERE "
      "p.score = 17 GROUP BY p.dept",
      "SELECT d.region, COUNT(*) FROM people p, depts d WHERE p.city = "
      "d.city GROUP BY d.region",
      "SELECT COUNT(*) FROM people p WHERE p.city IN (SELECT city FROM "
      "people GROUP BY city HAVING COUNT(*) < 10)",
  };
  std::vector<std::multiset<std::string>> p_results;
  ASSERT_TRUE(db()->ResetToPrimary().ok());
  for (const auto& q : queries) {
    auto res = db()->Run(q);
    ASSERT_TRUE(res.ok()) << q << ": " << res.status().ToString();
    ASSERT_FALSE(res->timed_out) << q;
    p_results.push_back(RowsAsStrings(res->rows));
  }
  auto rep = db()->ApplyConfiguration(Make1CConfig(db()->catalog()));
  ASSERT_TRUE(rep.ok()) << rep.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto res = db()->Run(queries[i]);
    ASSERT_TRUE(res.ok()) << queries[i];
    EXPECT_EQ(RowsAsStrings(res->rows), p_results[i]) << queries[i];
  }
  ASSERT_TRUE(db()->ResetToPrimary().ok());
}

TEST_F(ExecTest, SimulatedTimeAdvancesWithWork) {
  db()->buffer_pool()->Clear();
  auto res = db()->Run("SELECT COUNT(*) FROM people p WHERE p.dept = 1");
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->sim_seconds, 0.0);
  EXPECT_GT(res->pages_read, 0u);
  EXPECT_GT(res->tuples_processed, 0u);
}

TEST_F(ExecTest, WarmBufferPoolIsCheaper) {
  db()->buffer_pool()->Clear();
  auto cold = db()->Run("SELECT COUNT(*) FROM depts d WHERE d.region = 1");
  ASSERT_TRUE(cold.ok());
  auto warm = db()->Run("SELECT COUNT(*) FROM depts d WHERE d.region = 1");
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->sim_seconds, cold->sim_seconds);
}

TEST(ExecTimeoutTest, TimeoutTripsAndClamps) {
  // A database whose timeout is microscopic: the first page access trips it.
  DatabaseOptions opts;
  opts.cost.timeout_seconds = 1e-7;
  Database db2(opts);
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d", true, 8}};
  t.primary_key = {"a"};
  ASSERT_TRUE(db2.CreateTable(t).ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(db2.Insert("t", Tuple({Value(i)})).ok());
  }
  ASSERT_TRUE(db2.FinishLoad().ok());
  auto res = db2.Run("SELECT COUNT(*) FROM t WHERE t.a = 5");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->timed_out);
  EXPECT_TRUE(res->rows.empty());
  EXPECT_DOUBLE_EQ(res->sim_seconds, opts.cost.timeout_seconds);
}

TEST(ExecSpillTest, LargeAggregateChargesSpillIo) {
  // Tiny work_mem forces the group hash table to spill; the same aggregate
  // with plenty of work_mem charges less.
  auto run_with_workmem = [](size_t pages) {
    DatabaseOptions opts;
    opts.buffer_pool_pages = 1024;
    opts.cost.work_mem_pages = pages;
    opts.cost.page_io_seconds = 0.01;
    opts.cost.random_io_seconds = 0.001;
    Database db(opts);
    TableDef t;
    t.name = "t";
    t.columns = {{"a", TypeId::kInt, "d", true, 8},
                 {"b", TypeId::kString, "s", true, 40}};
    t.primary_key = {"a"};
    EXPECT_TRUE(db.CreateTable(t).ok());
    for (int64_t i = 0; i < 20000; ++i) {
      EXPECT_TRUE(
          db.Insert("t", Tuple({Value(i), Value("group_" + std::to_string(i))}))
              .ok());
    }
    EXPECT_TRUE(db.FinishLoad().ok());
    auto res = db.Run("SELECT t.b, COUNT(*) FROM t GROUP BY t.b");
    EXPECT_TRUE(res.ok());
    return res->sim_seconds;
  };
  double spilled = run_with_workmem(2);
  double in_memory = run_with_workmem(100000);
  EXPECT_GT(spilled, in_memory * 1.2);
}

}  // namespace
}  // namespace tabbench
