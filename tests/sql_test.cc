#include <gtest/gtest.h>

#include "datagen/nref_gen.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace tabbench {
namespace {

// ------------------------------------------------------------------ Lexer

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto toks = Lex("select FROM Group bY");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 5u);  // + EOF
  EXPECT_EQ((*toks)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[3].text, "BY");
}

TEST(LexerTest, IdentifiersKeepCase) {
  auto toks = Lex("Lineitem l_orderkey");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*toks)[0].text, "Lineitem");
  EXPECT_EQ((*toks)[1].text, "l_orderkey");
}

TEST(LexerTest, NumbersAndSymbols) {
  auto toks = Lex("a = 42 AND b = 3.5 < > ( ) , . *");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].type, TokenType::kInt);
  EXPECT_EQ((*toks)[2].int_value, 42);
  EXPECT_EQ((*toks)[6].type, TokenType::kDouble);
  EXPECT_DOUBLE_EQ((*toks)[6].double_value, 3.5);
}

TEST(LexerTest, NegativeNumbers) {
  auto toks = Lex("x = -7");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].int_value, -7);
}

TEST(LexerTest, StringLiteralsWithEscapes) {
  auto toks = Lex("name = 'Simian Virus 40' AND x = 'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[2].type, TokenType::kString);
  EXPECT_EQ((*toks)[2].text, "Simian Virus 40");
  EXPECT_EQ((*toks)[6].text, "it's");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Lex("x = 'oops").ok());
}

TEST(LexerTest, UnexpectedCharacterFails) {
  EXPECT_FALSE(Lex("a ; b").ok());
}

// ----------------------------------------------------------------- Parser

TEST(ParserTest, MinimalSelect) {
  auto stmt = ParseSelect("SELECT a FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].column.column, "a");
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0].table, "t");
  EXPECT_EQ(stmt->from[0].alias, "t");
}

TEST(ParserTest, AliasesAndQualifiedColumns) {
  auto stmt = ParseSelect("SELECT x.a, y.b FROM t x, u AS y WHERE x.a = y.b");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->from[0].alias, "x");
  EXPECT_EQ(stmt->from[1].alias, "y");
  ASSERT_EQ(stmt->where.size(), 1u);
  EXPECT_EQ(stmt->where[0].kind, AstPredicate::Kind::kColEqCol);
  EXPECT_EQ(stmt->where[0].left.qualifier, "x");
}

TEST(ParserTest, CountStarAndCountDistinct) {
  auto stmt = ParseSelect(
      "SELECT t.a, COUNT(*), COUNT(DISTINCT t.b) FROM t GROUP BY t.a");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->items[1].kind, AstSelectItem::Kind::kCountStar);
  EXPECT_EQ(stmt->items[2].kind, AstSelectItem::Kind::kCountDistinct);
  EXPECT_EQ(stmt->items[2].column.column, "b");
  ASSERT_EQ(stmt->group_by.size(), 1u);
}

TEST(ParserTest, Literals) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE a = 5 AND b = 2.5 AND c = 'xy'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where[0].literal, Value(int64_t{5}));
  EXPECT_EQ(stmt->where[1].literal, Value(2.5));
  EXPECT_EQ(stmt->where[2].literal, Value(std::string("xy")));
}

TEST(ParserTest, InFrequencySubquery) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE t.c IN "
      "(SELECT c FROM t GROUP BY c HAVING COUNT(*) < 4)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  ASSERT_EQ(stmt->where.size(), 1u);
  const auto& p = stmt->where[0];
  EXPECT_EQ(p.kind, AstPredicate::Kind::kColInSubquery);
  EXPECT_EQ(p.sub.table, "t");
  EXPECT_EQ(p.sub.column, "c");
  EXPECT_EQ(p.sub.cmp, '<');
  EXPECT_EQ(p.sub.k, 4);
}

TEST(ParserTest, InSubqueryWithEquality) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE c IN "
      "(SELECT c FROM t GROUP BY c HAVING COUNT(*) = 10)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where[0].sub.cmp, '=');
  EXPECT_EQ(stmt->where[0].sub.k, 10);
}

TEST(ParserTest, SubqueryGroupByMismatchFails) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE c IN "
                           "(SELECT c FROM t GROUP BY d "
                           "HAVING COUNT(*) < 4)")
                   .ok());
}

TEST(ParserTest, ErrorCases) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP a").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra junk").ok());
  EXPECT_FALSE(ParseSelect("SELECT COUNT(a) FROM t").ok());
}

TEST(ParserTest, ToSqlRoundTrips) {
  const char* queries[] = {
      "SELECT t.lineage, COUNT(DISTINCT t2.nref_id) FROM taxonomy t, "
      "taxonomy t2, source s WHERE t.lineage = t2.lineage AND "
      "t.nref_id = s.nref_id AND s.p_name = 'Simian Virus 40' "
      "GROUP BY t.lineage",
      "SELECT r.a, COUNT(*) FROM t r, u s WHERE r.a = s.b AND r.a IN "
      "(SELECT a FROM t GROUP BY a HAVING COUNT(*) < 4) GROUP BY r.a",
  };
  for (const char* q : queries) {
    auto stmt = ParseSelect(q);
    ASSERT_TRUE(stmt.ok()) << q;
    std::string sql = stmt->ToSql();
    auto again = ParseSelect(sql);
    ASSERT_TRUE(again.ok()) << sql;
    EXPECT_EQ(again->ToSql(), sql);
  }
}

// ----------------------------------------------------------------- Binder

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override { AddNrefSchema(&catalog_); }
  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesQualifiedColumns) {
  auto q = ParseAndBind(
      "SELECT t.lineage, COUNT(*) FROM taxonomy t, source s "
      "WHERE t.nref_id = s.nref_id GROUP BY t.lineage",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->num_relations(), 2);
  ASSERT_EQ(q->joins.size(), 1u);
  EXPECT_EQ(q->joins[0].left.rel, 0);
  EXPECT_EQ(q->joins[0].right.rel, 1);
  EXPECT_EQ(q->joins[0].left.table, "taxonomy");
}

TEST_F(BinderTest, SelfJoinAliasesResolveToDistinctOccurrences) {
  auto q = ParseAndBind(
      "SELECT t.lineage, COUNT(DISTINCT t2.nref_id) FROM taxonomy t, "
      "taxonomy t2 WHERE t.lineage = t2.lineage GROUP BY t.lineage",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->joins[0].left.rel, 0);
  EXPECT_EQ(q->joins[0].right.rel, 1);
  EXPECT_NE(q->joins[0].left.rel, q->joins[0].right.rel);
}

TEST_F(BinderTest, UnqualifiedUniqueColumnResolves) {
  auto q = ParseAndBind("SELECT lineage FROM taxonomy", catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select[0].column.column, "lineage");
}

TEST_F(BinderTest, AmbiguousColumnFails) {
  // nref_id exists in both tables.
  auto q = ParseAndBind(
      "SELECT nref_id FROM taxonomy t, source s "
      "WHERE t.nref_id = s.nref_id GROUP BY nref_id",
      catalog_);
  EXPECT_FALSE(q.ok());
}

TEST_F(BinderTest, UnknownTableFails) {
  EXPECT_TRUE(ParseAndBind("SELECT a FROM nope", catalog_)
                  .status()
                  .IsNotFound());
}

TEST_F(BinderTest, UnknownColumnFails) {
  EXPECT_FALSE(ParseAndBind("SELECT t.bogus FROM taxonomy t", catalog_).ok());
}

TEST_F(BinderTest, DuplicateAliasFails) {
  EXPECT_FALSE(
      ParseAndBind("SELECT t.lineage FROM taxonomy t, source t", catalog_)
          .ok());
}

TEST_F(BinderTest, LiteralTypeMismatchFails) {
  EXPECT_FALSE(ParseAndBind(
                   "SELECT t.lineage FROM taxonomy t WHERE t.lineage = 42",
                   catalog_)
                   .ok());
}

TEST_F(BinderTest, JoinTypeMismatchFails) {
  // lineage (string) vs nref_id (int).
  EXPECT_FALSE(
      ParseAndBind("SELECT t.lineage, COUNT(*) FROM taxonomy t, source s "
                   "WHERE t.lineage = s.nref_id GROUP BY t.lineage",
                   catalog_)
          .ok());
}

TEST_F(BinderTest, SelectColumnNotInGroupByFails) {
  EXPECT_FALSE(
      ParseAndBind("SELECT t.lineage, t.species_name, COUNT(*) FROM "
                   "taxonomy t GROUP BY t.lineage",
                   catalog_)
          .ok());
}

TEST_F(BinderTest, InSubqueryBinds) {
  auto q = ParseAndBind(
      "SELECT t.lineage, COUNT(*) FROM taxonomy t WHERE t.lineage IN "
      "(SELECT lineage FROM taxonomy GROUP BY lineage "
      "HAVING COUNT(*) < 4) GROUP BY t.lineage",
      catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->in_preds.size(), 1u);
  EXPECT_EQ(q->in_preds[0].sub_table, "taxonomy");
  EXPECT_EQ(q->in_preds[0].cmp, '<');
  EXPECT_EQ(q->in_preds[0].k, 4);
}

TEST_F(BinderTest, InSubqueryTypeMismatchFails) {
  EXPECT_FALSE(ParseAndBind(
                   "SELECT t.lineage, COUNT(*) FROM taxonomy t WHERE "
                   "t.taxon_id IN (SELECT lineage FROM taxonomy GROUP BY "
                   "lineage HAVING COUNT(*) < 4) GROUP BY t.lineage",
                   catalog_)
                   .ok());
}

TEST_F(BinderTest, NonPositiveHavingBoundFails) {
  EXPECT_FALSE(ParseAndBind(
                   "SELECT t.lineage, COUNT(*) FROM taxonomy t WHERE "
                   "t.lineage IN (SELECT lineage FROM taxonomy GROUP BY "
                   "lineage HAVING COUNT(*) < 0) GROUP BY t.lineage",
                   catalog_)
                   .ok());
}

TEST_F(BinderTest, IsAggregateDetection) {
  auto plain = ParseAndBind("SELECT lineage FROM taxonomy", catalog_);
  ASSERT_TRUE(plain.ok());
  EXPECT_FALSE(plain->IsAggregate());
  auto agg = ParseAndBind(
      "SELECT lineage, COUNT(*) FROM taxonomy GROUP BY lineage", catalog_);
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->IsAggregate());
}

TEST_F(BinderTest, ColumnsOfCollectsPerRelation) {
  auto q = ParseAndBind(
      "SELECT t.lineage, COUNT(*) FROM taxonomy t, source s "
      "WHERE t.nref_id = s.nref_id AND s.p_name = 'x' GROUP BY t.lineage",
      catalog_);
  ASSERT_TRUE(q.ok());
  auto cols0 = q->ColumnsOf(0);
  auto cols1 = q->ColumnsOf(1);
  EXPECT_EQ(cols0.size(), 2u);  // nref_id, lineage
  EXPECT_EQ(cols1.size(), 2u);  // nref_id, p_name
}

}  // namespace
}  // namespace tabbench
