#include <gtest/gtest.h>

#include <algorithm>

#include "stats/column_stats.h"
#include "stats/histogram.h"
#include "stats/table_stats.h"
#include "storage/heap_table.h"
#include "storage/page_store.h"
#include "storage/stats_collector.h"
#include "util/rng.h"
#include "util/zipf.h"

namespace tabbench {
namespace {

std::vector<Value> IntValues(std::vector<int64_t> xs) {
  std::vector<Value> out;
  for (auto x : xs) out.emplace_back(x);
  return out;
}

// ------------------------------------------------------------- Histogram

TEST(HistogramTest, EmptyInput) {
  EquiDepthHistogram h = EquiDepthHistogram::Build({}, 8);
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.EstimateEqRows(Value(int64_t{1})), 0.0);
}

TEST(HistogramTest, SingleValue) {
  auto h = EquiDepthHistogram::Build(IntValues({5, 5, 5, 5}), 4);
  EXPECT_EQ(h.total_rows(), 4u);
  EXPECT_DOUBLE_EQ(h.EstimateEqRows(Value(int64_t{5})), 4.0);
}

TEST(HistogramTest, BucketsCoverAllRows) {
  std::vector<Value> vals;
  for (int64_t i = 0; i < 1000; ++i) vals.emplace_back(i % 97);
  std::sort(vals.begin(), vals.end());
  auto h = EquiDepthHistogram::Build(vals, 16);
  uint64_t total = 0;
  for (const auto& b : h.buckets()) total += b.rows;
  EXPECT_EQ(total, 1000u);
}

TEST(HistogramTest, ValueNeverStraddlesBuckets) {
  // 10 copies each of 50 values: bucket boundaries must fall between values.
  std::vector<Value> vals;
  for (int64_t v = 0; v < 50; ++v) {
    for (int k = 0; k < 10; ++k) vals.emplace_back(v);
  }
  auto h = EquiDepthHistogram::Build(vals, 7);
  for (size_t i = 1; i < h.buckets().size(); ++i) {
    EXPECT_LT(h.buckets()[i - 1].upper, h.buckets()[i].upper);
  }
  // Each estimate should be ~10 (exact when distinct counts are right).
  for (int64_t v = 0; v < 50; v += 7) {
    EXPECT_NEAR(h.EstimateEqRows(Value(v)), 10.0, 5.0);
  }
}

TEST(HistogramTest, AboveMaxEstimatesZero) {
  auto h = EquiDepthHistogram::Build(IntValues({1, 2, 3}), 2);
  EXPECT_EQ(h.EstimateEqRows(Value(int64_t{99})), 0.0);
}

TEST(HistogramTest, LeEstimateMonotone) {
  std::vector<Value> vals;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    vals.emplace_back(static_cast<int64_t>(rng.Uniform(1000)));
  }
  std::sort(vals.begin(), vals.end());
  auto h = EquiDepthHistogram::Build(vals, 10);
  double prev = -1;
  for (int64_t x = 0; x <= 1000; x += 100) {
    double est = h.EstimateLeRows(Value(x));
    EXPECT_GE(est, prev - 1e9 * 0);  // non-strict monotonicity
    EXPECT_GE(est, 0.0);
    EXPECT_LE(est, 500.0);
    prev = est;
  }
}

class HistogramBucketSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(HistogramBucketSweep, EstimatesSumApproxTotal) {
  size_t buckets = GetParam();
  std::vector<Value> vals;
  Rng rng(buckets);
  for (int i = 0; i < 2000; ++i) {
    vals.emplace_back(static_cast<int64_t>(rng.Uniform(200)));
  }
  std::sort(vals.begin(), vals.end());
  auto h = EquiDepthHistogram::Build(vals, buckets);
  // Summing the equality estimate over every distinct value should land
  // near the true row count (property of depth/distinct bookkeeping).
  double sum = 0;
  for (int64_t v = 0; v < 200; ++v) sum += h.EstimateEqRows(Value(v));
  EXPECT_NEAR(sum, 2000.0, 2000.0 * 0.25);
}

INSTANTIATE_TEST_SUITE_P(Buckets, HistogramBucketSweep,
                         ::testing::Values(1, 4, 16, 64, 256));

// ----------------------------------------------------------- ColumnStats

ColumnStats MakeStats(const std::vector<int64_t>& data) {
  // Route through the real collector via a heap table.
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  for (int64_t v : data) heap.Append(Tuple({Value(v)}));
  TableStats ts = CollectTableStats(heap, {"c"});
  return ts.columns.at("c");
}

TEST(ColumnStatsTest, BasicCounts) {
  ColumnStats cs = MakeStats({1, 1, 2, 3, 3, 3});
  EXPECT_EQ(cs.row_count, 6u);
  EXPECT_EQ(cs.num_distinct, 3u);
  EXPECT_EQ(cs.min, Value(int64_t{1}));
  EXPECT_EQ(cs.max, Value(int64_t{3}));
}

TEST(ColumnStatsTest, McvsAreExact) {
  ColumnStats cs = MakeStats({7, 7, 7, 7, 8, 8, 9});
  EXPECT_DOUBLE_EQ(cs.EstimateEqRows(Value(int64_t{7})), 4.0);
  EXPECT_DOUBLE_EQ(cs.EstimateEqRows(Value(int64_t{8})), 2.0);
}

TEST(ColumnStatsTest, NullCounting) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  heap.Append(Tuple({Value(int64_t{1})}));
  heap.Append(Tuple({Value()}));
  heap.Append(Tuple({Value()}));
  TableStats ts = CollectTableStats(heap, {"c"});
  EXPECT_EQ(ts.columns.at("c").null_count, 2u);
  EXPECT_EQ(ts.columns.at("c").num_distinct, 1u);
}

TEST(ColumnStatsTest, FreqOfFreq) {
  // Frequencies: value 1 x3, value 2 x3, value 3 x1.
  ColumnStats cs = MakeStats({1, 1, 1, 2, 2, 2, 3});
  // freq 1 -> one distinct value; freq 3 -> two distinct values.
  EXPECT_EQ(cs.DistinctWithFreqEq(1), 1u);
  EXPECT_EQ(cs.DistinctWithFreqEq(3), 2u);
  EXPECT_EQ(cs.DistinctWithFreqLess(3), 1u);
  EXPECT_DOUBLE_EQ(cs.FracRowsValueFreqLess(2), 1.0 / 7.0);
  EXPECT_DOUBLE_EQ(cs.FracRowsValueFreqEq(3), 6.0 / 7.0);
}

TEST(ColumnStatsTest, FreqExamplesHaveStatedFrequencies) {
  std::vector<int64_t> data;
  for (int64_t v = 0; v < 10; ++v) {
    for (int64_t k = 0; k <= v; ++k) data.push_back(v);
  }
  ColumnStats cs = MakeStats(data);
  for (const auto& [f, v] : cs.freq_examples) {
    // Value v occurs exactly f times by construction (value x occurs x+1
    // times).
    EXPECT_EQ(static_cast<uint64_t>(v.as_int()) + 1, f);
  }
}

TEST(ColumnStatsTest, ExampleWithFreqNearPicksClosest) {
  std::vector<int64_t> data;
  for (int64_t v = 0; v < 8; ++v) {
    int64_t reps = int64_t{1} << v;  // freq 1,2,4,...,128
    for (int64_t k = 0; k < reps; ++k) data.push_back(v);
  }
  ColumnStats cs = MakeStats(data);
  uint64_t f = 0;
  Value v = cs.ExampleWithFreqNear(120, &f);
  EXPECT_EQ(f, 128u);
  EXPECT_EQ(v, Value(int64_t{7}));
}

TEST(ColumnStatsTest, AvgFreq) {
  ColumnStats cs = MakeStats({1, 1, 2, 2, 3, 3});
  EXPECT_DOUBLE_EQ(cs.AvgFreq(), 2.0);
}

TEST(DatabaseStatsTest, Lookup) {
  DatabaseStats s;
  s.tables["t"].row_count = 10;
  s.tables["t"].columns["c"].row_count = 10;
  EXPECT_NE(s.FindTable("t"), nullptr);
  EXPECT_EQ(s.FindTable("u"), nullptr);
  EXPECT_NE(s.FindColumn("t", "c"), nullptr);
  EXPECT_EQ(s.FindColumn("t", "d"), nullptr);
  EXPECT_EQ(s.FindColumn("u", "c"), nullptr);
}

TEST(StatsCollectorTest, PagesAndWidths) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt, TypeId::kString}), &store);
  for (int i = 0; i < 1000; ++i) {
    heap.Append(Tuple({Value(int64_t{i}), Value(std::string(50, 'x'))}));
  }
  TableStats ts = CollectTableStats(heap, {"a", "b"});
  EXPECT_EQ(ts.row_count, 1000u);
  EXPECT_GT(ts.pages, 1u);
  EXPECT_GT(ts.avg_row_bytes, 50.0);
  EXPECT_EQ(ts.columns.size(), 2u);
}

TEST(StatsCollectorTest, ZipfColumnHasWideFreqSpread) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  Rng rng(17);
  ZipfSampler zipf(500, 1.0);
  for (int i = 0; i < 20000; ++i) {
    heap.Append(Tuple({Value(static_cast<int64_t>(zipf.Sample(&rng)))}));
  }
  TableStats ts = CollectTableStats(heap, {"c"});
  const ColumnStats& cs = ts.columns.at("c");
  ASSERT_FALSE(cs.freq_examples.empty());
  uint64_t min_f = cs.freq_examples.front().first;
  uint64_t max_f = cs.freq_examples.back().first;
  EXPECT_GE(max_f, min_f * 100) << "zipf(1) should span 2+ orders";
}

}  // namespace
}  // namespace tabbench
