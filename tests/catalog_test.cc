#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "catalog/configuration.h"
#include "datagen/nref_gen.h"
#include "datagen/tpch_gen.h"

namespace tabbench {
namespace {

TableDef SimpleTable() {
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d1", true, 8},
               {"b", TypeId::kInt, "d2", true, 8},
               {"c", TypeId::kString, "", false, 20}};
  t.primary_key = {"a"};
  return t;
}

TEST(TableDefTest, ColumnIndex) {
  TableDef t = SimpleTable();
  EXPECT_EQ(t.ColumnIndex("a"), 0);
  EXPECT_EQ(t.ColumnIndex("c"), 2);
  EXPECT_EQ(t.ColumnIndex("zz"), -1);
}

TEST(TableDefTest, IndexableColumnsSkipsNonIndexable) {
  TableDef t = SimpleTable();
  EXPECT_EQ(t.IndexableColumns(), (std::vector<int>{0, 1}));
}

TEST(TableDefTest, PrimaryKeyColumns) {
  TableDef t = SimpleTable();
  EXPECT_EQ(t.PrimaryKeyColumns(), (std::vector<int>{0}));
}

TEST(CatalogTest, AddAndFind) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SimpleTable()).ok());
  EXPECT_NE(c.FindTable("t"), nullptr);
  EXPECT_EQ(c.FindTable("nope"), nullptr);
  EXPECT_TRUE(c.GetTable("nope").status().IsNotFound());
}

TEST(CatalogTest, RejectsDuplicates) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(SimpleTable()).ok());
  EXPECT_FALSE(c.AddTable(SimpleTable()).ok());
}

TEST(CatalogTest, RejectsBadPrimaryKey) {
  Catalog c;
  TableDef t = SimpleTable();
  t.primary_key = {"missing"};
  EXPECT_TRUE(c.AddTable(t).IsInvalidArgument());
}

TEST(CatalogTest, RejectsBadForeignKey) {
  Catalog c;
  TableDef t = SimpleTable();
  t.foreign_keys = {{{"a", "b"}, "other", {"x"}}};  // arity mismatch
  EXPECT_TRUE(c.AddTable(t).IsInvalidArgument());
}

TEST(CatalogTest, JoinCompatibilityRequiresSharedDomain) {
  Catalog c;
  AddNrefSchema(&c);
  // Same "nref" domain, different tables.
  EXPECT_TRUE(c.JoinCompatible({"protein", "nref_id"},
                               {"source", "nref_id"}));
  // lineage vs name: different domains.
  EXPECT_FALSE(c.JoinCompatible({"taxonomy", "lineage"},
                                {"taxonomy", "species_name"}));
  // Non-indexable sequence never joins.
  EXPECT_FALSE(c.JoinCompatible({"protein", "sequence"},
                                {"protein", "sequence"}));
}

TEST(CatalogTest, DomainOf) {
  Catalog c;
  AddNrefSchema(&c);
  EXPECT_EQ(c.DomainOf({"taxonomy", "lineage"}), "lineage");
  EXPECT_EQ(c.DomainOf({"missing", "x"}), "");
}

TEST(CatalogTest, JoinCompatiblePairsSelfJoinToggle) {
  Catalog c;
  AddNrefSchema(&c);
  auto with_self = c.JoinCompatiblePairs(/*include_self_joins=*/true);
  auto without = c.JoinCompatiblePairs(/*include_self_joins=*/false);
  EXPECT_GT(with_self.size(), without.size());
  for (const auto& [a, b] : without) {
    EXPECT_FALSE(a.table == b.table && a.column == b.column);
  }
}

TEST(CatalogTest, ForeignKeyJoinFindsDeclaredEdges) {
  Catalog c;
  AddTpchSchema(&c);
  auto fk = c.ForeignKeyJoin("lineitem", "orders");
  ASSERT_EQ(fk.size(), 1u);
  EXPECT_EQ(fk[0].first.column, "l_orderkey");
  EXPECT_EQ(fk[0].second.column, "o_orderkey");
  // Composite FK lineitem -> partsupp.
  auto fk2 = c.ForeignKeyJoin("lineitem", "partsupp");
  EXPECT_EQ(fk2.size(), 2u);
  // No FK orders -> lineitem in that direction.
  EXPECT_TRUE(c.ForeignKeyJoin("orders", "lineitem").empty());
}

TEST(CatalogTest, IndexableColumnsExcludeSequence) {
  Catalog c;
  AddNrefSchema(&c);
  for (const auto& ref : c.IndexableColumns()) {
    EXPECT_NE(ref.column, "sequence");
  }
}

// ----------------------------------------------------------- Configuration

TEST(ConfigurationTest, HasIndexComparesTargetAndColumns) {
  Configuration c;
  c.indexes.push_back({"i1", "t", {"a", "b"}, false});
  EXPECT_TRUE(c.HasIndex({"other_name", "t", {"a", "b"}, false}));
  EXPECT_FALSE(c.HasIndex({"i1", "t", {"b", "a"}, false}));
}

TEST(ConfigurationTest, CountIndexesByWidthSkipsPrimary) {
  Configuration c;
  c.indexes.push_back({"pk", "t", {"a"}, /*is_primary=*/true});
  c.indexes.push_back({"i1", "t", {"a"}, false});
  c.indexes.push_back({"i2", "t", {"a", "b"}, false});
  c.indexes.push_back({"i3", "u", {"a"}, false});
  EXPECT_EQ(c.CountIndexes("t", 1), 1);
  EXPECT_EQ(c.CountIndexes("t", 2), 1);
  EXPECT_EQ(c.CountIndexes("t", 3), 0);
  EXPECT_EQ(c.CountIndexes("u", 1), 1);
}

TEST(ViewDefTest, ViewColumnIndex) {
  ViewDef v;
  v.projection = {{"t", "a", "t_a"}, {"u", "b", "u_b"}};
  EXPECT_EQ(v.ViewColumnIndex("t", "a"), 0);
  EXPECT_EQ(v.ViewColumnIndex("u", "b"), 1);
  EXPECT_EQ(v.ViewColumnIndex("t", "b"), -1);
}

}  // namespace
}  // namespace tabbench
