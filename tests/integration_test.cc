#include <gtest/gtest.h>

#include <memory>

#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/report.h"
#include "core/runner.h"
#include "core/sampling.h"
#include "test_util.h"

namespace tabbench {
namespace {

/// End-to-end checks of the benchmark protocol on a small NREF instance.
/// These mirror the paper's qualitative claims at miniature scale:
/// configurations never change answers, 1C improves on P, sampling
/// preserves the family, System A declines NREF3J.
class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    owner_ = testing::MakeMiniNref(/*scale_inverse=*/1600.0);
    db_ = owner_.get();
  }
  static void TearDownTestSuite() {
    owner_.reset();
    db_ = nullptr;
  }
  // Owning handle; db_ stays a raw alias so call sites read naturally.
  static std::unique_ptr<Database> owner_;
  static Database* db_;
};

std::unique_ptr<Database> IntegrationTest::owner_;
Database* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, SamplingPreservesSizeAndMembership) {
  QueryFamily fam = GenerateNref2J(db_->catalog(), db_->stats());
  ASSERT_GT(fam.queries.size(), 20u);
  ASSERT_TRUE(db_->ResetToPrimary().ok());
  auto sampled = SampleFamily(fam, db_, 20, /*seed=*/5);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  EXPECT_EQ(sampled->queries.size(), 20u);
  // Every sampled query is a member of the family.
  for (const auto& q : sampled->queries) {
    bool found = false;
    for (const auto& orig : fam.queries) {
      if (orig.sql == q.sql) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(IntegrationTest, SamplingIsDeterministic) {
  QueryFamily fam = GenerateNref2J(db_->catalog(), db_->stats());
  auto s1 = SampleFamily(fam, db_, 15, 9);
  auto s2 = SampleFamily(fam, db_, 15, 9);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (size_t i = 0; i < 15; ++i) {
    EXPECT_EQ(s1->queries[i].sql, s2->queries[i].sql);
  }
}

TEST_F(IntegrationTest, SamplingCoversCostSpectrum) {
  QueryFamily fam = GenerateNref2J(db_->catalog(), db_->stats());
  ASSERT_TRUE(db_->ResetToPrimary().ok());
  auto sampled = SampleFamily(fam, db_, 20, 5);
  ASSERT_TRUE(sampled.ok());
  // The sample must include both cheap and expensive queries (stratified):
  // compare min and max estimated cost within the sample.
  double lo = 1e18, hi = 0;
  for (const auto& q : sampled->queries) {
    auto e = db_->Estimate(q.sql);
    ASSERT_TRUE(e.ok());
    lo = std::min(lo, *e);
    hi = std::max(hi, *e);
  }
  EXPECT_GT(hi, lo * 3) << "sample collapsed to one cost class";
}

TEST_F(IntegrationTest, RunWorkloadCollectsTimingsAndEstimates) {
  QueryFamily fam = GenerateNref2J(db_->catalog(), db_->stats());
  ASSERT_TRUE(db_->ResetToPrimary().ok());
  auto sampled = SampleFamily(fam, db_, 8, 3);
  ASSERT_TRUE(sampled.ok());
  RunOptions opts;
  opts.collect_estimates = true;
  auto res = RunWorkload(db_, sampled->Sql(), opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->timings.size(), 8u);
  EXPECT_EQ(res->estimates.size(), 8u);
  for (const auto& t : res->timings) {
    EXPECT_GE(t.seconds, 0.0);
  }
  EXPECT_GT(res->total_clamped_seconds, 0.0);
}

TEST_F(IntegrationTest, OneColumnConfigImprovesWorkload) {
  QueryFamily fam = GenerateNref2J(db_->catalog(), db_->stats());
  ExperimentOptions opts;
  opts.workload_size = 12;
  FamilyExperiment exp(db_, fam, opts);
  ASSERT_TRUE(exp.Prepare().ok());
  auto runs = exp.RunStandard(nullptr);  // P and 1C
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  ASSERT_EQ(runs->size(), 2u);
  const auto& p = (*runs)[0];
  const auto& one_c = (*runs)[1];
  EXPECT_EQ(p.config_name, "P");
  EXPECT_EQ(one_c.config_name, "1C");
  EXPECT_LT(one_c.result.total_clamped_seconds,
            p.result.total_clamped_seconds);
  EXPECT_LE(one_c.result.timeouts, p.result.timeouts);
}

TEST_F(IntegrationTest, SystemADeclinesNref3J) {
  QueryFamily fam = GenerateNref3J(db_->catalog(), db_->stats());
  ASSERT_GT(fam.queries.size(), 10u);
  ExperimentOptions opts;
  opts.workload_size = 12;
  FamilyExperiment exp(db_, fam, opts);
  ASSERT_TRUE(exp.Prepare().ok());
  auto rec = exp.Recommend(SystemAProfile());
  EXPECT_TRUE(rec.status().IsNotFound()) << "System A must fail on NREF3J";
}

TEST_F(IntegrationTest, SystemBRecommendsForNref3J) {
  QueryFamily fam = GenerateNref3J(db_->catalog(), db_->stats());
  ExperimentOptions opts;
  opts.workload_size = 12;
  FamilyExperiment exp(db_, fam, opts);
  ASSERT_TRUE(exp.Prepare().ok());
  auto rec = exp.Recommend(SystemBProfile());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec->config.indexes.empty());
  // The benchmark's budget rule: no recommendation may exceed 1C's size.
  EXPECT_LE(rec->est_pages, exp.SpaceBudgetPages());
  // Paper Tables 2-3: nothing wider than 4 columns.
  for (const auto& idx : rec->config.indexes) {
    EXPECT_LE(idx.columns.size(), 4u);
  }
}

TEST_F(IntegrationTest, RecommendedConfigBuildsAndRuns) {
  QueryFamily fam = GenerateNref3J(db_->catalog(), db_->stats());
  ExperimentOptions opts;
  opts.workload_size = 10;
  FamilyExperiment exp(db_, fam, opts);
  ASSERT_TRUE(exp.Prepare().ok());
  auto rec = exp.Recommend(SystemBProfile());
  ASSERT_TRUE(rec.ok());
  auto runs = exp.RunStandard(&rec->config);
  ASSERT_TRUE(runs.ok()) << runs.status().ToString();
  ASSERT_EQ(runs->size(), 3u);
  EXPECT_EQ((*runs)[1].config_name, "R");
  // R should not be worse than P (it was tuned on exactly this workload).
  EXPECT_LE((*runs)[1].result.total_clamped_seconds,
            (*runs)[0].result.total_clamped_seconds * 1.05);
}

TEST_F(IntegrationTest, EstimateCurvesOrderedLikeActuals) {
  // EP vs E1C: the optimizer must know 1C is better, even if it is
  // conservative about how much (Fig. 10's qualitative content).
  QueryFamily fam = GenerateNref3J(db_->catalog(), db_->stats());
  ExperimentOptions opts;
  opts.workload_size = 10;
  FamilyExperiment exp(db_, fam, opts);
  ASSERT_TRUE(exp.Prepare().ok());
  ASSERT_TRUE(db_->ResetToPrimary().ok());
  auto ep = EstimateWorkload(db_, exp.workload().Sql());
  ASSERT_TRUE(ep.ok());
  ASSERT_TRUE(
      db_->ApplyConfiguration(Make1CConfig(db_->catalog())).ok());
  auto e1c = EstimateWorkload(db_, exp.workload().Sql());
  ASSERT_TRUE(e1c.ok());
  double sum_p = 0, sum_1c = 0;
  for (double v : *ep) sum_p += v;
  for (double v : *e1c) sum_1c += v;
  EXPECT_LT(sum_1c, sum_p);
  ASSERT_TRUE(db_->ResetToPrimary().ok());
}

TEST_F(IntegrationTest, HypotheticalMoreConservativeThanTarget) {
  // H(q,1C,P) should overstate costs relative to E(q,1C) measured in 1C —
  // the Section 5 discrepancy, aggregated over a small workload.
  QueryFamily fam = GenerateNref3J(db_->catalog(), db_->stats());
  ExperimentOptions opts;
  opts.workload_size = 10;
  FamilyExperiment exp(db_, fam, opts);
  ASSERT_TRUE(exp.Prepare().ok());
  Configuration one_c = Make1CConfig(db_->catalog());
  ASSERT_TRUE(db_->ResetToPrimary().ok());
  HypotheticalRules rules;  // B-style conservatism
  rules.credit_index_only = false;
  auto h1c = HypotheticalWorkload(db_, exp.workload().Sql(), one_c, rules);
  ASSERT_TRUE(h1c.ok());
  ASSERT_TRUE(db_->ApplyConfiguration(one_c).ok());
  auto e1c = EstimateWorkload(db_, exp.workload().Sql());
  ASSERT_TRUE(e1c.ok());
  double sum_h = 0, sum_e = 0;
  for (double v : *h1c) sum_h += v;
  for (double v : *e1c) sum_e += v;
  EXPECT_GT(sum_h, sum_e);
  ASSERT_TRUE(db_->ResetToPrimary().ok());
}

}  // namespace
}  // namespace tabbench
