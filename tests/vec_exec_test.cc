#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/configurations.h"
#include "core/nref_families.h"
#include "core/runner.h"
#include "core/sampling.h"
#include "core/tpch_families.h"
#include "exec/vec/vec_executor.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/thread_pool.h"

namespace tabbench {
namespace {

/// The vectorized engine's contract: on every plan it covers, simulated
/// time, page/tuple counters, timeout behavior, and the evolution of the
/// buffer pool across a workload are bit-identical to the Volcano executor
/// — serial or with any number of helper threads. These tests run the same
/// workload on identically-seeded databases through both engines and
/// require exact (double ==, no tolerance) agreement query by query.

std::multiset<std::string> Rows(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) out.insert(row.ToString());
  return out;
}

/// Runs `sql` back-to-back on `db`'s shared pool (the Database::Run
/// pattern: fresh context per query, warm pool across queries) through the
/// chosen engine. `pool` enables intra-query parallelism.
std::vector<QueryResult> RunAll(Database* db,
                                const std::vector<std::string>& sql,
                                bool vectorized, ThreadPool* pool = nullptr,
                                size_t morsel_pages = 32) {
  std::vector<QueryResult> out;
  db->buffer_pool()->Clear();
  for (const auto& q : sql) {
    ExecContext ctx =
        db->MakeSessionContext(db->buffer_pool(), db->options().cost);
    Result<QueryResult> r = [&] {
      if (!vectorized) return db->RunWithContext(q, &ctx);
      vec::VecExecOptions vopts;
      vopts.pool = pool;
      vopts.morsel_pages = morsel_pages;
      return db->RunWithContextVectorized(q, &ctx, vopts);
    }();
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    out.push_back(r.ok() ? *r : QueryResult{});
  }
  return out;
}

void ExpectBitIdentical(const std::vector<QueryResult>& volcano,
                        const std::vector<QueryResult>& vec,
                        const std::vector<std::string>& sql) {
  ASSERT_EQ(volcano.size(), vec.size());
  for (size_t i = 0; i < volcano.size(); ++i) {
    SCOPED_TRACE(sql[i]);
    // Exact double equality — the whole point of the charge-trace design.
    EXPECT_EQ(volcano[i].sim_seconds, vec[i].sim_seconds);
    EXPECT_EQ(volcano[i].pages_read, vec[i].pages_read);
    EXPECT_EQ(volcano[i].tuples_processed, vec[i].tuples_processed);
    EXPECT_EQ(volcano[i].timed_out, vec[i].timed_out);
    // Aggregate outputs are emitted in a different (but deterministic)
    // group order than Volcano's hash iteration; rows compare as multisets.
    EXPECT_EQ(Rows(volcano[i]), Rows(vec[i]));
  }
}

/// TinyDb queries covering every vectorized operator: scan+filter+project,
/// grouped/distinct aggregation, hash join, IN-subquery sets, and (once a
/// configuration is applied) index scans and index nested-loop joins.
std::vector<std::string> TinyQueries() {
  return {
      "SELECT p.id, p.city FROM people p WHERE p.dept = 3",
      "SELECT p.city, COUNT(*) FROM people p GROUP BY p.city",
      "SELECT p.city, COUNT(DISTINCT p.dept) FROM people p "
      "WHERE p.score = 17 GROUP BY p.city",
      "SELECT COUNT(*) FROM people p WHERE p.score = 123456",  // empty
      "SELECT p.id, d.region FROM people p, depts d "
      "WHERE p.dept = d.dept_id AND d.region = 2",
      "SELECT d.region, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY d.region",
      "SELECT p.id FROM people p WHERE p.city IN (SELECT city FROM "
      "people GROUP BY city HAVING COUNT(*) < 10)",
  };
}

TEST(VecExecTest, GoldenTinyDbSerialVectorized) {
  testing::TinyDb a = testing::TinyDb::Make();
  testing::TinyDb b = testing::TinyDb::Make();
  std::vector<std::string> sql = TinyQueries();
  auto volcano = RunAll(a.db.get(), sql, /*vectorized=*/false);
  auto vec = RunAll(b.db.get(), sql, /*vectorized=*/true);
  ExpectBitIdentical(volcano, vec, sql);
}

TEST(VecExecTest, GoldenTinyDbParallelVectorized) {
  testing::TinyDb a = testing::TinyDb::Make();
  testing::TinyDb b = testing::TinyDb::Make();
  std::vector<std::string> sql = TinyQueries();
  auto volcano = RunAll(a.db.get(), sql, /*vectorized=*/false);
  ThreadPool pool(8);
  // Small morsels force many claim-loop iterations per scan.
  auto vec = RunAll(b.db.get(), sql, /*vectorized=*/true, &pool,
                    /*morsel_pages=*/4);
  ExpectBitIdentical(volcano, vec, sql);
}

TEST(VecExecTest, GoldenTinyDbWithIndexesParallelVectorized) {
  testing::TinyDb a = testing::TinyDb::Make();
  testing::TinyDb b = testing::TinyDb::Make();
  Configuration one_c = Make1CConfig(a.db->catalog());
  ASSERT_TRUE(a.db->ApplyConfiguration(one_c).ok());
  ASSERT_TRUE(b.db->ApplyConfiguration(one_c).ok());
  std::vector<std::string> sql = TinyQueries();
  auto volcano = RunAll(a.db.get(), sql, /*vectorized=*/false);
  ThreadPool pool(8);
  auto vec = RunAll(b.db.get(), sql, /*vectorized=*/true, &pool,
                    /*morsel_pages=*/4);
  ExpectBitIdentical(volcano, vec, sql);
}

/// One figure-workload golden run per database family, under a built
/// configuration so index plans appear.
struct GoldenCase {
  const char* name;
  bool tpch;
};

class VecGoldenTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(VecGoldenTest, FigureWorkloadBitIdentical) {
  GoldenCase c = GetParam();
  auto make = [&] {
    return c.tpch ? testing::MakeMiniTpch(4000.0, 1.0)
                  : testing::MakeMiniNref(4000.0);
  };
  std::unique_ptr<Database> a = make();
  std::unique_ptr<Database> b = make();
  QueryFamily family = c.tpch ? GenerateTpch3Js(a->catalog(), a->stats())
                              : GenerateNref2J(a->catalog(), a->stats());
  ASSERT_FALSE(family.queries.empty());
  auto sampled = SampleFamily(family, a.get(), 8, /*seed=*/7);
  ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
  std::vector<std::string> sql = sampled->Sql();

  Configuration one_c = Make1CConfig(a->catalog());
  ASSERT_TRUE(a->ApplyConfiguration(one_c).ok());
  ASSERT_TRUE(b->ApplyConfiguration(one_c).ok());

  auto volcano = RunAll(a.get(), sql, /*vectorized=*/false);
  ThreadPool pool(8);
  auto vec = RunAll(b.get(), sql, /*vectorized=*/true, &pool,
                    /*morsel_pages=*/8);
  ExpectBitIdentical(volcano, vec, sql);
}

INSTANTIATE_TEST_SUITE_P(Families, VecGoldenTest,
                         ::testing::Values(GoldenCase{"nref2j", false},
                                           GoldenCase{"tpch3js", true}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// ------------------------------------------------------------- timeouts

TEST(VecExecTest, TimeoutBitIdentical) {
  // A timeout small enough that the big scan trips it mid-flight: both
  // engines must censor at the same simulated instant and leave the same
  // pool state for the *next* query.
  testing::TinyDb a = testing::TinyDb::Make();
  testing::TinyDb b = testing::TinyDb::Make();
  CostParams tight = a.db->options().cost;
  tight.timeout_seconds = tight.page_io_seconds * 3;

  std::vector<std::string> sql = {
      "SELECT p.city, COUNT(*) FROM people p GROUP BY p.city",
      "SELECT p.id, p.city FROM people p WHERE p.dept = 3",
  };
  std::vector<QueryResult> volcano;
  a.db->buffer_pool()->Clear();
  for (const auto& q : sql) {
    ExecContext ctx = a.db->MakeSessionContext(a.db->buffer_pool(), tight);
    auto r = a.db->RunWithContext(q, &ctx);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    volcano.push_back(*r);
  }
  ASSERT_TRUE(volcano[0].timed_out);

  std::vector<QueryResult> vec;
  b.db->buffer_pool()->Clear();
  ThreadPool pool(4);
  for (const auto& q : sql) {
    ExecContext ctx = b.db->MakeSessionContext(b.db->buffer_pool(), tight);
    vec::VecExecOptions vopts;
    vopts.pool = &pool;
    vopts.morsel_pages = 4;
    auto r = b.db->RunWithContextVectorized(q, &ctx, vopts);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    vec.push_back(*r);
  }
  ExpectBitIdentical(volcano, vec, sql);
  EXPECT_TRUE(vec[0].timed_out);
  EXPECT_TRUE(vec[0].rows.empty());
}

// ---------------------------------------------------------- cancellation

TEST(VecExecTest, CancelledTokenStopsMorselDispatch) {
  testing::TinyDb t = testing::TinyDb::Make();
  CancellationToken token;
  token.RequestCancel();
  ExecContext ctx = t.db->MakeSessionContext(t.db->buffer_pool(),
                                             t.db->options().cost);
  ctx.set_cancellation_token(token);
  ThreadPool pool(4);
  vec::VecExecOptions vopts;
  vopts.pool = &pool;
  vopts.morsel_pages = 2;
  auto r = t.db->RunWithContextVectorized(
      "SELECT p.id, p.city FROM people p WHERE p.dept = 3", &ctx, vopts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

// ----------------------------------------------------------------- chaos

/// Disarms every fault point on scope exit so a failing ASSERT cannot leak
/// an armed schedule into later tests.
struct FaultGuard {
  FaultGuard() { FaultRegistry::Global().DisarmAll(); }
  ~FaultGuard() { FaultRegistry::Global().DisarmAll(); }
};

TEST(VecExecTest, MorselFaultCensorsQueryAndRunContinues) {
  FaultGuard guard;
  testing::TinyDb t = testing::TinyDb::Make();
  // Fault schedules are per-query FaultScopes (RunWorkload seeds one per
  // query), so kOnce fires in every query: all of them must be censored at
  // the timeout cost with the run itself completing.
  FaultSpec spec;
  spec.point = "exec.vec.morsel";
  spec.code = Status::Code::kUnavailable;
  spec.trigger = FaultSpec::Trigger::kOnce;
  ASSERT_TRUE(FaultRegistry::Global().Arm(spec).ok());

  std::vector<std::string> sql = {
      "SELECT p.id, p.city FROM people p WHERE p.dept = 3",
      "SELECT p.city, COUNT(*) FROM people p GROUP BY p.city",
  };
  RunOptions opts;
  opts.executor = QueryExecutor::kVectorized;
  auto res = RunWorkload(t.db.get(), sql, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->timings.size(), 2u);
  EXPECT_EQ(res->failures, 2u);
  EXPECT_TRUE(res->timings[0].failed);

  // Disarmed, the same workload runs clean again (nothing leaked).
  FaultRegistry::Global().DisarmAll();
  auto clean = RunWorkload(t.db.get(), sql, opts);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->failures, 0u);
  EXPECT_FALSE(clean->timings[0].timed_out);
}

TEST(VecExecTest, ProbabilisticMorselFaultPartiallyCensors) {
  FaultGuard guard;
  testing::TinyDb t = testing::TinyDb::Make();
  // Probability trigger: per-query scopes draw independent (seeded,
  // reproducible) decisions, so some queries are censored and others
  // survive — the failure-isolation contract under intra-query parallelism.
  FaultSpec spec;
  spec.point = "exec.vec.morsel";
  spec.code = Status::Code::kUnavailable;
  spec.trigger = FaultSpec::Trigger::kProbability;
  spec.probability = 0.5;
  spec.seed = 11;
  ASSERT_TRUE(FaultRegistry::Global().Arm(spec).ok());

  std::vector<std::string> sql;
  for (int i = 0; i < 6; ++i) {
    sql.push_back("SELECT p.id, p.city FROM people p WHERE p.dept = " +
                  std::to_string(i));
  }
  RunOptions opts;
  opts.executor = QueryExecutor::kVectorized;
  ThreadPool pool(4);
  opts.intra_query_pool = &pool;
  auto res = RunWorkload(t.db.get(), sql, opts);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->timings.size(), sql.size());
  EXPECT_GT(res->failures, 0u);
  EXPECT_LT(res->failures, sql.size());
}

// ------------------------------------------------------------ edge cases

TEST(VecExecTest, EmptyTableScanAndScalarAggregate) {
  Database db;
  TableDef def;
  def.name = "t";
  ColumnDef ca;
  ca.name = "a";
  ColumnDef cb;
  cb.name = "b";
  def.columns = {ca, cb};
  def.primary_key = {"a"};
  ASSERT_TRUE(db.CreateTable(def).ok());
  ASSERT_TRUE(db.FinishLoad().ok());

  std::vector<std::string> sql = {
      "SELECT t.a FROM t WHERE t.b = 1",
      "SELECT COUNT(*) FROM t",
  };
  for (const auto& q : sql) {
    ExecContext cv = db.MakeSessionContext(db.buffer_pool(), db.options().cost);
    auto volcano = db.RunWithContext(q, &cv);
    ASSERT_TRUE(volcano.ok()) << q;
    ExecContext cx = db.MakeSessionContext(db.buffer_pool(), db.options().cost);
    auto vec = db.RunWithContextVectorized(q, &cx, {});
    ASSERT_TRUE(vec.ok()) << q;
    EXPECT_EQ(volcano->sim_seconds, vec->sim_seconds) << q;
    EXPECT_EQ(Rows(*volcano), Rows(*vec)) << q;
  }
}

}  // namespace
}  // namespace tabbench
