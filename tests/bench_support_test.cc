// Unit tests for the bench-support BENCH_*.json plumbing: the writer /
// validator round-trip, the schema gate's error cases, and the
// duplicate-benchmark-name rejection that keeps trajectory plots from
// silently averaging two runs reported under one name.

#include <fstream>
#include <string>
#include <vector>

#include "bench_support.h"
#include "gtest/gtest.h"

namespace tabbench {
namespace bench {
namespace {

std::string TempPath(const std::string& leaf) {
  return ::testing::TempDir() + "/" + leaf;
}

BenchJsonReport MakeReport(const std::string& name) {
  BenchJsonReport r;
  r.name = name;
  r.queries_per_second = 123.5;
  r.wall_seconds = 0.81;
  r.speedup_vs_serial = 3.25;
  r.thread_count = 4;
  r.git_rev = "deadbeef";
  return r;
}

TEST(BenchJson, WriteThenValidateRoundTripsAndExtractsName) {
  const std::string path = TempPath("BENCH_roundtrip.json");
  ASSERT_TRUE(WriteBenchJsonReport(path, MakeReport("vec_parallel")).ok());
  std::string name;
  Status st = ValidateBenchJsonFile(path, &name);
  EXPECT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(name, "vec_parallel");
  // The name-less overload is the same check.
  EXPECT_TRUE(ValidateBenchJsonFile(path).ok());
}

TEST(BenchJson, MissingFileIsNotFound) {
  std::string name;
  Status st = ValidateBenchJsonFile(TempPath("BENCH_absent.json"), &name);
  EXPECT_EQ(st.code(), Status::Code::kNotFound);
}

TEST(BenchJson, RepeatedJsonKeyIsRejected) {
  const std::string path = TempPath("BENCH_dupkey.json");
  std::ofstream(path) << "{\"name\": \"a\", \"name\": \"b\",\n"
                         "\"queries_per_second\": 1, \"wall_seconds\": 1,\n"
                         "\"speedup_vs_serial\": 1, \"thread_count\": 1,\n"
                         "\"git_rev\": \"x\"}";
  Status st = ValidateBenchJsonFile(path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("duplicate key"), std::string::npos)
      << st.ToString();
}

TEST(BenchJsonSet, DistinctNamesPass) {
  const std::string a = TempPath("BENCH_set_a.json");
  const std::string b = TempPath("BENCH_set_b.json");
  ASSERT_TRUE(WriteBenchJsonReport(a, MakeReport("microbench")).ok());
  ASSERT_TRUE(WriteBenchJsonReport(b, MakeReport("parallel")).ok());
  Status st = ValidateBenchJsonSet({a, b});
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(BenchJsonSet, DuplicateNameAcrossFilesIsRejected) {
  const std::string a = TempPath("BENCH_dup_a.json");
  const std::string b = TempPath("BENCH_dup_b.json");
  ASSERT_TRUE(WriteBenchJsonReport(a, MakeReport("microbench")).ok());
  ASSERT_TRUE(WriteBenchJsonReport(b, MakeReport("microbench")).ok());
  Status st = ValidateBenchJsonSet({a, b});
  ASSERT_EQ(st.code(), Status::Code::kInvalidArgument);
  // The error names the colliding benchmark and both artifacts.
  EXPECT_NE(st.ToString().find("duplicate benchmark name 'microbench'"),
            std::string::npos)
      << st.ToString();
  EXPECT_NE(st.ToString().find(a), std::string::npos) << st.ToString();
  EXPECT_NE(st.ToString().find(b), std::string::npos) << st.ToString();
}

TEST(BenchJsonSet, SameFileListedTwiceIsRejected) {
  const std::string a = TempPath("BENCH_twice.json");
  ASSERT_TRUE(WriteBenchJsonReport(a, MakeReport("totals")).ok());
  EXPECT_EQ(ValidateBenchJsonSet({a, a}).code(),
            Status::Code::kInvalidArgument);
}

TEST(BenchJsonSet, SchemaFailureInAnyMemberFails) {
  const std::string good = TempPath("BENCH_good.json");
  const std::string bad = TempPath("BENCH_bad.json");
  ASSERT_TRUE(WriteBenchJsonReport(good, MakeReport("ok_run")).ok());
  std::ofstream(bad) << "{\"name\": \"broken\"}";
  EXPECT_FALSE(ValidateBenchJsonSet({good, bad}).ok());
}

}  // namespace
}  // namespace bench
}  // namespace tabbench
