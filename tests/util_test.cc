#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <set>

#include "util/cancellation.h"
#include "util/retry.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/zipf.h"

namespace tabbench {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("table foo");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "table foo");
  EXPECT_EQ(st.ToString(), "NotFound: table foo");
}

TEST(StatusTest, TimeoutIsDistinguished) {
  Status st = Status::Timeout("q");
  EXPECT_TRUE(st.IsTimeout());
  EXPECT_FALSE(st.IsNotFound());
  EXPECT_FALSE(Status::OK().IsTimeout());
}

TEST(StatusTest, AllCodesRenderDistinctNames) {
  std::set<std::string> names;
  names.insert(Status::InvalidArgument("").ToString());
  names.insert(Status::NotFound("").ToString());
  names.insert(Status::AlreadyExists("").ToString());
  names.insert(Status::Unsupported("").ToString());
  names.insert(Status::Timeout("").ToString());
  names.insert(Status::ResourceExhausted("").ToString());
  names.insert(Status::Internal("").ToString());
  names.insert(Status::DataLoss("").ToString());
  EXPECT_EQ(names.size(), 8u);
}

TEST(StatusTest, DataLossIsDistinguishedAndPermanent) {
  Status st = Status::DataLoss("checksum mismatch at offset 12");
  EXPECT_TRUE(st.IsDataLoss());
  EXPECT_FALSE(st.IsTransient());  // corruption never clears on retry
  EXPECT_EQ(st.ToString(), "DataLoss: checksum mismatch at offset 12");
}

TEST(StatusTest, FromCodeRoundTripsAndRejectsGarbage) {
  Status dl = Status::DataLoss("x");
  Status rt = Status::FromCode(dl.code(), "x");
  EXPECT_TRUE(rt.IsDataLoss());
  EXPECT_TRUE(Status::FromCode(Status::Code::kOk, "").ok());
  // An out-of-range code (e.g. from a corrupt serialized record) must not
  // alias a real one.
  EXPECT_EQ(Status::FromCode(static_cast<Status::Code>(250), "x").code(),
            Status::Code::kInternal);
}

TEST(StatusTest, TransientCoversExactlyTheRetryableCodes) {
  // Every code, exhaustively: only kUnavailable and kResourceExhausted are
  // transient. kTimeout is the paper's censoring outcome (retrying it would
  // double-charge t_out) and kCancelled is a user decision, so neither
  // retries; the rest are permanent errors.
  EXPECT_FALSE(Status::OK().IsTransient());
  EXPECT_FALSE(Status::InvalidArgument("x").IsTransient());
  EXPECT_FALSE(Status::NotFound("x").IsTransient());
  EXPECT_FALSE(Status::AlreadyExists("x").IsTransient());
  EXPECT_FALSE(Status::Unsupported("x").IsTransient());
  EXPECT_FALSE(Status::Timeout("x").IsTransient());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsTransient());
  EXPECT_FALSE(Status::Internal("x").IsTransient());
  EXPECT_FALSE(Status::Cancelled("x").IsTransient());
  EXPECT_TRUE(Status::Unavailable("x").IsTransient());
  EXPECT_FALSE(Status::DataLoss("x").IsTransient());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.TakeValue(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), "boom");
}

namespace {
Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("nonpositive");
  return x;
}
Result<int> Doubled(int x) {
  int v = 0;
  TB_ASSIGN_OR_RETURN(v, ParsePositive(x));
  return v * 2;
}
Status Use(int x) {
  TB_RETURN_IF_ERROR(Doubled(x).status());
  return Status::OK();
}
}  // namespace

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(-1).status().IsInvalidArgument());
  EXPECT_TRUE(Use(5).ok());
  EXPECT_FALSE(Use(-5).ok());
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversBothEndpoints) {
  Rng rng(7);
  bool lo = false, hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    lo |= (v == 3);
    hi |= (v == 7);
  }
  EXPECT_TRUE(lo);
  EXPECT_TRUE(hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.UniformDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIsRoughlyUnbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(5);
  auto s = rng.SampleWithoutReplacement(10, 10);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(6);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

// ------------------------------------------------------------------ Zipf

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler z(100, 1.0);
  double sum = 0;
  for (size_t i = 0; i < 100; ++i) sum += z.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  ZipfSampler z(1000, 1.0);
  EXPECT_GT(z.Pmf(0), z.Pmf(1));
  EXPECT_GT(z.Pmf(1), z.Pmf(10));
  EXPECT_GT(z.Pmf(10), z.Pmf(999));
}

TEST(ZipfTest, ThetaOneRatioIsHarmonic) {
  ZipfSampler z(100, 1.0);
  EXPECT_NEAR(z.Pmf(0) / z.Pmf(9), 10.0, 1e-6);
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfSampler z(50, 1.0);
  Rng rng(13);
  std::vector<int> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(&rng)];
  for (size_t r : {0u, 1u, 5u, 20u}) {
    double expected = z.Pmf(r) * n;
    EXPECT_NEAR(counts[r], expected, std::max(60.0, expected * 0.1))
        << "rank " << r;
  }
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (size_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Pmf(i), 0.1, 1e-9);
}

class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, HeavierThetaConcentratesMass) {
  double theta = GetParam();
  ZipfSampler z(1000, theta);
  double top10 = 0;
  for (size_t i = 0; i < 10; ++i) top10 += z.Pmf(i);
  // Monotone-in-theta sanity: the top-10 share grows with skew.
  ZipfSampler flat(1000, theta / 2);
  double top10_flat = 0;
  for (size_t i = 0; i < 10; ++i) top10_flat += flat.Pmf(i);
  EXPECT_GT(top10, top10_flat);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfSkewTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2));

// --------------------------------------------------------------- strings

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StringsTest, ToLowerAndStartsWith) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_TRUE(StartsWith("lineitem", "line"));
  EXPECT_FALSE(StartsWith("line", "lineitem"));
}

TEST(StringsTest, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.5), "500.0ms");
  EXPECT_EQ(HumanSeconds(5.0), "5.0s");
  EXPECT_EQ(HumanSeconds(600.0), "10.0min");
  EXPECT_EQ(HumanSeconds(7200.0), "2.0h");
}

TEST(StringsTest, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MB");
}

// ----------------------------------------------------------------- Retry

TEST(RetryTest, BackoffGrowsGeometricallyAndCaps) {
  RetryPolicy p;
  p.initial_backoff_seconds = 0.1;
  p.backoff_multiplier = 2.0;
  p.max_backoff_seconds = 0.5;
  p.jitter_fraction = 0.0;
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(1), 0.1);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(2), 0.2);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(3), 0.4);
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(4), 0.5);  // capped
  EXPECT_DOUBLE_EQ(p.BackoffSeconds(9), 0.5);
}

TEST(RetryTest, JitterIsDeterministicAndBounded) {
  RetryPolicy p;
  p.initial_backoff_seconds = 1.0;
  p.jitter_fraction = 0.25;
  p.seed = 7;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    double a = p.BackoffSeconds(attempt);
    double b = p.BackoffSeconds(attempt);
    EXPECT_DOUBLE_EQ(a, b) << "jitter must be a pure function of the seed";
    double base = std::min(p.max_backoff_seconds,
                           std::pow(p.backoff_multiplier, attempt - 1));
    EXPECT_GE(a, base * 0.75);
    EXPECT_LE(a, base * 1.25);
  }
  RetryPolicy q = p;
  q.seed = 8;
  EXPECT_NE(p.BackoffSeconds(1), q.BackoffSeconds(1));
}

TEST(RetryTest, ShouldRetryHonorsTransienceAndAttemptCap) {
  RetryPolicy p = RetryPolicy::WithAttempts(3);
  EXPECT_TRUE(p.ShouldRetry(Status::Unavailable("x"), 1));
  EXPECT_TRUE(p.ShouldRetry(Status::ResourceExhausted("x"), 2));
  EXPECT_FALSE(p.ShouldRetry(Status::Unavailable("x"), 3));  // attempts spent
  EXPECT_FALSE(p.ShouldRetry(Status::Internal("x"), 1));
  EXPECT_FALSE(p.ShouldRetry(Status::Timeout("x"), 1));
  EXPECT_FALSE(p.ShouldRetry(Status::Cancelled("x"), 1));
  EXPECT_FALSE(p.ShouldRetry(Status::OK(), 1));
}

TEST(RetryTest, SleepWithCancellationCompletesWhenUninterrupted) {
  CancellationToken cancel;
  EXPECT_TRUE(SleepWithCancellation(0.001, cancel).ok());
}

TEST(RetryTest, SleepWithCancellationReturnsCancelledImmediately) {
  CancellationToken cancel;
  cancel.RequestCancel();
  Status st = SleepWithCancellation(60.0, cancel);
  EXPECT_TRUE(st.IsCancelled());
}

TEST(RetryTest, SleepWithCancellationHonorsExpiredDeadline) {
  CancellationToken cancel;
  auto past = std::chrono::steady_clock::now() - std::chrono::seconds(1);
  Status st = SleepWithCancellation(60.0, cancel, past);
  EXPECT_TRUE(st.IsTimeout());
}

TEST(RetryTest, SleepWithCancellationSubMillisecondStillChecksCancel) {
  // Regression test: the old implementation rounded the duration down to
  // whole milliseconds, so a sub-ms sleep (tiny test backoffs) skipped its
  // cancellation check entirely. Every duration — even zero — must observe
  // an already-cancelled token.
  CancellationToken cancel;
  cancel.RequestCancel();
  EXPECT_TRUE(SleepWithCancellation(0.0001, cancel).IsCancelled());
  EXPECT_TRUE(SleepWithCancellation(0.0, cancel).IsCancelled());
}

TEST(RetryTest, SleepWithCancellationSubMillisecondChargesFullDuration) {
  // And the flip side of the same bug: a 0.9ms sleep used to truncate to a
  // zero-length wait, returning immediately. The full duration must elapse.
  CancellationToken cancel;
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(SleepWithCancellation(0.0009, cancel).ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(900));
}

}  // namespace
}  // namespace tabbench
