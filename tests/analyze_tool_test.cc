// Unit tests for tools/analyze — the cross-TU analyzer. Every pass runs on
// fixture programs handed in as in-memory SourceFiles, the same entry point
// the CLI uses, so the tests pin down rule ids, file:line anchors, related
// sites, and the SARIF/baseline plumbing without reading the real tree.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "cfg.h"
#include "cpptok.h"

namespace {

using tabbench_analyze::Analyze;
using tabbench_analyze::ApplyAnnotationFixes;
using tabbench_analyze::BaselineEntry;
using tabbench_analyze::FaultCoverageReport;
using tabbench_analyze::DiffBaseline;
using tabbench_analyze::Finding;
using tabbench_analyze::LayerSpec;
using tabbench_analyze::Options;
using tabbench_analyze::ParseBaselineJson;
using tabbench_analyze::ParseLayerSpec;
using tabbench_analyze::SourceFile;
using tabbench_analyze::ToBaselineJson;
using tabbench_analyze::ToSarif;
using tabbench_analyze::ToText;

std::vector<Finding> RunAnalyze(const std::vector<SourceFile>& files,
                         const Options& opts = {}) {
  return Analyze(files, opts);
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  return static_cast<size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

const Finding* FindRule(const std::vector<Finding>& findings,
                        const std::string& rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) return &f;
  }
  return nullptr;
}

// A four-layer spec mirroring the real layers.txt shape, small enough for
// fixtures: util < core < engine < service, and core must never reach
// service even if someone reorders the list.
Options LayeredOpts() {
  Options opts;
  std::string err;
  const bool ok = ParseLayerSpec(
      "# fixture layers\n"
      "layer util: src/util\n"
      "layer core: src/core\n"
      "layer engine: src/engine\n"
      "layer service: src/service\n"
      "forbid core -> service\n",
      &opts.layers, &err);
  EXPECT_TRUE(ok) << err;
  return opts;
}

// ------------------------------------------------------------- layering

TEST(AnalyzeLayering, DownwardDagIsQuiet) {
  auto findings = RunAnalyze(
      {{"src/util/rng.h", "int Rng();\n"},
       {"src/engine/db.h", "#include \"util/rng.h\"\nint Db();\n"},
       {"src/service/svc.h", "#include \"engine/db.h\"\nint Svc();\n"}},
      LayeredOpts());
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(AnalyzeLayering, UpwardIncludeFiresAtTheIncludeLine) {
  auto findings = RunAnalyze({{"src/service/svc.h", "int Svc();\n"},
                       {"src/util/rng.h",
                        "// helper\n"
                        "#include \"service/svc.h\"\n"
                        "int Rng();\n"}},
                      LayeredOpts());
  ASSERT_EQ(CountRule(findings, "tabbench-layering"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-layering");
  EXPECT_EQ(f->file, "src/util/rng.h");
  EXPECT_EQ(f->line, 2u);
  EXPECT_NE(f->message.find("dependencies must point downward"),
            std::string::npos)
      << f->message;
}

TEST(AnalyzeLayering, ForbiddenEdgeFiresEvenThoughUpwardAnyway) {
  auto findings = RunAnalyze({{"src/service/api.h", "int Api();\n"},
                       {"src/core/bad.h",
                        "#include \"service/api.h\"\n"
                        "int Bad();\n"}},
                      LayeredOpts());
  ASSERT_EQ(CountRule(findings, "tabbench-layering"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-layering");
  EXPECT_EQ(f->file, "src/core/bad.h");
  EXPECT_EQ(f->line, 1u);
  EXPECT_NE(f->message.find("must never include"), std::string::npos)
      << f->message;
  ASSERT_EQ(f->related.size(), 1u);
  EXPECT_EQ(f->related[0].file, "src/service/api.h");
}

TEST(AnalyzeLayering, FilesOutsideEveryLayerAreExempt) {
  auto findings = RunAnalyze({{"src/service/svc.h", "int Svc();\n"},
                       {"tests/x_test.cc",
                        "#include \"service/svc.h\"\nint T();\n"}},
                      LayeredOpts());
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(AnalyzeLayering, IncludeCycleIsOneFindingNamingEveryMember) {
  auto findings = RunAnalyze({{"src/core/a.h", "#include \"core/b.h\"\n"},
                       {"src/core/b.h", "#include \"core/a.h\"\n"}},
                      LayeredOpts());
  ASSERT_EQ(CountRule(findings, "tabbench-include-cycle"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-include-cycle");
  EXPECT_NE(f->message.find("src/core/a.h"), std::string::npos);
  EXPECT_NE(f->message.find("src/core/b.h"), std::string::npos);
  EXPECT_GE(f->related.size(), 2u);  // one site per edge in the cycle
}

// ------------------------------------------------------------ lock-order

TEST(AnalyzeLockOrder, ConsistentNestingIsQuiet) {
  auto findings = RunAnalyze({{"src/service/pair.h",
                        "namespace tabbench {\n"
                        "class Pair {\n"
                        " public:\n"
                        "  void First() {\n"
                        "    MutexLock la(&a_);\n"
                        "    MutexLock lb(&b_);\n"
                        "  }\n"
                        "  void Second() {\n"
                        "    MutexLock la(&a_);\n"
                        "    MutexLock lb(&b_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex a_;\n"
                        "  Mutex b_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-lock-order"), 0u)
      << ToText(findings);
}

TEST(AnalyzeLockOrder, InversionIsOneFindingWithAllFourSites) {
  auto findings = RunAnalyze({{"src/service/pair.h",
                        "namespace tabbench {\n"
                        "class Pair {\n"
                        " public:\n"
                        "  void First() {\n"
                        "    MutexLock la(&a_);\n"
                        "    MutexLock lb(&b_);\n"
                        "  }\n"
                        "  void Second() {\n"
                        "    MutexLock lb(&b_);\n"
                        "    MutexLock la(&a_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex a_;\n"
                        "  Mutex b_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-lock-order"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lock-order");
  EXPECT_NE(f->message.find("Pair::a_"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("Pair::b_"), std::string::npos) << f->message;
  // Both acquisitions of both edges are attached: lines 5, 6, 9, 10.
  std::vector<size_t> lines;
  for (const auto& s : f->related) lines.push_back(s.line);
  std::sort(lines.begin(), lines.end());
  EXPECT_EQ(lines, (std::vector<size_t>{5, 6, 9, 10})) << ToText(findings);
}

TEST(AnalyzeLockOrder, CallUnderLockResolvedThroughMemberType) {
  // Outer::Run holds a_ and calls helper_.Touch() which takes b_;
  // Outer::Reverse nests them the other way round directly.
  auto findings = RunAnalyze({{"src/service/nest.h",
                        "namespace tabbench {\n"
                        "class Helper {\n"
                        " public:\n"
                        "  void Touch() { MutexLock l(&b_); }\n"
                        "  Mutex b_;\n"
                        "};\n"
                        "class Outer {\n"
                        " public:\n"
                        "  void Run() {\n"
                        "    MutexLock l(&a_);\n"
                        "    helper_.Touch();\n"
                        "  }\n"
                        "  void Reverse() {\n"
                        "    MutexLock lb(&helper_.b_);\n"
                        "    MutexLock la(&a_);\n"
                        "  }\n"
                        " private:\n"
                        "  Helper helper_;\n"
                        "  Mutex a_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-lock-order"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lock-order");
  EXPECT_NE(f->message.find("Helper::b_"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("Outer::a_"), std::string::npos) << f->message;
}

TEST(AnalyzeLockOrder, DeclaredEdgeContradictsObservedOrder) {
  // The code only ever takes Svc::mu_ before Pool::mu_, but the annotation
  // declares the opposite; the declared edge joins the graph and closes a
  // cycle, and the finding carries a "declared:" site pointing at it.
  auto findings = RunAnalyze({{"src/service/declared.h",
                        "namespace tabbench {\n"
                        "class Pool {\n"
                        " public:\n"
                        "  void Submit() { MutexLock l(&mu_); }\n"
                        "  Mutex mu_ TB_ACQUIRED_BEFORE(\"Svc::mu_\");\n"
                        "};\n"
                        "class Svc {\n"
                        " public:\n"
                        "  void Go() {\n"
                        "    MutexLock l(&mu_);\n"
                        "    pool_.Submit();\n"
                        "  }\n"
                        " private:\n"
                        "  Pool pool_;\n"
                        "  Mutex mu_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-lock-order"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lock-order");
  bool has_declared_site = false;
  for (const auto& s : f->related) {
    if (s.note.find("declared") != std::string::npos) {
      has_declared_site = true;
    }
  }
  EXPECT_TRUE(has_declared_site) << ToText(findings);
}

TEST(AnalyzeLockOrder, RecursiveAcquisitionIsASelfLoopFinding) {
  auto findings = RunAnalyze({{"src/service/rec.h",
                        "namespace tabbench {\n"
                        "class Rec {\n"
                        " public:\n"
                        "  void Twice() {\n"
                        "    MutexLock a(&mu_);\n"
                        "    { MutexLock b(&mu_); }\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-lock-order"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lock-order");
  EXPECT_NE(f->message.find("recursive acquisition"), std::string::npos)
      << f->message;
}

TEST(AnalyzeLockOrder, LambdaBodiesDoNotAcquireAtTheSubmitSite) {
  // The thread-pool idiom: enqueue a job under mu_ whose body will take
  // mu_ later, on a worker. Deferred execution is not a nested
  // acquisition; flagging it would condemn every Submit call site.
  auto findings = RunAnalyze({{"src/service/defer.h",
                        "namespace tabbench {\n"
                        "class Defer {\n"
                        " public:\n"
                        "  void Go() {\n"
                        "    MutexLock l(&mu_);\n"
                        "    Enqueue([this] { MutexLock l2(&mu_); });\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-lock-order"), 0u)
      << ToText(findings);
}

// ----------------------------------------------------------- status-flow

TEST(AnalyzeStatusFlow, DiscardedStatusLocalFires) {
  auto findings = RunAnalyze({{"src/core/run.cc",
                        "namespace tabbench {\n"
                        "class Runner {\n"
                        " public:\n"
                        "  void Discard() {\n"
                        "    Status s = Step();\n"
                        "    Other();\n"
                        "  }\n"
                        "  int Consulted() {\n"
                        "    Status s = Step();\n"
                        "    if (!s.ok()) return 1;\n"
                        "    return 0;\n"
                        "  }\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-status-local"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-status-local");
  EXPECT_EQ(f->file, "src/core/run.cc");
  EXPECT_EQ(f->line, 5u);
  EXPECT_NE(f->message.find("Runner::Discard"), std::string::npos)
      << f->message;
}

TEST(AnalyzeStatusFlow, ResultDereferencedOnErrorPathFires) {
  auto findings = RunAnalyze({{"src/core/use.cc",
                        "namespace tabbench {\n"
                        "class User {\n"
                        " public:\n"
                        "  int Use() {\n"
                        "    auto r = Make();\n"
                        "    if (!r.ok()) {\n"
                        "      return *r;\n"
                        "    }\n"
                        "    return 0;\n"
                        "  }\n"
                        "  int Fine() {\n"
                        "    auto r = Make();\n"
                        "    if (!r.ok()) return -1;\n"
                        "    return *r;\n"
                        "  }\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-result-on-error"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-result-on-error");
  EXPECT_EQ(f->line, 7u);
  ASSERT_EQ(f->related.size(), 1u);
  EXPECT_EQ(f->related[0].line, 6u);  // the !ok() branch it sits inside
}

TEST(AnalyzeStatusFlow, UseAfterMoveFiresWithTheMoveSite) {
  auto findings = RunAnalyze({{"src/core/mv.cc",
                        "namespace tabbench {\n"
                        "class Mover {\n"
                        " public:\n"
                        "  void Leak() {\n"
                        "    std::string s = Name();\n"
                        "    Consume(std::move(s));\n"
                        "    Log(s);\n"
                        "  }\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-use-after-move"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-use-after-move");
  EXPECT_EQ(f->line, 7u);
  ASSERT_EQ(f->related.size(), 1u);
  EXPECT_EQ(f->related[0].line, 6u);
}

TEST(AnalyzeStatusFlow, ReinitializingAMovedFromObjectIsQuiet) {
  auto findings = RunAnalyze({{"src/core/mv2.cc",
                        "namespace tabbench {\n"
                        "class Mover {\n"
                        " public:\n"
                        "  void Recycle() {\n"
                        "    std::string s = Name();\n"
                        "    Consume(std::move(s));\n"
                        "    s.clear();\n"
                        "    Log(s);\n"
                        "  }\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-use-after-move"), 0u)
      << ToText(findings);
}

// -------------------------------------------------------- nondeterminism

TEST(AnalyzeTaint, WallClockInEngineFires) {
  auto findings = RunAnalyze(
      {{"src/engine/timer.cc",
        "namespace tabbench {\n"
        "class Timer {\n"
        " public:\n"
        "  long Now() {\n"
        "    return std::chrono::system_clock::now()"
        ".time_since_epoch().count();\n"
        "  }\n"
        "};\n"
        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-nondeterminism"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-nondeterminism");
  EXPECT_EQ(f->line, 4u);  // anchored at the function, not the call
  EXPECT_NE(f->message.find("Timer::Now"), std::string::npos) << f->message;
}

TEST(AnalyzeTaint, PropagatesThroughTheCallGraphWithUltimateSource) {
  auto findings = RunAnalyze({{"src/engine/seed.cc",
                        "namespace tabbench {\n"
                        "class Seeded {\n"
                        " public:\n"
                        "  int Helper() { return rand(); }\n"
                        "  int Draw() { return Helper(); }\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-nondeterminism"), 2u)
      << ToText(findings);
  bool draw_has_chain = false;
  for (const Finding& f : findings) {
    if (f.message.find("Seeded::Draw") == std::string::npos) continue;
    for (const auto& s : f.related) {
      if (s.note.find("ultimate source") != std::string::npos) {
        draw_has_chain = true;
      }
    }
  }
  EXPECT_TRUE(draw_has_chain) << ToText(findings);
}

TEST(AnalyzeTaint, SteadyClockAndNonResultLayersAreQuiet) {
  // steady_clock is monotonic scaffolding, not wall-clock nondeterminism,
  // and the pass only guards the simulation's result layers.
  auto findings = RunAnalyze(
      {{"src/engine/ok.cc",
        "namespace tabbench {\n"
        "class Ticker {\n"
        " public:\n"
        "  long Tick() {\n"
        "    return std::chrono::steady_clock::now()"
        ".time_since_epoch().count();\n"
        "  }\n"
        "};\n"
        "}  // namespace tabbench\n"},
       {"src/util/wall.cc",
        "namespace tabbench {\n"
        "class Wall {\n"
        " public:\n"
        "  int Roll() { return rand(); }\n"
        "};\n"
        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-nondeterminism"), 0u)
      << ToText(findings);
}

// ---------------------------------------------------------- suppressions

TEST(AnalyzeSuppressions, NolintOnTheAnchorLineSilencesTheRule) {
  auto findings = RunAnalyze(
      {{"src/core/sup.cc",
        "namespace tabbench {\n"
        "class Sup {\n"
        " public:\n"
        "  void Discard() {\n"
        "    Status s = Step();  // NOLINT(tabbench-status-local) fire+forget\n"
        "    Other();\n"
        "  }\n"
        "};\n"
        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-status-local"), 0u)
      << ToText(findings);
}

// --------------------------------------------------------------- output

TEST(AnalyzeOutput, TextCarriesFileLineRuleAndRelatedSites) {
  auto findings = RunAnalyze({{"src/core/a.h", "#include \"core/b.h\"\n"},
                       {"src/core/b.h", "#include \"core/a.h\"\n"}},
                      LayeredOpts());
  const std::string text = ToText(findings);
  EXPECT_NE(text.find("src/core/a.h:1: [tabbench-include-cycle]"),
            std::string::npos)
      << text;
}

TEST(AnalyzeOutput, SarifIsStructurallySound) {
  auto findings = RunAnalyze({{"src/service/pair.h",
                        "namespace tabbench {\n"
                        "class Pair {\n"
                        " public:\n"
                        "  void First() {\n"
                        "    MutexLock la(&a_);\n"
                        "    MutexLock lb(&b_);\n"
                        "  }\n"
                        "  void Second() {\n"
                        "    MutexLock lb(&b_);\n"
                        "    MutexLock la(&a_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex a_;\n"
                        "  Mutex b_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(findings.size(), 1u) << ToText(findings);
  const std::string sarif = ToSarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"tabbench_analyze\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"tabbench-lock-order\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"physicalLocation\""), std::string::npos);
  EXPECT_NE(sarif.find("\"relatedLocations\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 5"), std::string::npos);
  // Every rule is present in the rules array even when only one fired.
  for (const auto& rule : tabbench_analyze::Rules()) {
    EXPECT_NE(sarif.find(std::string("\"id\": \"") + rule.name + "\""),
              std::string::npos)
        << rule.name;
  }
  // Balanced braces/brackets: a cheap structural-JSON sanity check that
  // catches unterminated strings and missing separators.
  long depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < sarif.size(); ++i) {
    const char c = sarif[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(AnalyzeOutput, RuleTableIsUniqueAndPrefixed) {
  const auto& rules = tabbench_analyze::Rules();
  ASSERT_EQ(rules.size(), 15u);
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(std::string(rules[i].name).rfind("tabbench-", 0), 0u);
    for (size_t j = i + 1; j < rules.size(); ++j) {
      EXPECT_STRNE(rules[i].name, rules[j].name);
    }
  }
}

// -------------------------------------------------------------- baseline

TEST(AnalyzeBaseline, JsonRoundTripAbsorbsEveryFinding) {
  auto findings = RunAnalyze({{"src/core/run.cc",
                        "namespace tabbench {\n"
                        "class Runner {\n"
                        " public:\n"
                        "  void Discard() {\n"
                        "    Status s = Step();\n"
                        "    Other();\n"
                        "  }\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(findings.size(), 1u) << ToText(findings);
  std::vector<BaselineEntry> entries;
  std::string err;
  ASSERT_TRUE(ParseBaselineJson(ToBaselineJson(findings), &entries, &err))
      << err;
  ASSERT_EQ(entries.size(), 1u);
  auto diff = DiffBaseline(findings, entries);
  EXPECT_TRUE(diff.fresh.empty());
  EXPECT_TRUE(diff.stale.empty());
  EXPECT_EQ(diff.matched, 1u);
}

TEST(AnalyzeBaseline, RatchetFreshAndStaleBothSurface) {
  Finding f;
  f.rule = "tabbench-status-local";
  f.file = "src/core/run.cc";
  f.message = "Status local 's' in Runner::Discard is never consulted";
  // Empty baseline: the finding is fresh (would fail CI).
  auto grow = DiffBaseline({f}, {});
  EXPECT_EQ(grow.fresh.size(), 1u);
  // A baseline entry that no longer fires is stale (strict mode fails,
  // the ratchet's only-shrink direction).
  BaselineEntry gone{"tabbench-lock-order", "src/service/x.h",
                     "lock-order inversion (potential deadlock) among: ..."};
  auto shrink = DiffBaseline({}, {gone});
  EXPECT_TRUE(shrink.fresh.empty());
  ASSERT_EQ(shrink.stale.size(), 1u);
  EXPECT_EQ(shrink.stale[0].rule, "tabbench-lock-order");
}

TEST(AnalyzeBaseline, LineMovesDoNotChurnTheBaselineKey) {
  // The baseline keys (rule, file, message) with no line number: shifting
  // a finding down a line must still be absorbed.
  const char* body =
      "namespace tabbench {\n"
      "class Runner {\n"
      " public:\n"
      "  void Discard() {\n"
      "    Status s = Step();\n"
      "    Other();\n"
      "  }\n"
      "};\n"
      "}  // namespace tabbench\n";
  auto before = RunAnalyze({{"src/core/run.cc", body}});
  ASSERT_EQ(before.size(), 1u);
  std::vector<BaselineEntry> entries;
  std::string err;
  ASSERT_TRUE(ParseBaselineJson(ToBaselineJson(before), &entries, &err));
  auto after =
      RunAnalyze({{"src/core/run.cc", std::string("// new header comment\n") + body}});
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].line, before[0].line + 1);
  auto diff = DiffBaseline(after, entries);
  EXPECT_TRUE(diff.fresh.empty());
  EXPECT_TRUE(diff.stale.empty());
}

// ------------------------------------------------------------ layer spec

TEST(AnalyzeLayerSpec, ParsesLayersAndForbidEdges) {
  LayerSpec spec;
  std::string err;
  ASSERT_TRUE(ParseLayerSpec("layer util: src/util\n"
                             "layer tuning: src/core src/advisor\n"
                             "forbid tuning -> util\n",
                             &spec, &err))
      << err;
  ASSERT_EQ(spec.layers.size(), 2u);
  EXPECT_EQ(spec.layers[1].name, "tuning");
  ASSERT_EQ(spec.layers[1].dirs.size(), 2u);
  ASSERT_EQ(spec.forbid.size(), 1u);
  EXPECT_EQ(spec.forbid[0].first, "tuning");
}

TEST(AnalyzeLayerSpec, RejectsMalformedInput) {
  LayerSpec spec;
  std::string err;
  EXPECT_FALSE(ParseLayerSpec("bogus directive\n", &spec, &err));
  EXPECT_NE(err.find("unknown directive"), std::string::npos) << err;
  spec = {};
  EXPECT_FALSE(ParseLayerSpec("layer a: src/a\nlayer a: src/b\n",
                              &spec, &err));
  EXPECT_NE(err.find("duplicate layer"), std::string::npos) << err;
  spec = {};
  EXPECT_FALSE(ParseLayerSpec("layer a: src/a\nforbid a -> ghost\n",
                              &spec, &err));
  EXPECT_NE(err.find("undeclared layer"), std::string::npos) << err;
}

// ------------------------------------------------------- lockset inference

// One fixture drives both lockset rules: hits_ is only ever touched under
// mu_ (suggest the annotation), total_ is touched both under mu_ and bare
// (a race).
const char* kCacheFixture =
    "namespace tabbench {\n"
    "class Cache {\n"
    " public:\n"
    "  void Put(int v) {\n"
    "    MutexLock lock(&mu_);\n"
    "    hits_ = v;\n"
    "    total_ = v;\n"
    "  }\n"
    "  int Get() {\n"
    "    MutexLock lock(&mu_);\n"
    "    return hits_;\n"
    "  }\n"
    "  int Peek() { return total_; }\n"
    " private:\n"
    "  Mutex mu_;\n"
    "  int hits_ = 0;\n"
    "  int total_ = 0;\n"
    "};\n"
    "}  // namespace tabbench\n";

TEST(AnalyzeLockset, ConsistentlyGuardedFieldSuggestsAnnotation) {
  auto findings = RunAnalyze({{"src/service/cache.h", kCacheFixture}});
  ASSERT_EQ(CountRule(findings, "tabbench-lockset-unannotated"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lockset-unannotated");
  EXPECT_EQ(f->line, 16u);  // anchored at the member declaration
  EXPECT_NE(f->message.find("Cache::hits_"), std::string::npos)
      << f->message;
  EXPECT_NE(f->message.find("TB_GUARDED_BY(mu_)"), std::string::npos)
      << f->message;
  // Same-class guard: the finding carries a machine-applicable fix.
  EXPECT_EQ(f->fix.after_word, "hits_");
  EXPECT_EQ(f->fix.text, " TB_GUARDED_BY(mu_)");
}

TEST(AnalyzeLockset, MixedLockedAndBareAccessIsInconsistent) {
  auto findings = RunAnalyze({{"src/service/cache.h", kCacheFixture}});
  ASSERT_EQ(CountRule(findings, "tabbench-lockset-inconsistent"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lockset-inconsistent");
  EXPECT_EQ(f->line, 17u);
  EXPECT_NE(f->message.find("Cache::total_"), std::string::npos)
      << f->message;
  // Related sites cover both kinds of access.
  bool saw_locked = false, saw_bare = false;
  for (const auto& s : f->related) {
    if (s.note.find("under ") != std::string::npos) saw_locked = true;
    if (s.note.find("no lock held") != std::string::npos) saw_bare = true;
  }
  EXPECT_TRUE(saw_locked && saw_bare) << ToText(findings);
}

TEST(AnalyzeLockset, DeclaredGuardContradictedByBareAccess) {
  auto findings = RunAnalyze({{"src/service/counter.h",
                        "namespace tabbench {\n"
                        "class Counter {\n"
                        " public:\n"
                        "  void Inc() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    n_ = n_ + 1;\n"
                        "  }\n"
                        "  int Read() { return n_; }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  int n_ TB_GUARDED_BY(mu_) = 0;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-lockset-contradicted"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lockset-contradicted");
  EXPECT_EQ(f->line, 8u);  // the offending access, not the declaration
  EXPECT_NE(f->message.find("Counter::Read"), std::string::npos)
      << f->message;
  ASSERT_EQ(f->related.size(), 1u);
  EXPECT_EQ(f->related[0].line, 11u);  // "declared TB_GUARDED_BY here"
}

TEST(AnalyzeLockset, AtomicsConstAndHonoredAnnotationsAreQuiet) {
  auto findings = RunAnalyze({{"src/service/quiet.h",
                        "namespace tabbench {\n"
                        "class Quiet {\n"
                        " public:\n"
                        "  void Tick() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    guarded_ = guarded_ + 1;\n"
                        "  }\n"
                        "  int Sum() { return hits_.load() + limit_; }\n"
                        "  void Bump() { hits_.fetch_add(1); }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  std::atomic<int> hits_{0};\n"
                        "  const int limit_ = 8;\n"
                        "  int guarded_ TB_GUARDED_BY(mu_) = 0;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-lockset-inconsistent"), 0u)
      << ToText(findings);
  EXPECT_EQ(CountRule(findings, "tabbench-lockset-unannotated"), 0u)
      << ToText(findings);
  EXPECT_EQ(CountRule(findings, "tabbench-lockset-contradicted"), 0u)
      << ToText(findings);
}

TEST(AnalyzeLockset, RequiresAnnotationCountsAsHeld) {
  auto findings = RunAnalyze({{"src/service/req.h",
                        "namespace tabbench {\n"
                        "class Req {\n"
                        " public:\n"
                        "  void Direct() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    v_ = 1;\n"
                        "  }\n"
                        "  void Callee() TB_REQUIRES(mu_) { v_ = 2; }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  int v_ = 0;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  // Both sites hold mu_ (one via the contract), so the field is
  // *consistent* — a suggestion, never an inconsistency.
  EXPECT_EQ(CountRule(findings, "tabbench-lockset-inconsistent"), 0u)
      << ToText(findings);
  EXPECT_EQ(CountRule(findings, "tabbench-lockset-unannotated"), 1u)
      << ToText(findings);
}

// -------------------------------------------------- annotation fix apply

TEST(AnalyzeFixes, ApplyInsertsSuggestedAnnotationAndIsIdempotent) {
  std::vector<SourceFile> files = {{"src/service/cache.h", kCacheFixture}};
  auto findings = RunAnalyze(files);
  ASSERT_NE(FindRule(findings, "tabbench-lockset-unannotated"), nullptr);
  EXPECT_EQ(ApplyAnnotationFixes(findings, &files), 1u);
  EXPECT_NE(files[0].content.find("int hits_ TB_GUARDED_BY(mu_) = 0;"),
            std::string::npos)
      << files[0].content;
  // The fixed tree no longer suggests; the declared guard is honored.
  auto after = RunAnalyze(files);
  EXPECT_EQ(CountRule(after, "tabbench-lockset-unannotated"), 0u)
      << ToText(after);
  EXPECT_EQ(CountRule(after, "tabbench-lockset-contradicted"), 0u)
      << ToText(after);
  // Re-applying the same (now stale) fixes inserts nothing.
  EXPECT_EQ(ApplyAnnotationFixes(findings, &files), 0u);
}

// ---------------------------------------------------- blocking under lock

TEST(AnalyzeBlocking, FsyncWhileHoldingTheMutexFiresAtTheCall) {
  auto findings = RunAnalyze({{"src/util/journal.h",
                        "namespace tabbench {\n"
                        "class Journal {\n"
                        " public:\n"
                        "  void Append() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    fsync(fd_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  int fd_ = -1;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-blocking-under-lock"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-blocking-under-lock");
  EXPECT_EQ(f->line, 6u);
  EXPECT_NE(f->message.find("fsync()"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("Journal::mu_"), std::string::npos)
      << f->message;
}

TEST(AnalyzeBlocking, ResolvedTransitivelyThroughTheCallGraph) {
  auto findings = RunAnalyze({{"src/util/disk.h",
                        "namespace tabbench {\n"
                        "class Disk {\n"
                        " public:\n"
                        "  void Flush() { fsync(fd_); }\n"
                        "  void Locked() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    Flush();\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  int fd_ = -1;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-blocking-under-lock"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-blocking-under-lock");
  EXPECT_EQ(f->line, 7u);  // the call site under the lock
  EXPECT_NE(f->message.find("Disk::Flush"), std::string::npos)
      << f->message;
  bool has_block_site = false;
  for (const auto& s : f->related) {
    if (s.note.find("blocks here") != std::string::npos) {
      has_block_site = true;
      EXPECT_EQ(s.line, 4u);
    }
  }
  EXPECT_TRUE(has_block_site) << ToText(findings);
}

TEST(AnalyzeBlocking, CondVarWaitUnderItsMutexIsTheLegitimatePattern) {
  auto findings = RunAnalyze({{"src/util/cv.h",
                        "namespace tabbench {\n"
                        "class Queue {\n"
                        " public:\n"
                        "  void WaitNonEmpty() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    while (size_ == 0) cv_.Wait(&mu_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  CondVar cv_;\n"
                        "  int size_ TB_GUARDED_BY(mu_) = 0;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-blocking-under-lock"), 0u)
      << ToText(findings);
}

TEST(AnalyzeBlocking, NonCondVarWaitUnderLockFires) {
  auto findings = RunAnalyze({{"src/util/latchwait.h",
                        "namespace tabbench {\n"
                        "class Latch { public: void Wait(); };\n"
                        "class Gate {\n"
                        " public:\n"
                        "  void Block() {\n"
                        "    MutexLock lock(&mu_);\n"
                        "    latch_.Wait();\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex mu_;\n"
                        "  Latch latch_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-blocking-under-lock"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-blocking-under-lock");
  EXPECT_NE(f->message.find("Latch::Wait()"), std::string::npos)
      << f->message;
}

// --------------------------------------------------- cancellation polls

TEST(AnalyzeCancellation, UnpolledInfiniteLoopInScopedDirFires) {
  auto findings = RunAnalyze({{"src/exec/vec/spin.cc",
                        "namespace tabbench {\n"
                        "void Spin(int* p) {\n"
                        "  for (;;) {\n"
                        "    *p += 1;\n"
                        "  }\n"
                        "}\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-cancellation-poll"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-cancellation-poll");
  EXPECT_EQ(f->line, 3u);
  EXPECT_NE(f->message.find("Spin"), std::string::npos) << f->message;
}

TEST(AnalyzeCancellation, PolledLoopAndOutOfScopeFilesAreQuiet) {
  auto findings = RunAnalyze(
      {{"src/exec/vec/ok.cc",
        "namespace tabbench {\n"
        "void Drive(const CancellationToken& cancel, int* p) {\n"
        "  for (;;) {\n"
        "    if (cancel.cancelled()) return;\n"
        "    *p += 1;\n"
        "  }\n"
        "}\n"
        "}  // namespace tabbench\n"},
       // Same unpolled loop, but storage is outside the liveness scope
       // (no long-running cancellable work lives there).
       {"src/storage/spin.cc",
        "namespace tabbench {\n"
        "void Churn(int* p) {\n"
        "  for (;;) {\n"
        "    *p += 1;\n"
        "  }\n"
        "}\n"
        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-cancellation-poll"), 0u)
      << ToText(findings);
}

TEST(AnalyzeCancellation, PollInsideACalleeCountsTransitively) {
  auto findings = RunAnalyze({{"src/service/drive.cc",
                        "namespace tabbench {\n"
                        "bool ShouldStop(const CancellationToken& t) {\n"
                        "  return t.cancelled();\n"
                        "}\n"
                        "void Drive(const CancellationToken& t) {\n"
                        "  for (;;) {\n"
                        "    if (ShouldStop(t)) return;\n"
                        "  }\n"
                        "}\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-cancellation-poll"), 0u)
      << ToText(findings);
}

// ------------------------------------------ lambda bodies in lock order

TEST(AnalyzeLockOrder, LambdaHeldMutexesContributeOrderingEdges) {
  // The PR-5 gap: a_ -> b_ nested *inside* a worker lambda must still
  // join the lock-order graph, or inversions hidden in job bodies pass.
  auto findings = RunAnalyze({{"src/service/lam.h",
                        "namespace tabbench {\n"
                        "class Lam {\n"
                        " public:\n"
                        "  void Go() {\n"
                        "    Submit([this] {\n"
                        "      MutexLock la(&a_);\n"
                        "      MutexLock lb(&b_);\n"
                        "    });\n"
                        "  }\n"
                        "  void Back() {\n"
                        "    MutexLock lb(&b_);\n"
                        "    MutexLock la(&a_);\n"
                        "  }\n"
                        " private:\n"
                        "  Mutex a_;\n"
                        "  Mutex b_;\n"
                        "};\n"
                        "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-lock-order"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-lock-order");
  EXPECT_NE(f->message.find("Lam::a_"), std::string::npos) << f->message;
  EXPECT_NE(f->message.find("Lam::b_"), std::string::npos) << f->message;
}

// ------------------------------------------------- fault-point coverage

TEST(AnalyzeFaultCoverage, ListsSitesPerLayerAndNamesZeroLayers) {
  const std::string report = FaultCoverageReport(
      {{"src/util/file.cc",
        "namespace tabbench {\n"
        "int Read() {\n"
        "  TB_FAULT_POINT(\"io.read\", fd);\n"
        "  return 0;\n"
        "}\n"
        "}  // namespace tabbench\n"},
       {"src/engine/db.cc", "namespace tabbench {\nint Db();\n}\n"}},
      LayeredOpts().layers);
  EXPECT_NE(report.find("util: 1 site"), std::string::npos) << report;
  EXPECT_NE(report.find("src/util/file.cc:3  io.read"), std::string::npos)
      << report;
  EXPECT_NE(report.find("layers with zero fault points:"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("engine"), std::string::npos) << report;
}

TEST(AnalyzeFaultCoverage, CountsSitesPerLayerStructured) {
  const auto counts = tabbench_analyze::FaultSitesPerLayer(
      {{"src/util/file.cc",
        "namespace tabbench {\n"
        "int Read() {\n"
        "  TB_FAULT_POINT(\"io.read\", fd);\n"
        "  TB_FAULT_POINT(\"io.read_retry\");\n"
        "  return 0;\n"
        "}\n"
        "}  // namespace tabbench\n"},
       {"src/engine/db.cc", "namespace tabbench {\nint Db();\n}\n"}},
      LayeredOpts().layers);
  EXPECT_EQ(counts.at("util"), 2u);
  EXPECT_EQ(counts.at("engine"), 0u);
  EXPECT_EQ(counts.at("service"), 0u);
}

TEST(AnalyzeFaultCoverage, RatchetHoldsAndTripsOnRegression) {
  // The site name carries the layer prefix: the naming check runs inside
  // CheckFaultCoverage too, and a nonconforming fixture would trip it.
  const std::vector<tabbench_analyze::SourceFile> files = {
      {"src/util/file.cc",
       "namespace tabbench {\n"
       "int Read() {\n"
       "  TB_FAULT_POINT(\"util.read\");\n"
       "  return 0;\n"
       "}\n"
       "}  // namespace tabbench\n"}};
  const LayerSpec layers = LayeredOpts().layers;

  // Floor satisfied (comments and blank lines are tolerated).
  EXPECT_TRUE(tabbench_analyze::CheckFaultCoverage(
                  files, layers, "# floor\n\nutil 1\n")
                  .empty());
  // A layer whose sites dropped below its floor trips the ratchet ...
  auto violations = tabbench_analyze::CheckFaultCoverage(
      files, layers, "util 1\nservice 1\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("'service'"), std::string::npos)
      << violations[0];
  // ... and so does a floor entry naming a layer that no longer exists.
  violations = tabbench_analyze::CheckFaultCoverage(files, layers,
                                                    "storage 1\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("not declared"), std::string::npos)
      << violations[0];
}

// --------------------------------- new rules in SARIF and the baseline

TEST(AnalyzeOutput, SarifCarriesTheConcurrencyRuleIds) {
  auto findings = RunAnalyze(
      {{"src/service/cache.h", kCacheFixture},
       {"src/exec/vec/spin.cc",
        "namespace tabbench {\n"
        "void Spin(int* p) {\n"
        "  for (;;) { *p += 1; }\n"
        "}\n"
        "}  // namespace tabbench\n"}});
  const std::string sarif = ToSarif(findings);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("tabbench-lockset-inconsistent"),
            std::string::npos);
  EXPECT_NE(sarif.find("tabbench-lockset-unannotated"), std::string::npos);
  EXPECT_NE(sarif.find("tabbench-cancellation-poll"), std::string::npos);
}

TEST(AnalyzeBaseline, ConcurrencyFindingsRoundTripThroughTheRatchet) {
  auto findings = RunAnalyze({{"src/service/cache.h", kCacheFixture}});
  ASSERT_GE(findings.size(), 2u) << ToText(findings);
  // Fresh against an empty baseline: strict mode would fail.
  EXPECT_EQ(DiffBaseline(findings, {}).fresh.size(), findings.size());
  // Absorbed by their own baseline: clean.
  std::vector<BaselineEntry> entries;
  std::string err;
  ASSERT_TRUE(ParseBaselineJson(ToBaselineJson(findings), &entries, &err))
      << err;
  auto diff = DiffBaseline(findings, entries);
  EXPECT_TRUE(diff.fresh.empty());
  EXPECT_TRUE(diff.stale.empty());
  EXPECT_EQ(diff.matched, findings.size());
}

TEST(AnalyzeSuppressions, NolintSilencesTheConcurrencyRules) {
  auto findings = RunAnalyze({{"src/exec/vec/spin.cc",
                        "namespace tabbench {\n"
                        "void Spin(int* p) {\n"
                        "  // NOLINTNEXTLINE(tabbench-cancellation-poll)\n"
                        "  for (;;) { *p += 1; }\n"
                        "}\n"
                        "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-cancellation-poll"), 0u)
      << ToText(findings);
}

// -------------------------------------------- acceptance: the real tree
//
// The contract the ISSUE states: the analyzer keeps the *actual* morsel
// scheduler honest. Unmodified, it is clean; deliberately de-annotating
// its guarded run state, or removing the claim loop's cancellation poll,
// must surface as fresh findings a strict baseline run would reject.

std::string ReadRealFile(const std::string& rel) {
  std::ifstream in(std::string(TABBENCH_SOURCE_DIR) + "/" + rel);
  EXPECT_TRUE(in.good()) << rel;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string ReplaceAll(std::string text, const std::string& from,
                       const std::string& to) {
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

TEST(AnalyzeAcceptance, RealMorselSchedulerIsClean) {
  auto findings = RunAnalyze(
      {{"src/exec/vec/morsel_scheduler.cc",
        ReadRealFile("src/exec/vec/morsel_scheduler.cc")}});
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(AnalyzeAcceptance, DeannotatingTheRunStateSurfacesLocksetFindings) {
  const std::string stripped =
      ReplaceAll(ReadRealFile("src/exec/vec/morsel_scheduler.cc"),
                 " TB_GUARDED_BY(mu)", "");
  auto findings =
      RunAnalyze({{"src/exec/vec/morsel_scheduler.cc", stripped}});
  // charge_sum / error_index / error are all only ever touched under mu:
  // stripping the annotations must yield re-annotation suggestions.
  EXPECT_GE(CountRule(findings, "tabbench-lockset-unannotated"), 3u)
      << ToText(findings);
  // ... and a strict baseline run (empty baseline) rejects them.
  EXPECT_FALSE(DiffBaseline(findings, {}).fresh.empty());
}

TEST(AnalyzeAcceptance, RemovingTheClaimLoopPollSurfacesLiveness) {
  std::string depolled = ReadRealFile("src/exec/vec/morsel_scheduler.cc");
  depolled = ReplaceAll(depolled, "st->stop.load(std::memory_order_acquire)",
                        "false");
  depolled = ReplaceAll(depolled, "st->cancel.cancelled()", "false");
  auto findings =
      RunAnalyze({{"src/exec/vec/morsel_scheduler.cc", depolled}});
  EXPECT_GE(CountRule(findings, "tabbench-cancellation-poll"), 1u)
      << ToText(findings);
  EXPECT_FALSE(DiffBaseline(findings, {}).fresh.empty());
}

// ------------------------------------------------------- CFG construction
//
// The path-sensitive passes are only as sound as the CFG under them, so
// the builder is pinned down directly: fixture bodies go through the same
// StripCommentsAndStrings + Tokenize front end the analyzer uses, and the
// tests assert block/edge shapes and dominator facts, not just "it parsed".

using tabbench_analyze::BuildCfg;
using tabbench_analyze::Cfg;
using tabbench_analyze::CfgBlockKind;
using tabbench_analyze::CfgEdgeKind;
using tabbench_analyze::CfgNpos;
using tabbench_analyze::ComputeDominators;
using tabbench_analyze::Dominates;
using tabbench_analyze::ParseProtocolSpec;
using tabbench_analyze::ProtocolSpec;
using tabbench_tok::Token;

std::vector<Token> Toks(const std::string& body) {
  return tabbench_tok::Tokenize(tabbench_tok::StripCommentsAndStrings(body));
}

size_t CountBlocks(const Cfg& cfg, CfgBlockKind kind) {
  size_t n = 0;
  for (const auto& b : cfg.blocks) n += b.kind == kind ? 1 : 0;
  return n;
}

size_t CountEdges(const Cfg& cfg, CfgEdgeKind kind) {
  size_t n = 0;
  for (const auto& b : cfg.blocks) {
    for (const auto& e : b.succ) n += e.kind == kind ? 1 : 0;
  }
  return n;
}

size_t EdgesInto(const Cfg& cfg, size_t to) {
  size_t n = 0;
  for (const auto& b : cfg.blocks) {
    for (const auto& e : b.succ) n += e.to == to ? 1 : 0;
  }
  return n;
}

// First block whose token range contains the identifier `text`.
size_t BlockWithIdent(const Cfg& cfg, const std::vector<Token>& toks,
                      const std::string& text) {
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    for (size_t t = cfg.blocks[i].tok_begin; t < cfg.blocks[i].tok_end; ++t) {
      if (toks[t].text == text) return i;
    }
  }
  return CfgNpos();
}

bool HasEdge(const Cfg& cfg, size_t from, size_t to, CfgEdgeKind kind) {
  if (from >= cfg.blocks.size()) return false;
  for (const auto& e : cfg.blocks[from].succ) {
    if (e.to == to && e.kind == kind) return true;
  }
  return false;
}

TEST(AnalyzeCfgBuilder, SwitchFallthroughSharesLandingsAndBreaksOut) {
  const auto toks = Toks(
      "switch (x) {\n"
      "  case 0:\n"
      "  case 1:\n"
      "    a();\n"
      "    break;\n"
      "  case 2:\n"
      "    b();\n"
      "  default:\n"
      "    c();\n"
      "}\n"
      "d();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  // entry, exit, switch head, after-join, three landings (case 0/1 share
  // one), a/b/c statements, the break block, and d() after the switch.
  EXPECT_EQ(cfg.blocks.size(), 12u);
  EXPECT_EQ(CountBlocks(cfg, CfgBlockKind::kSwitch), 1u);
  EXPECT_EQ(CountBlocks(cfg, CfgBlockKind::kJoin), 4u);
  EXPECT_EQ(CountBlocks(cfg, CfgBlockKind::kStmt), 5u);
  // Dispatch: one kCase edge per label, so the shared landing gets two.
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kCase), 4u);
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kBreak), 1u);

  const auto idom = ComputeDominators(cfg);
  // The head block holds only the switched expression, not the keyword.
  size_t head = CfgNpos();
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (cfg.blocks[i].kind == CfgBlockKind::kSwitch) head = i;
  }
  const size_t b_stmt = BlockWithIdent(cfg, toks, "b");
  const size_t c_stmt = BlockWithIdent(cfg, toks, "c");
  const size_t d_stmt = BlockWithIdent(cfg, toks, "d");
  ASSERT_NE(head, CfgNpos());
  ASSERT_NE(b_stmt, CfgNpos());
  ASSERT_NE(c_stmt, CfgNpos());
  ASSERT_NE(d_stmt, CfgNpos());
  // Every path to d() goes through the switch head ...
  EXPECT_TRUE(Dominates(idom, head, d_stmt));
  // ... but not through case 2's body: default reaches c() directly, the
  // b()->c() fallthrough is just one of two ways in.
  EXPECT_FALSE(Dominates(idom, b_stmt, c_stmt));
  bool fallthrough_to_join = false;
  for (const auto& e : cfg.blocks[b_stmt].succ) {
    fallthrough_to_join |= e.kind == CfgEdgeKind::kNext &&
                           cfg.blocks[e.to].kind == CfgBlockKind::kJoin;
  }
  EXPECT_TRUE(fallthrough_to_join);
}

TEST(AnalyzeCfgBuilder, SwitchWithoutDefaultCanSkipEveryCase) {
  const auto toks = Toks(
      "switch (x) {\n"
      "  case 0:\n"
      "    a();\n"
      "}\n"
      "y();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  EXPECT_EQ(cfg.blocks.size(), 7u);
  // head -> landing, plus the implicit head -> after edge for the missing
  // default: the case body must not dominate what follows the switch.
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kCase), 2u);
  const auto idom = ComputeDominators(cfg);
  const size_t a_stmt = BlockWithIdent(cfg, toks, "a");
  const size_t y_stmt = BlockWithIdent(cfg, toks, "y");
  ASSERT_NE(a_stmt, CfgNpos());
  ASSERT_NE(y_stmt, CfgNpos());
  EXPECT_FALSE(Dominates(idom, a_stmt, y_stmt));
}

TEST(AnalyzeCfgBuilder, NestedLoopsRouteBreakAndContinue) {
  const auto toks = Toks(
      "while (a) {\n"
      "  for (i = 0; i < n; i = i + 1) {\n"
      "    if (b) continue;\n"
      "    if (c) break;\n"
      "    work();\n"
      "  }\n"
      "  more();\n"
      "}\n"
      "tail();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  EXPECT_EQ(cfg.blocks.size(), 15u);
  EXPECT_EQ(CountBlocks(cfg, CfgBlockKind::kLoop), 2u);
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kBack), 2u);
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kContinue), 1u);
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kBreak), 1u);
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kTrue), 4u);

  const auto idom = ComputeDominators(cfg);
  const size_t inner_head = BlockWithIdent(cfg, toks, "n");  // i < n
  const size_t work = BlockWithIdent(cfg, toks, "work");
  const size_t cont = BlockWithIdent(cfg, toks, "continue");
  ASSERT_NE(inner_head, CfgNpos());
  ASSERT_NE(work, CfgNpos());
  ASSERT_NE(cont, CfgNpos());
  EXPECT_TRUE(Dominates(idom, inner_head, work));
  // continue targets the for-increment, i.e. the block that loops back to
  // the inner head — and does not dominate it (the straight-line body
  // reaches the increment too).
  size_t inc = CfgNpos();
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (HasEdge(cfg, i, inner_head, CfgEdgeKind::kBack)) inc = i;
  }
  ASSERT_NE(inc, CfgNpos());
  EXPECT_TRUE(HasEdge(cfg, cont, inc, CfgEdgeKind::kContinue));
  EXPECT_FALSE(Dominates(idom, cont, inc));
}

TEST(AnalyzeCfgBuilder, DoWhileBodyDominatesWhatFollows) {
  const auto toks = Toks(
      "do {\n"
      "  step();\n"
      "} while (again());\n"
      "done();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  EXPECT_EQ(cfg.blocks.size(), 7u);
  EXPECT_EQ(CountBlocks(cfg, CfgBlockKind::kLoop), 1u);
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kBack), 1u);
  const auto idom = ComputeDominators(cfg);
  const size_t step = BlockWithIdent(cfg, toks, "step");
  const size_t done = BlockWithIdent(cfg, toks, "done");
  ASSERT_NE(step, CfgNpos());
  ASSERT_NE(done, CfgNpos());
  // The defining do/while fact: the body runs at least once.
  EXPECT_TRUE(Dominates(idom, step, done));
}

TEST(AnalyzeCfgBuilder, ReturnsClassifyErrorFactoriesTernaryIncluded) {
  const auto toks = Toks(
      "if (x) {\n"
      "  return Status::Internal(\"boom\");\n"
      "}\n"
      "return ok ? a() : b();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  EXPECT_EQ(cfg.blocks.size(), 5u);
  EXPECT_EQ(CountBlocks(cfg, CfgBlockKind::kReturn), 2u);
  EXPECT_EQ(EdgesInto(cfg, cfg.exit), 2u);
  size_t error_returns = 0;
  for (const auto& b : cfg.blocks) {
    if (b.kind == CfgBlockKind::kReturn && b.error_return) ++error_returns;
  }
  // Status::Internal is a definite error exit; the ternary return is not.
  EXPECT_EQ(error_returns, 1u);
}

TEST(AnalyzeCfgBuilder, MacroHeavyBodiesKeepErrorEdgesAndOrder) {
  const auto toks = Toks(
      "TB_RETURN_IF_ERROR(Prep());\n"
      "TB_ASSIGN_OR_RETURN(v, Load());\n"
      "Use(v);\n"
      "return Status::OK();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  EXPECT_EQ(cfg.blocks.size(), 6u);
  // Each macro contributes a distinct error edge into the exit, on top of
  // the ordinary return edge.
  EXPECT_EQ(CountEdges(cfg, CfgEdgeKind::kErrorReturn), 2u);
  EXPECT_EQ(EdgesInto(cfg, cfg.exit), 3u);
  const auto idom = ComputeDominators(cfg);
  const size_t first_macro = BlockWithIdent(cfg, toks, "TB_RETURN_IF_ERROR");
  size_t ret = CfgNpos();
  for (size_t i = 0; i < cfg.blocks.size(); ++i) {
    if (cfg.blocks[i].kind == CfgBlockKind::kReturn) ret = i;
  }
  ASSERT_NE(first_macro, CfgNpos());
  ASSERT_NE(ret, CfgNpos());
  EXPECT_TRUE(Dominates(idom, first_macro, ret));
  // Status::OK() is a success exit, not an error factory.
  EXPECT_FALSE(cfg.blocks[ret].error_return);
}

TEST(AnalyzeCfgBuilder, LambdaBodiesAreCarvedOutOfTheEnclosingPaths) {
  const auto toks = Toks(
      "auto f = [&](int q) { return q + 1; };\n"
      "pool.Submit([this] { Work(); });\n"
      "tail();\n");
  const Cfg cfg = BuildCfg(toks, 0, toks.size());
  ASSERT_EQ(cfg.lambda_bodies.size(), 2u);
  // The lambda statements run on their own schedule: they must not sit on
  // any enclosing-function path.
  EXPECT_EQ(BlockWithIdent(cfg, toks, "Work"), CfgNpos());
  // Each carved range builds as its own unit.
  const Cfg inner =
      BuildCfg(toks, cfg.lambda_bodies[0].first, cfg.lambda_bodies[0].second);
  EXPECT_EQ(inner.blocks.size(), 3u);
  EXPECT_EQ(CountBlocks(inner, CfgBlockKind::kReturn), 1u);
}

// ------------------------------------------------------- protocol specs

TEST(AnalyzeProtocolSpec, ParsesOpsArgsAndMultiValueLines) {
  ProtocolSpec spec;
  std::string err;
  ASSERT_TRUE(ParseProtocolSpec(
      "# two protocols, multi-value lines, one arg-qualified op\n"
      "protocol journal\n"
      "file src/util/j.cc src/util/j2.cc\n"
      "sync SyncAll WriteAndSync\n"
      "commit Expose EnterState:kLive\n"
      "begin BeginUnit\n"
      "abort AbortUnit\n"
      "\n"
      "protocol other\n"
      "file src/core/o.cc\n"
      "sync Flush\n"
      "commit Publish\n",
      &spec, &err))
      << err;
  ASSERT_EQ(spec.protocols.size(), 2u);
  const auto& j = spec.protocols[0];
  EXPECT_EQ(j.name, "journal");
  ASSERT_EQ(j.files.size(), 2u);
  ASSERT_EQ(j.sync.size(), 2u);
  EXPECT_EQ(j.sync[1], "WriteAndSync");
  ASSERT_EQ(j.commit.size(), 2u);
  EXPECT_EQ(j.commit[0].name, "Expose");
  EXPECT_TRUE(j.commit[0].arg.empty());
  EXPECT_EQ(j.commit[1].name, "EnterState");
  EXPECT_EQ(j.commit[1].arg, "kLive");
  ASSERT_EQ(j.begin.size(), 1u);
  ASSERT_EQ(j.abort.size(), 1u);
  EXPECT_EQ(spec.protocols[1].name, "other");
}

TEST(AnalyzeProtocolSpec, RejectsMalformedSpecs) {
  ProtocolSpec spec;
  std::string err;
  EXPECT_FALSE(ParseProtocolSpec("file src/x.cc\n", &spec, &err));
  EXPECT_NE(err.find("protocols.txt:1"), std::string::npos) << err;
  spec = {};
  EXPECT_FALSE(ParseProtocolSpec("protocol p\nfrobnicate x\n", &spec, &err));
  spec = {};
  EXPECT_FALSE(ParseProtocolSpec("protocol p\nprotocol p\n", &spec, &err));
}

// A fixture protocol for src/util/j.cc: the durable write is SyncAll(),
// the externalization is Expose(), and BeginUnit/AbortUnit bracket a
// journaled unit of work.
Options ProtoOpts() {
  Options opts;
  std::string err;
  EXPECT_TRUE(ParseProtocolSpec(
      "protocol journal\n"
      "file src/util/j.cc\n"
      "sync SyncAll\n"
      "commit Expose\n"
      "begin BeginUnit\n"
      "abort AbortUnit\n",
      &opts.protocols, &err))
      << err;
  return opts;
}

// ------------------------------------------------- durability ordering

TEST(AnalyzeDurability, SyncBeforeCommitOnEveryPathIsQuiet) {
  auto findings = RunAnalyze({{"src/util/j.cc",
                               "namespace tabbench {\n"
                               "Status SyncAll();\n"
                               "void Expose();\n"
                               "Status Commit() {\n"
                               "  TB_RETURN_IF_ERROR(SyncAll());\n"
                               "  Expose();\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}},
                             ProtoOpts());
  EXPECT_EQ(CountRule(findings, "tabbench-durability-ordering"), 0u)
      << ToText(findings);
}

TEST(AnalyzeDurability, CommitReachableBeforeSyncOnOnePathIsFlagged) {
  auto findings = RunAnalyze({{"src/util/j.cc",
                               "namespace tabbench {\n"
                               "Status SyncAll();\n"
                               "void Expose();\n"
                               "Status Commit(bool fast) {\n"
                               "  if (fast) {\n"
                               "    Expose();\n"
                               "    return Status::OK();\n"
                               "  }\n"
                               "  TB_RETURN_IF_ERROR(SyncAll());\n"
                               "  Expose();\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}},
                             ProtoOpts());
  ASSERT_EQ(CountRule(findings, "tabbench-durability-ordering"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-durability-ordering");
  EXPECT_EQ(f->line, 6u);  // the fast-path Expose, not the synced one
  EXPECT_NE(f->message.find("journal"), std::string::npos) << f->message;
}

TEST(AnalyzeDurability, SyncThroughCalleeCountsOnlyWhenUnconditional) {
  // Flush() fsyncs on every success return, so calling it is as good as
  // the root sync op ...
  auto findings = RunAnalyze({{"src/util/j.cc",
                               "namespace tabbench {\n"
                               "Status SyncAll();\n"
                               "void Expose();\n"
                               "Status Flush() {\n"
                               "  TB_RETURN_IF_ERROR(SyncAll());\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "Status Commit() {\n"
                               "  TB_RETURN_IF_ERROR(Flush());\n"
                               "  Expose();\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}},
                             ProtoOpts());
  EXPECT_EQ(CountRule(findings, "tabbench-durability-ordering"), 0u)
      << ToText(findings);
  // ... but a callee that only syncs on one branch does not launder the
  // ordering obligation away.
  findings = RunAnalyze({{"src/util/j.cc",
                          "namespace tabbench {\n"
                          "Status SyncAll();\n"
                          "void Expose();\n"
                          "Status Flush(bool b) {\n"
                          "  if (b) {\n"
                          "    TB_RETURN_IF_ERROR(SyncAll());\n"
                          "  }\n"
                          "  return Status::OK();\n"
                          "}\n"
                          "Status Commit() {\n"
                          "  TB_RETURN_IF_ERROR(Flush(true));\n"
                          "  Expose();\n"
                          "  return Status::OK();\n"
                          "}\n"
                          "}  // namespace tabbench\n"}},
                        ProtoOpts());
  EXPECT_EQ(CountRule(findings, "tabbench-durability-ordering"), 1u)
      << ToText(findings);
}

// ------------------------------------------------------ release on path

TEST(AnalyzeReleaseOnPath, BalancedAcquireReleaseIsQuiet) {
  auto findings = RunAnalyze({{"src/util/r.cc",
                               "namespace tabbench {\n"
                               "void Balanced(Mutex& mu, bool fast) {\n"
                               "  mu.Lock();\n"
                               "  if (fast) {\n"
                               "    mu.Unlock();\n"
                               "    return;\n"
                               "  }\n"
                               "  mu.Unlock();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-release-on-path"), 0u)
      << ToText(findings);
}

TEST(AnalyzeReleaseOnPath, EarlyReturnWhileHoldingIsFlagged) {
  auto findings = RunAnalyze({{"src/util/r.cc",
                               "namespace tabbench {\n"
                               "void Leaky(Mutex& mu, bool fast) {\n"
                               "  mu.Lock();\n"
                               "  if (fast) {\n"
                               "    return;\n"
                               "  }\n"
                               "  mu.Unlock();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-release-on-path"), 1u)
      << ToText(findings);
  const Finding* f = FindRule(findings, "tabbench-release-on-path");
  EXPECT_EQ(f->line, 3u);  // anchored at the acquire
  EXPECT_FALSE(f->related.empty());  // ... pointing at the escaping edge
}

TEST(AnalyzeReleaseOnPath, HandoffPairsAreOnlyEnforcedWhenReleasedHere) {
  // Watch() handed to the caller: no Release in this function, so the
  // non-strict pair stays quiet ...
  auto findings = RunAnalyze({{"src/util/r.cc",
                               "namespace tabbench {\n"
                               "uint64_t Handoff(Watchdog& wd) {\n"
                               "  return wd.Watch();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-release-on-path"), 0u)
      << ToText(findings);
  // ... but once the function releases on some path, every path owes one.
  findings = RunAnalyze({{"src/util/r.cc",
                          "namespace tabbench {\n"
                          "void Mixed(Watchdog& wd, bool fast) {\n"
                          "  uint64_t id = wd.Watch();\n"
                          "  if (fast) {\n"
                          "    return;\n"
                          "  }\n"
                          "  wd.Release(id);\n"
                          "}\n"
                          "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-release-on-path"), 1u)
      << ToText(findings);
}

TEST(AnalyzeReleaseOnPath, LockTransferAnnotationExemptsTheFunction) {
  auto findings = RunAnalyze({{"src/util/r.cc",
                               "namespace tabbench {\n"
                               "void Adopt(Mutex& mu) TB_ACQUIRE(mu) {\n"
                               "  mu.Lock();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-release-on-path"), 0u)
      << ToText(findings);
}

TEST(AnalyzeSuppressions, NolintSilencesReleaseOnPath) {
  auto findings = RunAnalyze({{"src/util/r.cc",
                               "namespace tabbench {\n"
                               "void Leaky(Mutex& mu, bool fast) {\n"
                               "  // NOLINTNEXTLINE(tabbench-release-on-path)\n"
                               "  mu.Lock();\n"
                               "  if (fast) {\n"
                               "    return;\n"
                               "  }\n"
                               "  mu.Unlock();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-release-on-path"), 0u)
      << ToText(findings);
}

// --------------------------------------------------- error-path soundness

TEST(AnalyzeErrorPath, ValueUseUnderMustErrorIsFlagged) {
  auto findings = RunAnalyze({{"src/util/e.cc",
                               "namespace tabbench {\n"
                               "int Consume(int v);\n"
                               "Status Use(Result r) {\n"
                               "  if (!r.ok()) {\n"
                               "    Consume(*r);\n"
                               "    return r.status();\n"
                               "  }\n"
                               "  Consume(*r);\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-error-path"), 1u)
      << ToText(findings);
  EXPECT_EQ(FindRule(findings, "tabbench-error-path")->line, 5u);
}

TEST(AnalyzeErrorPath, AllowedErrorAccessorsAreQuiet) {
  auto findings = RunAnalyze({{"src/util/e.cc",
                               "namespace tabbench {\n"
                               "void Note(const std::string& s);\n"
                               "Status Log(Result r) {\n"
                               "  if (!r.ok()) {\n"
                               "    Note(r.ToString());\n"
                               "    return r.status();\n"
                               "  }\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-error-path"), 0u)
      << ToText(findings);
}

TEST(AnalyzeErrorPath, BeginWithoutAbortAtErrorExitIsFlagged) {
  // The TB_RETURN_IF_ERROR error edge leaves before AbortUnit() runs.
  auto findings = RunAnalyze({{"src/util/j.cc",
                               "namespace tabbench {\n"
                               "Status Step();\n"
                               "Status Work() {\n"
                               "  BeginUnit();\n"
                               "  TB_RETURN_IF_ERROR(Step());\n"
                               "  AbortUnit();\n"
                               "  return Status::OK();\n"
                               "}\n"
                               "}  // namespace tabbench\n"}},
                             ProtoOpts());
  ASSERT_EQ(CountRule(findings, "tabbench-error-path"), 1u)
      << ToText(findings);
  EXPECT_NE(FindRule(findings, "tabbench-error-path")
                ->message.find("journaled unit"),
            std::string::npos);
  // Aborting before the error return closes the unit: quiet.
  findings = RunAnalyze({{"src/util/j.cc",
                          "namespace tabbench {\n"
                          "Status Step();\n"
                          "Status Work() {\n"
                          "  BeginUnit();\n"
                          "  Status st = Step();\n"
                          "  if (!st.ok()) {\n"
                          "    AbortUnit();\n"
                          "    return Status::Internal(\"step failed\");\n"
                          "  }\n"
                          "  return Status::OK();\n"
                          "}\n"
                          "}  // namespace tabbench\n"}},
                        ProtoOpts());
  EXPECT_EQ(CountRule(findings, "tabbench-error-path"), 0u)
      << ToText(findings);
}

TEST(AnalyzeErrorPath, BlockingRetryWithoutRecheckIsFlagged) {
  auto findings = RunAnalyze({{"src/util/e.cc",
                               "namespace tabbench {\n"
                               "Status Attempt();\n"
                               "void Retry() {\n"
                               "  for (;;) {\n"
                               "    Status st = Attempt();\n"
                               "    if (st.ok()) {\n"
                               "      return;\n"
                               "    }\n"
                               "    SleepWithCancellation(1.0);\n"
                               "  }\n"
                               "}\n"
                               "}  // namespace tabbench\n"}});
  ASSERT_EQ(CountRule(findings, "tabbench-error-path"), 1u)
      << ToText(findings);
  EXPECT_NE(
      FindRule(findings, "tabbench-error-path")->message.find("re-enter"),
      std::string::npos);
  // Consulting the sleep's status before looping again is the fix.
  findings = RunAnalyze({{"src/util/e.cc",
                          "namespace tabbench {\n"
                          "Status Attempt();\n"
                          "void Retry() {\n"
                          "  for (;;) {\n"
                          "    Status st = Attempt();\n"
                          "    if (st.ok()) {\n"
                          "      return;\n"
                          "    }\n"
                          "    Status slept = SleepWithCancellation(1.0);\n"
                          "    if (!slept.ok()) {\n"
                          "      return;\n"
                          "    }\n"
                          "  }\n"
                          "}\n"
                          "}  // namespace tabbench\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-error-path"), 0u)
      << ToText(findings);
}

// -------------------------------------------- fault-point naming checks

TEST(AnalyzeFaultNaming, ConformingNamesAreQuiet) {
  const std::vector<SourceFile> files = {
      {"src/util/file.cc",
       "namespace tabbench {\n"
       "int Read() {\n"
       "  TB_FAULT_POINT(\"util.file_read\");\n"
       "  return 0;\n"
       "}\n"
       "}  // namespace tabbench\n"}};
  EXPECT_TRUE(
      tabbench_analyze::CheckFaultCoverage(files, LayeredOpts().layers,
                                           "util 1\n")
          .empty());
}

TEST(AnalyzeFaultNaming, LayerMismatchAndFormatViolationsTrip) {
  const std::vector<SourceFile> files = {
      {"src/util/file.cc",
       "namespace tabbench {\n"
       "int Read() {\n"
       "  TB_FAULT_POINT(\"service.read\");\n"
       "  TB_FAULT_POINT(\"BadName\");\n"
       "  TB_FAULT_POINT(\"util.read\");\n"
       "  return 0;\n"
       "}\n"
       "}  // namespace tabbench\n"}};
  const auto violations = tabbench_analyze::CheckFaultCoverage(
      files, LayeredOpts().layers, "util 3\n");
  ASSERT_EQ(violations.size(), 2u) << (violations.empty() ? "" : violations[0]);
  EXPECT_NE(violations[0].find("service.read"), std::string::npos)
      << violations[0];
  EXPECT_NE(violations[1].find("BadName"), std::string::npos) << violations[1];
  // The human-readable report surfaces the same list.
  const std::string report =
      FaultCoverageReport(files, LayeredOpts().layers);
  EXPECT_NE(report.find("naming-convention"), std::string::npos) << report;
}

TEST(AnalyzeFaultNaming, UnderscoreLayerNamesMatchDottedPrefixes) {
  Options opts;
  std::string err;
  ASSERT_TRUE(ParseLayerSpec("layer exec_vec: src/exec/vec\n", &opts.layers,
                             &err))
      << err;
  // Both spellings name the layer: exec_vec.claim and exec.vec.claim.
  const std::vector<SourceFile> quiet = {
      {"src/exec/vec/m.cc",
       "namespace tabbench {\n"
       "int Claim() {\n"
       "  TB_FAULT_POINT(\"exec.vec.morsel\");\n"
       "  TB_FAULT_POINT(\"exec_vec.claim\");\n"
       "  return 0;\n"
       "}\n"
       "}  // namespace tabbench\n"}};
  EXPECT_TRUE(tabbench_analyze::CheckFaultCoverage(quiet, opts.layers,
                                                   "exec_vec 2\n")
                  .empty());
  const std::vector<SourceFile> lying = {
      {"src/exec/vec/m.cc",
       "namespace tabbench {\n"
       "int Claim() {\n"
       "  TB_FAULT_POINT(\"storage.claim\");\n"
       "  return 0;\n"
       "}\n"
       "}  // namespace tabbench\n"}};
  const auto violations = tabbench_analyze::CheckFaultCoverage(
      lying, opts.layers, "exec_vec 1\n");
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("storage.claim"), std::string::npos)
      << violations[0];
  // Sites outside every declared layer only owe the format rule.
  const std::vector<SourceFile> outside = {
      {"tools/x.cc",
       "namespace tabbench {\n"
       "int Go() {\n"
       "  TB_FAULT_POINT(\"anything.goes\");\n"
       "  return 0;\n"
       "}\n"
       "}  // namespace tabbench\n"}};
  EXPECT_TRUE(
      tabbench_analyze::CheckFaultCoverage(outside, opts.layers, "").empty());
}

// --------------------------------------------- cpptok raw-string handling

TEST(CpptokRawStrings, EncodingPrefixedRawStringsAreBlanked) {
  const std::string src =
      "const wchar_t* w = LR\"(say \"hi\" to them)\";\n"
      "const char* a = u8R\"x(quote \" inside)x\";\n"
      "const char* b = uR\"(another \" one)\";\n"
      "const char* c = UR\"(last \" one)\";\n"
      "const char* d = R\"y(plain \" quote)y\";\n"
      "int live = 1;\n";
  const std::string stripped = tabbench_tok::StripCommentsAndStrings(src);
  EXPECT_EQ(stripped.find("hi"), std::string::npos);
  EXPECT_EQ(stripped.find("inside"), std::string::npos);
  bool saw_live = false;
  for (const Token& t : tabbench_tok::Tokenize(stripped)) {
    // Before the prefix fix, LR"(...)" was scanned as an ordinary string,
    // terminated at the first embedded quote, and leaked the tail of every
    // literal below it into the token stream.
    EXPECT_NE(t.text, "say");
    EXPECT_NE(t.text, "quote");
    EXPECT_NE(t.text, "another");
    EXPECT_NE(t.text, "last");
    EXPECT_NE(t.text, "plain");
    saw_live |= t.text == "live";
  }
  EXPECT_TRUE(saw_live);
}

TEST(CpptokRawStrings, IdentifierEndingInPrefixLettersIsNotARawIntro) {
  // The L here belongs to the identifier: this is MACROLR followed by an
  // ordinary string literal, not a raw-string introducer.
  const std::string src = "int y = MACROLR\"(not raw)\";\nint z = 2;\n";
  bool saw_macro = false, saw_z = false;
  for (const Token& t :
       tabbench_tok::Tokenize(tabbench_tok::StripCommentsAndStrings(src))) {
    EXPECT_NE(t.text, "raw");
    saw_macro |= t.text == "MACROLR";
    saw_z |= t.text == "z";
  }
  EXPECT_TRUE(saw_macro);
  EXPECT_TRUE(saw_z);
}

// ------------------------------- acceptance: the real durability paths
//
// Same contract as the morsel-scheduler block above, now for the CFG
// passes: the real journal writer and retry loop are clean as written;
// deleting the fsync, converting the scoped lock to manual calls, or
// dropping the post-sleep cancellation check must each come back as fresh
// strict-baseline failures.

Options RealProtoOpts() {
  Options opts;
  std::string err;
  EXPECT_TRUE(ParseProtocolSpec(ReadRealFile("tools/analyze/protocols.txt"),
                                &opts.protocols, &err))
      << err;
  return opts;
}

TEST(AnalyzeAcceptance, RealRunJournalIsClean) {
  auto findings = RunAnalyze(
      {{"src/util/run_journal.h", ReadRealFile("src/util/run_journal.h")},
       {"src/util/run_journal.cc", ReadRealFile("src/util/run_journal.cc")}},
      RealProtoOpts());
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(AnalyzeAcceptance, RemovingTheFsyncSurfacesDurabilityOrdering) {
  const std::string orig = ReadRealFile("src/util/run_journal.cc");
  const std::string nofsync =
      ReplaceAll(orig, "if (::fsync(fd) != 0)", "if (false)");
  ASSERT_NE(nofsync, orig);  // the anchor text still exists in the source
  auto findings = RunAnalyze(
      {{"src/util/run_journal.h", ReadRealFile("src/util/run_journal.h")},
       {"src/util/run_journal.cc", nofsync}},
      RealProtoOpts());
  // Both Append overloads externalize via raise(SIGKILL) crash points that
  // the journal can no longer replay past.
  EXPECT_GE(CountRule(findings, "tabbench-durability-ordering"), 2u)
      << ToText(findings);
  EXPECT_FALSE(DiffBaseline(findings, {}).fresh.empty());
}

TEST(AnalyzeAcceptance, ManualLockingSurfacesReleaseOnPath) {
  const std::string orig = ReadRealFile("src/util/run_journal.cc");
  const std::string manual =
      ReplaceAll(orig, "MutexLock lock(&mu_);", "mu_.Lock();");
  ASSERT_NE(manual, orig);
  auto findings = RunAnalyze(
      {{"src/util/run_journal.h", ReadRealFile("src/util/run_journal.h")},
       {"src/util/run_journal.cc", manual}},
      RealProtoOpts());
  // Every converted function has a TB_RETURN_IF_ERROR or early return
  // between Lock and the implicit end-of-scope release it just lost.
  EXPECT_GE(CountRule(findings, "tabbench-release-on-path"), 2u)
      << ToText(findings);
  EXPECT_FALSE(DiffBaseline(findings, {}).fresh.empty());
}

TEST(AnalyzeAcceptance, RealWorkloadServiceIsClean) {
  auto findings = RunAnalyze({{"src/service/workload_service.cc",
                               ReadRealFile("src/service/workload_service.cc")}},
                             RealProtoOpts());
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(AnalyzeAcceptance, DroppingTheSleepCheckSurfacesErrorPath) {
  const std::string orig = ReadRealFile("src/service/workload_service.cc");
  std::string unchecked =
      ReplaceAll(orig, "if (!slept.ok()) return slept;", ";");
  unchecked = ReplaceAll(unchecked, "Status slept = SleepWithCancellation",
                         "(void)SleepWithCancellation");
  ASSERT_NE(unchecked, orig);
  auto findings =
      RunAnalyze({{"src/service/workload_service.cc", unchecked}},
                 RealProtoOpts());
  EXPECT_GE(CountRule(findings, "tabbench-error-path"), 1u)
      << ToText(findings);
  EXPECT_FALSE(DiffBaseline(findings, {}).fresh.empty());
}

}  // namespace
