#ifndef TABBENCH_TESTS_TEST_UTIL_H_
#define TABBENCH_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "util/status.h"

namespace tabbench {
namespace testing {

/// gtest glue: ASSERT that a Status/Result is OK, with the message.
#define TB_ASSERT_OK(expr)                                      \
  do {                                                          \
    const ::tabbench::Status _st = (expr);                      \
    ASSERT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define TB_EXPECT_OK(expr)                                      \
  do {                                                          \
    const ::tabbench::Status _st = (expr);                      \
    EXPECT_TRUE(_st.ok()) << _st.ToString();                    \
  } while (0)

#define TB_ASSERT_OK_AND_ASSIGN(lhs, expr)            \
  TB_ASSIGN_OR_RETURN_IMPL(                           \
      TB_ASSIGN_OR_RETURN_NAME(_assert_tmp_, __LINE__), lhs, expr)

/// A small two-table schema ("people" / "depts") used across unit tests:
/// cheap to load, has a PK/FK edge, shared domains, and enough skew for the
/// constant-selection rules.
struct TinyDb {
  std::unique_ptr<Database> db;

  /// `people(id PK, dept, city, score)` x n_people,
  /// `depts(dept_id PK, region, city)` x n_depts.
  static TinyDb Make(size_t n_people = 5000, size_t n_depts = 50,
                     uint64_t seed = 42);
};

/// A miniature NREF database (very small scale) for integration tests.
std::unique_ptr<Database> MakeMiniNref(double scale_inverse = 4000.0,
                                       uint64_t seed = 2005);

/// A miniature TPC-H database for integration tests.
std::unique_ptr<Database> MakeMiniTpch(double scale_inverse = 4000.0,
                                       double zipf_theta = 0.0,
                                       uint64_t seed = 1999);

}  // namespace testing
}  // namespace tabbench

#endif  // TABBENCH_TESTS_TEST_UTIL_H_
