#include <gtest/gtest.h>

#include <map>
#include <set>

#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/tpch_families.h"
#include "exec/plan_validate.h"
#include "test_util.h"

namespace tabbench {
namespace {

/// The library's strongest correctness property: the physical design must
/// never change query answers. For real family workloads, run every query
/// under P, under 1C, and under a recommended configuration, and require
/// identical result multisets — while also validating every plan the
/// optimizer produces.
std::multiset<std::string> Rows(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) out.insert(row.ToString());
  return out;
}

struct EquivalenceCase {
  const char* name;
  bool tpch;       // else NREF
  bool three_way;  // 3J family (else 2J / 3Js)
};

class EquivalenceTest : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EquivalenceTest, ResultsInvariantUnderConfiguration) {
  EquivalenceCase c = GetParam();
  std::unique_ptr<Database> db =
      c.tpch ? testing::MakeMiniTpch(2000.0, 1.0)
             : testing::MakeMiniNref(2000.0);
  ASSERT_NE(db, nullptr);

  QueryFamily family;
  if (c.tpch) {
    family = c.three_way
                 ? GenerateTpch3J(db->catalog(), db->stats(), "SkTH3J")
                 : GenerateTpch3Js(db->catalog(), db->stats());
  } else {
    family = c.three_way ? GenerateNref3J(db->catalog(), db->stats())
                         : GenerateNref2J(db->catalog(), db->stats());
  }
  ASSERT_FALSE(family.queries.empty());

  ExperimentOptions eopts;
  eopts.workload_size = 14;
  FamilyExperiment exp(db.get(), family, eopts);
  ASSERT_TRUE(exp.Prepare().ok());
  std::vector<std::string> sql = exp.workload().Sql();

  // Reference results on P (skip rare queries that time out even at mini
  // scale: both sides would be clamped anyway).
  ASSERT_TRUE(db->ResetToPrimary().ok());
  std::map<size_t, std::multiset<std::string>> reference;
  for (size_t i = 0; i < sql.size(); ++i) {
    auto plan = db->Plan(sql[i]);
    ASSERT_TRUE(plan.ok()) << sql[i];
    TB_ASSERT_OK(ValidatePlan(*plan));
    auto res = db->Run(sql[i]);
    ASSERT_TRUE(res.ok()) << sql[i];
    if (!res->timed_out) reference[i] = Rows(*res);
  }
  ASSERT_FALSE(reference.empty());

  // A recommended configuration (B tolerates every family) and 1C.
  std::vector<Configuration> configs;
  auto rec = exp.Recommend(SystemBProfile());
  if (rec.ok()) configs.push_back(rec->config);
  configs.push_back(Make1CConfig(db->catalog()));

  for (const auto& config : configs) {
    ASSERT_TRUE(db->ApplyConfiguration(config).ok());
    for (const auto& [i, expected] : reference) {
      auto plan = db->Plan(sql[i]);
      ASSERT_TRUE(plan.ok()) << sql[i];
      TB_ASSERT_OK(ValidatePlan(*plan));
      auto res = db->Run(sql[i]);
      ASSERT_TRUE(res.ok()) << sql[i];
      if (res->timed_out) continue;
      EXPECT_EQ(Rows(*res), expected)
          << "config " << config.name << " changed results of: " << sql[i];
    }
  }
  ASSERT_TRUE(db->ResetToPrimary().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Families, EquivalenceTest,
    ::testing::Values(EquivalenceCase{"nref2j", false, false},
                      EquivalenceCase{"nref3j", false, true},
                      EquivalenceCase{"tpch3j", true, true},
                      EquivalenceCase{"tpch3js", true, false}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

TEST(PlanValidateTest, RejectsMalformedPlans) {
  PhysicalPlan plan;
  EXPECT_FALSE(ValidatePlan(plan).ok());  // no root

  plan.root = std::make_unique<PlanNode>();
  plan.root->kind = PlanNode::Kind::kSeqScan;
  EXPECT_FALSE(ValidatePlan(plan).ok());  // no object / output

  plan.root->object = "t";
  plan.root->output_cols = {SlotRef{0, 0}};
  TB_EXPECT_OK(ValidatePlan(plan));

  // Residual referencing a slot the node does not produce.
  ResidualPred bad;
  bad.kind = ResidualPred::Kind::kColEqLit;
  bad.a = SlotRef{3, 9};
  plan.root->residual.push_back(bad);
  EXPECT_FALSE(ValidatePlan(plan).ok());
  plan.root->residual.clear();

  // IN-set out of range.
  ResidualPred in;
  in.kind = ResidualPred::Kind::kInSet;
  in.a = SlotRef{0, 0};
  in.in_set = 2;
  plan.root->residual.push_back(in);
  EXPECT_FALSE(ValidatePlan(plan).ok());
}

TEST(PlanValidateTest, RejectsBadJoinShapes) {
  PhysicalPlan plan;
  plan.root = std::make_unique<PlanNode>();
  plan.root->kind = PlanNode::Kind::kHashJoin;
  EXPECT_FALSE(ValidatePlan(plan).ok());  // no children

  auto scan = [] {
    auto n = std::make_unique<PlanNode>();
    n->kind = PlanNode::Kind::kSeqScan;
    n->object = "t";
    n->output_cols = {SlotRef{0, 0}};
    return n;
  };
  plan.root->children.push_back(scan());
  plan.root->children.push_back(scan());
  plan.root->output_cols = {SlotRef{0, 0}};  // wrong arity (should be 2)
  EXPECT_FALSE(ValidatePlan(plan).ok());
  plan.root->output_cols = {SlotRef{0, 0}, SlotRef{0, 0}};
  TB_EXPECT_OK(ValidatePlan(plan));

  plan.root->hash_keys.emplace_back(SlotRef{7, 7}, SlotRef{0, 0});
  EXPECT_FALSE(ValidatePlan(plan).ok());  // key not in build child
}

}  // namespace
}  // namespace tabbench
