#include <gtest/gtest.h>

#include <memory>

#include "advisor/advisor.h"
#include "advisor/candidates.h"
#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "test_util.h"

namespace tabbench {
namespace {

using testing::TinyDb;

class AdvisorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { tiny_ = std::make_unique<TinyDb>(TinyDb::Make(6000, 50)); }
  static void TearDownTestSuite() {
    tiny_.reset();
  }
  Database* db() { return tiny_->db.get(); }

  std::vector<BoundQuery> BindAll(const std::vector<std::string>& sql) {
    std::vector<BoundQuery> out;
    for (const auto& q : sql) {
      auto b = ParseAndBind(q, db()->catalog());
      EXPECT_TRUE(b.ok()) << q << ": " << b.status().ToString();
      if (b.ok()) out.push_back(b.TakeValue());
    }
    return out;
  }

  static std::unique_ptr<TinyDb> tiny_;
};

std::unique_ptr<TinyDb> AdvisorTest::tiny_;

TEST_F(AdvisorTest, CandidatesIncludeFilterAndJoinColumns) {
  auto workload = BindAll({
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND p.score = 17 GROUP BY p.city",
  });
  CandidateOptions opts;
  CandidateSet cs =
      GenerateCandidates(workload, db()->catalog(), db()->stats(), opts);
  auto has = [&](const std::string& target,
                 const std::vector<std::string>& cols) {
    for (const auto& c : cs.indexes) {
      if (c.def.target == target && c.def.columns == cols) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("people", {"score"}));
  EXPECT_TRUE(has("people", {"dept"}));
  EXPECT_TRUE(has("depts", {"dept_id"}));
}

TEST_F(AdvisorTest, CompositeCandidatesCapAtFourColumns) {
  auto workload = BindAll({
      "SELECT p.city, p.score, COUNT(*) FROM people p, depts d WHERE "
      "p.dept = d.dept_id AND p.id = 3 AND p.score = 17 "
      "GROUP BY p.city, p.score",
  });
  CandidateOptions opts;
  CandidateSet cs =
      GenerateCandidates(workload, db()->catalog(), db()->stats(), opts);
  bool found_composite = false;
  for (const auto& c : cs.indexes) {
    EXPECT_LE(c.def.columns.size(), 4u);
    if (c.def.columns.size() > 1) found_composite = true;
    EXPECT_GT(c.est_pages, 0.0);
  }
  EXPECT_TRUE(found_composite);
}

TEST_F(AdvisorTest, SubqueryColumnToggle) {
  auto workload = BindAll({
      "SELECT COUNT(*) FROM people p WHERE p.city IN (SELECT city FROM "
      "people GROUP BY city HAVING COUNT(*) < 10)",
  });
  CandidateOptions off;
  off.analyze_subquery_columns = false;
  CandidateOptions on;
  on.analyze_subquery_columns = true;
  auto cs_off =
      GenerateCandidates(workload, db()->catalog(), db()->stats(), off);
  auto cs_on =
      GenerateCandidates(workload, db()->catalog(), db()->stats(), on);
  EXPECT_GE(cs_on.indexes.size(), cs_off.indexes.size());
}

TEST_F(AdvisorTest, RejectsCountDistinctSelfJoins) {
  auto workload = BindAll({
      "SELECT a.city, COUNT(DISTINCT b.id) FROM people a, people b "
      "WHERE a.city = b.city GROUP BY a.city",
  });
  CandidateOptions opts;
  opts.reject_count_distinct_self_joins = true;
  CandidateSet cs =
      GenerateCandidates(workload, db()->catalog(), db()->stats(), opts);
  EXPECT_EQ(cs.unsupported_queries, 1u);
}

TEST_F(AdvisorTest, ViewCandidatesOnlyForFkJoins) {
  auto workload = BindAll({
      // FK join (dept -> dept_id) plus a non-key join (city = city).
      "SELECT d.region, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id GROUP BY d.region",
      "SELECT d.region, COUNT(*) FROM people p, depts d WHERE p.city = "
      "d.city GROUP BY d.region",
  });
  CandidateOptions opts;
  opts.enable_views = true;
  CandidateSet cs =
      GenerateCandidates(workload, db()->catalog(), db()->stats(), opts);
  for (const auto& v : cs.views) {
    if (v.def.tables.size() < 2) continue;  // projection views are fine
    ASSERT_EQ(v.def.joins.size(), 1u);
    EXPECT_EQ(v.def.joins[0].left_column, "dept");
    EXPECT_EQ(v.def.joins[0].right_column, "dept_id");
  }
}

TEST_F(AdvisorTest, RecommendationImprovesEstimatedCost) {
  auto workload = BindAll({
      "SELECT p.city, COUNT(*) FROM people p WHERE p.score = 17 "
      "GROUP BY p.city",
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND d.region = 2 GROUP BY p.city",
  });
  AdvisorOptions opts = SystemAProfile();
  ConfigView view = db()->CurrentView();
  Advisor advisor(view, opts);
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_LT(rec->est_cost_after, rec->est_cost_before);
  EXPECT_FALSE(rec->config.indexes.empty());
  EXPECT_GT(rec->candidates_considered, 0u);
}

TEST_F(AdvisorTest, BudgetRespected) {
  auto workload = BindAll({
      "SELECT p.city, COUNT(*) FROM people p WHERE p.score = 17 "
      "GROUP BY p.city",
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND d.region = 2 GROUP BY p.city",
  });
  AdvisorOptions opts = SystemAProfile();
  opts.space_budget_pages = 10.0;  // almost nothing fits
  ConfigView view = db()->CurrentView();
  Advisor advisor(view, opts);
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok());
  EXPECT_LE(rec->est_pages, 10.0);
}

TEST_F(AdvisorTest, ZeroBudgetYieldsEmptyRecommendation) {
  auto workload = BindAll({
      "SELECT p.city, COUNT(*) FROM people p WHERE p.score = 17 "
      "GROUP BY p.city",
  });
  AdvisorOptions opts = SystemAProfile();
  opts.space_budget_pages = 0.0;
  Advisor advisor(db()->CurrentView(), opts);
  auto rec = advisor.Recommend(workload);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->config.indexes.empty());
  EXPECT_DOUBLE_EQ(rec->est_cost_after, rec->est_cost_before);
}

TEST_F(AdvisorTest, FailureModeOnUnanalyzableWorkload) {
  auto workload = BindAll({
      "SELECT a.city, COUNT(DISTINCT b.id) FROM people a, people b "
      "WHERE a.city = b.city GROUP BY a.city",
  });
  AdvisorOptions opts = SystemAProfile();  // rejects this shape
  Advisor advisor(db()->CurrentView(), opts);
  auto rec = advisor.Recommend(workload);
  EXPECT_TRUE(rec.status().IsNotFound());
}

TEST_F(AdvisorTest, SystemBToleratesCountDistinctSelfJoins) {
  auto workload = BindAll({
      "SELECT a.city, COUNT(DISTINCT b.id) FROM people a, people b "
      "WHERE a.city = b.city AND a.score = 17 GROUP BY a.city",
  });
  AdvisorOptions opts = SystemBProfile();
  Advisor advisor(db()->CurrentView(), opts);
  auto rec = advisor.Recommend(workload);
  EXPECT_TRUE(rec.ok()) << rec.status().ToString();
}

TEST_F(AdvisorTest, EmptyWorkloadRejected) {
  Advisor advisor(db()->CurrentView(), SystemAProfile());
  EXPECT_FALSE(advisor.Recommend({}).ok());
}

TEST_F(AdvisorTest, DeterministicAcrossRuns) {
  auto workload = BindAll({
      "SELECT p.city, COUNT(*) FROM people p WHERE p.score = 17 "
      "GROUP BY p.city",
      "SELECT p.city, COUNT(*) FROM people p, depts d WHERE p.dept = "
      "d.dept_id AND d.region = 2 GROUP BY p.city",
  });
  Advisor a1(db()->CurrentView(), SystemAProfile());
  Advisor a2(db()->CurrentView(), SystemAProfile());
  auto r1 = a1.Recommend(workload);
  auto r2 = a2.Recommend(workload);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->config.indexes.size(), r2->config.indexes.size());
  for (size_t i = 0; i < r1->config.indexes.size(); ++i) {
    EXPECT_TRUE(r1->config.indexes[i] == r2->config.indexes[i]);
  }
}

TEST_F(AdvisorTest, ProfilesDiffer) {
  AdvisorOptions a = SystemAProfile();
  AdvisorOptions b = SystemBProfile();
  AdvisorOptions c = SystemCProfile();
  EXPECT_TRUE(a.candidates.reject_count_distinct_self_joins);
  EXPECT_FALSE(b.candidates.reject_count_distinct_self_joins);
  EXPECT_TRUE(a.whatif.credit_index_only);
  EXPECT_FALSE(b.whatif.credit_index_only);
  EXPECT_TRUE(c.candidates.enable_views);
  EXPECT_FALSE(a.candidates.enable_views);
  EXPECT_GT(c.view_score_boost, 1.0);
  EXPECT_TRUE(ProfileByName("A").candidates.reject_count_distinct_self_joins);
  EXPECT_FALSE(ProfileByName("B").whatif.credit_index_only);
  EXPECT_TRUE(ProfileByName("C").candidates.enable_views);
}

}  // namespace
}  // namespace tabbench
