// Chaos suite: deterministic fault injection, retry convergence, failure
// isolation, and the serial/parallel bit-identity contract under injected
// faults. Lives in its own binary so `ctest -L chaos` (optionally under
// TABBENCH_SANITIZE=thread) can target exactly these tests.

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.h"
#include "util/rng.h"
#include "util/run_journal.h"
#include "util/thread_pool.h"
#include "service/workload_service.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/strings.h"

namespace tabbench {
namespace {

/// Disarms every fault point on scope exit so a failing ASSERT cannot leak
/// an armed schedule into later tests.
struct FaultGuard {
  FaultGuard() { FaultRegistry::Global().DisarmAll(); }
  ~FaultGuard() { FaultRegistry::Global().DisarmAll(); }
};

FaultSpec Spec(const std::string& point, Status::Code code,
               FaultSpec::Trigger trigger, uint64_t nth = 1,
               double probability = 0.0, uint64_t seed = 0) {
  FaultSpec s;
  s.point = point;
  s.code = code;
  s.trigger = trigger;
  s.nth = nth;
  s.probability = probability;
  s.seed = seed;
  return s;
}

// ------------------------------------------------------------ spec parsing

TEST(FaultSpecTest, ParsesEveryTriggerForm) {
  auto once = FaultRegistry::ParseSpec("storage.page_read=unavailable@once");
  ASSERT_TRUE(once.ok()) << once.status().ToString();
  EXPECT_EQ(once->point, "storage.page_read");
  EXPECT_EQ(once->code, Status::Code::kUnavailable);
  EXPECT_EQ(once->trigger, FaultSpec::Trigger::kOnce);

  auto nth = FaultRegistry::ParseSpec("engine.query=internal@nth:7");
  ASSERT_TRUE(nth.ok()) << nth.status().ToString();
  EXPECT_EQ(nth->trigger, FaultSpec::Trigger::kNth);
  EXPECT_EQ(nth->nth, 7u);

  auto prob = FaultRegistry::ParseSpec("a.b=resource_exhausted@prob:0.25");
  ASSERT_TRUE(prob.ok()) << prob.status().ToString();
  EXPECT_EQ(prob->trigger, FaultSpec::Trigger::kProbability);
  EXPECT_DOUBLE_EQ(prob->probability, 0.25);
  EXPECT_EQ(prob->seed, 0u);

  auto seeded = FaultRegistry::ParseSpec("a.b=timeout@prob:1:99");
  ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
  EXPECT_DOUBLE_EQ(seeded->probability, 1.0);
  EXPECT_EQ(seeded->seed, 99u);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultRegistry::ParseSpec("").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("no_equals").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("=unavailable@once").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=@once").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=not_a_code@once").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=unavailable@sometimes").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=unavailable@nth:0").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=unavailable@nth:x").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=unavailable@prob:1.5").ok());
  EXPECT_FALSE(FaultRegistry::ParseSpec("p=unavailable@prob:0.5:zz").ok());
}

TEST(FaultSpecTest, ArmFromStringArmsEveryValidSpec) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "a.x=unavailable@once; b.y=internal@nth:3"));
  auto points = FaultRegistry::Global().armed_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], "a.x");
  EXPECT_EQ(points[1], "b.y");

  // A bad chunk reports an error but the good chunks still arm — the
  // TABBENCH_FAULTS path warns instead of silently dropping the schedule.
  FaultRegistry::Global().DisarmAll();
  Status st = FaultRegistry::Global().ArmFromString(
      "a.x=unavailable@once; broken; b.y=internal@once");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(FaultRegistry::Global().armed_points().size(), 2u);
}

// --------------------------------------------------------------- registry

TEST(FaultRegistryTest, ArmedGateTracksRegistryContents) {
  FaultGuard guard;
  EXPECT_FALSE(FaultInjectionArmed());
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("gate.p", Status::Code::kUnavailable, FaultSpec::Trigger::kOnce)));
  EXPECT_TRUE(FaultInjectionArmed());
  FaultRegistry::Global().Disarm("gate.p");
  EXPECT_FALSE(FaultInjectionArmed());
}

TEST(FaultRegistryTest, OnceFiresOnFirstHitPerScope) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("once.p", Status::Code::kUnavailable, FaultSpec::Trigger::kOnce)));
  {
    FaultScope scope(1);
    EXPECT_TRUE(FaultRegistry::Global().Check("once.p").IsUnavailable());
    EXPECT_TRUE(FaultRegistry::Global().Check("once.p").ok());
  }
  {
    FaultScope scope(2);  // a fresh scope restarts the hit count
    EXPECT_TRUE(FaultRegistry::Global().Check("once.p").IsUnavailable());
  }
  auto stats = FaultRegistry::Global().stats("once.p");
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.fires, 2u);
}

TEST(FaultRegistryTest, ProbabilityDecisionsAreAScopePureFunction) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("prob.p", Status::Code::kUnavailable,
           FaultSpec::Trigger::kProbability, 1, 0.5, /*seed=*/11)));
  auto pattern = [](uint64_t scope_seed) {
    FaultScope scope(scope_seed);
    std::string bits;
    for (int i = 0; i < 64; ++i) {
      bits += FaultRegistry::Global().Check("prob.p").ok() ? '0' : '1';
    }
    return bits;
  };
  std::string a = pattern(7);
  std::string b = pattern(7);
  std::string c = pattern(8);
  EXPECT_EQ(a, b) << "same scope seed must reproduce the same schedule";
  EXPECT_NE(a, c) << "distinct scopes must draw distinct schedules";
  EXPECT_NE(a.find('1'), std::string::npos);  // p=0.5 over 64 draws
  EXPECT_NE(a.find('0'), std::string::npos);
}

TEST(FaultRegistryTest, TriggerLatchesIntoScopeUntilTaken) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("latch.p", Status::Code::kInternal, FaultSpec::Trigger::kOnce)));
  {
    FaultScope scope(1);
    FaultRegistry::Global().Trigger("latch.p");
    Status st = FaultRegistry::TakePending();
    EXPECT_TRUE(st.code() == Status::Code::kInternal) << st.ToString();
    EXPECT_TRUE(FaultRegistry::TakePending().ok());  // consumed
  }
  // Without a scope there is nowhere to latch: the fire is counted as
  // dropped instead of crashing or leaking across threads.
  FaultRegistry::Global().DisarmAll();
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("latch.p", Status::Code::kInternal, FaultSpec::Trigger::kOnce)));
  FaultRegistry::Global().Trigger("latch.p");
  EXPECT_EQ(FaultRegistry::Global().dropped_fires(), 1u);
}

TEST(FaultRegistryTest, SuppressedScopeNeitherCountsNorFires) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("supp.p", Status::Code::kUnavailable, FaultSpec::Trigger::kOnce)));
  FaultScope scope(1);
  scope.set_suppressed(true);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(FaultRegistry::Global().Check("supp.p").ok());
  }
  EXPECT_EQ(FaultRegistry::Global().stats("supp.p").hits, 0u);
  scope.set_suppressed(false);
  // The scope's hit count did not advance while suppressed: the next real
  // hit is still hit #1 and fires.
  EXPECT_TRUE(FaultRegistry::Global().Check("supp.p").IsUnavailable());
}

// ------------------------------------------------------------ runner chaos

class ChaosRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tiny_ = std::make_unique<testing::TinyDb>(testing::TinyDb::Make(3000, 20));
    for (int d = 0; d < 12; ++d) {
      sql_.push_back(StrFormat(
          "SELECT p.city, COUNT(*) FROM people p WHERE p.dept = %d "
          "GROUP BY p.city",
          d));
      sql_.push_back("SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept");
    }
  }
  static void TearDownTestSuite() {
    tiny_.reset();
    sql_.clear();
  }
  static Database* db() { return tiny_->db.get(); }

  static void ExpectIdentical(const WorkloadResult& a,
                              const WorkloadResult& b) {
    ASSERT_EQ(a.timings.size(), b.timings.size());
    for (size_t i = 0; i < a.timings.size(); ++i) {
      EXPECT_EQ(a.timings[i].timed_out, b.timings[i].timed_out) << i;
      EXPECT_EQ(a.timings[i].failed, b.timings[i].failed) << i;
      // Exact ==, not approximate: the replay applies the same FP ops in
      // the same order, backoff charges included.
      EXPECT_EQ(a.timings[i].seconds, b.timings[i].seconds) << i;
    }
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.total_clamped_seconds, b.total_clamped_seconds);
    ASSERT_EQ(a.failure_details.size(), b.failure_details.size());
    for (size_t i = 0; i < a.failure_details.size(); ++i) {
      EXPECT_EQ(a.failure_details[i].query_index,
                b.failure_details[i].query_index)
          << i;
      EXPECT_EQ(a.failure_details[i].attempts, b.failure_details[i].attempts)
          << i;
      EXPECT_EQ(a.failure_details[i].status.ToString(),
                b.failure_details[i].status.ToString())
          << i;
    }
  }

  static std::unique_ptr<testing::TinyDb> tiny_;
  static std::vector<std::string> sql_;
};

std::unique_ptr<testing::TinyDb> ChaosRunnerTest::tiny_;
std::vector<std::string> ChaosRunnerTest::sql_;

TEST_F(ChaosRunnerTest, RetryConvergesOnTransientFault) {
  FaultGuard guard;
  // Every query's first attempt fails with a transient error; the second
  // succeeds. With retry enabled the workload reports no failures, one
  // retry per query, and each query pays its backoff in simulated time.
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("engine.query", Status::Code::kUnavailable,
           FaultSpec::Trigger::kOnce)));

  auto baseline_opts = RunOptions{};
  FaultRegistry::Global().DisarmAll();
  auto baseline = RunWorkload(db(), sql_, baseline_opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("engine.query", Status::Code::kUnavailable,
           FaultSpec::Trigger::kOnce)));
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(3);
  auto r = RunWorkload(db(), sql_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->failures, 0u);
  EXPECT_EQ(r->retries, sql_.size());
  EXPECT_EQ(r->timeouts, 0u);
  for (size_t i = 0; i < sql_.size(); ++i) {
    // The retried query converged but is charged the backoff delay on top
    // of its ordinary cost.
    EXPECT_GT(r->timings[i].seconds, baseline->timings[i].seconds) << i;
    EXPECT_FALSE(r->timings[i].failed) << i;
  }
}

TEST_F(ChaosRunnerTest, UnrecoverableFaultsAreIsolatedAndCensored) {
  FaultGuard guard;
  // kInternal is not transient: no retry helps, every query fails. The run
  // must still complete, with each query censored at the timeout cost —
  // the paper's treatment of an advisor that fails outright.
  TB_ASSERT_OK(FaultRegistry::Global().Arm(
      Spec("engine.query", Status::Code::kInternal,
           FaultSpec::Trigger::kOnce)));
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(3);
  auto r = RunWorkload(db(), sql_, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const double t_out = db()->options().cost.timeout_seconds;
  EXPECT_EQ(r->failures, sql_.size());
  EXPECT_EQ(r->retries, 0u);  // non-retryable: one attempt each
  EXPECT_EQ(r->timeouts, sql_.size());
  ASSERT_EQ(r->failure_details.size(), sql_.size());
  for (size_t i = 0; i < sql_.size(); ++i) {
    EXPECT_TRUE(r->timings[i].failed) << i;
    EXPECT_TRUE(r->timings[i].timed_out) << i;
    EXPECT_DOUBLE_EQ(r->timings[i].seconds, t_out) << i;
    EXPECT_EQ(r->failure_details[i].query_index, i);
    EXPECT_EQ(r->failure_details[i].attempts, 1);
    EXPECT_TRUE(r->failure_details[i].status.code() ==
                Status::Code::kInternal)
        << i;
  }
  EXPECT_DOUBLE_EQ(r->total_clamped_seconds,
                   t_out * static_cast<double>(sql_.size()));
}

TEST_F(ChaosRunnerTest, SerialAndParallelBitIdenticalUnderFaultSchedule) {
  FaultGuard guard;
  // A mixed schedule: a mid-scan transient fault that retries sometimes
  // clear, plus a sparse unrecoverable fault — so the workload exercises
  // success, retry-then-success, and censored failure in one run.
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_scan=unavailable@prob:0.02:21; "
      "engine.query=internal@prob:0.08:5"));
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(3);
  opts.retry.seed = 3;

  auto serial = RunWorkload(db(), sql_, opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  auto serial_pool = db()->buffer_stats();

  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  par.window = 5;  // odd window: exercise batch boundaries
  auto parallel = RunWorkloadParallel(db(), sql_, par, opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  auto par_pool = db()->buffer_stats();

  // The schedule must actually perturb the run for this test to mean
  // anything; both outcomes are deterministic, so these are stable.
  EXPECT_GT(serial->retries, 0u);
  EXPECT_GT(serial->failures, 0u);
  EXPECT_LT(serial->failures, sql_.size());

  ExpectIdentical(*serial, *parallel);
  EXPECT_EQ(par_pool.hits, serial_pool.hits);
  EXPECT_EQ(par_pool.misses, serial_pool.misses);
  EXPECT_EQ(par_pool.resident, serial_pool.resident);
}

TEST_F(ChaosRunnerTest, RepetitionsStayIdenticalUnderFaults) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_scan=unavailable@prob:0.3:13"));
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(2);
  opts.repetitions = 3;  // warm repetitions run fault-suppressed

  auto serial = RunWorkload(db(), sql_, opts);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  ThreadPool pool(3);
  ParallelOptions par;
  par.pool = &pool;
  auto parallel = RunWorkloadParallel(db(), sql_, par, opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  ExpectIdentical(*serial, *parallel);
}

TEST_F(ChaosRunnerTest, FaultFreeRunsUnchangedAfterDisarm) {
  FaultGuard guard;
  auto before = RunWorkload(db(), sql_, RunOptions{});
  ASSERT_TRUE(before.ok());

  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_scan=unavailable@prob:0.5:2"));
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(2);
  auto chaotic = RunWorkload(db(), sql_, opts);
  ASSERT_TRUE(chaotic.ok());

  FaultRegistry::Global().DisarmAll();
  auto after = RunWorkload(db(), sql_, RunOptions{});
  ASSERT_TRUE(after.ok());
  ExpectIdentical(*before, *after);
  EXPECT_EQ(after->failures, 0u);
  EXPECT_EQ(after->retries, 0u);
}

TEST_F(ChaosRunnerTest, CancellationStillAbortsUnderFaults) {
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_scan=unavailable@prob:0.3:4"));
  ThreadPool pool(2);
  ParallelOptions par;
  par.pool = &pool;
  par.cancel.RequestCancel();
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(2);
  auto r = RunWorkloadParallel(db(), sql_, par, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

// ----------------------------------------------------------- service chaos

TEST_F(ChaosRunnerTest, ServiceFloodUnderFaultsAllFuturesResolve) {
  FaultGuard guard;
  // TSan workhorse for the chaos label: concurrent jobs with mid-query
  // latched faults and retrying transient errors. Every future must
  // resolve — no hangs, no leaks, no unfulfilled promises.
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_scan=unavailable@prob:0.25:17; "
      "service.session_execute=unavailable@prob:0.15:31"));
  ServiceOptions so;
  so.workers = 4;
  so.max_in_flight = 0;
  WorkloadService service(db(), so);
  JobOptions jo;
  jo.retry = RetryPolicy::WithAttempts(2);
  jo.retry.initial_backoff_seconds = 1e-4;

  std::vector<std::future<Result<QueryResult>>> futs;
  for (int i = 0; i < 48; ++i) {
    futs.push_back(service.SubmitQuery(sql_[static_cast<size_t>(i) %
                                            sql_.size()],
                                       jo));
  }
  size_t ok = 0, failed = 0;
  for (auto& f : futs) {
    auto r = f.get();
    if (r.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
      ++failed;
    }
  }
  EXPECT_EQ(ok + failed, futs.size());
  auto stats = service.stats();
  EXPECT_EQ(stats.completed, futs.size());
}

// -------------------------------------------------------------- kill-resume
//
// The crash-safety contract end to end: a benchmark process is SIGKILLed
// mid-run (no destructors, no flush — the journal's fsync-per-record is all
// that survives), and the resumed run must produce the bit-identical final
// report. The child is a real fork so the kill exercises the same code path
// an OOM-kill or power cut would.

class KillResumeChaosTest : public ChaosRunnerTest {
 protected:
  static std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }

  static std::string Slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  /// Forks a child that runs the journaled workload and is SIGKILLed by the
  /// TABBENCH_JOURNAL_CRASH_AFTER hook right after its `crash_after`-th
  /// record hits disk. Asserts the child actually died by SIGKILL and the
  /// journal holds exactly `crash_after` durable records.
  static void RunChildUntilKilled(const std::string& journal_path,
                                  const RunOptions& opts, size_t crash_after) {
    std::remove(journal_path.c_str());
    ASSERT_EQ(setenv("TABBENCH_JOURNAL_CRASH_AFTER",
                     std::to_string(crash_after).c_str(), 1),
              0);
    pid_t pid = fork();
    ASSERT_NE(pid, -1) << "fork failed";
    if (pid == 0) {
      // Child. The journal writer raises SIGKILL after the n-th fsync'd
      // append; reaching _exit means the hook never fired — make that loud.
      RunOptions child_opts = opts;
      child_opts.journal_path = journal_path;
      auto r = RunWorkload(db(), sql_, child_opts);
      (void)r;
      _exit(42);
    }
    unsetenv("TABBENCH_JOURNAL_CRASH_AFTER");
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child survived to exit code "
        << (WIFEXITED(status) ? WEXITSTATUS(status) : -1);
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    auto loaded = LoadRunJournal(journal_path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->records.size(), crash_after);
  }
};

TEST_F(KillResumeChaosTest, SigkilledRunResumesBitIdentical) {
  FaultGuard guard;
  auto baseline = RunWorkload(db(), sql_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const BufferPoolStats base_pool = db()->buffer_stats();

  // The uninterrupted journal, for the byte-level comparison at the end.
  std::string clean_path = TempPath("killresume_clean.tbj");
  RunOptions clean_opts;
  clean_opts.journal_path = clean_path;
  ASSERT_TRUE(RunWorkload(db(), sql_, clean_opts).ok());

  // Crash points drawn from a fixed seed: reproducible, but not hand-picked
  // round numbers.
  Rng rng(20260805);
  for (int round = 0; round < 3; ++round) {
    size_t crash_after =
        1 + static_cast<size_t>(rng.Uniform(sql_.size() - 1));
    std::string path = TempPath("killresume_" + std::to_string(round) +
                                ".tbj");
    SCOPED_TRACE("crash_after=" + std::to_string(crash_after));
    RunChildUntilKilled(path, RunOptions{}, crash_after);

    auto resumed = RunWorkload(db(), sql_, ResumeFrom(path));
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectIdentical(*baseline, *resumed);
    const BufferPoolStats pool = db()->buffer_stats();
    EXPECT_EQ(pool.hits, base_pool.hits);
    EXPECT_EQ(pool.misses, base_pool.misses);

    // The healed journal is byte-identical to one never interrupted.
    EXPECT_EQ(Slurp(path), Slurp(clean_path));
    std::remove(path.c_str());
  }
  std::remove(clean_path.c_str());
}

TEST_F(KillResumeChaosTest, SigkilledRunResumesUnderTheParallelRunner) {
  FaultGuard guard;
  auto baseline = RunWorkload(db(), sql_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = TempPath("killresume_parallel.tbj");
  RunChildUntilKilled(path, RunOptions{}, 9);

  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  auto resumed = RunWorkloadParallel(db(), sql_, par, ResumeFrom(path));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdentical(*baseline, *resumed);
  auto reloaded = LoadRunJournal(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->records.size(), sql_.size());
  std::remove(path.c_str());
}

TEST_F(KillResumeChaosTest, SigkilledRunUnderFaultsAndRetriesResumesExact) {
  // The full gauntlet: injected faults, retry/backoff charges, and a
  // SIGKILL — the resumed run must still land on the same bits, fault
  // schedule included (the schedule is a pure function of query index and
  // salt, so the live tail re-draws exactly what the dead process would
  // have).
  FaultGuard guard;
  TB_ASSERT_OK(FaultRegistry::Global().ArmFromString(
      "storage.heap_scan=unavailable@prob:0.02:21; "
      "engine.query=internal@prob:0.08:5"));
  RunOptions opts;
  opts.retry = RetryPolicy::WithAttempts(3);
  opts.retry.seed = 3;
  opts.retry.initial_backoff_seconds = 0.01;
  opts.fault_scope_salt = 11;

  auto baseline = RunWorkload(db(), sql_, opts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = TempPath("killresume_faulted.tbj");
  RunChildUntilKilled(path, opts, 14);

  auto resumed = RunWorkload(db(), sql_, ResumeFrom(path, opts));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdentical(*baseline, *resumed);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabbench
