#include <gtest/gtest.h>

#include "core/query_family.h"
#include "core/runner.h"
#include "datagen/tpch_gen.h"
#include "optimizer/whatif.h"
#include "storage/buffer_pool.h"
#include "test_util.h"

namespace tabbench {
namespace {

// ------------------------------------------------- BufferPool::SetCapacity

TEST(BufferPoolResizeTest, ShrinkEvictsLru) {
  BufferPool p(8);
  for (PageId i = 0; i < 8; ++i) p.Touch(i);
  p.Touch(0);  // 0 becomes MRU
  p.SetCapacity(2);
  EXPECT_EQ(p.resident(), 2u);
  EXPECT_TRUE(p.Touch(0));   // survived (MRU)
  EXPECT_FALSE(p.Touch(1));  // evicted
}

TEST(BufferPoolResizeTest, GrowKeepsContents) {
  BufferPool p(2);
  p.Touch(1);
  p.Touch(2);
  p.SetCapacity(100);
  EXPECT_TRUE(p.Touch(1));
  EXPECT_TRUE(p.Touch(2));
  p.Touch(3);
  EXPECT_EQ(p.resident(), 3u);
}

TEST(BufferPoolResizeTest, ZeroClampsToOne) {
  BufferPool p(4);
  p.Touch(1);
  p.SetCapacity(0);
  EXPECT_EQ(p.capacity(), 1u);
  EXPECT_LE(p.resident(), 1u);
}

// ------------------------------------------------------- UsableColumns

TEST(UsableColumnsTest, PrefersCrossTableNonKeyColumns) {
  Catalog catalog;
  AddTpchSchema(&catalog);
  DatabaseStats stats;
  FamilyRestrictions r;
  auto cols = UsableColumns(catalog, stats, "lineitem", r);
  ASSERT_EQ(cols.size(), r.max_columns_per_table);
  // The non-key joinable columns must out-rank the PK members.
  for (const auto& c : cols) {
    EXPECT_NE(c, "l_linenumber") << "PK/ordinal column should rank last";
  }
  // l_shipdate joins orders.o_orderdate: must make the cut.
  EXPECT_NE(std::find(cols.begin(), cols.end(), "l_shipdate"), cols.end());
}

TEST(UsableColumnsTest, SkipsNonIndexableAndDomainless) {
  Catalog catalog;
  AddTpchSchema(&catalog);
  DatabaseStats stats;
  auto cols = UsableColumns(catalog, stats, "part", {});
  for (const auto& c : cols) {
    EXPECT_NE(c, "p_retailprice");  // non-indexable double
  }
}

// --------------------------------------------------- EstimateJoinFanout

TEST(JoinFanoutTest, UniformColumn) {
  ColumnStats cs;
  cs.row_count = 1000;
  cs.num_distinct = 100;
  // No MCVs: pure uniform remainder -> |T| / ndv.
  EXPECT_NEAR(EstimateJoinFanout(cs), 10.0, 1e-9);
}

TEST(JoinFanoutTest, SkewRaisesFanout) {
  ColumnStats uniform;
  uniform.row_count = 1000;
  uniform.num_distinct = 100;
  ColumnStats skewed = uniform;
  skewed.mcvs = {{Value(int64_t{1}), 500}};  // one value holds half the rows
  EXPECT_GT(EstimateJoinFanout(skewed), EstimateJoinFanout(uniform) * 10);
}

TEST(JoinFanoutTest, EmptyColumnIsZero) {
  ColumnStats cs;
  EXPECT_EQ(EstimateJoinFanout(cs), 0.0);
}

// --------------------------------------------------- DegradeToUniform

TEST(DegradeToUniformTest, StripsValueDistributionDetail) {
  auto tiny = testing::TinyDb::Make(2000, 20);
  const DatabaseStats& real = tiny.db->stats();
  DatabaseStats degraded = DegradeToUniform(real);

  const ColumnStats* real_city = real.FindColumn("people", "city");
  const ColumnStats* flat_city = degraded.FindColumn("people", "city");
  ASSERT_NE(real_city, nullptr);
  ASSERT_NE(flat_city, nullptr);
  ASSERT_FALSE(real_city->mcvs.empty());
  EXPECT_TRUE(flat_city->mcvs.empty());
  EXPECT_TRUE(flat_city->histogram.empty());
  // Scalar stats survive.
  EXPECT_EQ(flat_city->num_distinct, real_city->num_distinct);
  EXPECT_EQ(flat_city->row_count, real_city->row_count);
  // Equality estimates now ignore skew: the hottest city estimates at the
  // uniform density instead of its true (higher) frequency.
  Value hottest = real_city->mcvs[0].first;
  EXPECT_LT(flat_city->EstimateEqRows(hottest),
            real_city->EstimateEqRows(hottest));
}

// ------------------------------------------------------------- runner

TEST(RunnerTest, RepetitionsAverageWarmRuns) {
  auto tiny = testing::TinyDb::Make(3000, 20);
  std::vector<std::string> sql = {
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 3 "
      "GROUP BY p.dept"};
  RunOptions one;
  one.repetitions = 1;
  one.cold_start = true;
  auto single = RunWorkload(tiny.db.get(), sql, one);
  ASSERT_TRUE(single.ok());

  RunOptions three;
  three.repetitions = 3;
  three.cold_start = true;
  auto avg = RunWorkload(tiny.db.get(), sql, three);
  ASSERT_TRUE(avg.ok());
  // Runs 2..3 hit the warm buffer pool, dragging the average below the
  // single cold run.
  EXPECT_LT(avg->timings[0].seconds, single->timings[0].seconds);
}

TEST(RunnerTest, ColdStartClearsPool) {
  auto tiny = testing::TinyDb::Make(3000, 20);
  std::vector<std::string> sql = {
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 3 "
      "GROUP BY p.dept"};
  RunOptions opts;
  opts.cold_start = true;
  auto first = RunWorkload(tiny.db.get(), sql, opts);
  auto second = RunWorkload(tiny.db.get(), sql, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Identical cold-start runs are bit-identical (determinism).
  EXPECT_DOUBLE_EQ(first->timings[0].seconds, second->timings[0].seconds);
}

TEST(RunnerTest, RepetitionAveragingIsExact) {
  auto tiny = testing::TinyDb::Make(3000, 20);
  Database* db = tiny.db.get();
  const std::string q =
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 3 "
      "GROUP BY p.dept";
  // Reference: one cold run then one warm run by hand.
  db->buffer_pool()->Clear();
  auto r1 = db->Run(q);
  auto r2 = db->Run(q);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());

  RunOptions two;
  two.repetitions = 2;
  two.cold_start = true;
  auto avg = RunWorkload(db, {q}, two);
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(avg->timings[0].seconds, (r1->sim_seconds + r2->sim_seconds) / 2);
  EXPECT_EQ(avg->total_clamped_seconds, avg->timings[0].seconds);
}

TEST(RunnerTest, TimeoutQueriesRunOnceUnderRepetitions) {
  // Paper Section 4.1: three runs of non-timeout queries, ONE of timeout
  // queries. A query that trips on its first (cold) run must not be re-run
  // warm — the timing stays the clamped timeout.
  DatabaseOptions opts;
  opts.cost.timeout_seconds = 1e-7;
  Database db(opts);
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d", true, 8}};
  t.primary_key = {"a"};
  ASSERT_TRUE(db.CreateTable(t).ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.Insert("t", Tuple({Value(i)})).ok());
  }
  ASSERT_TRUE(db.FinishLoad().ok());

  RunOptions reps;
  reps.repetitions = 3;
  auto res = RunWorkload(&db, {"SELECT COUNT(*) FROM t WHERE t.a = 1"}, reps);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->timings.size(), 1u);
  EXPECT_TRUE(res->timings[0].timed_out);
  EXPECT_EQ(res->timings[0].seconds, 1e-7);  // not an average of three
  EXPECT_EQ(res->timeouts, 1u);
}

TEST(RunnerTest, WarmStartKeepsPoolContents) {
  auto tiny = testing::TinyDb::Make(3000, 20);
  Database* db = tiny.db.get();
  const std::vector<std::string> sql = {
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 3 "
      "GROUP BY p.dept"};
  RunOptions cold;
  cold.cold_start = true;
  auto first = RunWorkload(db, sql, cold);
  ASSERT_TRUE(first.ok());

  // cold_start=false reuses the pool the previous run warmed: strictly
  // cheaper, and identical to a manual back-to-back warm run.
  db->buffer_pool()->Clear();
  auto c = db->Run(sql[0]);
  auto w = db->Run(sql[0]);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(w.ok());

  RunOptions warm;
  warm.cold_start = false;
  auto again = RunWorkload(db, sql, cold);   // re-warms from cold
  auto warm_run = RunWorkload(db, sql, warm);  // rides the warm pool
  ASSERT_TRUE(again.ok());
  ASSERT_TRUE(warm_run.ok());
  EXPECT_EQ(again->timings[0].seconds, c->sim_seconds);
  EXPECT_EQ(warm_run->timings[0].seconds, w->sim_seconds);
  EXPECT_LT(warm_run->timings[0].seconds, again->timings[0].seconds);
}

TEST(RunnerTest, TotalsClampAtTimeout) {
  DatabaseOptions opts;
  opts.cost.timeout_seconds = 1e-7;
  Database db(opts);
  TableDef t;
  t.name = "t";
  t.columns = {{"a", TypeId::kInt, "d", true, 8}};
  t.primary_key = {"a"};
  ASSERT_TRUE(db.CreateTable(t).ok());
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(db.Insert("t", Tuple({Value(i)})).ok());
  }
  ASSERT_TRUE(db.FinishLoad().ok());
  auto res = RunWorkload(&db, {"SELECT COUNT(*) FROM t WHERE t.a = 1"});
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->timeouts, 1u);
  EXPECT_DOUBLE_EQ(res->total_clamped_seconds, 1e-7);
}

}  // namespace
}  // namespace tabbench
