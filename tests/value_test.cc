#include <gtest/gtest.h>

#include <unordered_set>

#include "types/tuple.h"
#include "types/value.h"

namespace tabbench {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int());
}

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value(int64_t{5}).is_int());
  EXPECT_TRUE(Value(3.5).is_double());
  EXPECT_TRUE(Value(std::string("x")).is_string());
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int64_t{-9}).as_int(), -9);
  EXPECT_DOUBLE_EQ(Value(2.25).as_double(), 2.25);
  EXPECT_EQ(Value(std::string("abc")).as_string(), "abc");
}

TEST(ValueTest, IntOrdering) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_EQ(Value(int64_t{3}), Value(int64_t{3}));
  EXPECT_GT(Value(int64_t{4}), Value(int64_t{3}));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value(std::string("abc")), Value(std::string("abd")));
  EXPECT_LT(Value(std::string("ab")), Value(std::string("abc")));
}

TEST(ValueTest, NullSortsFirstAndEqualsNull) {
  EXPECT_LT(Value(), Value(int64_t{-100}));
  EXPECT_LT(Value(), Value(std::string("")));
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_EQ(Value(std::string("q")).Hash(), Value(std::string("q")).Hash());
}

TEST(ValueTest, HashSetUsable) {
  std::unordered_set<Value, ValueHash> s;
  s.insert(Value(int64_t{1}));
  s.insert(Value(int64_t{1}));
  s.insert(Value(std::string("1")));
  s.insert(Value());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.count(Value(int64_t{1})));
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value(std::string("it's")).ToString(), "'it''s'");
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value().ByteSize(), 1u);
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value(std::string("abcd")).ByteSize(), 6u);
}

TEST(ValueTest, TypeNames) {
  EXPECT_STREQ(TypeName(TypeId::kInt), "INT");
  EXPECT_STREQ(TypeName(TypeId::kDouble), "DOUBLE");
  EXPECT_STREQ(TypeName(TypeId::kString), "STRING");
}

// ----------------------------------------------------------------- Tuple

TEST(TupleTest, ConcatOrdersLeftThenRight) {
  Tuple a({Value(int64_t{1}), Value(int64_t{2})});
  Tuple b({Value(std::string("x"))});
  Tuple c = Tuple::Concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at(0), Value(int64_t{1}));
  EXPECT_EQ(c.at(2), Value(std::string("x")));
}

TEST(TupleTest, Project) {
  Tuple t({Value(int64_t{10}), Value(int64_t{20}), Value(int64_t{30})});
  Tuple p = t.Project({2, 0});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.at(0), Value(int64_t{30}));
  EXPECT_EQ(p.at(1), Value(int64_t{10}));
}

TEST(TupleTest, EqualityAndHash) {
  Tuple a({Value(int64_t{1}), Value(std::string("s"))});
  Tuple b({Value(int64_t{1}), Value(std::string("s"))});
  Tuple c({Value(int64_t{2}), Value(std::string("s"))});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, ToString) {
  Tuple t({Value(int64_t{1}), Value()});
  EXPECT_EQ(t.ToString(), "(1, NULL)");
}

TEST(TupleTest, ByteSizeSumsValues) {
  Tuple t({Value(int64_t{1}), Value(std::string("ab"))});
  EXPECT_EQ(t.ByteSize(), 8u + 4u);
}

}  // namespace
}  // namespace tabbench
