#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>

#include "storage/btree.h"
#include "storage/page_store.h"
#include "util/rng.h"

namespace tabbench {
namespace {

IndexKey IKey(int64_t a) { return {Value(a)}; }
IndexKey IKey2(int64_t a, int64_t b) { return {Value(a), Value(b)}; }

TEST(CompareKeysTest, Lexicographic) {
  EXPECT_LT(CompareKeys(IKey2(1, 5), IKey2(2, 0)), 0);
  EXPECT_GT(CompareKeys(IKey2(2, 0), IKey2(1, 9)), 0);
  EXPECT_EQ(CompareKeys(IKey2(3, 3), IKey2(3, 3)), 0);
}

TEST(CompareKeysTest, PrefixComparesShorterFirst) {
  EXPECT_LT(CompareKeys(IKey(1), IKey2(1, 0)), 0);
  EXPECT_GT(CompareKeys(IKey2(1, 0), IKey(1)), 0);
}

TEST(KeyHasPrefixTest, Basics) {
  EXPECT_TRUE(KeyHasPrefix(IKey2(4, 7), IKey(4)));
  EXPECT_FALSE(KeyHasPrefix(IKey2(4, 7), IKey(5)));
  EXPECT_FALSE(KeyHasPrefix(IKey(4), IKey2(4, 7)));
  EXPECT_TRUE(KeyHasPrefix(IKey2(4, 7), IKey2(4, 7)));
}

TEST(BTreeTest, EmptyTreeScans) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  auto it = tree.ScanAll(nullptr);
  IndexKey k;
  Rid r;
  EXPECT_FALSE(it.Next(&k, &r));
  EXPECT_EQ(tree.num_entries(), 0u);
}

TEST(BTreeTest, InsertAndScanSorted) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  Rng rng(1);
  std::vector<int64_t> keys;
  for (int i = 0; i < 5000; ++i) {
    int64_t k = static_cast<int64_t>(rng.Uniform(100000));
    keys.push_back(k);
    ASSERT_TRUE(tree.Insert(IKey(k), Rid{static_cast<uint32_t>(i), 0}, nullptr).ok());
  }
  std::sort(keys.begin(), keys.end());
  auto it = tree.ScanAll(nullptr);
  IndexKey k;
  Rid r;
  size_t i = 0;
  while (it.Next(&k, &r)) {
    ASSERT_LT(i, keys.size());
    EXPECT_EQ(k[0].as_int(), keys[i]);
    ++i;
  }
  EXPECT_EQ(i, keys.size());
}

TEST(BTreeTest, SeekPrefixFindsAllDuplicates) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  // Value v occurs v times for v in 1..60.
  for (int64_t v = 1; v <= 60; ++v) {
    for (int64_t j = 0; j < v; ++j) {
      ASSERT_TRUE(tree.Insert(IKey(v),
                              Rid{static_cast<uint32_t>(v), static_cast<uint32_t>(j)},
                              nullptr)
                      .ok());
    }
  }
  for (int64_t v : {1, 13, 37, 60}) {
    auto it = tree.SeekPrefix(IKey(v), nullptr);
    IndexKey k;
    Rid r;
    int64_t count = 0;
    while (it.Next(&k, &r)) {
      EXPECT_EQ(k[0].as_int(), v);
      ++count;
    }
    EXPECT_EQ(count, v);
  }
}

TEST(BTreeTest, SeekPrefixMissingKeyYieldsNothing) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  for (int64_t v = 0; v < 100; v += 2) {
    ASSERT_TRUE(tree.Insert(IKey(v), Rid{0, static_cast<uint32_t>(v)}, nullptr).ok());
  }
  auto it = tree.SeekPrefix(IKey(51), nullptr);
  IndexKey k;
  Rid r;
  EXPECT_FALSE(it.Next(&k, &r));
}

TEST(BTreeTest, CompositePrefixSeek) {
  PageStore store;
  BTree tree("ix", 2, 16, &store);
  for (int64_t a = 0; a < 30; ++a) {
    for (int64_t b = 0; b < 10; ++b) {
      ASSERT_TRUE(tree.Insert(IKey2(a, b),
                              Rid{static_cast<uint32_t>(a), static_cast<uint32_t>(b)},
                              nullptr)
                      .ok());
    }
  }
  // Seek on the leading column only: all 10 b-values for a=17.
  auto it = tree.SeekPrefix(IKey(17), nullptr);
  IndexKey k;
  Rid r;
  int64_t expected_b = 0;
  while (it.Next(&k, &r)) {
    EXPECT_EQ(k[0].as_int(), 17);
    EXPECT_EQ(k[1].as_int(), expected_b++);
  }
  EXPECT_EQ(expected_b, 10);
  // Full-key seek: exactly one entry.
  auto it2 = tree.SeekPrefix(IKey2(3, 4), nullptr);
  int n = 0;
  while (it2.Next(&k, &r)) ++n;
  EXPECT_EQ(n, 1);
}

TEST(BTreeTest, BulkBuildMatchesInserts) {
  PageStore store;
  Rng rng(7);
  std::vector<std::pair<IndexKey, Rid>> entries;
  for (uint32_t i = 0; i < 10000; ++i) {
    entries.emplace_back(IKey(static_cast<int64_t>(rng.Uniform(3000))),
                         Rid{i, 0});
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    int c = CompareKeys(a.first, b.first);
    if (c != 0) return c < 0;
    return a.second < b.second;
  });

  BTree bulk("bulk", 1, 8, &store);
  bulk.BulkBuild(entries);
  BTree incr("incr", 1, 8, &store);
  for (const auto& [k, r] : entries) ASSERT_TRUE(incr.Insert(k, r, nullptr).ok());

  EXPECT_EQ(bulk.num_entries(), incr.num_entries());
  EXPECT_EQ(bulk.num_distinct_keys(), incr.num_distinct_keys());

  auto bi = bulk.ScanAll(nullptr);
  auto ii = incr.ScanAll(nullptr);
  IndexKey bk, ik;
  Rid br, ir;
  while (true) {
    bool bmore = bi.Next(&bk, &br);
    bool imore = ii.Next(&ik, &ir);
    ASSERT_EQ(bmore, imore);
    if (!bmore) break;
    EXPECT_EQ(CompareKeys(bk, ik), 0);
  }
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  EXPECT_EQ(tree.height(), 1u);
  std::vector<std::pair<IndexKey, Rid>> entries;
  for (uint32_t i = 0; i < 200000; ++i) {
    entries.emplace_back(IKey(static_cast<int64_t>(i)), Rid{i, 0});
  }
  tree.BulkBuild(std::move(entries));
  EXPECT_GE(tree.height(), 2u);
  EXPECT_LE(tree.height(), 4u);
  EXPECT_EQ(tree.num_entries(), 200000u);
}

TEST(BTreeTest, LeafPageCountTracksFanout) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  std::vector<std::pair<IndexKey, Rid>> entries;
  for (uint32_t i = 0; i < 50000; ++i) {
    entries.emplace_back(IKey(static_cast<int64_t>(i)), Rid{i, 0});
  }
  tree.BulkBuild(std::move(entries));
  double per_leaf =
      50000.0 / static_cast<double>(tree.num_leaf_pages());
  EXPECT_GT(per_leaf, 50.0);
  EXPECT_LT(per_leaf, 1000.0);
  EXPECT_GE(tree.num_pages(), tree.num_leaf_pages());
}

TEST(BTreeTest, ClusteringFactorDetectsCorrelation) {
  PageStore store;
  // Clustered: key order == heap order (few page switches).
  BTree clustered("c", 1, 8, &store);
  std::vector<std::pair<IndexKey, Rid>> entries;
  for (uint32_t i = 0; i < 10000; ++i) {
    entries.emplace_back(IKey(static_cast<int64_t>(i)), Rid{i / 100, i % 100});
  }
  clustered.BulkBuild(entries);

  // Scattered: key order uncorrelated with heap pages.
  BTree scattered("s", 1, 8, &store);
  Rng rng(3);
  for (auto& [k, r] : entries) {
    r.page_ordinal = static_cast<uint32_t>(rng.Uniform(100));
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return CompareKeys(a.first, b.first) < 0;
  });
  scattered.BulkBuild(entries);

  EXPECT_LT(clustered.clustering_factor(), 200u);
  EXPECT_GT(scattered.clustering_factor(), 5000u);
}

TEST(BTreeTest, TouchReportsDescentPages) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  std::vector<std::pair<IndexKey, Rid>> entries;
  for (uint32_t i = 0; i < 100000; ++i) {
    entries.emplace_back(IKey(static_cast<int64_t>(i)), Rid{i, 0});
  }
  tree.BulkBuild(std::move(entries));
  size_t touched = 0;
  auto it = tree.SeekPrefix(IKey(54321), [&](PageId) { ++touched; });
  IndexKey k;
  Rid r;
  ASSERT_TRUE(it.Next(&k, &r));
  EXPECT_EQ(touched, tree.height());
}

TEST(BTreeTest, DropFreesAllPages) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  for (uint32_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  EXPECT_GT(store.allocated_pages(), 0u);
  tree.Drop();
  EXPECT_EQ(store.allocated_pages(), 0u);
}

TEST(BTreeTest, StringKeys) {
  PageStore store;
  BTree tree("ix", 1, 20, &store);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert({Value("key" + std::to_string(i))},
                            Rid{static_cast<uint32_t>(i), 0}, nullptr)
                    .ok());
  }
  auto it = tree.SeekPrefix({Value(std::string("key500"))}, nullptr);
  IndexKey k;
  Rid r;
  ASSERT_TRUE(it.Next(&k, &r));
  EXPECT_EQ(k[0].as_string(), "key500");
  EXPECT_EQ(r.page_ordinal, 500u);
  EXPECT_FALSE(it.Next(&k, &r));
}

class BTreeSizeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BTreeSizeSweep, OrderedAndComplete) {
  auto [n, dup] = GetParam();
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  Rng rng(static_cast<uint64_t>(n * 31 + dup));
  std::map<int64_t, int> expected;
  for (int i = 0; i < n; ++i) {
    int64_t key = static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
        std::max(1, n / dup))));
    ASSERT_TRUE(tree.Insert(IKey(key), Rid{static_cast<uint32_t>(i), 0}, nullptr).ok());
    expected[key]++;
  }
  // Scan is sorted and complete.
  auto it = tree.ScanAll(nullptr);
  IndexKey k;
  Rid r;
  int64_t prev = -1;
  size_t total = 0;
  std::map<int64_t, int> seen;
  while (it.Next(&k, &r)) {
    EXPECT_GE(k[0].as_int(), prev);
    prev = k[0].as_int();
    seen[prev]++;
    ++total;
  }
  EXPECT_EQ(total, static_cast<size_t>(n));
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(tree.num_distinct_keys(), expected.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BTreeSizeSweep,
    ::testing::Combine(::testing::Values(10, 1000, 20000),
                       ::testing::Values(1, 4, 64)));

TEST(BTreeMutationTest, DeleteRemovesExactRidAmongDuplicates) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  for (uint32_t j = 0; j < 50; ++j) {
    ASSERT_TRUE(tree.Insert(IKey(7), Rid{j, 0}, nullptr).ok());
  }
  ASSERT_TRUE(tree.Delete(IKey(7), Rid{23, 0}, nullptr).ok());
  EXPECT_EQ(tree.num_entries(), 49u);
  auto it = tree.SeekPrefix(IKey(7), nullptr);
  IndexKey k;
  Rid r;
  while (it.Next(&k, &r)) EXPECT_NE(r.page_ordinal, 23u);
}

TEST(BTreeMutationTest, DeleteMissingIsNotFound) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  ASSERT_TRUE(tree.Insert(IKey(1), Rid{0, 0}, nullptr).ok());
  EXPECT_TRUE(tree.Delete(IKey(2), Rid{0, 0}, nullptr).IsNotFound());
  EXPECT_TRUE(tree.Delete(IKey(1), Rid{9, 9}, nullptr).IsNotFound());
  EXPECT_EQ(tree.num_entries(), 1u);
}

TEST(BTreeMutationTest, DeleteEverythingShrinksTreeToEmpty) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  const uint32_t n = 20000;
  for (uint32_t i = 0; i < n; ++i) {
    ASSERT_TRUE(tree.Insert(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  size_t full_pages = tree.num_pages();
  EXPECT_GT(tree.height(), 1u);
  // Delete in an order uncorrelated with key order to exercise borrow and
  // merge on both siblings.
  Rng rng(11);
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  for (uint32_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.Uniform(i)]);
  }
  for (uint32_t i : order) {
    ASSERT_TRUE(tree.Delete(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  EXPECT_EQ(tree.num_entries(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_LT(tree.num_pages(), full_pages);
  auto it = tree.ScanAll(nullptr);
  IndexKey k;
  Rid r;
  EXPECT_FALSE(it.Next(&k, &r));
}

TEST(BTreeMutationTest, InterleavedInsertDeleteStaysConsistent) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  Rng rng(29);
  std::multimap<int64_t, uint32_t> expected;
  uint32_t next_rid = 0;
  for (int round = 0; round < 30000; ++round) {
    if (expected.empty() || rng.Uniform(100) < 60) {
      int64_t key = static_cast<int64_t>(rng.Uniform(500));
      ASSERT_TRUE(tree.Insert(IKey(key), Rid{next_rid, 0}, nullptr).ok());
      expected.emplace(key, next_rid);
      ++next_rid;
    } else {
      auto victim = expected.begin();
      std::advance(victim,
                   static_cast<long>(rng.Uniform(expected.size())));
      ASSERT_TRUE(
          tree.Delete(IKey(victim->first), Rid{victim->second, 0}, nullptr).ok());
      expected.erase(victim);
    }
  }
  EXPECT_EQ(tree.num_entries(), expected.size());
  auto it = tree.ScanAll(nullptr);
  IndexKey k;
  Rid r;
  std::multimap<int64_t, uint32_t> seen;
  int64_t prev = INT64_MIN;
  while (it.Next(&k, &r)) {
    EXPECT_GE(k[0].as_int(), prev);
    prev = k[0].as_int();
    seen.emplace(prev, r.page_ordinal);
  }
  EXPECT_EQ(seen, expected);
}

TEST(BTreeMutationTest, UpdateMovesEntry) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  for (uint32_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  ASSERT_TRUE(tree.Update(IKey(500), Rid{500, 0}, IKey(2000), Rid{1500, 0},
                          nullptr)
                  .ok());
  EXPECT_EQ(tree.num_entries(), 1000u);
  IndexKey k;
  Rid r;
  auto gone = tree.SeekPrefix(IKey(500), nullptr);
  EXPECT_FALSE(gone.Next(&k, &r));
  auto moved = tree.SeekPrefix(IKey(2000), nullptr);
  ASSERT_TRUE(moved.Next(&k, &r));
  EXPECT_EQ(r.page_ordinal, 1500u);
  // Updating a missing entry fails without touching the tree.
  EXPECT_TRUE(tree.Update(IKey(500), Rid{500, 0}, IKey(3000), Rid{1, 0},
                          nullptr)
                  .IsNotFound());
  EXPECT_EQ(tree.num_entries(), 1000u);
}

TEST(BTreeMutationTest, FingerprintTracksContentNotHistory) {
  PageStore store;
  // Same final content by two different mutation histories.
  BTree a("a", 1, 8, &store);
  BTree b("b", 1, 8, &store);
  for (uint32_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(a.Insert(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  for (uint32_t i = 0; i < 3000; ++i) {
    ASSERT_TRUE(b.Insert(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  for (uint32_t i = 2000; i < 3000; ++i) {
    ASSERT_TRUE(b.Delete(IKey(static_cast<int64_t>(i)), Rid{i, 0}, nullptr).ok());
  }
  // Insert-then-delete of the same entry must leave the fingerprint alone
  // (the kill-resume harness compares resumed vs. uninterrupted builds).
  uint64_t before = a.Fingerprint();
  ASSERT_TRUE(a.Insert(IKey(99999), Rid{7, 7}, nullptr).ok());
  ASSERT_TRUE(a.Delete(IKey(99999), Rid{7, 7}, nullptr).ok());
  EXPECT_EQ(a.Fingerprint(), before);
  EXPECT_NE(a.Fingerprint(), 0u);
  // a and b hold the same 2000 keys (page layouts may differ — the
  // fingerprint folds structure in, so we don't compare a to b): content
  // equality is what ScanAll says.
  auto ai = a.ScanAll(nullptr);
  auto bi = b.ScanAll(nullptr);
  IndexKey ak, bk;
  Rid ar, br;
  while (true) {
    bool am = ai.Next(&ak, &ar);
    bool bm = bi.Next(&bk, &br);
    ASSERT_EQ(am, bm);
    if (!am) break;
    EXPECT_EQ(CompareKeys(ak, bk), 0);
  }
}

}  // namespace
}  // namespace tabbench
