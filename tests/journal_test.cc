#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.h"
#include "core/runner.h"
#include "util/thread_pool.h"
#include "test_util.h"
#include "util/crc32c.h"
#include "util/file_util.h"
#include "util/run_journal.h"
#include "util/strings.h"

namespace tabbench {
namespace {

// ----------------------------------------------------------------- crc32c

TEST(Crc32cTest, KnownAnswerVectors) {
  // The CRC-32C check value: crc of the ASCII digits "123456789".
  EXPECT_EQ(Crc32c(std::string("123456789")), 0xe3069283u);
  EXPECT_EQ(Crc32c(std::string("")), 0u);
  // Incremental == one-shot.
  uint32_t inc = Crc32cExtend(0, "1234", 4);
  inc = Crc32cExtend(inc, "56789", 5);
  EXPECT_EQ(inc, 0xe3069283u);
}

TEST(Crc32cTest, MaskRoundTripsAndDiffersFromRaw) {
  for (uint32_t crc : {0u, 1u, 0xe3069283u, 0xffffffffu, 0xdeadbeefu}) {
    EXPECT_EQ(UnmaskCrc32c(MaskCrc32c(crc)), crc);
    EXPECT_NE(MaskCrc32c(crc), crc);
  }
}

// ------------------------------------------------------------ crc trailer

TEST(CrcTrailerTest, RoundTrip) {
  std::string body = "line one\nline two\n";
  std::string with = WithCrc32cTrailer(body);
  EXPECT_NE(with, body);
  auto back = VerifyCrc32cTrailer(with, "mem");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, body);
}

TEST(CrcTrailerTest, AppendsNewlineBeforeTrailerWhenMissing) {
  auto back = VerifyCrc32cTrailer(WithCrc32cTrailer("no newline"), "mem");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, "no newline\n");
}

TEST(CrcTrailerTest, LegacyFileWithoutTrailerPassesThrough) {
  std::string legacy = "# tabbench workload v1\nSELECT 1;\n";
  auto back = VerifyCrc32cTrailer(legacy, "mem");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, legacy);
}

TEST(CrcTrailerTest, TamperedBodyIsDataLossWithOffset) {
  std::string with = WithCrc32cTrailer("important numbers: 1 2 3\n");
  with[4] = 'X';
  auto back = VerifyCrc32cTrailer(with, "tampered.txt");
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsDataLoss()) << back.status().ToString();
  EXPECT_NE(back.status().ToString().find("offset"), std::string::npos);
  EXPECT_NE(back.status().ToString().find("tampered.txt"), std::string::npos);
}

TEST(CrcTrailerTest, MalformedTrailerHexIsDataLoss) {
  std::string bad = "body\n# crc32c: zzzzzzzz\n";
  auto back = VerifyCrc32cTrailer(bad, "mem");
  ASSERT_FALSE(back.ok());
  EXPECT_TRUE(back.status().IsDataLoss()) << back.status().ToString();
}

TEST(CrcTrailerTest, TrailerLineInTheMiddleIsNotATrailer) {
  // Only a *final* "# crc32c:" line is a trailer; one mid-file is content.
  std::string mid = "# crc32c: 00000000\nmore content\n";
  auto back = VerifyCrc32cTrailer(mid, "mem");
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, mid);
}

// --------------------------------------------------------- saved reports

TEST(ReportIoTest, SaveLoadRoundTripAndTamperDetection) {
  std::string path = ::testing::TempDir() + "/tabbench_report_crc.txt";
  std::string text = "== resilience ==\nqueries: 10\ntimeouts: 2\n";
  ASSERT_TRUE(SaveReport(text, path).ok());
  auto back = LoadReport(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(*back, text);

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  bytes[bytes.find("10")] = '9';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto damaged = LoadReport(path);
  ASSERT_FALSE(damaged.ok());
  EXPECT_TRUE(damaged.status().IsDataLoss()) << damaged.status().ToString();
  std::remove(path.c_str());
}

// -------------------------------------------------------- journal framing

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

JournalHeader SampleHeader() {
  JournalHeader h;
  h.query_count = 2;
  h.repetitions = 3;
  h.collect_estimates = true;
  h.cold_start = false;
  h.fault_scope_salt = 77;
  h.timeout_seconds = 1800.0;
  h.retry = RetryPolicy::WithAttempts(4);
  h.retry.seed = 99;
  h.sql = {"SELECT 1", "SELECT 2"};
  h.metadata = {{"db", "nref"}, {"config", "p"}};
  return h;
}

JournalQueryRecord SampleRecord(uint32_t index) {
  JournalQueryRecord rec;
  rec.query_index = index;
  rec.seconds = 12.5 + index;
  rec.timed_out = (index % 2) == 1;
  rec.failed = false;
  rec.attempts = 2;
  rec.has_estimate = true;
  rec.estimate = 3.25;
  rec.pool_hit_delta = 10 + index;
  rec.pool_miss_delta = 4;
  JournalAttempt first;
  first.code = Status::Code::kUnavailable;
  first.message = "injected fault: storage.heap_scan";
  first.trace = {{TraceEvent::Kind::kTouchSeq, 17},
                 {TraceEvent::Kind::kTuples, 120},
                 {TraceEvent::Kind::kTimeoutCheck, 0}};
  JournalAttempt second;
  second.code = Status::Code::kOk;
  second.timed_out = rec.timed_out;
  second.trace = {{TraceEvent::Kind::kTouchRandom, 5},
                  {TraceEvent::Kind::kUnitTuplesChecked, 64}};
  rec.attempt_log = {first, second};
  rec.shard_id = 7 + index;
  return rec;
}

TEST(RunJournalTest, HeaderAndRecordsRoundTrip) {
  std::string path = TempPath("journal_roundtrip.tbj");
  JournalHeader h = SampleHeader();
  auto writer = RunJournalWriter::Create(path, h);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
  TB_ASSERT_OK((*writer)->Append(SampleRecord(1)));
  writer->reset();

  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const JournalHeader& back = loaded->header;
  EXPECT_EQ(back.query_count, h.query_count);
  EXPECT_EQ(back.repetitions, h.repetitions);
  EXPECT_EQ(back.collect_estimates, h.collect_estimates);
  EXPECT_EQ(back.cold_start, h.cold_start);
  EXPECT_EQ(back.fault_scope_salt, h.fault_scope_salt);
  EXPECT_EQ(back.timeout_seconds, h.timeout_seconds);
  EXPECT_EQ(back.retry.max_attempts, 4);
  EXPECT_EQ(back.retry.seed, 99u);
  EXPECT_EQ(back.sql, h.sql);
  EXPECT_EQ(back.metadata, h.metadata);

  ASSERT_EQ(loaded->records.size(), 2u);
  for (uint32_t i = 0; i < 2; ++i) {
    const JournalQueryRecord want = SampleRecord(i);
    const JournalQueryRecord& got = loaded->records[i];
    EXPECT_EQ(got.query_index, want.query_index);
    EXPECT_EQ(got.seconds, want.seconds);
    EXPECT_EQ(got.timed_out, want.timed_out);
    EXPECT_EQ(got.failed, want.failed);
    EXPECT_EQ(got.attempts, want.attempts);
    EXPECT_EQ(got.has_estimate, want.has_estimate);
    EXPECT_EQ(got.estimate, want.estimate);
    EXPECT_EQ(got.pool_hit_delta, want.pool_hit_delta);
    EXPECT_EQ(got.pool_miss_delta, want.pool_miss_delta);
    ASSERT_EQ(got.attempt_log.size(), want.attempt_log.size());
    for (size_t a = 0; a < want.attempt_log.size(); ++a) {
      EXPECT_EQ(got.attempt_log[a].code, want.attempt_log[a].code);
      EXPECT_EQ(got.attempt_log[a].message, want.attempt_log[a].message);
      EXPECT_EQ(got.attempt_log[a].timed_out, want.attempt_log[a].timed_out);
      ASSERT_EQ(got.attempt_log[a].trace.size(),
                want.attempt_log[a].trace.size());
      for (size_t e = 0; e < want.attempt_log[a].trace.size(); ++e) {
        EXPECT_EQ(got.attempt_log[a].trace[e].kind,
                  want.attempt_log[a].trace[e].kind);
        EXPECT_EQ(got.attempt_log[a].trace[e].arg,
                  want.attempt_log[a].trace[e].arg);
      }
    }
    EXPECT_EQ(got.shard_id, want.shard_id);
  }
  EXPECT_EQ(loaded->valid_bytes, Slurp(path).size());
  std::remove(path.c_str());
}

TEST(RunJournalTest, PreShardJournalsLoadWithShardZero) {
  // The shard id rides as a 4-byte trailer on the record payload. Strip the
  // trailer off a freshly written record — byte-for-byte what a journal
  // written before the field existed holds — and the record must still load,
  // reading back as shard 0 (the unsharded marker).
  std::string path = TempPath("journal_preshard.tbj");
  {
    auto writer = RunJournalWriter::Create(path, SampleHeader());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
  }
  std::string bytes = Slurp(path);
  uint32_t header_len = 0;
  std::memcpy(&header_len, bytes.data(), sizeof(header_len));
  const size_t record_off = 8 + header_len;
  uint32_t record_len = 0;
  std::memcpy(&record_len, bytes.data() + record_off, sizeof(record_len));
  ASSERT_GT(record_len, 4u);
  std::string payload = bytes.substr(record_off + 8, record_len);
  payload.resize(payload.size() - 4);  // drop the shard-id trailer
  const uint32_t new_len = static_cast<uint32_t>(payload.size());
  const uint32_t new_crc = MaskCrc32c(Crc32c(payload));
  std::string rebuilt = bytes.substr(0, record_off);
  rebuilt.append(reinterpret_cast<const char*>(&new_len), 4);
  rebuilt.append(reinterpret_cast<const char*>(&new_crc), 4);
  rebuilt.append(payload);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(rebuilt.data(), static_cast<std::streamsize>(rebuilt.size()));
  }

  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->records.size(), 1u);
  const JournalQueryRecord want = SampleRecord(0);
  EXPECT_EQ(loaded->records[0].shard_id, 0u);  // trailer absent -> unsharded
  EXPECT_EQ(loaded->records[0].query_index, want.query_index);
  EXPECT_EQ(loaded->records[0].seconds, want.seconds);
  EXPECT_EQ(loaded->records[0].attempts, want.attempts);
  ASSERT_EQ(loaded->records[0].attempt_log.size(), want.attempt_log.size());
  std::remove(path.c_str());
}

TEST(RunJournalTest, ServiceEventsRoundTripAlongsideRecords) {
  std::string path = TempPath("journal_events.tbj");
  JournalServiceEvent kill;
  kill.sequence = 4;
  kill.clock_seconds = 1.25;
  kill.shard_id = 2;
  kill.kind = "kill";
  kill.detail = "chaos kill";
  JournalServiceEvent reroute;
  reroute.sequence = 5;
  reroute.clock_seconds = 1.5;
  reroute.shard_id = 1;
  reroute.domain = 42;
  reroute.kind = "reroute";
  reroute.detail = "shard 2 not serving; domain moved";
  {
    auto writer = RunJournalWriter::Create(path, SampleHeader());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    TB_ASSERT_OK((*writer)->Append(kill));
    TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
    TB_ASSERT_OK((*writer)->Append(reroute));
  }
  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), 1u);
  ASSERT_EQ(loaded->events.size(), 2u);
  EXPECT_EQ(loaded->events[0].sequence, kill.sequence);
  EXPECT_EQ(loaded->events[0].clock_seconds, kill.clock_seconds);
  EXPECT_EQ(loaded->events[0].shard_id, kill.shard_id);
  EXPECT_EQ(loaded->events[0].domain, 0u);
  EXPECT_EQ(loaded->events[0].kind, kill.kind);
  EXPECT_EQ(loaded->events[0].detail, kill.detail);
  EXPECT_EQ(loaded->events[1].sequence, reroute.sequence);
  EXPECT_EQ(loaded->events[1].shard_id, reroute.shard_id);
  EXPECT_EQ(loaded->events[1].domain, reroute.domain);
  EXPECT_EQ(loaded->events[1].kind, reroute.kind);
  std::remove(path.c_str());
}

TEST(RunJournalTest, TornTailIsDroppedAndTruncatedOnAppend) {
  std::string path = TempPath("journal_torn.tbj");
  auto writer = RunJournalWriter::Create(path, SampleHeader());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
  writer->reset();
  const uint64_t clean_size = Slurp(path).size();

  // Simulate a crash mid-write: a frame whose length prefix promises more
  // bytes than the file holds.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const uint32_t len = 1000;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write("torn", 4);
  }
  ASSERT_GT(Slurp(path).size(), clean_size);

  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->valid_bytes, clean_size);

  // OpenAppend truncates the torn tail before continuing.
  auto reopened = RunJournalWriter::OpenAppend(path, *loaded);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  TB_ASSERT_OK((*reopened)->Append(SampleRecord(1)));
  reopened->reset();
  auto reloaded = LoadRunJournal(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->records.size(), 2u);
  std::remove(path.c_str());
}

TEST(RunJournalTest, GarbageFinalFrameIsATornTailToo) {
  // A complete-looking final frame whose checksum fails is treated as torn
  // (the crash may have happened mid-frame after the length was written).
  std::string path = TempPath("journal_badtail.tbj");
  auto writer = RunJournalWriter::Create(path, SampleHeader());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
  writer->reset();
  const uint64_t clean_size = Slurp(path).size();
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const uint32_t len = 4;
    const uint32_t bogus_crc = 0x12345678;
    out.write(reinterpret_cast<const char*>(&len), sizeof(len));
    out.write(reinterpret_cast<const char*>(&bogus_crc), sizeof(bogus_crc));
    out.write("junk", 4);
  }
  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), 1u);
  EXPECT_EQ(loaded->valid_bytes, clean_size);
  std::remove(path.c_str());
}

TEST(RunJournalTest, MidFileCorruptionIsDataLossWithOffset) {
  std::string path = TempPath("journal_corrupt.tbj");
  auto writer = RunJournalWriter::Create(path, SampleHeader());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
  TB_ASSERT_OK((*writer)->Append(SampleRecord(1)));
  writer->reset();

  // Flip one payload byte of the header frame — far from the tail, so this
  // is corruption, not a torn tail.
  std::string bytes = Slurp(path);
  ASSERT_GT(bytes.size(), 32u);
  bytes[16] ^= 0x40;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  auto loaded = LoadRunJournal(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsDataLoss()) << loaded.status().ToString();
  EXPECT_NE(loaded.status().ToString().find("offset"), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunJournalTest, HeaderlessOrMissingFileIsRejected) {
  EXPECT_FALSE(LoadRunJournal("/nonexistent/nowhere.tbj").ok());
  std::string path = TempPath("journal_empty.tbj");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  auto loaded = LoadRunJournal(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument())
      << loaded.status().ToString();
  std::remove(path.c_str());
}

// ----------------------------------------------------- checkpoint/resume

class JournalResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tiny_ = std::make_unique<tabbench::testing::TinyDb>(
        tabbench::testing::TinyDb::Make(3000, 20));
    for (int d = 0; d < 6; ++d) {
      sql_.push_back(StrFormat(
          "SELECT p.city, COUNT(*) FROM people p WHERE p.dept = %d "
          "GROUP BY p.city", d));
    }
    for (int i = 0; i < 4; ++i) {
      sql_.push_back("SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept");
    }
  }
  static void TearDownTestSuite() {
    tiny_.reset();
    sql_.clear();
  }

  Database* db() { return tiny_->db.get(); }

  static void ExpectIdentical(const WorkloadResult& a,
                              const WorkloadResult& b) {
    ASSERT_EQ(a.timings.size(), b.timings.size());
    for (size_t i = 0; i < a.timings.size(); ++i) {
      EXPECT_EQ(a.timings[i].seconds, b.timings[i].seconds) << "query " << i;
      EXPECT_EQ(a.timings[i].timed_out, b.timings[i].timed_out);
      EXPECT_EQ(a.timings[i].failed, b.timings[i].failed);
    }
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.failures, b.failures);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.total_clamped_seconds, b.total_clamped_seconds);
  }

  /// Rewrites `src`'s first `keep` records into a fresh journal at `dst` —
  /// the on-disk state an interrupted run would have left behind.
  static void WritePrefixJournal(const std::string& src,
                                 const std::string& dst, size_t keep) {
    auto full = LoadRunJournal(src);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_GE(full->records.size(), keep);
    auto writer = RunJournalWriter::Create(dst, full->header);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (size_t i = 0; i < keep; ++i) {
      TB_ASSERT_OK((*writer)->Append(full->records[i]));
    }
  }

  static std::unique_ptr<tabbench::testing::TinyDb> tiny_;
  static std::vector<std::string> sql_;
};

std::unique_ptr<tabbench::testing::TinyDb> JournalResumeTest::tiny_;
std::vector<std::string> JournalResumeTest::sql_;

TEST_F(JournalResumeTest, JournaledRunMatchesPlainRunAndRecordsEverything) {
  auto baseline = RunWorkload(db(), sql_);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = TempPath("resume_full.tbj");
  RunOptions jopts;
  jopts.journal_path = path;
  jopts.journal_metadata = {{"db", "tiny"}};
  auto journaled = RunWorkload(db(), sql_, jopts);
  ASSERT_TRUE(journaled.ok()) << journaled.status().ToString();
  ExpectIdentical(*baseline, *journaled);

  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), sql_.size());
  EXPECT_EQ(loaded->header.sql, sql_);
  EXPECT_EQ(loaded->header.metadata.at("db"), "tiny");
  for (size_t i = 0; i < loaded->records.size(); ++i) {
    EXPECT_EQ(loaded->records[i].query_index, i);
    EXPECT_EQ(loaded->records[i].seconds, baseline->timings[i].seconds);
    ASSERT_FALSE(loaded->records[i].attempt_log.empty());
  }
  std::remove(path.c_str());
}

TEST_F(JournalResumeTest, SerialResumeIsBitIdenticalAndRefillsTheJournal) {
  std::string full_path = TempPath("resume_base.tbj");
  RunOptions jopts;
  jopts.journal_path = full_path;
  auto baseline = RunWorkload(db(), sql_, jopts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  const BufferPoolStats base_pool = db()->buffer_stats();

  // Resume from every interruption point, including "crashed before any
  // record" (keep == 0) and "crashed after the last query" (keep == size).
  for (size_t keep : {size_t{0}, size_t{1}, sql_.size() / 2,
                      sql_.size() - 1, sql_.size()}) {
    std::string path = TempPath("resume_k" + std::to_string(keep) + ".tbj");
    WritePrefixJournal(full_path, path, keep);
    auto resumed = RunWorkload(db(), sql_, ResumeFrom(path));
    ASSERT_TRUE(resumed.ok())
        << "keep=" << keep << ": " << resumed.status().ToString();
    ExpectIdentical(*baseline, *resumed);
    const BufferPoolStats pool = db()->buffer_stats();
    EXPECT_EQ(pool.hits, base_pool.hits) << "keep=" << keep;
    EXPECT_EQ(pool.misses, base_pool.misses) << "keep=" << keep;

    // After the resumed run the journal is complete again — and since the
    // header and every record serialize deterministically, byte-identical
    // to the uninterrupted journal.
    EXPECT_EQ(Slurp(path), Slurp(full_path)) << "keep=" << keep;
    std::remove(path.c_str());
  }
  std::remove(full_path.c_str());
}

TEST_F(JournalResumeTest, ParallelResumeMatchesSerialBaseline) {
  std::string full_path = TempPath("resume_par_base.tbj");
  RunOptions jopts;
  jopts.journal_path = full_path;
  auto baseline = RunWorkload(db(), sql_, jopts);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  std::string path = TempPath("resume_par.tbj");
  WritePrefixJournal(full_path, path, 3);

  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  auto resumed = RunWorkloadParallel(db(), sql_, par, ResumeFrom(path));
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdentical(*baseline, *resumed);
  auto reloaded = LoadRunJournal(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->records.size(), sql_.size());
  std::remove(path.c_str());
  std::remove(full_path.c_str());

  // A serial journal resumes under the parallel runner and vice versa: the
  // journal speaks traces, not runner internals. (The parallel-resumed file
  // was already checked above; now the reverse direction.)
  std::string par_path = TempPath("resume_par_written.tbj");
  RunOptions par_jopts;
  par_jopts.journal_path = par_path;
  auto par_run = RunWorkloadParallel(db(), sql_, par, par_jopts);
  ASSERT_TRUE(par_run.ok()) << par_run.status().ToString();
  std::string ser_path = TempPath("resume_ser_from_par.tbj");
  WritePrefixJournal(par_path, ser_path, 5);
  auto ser_resumed = RunWorkload(db(), sql_, ResumeFrom(ser_path));
  ASSERT_TRUE(ser_resumed.ok()) << ser_resumed.status().ToString();
  ExpectIdentical(*baseline, *ser_resumed);
  std::remove(par_path.c_str());
  std::remove(ser_path.c_str());
}

TEST_F(JournalResumeTest, ResumeUnderDifferentOptionsIsRefused) {
  std::string path = TempPath("resume_incompat.tbj");
  RunOptions jopts;
  jopts.journal_path = path;
  ASSERT_TRUE(RunWorkload(db(), sql_, jopts).ok());

  RunOptions other = ResumeFrom(path);
  other.repetitions = 2;
  auto r = RunWorkload(db(), sql_, other);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status().ToString();

  RunOptions salted = ResumeFrom(path);
  salted.fault_scope_salt = 123;
  EXPECT_FALSE(RunWorkload(db(), sql_, salted).ok());

  RunOptions retried = ResumeFrom(path);
  retried.retry = RetryPolicy::WithAttempts(3);
  EXPECT_FALSE(RunWorkload(db(), sql_, retried).ok());

  std::vector<std::string> other_sql = sql_;
  other_sql.pop_back();
  EXPECT_FALSE(RunWorkload(db(), other_sql, ResumeFrom(path)).ok());
  std::remove(path.c_str());
}

TEST_F(JournalResumeTest, TamperedOutcomeFailsTheReplayCrossCheck) {
  std::string path = TempPath("resume_tampered_src.tbj");
  RunOptions jopts;
  jopts.journal_path = path;
  ASSERT_TRUE(RunWorkload(db(), sql_, jopts).ok());

  // Rewrite the journal with one record's outcome falsified. Every frame
  // still checksums cleanly — only the replay cross-check can catch this.
  auto full = LoadRunJournal(path);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  std::string lied = TempPath("resume_tampered.tbj");
  auto writer = RunJournalWriter::Create(lied, full->header);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  for (size_t i = 0; i < 4; ++i) {
    JournalQueryRecord rec = full->records[i];
    if (i == 2) rec.seconds += 1.0;
    TB_ASSERT_OK((*writer)->Append(rec));
  }
  writer->reset();

  auto resumed = RunWorkload(db(), sql_, ResumeFrom(lied));
  ASSERT_FALSE(resumed.ok());
  EXPECT_TRUE(resumed.status().IsDataLoss()) << resumed.status().ToString();
  std::remove(path.c_str());
  std::remove(lied.c_str());
}

TEST_F(JournalResumeTest, CrashAfterAppendsHookCountsFsyncedRecords) {
  // The in-process side of the kill-resume chaos test: negative disables,
  // and the env-var spelling is parsed at Create time. (The actual SIGKILL
  // is exercised by the fork-based chaos test.)
  std::string path = TempPath("resume_hook.tbj");
  auto writer = RunJournalWriter::Create(path, SampleHeader());
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  (*writer)->set_crash_after_appends(-1);
  TB_ASSERT_OK((*writer)->Append(SampleRecord(0)));
  TB_ASSERT_OK((*writer)->Append(SampleRecord(1)));
  writer->reset();
  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records.size(), 2u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabbench
