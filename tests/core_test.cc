#include <gtest/gtest.h>

#include <memory>

#include <cmath>

#include "core/cfc.h"
#include "core/configurations.h"
#include "core/goal.h"
#include "core/improvement.h"
#include "core/nref_families.h"
#include "core/query_family.h"
#include "core/report.h"
#include "core/tpch_families.h"
#include "datagen/nref_gen.h"
#include "datagen/tpch_gen.h"
#include "test_util.h"
#include "util/rng.h"

namespace tabbench {
namespace {

std::vector<QueryTiming> Timings(std::vector<double> secs,
                                 size_t timeouts = 0) {
  std::vector<QueryTiming> out;
  for (double s : secs) out.push_back({s, false});
  for (size_t i = 0; i < timeouts; ++i) out.push_back({1800.0, true});
  return out;
}

// --------------------------------------------------------------------- CFC

TEST(CfcTest, AtUsesStrictLessThan) {
  auto cfc = CumulativeFrequency::FromTimings(Timings({10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(cfc.At(10.0), 0.0);   // strict '<'
  EXPECT_DOUBLE_EQ(cfc.At(10.01), 0.25);
  EXPECT_DOUBLE_EQ(cfc.At(25.0), 0.5);
  EXPECT_DOUBLE_EQ(cfc.At(1e9), 1.0);
}

TEST(CfcTest, TimeoutsNeverCount) {
  auto cfc = CumulativeFrequency::FromTimings(Timings({10, 20}, 2));
  EXPECT_EQ(cfc.total(), 4u);
  EXPECT_EQ(cfc.timeouts(), 2u);
  EXPECT_DOUBLE_EQ(cfc.At(1e12), 0.5);
}

TEST(CfcTest, QuantileReadsOff) {
  auto cfc = CumulativeFrequency::FromTimings(Timings({1, 2, 3, 4, 5}));
  EXPECT_DOUBLE_EQ(cfc.Quantile(0.2), 1.0);
  EXPECT_DOUBLE_EQ(cfc.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cfc.Quantile(1.0), 5.0);
}

TEST(CfcTest, QuantileInfiniteWhenTimeoutsBlock) {
  auto cfc = CumulativeFrequency::FromTimings(Timings({1, 2}, 2));
  EXPECT_TRUE(std::isinf(cfc.Quantile(0.9)));
  EXPECT_DOUBLE_EQ(cfc.Quantile(0.5), 2.0);
}

TEST(CfcTest, DominatesDetectsCleanSeparation) {
  auto fast = CumulativeFrequency::FromTimings(Timings({1, 2, 3, 4}));
  auto slow = CumulativeFrequency::FromTimings(Timings({10, 20, 30, 40}));
  EXPECT_TRUE(fast.Dominates(slow));
  EXPECT_FALSE(slow.Dominates(fast));
}

TEST(CfcTest, CrossingCurvesDoNotDominate) {
  auto a = CumulativeFrequency::FromTimings(Timings({1, 100}));
  auto b = CumulativeFrequency::FromTimings(Timings({10, 20}));
  EXPECT_FALSE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
}

TEST(CfcTest, SelfDominanceIsFalse) {
  auto a = CumulativeFrequency::FromTimings(Timings({1, 2, 3}));
  EXPECT_FALSE(a.Dominates(a));
}

TEST(CfcTest, FewerTimeoutsHelpDominance) {
  auto a = CumulativeFrequency::FromTimings(Timings({1, 2, 3}, 0));
  auto b = CumulativeFrequency::FromTimings(Timings({1, 2, 3}, 1));
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
}

class CfcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CfcPropertyTest, MonotoneAndBounded) {
  Rng rng(GetParam());
  std::vector<QueryTiming> ts;
  for (int i = 0; i < 100; ++i) {
    bool to = rng.Bernoulli(0.2);
    ts.push_back({to ? 1800.0 : rng.UniformDouble() * 1000.0, to});
  }
  auto cfc = CumulativeFrequency::FromTimings(ts);
  double prev = -1;
  for (double x = 0; x < 2000; x += 37) {
    double v = cfc.At(x);
    EXPECT_GE(v, prev);
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
    prev = v;
  }
  // Curve tops out at 1 - timeout fraction.
  EXPECT_NEAR(cfc.At(1e18),
              1.0 - static_cast<double>(cfc.timeouts()) / 100.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CfcPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ------------------------------------------------------------ LogHistogram

TEST(LogHistogramTest, BinsAndTimeouts) {
  auto h = LogHistogram::Build(Timings({0.5, 1.5, 15, 150, 1500}, 2), 1.0,
                               1800.0, 1);
  EXPECT_EQ(h.timeouts, 2u);
  EXPECT_EQ(h.below_range, 1u);  // the 0.5s query
  uint64_t counted = 0;
  for (uint64_t c : h.counts) counted += c;
  EXPECT_EQ(counted, 4u);
}

TEST(LogHistogramTest, HalfDecadeEdges) {
  auto h = LogHistogram::Build({}, 1.0, 100.0, 2);
  ASSERT_GE(h.edges.size(), 5u);
  EXPECT_NEAR(h.edges[1] / h.edges[0], std::sqrt(10.0), 1e-9);
}

TEST(LogHistogramTest, ValuesAboveRangeClampToLastBin) {
  auto h = LogHistogram::Build(Timings({999999.0}), 1.0, 1000.0, 1);
  EXPECT_EQ(h.counts.back(), 1u);
}

// -------------------------------------------------------------------- Goal

TEST(GoalTest, PaperExample2Shape) {
  PerformanceGoal g = PerformanceGoal::PaperExample2();
  EXPECT_DOUBLE_EQ(g.At(5.0), 0.0);
  EXPECT_DOUBLE_EQ(g.At(10.0), 0.10);
  EXPECT_DOUBLE_EQ(g.At(59.0), 0.10);
  EXPECT_DOUBLE_EQ(g.At(60.0), 0.50);
  EXPECT_DOUBLE_EQ(g.At(1800.0), 0.90);
}

TEST(GoalTest, SatisfactionBoundary) {
  PerformanceGoal g = PerformanceGoal::FromSteps({{10.0, 0.5}});
  // 5 of 10 queries under 10s: satisfied (CFC > G needs >= 50% at 10s).
  auto pass = CumulativeFrequency::FromTimings(
      Timings({1, 2, 3, 4, 5, 20, 30, 40, 50, 60}));
  EXPECT_TRUE(g.SatisfiedBy(pass));
  auto fail = CumulativeFrequency::FromTimings(
      Timings({1, 2, 3, 4, 15, 20, 30, 40, 50, 60}));
  EXPECT_FALSE(g.SatisfiedBy(fail));
  EXPECT_NEAR(g.Shortfall(fail), 0.1, 1e-12);
}

TEST(GoalTest, TimeoutsCauseShortfall) {
  PerformanceGoal g = PerformanceGoal::FromSteps({{1800.0, 0.9}});
  auto cfc = CumulativeFrequency::FromTimings(Timings({1, 2}, 8));
  EXPECT_FALSE(g.SatisfiedBy(cfc));
  EXPECT_NEAR(g.Shortfall(cfc), 0.9 - 0.2, 1e-12);
}

TEST(GoalTest, ToStringMentionsSteps) {
  std::string s = PerformanceGoal::PaperExample2().ToString();
  EXPECT_NE(s.find("10%"), std::string::npos);
  EXPECT_NE(s.find("90%"), std::string::npos);
}

TEST(GoalTest, ImprovementRatio) {
  EXPECT_DOUBLE_EQ(ImprovementRatio(100.0, 10.0), 10.0);
  EXPECT_TRUE(std::isinf(ImprovementRatio(5.0, 0.0)));
}

// ------------------------------------------------------------- Improvement

TEST(ImprovementTest, ActualSkipsTimeouts) {
  std::vector<QueryTiming> ci = {{100, false}, {1800, true}, {50, false}};
  std::vector<QueryTiming> cj = {{10, false}, {10, false}, {1800, true}};
  auto r = ActualImprovementRatios(ci, cj);
  // Only the first pair survives (others involve a timeout).
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0], 10.0);
}

TEST(ImprovementTest, EstimatedRatios) {
  auto r = EstimatedImprovementRatios({100, 30}, {10, 30});
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 10.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
}

// ---------------------------------------------------------- Configurations

TEST(ConfigurationsTest, OneColumnConfigCoversEveryIndexableColumn) {
  Catalog catalog;
  AddNrefSchema(&catalog);
  Configuration c = Make1CConfig(catalog);
  EXPECT_EQ(c.name, "1C");
  EXPECT_EQ(c.indexes.size(), catalog.IndexableColumns().size());
  for (const auto& idx : c.indexes) {
    EXPECT_EQ(idx.columns.size(), 1u);
    EXPECT_FALSE(idx.is_primary);
  }
  EXPECT_TRUE(MakePConfig().indexes.empty());
}

// ---------------------------------------------------------------- Families

TEST(FamilyTest, PickConstantsSpreadsFrequencies) {
  ColumnStats cs;
  cs.row_count = 10000;
  cs.freq_examples = {{1, Value(int64_t{100})},
                      {12, Value(int64_t{200})},
                      {95, Value(int64_t{300})},
                      {800, Value(int64_t{400})}};
  auto t = PickConstants(cs);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->k1, Value(int64_t{100}));
  EXPECT_EQ(t->f1, 1u);
  EXPECT_EQ(t->f2, 12u);
  EXPECT_EQ(t->f3, 95u);
}

TEST(FamilyTest, PickConstantsRejectsFlatColumns) {
  ColumnStats cs;
  cs.row_count = 100;
  cs.freq_examples = {{1, Value(int64_t{1})}, {2, Value(int64_t{2})}};
  EXPECT_FALSE(PickConstants(cs).has_value());
}

TEST(FamilyTest, GroupSetsExcludeAnchor) {
  auto sets = GroupSets({"a", "b", "c"}, "b", 2, 3);
  ASSERT_FALSE(sets.empty());
  for (const auto& s : sets) {
    for (const auto& c : s) EXPECT_NE(c, "b");
  }
}

class NrefFamilyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    owner_ = testing::MakeMiniNref(/*scale_inverse=*/1000.0);
    db_ = owner_.get();
  }
  static void TearDownTestSuite() {
    owner_.reset();
    db_ = nullptr;
  }
  // Owning handle; db_ stays a raw alias so call sites read naturally.
  static std::unique_ptr<Database> owner_;
  static Database* db_;
};

std::unique_ptr<Database> NrefFamilyTest::owner_;
Database* NrefFamilyTest::db_ = nullptr;

TEST_F(NrefFamilyTest, Nref2JGeneratesAndBinds) {
  QueryFamily f = GenerateNref2J(db_->catalog(), db_->stats());
  EXPECT_GT(f.queries.size(), 50u);
  // Every generated query must parse and bind — the family is only useful
  // if the engine accepts all of it.
  for (const auto& q : f.queries) {
    auto b = ParseAndBind(q.sql, db_->catalog());
    ASSERT_TRUE(b.ok()) << q.sql << "\n" << b.status().ToString();
    EXPECT_EQ(b->num_relations(), 2);
    EXPECT_EQ(b->in_preds.size(), 2u);
    EXPECT_TRUE(b->IsAggregate());
  }
}

TEST_F(NrefFamilyTest, Nref3JGeneratesAndBinds) {
  QueryFamily f = GenerateNref3J(db_->catalog(), db_->stats());
  EXPECT_GT(f.queries.size(), 50u);
  for (const auto& q : f.queries) {
    auto b = ParseAndBind(q.sql, db_->catalog());
    ASSERT_TRUE(b.ok()) << q.sql << "\n" << b.status().ToString();
    EXPECT_EQ(b->num_relations(), 3);
    ASSERT_EQ(b->filters.size(), 1u);
    // Self-join: two occurrences of the same base table.
    EXPECT_EQ(b->relations[0], b->relations[1]);
  }
}

TEST_F(NrefFamilyTest, Nref3JHasCountDistinct) {
  QueryFamily f = GenerateNref3J(db_->catalog(), db_->stats());
  ASSERT_FALSE(f.queries.empty());
  for (const auto& q : f.queries) {
    EXPECT_NE(q.sql.find("COUNT(DISTINCT"), std::string::npos);
  }
}

class TpchFamilyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    owner_ = testing::MakeMiniTpch(1000.0, 1.0);
    db_ = owner_.get();
  }
  static void TearDownTestSuite() {
    owner_.reset();
    db_ = nullptr;
  }
  // Owning handle; db_ stays a raw alias so call sites read naturally.
  static std::unique_ptr<Database> owner_;
  static Database* db_;
};

std::unique_ptr<Database> TpchFamilyTest::owner_;
Database* TpchFamilyTest::db_ = nullptr;

TEST_F(TpchFamilyTest, Tpch3JGeneratesAndBinds) {
  QueryFamily f = GenerateTpch3J(db_->catalog(), db_->stats(), "SkTH3J");
  EXPECT_GT(f.queries.size(), 20u);
  for (const auto& q : f.queries) {
    auto b = ParseAndBind(q.sql, db_->catalog());
    ASSERT_TRUE(b.ok()) << q.sql << "\n" << b.status().ToString();
    EXPECT_EQ(b->num_relations(), 3);
  }
}

TEST_F(TpchFamilyTest, SimpleVariantRestrictsTablesAndTheta) {
  QueryFamily f = GenerateTpch3Js(db_->catalog(), db_->stats());
  EXPECT_GT(f.queries.size(), 5u);
  for (const auto& q : f.queries) {
    // theta is always equality — no IN in the simple family.
    EXPECT_EQ(q.sql.find(" IN "), std::string::npos) << q.sql;
    auto b = ParseAndBind(q.sql, db_->catalog());
    ASSERT_TRUE(b.ok()) << q.sql;
    for (const auto& rel : b->relations) {
      EXPECT_TRUE(rel == "lineitem" || rel == "orders" || rel == "partsupp")
          << rel;
    }
  }
}

// ------------------------------------------------------------------ Report

TEST(ReportTest, CfcComparisonContainsConfigsAndTimeouts) {
  std::vector<NamedCurve> curves = {
      {"P", CumulativeFrequency::FromTimings(Timings({100, 500}, 2))},
      {"1C", CumulativeFrequency::FromTimings(Timings({1, 2, 3, 4}))},
  };
  std::string s = RenderCfcComparison(curves, {}, "title");
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("P"), std::string::npos);
  EXPECT_NE(s.find("1C"), std::string::npos);
  EXPECT_NE(s.find("timeouts"), std::string::npos);
}

TEST(ReportTest, HistogramRendersTimeoutBin) {
  auto h = LogHistogram::Build(Timings({5, 50, 500}, 3), 1, 1800, 1);
  std::string s = RenderHistogram(h, "hist");
  EXPECT_NE(s.find("t_out"), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

TEST(ReportTest, GoalCheckNamesVerdicts) {
  std::vector<NamedCurve> curves = {
      {"good", CumulativeFrequency::FromTimings(
                   Timings({1, 1, 1, 1, 1, 1, 1, 1, 1, 1}))},
      {"bad", CumulativeFrequency::FromTimings(Timings({1}, 9))},
  };
  std::string s =
      RenderGoalCheck(PerformanceGoal::PaperExample2(), curves);
  EXPECT_NE(s.find("SATISFIES"), std::string::npos);
  EXPECT_NE(s.find("fails"), std::string::npos);
}

TEST(ReportTest, QuantilesRenderTimeoutMarker) {
  std::vector<NamedCurve> curves = {
      {"X", CumulativeFrequency::FromTimings(Timings({10}, 9))}};
  std::string s = RenderQuantiles(curves, {0.05, 0.9});
  EXPECT_NE(s.find("t_out"), std::string::npos);
}

}  // namespace
}  // namespace tabbench
