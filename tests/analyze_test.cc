#include <gtest/gtest.h>

#include <memory>

#include "core/configurations.h"
#include "engine/database.h"
#include "test_util.h"

namespace tabbench {
namespace {

using testing::TinyDb;

class AnalyzeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { tiny_ = std::make_unique<TinyDb>(TinyDb::Make(3000, 30)); }
  static void TearDownTestSuite() {
    tiny_.reset();
  }
  Database* db() { return tiny_->db.get(); }
  static std::unique_ptr<TinyDb> tiny_;
};

std::unique_ptr<TinyDb> AnalyzeTest::tiny_;

TEST_F(AnalyzeTest, ScanActualRowsMatchTable) {
  auto run = db()->RunAnalyze(
      "SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // Root aggregate emits one row per dept; its child scan emits every row.
  const PlanNode* root = run->plan.root.get();
  ASSERT_EQ(root->kind, PlanNode::Kind::kHashAggregate);
  EXPECT_EQ(root->actual_rows,
            static_cast<int64_t>(run->result.rows.size()));
  const PlanNode* scan = root->children[0].get();
  EXPECT_EQ(scan->actual_rows, 3000);
}

TEST_F(AnalyzeTest, FilterReducesActualRows) {
  auto run = db()->RunAnalyze(
      "SELECT p.dept, COUNT(*) FROM people p WHERE p.dept = 5 "
      "GROUP BY p.dept");
  ASSERT_TRUE(run.ok());
  const PlanNode* scan = run->plan.root->children[0].get();
  EXPECT_GT(scan->actual_rows, 0);
  EXPECT_LT(scan->actual_rows, 3000);
}

TEST_F(AnalyzeTest, JoinActualsPropagate) {
  auto run = db()->RunAnalyze(
      "SELECT d.region, COUNT(*) FROM people p, depts d "
      "WHERE p.dept = d.dept_id GROUP BY d.region");
  ASSERT_TRUE(run.ok());
  const PlanNode* join = run->plan.root->children[0].get();
  // Every person matches exactly one dept.
  EXPECT_EQ(join->actual_rows, 3000);
  for (const auto& child : join->children) {
    EXPECT_GE(child->actual_rows, 0) << "child missing actuals";
  }
}

TEST_F(AnalyzeTest, ToStringShowsActuals) {
  auto run = db()->RunAnalyze(
      "SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept");
  ASSERT_TRUE(run.ok());
  std::string s = run->plan.ToString();
  EXPECT_NE(s.find("actual="), std::string::npos) << s;
}

TEST_F(AnalyzeTest, PlainExplainHasNoActuals) {
  auto plan = db()->Plan(
      "SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->ToString().find("actual="), std::string::npos);
  EXPECT_EQ(plan->root->actual_rows, -1);
}

TEST_F(AnalyzeTest, EstimateVsActualGapVisibleOnSkew) {
  // The city column is skewed; equality on a hot value is estimated exactly
  // via MCVs, so est and actual agree — the instrumentation lets a test
  // assert that relationship end to end.
  ASSERT_TRUE(
      db()->ApplyConfiguration(Make1CConfig(db()->catalog())).ok());
  auto run = db()->RunAnalyze(
      "SELECT p.city, COUNT(*) FROM people p WHERE p.city = 'city0' "
      "GROUP BY p.city");
  ASSERT_TRUE(run.ok());
  const PlanNode* leaf = run->plan.root.get();
  while (!leaf->children.empty()) leaf = leaf->children[0].get();
  ASSERT_GT(leaf->actual_rows, 0);
  EXPECT_NEAR(static_cast<double>(leaf->actual_rows), leaf->est_rows,
              leaf->est_rows * 0.25 + 2.0);
  ASSERT_TRUE(db()->ResetToPrimary().ok());
}

}  // namespace
}  // namespace tabbench
