#include <gtest/gtest.h>

#include "storage/buffer_pool.h"
#include "storage/heap_table.h"
#include "storage/page_store.h"
#include "storage/tuple_codec.h"
#include "test_util.h"
#include "util/rng.h"

namespace tabbench {
namespace {

// --------------------------------------------------------------- PageStore

TEST(PageStoreTest, AllocateAndGet) {
  PageStore s;
  PageId a = s.Allocate();
  PageId b = s.Allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(s.allocated_pages(), 2u);
  s.GetPage(a)->used = 17;
  EXPECT_EQ(s.GetPage(a)->used, 17u);
}

TEST(PageStoreTest, FreeReducesLiveCountAndNeverReusesIds) {
  PageStore s;
  PageId a = s.Allocate();
  s.Free(a);
  EXPECT_EQ(s.allocated_pages(), 0u);
  PageId b = s.Allocate();
  EXPECT_NE(a, b);
}

TEST(PageStoreTest, DoubleFreeIsHarmless) {
  PageStore s;
  PageId a = s.Allocate();
  s.Free(a);
  s.Free(a);
  EXPECT_EQ(s.allocated_pages(), 0u);
}

// -------------------------------------------------------------- BufferPool

TEST(BufferPoolTest, MissThenHit) {
  BufferPool p(4);
  EXPECT_FALSE(p.Touch(1));
  EXPECT_TRUE(p.Touch(1));
  EXPECT_EQ(p.misses(), 1u);
  EXPECT_EQ(p.hits(), 1u);
}

TEST(BufferPoolTest, EvictsLeastRecentlyUsed) {
  BufferPool p(2);
  p.Touch(1);
  p.Touch(2);
  p.Touch(1);      // 1 is now MRU
  p.Touch(3);      // evicts 2
  EXPECT_TRUE(p.Touch(1));
  EXPECT_FALSE(p.Touch(2));  // was evicted
}

TEST(BufferPoolTest, CapacityRespected) {
  BufferPool p(8);
  for (PageId i = 0; i < 100; ++i) p.Touch(i);
  EXPECT_EQ(p.resident(), 8u);
}

TEST(BufferPoolTest, SequentialScanLargerThanPoolAlwaysMisses) {
  // Classic LRU sequential-flooding: a repeated scan of N+1 pages through
  // an N-page pool never hits.
  BufferPool p(4);
  for (int round = 0; round < 3; ++round) {
    for (PageId i = 0; i < 5; ++i) p.Touch(i);
  }
  EXPECT_EQ(p.hits(), 0u);
  EXPECT_EQ(p.misses(), 15u);
}

TEST(BufferPoolTest, ClearForgetsEverything) {
  BufferPool p(4);
  p.Touch(1);
  p.Clear();
  EXPECT_EQ(p.resident(), 0u);
  EXPECT_FALSE(p.Touch(1));
}

TEST(BufferPoolTest, EvictSpecificPage) {
  BufferPool p(4);
  p.Touch(1);
  p.Touch(2);
  p.Evict(1);
  EXPECT_EQ(p.resident(), 1u);
  EXPECT_FALSE(p.Touch(1));
  // Evicting an absent page is a no-op.
  p.Evict(99);
}

TEST(BufferPoolTest, ZeroCapacityClampsToOne) {
  BufferPool p(0);
  EXPECT_EQ(p.capacity(), 1u);
  p.Touch(1);
  EXPECT_TRUE(p.Touch(1));
}

TEST(BufferPoolTest, ClearResetsCounters) {
  // A cleared pool starts a fresh accounting epoch: hit/miss counters from
  // before the clear would otherwise leak one workload's ratio into the
  // next cold-start run.
  BufferPool p(4);
  p.Touch(1);
  p.Touch(1);
  ASSERT_EQ(p.stats().accesses(), 2u);
  p.Clear();
  EXPECT_EQ(p.hits(), 0u);
  EXPECT_EQ(p.misses(), 0u);
  EXPECT_DOUBLE_EQ(p.stats().HitRatio(), 0.0);
}

TEST(BufferPoolTest, StatsSnapshotAndHitRatio) {
  BufferPool p(4);
  EXPECT_DOUBLE_EQ(p.stats().HitRatio(), 0.0);  // no accesses yet
  p.Touch(1);  // miss
  p.Touch(1);  // hit
  p.Touch(2);  // miss
  p.Touch(1);  // hit
  BufferPoolStats s = p.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.resident, 2u);
  EXPECT_EQ(s.capacity, 4u);
  EXPECT_DOUBLE_EQ(s.HitRatio(), 0.5);
}

TEST(BufferPoolTest, HitRatioAccountingPinnedAcrossShrink) {
  BufferPool p(4);
  for (PageId i = 0; i < 4; ++i) p.Touch(i);  // 4 misses, pool full
  for (PageId i = 0; i < 4; ++i) p.Touch(i);  // 4 hits
  ASSERT_DOUBLE_EQ(p.stats().HitRatio(), 0.5);

  // Shrinking evicts LRU pages but must not rewrite accounting history:
  // counters describe accesses, not residency.
  p.SetCapacity(2);
  EXPECT_EQ(p.resident(), 2u);
  BufferPoolStats s = p.stats();
  EXPECT_EQ(s.hits, 4u);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_DOUBLE_EQ(s.HitRatio(), 0.5);

  // The 2 MRU pages (2, 3) survived the shrink; 0 and 1 were evicted.
  EXPECT_TRUE(p.Touch(3));
  EXPECT_TRUE(p.Touch(2));
  EXPECT_FALSE(p.Touch(0));
  EXPECT_FALSE(p.Touch(1));
  EXPECT_DOUBLE_EQ(p.stats().HitRatio(), 0.5);  // 6 hits / 12 accesses
}

// -------------------------------------------------------------- TupleCodec

TEST(TupleCodecTest, RoundTripAllTypes) {
  TupleCodec codec({TypeId::kInt, TypeId::kDouble, TypeId::kString});
  Tuple t({Value(int64_t{-12345}), Value(3.75), Value(std::string("héllo"))});
  std::vector<uint8_t> buf;
  codec.Encode(t, &buf);
  size_t off = 0;
  Tuple back = codec.Decode(buf.data(), &off);
  EXPECT_EQ(back, t);
  EXPECT_EQ(off, buf.size());
}

TEST(TupleCodecTest, RoundTripNulls) {
  TupleCodec codec({TypeId::kInt, TypeId::kString});
  Tuple t({Value(), Value()});
  std::vector<uint8_t> buf;
  codec.Encode(t, &buf);
  size_t off = 0;
  Tuple back = codec.Decode(buf.data(), &off);
  EXPECT_TRUE(back.at(0).is_null());
  EXPECT_TRUE(back.at(1).is_null());
}

TEST(TupleCodecTest, EncodedSizeMatchesEncoding) {
  TupleCodec codec({TypeId::kInt, TypeId::kString, TypeId::kDouble});
  Tuple t({Value(int64_t{1}), Value(std::string("abcdef")), Value()});
  std::vector<uint8_t> buf;
  codec.Encode(t, &buf);
  EXPECT_EQ(codec.EncodedSize(t), buf.size());
}

TEST(TupleCodecTest, BackToBackDecoding) {
  TupleCodec codec({TypeId::kInt});
  std::vector<uint8_t> buf;
  for (int64_t i = 0; i < 10; ++i) {
    codec.Encode(Tuple({Value(i)}), &buf);
  }
  size_t off = 0;
  for (int64_t i = 0; i < 10; ++i) {
    Tuple t = codec.Decode(buf.data(), &off);
    EXPECT_EQ(t.at(0).as_int(), i);
  }
}

class CodecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzz, RandomRowsRoundTrip) {
  Rng rng(GetParam());
  TupleCodec codec({TypeId::kInt, TypeId::kDouble, TypeId::kString,
                    TypeId::kInt});
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<Value> vals;
    vals.push_back(rng.Bernoulli(0.1)
                       ? Value()
                       : Value(static_cast<int64_t>(rng.Next())));
    vals.push_back(rng.Bernoulli(0.1) ? Value() : Value(rng.UniformDouble()));
    std::string s;
    for (size_t i = 0; i < rng.Uniform(40); ++i) {
      s += static_cast<char>('a' + rng.Uniform(26));
    }
    vals.push_back(Value(s));
    vals.push_back(Value(static_cast<int64_t>(rng.Uniform(100))));
    Tuple t(std::move(vals));
    std::vector<uint8_t> buf;
    codec.Encode(t, &buf);
    size_t off = 0;
    EXPECT_EQ(codec.Decode(buf.data(), &off), t);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Values(1, 2, 3, 4));

// --------------------------------------------------------------- HeapTable

TEST(HeapTableTest, AppendAndScan) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  for (int64_t i = 0; i < 100; ++i) heap.Append(Tuple({Value(i)}));
  EXPECT_EQ(heap.num_rows(), 100u);

  auto cur = heap.Scan(nullptr);
  Tuple t;
  int64_t expected = 0;
  while (cur.Next(&t, nullptr)) {
    EXPECT_EQ(t.at(0).as_int(), expected++);
  }
  EXPECT_EQ(expected, 100);
}

TEST(HeapTableTest, FetchByRid) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt, TypeId::kString}), &store);
  std::vector<Rid> rids;
  for (int64_t i = 0; i < 500; ++i) {
    rids.push_back(heap.Append(
        Tuple({Value(i), Value("row" + std::to_string(i))})));
  }
  for (int64_t i : {0, 123, 499}) {
    auto t = heap.Fetch(rids[static_cast<size_t>(i)], nullptr);
    ASSERT_TRUE(t.ok());
    EXPECT_EQ(t->at(0).as_int(), i);
    EXPECT_EQ(t->at(1).as_string(), "row" + std::to_string(i));
  }
}

TEST(HeapTableTest, FetchBadRidFails) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  heap.Append(Tuple({Value(int64_t{1})}));
  EXPECT_TRUE(heap.Fetch(Rid{9, 0}, nullptr).status().IsNotFound());
  EXPECT_TRUE(heap.Fetch(Rid{0, 9}, nullptr).status().IsNotFound());
}

TEST(HeapTableTest, MultiplePagesAllocated) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kString}), &store);
  for (int i = 0; i < 100; ++i) {
    heap.Append(Tuple({Value(std::string(500, 'x'))}));
  }
  EXPECT_GT(heap.num_pages(), 5u);
  // ~16 rows of 500B fit an 8 KiB page.
  EXPECT_LE(heap.num_pages(), 10u);
}

TEST(HeapTableTest, ScanTouchesEachPageOnce) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kString}), &store);
  for (int i = 0; i < 64; ++i) {
    heap.Append(Tuple({Value(std::string(1000, 'y'))}));
  }
  size_t touches = 0;
  auto cur = heap.Scan([&](PageId) { ++touches; });
  Tuple t;
  while (cur.Next(&t, nullptr)) {
  }
  EXPECT_EQ(touches, heap.num_pages());
}

TEST(HeapTableTest, ScanYieldsValidRids) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  for (int64_t i = 0; i < 200; ++i) heap.Append(Tuple({Value(i)}));
  auto cur = heap.Scan(nullptr);
  Tuple t;
  Rid rid;
  while (cur.Next(&t, &rid)) {
    auto fetched = heap.Fetch(rid, nullptr);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(*fetched, t);
  }
}

TEST(HeapTableTest, InsertReportsTailPageAndMatchesAppend) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  size_t touches = 0;
  for (int64_t i = 0; i < 300; ++i) {
    auto rid = heap.Insert(Tuple({Value(i)}), [&](PageId) { ++touches; });
    ASSERT_TRUE(rid.ok()) << rid.status().ToString();
    // Insert lands rows where Append would: the same (page, slot) walk.
    auto fetched = heap.Fetch(*rid, nullptr);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched->at(0).as_int(), i);
  }
  // One tail-page touch per insert (write-path accounting).
  EXPECT_EQ(touches, 300u);
  EXPECT_EQ(heap.num_rows(), 300u);
}

TEST(HeapTableTest, DeleteTombstonesAndScansSkip) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  std::vector<Rid> rids;
  for (int64_t i = 0; i < 100; ++i) rids.push_back(heap.Append(Tuple({Value(i)})));

  // Tombstone every third row.
  for (size_t i = 0; i < rids.size(); i += 3) {
    EXPECT_TRUE(heap.IsLive(rids[i]));
    TB_ASSERT_OK(heap.Delete(rids[i], nullptr));
    EXPECT_FALSE(heap.IsLive(rids[i]));
    // The bytes stay but the row is dead to reads.
    EXPECT_TRUE(heap.Fetch(rids[i], nullptr).status().IsNotFound());
  }
  EXPECT_EQ(heap.num_rows(), 66u);
  EXPECT_EQ(heap.num_deleted(), 34u);

  // Double delete and out-of-range rids are NotFound, not corruption.
  EXPECT_TRUE(heap.Delete(rids[0], nullptr).IsNotFound());
  EXPECT_TRUE(heap.Delete(Rid{99, 0}, nullptr).IsNotFound());

  // Scans yield exactly the survivors, in order.
  auto cur = heap.Scan(nullptr);
  Tuple t;
  Rid rid;
  int64_t seen = 0;
  while (cur.Next(&t, &rid)) {
    EXPECT_NE(t.at(0).as_int() % 3, 0) << "tombstoned row leaked into scan";
    ++seen;
  }
  EXPECT_EQ(seen, 66);
}

TEST(HeapTableTest, InsertAfterDeleteStaysAppendOnly) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  std::vector<Rid> rids;
  for (int64_t i = 0; i < 10; ++i) rids.push_back(heap.Append(Tuple({Value(i)})));
  TB_ASSERT_OK(heap.Delete(rids[4], nullptr));
  // The tombstoned slot is never reused: new rows append past the tail,
  // which is the invariant the online index build's scan bound rests on.
  auto rid = heap.Insert(Tuple({Value(int64_t{10})}), nullptr);
  ASSERT_TRUE(rid.ok());
  EXPECT_TRUE(rids.back() < *rid);
}

TEST(HeapTableTest, DropFreesPages) {
  PageStore store;
  HeapTable heap("t", TupleCodec({TypeId::kInt}), &store);
  for (int64_t i = 0; i < 5000; ++i) heap.Append(Tuple({Value(i)}));
  size_t before = store.allocated_pages();
  EXPECT_GT(before, 0u);
  heap.Drop();
  EXPECT_EQ(store.allocated_pages(), 0u);
  EXPECT_EQ(heap.num_rows(), 0u);
}

}  // namespace
}  // namespace tabbench
