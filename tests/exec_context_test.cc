#include <gtest/gtest.h>

#include "core/configurations.h"
#include "exec/exec_context.h"
#include "test_util.h"

namespace tabbench {
namespace {

CostParams TestParams() {
  CostParams p;
  p.page_io_seconds = 1.0;
  p.random_io_seconds = 0.01;
  p.cpu_tuple_seconds = 0.001;
  p.cpu_hash_seconds = 0.0005;
  p.timeout_seconds = 100.0;
  return p;
}

TEST(ExecContextTest, SequentialMissChargesScaledCost) {
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, TestParams());
  PageId a = store.Allocate();
  ctx.TouchPage(a);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 1.0);
  EXPECT_EQ(ctx.pages_read(), 1u);
  // Hit: no charge.
  ctx.TouchPage(a);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 1.0);
}

TEST(ExecContextTest, RandomMissChargesSeekCost) {
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, TestParams());
  PageId a = store.Allocate();
  ctx.TouchPageRandom(a);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 0.01);
  // A random hit is free too.
  ctx.TouchPageRandom(a);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 0.01);
  // The same page through the sequential path is now cached.
  ctx.TouchPage(a);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 0.01);
}

TEST(ExecContextTest, TupleAndHashCharges) {
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, TestParams());
  ctx.ChargeTuples(100);
  ctx.ChargeHashOps(100);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 0.1 + 0.05);
  EXPECT_EQ(ctx.tuples_processed(), 100u);
}

TEST(ExecContextTest, ChargeIoPagesBypassesPool) {
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, TestParams());
  ctx.ChargeIoPages(3);
  EXPECT_DOUBLE_EQ(ctx.sim_time(), 3.0);
  EXPECT_EQ(pool.resident(), 0u);
}

TEST(ExecContextTest, TimeoutTripsOnAccumulatedCharge) {
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, TestParams());
  EXPECT_TRUE(ctx.CheckTimeout().ok());
  ctx.ChargeIoPages(101);  // 101 s > 100 s limit
  EXPECT_TRUE(ctx.TimedOut());
  EXPECT_TRUE(ctx.CheckTimeout().IsTimeout());
}

TEST(ExecContextTest, EvictionMakesReaccessCostAgain) {
  PageStore store;
  BufferPool pool(2);
  ExecContext ctx(&store, &pool, TestParams());
  PageId a = store.Allocate(), b = store.Allocate(), c = store.Allocate();
  ctx.TouchPage(a);
  ctx.TouchPage(b);
  ctx.TouchPage(c);  // evicts a
  double before = ctx.sim_time();
  ctx.TouchPage(a);  // miss again
  EXPECT_DOUBLE_EQ(ctx.sim_time(), before + 1.0);
}

TEST(ExecContextTest, TraceCoalescesPerTupleChargeCheckPairs) {
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, TestParams());
  AccessTrace trace;
  ctx.set_trace(&trace);

  // The executor's inner loop: charge one tuple, poll the timeout.
  for (int i = 0; i < 1000; ++i) {
    ctx.ChargeTuples(1);
    ASSERT_TRUE(ctx.CheckTimeout().ok());
  }
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].kind, TraceEvent::Kind::kUnitTuplesChecked);
  EXPECT_EQ(trace[0].arg, 1000u);

  // Redundant back-to-back checks collapse; multi-unit charges stay raw.
  ASSERT_TRUE(ctx.CheckTimeout().ok());
  EXPECT_EQ(trace.size(), 1u);
  ctx.ChargeTuples(7);
  ASSERT_TRUE(ctx.CheckTimeout().ok());
  ctx.ChargeHashOps(1);
  ASSERT_TRUE(ctx.CheckTimeout().ok());
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[1].kind, TraceEvent::Kind::kTuples);
  EXPECT_EQ(trace[1].arg, 7u);
  EXPECT_EQ(trace[2].kind, TraceEvent::Kind::kTimeoutCheck);
  EXPECT_EQ(trace[3].kind, TraceEvent::Kind::kUnitHashChecked);
  EXPECT_EQ(trace[3].arg, 1u);

  // Replay reproduces the live clock exactly (same FP operations).
  BufferPool replay_pool(4);
  ReplayOutcome ro = ReplayTrace(trace, &replay_pool, TestParams());
  EXPECT_EQ(ro.sim_seconds, ctx.sim_time());
  EXPECT_FALSE(ro.timed_out);
}

TEST(ExecContextTest, ReplayAbortsMidCoalescedRunAtTheExactTuple) {
  CostParams p = TestParams();
  p.timeout_seconds = 0.0105;  // 10.5 tuple charges at 0.001 s each...
  PageStore store;
  BufferPool pool(4);
  // ...but charge 11.5 of slack so live recording (enforcement off) runs on.
  ExecContext ctx(&store, &pool, p);
  ctx.set_enforce_timeout(false);
  AccessTrace trace;
  ctx.set_trace(&trace);
  for (int i = 0; i < 20; ++i) {
    ctx.ChargeTuples(1);
    ASSERT_TRUE(ctx.CheckTimeout().ok());
  }
  ASSERT_EQ(trace.size(), 1u);
  ASSERT_EQ(trace[0].arg, 20u);

  // The live enforced run would trip at tuple 11; the replay must too.
  BufferPool replay_pool(4);
  ReplayOutcome ro = ReplayTrace(trace, &replay_pool, p);
  EXPECT_TRUE(ro.timed_out);
  EXPECT_EQ(ro.sim_seconds, p.timeout_seconds);

  ExecContext live(&store, &pool, p);
  int tuples = 0;
  for (int i = 0; i < 20; ++i) {
    live.ChargeTuples(1);
    if (!live.CheckTimeout().ok()) break;
    ++tuples;
  }
  EXPECT_EQ(tuples, 10);  // aborts on the 11th charge, as the replay did
}

TEST(ExecContextTest, RecordBudgetAbortsWithTimeoutDespiteEnforcementOff) {
  CostParams p = TestParams();
  PageStore store;
  BufferPool pool(4);
  ExecContext ctx(&store, &pool, p);
  ctx.set_enforce_timeout(false);
  ctx.set_record_budget(2.0 * p.timeout_seconds);
  ctx.ChargeIoPages(150);  // past the timeout, under the budget
  EXPECT_TRUE(ctx.CheckTimeout().ok());
  ctx.ChargeIoPages(60);  // past the budget
  EXPECT_TRUE(ctx.CheckTimeout().IsTimeout());
}

/// End-to-end: the same query's page profile shifts from sequential-heavy
/// (P: scans) to random-heavy (1C: probes) — the mechanism that preserves
/// the paper's index-vs-scan economics at 1/400 scale (DESIGN.md §3).
TEST(ExecContextTest, IndexPlansShiftIoFromSequentialToRandom) {
  auto tiny = testing::TinyDb::Make(6000, 50);
  Database* db = tiny.db.get();
  // Filter on a non-key column: P has no index for it and must scan.
  const std::string q =
      "SELECT p.score, COUNT(*) FROM people p WHERE p.score = 321 "
      "GROUP BY p.score";

  db->buffer_pool()->Clear();
  auto on_p = db->Run(q);
  ASSERT_TRUE(on_p.ok());
  ASSERT_TRUE(db->ApplyConfiguration(Make1CConfig(db->catalog())).ok());
  db->buffer_pool()->Clear();
  auto on_1c = db->Run(q);
  ASSERT_TRUE(on_1c.ok());

  // The index plan touches a handful of pages; the scan touches them all.
  EXPECT_LT(on_1c->pages_read, 10u);
  EXPECT_GT(on_p->pages_read, 20u);
  EXPECT_LT(on_1c->sim_seconds, on_p->sim_seconds / 10.0);
  ASSERT_TRUE(db->ResetToPrimary().ok());
}

}  // namespace
}  // namespace tabbench
