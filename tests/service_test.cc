#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "advisor/advisor.h"
#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/runner.h"
#include "core/sampling.h"
#include "service/circuit_breaker.h"
#include "service/session.h"
#include "util/thread_pool.h"
#include "service/watchdog.h"
#include "service/workload_service.h"
#include "storage/btree.h"
#include "storage/page_store.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "util/run_journal.h"

namespace tabbench {
namespace {

/// ServiceOptions with `workers` threads and no in-flight cap.
ServiceOptions WorkerOpts(size_t workers) {
  ServiceOptions opts;
  opts.workers = workers;
  opts.max_in_flight = 0;
  return opts;
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    TB_ASSERT_OK(pool.Submit([&count] { ++count; }));
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.completed(), 100u);
}

TEST(ThreadPoolTest, WaitLeavesPoolUsable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  TB_ASSERT_OK(pool.Submit([&count] { ++count; }));
  pool.Wait();
  TB_ASSERT_OK(pool.Submit([&count] { ++count; }));
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, BoundedQueueRejectsWithUnavailable) {
  // One worker blocked on a gate + a one-slot queue: the third submission
  // must be turned away, deterministically.
  ThreadPool pool(ThreadPool::Options{1, 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  TB_ASSERT_OK(pool.Submit([opened, &started] {
    started.set_value();
    opened.wait();
  }));
  started.get_future().wait();  // the worker is now occupied
  TB_ASSERT_OK(pool.Submit([] {}));  // fills the single queue slot
  Status s = pool.Submit([] {});
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(pool.rejected(), 1u);
  gate.set_value();
  pool.Wait();
  EXPECT_EQ(pool.completed(), 2u);
}

TEST(ThreadPoolTest, SubmitOrRunFallsBackToCaller) {
  ThreadPool pool(ThreadPool::Options{1, 1});
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::promise<void> started;
  TB_ASSERT_OK(pool.Submit([opened, &started] {
    started.set_value();
    opened.wait();
  }));
  started.get_future().wait();
  TB_ASSERT_OK(pool.Submit([] {}));  // queue now full
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  TB_ASSERT_OK(pool.SubmitOrRun([&ran_on] {
    ran_on = std::this_thread::get_id();
  }));
  EXPECT_EQ(ran_on, caller);  // caller-runs backpressure
  gate.set_value();
  pool.Wait();
}

TEST(ThreadPoolTest, ShutdownDrainsAcceptedJobsThenRejects) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  for (int i = 0; i < 50; ++i) {
    TB_ASSERT_OK(pool.Submit([&count] { ++count; }));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);  // every accepted job ran
  EXPECT_TRUE(pool.Submit([] {}).IsUnavailable());
  pool.Shutdown();  // idempotent
}

TEST(ThreadPoolTest, NumWorkersStableWhileShutdownJoins) {
  // Regression test: num_workers() used to read the workers_ vector that
  // Shutdown() concurrently joined and cleared — a data race TSan (and the
  // thread-safety annotations) flag. The count is now a constant set at
  // construction, so readers racing Shutdown() must always see it.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(3);
    std::atomic<bool> stop{false};
    std::atomic<bool> saw_bad{false};
    std::thread reader([&] {
      while (!stop.load()) {
        if (pool.num_workers() != 3) saw_bad.store(true);
      }
    });
    pool.Shutdown();
    stop.store(true);
    reader.join();
    EXPECT_FALSE(saw_bad.load());
    EXPECT_EQ(pool.num_workers(), 3u);  // still reported after shutdown
  }
}

TEST(ThreadPoolTest, ConcurrentShutdownIsIdempotent) {
  // Two threads racing Shutdown() (e.g. explicit call vs. destructor) must
  // both return with the workers joined exactly once.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i) {
      TB_ASSERT_OK(pool.Submit([&ran] { ++ran; }));
    }
    std::thread a([&] { pool.Shutdown(); });
    std::thread b([&] { pool.Shutdown(); });
    a.join();
    b.join();
    EXPECT_EQ(ran.load(), 8);  // accepted jobs drained before the join
    EXPECT_TRUE(pool.Submit([] {}).IsUnavailable());
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnceAndJoins) {
  ThreadPool pool(4);
  std::vector<int> hits(257, 0);
  ParallelFor(
      &pool, hits.size(), [&](size_t i) { hits[i]++; },
      [](size_t, Status) { FAIL() << "no rejection expected"; });
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
  // nullptr pool degrades to a sequential loop.
  ParallelFor(
      nullptr, hits.size(), [&](size_t i) { hits[i]++; },
      [](size_t, Status) {});
  for (size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 2) << i;
}

// ------------------------------------------------------------------ Session

class ServiceDbTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tiny_ = std::make_unique<testing::TinyDb>(
        testing::TinyDb::Make(3000, 20));
  }
  static void TearDownTestSuite() { tiny_.reset(); }
  static Database* db() { return tiny_->db.get(); }
  static std::unique_ptr<testing::TinyDb> tiny_;

  static constexpr const char* kScan =
      "SELECT p.dept, COUNT(*) FROM people p GROUP BY p.dept";
  static constexpr const char* kGrouped =
      "SELECT p.city, COUNT(*) FROM people p WHERE p.dept = 3 "
      "GROUP BY p.city";
};

std::unique_ptr<testing::TinyDb> ServiceDbTest::tiny_;

TEST_F(ServiceDbTest, SessionMatchesColdSharedPoolRun) {
  // A fresh session's private pool is cold, so its first execution must be
  // bit-identical to a cold run on the shared pool.
  db()->buffer_pool()->Clear();
  auto shared = db()->Run(kGrouped);
  ASSERT_TRUE(shared.ok());

  Session session(db());
  auto own = session.Execute(kGrouped);
  ASSERT_TRUE(own.ok());
  EXPECT_DOUBLE_EQ(own->sim_seconds, shared->sim_seconds);
  EXPECT_EQ(own->pages_read, shared->pages_read);
  EXPECT_EQ(own->rows.size(), shared->rows.size());
  EXPECT_DOUBLE_EQ(session.clock_seconds(), shared->sim_seconds);
  EXPECT_EQ(session.queries_run(), 1u);
}

TEST_F(ServiceDbTest, SessionWarmCacheAndClear) {
  Session session(db());
  auto cold = session.Execute(kGrouped);
  ASSERT_TRUE(cold.ok());
  auto warm = session.Execute(kGrouped);
  ASSERT_TRUE(warm.ok());
  EXPECT_LT(warm->sim_seconds, cold->sim_seconds);  // buffer hits
  session.ClearCache();
  auto recold = session.Execute(kGrouped);
  ASSERT_TRUE(recold.ok());
  EXPECT_DOUBLE_EQ(recold->sim_seconds, cold->sim_seconds);
}

TEST_F(ServiceDbTest, SessionsAreIsolated) {
  // Activity on one session must not perturb another's timings.
  Session alone(db());
  auto baseline = alone.Execute(kGrouped);
  ASSERT_TRUE(baseline.ok());

  Session noisy(db());
  Session measured(db());
  ASSERT_TRUE(noisy.Execute(kScan).ok());
  ASSERT_TRUE(noisy.Execute(kGrouped).ok());
  auto r = measured.Execute(kGrouped);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->sim_seconds, baseline->sim_seconds);
}

TEST_F(ServiceDbTest, DeadlineTripsAsTimeout) {
  Session probe(db());
  auto full = probe.Execute(kScan);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->timed_out);
  const double deadline = full->sim_seconds / 2.0;

  Session session(db());
  auto r = session.Execute(kScan, deadline);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->timed_out);
  // The paper's lower-bound convention: a tripped query reports exactly the
  // limit it tripped, here the folded-in deadline.
  EXPECT_DOUBLE_EQ(r->sim_seconds, deadline);
  EXPECT_EQ(session.timeouts(), 1u);
}

TEST_F(ServiceDbTest, CancellationReportsCancelled) {
  Session session(db());
  CancellationToken token;
  token.RequestCancel();
  auto r = session.Execute(kScan, /*deadline_seconds=*/-1.0, token);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_EQ(session.queries_run(), 0u);
}

// ---------------------------------------------------------- WorkloadService

TEST_F(ServiceDbTest, ServiceRunsQueriesAndMatchesColdRun) {
  db()->buffer_pool()->Clear();
  auto expect = db()->Run(kGrouped);
  ASSERT_TRUE(expect.ok());

  WorkloadService service(db(), WorkerOpts(2));
  auto fut = service.SubmitQuery(kGrouped);
  auto r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Sessionless jobs run on a fresh cold session: deterministic timings.
  EXPECT_DOUBLE_EQ(r->sim_seconds, expect->sim_seconds);
  EXPECT_EQ(r->rows.size(), expect->rows.size());
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST_F(ServiceDbTest, ServiceSessionStrandKeepsWarmOrder) {
  // Two queries on one service session == the same two queries on a private
  // Session object (strand serialization preserves warm-cache evolution).
  Session reference(db());
  auto first = reference.Execute(kGrouped);
  auto second = reference.Execute(kGrouped);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  WorkloadService service(db(), WorkerOpts(4));
  SessionId id = service.OpenSession();
  ASSERT_NE(id, kNoSession);
  JobOptions on_session;
  on_session.session = id;
  auto f1 = service.SubmitQuery(kGrouped, on_session);
  auto f2 = service.SubmitQuery(kGrouped, on_session);
  auto r1 = f1.get();
  auto r2 = f2.get();
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(r1->sim_seconds, first->sim_seconds);
  EXPECT_DOUBLE_EQ(r2->sim_seconds, second->sim_seconds);
  auto clock = service.SessionClock(id);
  ASSERT_TRUE(clock.ok());
  EXPECT_DOUBLE_EQ(*clock, first->sim_seconds + second->sim_seconds);
  TB_ASSERT_OK(service.CloseSession(id));
  EXPECT_TRUE(service.SubmitQuery(kGrouped, on_session).get().status()
                  .IsNotFound());
}

TEST_F(ServiceDbTest, ServiceSubmitWorkloadMatchesSequentialSession) {
  std::vector<std::string> sql = {kGrouped, kScan, kGrouped};
  Session reference(db());
  std::vector<double> expect;
  for (const auto& q : sql) {
    auto r = reference.Execute(q);
    ASSERT_TRUE(r.ok());
    expect.push_back(r->sim_seconds);
  }

  WorkloadService service(db(), WorkerOpts(2));
  auto fut = service.SubmitWorkload(sql);
  auto r = fut.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), sql.size());
  for (size_t i = 0; i < sql.size(); ++i) {
    EXPECT_DOUBLE_EQ((*r)[i].sim_seconds, expect[i]) << i;
  }
}

TEST_F(ServiceDbTest, ServiceDeadlineAndCancellation) {
  WorkloadService service(db(), WorkerOpts(2));

  Session probe(db());
  auto full = probe.Execute(kScan);
  ASSERT_TRUE(full.ok());
  JobOptions tight;
  tight.deadline_seconds = full->sim_seconds / 2.0;
  auto timed = service.SubmitQuery(kScan, tight).get();
  ASSERT_TRUE(timed.ok());
  EXPECT_TRUE(timed->timed_out);
  EXPECT_EQ(service.stats().query_timeouts, 1u);

  JobOptions doomed;
  doomed.cancel.RequestCancel();
  auto cancelled = service.SubmitQuery(kScan, doomed).get();
  EXPECT_TRUE(cancelled.status().IsCancelled());
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST_F(ServiceDbTest, ServiceShadowIndexBuildMatchesDirectRun) {
  WorkloadService service(db(), WorkerOpts(2));
  IndexDef def;
  def.name = "ix_shadow";
  def.target = "people";
  def.columns = {"dept"};

  Session probe(db());
  ExecContext ctx =
      db()->MakeSessionContext(probe.pool(), db()->options().cost);
  auto direct = ShadowIndexBuild(*db(), def, &ctx);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_GT(direct->entries, 0u);
  EXPECT_GT(direct->sim_seconds, 0.0);

  // A what-if build is deterministic and side-effect free: every service
  // run agrees with the in-process run bit for bit — the property the
  // chaos audit leans on when a killed shard's build job reruns elsewhere.
  auto a = service.SubmitIndexBuild(def).get();
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = service.SubmitIndexBuild(def).get();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->fingerprint, direct->fingerprint);
  EXPECT_EQ(b->fingerprint, direct->fingerprint);
  EXPECT_EQ(a->entries, direct->entries);
  EXPECT_EQ(a->pages, direct->pages);
  EXPECT_EQ(a->height, direct->height);
  EXPECT_EQ(a->sim_seconds, direct->sim_seconds);
  EXPECT_EQ(b->sim_seconds, direct->sim_seconds);
  // Nothing installed anywhere.
  EXPECT_EQ(db()->FindIndex("ix_shadow"), nullptr);
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST_F(ServiceDbTest, ServiceShadowIndexBuildCancelAndBadTarget) {
  WorkloadService service(db(), WorkerOpts(2));
  IndexDef def;
  def.name = "ix_doomed";
  def.target = "people";
  def.columns = {"dept"};

  JobOptions doomed;
  doomed.cancel.RequestCancel();
  auto cancelled = service.SubmitIndexBuild(def, doomed).get();
  EXPECT_TRUE(cancelled.status().IsCancelled());

  IndexDef bad = def;
  bad.target = "nope";
  auto missing = service.SubmitIndexBuild(bad).get();
  EXPECT_TRUE(missing.status().IsNotFound());
}

// ------------------------------------------------- Service retry/backoff

/// Disarms every fault point on scope exit so a failing ASSERT cannot leak
/// an armed schedule into later tests.
struct FaultGuard {
  FaultGuard() { FaultRegistry::Global().DisarmAll(); }
  ~FaultGuard() { FaultRegistry::Global().DisarmAll(); }
};

/// Arms `point` to fail every attempt with kUnavailable (probability 1).
void ArmAlwaysUnavailable(const char* point) {
  FaultSpec spec;
  spec.point = point;
  spec.code = Status::Code::kUnavailable;
  spec.trigger = FaultSpec::Trigger::kProbability;
  spec.probability = 1.0;
  TB_ASSERT_OK(FaultRegistry::Global().Arm(std::move(spec)));
}

TEST_F(ServiceDbTest, ServiceRetriesTransientFaultAndRecovers) {
  FaultGuard guard;
  FaultSpec spec;
  spec.point = "service.session_execute";
  spec.code = Status::Code::kUnavailable;
  spec.trigger = FaultSpec::Trigger::kOnce;  // each job's first attempt
  TB_ASSERT_OK(FaultRegistry::Global().Arm(std::move(spec)));

  WorkloadService service(db(), WorkerOpts(2));
  JobOptions jo;
  jo.retry = RetryPolicy::WithAttempts(3);
  jo.retry.initial_backoff_seconds = 1e-4;
  auto r = service.SubmitQuery(kGrouped, jo).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->timed_out);
  EXPECT_EQ(service.stats().retries, 1u);
  EXPECT_EQ(service.stats().failures, 0u);
}

TEST_F(ServiceDbTest, ServiceWorkloadIsolatesExhaustedRetriesAsCensored) {
  FaultGuard guard;
  ArmAlwaysUnavailable("service.session_execute");

  WorkloadService service(db(), WorkerOpts(2));
  JobOptions jo;  // default policy: no retry, so every query fails at once
  auto r = service.SubmitWorkload({kGrouped, kScan, kGrouped}, jo).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();  // the workload completes
  ASSERT_EQ(r->size(), 3u);
  const double t_out = db()->options().cost.timeout_seconds;
  for (const auto& qr : *r) {
    EXPECT_TRUE(qr.timed_out);
    EXPECT_TRUE(qr.failed);
    EXPECT_DOUBLE_EQ(qr.sim_seconds, t_out);  // censored at the timeout
  }
  EXPECT_EQ(service.stats().failures, 3u);
  EXPECT_EQ(service.stats().query_timeouts, 3u);
}

TEST_F(ServiceDbTest, ServiceBackoffSleepIsCancelAware) {
  FaultGuard guard;
  ArmAlwaysUnavailable("service.session_execute");

  WorkloadService service(db(), WorkerOpts(2));
  JobOptions jo;
  jo.retry = RetryPolicy::WithAttempts(3);
  jo.retry.initial_backoff_seconds = 60.0;  // would hang if not interrupted
  jo.retry.jitter_fraction = 0.0;
  auto start = std::chrono::steady_clock::now();
  auto fut = service.SubmitQuery(kGrouped, jo);
  std::thread canceller([&jo] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    jo.cancel.RequestCancel();
  });
  auto r = fut.get();
  canceller.join();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_LT(elapsed, 10.0) << "cancellation must interrupt the backoff";
  EXPECT_EQ(service.stats().cancelled, 1u);
}

TEST_F(ServiceDbTest, ServiceWallBudgetExpiresDuringBackoff) {
  FaultGuard guard;
  ArmAlwaysUnavailable("service.session_execute");

  WorkloadService service(db(), WorkerOpts(2));
  JobOptions jo;
  jo.retry = RetryPolicy::WithAttempts(5);
  jo.retry.initial_backoff_seconds = 60.0;
  jo.wall_timeout_seconds = 0.05;  // expires inside the first backoff
  auto start = std::chrono::steady_clock::now();
  auto r = service.SubmitQuery(kGrouped, jo).get();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  EXPECT_LT(elapsed, 10.0) << "the wall budget must interrupt the backoff";
}

TEST_F(ServiceDbTest, AdmissionControlRejectsWhenSaturated) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_in_flight = 1;
  WorkloadService service(db(), opts);
  // Occupy the only in-flight slot with a long job (a whole workload);
  // admission happens synchronously in SubmitWorkload, so the next submit
  // races only against the job *finishing* — 60 queries of headroom.
  std::vector<std::string> busy(60, kGrouped);
  auto long_job = service.SubmitWorkload(busy);
  auto rejected = service.SubmitQuery(kGrouped).get();
  EXPECT_TRUE(rejected.status().IsUnavailable())
      << rejected.status().ToString();
  EXPECT_GE(service.stats().rejected, 1u);
  ASSERT_TRUE(long_job.get().ok());
  // Capacity freed: accepted again.
  EXPECT_TRUE(service.SubmitQuery(kGrouped).get().ok());
}

TEST_F(ServiceDbTest, ShutdownRejectsNewWorkAndResolvesFutures) {
  WorkloadService service(db(), WorkerOpts(2));
  std::vector<std::future<Result<QueryResult>>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(service.SubmitQuery(kGrouped));
  service.Shutdown();
  for (auto& f : futs) {
    auto r = f.get();  // accepted jobs drained, never dropped
    EXPECT_TRUE(r.ok() || r.status().IsUnavailable()) << r.status().ToString();
  }
  EXPECT_TRUE(service.SubmitQuery(kGrouped).get().status().IsUnavailable());
  EXPECT_EQ(service.OpenSession(), kNoSession);
}

TEST_F(ServiceDbTest, ConcurrentFloodAllFuturesResolve) {
  // TSan workhorse: many sessions, sessionless jobs, stats reads, and a
  // monitor thread all at once.
  WorkloadService service(db(), WorkerOpts(4));
  std::vector<SessionId> ids;
  for (int s = 0; s < 4; ++s) ids.push_back(service.OpenSession());

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load()) {
      (void)service.stats();
      for (SessionId id : ids) (void)service.SessionClock(id);
      std::this_thread::yield();
    }
  });

  std::vector<std::future<Result<QueryResult>>> futs;
  for (int i = 0; i < 32; ++i) {
    JobOptions jo;
    jo.session = ids[static_cast<size_t>(i) % ids.size()];
    futs.push_back(service.SubmitQuery(kGrouped, jo));
    futs.push_back(service.SubmitQuery(kScan));
  }
  size_t ok = 0;
  for (auto& f : futs) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ++ok;
  }
  EXPECT_EQ(ok, futs.size());
  stop.store(true);
  monitor.join();
  for (SessionId id : ids) TB_ASSERT_OK(service.CloseSession(id));
}

// ------------------------------------------------------ BTree stats cache

TEST(BTreeStatsCacheTest, ConcurrentLazyFillIsConsistent) {
  // Many planner threads read the lazily-cached distinct/clustering
  // metrics of one built tree at once (ConfigView construction does this).
  // The fill must happen under cache_mu_ and every reader must see the
  // same values. Runs under the concurrency label so the TSan matrix
  // covers it; the thread-safety annotations prove the same protocol at
  // compile time under Clang.
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  std::vector<std::pair<IndexKey, Rid>> entries;
  for (int k = 0; k < 500; ++k) {  // key-sorted, 4 rids per key
    for (int r = 0; r < 4; ++r) {
      entries.emplace_back(
          IndexKey{Value(static_cast<int64_t>(k))},
          Rid{static_cast<uint32_t>((k * 4 + r) / 64), 0});
    }
  }
  tree.BulkBuild(std::move(entries));

  constexpr int kReaders = 8;
  std::vector<uint64_t> distinct(kReaders, 0);
  std::vector<uint64_t> clustering(kReaders, 0);
  {
    std::vector<std::thread> readers;
    readers.reserve(kReaders);
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&, t] {
        distinct[static_cast<size_t>(t)] = tree.num_distinct_keys();
        clustering[static_cast<size_t>(t)] = tree.clustering_factor();
      });
    }
    for (auto& th : readers) th.join();
  }
  for (int t = 1; t < kReaders; ++t) {
    EXPECT_EQ(distinct[static_cast<size_t>(t)], distinct[0]);
    EXPECT_EQ(clustering[static_cast<size_t>(t)], clustering[0]);
  }
  EXPECT_EQ(distinct[0], 500u);

  // A structural mutation invalidates under the same mutex; the next read
  // refills and sees the new count.
  ASSERT_TRUE(tree.Insert(IndexKey{Value(static_cast<int64_t>(10'000))},
                          Rid{1, 1}, nullptr)
                  .ok());
  EXPECT_EQ(tree.num_distinct_keys(), 501u);
}

// ------------------------------------------------- parallel workload runner

class ParallelRunnerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    owner_ = testing::MakeMiniNref(/*scale_inverse=*/1000.0);
    db_ = owner_.get();
    ASSERT_NE(db_, nullptr);
    QueryFamily family = GenerateNref2J(db_->catalog(), db_->stats());
    auto sampled = SampleFamily(family, db_, 100, /*seed=*/7);
    ASSERT_TRUE(sampled.ok()) << sampled.status().ToString();
    sample_ = sampled->Sql();
    ASSERT_EQ(sample_.size(), 100u);
  }
  static void TearDownTestSuite() {
    owner_.reset();
    db_ = nullptr;
  }

  static void ExpectIdentical(const WorkloadResult& a,
                              const WorkloadResult& b) {
    ASSERT_EQ(a.timings.size(), b.timings.size());
    for (size_t i = 0; i < a.timings.size(); ++i) {
      EXPECT_EQ(a.timings[i].timed_out, b.timings[i].timed_out) << i;
      // Bit-identical (EXPECT_EQ on doubles is exact ==), not approximately
      // equal: the replay applies the very same floating-point operations
      // in the very same order.
      EXPECT_EQ(a.timings[i].seconds, b.timings[i].seconds) << i;
    }
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.total_clamped_seconds, b.total_clamped_seconds);
    ASSERT_EQ(a.estimates.size(), b.estimates.size());
    for (size_t i = 0; i < a.estimates.size(); ++i) {
      EXPECT_EQ(a.estimates[i], b.estimates[i]) << i;
    }
    // Derived CFC curves therefore agree everywhere.
    auto ca = a.Cfc();
    auto cb = b.Cfc();
    for (double x : {0.1, 1.0, 10.0, 100.0, 1800.0}) {
      EXPECT_DOUBLE_EQ(ca.At(x), cb.At(x)) << x;
    }
  }

  // Owning handle; db_ stays a raw alias so call sites read naturally.
  static std::unique_ptr<Database> owner_;
  static Database* db_;
  static std::vector<std::string> sample_;
};

std::unique_ptr<Database> ParallelRunnerTest::owner_;
Database* ParallelRunnerTest::db_ = nullptr;
std::vector<std::string> ParallelRunnerTest::sample_;

TEST_F(ParallelRunnerTest, MatchesSequentialBitForBit) {
  RunOptions opts;
  opts.collect_estimates = true;
  auto seq = RunWorkload(db_, sample_, opts);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  auto seq_pool = db_->buffer_stats();

  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  auto parallel = RunWorkloadParallel(db_, sample_, par, opts);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  auto par_pool = db_->buffer_stats();

  ExpectIdentical(*seq, *parallel);
  // The shared pool ends in the exact state the sequential run left it in.
  EXPECT_EQ(par_pool.hits, seq_pool.hits);
  EXPECT_EQ(par_pool.misses, seq_pool.misses);
  EXPECT_EQ(par_pool.resident, seq_pool.resident);
}

TEST_F(ParallelRunnerTest, MatchesSequentialWithRepetitionsAndWarmStart) {
  std::vector<std::string> subset(sample_.begin(), sample_.begin() + 30);
  RunOptions opts;
  opts.repetitions = 3;
  opts.cold_start = false;  // start from whatever the previous test left

  // Capture the warm pool by running the sequential pass first from a known
  // state, then restore that state for the parallel pass.
  db_->buffer_pool()->Clear();
  ASSERT_TRUE(RunWorkload(db_, {sample_[40]}, RunOptions{}).ok());  // warm it
  auto seq = RunWorkload(db_, subset, opts);
  ASSERT_TRUE(seq.ok());

  db_->buffer_pool()->Clear();
  ASSERT_TRUE(RunWorkload(db_, {sample_[40]}, RunOptions{}).ok());
  ThreadPool pool(5);
  ParallelOptions par;
  par.pool = &pool;
  par.window = 7;  // odd window: exercise batch boundaries
  auto parallel = RunWorkloadParallel(db_, subset, par, opts);
  ASSERT_TRUE(parallel.ok());

  ExpectIdentical(*seq, *parallel);
}

TEST_F(ParallelRunnerTest, NullPoolDegradesToSequential) {
  std::vector<std::string> subset(sample_.begin(), sample_.begin() + 5);
  auto seq = RunWorkload(db_, subset, RunOptions{});
  ASSERT_TRUE(seq.ok());
  auto degraded = RunWorkloadParallel(db_, subset, ParallelOptions{});
  ASSERT_TRUE(degraded.ok());
  ExpectIdentical(*seq, *degraded);
}

TEST_F(ParallelRunnerTest, CancelledRunReportsCancelled) {
  ThreadPool pool(2);
  ParallelOptions par;
  par.pool = &pool;
  par.cancel.RequestCancel();
  auto r = RunWorkloadParallel(db_, sample_, par);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
}

TEST_F(ParallelRunnerTest, EstimateAndHypotheticalMatchSequential) {
  auto seq = EstimateWorkload(db_, sample_);
  ASSERT_TRUE(seq.ok());
  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  auto parallel = EstimateWorkloadParallel(db_, sample_, par);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->size(), seq->size());
  for (size_t i = 0; i < seq->size(); ++i) {
    EXPECT_DOUBLE_EQ((*parallel)[i], (*seq)[i]) << i;
  }

  Configuration hypo;  // the P baseline as a hypothetical
  hypo.name = "hypo";
  HypotheticalRules rules;
  auto hseq = HypotheticalWorkload(db_, sample_, hypo, rules);
  ASSERT_TRUE(hseq.ok());
  auto hpar = HypotheticalWorkloadParallel(db_, sample_, hypo, rules, par);
  ASSERT_TRUE(hpar.ok());
  ASSERT_EQ(hpar->size(), hseq->size());
  for (size_t i = 0; i < hseq->size(); ++i) {
    EXPECT_DOUBLE_EQ((*hpar)[i], (*hseq)[i]) << i;
  }
}

// Timeout determinism is the crux of the replay design: the parallel record
// phase runs with enforcement off and the replay re-applies the limit at
// the recorded check points. Build twin databases whose timeout sits
// between a cheap probe and an expensive scan so the workload mixes both.
TEST(ParallelRunnerTimeoutTest, TimeoutsReplayIdentically) {
  auto build = [](double timeout_seconds) {
    DatabaseOptions opts;
    opts.cost.timeout_seconds = timeout_seconds;
    auto db = std::make_unique<Database>(opts);
    TableDef t;
    t.name = "t";
    t.columns = {{"a", TypeId::kInt, "d", true, 8},
                 {"b", TypeId::kInt, "d", true, 8}};
    t.primary_key = {"a"};
    EXPECT_TRUE(db->CreateTable(t).ok());
    for (int64_t i = 0; i < 4000; ++i) {
      EXPECT_TRUE(db->Insert("t", Tuple({Value(i), Value(i % 97)})).ok());
    }
    EXPECT_TRUE(db->FinishLoad().ok());
    return db;
  };

  const std::string probe = "SELECT t.b FROM t WHERE t.a = 17";
  const std::string scan = "SELECT t.b, COUNT(*) FROM t GROUP BY t.b";

  auto calib = build(1800.0);
  auto cheap = calib->Run(probe);
  auto dear = calib->Run(scan);
  ASSERT_TRUE(cheap.ok());
  ASSERT_TRUE(dear.ok());
  ASSERT_LT(cheap->sim_seconds, dear->sim_seconds);

  auto db = build((cheap->sim_seconds + dear->sim_seconds) / 2.0);
  std::vector<std::string> sql = {scan, probe, scan, probe, probe, scan};
  RunOptions opts;
  opts.repetitions = 2;  // timeout queries must still run exactly once
  auto seq = RunWorkload(db.get(), sql, opts);
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(seq->timeouts, 3u);

  ThreadPool pool(4);
  ParallelOptions par;
  par.pool = &pool;
  auto parallel = RunWorkloadParallel(db.get(), sql, par, opts);
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(parallel->timings.size(), seq->timings.size());
  for (size_t i = 0; i < seq->timings.size(); ++i) {
    EXPECT_EQ(parallel->timings[i].timed_out, seq->timings[i].timed_out) << i;
    EXPECT_DOUBLE_EQ(parallel->timings[i].seconds, seq->timings[i].seconds)
        << i;
  }
  EXPECT_EQ(parallel->timeouts, seq->timeouts);
  EXPECT_DOUBLE_EQ(parallel->total_clamped_seconds,
                   seq->total_clamped_seconds);
}

// ------------------------------------------------------------------ advisor

TEST_F(ParallelRunnerTest, AdvisorParallelEvaluationMatchesSequential) {
  QueryFamily family = GenerateNref2J(db_->catalog(), db_->stats());
  auto workload = BindWorkload(family, db_->catalog());
  ASSERT_TRUE(workload.ok()) << workload.status().ToString();

  AdvisorOptions opts = SystemBProfile();
  Advisor sequential(db_->CurrentView(), opts);
  auto seq = sequential.Recommend(*workload);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();

  ThreadPool pool(4);
  opts.eval_pool = &pool;
  Advisor concurrent(db_->CurrentView(), opts);
  auto par = concurrent.Recommend(*workload);
  ASSERT_TRUE(par.ok()) << par.status().ToString();

  // Same picks, same order, same bookkeeping — parallel evaluation must not
  // change the recommendation at all.
  ASSERT_EQ(par->config.indexes.size(), seq->config.indexes.size());
  for (size_t i = 0; i < seq->config.indexes.size(); ++i) {
    EXPECT_EQ(par->config.indexes[i].name, seq->config.indexes[i].name) << i;
  }
  ASSERT_EQ(par->config.views.size(), seq->config.views.size());
  for (size_t i = 0; i < seq->config.views.size(); ++i) {
    EXPECT_EQ(par->config.views[i].name, seq->config.views[i].name) << i;
  }
  EXPECT_DOUBLE_EQ(par->est_cost_before, seq->est_cost_before);
  EXPECT_DOUBLE_EQ(par->est_cost_after, seq->est_cost_after);
  EXPECT_DOUBLE_EQ(par->est_pages, seq->est_pages);
}

// ------------------------------------------------------------------ Watchdog

/// Spins until `cond()` holds or `seconds` of wall time pass.
template <typename Cond>
bool WaitFor(Cond cond, double seconds = 5.0) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return cond();
}

TEST(WatchdogTest, FiresDeadlineAndCancelsVictim) {
  WatchdogOptions o;
  o.poll_interval_seconds = 0.001;
  Watchdog wd(o);
  CancellationToken victim;
  uint64_t id = wd.Watch(std::chrono::steady_clock::now() +
                             std::chrono::milliseconds(10),
                         victim, std::nullopt);
  EXPECT_TRUE(WaitFor([&] { return victim.cancelled(); }));
  EXPECT_TRUE(wd.Release(id)) << "Release must report the fired deadline";
  EXPECT_GE(wd.fires(), 1u);
}

TEST(WatchdogTest, ReleaseBeforeDeadlineMeansNoFire) {
  Watchdog wd;
  CancellationToken victim;
  uint64_t id = wd.Watch(std::chrono::steady_clock::now() +
                             std::chrono::hours(1),
                         victim, std::nullopt);
  EXPECT_FALSE(wd.Release(id));
  EXPECT_FALSE(victim.cancelled());
  EXPECT_EQ(wd.fires(), 0u);
}

TEST(WatchdogTest, ForwardsUpstreamCancelToVictim) {
  WatchdogOptions o;
  o.poll_interval_seconds = 0.001;
  Watchdog wd(o);
  CancellationToken victim;
  CancellationToken upstream;
  uint64_t id = wd.Watch(std::nullopt, victim, upstream);
  EXPECT_FALSE(victim.cancelled());
  upstream.RequestCancel();
  EXPECT_TRUE(WaitFor([&] { return victim.cancelled(); }));
  // Forwarded cancellation is not a deadline fire.
  EXPECT_FALSE(wd.Release(id));
  EXPECT_EQ(wd.fires(), 0u);
}

TEST(WatchdogTest, IndependentWatchesFireIndependently) {
  WatchdogOptions o;
  o.poll_interval_seconds = 0.001;
  Watchdog wd(o);
  CancellationToken soon;
  CancellationToken later;
  uint64_t a = wd.Watch(std::chrono::steady_clock::now() +
                            std::chrono::milliseconds(10),
                        soon, std::nullopt);
  uint64_t b = wd.Watch(std::chrono::steady_clock::now() +
                            std::chrono::hours(1),
                        later, std::nullopt);
  EXPECT_TRUE(WaitFor([&] { return soon.cancelled(); }));
  EXPECT_FALSE(later.cancelled());
  EXPECT_TRUE(wd.Release(a));
  EXPECT_FALSE(wd.Release(b));
}

// ------------------------------------------------------------ CircuitBreaker

TEST(CircuitBreakerTest, DisabledByDefaultAdmitsEverything) {
  CircuitBreaker cb;
  EXPECT_FALSE(cb.enabled());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(cb.Allow(1));
    EXPECT_FALSE(cb.RecordFailure(1));
  }
  EXPECT_EQ(cb.state(1), CircuitBreaker::State::kClosed);
}

CircuitBreakerOptions BreakerOpts(int threshold, double open_seconds,
                                  int probes = 1) {
  CircuitBreakerOptions o;
  o.failure_threshold = threshold;
  o.open_seconds = open_seconds;
  o.half_open_probes = probes;
  return o;
}

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailuresPerDomain) {
  CircuitBreaker cb(BreakerOpts(3, 3600.0));
  EXPECT_FALSE(cb.RecordFailure(7));
  EXPECT_FALSE(cb.RecordFailure(7));
  // A success in between resets the streak.
  cb.RecordSuccess(7);
  EXPECT_FALSE(cb.RecordFailure(7));
  EXPECT_FALSE(cb.RecordFailure(7));
  EXPECT_TRUE(cb.RecordFailure(7)) << "third consecutive failure trips";
  EXPECT_EQ(cb.state(7), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.Allow(7));
  // Another domain is a separate state machine.
  EXPECT_TRUE(cb.Allow(8));
  EXPECT_EQ(cb.state(8), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOnSuccessReopensOnFailure) {
  CircuitBreaker cb(BreakerOpts(1, 0.02));
  ASSERT_TRUE(cb.RecordFailure(1));
  EXPECT_FALSE(cb.Allow(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  // Cooldown elapsed: the next Allow claims the half-open probe slot, and
  // the quota (one probe) bounces the second caller.
  EXPECT_TRUE(cb.Allow(1));
  EXPECT_EQ(cb.state(1), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(cb.Allow(1));
  cb.RecordSuccess(1);
  EXPECT_EQ(cb.state(1), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(cb.Allow(1));

  // Trip again; this time the probe fails and the cooldown restarts.
  ASSERT_TRUE(cb.RecordFailure(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(cb.Allow(1));
  EXPECT_TRUE(cb.RecordFailure(1)) << "probe failure re-trips the domain";
  EXPECT_EQ(cb.state(1), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(cb.Allow(1));
}

TEST(CircuitBreakerTest, AbandonReleasesTheProbeSlot) {
  CircuitBreaker cb(BreakerOpts(1, 0.02));
  ASSERT_TRUE(cb.RecordFailure(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  ASSERT_TRUE(cb.Allow(1));
  EXPECT_FALSE(cb.Allow(1));
  // The probe job was turned away elsewhere on the admission path; its slot
  // must free up for the next candidate rather than wedging the domain.
  cb.Abandon(1);
  EXPECT_TRUE(cb.Allow(1));
}

// --------------------------------------- service watchdog/breaker/journal

TEST_F(ServiceDbTest, WatchdogEnforcesWallBudgetMidJob) {
  // Regression: the wall-clock budget used to be checked only between retry
  // attempts, so a long workload job with no retries could overrun it
  // arbitrarily. The watchdog cancels the job's private token mid-flight
  // and the service reports Timeout, not Cancelled.
  WorkloadService service(db(), WorkerOpts(2));
  std::vector<std::string> wl(4000, std::string(kScan));
  JobOptions jo;
  jo.wall_timeout_seconds = 0.05;
  auto start = std::chrono::steady_clock::now();
  auto r = service.SubmitWorkload(wl, jo).get();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("watchdog"), std::string::npos)
      << r.status().ToString();
  EXPECT_LT(elapsed, 10.0) << "watchdog must stop the job long before the "
                              "workload would finish on its own";
  auto stats = service.stats();
  EXPECT_GE(stats.watchdog_cancels, 1u);
  EXPECT_EQ(stats.cancelled, 0u)
      << "a watchdog stop is a timeout, not a user cancel";
}

TEST_F(ServiceDbTest, WatchdogForceCancelStopsMorselDispatch) {
  // Regression for the vectorized path: a session with an intra-query
  // parallelism budget routes queries through the morsel scheduler, whose
  // workers must observe the watchdog's force-cancel of the job's private
  // token — stop dispatching morsels, drain, and surface Cancelled — so
  // the service can report the same watchdog Timeout as the Volcano path
  // instead of letting in-flight morsel loops run the budget over.
  WorkloadService service(db(), WorkerOpts(2));
  SessionOptions so;
  so.intra_query_parallelism = 4;
  SessionId vec_session = service.OpenSession(so);
  std::vector<std::string> wl(4000, std::string(kScan));
  JobOptions jo;
  jo.session = vec_session;
  jo.wall_timeout_seconds = 0.05;
  auto start = std::chrono::steady_clock::now();
  auto r = service.SubmitWorkload(wl, jo).get();
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsTimeout()) << r.status().ToString();
  EXPECT_NE(r.status().ToString().find("watchdog"), std::string::npos)
      << r.status().ToString();
  EXPECT_LT(elapsed, 10.0) << "the morsel scheduler must drain promptly "
                              "after the watchdog fires";
  auto stats = service.stats();
  EXPECT_GE(stats.watchdog_cancels, 1u);
  EXPECT_EQ(stats.cancelled, 0u)
      << "a watchdog stop is a timeout, not a user cancel";
  TB_ASSERT_OK(service.CloseSession(vec_session));
}

TEST_F(ServiceDbTest, UserCancelIsNotRemappedByTheWatchdog) {
  WorkloadService service(db(), WorkerOpts(2));
  std::vector<std::string> wl(4000, std::string(kScan));
  JobOptions jo;
  jo.wall_timeout_seconds = 30.0;  // watchdog armed but far away
  auto fut = service.SubmitWorkload(wl, jo);
  jo.cancel.RequestCancel();
  auto r = fut.get();
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  EXPECT_EQ(service.stats().watchdog_cancels, 0u);
}

TEST_F(ServiceDbTest, ServiceBreakerIsolatesTheFailingDomain) {
  FaultGuard guard;
  ArmAlwaysUnavailable("service.session_execute");
  ServiceOptions so = WorkerOpts(2);
  so.breaker.failure_threshold = 2;
  so.breaker.open_seconds = 3600.0;  // stays open for the whole test
  WorkloadService service(db(), so);
  SessionId bad = service.OpenSession();
  SessionId good = service.OpenSession();

  JobOptions on_bad;
  on_bad.session = bad;
  for (int i = 0; i < 2; ++i) {
    auto r = service.SubmitQuery(kGrouped, on_bad).get();
    ASSERT_FALSE(r.ok());
    EXPECT_TRUE(r.status().IsUnavailable()) << r.status().ToString();
    EXPECT_EQ(r.status().ToString().find("circuit breaker"),
              std::string::npos)
        << "these are real executions failing, not breaker bounces";
  }
  EXPECT_EQ(service.stats().breaker_opens, 1u);

  auto bounced = service.SubmitQuery(kGrouped, on_bad).get();
  ASSERT_FALSE(bounced.ok());
  EXPECT_TRUE(bounced.status().IsUnavailable());
  EXPECT_NE(bounced.status().ToString().find("circuit breaker"),
            std::string::npos)
      << bounced.status().ToString();
  auto mid = service.stats();
  EXPECT_EQ(mid.breaker_rejections, 1u);
  EXPECT_GE(mid.rejected, 1u);

  // The healthy domain never noticed: disarm the fault and it executes.
  FaultRegistry::Global().DisarmAll();
  JobOptions on_good;
  on_good.session = good;
  auto ok = service.SubmitQuery(kGrouped, on_good).get();
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  // The bad domain is still open even though the fault is gone.
  EXPECT_FALSE(service.SubmitQuery(kGrouped, on_bad).get().ok());
}

TEST_F(ServiceDbTest, ServiceBreakerHalfOpenProbeRecoversTheDomain) {
  FaultGuard guard;
  ArmAlwaysUnavailable("service.session_execute");
  ServiceOptions so = WorkerOpts(2);
  so.breaker.failure_threshold = 1;
  so.breaker.open_seconds = 0.05;
  WorkloadService service(db(), so);
  SessionId id = service.OpenSession();
  JobOptions jo;
  jo.session = id;

  ASSERT_FALSE(service.SubmitQuery(kGrouped, jo).get().ok());
  EXPECT_EQ(service.stats().breaker_opens, 1u);
  auto bounced = service.SubmitQuery(kGrouped, jo).get();
  ASSERT_FALSE(bounced.ok());
  EXPECT_NE(bounced.status().ToString().find("circuit breaker"),
            std::string::npos);

  // Dependency recovers; after the cooldown one probe goes through, its
  // success closes the domain, and traffic flows again.
  FaultRegistry::Global().DisarmAll();
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  auto probe = service.SubmitQuery(kGrouped, jo).get();
  EXPECT_TRUE(probe.ok()) << probe.status().ToString();
  auto after = service.SubmitQuery(kGrouped, jo).get();
  EXPECT_TRUE(after.ok()) << after.status().ToString();
  auto stats = service.stats();
  EXPECT_EQ(stats.breaker_rejections, 1u);
  EXPECT_EQ(stats.breaker_opens, 1u);
}

TEST_F(ServiceDbTest, ServiceOutcomeJournalRecordsExecutedQueries) {
  std::string path = ::testing::TempDir() + "/tabbench_service_journal.tbj";
  std::remove(path.c_str());
  {
    ServiceOptions so = WorkerOpts(2);
    so.journal_path = path;
    WorkloadService service(db(), so);
    TB_EXPECT_OK(service.journal_status());
    auto wl = service.SubmitWorkload({kScan, kGrouped}, {}).get();
    ASSERT_TRUE(wl.ok()) << wl.status().ToString();
    auto q = service.SubmitQuery(kGrouped, {}).get();
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    TB_EXPECT_OK(service.journal_status());
    service.Shutdown();
  }
  auto loaded = LoadRunJournal(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->header.metadata.at("writer"), "workload-service");
  EXPECT_EQ(loaded->header.query_count, 0u);
  ASSERT_EQ(loaded->records.size(), 3u);
  for (const auto& rec : loaded->records) {
    EXPECT_GE(rec.attempts, 1u);
    EXPECT_GT(rec.seconds, 0.0);
    EXPECT_FALSE(rec.failed);
  }

  // A service outcome journal is an audit log, not a checkpoint: the
  // workload runners must refuse to resume from it.
  auto resumed = RunWorkload(db(), {kScan, kGrouped}, ResumeFrom(path));
  ASSERT_FALSE(resumed.ok());
  EXPECT_TRUE(resumed.status().IsInvalidArgument())
      << resumed.status().ToString();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tabbench
