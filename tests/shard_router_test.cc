// Tests for the sharded serving layer: domain-affinity routing, the
// graceful-degradation ladder, chaos kills with failover, and the
// deterministic-replay + no-lost-admitted-job acceptance criteria audited
// over the router journal. Lives in its own binary (labels
// "concurrency;shard") so the TSan CI stage and the chaos fault registry
// stay isolated from the main suite.

#include "service/shard_router.h"

#include <gtest/gtest.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "service/circuit_breaker.h"
#include "service/shard.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/run_journal.h"

namespace tabbench {
namespace {

class ShardRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tiny_ = std::make_unique<testing::TinyDb>(testing::TinyDb::Make(2000, 20));
  }
  static void TearDownTestSuite() { tiny_.reset(); }
  static Database* db() { return tiny_->db.get(); }
  static std::unique_ptr<testing::TinyDb> tiny_;

  static constexpr const char* kGrouped =
      "SELECT p.city, COUNT(*) FROM people p WHERE p.dept = 3 "
      "GROUP BY p.city";

  /// Fresh directory for a router's journals.
  static std::string JournalDir(const std::string& name) {
    std::string dir = ::testing::TempDir() + "shard_router_" + name;
    ::mkdir(dir.c_str(), 0755);
    return dir;
  }

  /// Disables every ambient health signal so only the transitions a test
  /// drives explicitly (kills, stalls, probes) move the state machine.
  static void DisableAmbientSignals(ShardHealthThresholds* t) {
    t->degrade_p95_seconds = -1.0;
    t->degrade_queue_depth = 0;
    t->quarantine_p99_seconds = -1.0;
    t->quarantine_queue_depth = 0;
    t->quarantine_breaker_opens = 0;
    t->quarantine_watchdog_cancels = 0;
  }

  /// Smallest domain whose static home is the 1-based shard id `shard_id`.
  static uint64_t DomainHomedOn(const ShardRouter& router, uint32_t shard_id) {
    for (uint64_t d = 0; d < 4096; ++d) {
      if (router.HomeShardId(d) == shard_id) return d;
    }
    ADD_FAILURE() << "no domain homed on shard " << shard_id;
    return 0;
  }

  /// Spins (bounded) until shard `index`'s service holds at least `depth`
  /// accepted jobs — the router's dispatchers hand jobs to the shard
  /// asynchronously, so a test must see them land before reading the
  /// queue-depth health signal.
  static bool WaitForQueueDepth(ShardRouter* router, size_t index,
                                uint64_t depth) {
    for (int i = 0; i < 5000; ++i) {
      if (router->shard(index)->service()->in_flight() >= depth) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  }
};

/// Fires the stall-release token when the scope unwinds, so a failed ASSERT
/// can never leave a wedged shard deadlocking the router's destructor.
struct CancelOnExit {
  CancellationToken token;
  ~CancelOnExit() { token.RequestCancel(); }
};

std::unique_ptr<testing::TinyDb> ShardRouterTest::tiny_;

// ------------------------------------------------------------------ routing

TEST_F(ShardRouterTest, HomeShardStableAndDistributed) {
  ShardRouterOptions opts;
  opts.shards = 4;
  opts.shard.service.workers = 1;
  ShardRouter router(db(), opts);
  ASSERT_EQ(router.num_shards(), 4u);

  std::vector<int> per_shard(4, 0);
  for (uint64_t d = 0; d < 256; ++d) {
    const uint32_t home = router.HomeShardId(d);
    ASSERT_GE(home, 1u);
    ASSERT_LE(home, 4u);
    // Stable: the hash is part of the deterministic-replay contract.
    EXPECT_EQ(router.HomeShardId(d), home);
    // Unseen domains report their home as the current assignment.
    EXPECT_EQ(router.DomainShardId(d), home);
    ++per_shard[home - 1];
  }
  for (int n : per_shard) EXPECT_GT(n, 0);
}

TEST_F(ShardRouterTest, ServesAcrossDomainsWithAffinity) {
  ShardRouterOptions opts;
  opts.shards = 2;
  opts.shard.service.workers = 2;
  ShardRouter router(db(), opts);

  std::vector<std::future<Result<QueryResult>>> futs;
  for (int i = 0; i < 16; ++i) {
    SubmitOptions so;
    so.domain = static_cast<uint64_t>(i % 4);
    futs.push_back(router.Submit(kGrouped, so));
  }
  for (auto& f : futs) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(r->failed);
  }
  const RouterStats rs = router.stats();
  EXPECT_EQ(rs.submitted, 16u);
  EXPECT_EQ(rs.completed, 16u);
  EXPECT_EQ(rs.rejected, 0u);
  EXPECT_EQ(rs.shed, 0u);
  // Healthy run: every domain still sits on its home shard.
  for (uint64_t d = 0; d < 4; ++d) {
    EXPECT_EQ(router.DomainShardId(d), router.HomeShardId(d));
  }
}

TEST_F(ShardRouterTest, RetryAfterHintParses) {
  EXPECT_EQ(RetryAfterHintSeconds(Status::OK()), 0.0);
  EXPECT_EQ(RetryAfterHintSeconds(Status::Unavailable("busy")), 0.0);
  EXPECT_DOUBLE_EQ(RetryAfterHintSeconds(Status::Unavailable(
                       "shard 2 degraded; retry_after_seconds=0.250000")),
                   0.25);
}

TEST_F(ShardRouterTest, CapacityRejectionCarriesRetryHint) {
  ShardRouterOptions opts;
  opts.shards = 1;
  opts.shard.service.workers = 1;
  opts.max_in_flight = 1;
  DisableAmbientSignals(&opts.shard.health);
  ShardRouter router(db(), opts);

  // Wedge the only shard so the first admitted job cannot complete, then
  // overrun the router's in-flight cap.
  CancellationToken release;
  CancelOnExit unstall{release};
  TB_ASSERT_OK(router.StallShard(0, release));
  auto admitted = router.Submit(kGrouped);
  auto bounced = router.Submit(kGrouped).get();
  ASSERT_FALSE(bounced.ok());
  EXPECT_TRUE(bounced.status().IsUnavailable()) << bounced.status().ToString();
  EXPECT_GT(RetryAfterHintSeconds(bounced.status()), 0.0);
  EXPECT_EQ(router.stats().rejected, 1u);

  release.RequestCancel();
  auto r = admitted.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
}

// ----------------------------------------------------------- ladder (1 + 2)

TEST_F(ShardRouterTest, DegradationLadderShedsLowPriorityThenRecovers) {
  ShardRouterOptions opts;
  opts.shards = 2;
  opts.shard.service.workers = 1;
  DisableAmbientSignals(&opts.shard.health);
  // Re-enable exactly the queue-depth degrade signal.
  opts.shard.health.degrade_queue_depth = 1;
  ShardRouter router(db(), opts);
  const uint64_t dom = DomainHomedOn(router, 1);

  CancellationToken release;
  CancelOnExit unstall{release};
  TB_ASSERT_OK(router.StallShard(0, release));
  SubmitOptions so;
  so.domain = dom;
  std::vector<std::future<Result<QueryResult>>> queued;
  queued.push_back(router.Submit(kGrouped, so));
  queued.push_back(router.Submit(kGrouped, so));
  ASSERT_TRUE(WaitForQueueDepth(&router, 0, 2));
  router.Tick();
  ASSERT_EQ(router.shard_health(0), ShardHealth::kDegraded);
  EXPECT_GE(router.stats().degrades, 1u);

  // Ladder step 2: the degraded shard sheds priority-0 (background) load
  // with a machine-readable retry hint, while default-priority load is
  // still admitted.
  SubmitOptions background = so;
  background.priority = 0;
  auto shed = router.Submit(kGrouped, background).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsUnavailable()) << shed.status().ToString();
  EXPECT_GT(RetryAfterHintSeconds(shed.status()), 0.0);
  EXPECT_EQ(router.stats().shed, 1u);
  queued.push_back(router.Submit(kGrouped, so));

  release.RequestCancel();
  for (auto& f : queued) {
    auto r = f.get();
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  router.Tick();
  EXPECT_EQ(router.shard_health(0), ShardHealth::kHealthy);
  EXPECT_GE(router.stats().recoveries, 1u);
}

// ------------------------------------------------------------ chaos + audit

TEST_F(ShardRouterTest, KillFailsOverQueuedJobAndReroutesDomain) {
  ShardRouterOptions opts;
  opts.shards = 2;
  opts.shard.service.workers = 1;
  DisableAmbientSignals(&opts.shard.health);
  opts.shard.health.quarantine_cooldown_seconds = 3600.0;  // stay down
  ShardRouter router(db(), opts);
  const uint64_t dom = DomainHomedOn(router, 1);

  CancellationToken release;
  CancelOnExit unstall{release};
  TB_ASSERT_OK(router.StallShard(0, release));
  SubmitOptions so;
  so.domain = dom;
  auto stuck = router.Submit(kGrouped, so);
  ASSERT_TRUE(WaitForQueueDepth(&router, 0, 1));
  router.KillShard(0);
  EXPECT_EQ(router.shard_health(0), ShardHealth::kQuarantined);
  EXPECT_GE(router.shard(0)->kill_epoch(), 1u);

  // The admitted job is never lost: the kill cancels its attempt, the
  // router fails it over to the surviving shard, and the future resolves
  // with a real result.
  release.RequestCancel();
  auto r = stuck.get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  // New load for the domain re-routes off the dead shard.
  auto rerouted = router.Submit(kGrouped, so).get();
  ASSERT_TRUE(rerouted.ok()) << rerouted.status().ToString();
  EXPECT_EQ(router.DomainShardId(dom), 2u);
  const RouterStats rs = router.stats();
  EXPECT_EQ(rs.kills, 1u);
  EXPECT_GE(rs.reroutes, 1u);
  EXPECT_EQ(rs.completed, rs.submitted);
}

TEST_F(ShardRouterTest, RouteFaultBouncesSubmissionAtTheDoor) {
  FaultRegistry::Global().DisarmAll();
  TB_ASSERT_OK(
      FaultRegistry::Global().ArmFromString("service.shard.route=unavailable@once"));
  ShardRouterOptions opts;
  opts.shards = 1;
  opts.shard.service.workers = 1;
  ShardRouter router(db(), opts);
  auto bounced = router.Submit(kGrouped).get();
  ASSERT_FALSE(bounced.ok());
  EXPECT_TRUE(bounced.status().IsUnavailable()) << bounced.status().ToString();
  EXPECT_EQ(router.stats().rejected, 1u);
  // The once-trigger has fired; the next submission sails through.
  auto r = router.Submit(kGrouped).get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  FaultRegistry::Global().DisarmAll();
}

/// One full chaos run with a fixed fault schedule and a manual clock; the
/// deterministic-replay acceptance check runs it twice and compares the
/// decision streams.
struct ChaosRun {
  std::vector<JournalServiceEvent> decisions;
  RouterStats stats;
  std::string dir;
};

TEST_F(ShardRouterTest, ChaosKillReplaysDeterministicallyWithNoLostJobs) {
  auto run_once = [&](const std::string& tag) {
    ManualServiceClock clock;
    ShardRouterOptions opts;
    opts.shards = 2;
    opts.shard.service.workers = 1;
    DisableAmbientSignals(&opts.shard.health);
    opts.shard.health.quarantine_cooldown_seconds = 10.0;
    opts.shard.health.readmit_probe_quota = 2;
    opts.clock = &clock;
    opts.journal_dir = JournalDir(tag);
    ShardRouter router(db(), opts);
    const uint64_t da = DomainHomedOn(router, 1);
    const uint64_t dbm = DomainHomedOn(router, 2);

    // Fixed fault schedule: the 5th routing decision chaos-kills the
    // submission's currently assigned shard. Submissions are serialized
    // (each future is waited before the next Submit), so the @nth counter
    // advances identically on every run.
    FaultRegistry::Global().DisarmAll();
    const Status armed = FaultRegistry::Global().ArmFromString(
        "service.shard.quarantine=unavailable@nth:5");
    EXPECT_TRUE(armed.ok()) << armed.ToString();

    auto wait_ok = [&](uint64_t domain) {
      SubmitOptions so;
      so.domain = domain;
      auto r = router.Submit(kGrouped, so).get();
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    };
    // 1..4 warm both domains; 5 (da) fires the kill on shard 1 and
    // re-routes da onto shard 2 in the same decision.
    wait_ok(dbm);
    wait_ok(da);
    wait_ok(dbm);
    wait_ok(da);
    wait_ok(da);
    EXPECT_EQ(router.shard_health(0), ShardHealth::kQuarantined);
    EXPECT_EQ(router.DomainShardId(da), 2u);
    wait_ok(dbm);
    wait_ok(da);

    // Cooldown elapses only when the manual clock says so; the next
    // submissions open the probe window, burn the probe quota, and the
    // quarantined shard re-admits, after which da re-homes.
    clock.Advance(11.0);
    wait_ok(da);
    wait_ok(da);
    EXPECT_EQ(router.shard_health(0), ShardHealth::kHealthy);
    wait_ok(da);
    EXPECT_EQ(router.DomainShardId(da), 1u);

    FaultRegistry::Global().DisarmAll();
    ChaosRun out;
    out.decisions = router.decisions();
    out.stats = router.stats();
    out.dir = opts.journal_dir;
    router.Shutdown();
    return out;
  };

  const ChaosRun a = run_once("chaos_a");
  const ChaosRun b = run_once("chaos_b");

  // Re-routing decisions are identical across the two runs: same stream of
  // (sequence, kind, shard, domain, clock, detail).
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].sequence, b.decisions[i].sequence) << i;
    EXPECT_EQ(a.decisions[i].kind, b.decisions[i].kind) << i;
    EXPECT_EQ(a.decisions[i].shard_id, b.decisions[i].shard_id) << i;
    EXPECT_EQ(a.decisions[i].domain, b.decisions[i].domain) << i;
    EXPECT_EQ(a.decisions[i].clock_seconds, b.decisions[i].clock_seconds) << i;
    EXPECT_EQ(a.decisions[i].detail, b.decisions[i].detail) << i;
  }
  // The ladder walked exactly once: kill -> reroute -> probe window ->
  // probe quota -> readmit -> rehome.
  EXPECT_EQ(a.stats.kills, 1u);
  EXPECT_EQ(a.stats.reroutes, 1u);
  EXPECT_EQ(a.stats.probes, 2u);
  EXPECT_EQ(a.stats.readmissions, 1u);
  EXPECT_EQ(a.stats.rehomes, 1u);
  EXPECT_EQ(a.stats.requarantines, 0u);
  EXPECT_EQ(a.stats.submitted, 10u);
  EXPECT_EQ(a.stats.completed, 10u);

  // No lost admitted job, audited over the journal: every admitted ordinal
  // has exactly one terminal-outcome record, and the decision stream was
  // journaled alongside.
  for (const ChaosRun* run : {&a, &b}) {
    auto loaded = LoadRunJournal(run->dir + "/router.tbj");
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    const RunJournal& journal = *loaded;
    ASSERT_EQ(journal.records.size(), run->stats.submitted);
    std::set<uint32_t> ordinals;
    for (const JournalQueryRecord& rec : journal.records) {
      EXPECT_TRUE(ordinals.insert(rec.query_index).second)
          << "duplicate terminal record for ordinal " << rec.query_index;
      EXPECT_FALSE(rec.failed);
      EXPECT_GE(rec.shard_id, 1u);
      EXPECT_LE(rec.shard_id, 2u);
    }
    EXPECT_EQ(*ordinals.begin(), 0u);
    EXPECT_EQ(*ordinals.rbegin(), run->stats.submitted - 1);
    ASSERT_EQ(journal.events.size(), run->decisions.size());
    for (size_t i = 0; i < journal.events.size(); ++i) {
      EXPECT_EQ(journal.events[i].kind, run->decisions[i].kind) << i;
      EXPECT_EQ(journal.events[i].sequence, run->decisions[i].sequence) << i;
    }

    // Per-shard journals attribute every served query to their own shard.
    size_t shard_records = 0;
    for (uint32_t id = 1; id <= 2; ++id) {
      auto sloaded =
          LoadRunJournal(run->dir + "/shard-" + std::to_string(id) + ".tbj");
      ASSERT_TRUE(sloaded.ok()) << sloaded.status().ToString();
      const RunJournal& sj = *sloaded;
      EXPECT_FALSE(sj.records.empty()) << "shard " << id;
      for (const JournalQueryRecord& rec : sj.records) {
        EXPECT_EQ(rec.shard_id, id);
      }
      shard_records += sj.records.size();
    }
    EXPECT_EQ(shard_records, run->stats.submitted);
  }
}

// --------------------------------------------- satellite: races under TSan

TEST_F(ShardRouterTest, WatchdogForceCancelRacesShardKill) {
  // Watchdog force-cancels (tight wall budgets) racing a chaos kill: every
  // admitted job must still resolve its future and land exactly one
  // terminal record in the router journal. Run under TSan in CI.
  ShardRouterOptions opts;
  opts.shards = 2;
  opts.shard.service.workers = 2;
  DisableAmbientSignals(&opts.shard.health);
  opts.shard.health.quarantine_cooldown_seconds = 3600.0;  // no readmission
  opts.max_in_flight = 0;                                  // admit everything
  opts.journal_dir = JournalDir("watchdog_race");
  ShardRouter router(db(), opts);

  constexpr int kJobs = 32;
  std::vector<std::future<Result<QueryResult>>> futs;
  futs.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    SubmitOptions so;
    so.domain = static_cast<uint64_t>(i % 8);
    // Every third job gets a wall budget tight enough that the watchdog
    // can fire mid-attempt; the rest run unbounded.
    if (i % 3 == 0) so.job.wall_timeout_seconds = 0.002;
    futs.push_back(router.Submit(kGrouped, so));
    if (i == kJobs / 2) router.KillShard(0);
  }
  int resolved = 0;
  for (auto& f : futs) {
    // Terminal outcomes only: success, a watchdog Timeout, or a genuine
    // error — never a hung future.
    (void)f.get();
    ++resolved;
  }
  EXPECT_EQ(resolved, kJobs);
  EXPECT_EQ(router.shard_health(0), ShardHealth::kQuarantined);

  const RouterStats rs = router.stats();
  EXPECT_EQ(rs.submitted, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(rs.completed, static_cast<uint64_t>(kJobs));
  EXPECT_EQ(rs.kills, 1u);
  router.Shutdown();
  TB_ASSERT_OK(router.journal_status());

  auto loaded = LoadRunJournal(opts.journal_dir + "/router.tbj");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const RunJournal& journal = *loaded;
  ASSERT_EQ(journal.records.size(), static_cast<size_t>(kJobs));
  std::set<uint32_t> ordinals;
  for (const JournalQueryRecord& rec : journal.records) {
    EXPECT_TRUE(ordinals.insert(rec.query_index).second)
        << "duplicate terminal record for ordinal " << rec.query_index;
  }
}

TEST_F(ShardRouterTest, BreakerHalfOpenProbeStormGrantsExactQuota) {
  // Satellite: CircuitBreaker half-open probing under a concurrent
  // submission storm — exactly half_open_probes callers may claim a probe
  // slot, no matter how many race. Run under TSan in CI.
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.open_seconds = 0.05;
  opts.half_open_probes = 3;
  CircuitBreaker breaker(opts);
  constexpr uint64_t kDomain = 7;

  ASSERT_TRUE(breaker.Allow(kDomain));
  EXPECT_TRUE(breaker.RecordFailure(kDomain));  // trips open
  EXPECT_EQ(breaker.state(kDomain), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow(kDomain));

  // Let the cooldown elapse, then storm the half-open domain.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  constexpr int kThreads = 16;
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&breaker, &granted, opened] {
      opened.wait();
      if (breaker.Allow(kDomain)) ++granted;
    });
  }
  gate.set_value();
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), opts.half_open_probes);
  EXPECT_EQ(breaker.state(kDomain), CircuitBreaker::State::kHalfOpen);

  // The claimed probes succeed one by one; the quota-th closes the domain.
  for (int i = 0; i < opts.half_open_probes; ++i) {
    breaker.RecordSuccess(kDomain);
  }
  EXPECT_EQ(breaker.state(kDomain), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow(kDomain));
  breaker.Abandon(kDomain);
}

}  // namespace
}  // namespace tabbench
