#include "lint.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

// Unit tests for tools/lint: every rule must fire on a known-bad snippet,
// stay quiet on the matching known-good one, and honor the suppression
// syntax. The snippets are in-memory SourceFiles, so these tests exercise
// the same code path as the tabbench_lint CLI minus the filesystem walk.
namespace {

using tabbench_lint::Finding;
using tabbench_lint::Lint;
using tabbench_lint::Options;
using tabbench_lint::SourceFile;

std::vector<Finding> RunLint(std::vector<SourceFile> files,
                         const Options& opts = {}) {
  return Lint(files, opts);
}

size_t CountRule(const std::vector<Finding>& findings,
                 const std::string& rule) {
  size_t n = 0;
  for (const auto& f : findings) {
    if (f.rule == rule) ++n;
  }
  return n;
}

// ------------------------------------------------------------- determinism

TEST(LintDeterminism, FiresOnAmbientEntropyInResultPaths) {
  auto findings = RunLint({{"src/core/runner.cc",
                        "int f() { return rand(); }\n"
                        "std::random_device rd;\n"
                        "auto t = time(nullptr);\n"
                        "auto n = std::chrono::system_clock::now();\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-determinism"), 4u);
}

TEST(LintDeterminism, ScopedToCoreAndEngineOnly) {
  // The same ugliness outside the result paths (e.g. a bench harness
  // measuring wall time) is not this rule's business.
  auto findings = RunLint({{"bench/bench_totals.cc",
                        "auto n = std::chrono::system_clock::now();\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-determinism"), 0u);
}

TEST(LintDeterminism, IgnoresCommentsAndStrings) {
  auto findings = RunLint({{"src/core/runner.cc",
                        "// rand() is banned here\n"
                        "const char* kMsg = \"rand() via util/rng.h\";\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-determinism"), 0u);
}

// ------------------------------------------------------------- naked-new

TEST(LintNakedNew, FiresOnNewAndDelete) {
  auto findings = RunLint({{"src/engine/x.cc",
                        "auto* p = new Foo();\n"
                        "delete p;\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 2u);
}

TEST(LintNakedNew, DeletedSpecialMembersAreFine) {
  auto findings = RunLint({{"src/engine/x.h",
                        "#ifndef TABBENCH_ENGINE_X_H_\n"
                        "#define TABBENCH_ENGINE_X_H_\n"
                        "struct X { X(const X&) = delete; };\n"
                        "#endif  // TABBENCH_ENGINE_X_H_\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 0u);
}

TEST(LintNakedNew, IdentifiersContainingNewAreFine) {
  auto findings = RunLint({{"src/engine/x.cc",
                        "auto new_root = MakeNode();\n"
                        "int renewal = 2;\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 0u);
}

// -------------------------------------------------------------- raw-sleep

TEST(LintRawSleep, FiresOnThisThreadSleepsInSrc) {
  auto findings = RunLint({{"src/util/thread_pool.cc",
                        "std::this_thread::sleep_for(10ms);\n"
                        "std::this_thread::sleep_until(deadline);\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-raw-sleep"), 2u);
}

TEST(LintRawSleep, RetryHelperAndTestsAreExempt) {
  // src/util/retry.cc is the one sanctioned raw-sleep site (the poll-slice
  // loop inside SleepWithCancellation); tests may sleep deliberately.
  auto findings = RunLint({{"src/util/retry.cc",
                        "std::this_thread::sleep_for(slice);\n"},
                       {"tests/service_test.cc",
                        "std::this_thread::sleep_for(50ms);\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-raw-sleep"), 0u);
}

TEST(LintRawSleep, NolintEscapeHatch) {
  auto findings = RunLint({{"src/service/session.cc",
                        "std::this_thread::sleep_for(10ms);"
                        "  // NOLINT(tabbench-raw-sleep)\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-raw-sleep"), 0u);
}

// --------------------------------------------------------- unsynced-write

TEST(LintUnsyncedWrite, FiresOnDirectWritesInCoreAndService) {
  auto findings = RunLint(
      {{"src/core/report.cc",
        "std::ofstream out(path);\n"
        "std::fstream rw(path, std::ios::out);\n"},
       {"src/service/workload_service.cc",
        "FILE* f = fopen(path.c_str(), \"wb\");\n"
        "FILE* g = fopen(path.c_str(), \"a\");\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unsynced-write"), 4u);
}

TEST(LintUnsyncedWrite, ReadsAndOtherLayersAreExempt) {
  // ifstream and read-mode fopen are not durability hazards, and the rule
  // is scoped to the layers that produce benchmark artifacts: util (the
  // sanctioned implementation site), tools, and tests stay free to write
  // however they like.
  auto findings = RunLint(
      {{"src/core/workload_io.cc",
        "std::ifstream in(path, std::ios::binary);\n"
        "FILE* f = fopen(path.c_str(), \"rb\");\n"},
       {"src/util/file_util.cc", "std::ofstream out(tmp);\n"},
       {"tools/lint/lint.cc", "std::ofstream out(path);\n"},
       {"tests/journal_test.cc", "std::ofstream out(path);\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unsynced-write"), 0u);
}

TEST(LintUnsyncedWrite, NolintEscapeHatch) {
  auto findings = RunLint(
      {{"src/core/report.cc",
        "std::ofstream out(path);  // NOLINT(tabbench-unsynced-write)\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unsynced-write"), 0u);
}

// ------------------------------------------------------------ float-equal

TEST(LintFloatEqual, FiresInCostCode) {
  auto findings = RunLint({{"src/optimizer/cost_model.cc",
                        "if (cost == 0.0) return;\n"
                        "bool b = 1.5e3 != x;\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-float-equal"), 2u);
}

TEST(LintFloatEqual, OrderedComparisonsAndIntegersAreFine) {
  auto findings = RunLint({{"src/core/cfc.cc",
                        "if (cost <= 0.5) return;\n"
                        "if (total == 0) return;\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-float-equal"), 0u);
}

TEST(LintFloatEqual, ScopedToCostAndCfcFiles) {
  auto findings = RunLint({{"src/sql/parser.cc", "bool b = (x == 0.5);\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-float-equal"), 0u);
}

// ------------------------------------------------------- unchecked-status

TEST(LintUncheckedStatus, FiresOnDiscardedCall) {
  auto findings = RunLint({{"src/util/api.h",
                        "#ifndef TABBENCH_UTIL_API_H_\n"
                        "#define TABBENCH_UTIL_API_H_\n"
                        "Status DoThing(int x);\n"
                        "#endif  // TABBENCH_UTIL_API_H_\n"},
                       {"src/util/use.cc", "void f() {\n  DoThing(1);\n}\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unchecked-status"), 1u);
}

TEST(LintUncheckedStatus, ConsumedCallsAreFine) {
  auto findings = RunLint(
      {{"src/util/api.h",
        "#ifndef TABBENCH_UTIL_API_H_\n"
        "#define TABBENCH_UTIL_API_H_\n"
        "Status DoThing(int x);\n"
        "#endif  // TABBENCH_UTIL_API_H_\n"},
       {"src/util/use.cc",
        "Status g() {\n"
        "  Status s = DoThing(1);\n"
        "  (void)DoThing(2);\n"
        "  TB_RETURN_IF_ERROR(DoThing(3));\n"
        "  return DoThing(4);\n"
        "}\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unchecked-status"), 0u);
}

TEST(LintUncheckedStatus, AmbiguousOverloadsAreSkipped) {
  // `Insert` is declared both void (BTree-style) and Status
  // (Database-style); a name-level analysis cannot tell the call sites
  // apart, so it must stay quiet ([[nodiscard]] catches the real ones).
  auto findings = RunLint({{"src/util/api.h",
                        "#ifndef TABBENCH_UTIL_API_H_\n"
                        "#define TABBENCH_UTIL_API_H_\n"
                        "Status Insert(int x);\n"
                        "void Insert(int x, int y);\n"
                        "#endif  // TABBENCH_UTIL_API_H_\n"},
                       {"src/util/use.cc", "void f() {\n  Insert(1);\n}\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unchecked-status"), 0u);
}

TEST(LintUncheckedStatus, ContinuationLinesAreNotBareCalls) {
  auto findings = RunLint({{"src/util/api.h",
                        "#ifndef TABBENCH_UTIL_API_H_\n"
                        "#define TABBENCH_UTIL_API_H_\n"
                        "Status DoThing(int x);\n"
                        "#endif  // TABBENCH_UTIL_API_H_\n"},
                       {"src/util/use.cc",
                        "void f() {\n"
                        "  TB_ASSERT_OK(\n"
                        "      DoThing(1));\n"
                        "}\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unchecked-status"), 0u);
}

// -------------------------------------------------------- unordered-iter

TEST(LintUnorderedIter, FiresOnRangeForOverUnorderedMember) {
  auto findings = RunLint({{"src/core/x.cc",
                        "std::unordered_map<int, int> counts;\n"
                        "void f() {\n"
                        "  for (const auto& [k, v] : counts) use(k, v);\n"
                        "}\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unordered-iter"), 1u);
}

TEST(LintUnorderedIter, VectorOfUnorderedSetsIsFine) {
  // The outer container is a vector; its iteration order is deterministic.
  auto findings = RunLint({{"src/core/x.cc",
                        "std::vector<std::unordered_set<int>> sets;\n"
                        "void f() {\n"
                        "  for (const auto& s : sets) use(s);\n"
                        "}\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-unordered-iter"), 0u);
}

// --------------------------------------------------------- include-guard

TEST(LintIncludeGuard, CanonicalGuardDropsLeadingSrc) {
  EXPECT_EQ(tabbench_lint::CanonicalGuard("src/util/mutex.h"),
            "TABBENCH_UTIL_MUTEX_H_");
  EXPECT_EQ(tabbench_lint::CanonicalGuard("tests/test_util.h"),
            "TABBENCH_TESTS_TEST_UTIL_H_");
  EXPECT_EQ(tabbench_lint::CanonicalGuard("tools/lint/lint.h"),
            "TABBENCH_TOOLS_LINT_LINT_H_");
}

TEST(LintIncludeGuard, FiresOnMissingAndMismatched) {
  auto missing = RunLint({{"src/util/a.h", "int f();\n"}});
  EXPECT_EQ(CountRule(missing, "tabbench-include-guard"), 1u);

  auto wrong = RunLint({{"src/util/b.h",
                     "#ifndef WRONG_GUARD_H\n"
                     "#define WRONG_GUARD_H\n"
                     "int f();\n"
                     "#endif\n"}});
  EXPECT_EQ(CountRule(wrong, "tabbench-include-guard"), 1u);
}

TEST(LintIncludeGuard, FixRewritesTheGuardInPlace) {
  std::vector<SourceFile> files = {{"src/util/b.h",
                                    "#ifndef WRONG_GUARD_H\n"
                                    "#define WRONG_GUARD_H\n"
                                    "int f();\n"
                                    "#endif\n"}};
  Options opts;
  opts.fix = true;
  auto findings = Lint(files, opts);
  ASSERT_EQ(CountRule(findings, "tabbench-include-guard"), 1u);
  EXPECT_NE(findings[0].message.find("[fixed]"), std::string::npos);
  EXPECT_NE(files[0].content.find("#ifndef TABBENCH_UTIL_B_H_"),
            std::string::npos);
  EXPECT_NE(files[0].content.find("#define TABBENCH_UTIL_B_H_"),
            std::string::npos);
  EXPECT_NE(files[0].content.find("#endif  // TABBENCH_UTIL_B_H_"),
            std::string::npos);

  // The fixed file must lint clean on a second pass.
  auto again = Lint(files);
  EXPECT_EQ(CountRule(again, "tabbench-include-guard"), 0u);
}

TEST(LintIncludeGuard, FixWrapsGuardlessHeader) {
  std::vector<SourceFile> files = {{"src/util/c.h", "int g();\n"}};
  Options opts;
  opts.fix = true;
  auto findings = Lint(files, opts);
  ASSERT_EQ(CountRule(findings, "tabbench-include-guard"), 1u);
  auto again = Lint(files);
  EXPECT_EQ(CountRule(again, "tabbench-include-guard"), 0u);
  EXPECT_NE(files[0].content.find("int g();"), std::string::npos);
}

// ------------------------------------------------------- include-hygiene

TEST(LintIncludeHygiene, FiresOnParentRelativeInclude) {
  auto findings = RunLint({{"src/core/x.cc", "#include \"../util/rng.h\"\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-include-hygiene"), 1u);
  auto clean = RunLint({{"src/core/y.cc", "#include \"util/rng.h\"\n"}});
  EXPECT_EQ(CountRule(clean, "tabbench-include-hygiene"), 0u);
}

// ---------------------------------------------------------- suppressions

TEST(LintSuppressions, NolintOnTheLine) {
  auto findings =
      RunLint({{"src/engine/x.cc",
            "auto* p = new Foo();  // NOLINT(tabbench-naked-new) reason\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 0u);
}

TEST(LintSuppressions, BareNolintSuppressesEveryRule) {
  auto findings = RunLint({{"src/core/x.cc",
                        "int r = rand();  // NOLINT intentional\n"}});
  EXPECT_TRUE(findings.empty());
}

TEST(LintSuppressions, NolintNextline) {
  auto findings = RunLint({{"src/engine/x.cc",
                        "// NOLINTNEXTLINE(tabbench-naked-new)\n"
                        "auto* p = new Foo();\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 0u);
}

TEST(LintSuppressions, NolintFileCoversTheWholeFile) {
  auto findings = RunLint({{"src/engine/x.cc",
                        "// NOLINTFILE(tabbench-naked-new): arena code\n"
                        "auto* a = new Foo();\n"
                        "auto* b = new Bar();\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 0u);
}

TEST(LintSuppressions, NolintInsideAStringLiteralDoesNotSuppress) {
  // Only comment markers count: a NOLINT spelled inside a string literal
  // (e.g. a linter's own test fixture or log text) must not silence the
  // line it sits on.
  auto findings = RunLint(
      {{"src/engine/x.cc",
        "auto* p = new Foo(\"// NOLINT(tabbench-naked-new)\");\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 1u);
}

TEST(LintSuppressions, WrongRuleNameDoesNotSuppress) {
  auto findings = RunLint({{"src/engine/x.cc",
                        "auto* p = new Foo();  // NOLINT(tabbench-float-equal)\n"}});
  EXPECT_EQ(CountRule(findings, "tabbench-naked-new"), 1u);
}

// --------------------------------------------------------------- output

TEST(LintOutput, JsonCarriesEveryField) {
  auto findings = RunLint({{"src/engine/x.cc", "auto* p = new Foo();\n"}});
  ASSERT_EQ(findings.size(), 1u);
  const std::string json = tabbench_lint::ToJson(findings);
  EXPECT_NE(json.find("\"file\": \"src/engine/x.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"tabbench-naked-new\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fixable\": false"), std::string::npos);
}

TEST(LintOutput, RuleTableNamesAreUniqueAndPrefixed) {
  const auto& rules = tabbench_lint::Rules();
  ASSERT_GE(rules.size(), 7u);
  for (size_t i = 0; i < rules.size(); ++i) {
    EXPECT_EQ(std::string(rules[i].name).rfind("tabbench-", 0), 0u);
    for (size_t j = i + 1; j < rules.size(); ++j) {
      EXPECT_STRNE(rules[i].name, rules[j].name);
    }
  }
}

}  // namespace
