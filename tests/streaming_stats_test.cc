#include "util/streaming_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace tabbench {
namespace {

// Exact empirical quantile (nearest-rank on the sorted sample) for
// comparing the sketch against ground truth.
double ExactQuantile(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const size_t idx = static_cast<size_t>(q * (v.size() - 1));
  return v[idx];
}

TEST(QuantileSketchTest, EmptyAndSingleValue) {
  QuantileSketch s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);

  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Quantile(0.0), 3.5);
  EXPECT_EQ(s.Quantile(0.5), 3.5);
  EXPECT_EQ(s.Quantile(1.0), 3.5);
}

TEST(QuantileSketchTest, ExtremesPinToObservedMinMax) {
  QuantileSketch s;
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) s.Add(rng.UniformDouble() * 100.0);
  EXPECT_EQ(s.Quantile(0.0), s.min());
  EXPECT_EQ(s.Quantile(1.0), s.max());
  // Clamped outside [0, 1].
  EXPECT_EQ(s.Quantile(-0.5), s.min());
  EXPECT_EQ(s.Quantile(1.5), s.max());
}

TEST(QuantileSketchTest, UniformStreamQuantilesWithinTolerance) {
  QuantileSketch s(64);
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 50000; ++i) {
    const double v = rng.UniformDouble() * 1000.0;
    values.push_back(v);
    s.Add(v);
  }
  EXPECT_EQ(s.count(), values.size());
  for (double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double est = s.Quantile(q);
    // The k1 scale function concentrates accuracy at the tails; 2% of the
    // value range is loose enough to be robust, tight enough to be useful.
    EXPECT_NEAR(est, exact, 20.0) << "q=" << q;
  }
}

TEST(QuantileSketchTest, HeavyTailKeepsSharpHighQuantiles) {
  // Latency-shaped data: lognormal-ish via exp of a sum of uniforms.
  QuantileSketch s(64);
  std::vector<double> values;
  Rng rng(23);
  for (int i = 0; i < 30000; ++i) {
    double g = 0.0;
    for (int k = 0; k < 6; ++k) g += rng.UniformDouble() - 0.5;
    const double v = std::exp(2.0 * g);  // right-skewed, tail past 10
    values.push_back(v);
    s.Add(v);
  }
  for (double q : {0.95, 0.99}) {
    const double exact = ExactQuantile(values, q);
    const double est = s.Quantile(q);
    EXPECT_NEAR(est, exact, std::max(0.35 * exact, 0.05)) << "q=" << q;
  }
  // Monotone in q.
  double prev = s.Quantile(0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double cur = s.Quantile(q);
    EXPECT_GE(cur, prev - 1e-12) << "q=" << q;
    prev = cur;
  }
}

TEST(QuantileSketchTest, DeterministicAcrossRuns) {
  // Same insertion sequence -> bit-identical quantiles (no hidden RNG or
  // clock in the compression path) — the deterministic-replay contract the
  // shard health machine relies on.
  auto run = [] {
    QuantileSketch s(32);
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) s.Add(rng.UniformDouble() * 7.0);
    return s;
  };
  const QuantileSketch a = run();
  const QuantileSketch b = run();
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(a.Quantile(q), b.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeMatchesCombinedStream) {
  QuantileSketch left(64), right(64), combined(64);
  std::vector<double> values;
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.UniformDouble() * 100.0;
    values.push_back(v);
    combined.Add(v);
    (i % 2 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), values.size());
  EXPECT_EQ(left.min(), combined.min());
  EXPECT_EQ(left.max(), combined.max());
  for (double q : {0.25, 0.5, 0.75, 0.95, 0.99}) {
    EXPECT_NEAR(left.Quantile(q), ExactQuantile(values, q), 7.5) << "q=" << q;
  }
}

TEST(QuantileSketchTest, ClearResetsEverything) {
  QuantileSketch s;
  for (int i = 0; i < 100; ++i) s.Add(i);
  s.Clear();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.Quantile(0.5), 0.0);
  s.Add(42.0);
  EXPECT_EQ(s.Quantile(0.5), 42.0);
}

TEST(StreamingStatsTest, SnapshotSummarizesStream) {
  StreamingStats stats;
  for (int i = 1; i <= 1000; ++i) stats.Record(i / 1000.0);
  const LatencyDigest d = stats.Snapshot();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_NEAR(d.mean, 0.5005, 1e-9);
  EXPECT_NEAR(d.p50, 0.5, 0.05);
  EXPECT_NEAR(d.p95, 0.95, 0.05);
  EXPECT_NEAR(d.p99, 0.99, 0.05);
  EXPECT_EQ(d.max, 1.0);
  stats.Clear();
  EXPECT_EQ(stats.Snapshot().count, 0u);
}

TEST(StreamingStatsTest, ConcurrentRecordersLoseNothing) {
  StreamingStats stats;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  ThreadPool pool(kThreads);
  Latch latch(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(pool.Submit([&stats, &latch, t] {
                      Rng rng(1000 + t);
                      for (int i = 0; i < kPerThread; ++i) {
                        stats.Record(rng.UniformDouble());
                      }
                      latch.CountDown();
                    })
                    .ok());
  }
  latch.Wait();
  const LatencyDigest d = stats.Snapshot();
  EXPECT_EQ(d.count, static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(d.p95, d.p50);
  EXPECT_LE(d.p99, d.max);
}

}  // namespace
}  // namespace tabbench
