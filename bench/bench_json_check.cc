// Schema gate for BENCH_*.json perf-trajectory artifacts: validates each
// path given on the command line against the BenchJsonReport shape
// (bench_support.h) and rejects two artifacts carrying the same benchmark
// name, exiting non-zero on the first violation. CI runs this right after
// the bench smoke so a malformed or name-colliding artifact fails the
// `vectorized` stage instead of silently poisoning later trajectory diffs
// (a duplicated name would make trajectory plots average two runs).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_support.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <bench.json>...\n", argv[0]);
    return 2;
  }
  std::vector<std::string> paths(argv + 1, argv + argc);
  tabbench::Status st = tabbench::bench::ValidateBenchJsonSet(paths);
  if (!st.ok()) {
    std::fprintf(stderr, "SCHEMA FAIL: %s\n", st.ToString().c_str());
    return 1;
  }
  for (const std::string& path : paths) {
    std::printf("%s: ok\n", path.c_str());
  }
  return 0;
}
