// Schema gate for BENCH_*.json perf-trajectory artifacts: validates each
// path given on the command line against the BenchJsonReport shape
// (bench_support.h) and exits non-zero on the first violation. CI runs
// this right after the bench smoke so a malformed artifact fails the
// `vectorized` stage instead of silently poisoning later trajectory diffs.

#include <cstdio>

#include "bench_support.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <bench.json>...\n", argv[0]);
    return 2;
  }
  for (int i = 1; i < argc; ++i) {
    tabbench::Status st = tabbench::bench::ValidateBenchJsonFile(argv[i]);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: SCHEMA FAIL: %s\n", argv[i],
                   st.ToString().c_str());
      return 1;
    }
    std::printf("%s: ok\n", argv[i]);
  }
  return 0;
}
