// Open-loop overload harness for the sharded serving layer (DESIGN.md §7):
// arrivals follow a seeded Poisson (or heavy-tailed Pareto) process whose
// rate is swept well past saturation, each arrival drawn from millions of
// simulated client sessions that hash down onto a bounded domain space and
// route through the ShardRouter. Because the generator never waits for
// completions before the next arrival (open loop), offered load keeps
// pressing when the service saturates — exactly the regime where the
// degradation ladder (parallelism caps, priority shedding, quarantine +
// re-route) must hold the goal-satisfaction curve up instead of collapsing.
//
// Per offered-load level the harness prints the G(x)-style curve point:
// completed throughput, goal-satisfaction fraction (wall latency under the
// goal for the fraction the paper's G(x) would count), rejection/shed rates,
// and the router's latency percentiles from the per-shard streaming digests.
//
// Chaos mode (TABBENCH_LOAD_CHAOS=1, or any armed TABBENCH_FAULTS schedule)
// kills shard 1 mid-sweep and then *audits the router journal*: every
// admitted submission must have exactly one terminal-outcome record (the
// no-lost-job invariant) and the killed shard must re-admit before exit.
//
// Knobs (all env, defaults sized for a CI smoke run):
//   TABBENCH_LOAD_SHARDS         worker shards            (default 2)
//   TABBENCH_LOAD_SHARD_WORKERS  threads per shard        (default 2)
//   TABBENCH_LOAD_DOMAINS        affinity domains         (default 32)
//   TABBENCH_LOAD_SESSIONS       simulated session space  (default 1000000)
//   TABBENCH_LOAD_QPS            first offered rate       (default 50)
//   TABBENCH_LOAD_STEPS          levels, doubling rate    (default 3)
//   TABBENCH_LOAD_ARRIVALS       arrivals per level       (default 150)
//   TABBENCH_LOAD_GOAL_MS        per-query wall goal      (default 250)
//   TABBENCH_LOAD_TAIL           "exp" | "pareto"         (default exp)
//   TABBENCH_LOAD_CHAOS          1 = kill a shard mid-run (default 0)
//   TABBENCH_LOAD_SEED           arrival-process seed     (default 42)
//
// `--bench-json <path>` writes the saturation point (max completed
// throughput across levels) as a BENCH_*.json perf-trajectory record.

#include <sys/stat.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bench_support.h"
#include "core/sampling.h"
#include "service/shard_router.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/run_journal.h"

namespace {

size_t EnvSize(const char* name, size_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const long long parsed = std::atoll(v);
  return parsed > 0 ? static_cast<size_t>(parsed) : def;
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  const double parsed = std::atof(v);
  return parsed > 0.0 ? parsed : def;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tabbench;
  using namespace tabbench::bench;
  using Clock = std::chrono::steady_clock;

  const std::string bench_json = TakeBenchJsonArg(&argc, argv);

  const size_t shards = EnvSize("TABBENCH_LOAD_SHARDS", 2);
  const size_t shard_workers = EnvSize("TABBENCH_LOAD_SHARD_WORKERS", 2);
  const size_t domains = EnvSize("TABBENCH_LOAD_DOMAINS", 32);
  const size_t sessions = EnvSize("TABBENCH_LOAD_SESSIONS", 1000000);
  const double base_qps = EnvDouble("TABBENCH_LOAD_QPS", 50.0);
  const size_t steps = EnvSize("TABBENCH_LOAD_STEPS", 3);
  const size_t arrivals = EnvSize("TABBENCH_LOAD_ARRIVALS", 150);
  const double goal_seconds = EnvDouble("TABBENCH_LOAD_GOAL_MS", 250.0) / 1e3;
  const char* tail_env = std::getenv("TABBENCH_LOAD_TAIL");
  const bool pareto = tail_env != nullptr && std::string(tail_env) == "pareto";
  const bool chaos = EnvSize("TABBENCH_LOAD_CHAOS", 0) == 1 ||
                     FaultInjectionArmed();
  const uint64_t seed = EnvSize("TABBENCH_LOAD_SEED", 42);

  std::printf("=== Open-loop overload: sharded WorkloadService ===\n");

  auto db = MakeNrefDb();
  if (!db) return 1;
  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  auto sampled = SampleFamily(family, db.get(), WorkloadSize(), /*seed=*/7);
  if (!sampled.ok()) {
    std::printf("sampling failed: %s\n", sampled.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> sql = sampled->Sql();

  const std::string journal_dir = "bench_service_load_journal";
  ::mkdir(journal_dir.c_str(), 0755);

  ShardRouterOptions ropts;
  ropts.shards = shards;
  ropts.shard.service.workers = shard_workers;
  ropts.shard.service.max_in_flight = 4 * shard_workers;
  // Overload is the *point* here: queue-depth quarantine stays far out so
  // the ladder's first two steps (cap, shed) do the work; chaos kills
  // exercise step 3.
  ropts.shard.health.degrade_queue_depth = 2 * shard_workers;
  ropts.shard.health.quarantine_queue_depth = 64 * shard_workers;
  ropts.shard.health.quarantine_cooldown_seconds = 0.05;
  ropts.max_in_flight = 16 * shards * shard_workers;
  ropts.journal_dir = journal_dir;
  ropts.eval_every = 8;
  ShardRouter router(db.get(), ropts);

  std::printf(
      "%zu shards x %zu workers, %zu domains, %zu simulated sessions, "
      "%s arrivals, goal %.0f ms, chaos %s\n\n",
      shards, shard_workers, domains, sessions, pareto ? "pareto" : "poisson",
      goal_seconds * 1e3, chaos ? "ON" : "off");
  std::printf("%-12s %-10s %-10s %-7s %-7s %-7s %-9s %-9s %s\n", "offered/s",
              "done/s", "G(goal)", "reject", "shed", "fail", "p95 ms",
              "p99 ms", "health");

  Rng rng(seed);
  uint64_t admitted_total = 0;
  double best_done_qps = 0.0;
  size_t best_level_threads = shards * shard_workers;
  double total_wall = 0.0;
  bool killed = false;

  double offered = base_qps;
  for (size_t level = 0; level < steps; ++level, offered *= 2.0) {
    struct Outcome {
      std::future<Result<QueryResult>> future;
      Clock::time_point submitted;
      bool admitted = false;
    };
    std::vector<Outcome> outs;
    outs.reserve(arrivals);

    const auto level_start = Clock::now();
    auto next_arrival = level_start;
    for (size_t i = 0; i < arrivals; ++i) {
      // Open loop: the next arrival time never depends on completions.
      const double u = std::max(1e-12, rng.UniformDouble());
      const double gap = pareto
                             // Pareto(alpha=1.5) scaled to the same mean.
                             ? (1.0 / (3.0 * offered)) / std::pow(u, 1.0 / 1.5)
                             : -std::log(u) / offered;
      next_arrival += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(gap));
      std::this_thread::sleep_until(next_arrival);

      // Chaos: kill shard 1 once, a third of the way into the middle level.
      if (chaos && !killed && level == steps / 2 && i == arrivals / 3) {
        router.KillShard(0);
        killed = true;
      }

      const uint64_t session = rng.Uniform(sessions);
      SubmitOptions so;
      so.domain = session % domains;
      so.priority = rng.Bernoulli(0.25) ? 0 : 1;  // a quarter sheddable
      so.job.retry.max_attempts = 2;
      so.job.retry.initial_backoff_seconds = 0.002;
      Outcome o;
      o.submitted = Clock::now();
      o.future = router.Submit(sql[rng.Uniform(sql.size())], so);
      outs.push_back(std::move(o));
    }

    uint64_t done = 0, within_goal = 0, rejected = 0, shed = 0, failed = 0;
    for (Outcome& o : outs) {
      Result<QueryResult> r = o.future.get();
      // Drained in submission order, so this sojourn is an upper bound when
      // completions reorder across domains — G(goal) reads conservative,
      // never flattering. The p95/p99 columns come from the router's
      // per-shard digests, which time each job individually.
      const double wall =
          std::chrono::duration<double>(Clock::now() - o.submitted).count();
      if (r.ok()) {
        ++done;
        if (wall <= goal_seconds && !r->timed_out && !r->failed) {
          ++within_goal;
        }
      } else if (r.status().IsUnavailable()) {
        if (RetryAfterHintSeconds(r.status()) > 0.0) {
          ++shed;  // shed / capacity rejections carry the retry hint
        } else {
          ++rejected;
        }
      } else {
        ++failed;
      }
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - level_start).count();
    total_wall += wall_s;
    const RouterStats rs = router.stats();
    admitted_total = rs.submitted;
    const double done_qps = wall_s > 0.0 ? done / wall_s : 0.0;
    if (done_qps > best_done_qps) best_done_qps = done_qps;

    LatencyDigest agg;
    std::string health;
    for (size_t s = 0; s < router.num_shards(); ++s) {
      const LatencyDigest d = router.shard(s)->latency();
      if (d.count > agg.count) agg = d;  // report the busiest shard's tail
      if (!health.empty()) health += "/";
      health += ShardHealthName(router.shard_health(s));
    }
    std::printf("%-12.0f %-10.1f %-10.3f %-7llu %-7llu %-7llu %-9.1f %-9.1f %s\n",
                offered, done_qps,
                outs.empty() ? 0.0
                             : static_cast<double>(within_goal) / outs.size(),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(shed),
                static_cast<unsigned long long>(failed), agg.p95 * 1e3,
                agg.p99 * 1e3, health.c_str());
  }

  // Chaos epilogue: drive probes until the killed shard re-admits.
  int rc = 0;
  if (chaos) {
    const auto deadline = Clock::now() + std::chrono::seconds(30);
    while (router.shard_health(0) != ShardHealth::kHealthy &&
           Clock::now() < deadline) {
      router.Tick();
      std::vector<std::future<Result<QueryResult>>> probes;
      for (uint64_t d = 0; d < domains; ++d) {
        SubmitOptions so;
        so.domain = d;
        probes.push_back(router.Submit(sql[0], so));
      }
      for (auto& f : probes) (void)f.get();
    }
    const RouterStats rs = router.stats();
    admitted_total = rs.submitted;
    std::printf("\nchaos: kills=%llu reroutes=%llu probes=%llu "
                "readmissions=%llu failovers=%llu\n",
                static_cast<unsigned long long>(rs.kills),
                static_cast<unsigned long long>(rs.reroutes),
                static_cast<unsigned long long>(rs.probes),
                static_cast<unsigned long long>(rs.readmissions),
                static_cast<unsigned long long>(rs.failovers));
    if (router.shard_health(0) != ShardHealth::kHealthy) {
      std::printf("chaos FAIL: killed shard never re-admitted\n");
      rc = 1;
    }
    if (rs.kills == 0 || rs.readmissions == 0) {
      std::printf("chaos FAIL: expected at least one kill and readmission\n");
      rc = 1;
    }
  }

  if (!router.journal_status().ok()) {
    std::printf("router journal error: %s\n",
                router.journal_status().ToString().c_str());
    rc = 1;
  }
  router.Shutdown();

  // No-lost-job audit over the router journal: every admitted submission
  // must have exactly one terminal-outcome record.
  auto journal = LoadRunJournal(journal_dir + "/router.tbj");
  if (!journal.ok()) {
    std::printf("journal audit FAIL: %s\n",
                journal.status().ToString().c_str());
    rc = 1;
  } else {
    std::set<uint32_t> ordinals;
    for (const JournalQueryRecord& r : journal->records) {
      if (!ordinals.insert(r.query_index).second) {
        std::printf("journal audit FAIL: duplicate ordinal %u\n",
                    r.query_index);
        rc = 1;
      }
    }
    if (journal->records.size() != admitted_total) {
      std::printf(
          "journal audit FAIL: %zu terminal records for %llu admitted jobs\n",
          journal->records.size(),
          static_cast<unsigned long long>(admitted_total));
      rc = 1;
    } else {
      std::printf("\njournal audit OK: %zu admitted jobs, %zu terminal "
                  "records, %zu routing decisions\n",
                  journal->records.size(), journal->records.size(),
                  journal->events.size());
    }
  }

  if (!bench_json.empty()) {
    BenchJsonReport report;
    report.name = "service_overload_saturation";
    report.queries_per_second = best_done_qps;
    report.wall_seconds = total_wall;
    report.speedup_vs_serial = 1.0;  // throughput record, not a speedup
    report.thread_count = best_level_threads;
    Status st = WriteBenchJsonReport(bench_json, report);
    if (!st.ok()) {
      std::printf("bench-json write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (saturation %.1f q/s)\n", bench_json.c_str(),
                best_done_qps);
  }
  return rc;
}
