// Reproduces paper Table 1: size and build time of every configuration used
// in the experiments — for each (system, database): P, the per-family
// recommended configurations, and 1C. Sizes are reported as paper-equivalent
// GB (scaled pages x page size x scale factor); build times in simulated
// minutes.

#include <cstdio>

#include "bench_support.h"

namespace {

using namespace tabbench;
using namespace tabbench::bench;

struct Row {
  std::string label;
  uint64_t pages = 0;
  double build_seconds = 0;
};

int RunDatabase(Database* db, const std::string& db_label,
                const std::vector<std::pair<std::string, QueryFamily>>& fams,
                const std::vector<std::pair<std::string, AdvisorOptions>>&
                    systems,
                std::vector<Row>* rows) {
  uint64_t base = db->BasePages();
  rows->push_back({db_label + " P", base, 0.0});

  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  for (const auto& [sys_name, profile] : systems) {
    for (const auto& [fam_name, family] : fams) {
      FamilyExperiment exp(db, family, eopts);
      if (!exp.Prepare().ok()) return 1;
      auto rec = exp.Recommend(profile);
      std::string label = sys_name + " " + db_label + " " + fam_name + " R";
      if (!rec.ok()) {
        std::printf("  %-24s (no recommendation: %s)\n", label.c_str(),
                    rec.status().message().c_str());
        continue;
      }
      auto rep = db->ApplyConfiguration(rec->config);
      if (!rep.ok()) {
        std::fprintf(stderr, "build failed: %s\n",
                     rep.status().ToString().c_str());
        return 1;
      }
      rows->push_back({label, base + rep->secondary_pages,
                       rep->build_seconds});
      (void)db->ResetToPrimary();
    }
  }
  auto rep = db->ApplyConfiguration(Make1CConfig(db->catalog()));
  if (!rep.ok()) return 1;
  rows->push_back({db_label + " 1C", base + rep->secondary_pages,
                   rep->build_seconds});
  (void)db->ResetToPrimary();
  return 0;
}

}  // namespace

int main() {
  std::printf("=== Table 1: sizes and build times of all configurations ===\n");
  std::vector<Row> rows;

  {
    auto nref = MakeNrefDb();
    if (nref == nullptr) return 1;
    std::vector<std::pair<std::string, QueryFamily>> fams_a = {
        {"NREF2J", GenerateNref2J(nref->catalog(), nref->stats())},
    };
    std::vector<std::pair<std::string, QueryFamily>> fams_b = {
        {"NREF2J", GenerateNref2J(nref->catalog(), nref->stats())},
        {"NREF3J", GenerateNref3J(nref->catalog(), nref->stats())},
    };
    // System A: NREF2J only (its recommender fails on NREF3J).
    if (RunDatabase(nref.get(), "NREF", fams_a,
                    {{"A", SystemAProfile()}}, &rows) != 0) {
      return 1;
    }
    if (RunDatabase(nref.get(), "NREF", fams_b,
                    {{"B", SystemBProfile()}}, &rows) != 0) {
      return 1;
    }
  }
  {
    auto skth = MakeSkthDb();
    if (skth == nullptr) return 1;
    std::vector<std::pair<std::string, QueryFamily>> fams = {
        {"SkTH3J", GenerateTpch3J(skth->catalog(), skth->stats(), "SkTH3J")},
        {"SkTH3Js", GenerateTpch3Js(skth->catalog(), skth->stats())},
    };
    if (RunDatabase(skth.get(), "SkTH", fams, {{"C", SystemCProfile()}},
                    &rows) != 0) {
      return 1;
    }
  }
  {
    auto unth = MakeUnthDb();
    if (unth == nullptr) return 1;
    std::vector<std::pair<std::string, QueryFamily>> fams = {
        {"UnTH3J", GenerateTpch3J(unth->catalog(), unth->stats(), "UnTH3J")},
    };
    if (RunDatabase(unth.get(), "UnTH", fams, {{"C", SystemCProfile()}},
                    &rows) != 0) {
      return 1;
    }
  }

  std::printf("\n%-28s %14s %14s\n", "configuration", "size", "build time");
  for (const auto& r : rows) {
    std::printf("%s\n",
                tabbench::bench::Table1Row(r.label, r.pages, r.build_seconds,
                                           ScaleInverse())
                    .c_str());
  }
  std::printf(
      "\npaper shape: P smallest per database; every R uses less space than "
      "1C;\nbuild times range from minutes (P deltas) to many hours (1C on "
      "the big databases).\n");
  return 0;
}
