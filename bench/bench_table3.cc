// Reproduces paper Table 3: the number of 1-4 column indexes per object in
// each recommended configuration for the TPC-H benchmarks (C_SkTH3Js_R,
// C_SkTH3J_R, C_UnTH3J_R), including indexes defined over materialized
// views ("2 recommended indexes were defined on materialized views of
// Lineitem ... 12 of the 16 indexes recommended were defined on 9
// materialized views over the join of Lineitem and Partsupp").

#include <cstdio>

#include "bench_support.h"

namespace {

using namespace tabbench;
using namespace tabbench::bench;

void PrintBreakdown(const std::string& label, const Configuration& config,
                    const Catalog& catalog) {
  std::printf("\n%s: %zu indexes, %zu views\n", label.c_str(),
              config.indexes.size(), config.views.size());
  std::printf("  %-34s %4s %4s %4s %4s\n", "object", "1c", "2c", "3c", "4c");
  for (const auto& t : catalog.tables()) {
    bool any = false;
    for (int w = 1; w <= 4; ++w) {
      if (config.CountIndexes(t.name, w) > 0) any = true;
    }
    if (!any) continue;
    std::printf("  %-34s", t.name.c_str());
    for (int w = 1; w <= 4; ++w) {
      std::printf(" %4d", config.CountIndexes(t.name, w));
    }
    std::printf("\n");
  }
  size_t view_indexes = 0;
  for (const auto& v : config.views) {
    bool any = false;
    for (int w = 1; w <= 4; ++w) {
      int n = config.CountIndexes(v.name, w);
      if (n > 0) any = true;
      view_indexes += static_cast<size_t>(n);
    }
    std::string vlabel =
        "view " + v.name + (v.tables.size() > 1 ? " (join)" : " (projection)");
    if (any || true) {
      std::printf("  %-34s", vlabel.c_str());
      for (int w = 1; w <= 4; ++w) {
        std::printf(" %4d", config.CountIndexes(v.name, w));
      }
      std::printf("\n");
    }
  }
  std::printf("  -> %zu of %zu secondary indexes sit on materialized views\n",
              view_indexes, config.indexes.size());
}

int RunCase(Database* db, const char* label, QueryFamily family) {
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db, std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;
  auto rec = exp.Recommend(SystemCProfile());
  if (!rec.ok()) {
    std::printf("\n%s: no recommendation (%s)\n", label,
                rec.status().message().c_str());
    return 0;
  }
  PrintBreakdown(label, rec->config, db->catalog());
  return 0;
}

}  // namespace

int main() {
  std::printf("=== Table 3: index breakdown of TPC-H recommendations ===\n");
  {
    auto skth = MakeSkthDb();
    if (skth == nullptr) return 1;
    if (RunCase(skth.get(), "C_SkTH3Js_R",
                GenerateTpch3Js(skth->catalog(), skth->stats())) != 0) {
      return 1;
    }
    if (RunCase(skth.get(), "C_SkTH3J_R",
                GenerateTpch3J(skth->catalog(), skth->stats(), "SkTH3J")) !=
        0) {
      return 1;
    }
  }
  {
    auto unth = MakeUnthDb();
    if (unth == nullptr) return 1;
    if (RunCase(unth.get(), "C_UnTH3J_R",
                GenerateTpch3J(unth->catalog(), unth->stats(), "UnTH3J")) !=
        0) {
      return 1;
    }
  }
  return 0;
}
