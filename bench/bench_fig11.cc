// Reproduces paper Figure 11: histograms of the per-query improvement
// ratios comparing R to 1C for family NREF3J on System B:
//   AIR  = A(q, R) / A(q, 1C)   actual executions (timeout pairs skipped)
//   EIR  = E(q, R) / E(q, 1C)   estimates taken in each built target
//   HIR  = H(q, R, P) / H(q, 1C, P)  hypothetical estimates from P
// The paper reads: actual ratios show many queries 10-100x faster on 1C,
// while the hypothetical ratios say the two configurations are much closer.

#include <cstdio>

#include "bench_support.h"
#include "core/improvement.h"
#include "core/runner.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  std::printf("=== Figure 11: improvement ratios R vs 1C, NREF3J, system B ===\n");

  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;
  std::vector<std::string> sql = exp.workload().Sql();

  AdvisorOptions profile = SystemBProfile();
  auto rec = exp.Recommend(profile);
  // Section 5 isolates the error of *hypothetical-configuration*
  // estimation — the optimizer deriving statistics for indexes it cannot
  // measure ("the parameters describing Cjk are also estimated by the
  // query optimizer"). Evaluate H under exactly those derivation rules
  // (worst-case clustering, leading-column NDV, no index-only credit),
  // with value-density stats left intact on both sides so the H-vs-E gap
  // shown is purely the unbuilt-index effect.
  HypotheticalRules h_rules = profile.whatif;
  h_rules.uniform_value_assumption = false;
  if (!rec.ok()) return 1;
  Configuration one_c = Make1CConfig(db->catalog());

  // Hypothetical estimates from P.
  if (!db->ResetToPrimary().ok()) return 1;
  auto hr = HypotheticalWorkload(db.get(), sql, rec->config, h_rules);
  auto h1c = HypotheticalWorkload(db.get(), sql, one_c, h_rules);
  if (!hr.ok() || !h1c.ok()) return 1;

  // Actual runs + target estimates on R, then on 1C.
  if (!db->ApplyConfiguration(rec->config).ok()) return 1;
  RunOptions ropts;
  ropts.collect_estimates = true;
  auto run_r = RunWorkload(db.get(), sql, ropts);
  if (!run_r.ok()) return 1;
  if (!db->ApplyConfiguration(one_c).ok()) return 1;
  auto run_1c = RunWorkload(db.get(), sql, ropts);
  if (!run_1c.ok()) return 1;
  (void)db->ResetToPrimary();

  std::vector<double> air =
      ActualImprovementRatios(run_r->timings, run_1c->timings);
  std::vector<double> eir =
      EstimatedImprovementRatios(run_r->estimates, run_1c->estimates);
  std::vector<double> hir = EstimatedImprovementRatios(*hr, *h1c);

  struct Series {
    const char* name;
    const std::vector<double>* ratios;
  } series[] = {{"AIR (actual)", &air},
                {"EIR (estimates in targets)", &eir},
                {"HIR (hypothetical from P)", &hir}};
  for (const auto& s : series) {
    auto h = LogHistogram::FromValues(*s.ratios, 0.01, 10000.0, 1);
    std::printf("%s\n",
                RenderHistogram(h, std::string("-- ") + s.name +
                                       " (ratio>1: 1C faster) --",
                                "x")
                    .c_str());
    size_t ge10 = 0, ge100 = 0, eq1 = 0;
    for (double r : *s.ratios) {
      if (r >= 10.0) ++ge10;
      if (r >= 100.0) ++ge100;
      if (r > 0.5 && r < 2.0) ++eq1;
    }
    std::printf("  %zu queries 10x+ faster on 1C, %zu queries 100x+, "
                "%zu near ratio 1 (of %zu)\n\n",
                ge10, ge100, eq1, s.ratios->size());
  }
  return 0;
}
