// Reproduces paper Figure 9: System C on family UnTH3J (uniform TPC-H).
// "Clearly, the recommender did perform better for the uniformly
// distributed data. Nevertheless, the 1C configuration still proved the
// best overall."

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeUnthDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateTpch3J(db->catalog(), db->stats(), "UnTH3J");
  AdvisorOptions profile = SystemCProfile();
  FigureOptions opts;
  opts.figure = "Figure 9";
  opts.system = "C";
  opts.family_name = "UnTH3J";
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
