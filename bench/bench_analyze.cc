// Times tabbench_analyze's full-tree run: every .h/.cc/.cpp under the
// repo through BuildModel plus all ten passes (including the
// path-sensitive CFG passes), repeated --iters times. The point of the
// artifact is keeping the analyzer fast enough to sit in the inner CI
// loop: queries_per_second reports files analyzed per second, and the
// BENCH_analyze.json trajectory catches a pass whose cost quietly goes
// superlinear.
//
// Usage: bench_analyze [--root DIR] [--iters N] [--bench-json PATH]

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyzer.h"
#include "bench_support.h"

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

void CollectFiles(const fs::path& root, const fs::path& rel,
                  std::vector<std::string>* out) {
  std::error_code ec;
  const fs::path abs = root / rel;
  if (!fs::is_directory(abs, ec)) return;
  for (fs::recursive_directory_iterator it(abs, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (it->is_directory(ec)) {
      const std::string name = it->path().filename().string();
      if (name == ".git" || name.rfind("build", 0) == 0) {
        it.disable_recursion_pending();
      }
      continue;
    }
    if (it->is_regular_file(ec) && HasSourceExtension(it->path())) {
      out->push_back(fs::relative(it->path(), root, ec).generic_string());
    }
  }
}

bool ReadFile(const fs::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string bench_json = tabbench::bench::TakeBenchJsonArg(&argc, argv);
  std::string root = ".";
  size_t iters = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = static_cast<size_t>(std::stoul(argv[++i]));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--root DIR] [--iters N] [--bench-json PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (iters == 0) iters = 1;

  std::vector<std::string> rel_files;
  for (const char* dir : {"src", "bench", "tests", "tools", "examples"}) {
    CollectFiles(root, dir, &rel_files);
  }
  if (rel_files.empty()) {
    std::fprintf(stderr, "bench_analyze: no source files under %s\n",
                 root.c_str());
    return 2;
  }
  std::vector<tabbench_analyze::SourceFile> files;
  files.reserve(rel_files.size());
  for (const std::string& rel : rel_files) {
    std::string content;
    if (!ReadFile(fs::path(root) / rel, &content)) {
      std::fprintf(stderr, "bench_analyze: cannot read %s\n", rel.c_str());
      return 2;
    }
    files.push_back({rel, std::move(content)});
  }

  tabbench_analyze::Options options;
  {
    std::string text, error;
    if (ReadFile(fs::path(root) / "tools/analyze/layers.txt", &text) &&
        !tabbench_analyze::ParseLayerSpec(text, &options.layers, &error)) {
      std::fprintf(stderr, "bench_analyze: %s\n", error.c_str());
      return 2;
    }
    if (ReadFile(fs::path(root) / "tools/analyze/protocols.txt", &text) &&
        !tabbench_analyze::ParseProtocolSpec(text, &options.protocols,
                                             &error)) {
      std::fprintf(stderr, "bench_analyze: %s\n", error.c_str());
      return 2;
    }
  }

  // One untimed warm-up run touches every code path (and faults the file
  // contents into cache), so the timed loop measures analysis, not I/O.
  size_t findings = tabbench_analyze::Analyze(files, options).size();

  const auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iters; ++i) {
    findings = tabbench_analyze::Analyze(files, options).size();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  const double per_run = wall / static_cast<double>(iters);
  const double files_per_second =
      per_run > 0.0 ? static_cast<double>(files.size()) / per_run : 0.0;
  std::printf(
      "analyze_full_tree: %zu files, %zu finding(s), %.3fs/run over %zu "
      "runs (%.0f files/s)\n",
      files.size(), findings, per_run, iters, files_per_second);

  if (!bench_json.empty()) {
    tabbench::bench::BenchJsonReport report;
    report.name = "analyze_full_tree";
    report.queries_per_second = files_per_second;  // files analyzed per s
    report.wall_seconds = per_run;
    report.speedup_vs_serial = 1.0;
    report.thread_count = 1;
    const tabbench::Status st =
        tabbench::bench::WriteBenchJsonReport(bench_json, report);
    if (!st.ok()) {
      std::fprintf(stderr, "bench-json write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s\n", bench_json.c_str());
  }
  return 0;
}
