// Reproduces paper Figure 10: cumulative curves of the optimizer ESTIMATES
// for family NREF3J on System B — five curves:
//   EP   estimates taken while P is built
//   ER   estimates taken while R is built
//   E1C  estimates taken while 1C is built
//   HR   hypothetical estimates of R, taken from P (what-if)
//   H1C  hypothetical estimates of 1C, taken from P (what-if)
// The paper's finding: the optimizer knows R and 1C improve on P, but the
// hypothetical curves (what the recommender actually sees) are much more
// conservative about 1C than the estimates taken in the built target.

#include <cstdio>

#include "bench_support.h"
#include "core/runner.h"
#include "core/sampling.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  std::printf("=== Figure 10: estimate curves for NREF3J on system B ===\n");

  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;
  std::vector<std::string> sql = exp.workload().Sql();

  AdvisorOptions profile = SystemBProfile();
  auto rec = exp.Recommend(profile);
  // Section 5 isolates the error of *hypothetical-configuration*
  // estimation — the optimizer deriving statistics for indexes it cannot
  // measure ("the parameters describing Cjk are also estimated by the
  // query optimizer"). Evaluate H under exactly those derivation rules
  // (worst-case clustering, leading-column NDV, no index-only credit),
  // with value-density stats left intact on both sides so the H-vs-E gap
  // shown is purely the unbuilt-index effect.
  HypotheticalRules h_rules = profile.whatif;
  h_rules.uniform_value_assumption = false;
  if (!rec.ok()) {
    std::fprintf(stderr, "system B declined: %s\n",
                 rec.status().ToString().c_str());
    return 1;
  }
  Configuration one_c = Make1CConfig(db->catalog());

  // Hypothetical estimates are taken from the P configuration using the
  // recommender's own what-if rules (Section 5.1).
  if (!db->ResetToPrimary().ok()) return 1;
  auto hr = HypotheticalWorkload(db.get(), sql, rec->config, h_rules);
  auto h1c = HypotheticalWorkload(db.get(), sql, one_c, h_rules);
  auto ep = EstimateWorkload(db.get(), sql);
  if (!hr.ok() || !h1c.ok() || !ep.ok()) return 1;

  // Target-configuration estimates require building each configuration.
  if (!db->ApplyConfiguration(rec->config).ok()) return 1;
  auto er = EstimateWorkload(db.get(), sql);
  if (!db->ApplyConfiguration(one_c).ok()) return 1;
  auto e1c = EstimateWorkload(db.get(), sql);
  if (!er.ok() || !e1c.ok()) return 1;
  (void)db->ResetToPrimary();

  std::vector<NamedCurve> curves = {
      {"EP", CumulativeFrequency::FromValues(*ep)},
      {"ER", CumulativeFrequency::FromValues(*er)},
      {"E1C", CumulativeFrequency::FromValues(*e1c)},
      {"HR", CumulativeFrequency::FromValues(*hr)},
      {"H1C", CumulativeFrequency::FromValues(*h1c)},
  };
  std::vector<double> grid;
  for (double x = 0.1; x <= 1e6; x *= 10.0) grid.push_back(x);
  std::printf("%s", RenderCfcComparison(
                        curves, grid,
                        "-- cumulative curves of estimation units "
                        "(simulated seconds) --",
                        "est")
                        .c_str());

  auto total = [](const std::vector<double>& v) {
    double t = 0;
    for (double x : v) t += x;
    return t;
  };
  std::printf("\ntotals: EP=%.0f ER=%.0f E1C=%.0f HR=%.0f H1C=%.0f\n",
              total(*ep), total(*er), total(*e1c), total(*hr), total(*h1c));
  std::printf(
      "paper-shape checks: E1C < EP (optimizer knows 1C helps): %s\n"
      "                    H1C > E1C (hypothetical more conservative "
      "than target estimate): %s\n"
      "                    HR ~ ER within a factor 2: %s\n",
      total(*e1c) < total(*ep) ? "yes" : "NO",
      total(*h1c) > total(*e1c) ? "yes" : "NO",
      (total(*hr) < 2 * total(*er) && total(*er) < 2 * total(*hr)) ? "yes"
                                                                   : "no");
  return 0;
}
