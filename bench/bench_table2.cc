// Reproduces paper Table 2: the number of 1-, 2-, 3- and 4-column indexes
// per table in each recommended configuration for the NREF benchmark
// (A_NREF2J_R, B_NREF2J_R, B_NREF3J_R). The paper notes no recommended
// index was wider than 4 columns.

#include <cstdio>
#include <map>

#include "bench_support.h"

namespace {

using namespace tabbench;
using namespace tabbench::bench;

void PrintBreakdown(const std::string& label, const Configuration& config,
                    const Catalog& catalog) {
  std::printf("\n%s: %zu indexes, %zu views\n", label.c_str(),
              config.indexes.size(), config.views.size());
  std::printf("  %-18s %4s %4s %4s %4s\n", "table", "1c", "2c", "3c", "4c");
  int max_width = 0;
  for (const auto& t : catalog.tables()) {
    bool any = false;
    for (int w = 1; w <= 4; ++w) {
      if (config.CountIndexes(t.name, w) > 0) any = true;
    }
    if (!any) continue;
    std::printf("  %-18s", t.name.c_str());
    for (int w = 1; w <= 4; ++w) {
      std::printf(" %4d", config.CountIndexes(t.name, w));
    }
    std::printf("\n");
  }
  int totals[5] = {0, 0, 0, 0, 0};
  for (const auto& idx : config.indexes) {
    if (idx.is_primary) continue;
    int w = static_cast<int>(idx.columns.size());
    max_width = std::max(max_width, w);
    if (w >= 1 && w <= 4) ++totals[w];
  }
  std::printf("  %-18s %4d %4d %4d %4d\n", "Totals", totals[1], totals[2],
              totals[3], totals[4]);
  std::printf("  widest recommended index: %d column(s)%s\n", max_width,
              max_width <= 4 ? " (paper: none wider than 4)" : "  ** WIDER "
                                                               "THAN PAPER **");
}

}  // namespace

int main() {
  std::printf("=== Table 2: index breakdown of NREF recommendations ===\n");
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();

  struct Case {
    const char* label;
    const char* family;
    AdvisorOptions profile;
  } cases[] = {
      {"A_NREF2J_R", "2J", SystemAProfile()},
      {"B_NREF2J_R", "2J", SystemBProfile()},
      {"B_NREF3J_R", "3J", SystemBProfile()},
  };
  for (const auto& c : cases) {
    QueryFamily family =
        std::string(c.family) == "2J"
            ? GenerateNref2J(db->catalog(), db->stats())
            : GenerateNref3J(db->catalog(), db->stats());
    FamilyExperiment exp(db.get(), std::move(family), eopts);
    if (!exp.Prepare().ok()) return 1;
    auto rec = exp.Recommend(c.profile);
    if (!rec.ok()) {
      std::printf("\n%s: no recommendation (%s)\n", c.label,
                  rec.status().message().c_str());
      continue;
    }
    PrintBreakdown(c.label, rec->config, db->catalog());
  }
  // And the A-on-NREF3J failure that keeps that column out of the table.
  {
    QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
    FamilyExperiment exp(db.get(), std::move(family), eopts);
    if (!exp.Prepare().ok()) return 1;
    auto rec = exp.Recommend(SystemAProfile());
    std::printf("\nA_NREF3J_R: %s\n",
                rec.ok() ? "unexpectedly produced a recommendation"
                         : "no recommendation produced (matches the paper)");
  }
  return 0;
}
