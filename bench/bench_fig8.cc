// Reproduces paper Figure 8: System C on family SkTH3J (skewed TPC-H,
// generalized 3-way joins). Contrast with Figure 7 "emphasizes the
// dependence of the configuration recommender on the input workload".

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeSkthDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateTpch3J(db->catalog(), db->stats(), "SkTH3J");
  AdvisorOptions profile = SystemCProfile();
  FigureOptions opts;
  opts.figure = "Figure 8";
  opts.system = "C";
  opts.family_name = "SkTH3J";
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
