// Wall-clock ablation for the concurrent execution layers: runs the same
// NREF2J workload (a) through the sequential runner, (b) through
// RunWorkloadParallel at increasing worker counts (inter-query parallelism,
// src/service/), and (c) query-at-a-time on the morsel-driven vectorized
// engine at increasing helper budgets (intra-query parallelism,
// src/exec/vec/). Every mode's simulated results must be bit-identical to
// the sequential run (the trace-record/replay determinism contract,
// src/core/runner.h) — only wall-clock may differ.
//
// Knobs: TABBENCH_SCALE, TABBENCH_WORKLOAD (bench_support.h), and
// TABBENCH_WORKERS (max worker count to sweep to, default 8).
// `--bench-json <path>` additionally writes the intra-query sweep's best
// point as a BENCH_*.json perf-trajectory record (bench_support.h).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_support.h"
#include "core/runner.h"
#include "core/sampling.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace tabbench;
  using namespace tabbench::bench;
  using Clock = std::chrono::steady_clock;

  const std::string bench_json = TakeBenchJsonArg(&argc, argv);

  std::printf("=== Parallel workload execution: wall-time vs workers ===\n");

  auto db = MakeNrefDb();
  if (!db) return 1;
  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  auto sampled = SampleFamily(family, db.get(), WorkloadSize(), /*seed=*/7);
  if (!sampled.ok()) {
    std::printf("sampling failed: %s\n", sampled.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> sql = sampled->Sql();
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("workload: %zu NREF2J queries, scale 1/%.0f, %u core%s\n",
              sql.size(), ScaleInverse(), cores, cores == 1 ? "" : "s");
  if (cores <= 1) {
    std::printf("(single core: workers time-slice one CPU, so no speedup "
                "is expected here —\n this run checks determinism and "
                "measures the sequential replay floor)\n");
  }
  std::printf("\n");

  RunOptions opts;
  opts.collect_estimates = true;

  auto t0 = Clock::now();
  auto seq = RunWorkload(db.get(), sql, opts);
  auto t1 = Clock::now();
  if (!seq.ok()) {
    std::printf("sequential run failed: %s\n",
                seq.status().ToString().c_str());
    return 1;
  }
  const double seq_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("%-12s %10.1f ms   (%zu timeouts, total %.1f sim-s)\n",
              "sequential", seq_ms, seq->timeouts,
              seq->total_clamped_seconds);

  size_t max_workers = 8;
  if (const char* w = std::getenv("TABBENCH_WORKERS")) {
    max_workers = static_cast<size_t>(std::atoi(w));
  }
  for (size_t workers = 1; workers <= max_workers; workers *= 2) {
    ThreadPool pool(workers);
    ParallelOptions par;
    par.pool = &pool;
    auto p0 = Clock::now();
    auto parallel = RunWorkloadParallel(db.get(), sql, par, opts);
    auto p1 = Clock::now();
    if (!parallel.ok()) {
      std::printf("parallel run failed: %s\n",
                  parallel.status().ToString().c_str());
      return 1;
    }
    const double par_ms =
        std::chrono::duration<double, std::milli>(p1 - p0).count();

    bool identical = parallel->timings.size() == seq->timings.size() &&
                     parallel->timeouts == seq->timeouts &&
                     parallel->total_clamped_seconds ==
                         seq->total_clamped_seconds;
    for (size_t i = 0; identical && i < seq->timings.size(); ++i) {
      identical = parallel->timings[i].seconds == seq->timings[i].seconds &&
                  parallel->timings[i].timed_out == seq->timings[i].timed_out;
    }
    for (size_t i = 0; identical && i < seq->estimates.size(); ++i) {
      identical = parallel->estimates[i] == seq->estimates[i];
    }
    std::printf("%zu worker%-5s %10.1f ms   speedup %4.2fx   results %s\n",
                workers, workers == 1 ? "" : "s", par_ms, seq_ms / par_ms,
                identical ? "bit-identical" : "DIVERGED (bug!)");
    if (!identical) return 1;
  }

  // Intra-query parallelism: the same workload, one query at a time, on
  // the vectorized engine with growing helper budgets. This is the
  // single-query speedup knob (a session's queries finish faster), where
  // the sweep above only improves whole-workload throughput.
  std::printf("\n=== Intra-query parallelism: vectorized engine ===\n");
  double best_ms = 0.0;
  size_t best_threads = 1;
  for (size_t workers = 1; workers <= max_workers; workers *= 2) {
    ThreadPool pool(workers);
    RunOptions vopts = opts;
    vopts.executor = QueryExecutor::kVectorized;
    vopts.intra_query_pool = &pool;
    vopts.intra_query_parallelism = workers;
    auto v0 = Clock::now();
    auto vec = RunWorkload(db.get(), sql, vopts);
    auto v1 = Clock::now();
    if (!vec.ok()) {
      std::printf("vectorized run failed: %s\n",
                  vec.status().ToString().c_str());
      return 1;
    }
    const double vec_ms =
        std::chrono::duration<double, std::milli>(v1 - v0).count();

    bool identical = vec->timings.size() == seq->timings.size() &&
                     vec->timeouts == seq->timeouts &&
                     vec->total_clamped_seconds == seq->total_clamped_seconds;
    for (size_t i = 0; identical && i < seq->timings.size(); ++i) {
      identical = vec->timings[i].seconds == seq->timings[i].seconds &&
                  vec->timings[i].timed_out == seq->timings[i].timed_out;
    }
    for (size_t i = 0; identical && i < seq->estimates.size(); ++i) {
      identical = vec->estimates[i] == seq->estimates[i];
    }
    std::printf("%zu thread%-5s %10.1f ms   speedup %4.2fx   results %s\n",
                workers, workers == 1 ? "" : "s", vec_ms, seq_ms / vec_ms,
                identical ? "bit-identical" : "DIVERGED (bug!)");
    if (!identical) return 1;
    if (best_ms == 0.0 || vec_ms < best_ms) {
      best_ms = vec_ms;
      best_threads = workers;
    }
  }

  if (!bench_json.empty()) {
    BenchJsonReport report;
    report.name = "parallel_nref2j_vectorized";
    report.wall_seconds = best_ms / 1e3;
    report.queries_per_second =
        best_ms > 0.0 ? static_cast<double>(sql.size()) / (best_ms / 1e3)
                      : 0.0;
    report.speedup_vs_serial = best_ms > 0.0 ? seq_ms / best_ms : 1.0;
    report.thread_count = best_threads;
    Status st = WriteBenchJsonReport(bench_json, report);
    if (!st.ok()) {
      std::printf("bench-json write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (best: %zu threads, %.2fx vs serial Volcano)\n",
                bench_json.c_str(), best_threads,
                best_ms > 0.0 ? seq_ms / best_ms : 1.0);
  }
  return 0;
}
