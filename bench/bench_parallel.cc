// Wall-clock ablation for the concurrent execution layer (src/service/):
// runs the same NREF2J workload through the sequential runner and through
// RunWorkloadParallel at increasing worker counts, reporting speedup and
// verifying the parallel results are bit-identical to the sequential ones
// (the trace-record/replay determinism contract, src/core/runner.h).
//
// Knobs: TABBENCH_SCALE, TABBENCH_WORKLOAD (bench_support.h), and
// TABBENCH_WORKERS (max worker count to sweep to, default 8).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_support.h"
#include "core/runner.h"
#include "core/sampling.h"
#include "util/thread_pool.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  using Clock = std::chrono::steady_clock;

  std::printf("=== Parallel workload execution: wall-time vs workers ===\n");

  auto db = MakeNrefDb();
  if (!db) return 1;
  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  auto sampled = SampleFamily(family, db.get(), WorkloadSize(), /*seed=*/7);
  if (!sampled.ok()) {
    std::printf("sampling failed: %s\n", sampled.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string> sql = sampled->Sql();
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("workload: %zu NREF2J queries, scale 1/%.0f, %u core%s\n",
              sql.size(), ScaleInverse(), cores, cores == 1 ? "" : "s");
  if (cores <= 1) {
    std::printf("(single core: workers time-slice one CPU, so no speedup "
                "is expected here —\n this run checks determinism and "
                "measures the sequential replay floor)\n");
  }
  std::printf("\n");

  RunOptions opts;
  opts.collect_estimates = true;

  auto t0 = Clock::now();
  auto seq = RunWorkload(db.get(), sql, opts);
  auto t1 = Clock::now();
  if (!seq.ok()) {
    std::printf("sequential run failed: %s\n",
                seq.status().ToString().c_str());
    return 1;
  }
  const double seq_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  std::printf("%-12s %10.1f ms   (%zu timeouts, total %.1f sim-s)\n",
              "sequential", seq_ms, seq->timeouts,
              seq->total_clamped_seconds);

  size_t max_workers = 8;
  if (const char* w = std::getenv("TABBENCH_WORKERS")) {
    max_workers = static_cast<size_t>(std::atoi(w));
  }
  for (size_t workers = 1; workers <= max_workers; workers *= 2) {
    ThreadPool pool(workers);
    ParallelOptions par;
    par.pool = &pool;
    auto p0 = Clock::now();
    auto parallel = RunWorkloadParallel(db.get(), sql, par, opts);
    auto p1 = Clock::now();
    if (!parallel.ok()) {
      std::printf("parallel run failed: %s\n",
                  parallel.status().ToString().c_str());
      return 1;
    }
    const double par_ms =
        std::chrono::duration<double, std::milli>(p1 - p0).count();

    bool identical = parallel->timings.size() == seq->timings.size() &&
                     parallel->timeouts == seq->timeouts &&
                     parallel->total_clamped_seconds ==
                         seq->total_clamped_seconds;
    for (size_t i = 0; identical && i < seq->timings.size(); ++i) {
      identical = parallel->timings[i].seconds == seq->timings[i].seconds &&
                  parallel->timings[i].timed_out == seq->timings[i].timed_out;
    }
    for (size_t i = 0; identical && i < seq->estimates.size(); ++i) {
      identical = parallel->estimates[i] == seq->estimates[i];
    }
    std::printf("%zu worker%-5s %10.1f ms   speedup %4.2fx   results %s\n",
                workers, workers == 1 ? "" : "s", par_ms, seq_ms / par_ms,
                identical ? "bit-identical" : "DIVERGED (bug!)");
    if (!identical) return 1;
  }
  return 0;
}
