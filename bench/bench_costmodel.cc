// Ablation (DESIGN.md §6): sweep the simulated sequential-scan cost and
// show the benchmark's qualitative shape — the P/1C ordering, the timeout
// gap, and the dominance verdict — is stable across a 4x range of assumed
// disk throughput. This validates that the reproduction's conclusions do
// not hinge on one calibration point.

#include <cstdio>

#include "bench_support.h"
#include "core/runner.h"
#include "core/sampling.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  std::printf("=== Ablation: scan-cost sweep (NREF3J, P vs 1C) ===\n");

  const double base_ms[] = {0.65, 1.3, 2.6};
  for (double ms : base_ms) {
    NrefScaleOptions nopts;
    nopts.scale_inverse = ScaleInverse();
    auto dbr = GenerateNref(nopts);
    if (!dbr.ok()) return 1;
    auto db = dbr.TakeValue();
    // Rescale the per-page charge by rebuilding the database options is not
    // possible post-construction; instead the generator calibrates at
    // 1.3 ms/page, so we emulate other throughputs by scaling the timeout
    // (equivalent under a pure rescaling of sequential costs).
    (void)ms;

    QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
    ExperimentOptions eopts;
    eopts.workload_size = std::min<size_t>(WorkloadSize(), 40);
    // Emulate a disk ms/page of `ms` by scaling the timeout: timeout(ms') =
    // 1800 * (1.3 / ms). A query that scans at 1.3 ms/page and finishes
    // within that budget would finish within 1800s at ms'/page.
    FamilyExperiment exp(db.get(), std::move(family), eopts);
    if (!exp.Prepare().ok()) return 1;
    (void)db->ResetToPrimary();
    auto p_run = RunWorkload(db.get(), exp.workload().Sql());
    if (!p_run.ok()) return 1;
    if (!db->ApplyConfiguration(Make1CConfig(db->catalog())).ok()) return 1;
    auto c_run = RunWorkload(db.get(), exp.workload().Sql());
    if (!c_run.ok()) return 1;

    double budget = 1800.0 * (1.3 / ms);
    auto timeouts_at = [&](const WorkloadResult& r) {
      size_t n = 0;
      for (const auto& t : r.timings) {
        if (t.timed_out || t.seconds > budget) ++n;
      }
      return n;
    };
    auto cfc_p = p_run->Cfc();
    auto cfc_c = c_run->Cfc();
    std::printf(
        "\nassumed scan cost %.2f ms/page (timeout-equivalent %.0fs):\n"
        "  P : %2zu over budget, median %8.4gs\n"
        "  1C: %2zu over budget, median %8.4gs\n"
        "  1C dominates P: %s\n",
        ms, budget, timeouts_at(*p_run), cfc_p.Quantile(0.5),
        timeouts_at(*c_run), cfc_c.Quantile(0.5),
        cfc_c.Dominates(cfc_p) ? "yes" : "no");
  }
  std::printf("\nshape check: across the sweep, 1C keeps fewer (or equal) "
              "over-budget queries and a lower median than P.\n");
  return 0;
}
