// Reproduces paper Figure 3: cumulative frequency curves of configurations
// P, 1C and R for family NREF2J on System A, plus the Example-2 performance
// goal reading ("1C satisfies the goal G, the other two do not").

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  AdvisorOptions profile = SystemAProfile();
  FigureOptions opts;
  opts.figure = "Figure 3";
  opts.system = "A";
  opts.family_name = "NREF2J";
  opts.print_goal = true;
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
