// google-benchmark microbenchmarks of the engine's hot paths: B+-tree
// probes and inserts, tuple codec, buffer-pool bookkeeping, and end-to-end
// planning/execution on a small database. These guard the wall-clock cost
// of the simulation itself (the figure benches run hundreds of queries).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench_support.h"
#include "engine/database.h"
#include "optimizer/planner.h"
#include "sql/binder.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/tuple_codec.h"
#include "util/rng.h"

namespace tabbench {
namespace {

void BM_BTreeInsert(benchmark::State& state) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  Rng rng(1);
  uint32_t i = 0;
  for (auto _ : state) {
    Status s = tree.Insert({Value(static_cast<int64_t>(rng.Uniform(1 << 20)))},
                           Rid{i++, 0}, nullptr);
    if (!s.ok()) state.SkipWithError(s.message().c_str());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeInsert);

void BM_BTreeSeek(benchmark::State& state) {
  PageStore store;
  BTree tree("ix", 1, 8, &store);
  std::vector<std::pair<IndexKey, Rid>> entries;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(IndexKey{Value(i)},
                         Rid{static_cast<uint32_t>(i), 0});
  }
  tree.BulkBuild(std::move(entries));
  Rng rng(2);
  for (auto _ : state) {
    IndexKey key{Value(static_cast<int64_t>(rng.Uniform(
        static_cast<uint64_t>(n))))};
    auto it = tree.SeekPrefix(key, nullptr);
    IndexKey k;
    Rid r;
    benchmark::DoNotOptimize(it.Next(&k, &r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeSeek)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_TupleCodecRoundTrip(benchmark::State& state) {
  TupleCodec codec({TypeId::kInt, TypeId::kInt, TypeId::kString,
                    TypeId::kDouble});
  Tuple t({Value(int64_t{123456}), Value(int64_t{-1}),
           Value(std::string("some medium length payload")), Value(2.5)});
  std::vector<uint8_t> buf;
  for (auto _ : state) {
    buf.clear();
    codec.Encode(t, &buf);
    size_t off = 0;
    Tuple back = codec.Decode(buf.data(), &off);
    benchmark::DoNotOptimize(back);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TupleCodecRoundTrip);

void BM_BufferPoolTouch(benchmark::State& state) {
  BufferPool pool(1024);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Touch(rng.Uniform(4096)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferPoolTouch);

/// Shared small database for the end-to-end benchmarks.
Database* SharedDb() {
  static Database* db = [] {
    // Deliberately leaked: function-local static shared by all benchmarks,
    // alive until process exit (destruction order vs. benchmark teardown
    // is unspecified). NOLINT(tabbench-naked-new)
    auto* d = new Database();  // NOLINT(tabbench-naked-new)
    TableDef t;
    t.name = "t";
    t.columns = {{"a", TypeId::kInt, "d1", true, 8},
                 {"b", TypeId::kInt, "d2", true, 8},
                 {"c", TypeId::kString, "d3", true, 12}};
    t.primary_key = {"a"};
    (void)d->CreateTable(t);
    Rng rng(4);
    for (int64_t i = 0; i < 20000; ++i) {
      (void)d->Insert(
          "t", Tuple({Value(i), Value(static_cast<int64_t>(rng.Uniform(100))),
                      Value("s" + std::to_string(rng.Uniform(500)))}));
    }
    (void)d->FinishLoad();
    return d;
  }();
  return db;
}

void BM_ParseBindPlan(benchmark::State& state) {
  Database* db = SharedDb();
  const std::string sql =
      "SELECT t.b, COUNT(*) FROM t WHERE t.c = 's17' GROUP BY t.b";
  for (auto _ : state) {
    auto plan = db->Plan(sql);
    benchmark::DoNotOptimize(plan);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseBindPlan);

void BM_ExecuteAggregate(benchmark::State& state) {
  Database* db = SharedDb();
  const std::string sql =
      "SELECT t.b, COUNT(*) FROM t WHERE t.c = 's17' GROUP BY t.b";
  for (auto _ : state) {
    auto res = db->Run(sql);
    benchmark::DoNotOptimize(res);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExecuteAggregate);

}  // namespace
}  // namespace tabbench

// Custom main instead of BENCHMARK_MAIN(): `--bench-json <path>` is
// stripped before google-benchmark parses flags, then the end-to-end
// aggregate query's throughput is measured directly (single thread, so
// speedup_vs_serial is 1 by definition) as this binary's perf-trajectory
// point.
int main(int argc, char** argv) {
  const std::string bench_json =
      tabbench::bench::TakeBenchJsonArg(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!bench_json.empty()) {
    tabbench::Database* db = tabbench::SharedDb();
    const std::string sql =
        "SELECT t.b, COUNT(*) FROM t WHERE t.c = 's17' GROUP BY t.b";
    constexpr int kReps = 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      auto res = db->Run(sql);
      if (!res.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     res.status().ToString().c_str());
        return 1;
      }
    }
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    tabbench::bench::BenchJsonReport report;
    report.name = "microbench_execute_aggregate";
    report.wall_seconds = wall;
    report.queries_per_second = wall > 0.0 ? kReps / wall : 0.0;
    report.speedup_vs_serial = 1.0;
    report.thread_count = 1;
    tabbench::Status st =
        tabbench::bench::WriteBenchJsonReport(bench_json, report);
    if (!st.ok()) {
      std::fprintf(stderr, "bench-json write failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%.0f queries/s)\n", bench_json.c_str(),
                report.queries_per_second);
  }
  return 0;
}
