// Reproduces paper Figure 4: System A on family NREF3J. The recommender
// produces NO configuration for this family (Section 4.1.2), so the figure
// has only the P and 1C curves — and a wide gap between them ("it takes 98
// seconds to complete 60% of the queries on 1C, while it takes 4 hours and
// 45 minutes on P: an improvement of 174 times").

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  AdvisorOptions profile = SystemAProfile();  // declines this family
  FigureOptions opts;
  opts.figure = "Figure 4";
  opts.system = "A";
  opts.family_name = "NREF3J";
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
