// Reproduces paper Figure 7: System C on family SkTH3Js (skewed TPC-H,
// simple 3-way joins). "The only recommendation R in all our experiments to
// outperform 1C even on a small portion of the workload" — R speeds up the
// most expensive queries relative to 1C.

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeSkthDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateTpch3Js(db->catalog(), db->stats());
  AdvisorOptions profile = SystemCProfile();
  FigureOptions opts;
  opts.figure = "Figure 7";
  opts.system = "C";
  opts.family_name = "SkTH3Js";
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
