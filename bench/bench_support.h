#ifndef TABBENCH_BENCH_BENCH_SUPPORT_H_
#define TABBENCH_BENCH_BENCH_SUPPORT_H_

#include <memory>
#include <string>

#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/report.h"
#include "core/tpch_families.h"
#include "datagen/nref_gen.h"
#include "datagen/tpch_gen.h"

namespace tabbench {
namespace bench {

/// Environment knobs shared by every reproduction binary:
///   TABBENCH_SCALE     data scale inverse (default 400 = 1/400 of paper)
///   TABBENCH_WORKLOAD  queries per workload (default 100, as the paper)
double ScaleInverse();
size_t WorkloadSize();

/// Benchmark databases at the configured scale (stats collected, P built).
std::unique_ptr<Database> MakeNrefDb();
std::unique_ptr<Database> MakeSkthDb();  // TPC-H, Zipf(1)
std::unique_ptr<Database> MakeUnthDb();  // TPC-H, uniform

/// The experiment protocol for one figure: sample the family, obtain the
/// profile's recommendation (may legitimately fail for System A), run the
/// standard configuration ladder, and print histograms/CFC/goal sections.
struct FigureOptions {
  std::string figure;        // "Figure 3"
  std::string system;        // "A" / "B" / "C"
  std::string family_name;   // for display
  bool print_histograms = false;  // Figs 1-2 style per-config histograms
  bool print_goal = false;        // Example 2 goal check
};

/// Runs and prints; returns 0 on success (main()-friendly).
int RunCfcFigure(Database* db, QueryFamily family,
                 const AdvisorOptions* profile, const FigureOptions& opts);

/// Rendering of one configuration line of paper Table 1.
std::string Table1Row(const std::string& label, uint64_t total_pages,
                      double build_seconds, double scale_inverse);

}  // namespace bench
}  // namespace tabbench

#endif  // TABBENCH_BENCH_BENCH_SUPPORT_H_
