#ifndef TABBENCH_BENCH_BENCH_SUPPORT_H_
#define TABBENCH_BENCH_BENCH_SUPPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "advisor/profiles.h"
#include "core/benchmark_suite.h"
#include "core/nref_families.h"
#include "core/report.h"
#include "core/tpch_families.h"
#include "datagen/nref_gen.h"
#include "datagen/tpch_gen.h"

namespace tabbench {
namespace bench {

/// Environment knobs shared by every reproduction binary:
///   TABBENCH_SCALE     data scale inverse (default 400 = 1/400 of paper)
///   TABBENCH_WORKLOAD  queries per workload (default 100, as the paper)
double ScaleInverse();
size_t WorkloadSize();

/// Benchmark databases at the configured scale (stats collected, P built).
std::unique_ptr<Database> MakeNrefDb();
std::unique_ptr<Database> MakeSkthDb();  // TPC-H, Zipf(1)
std::unique_ptr<Database> MakeUnthDb();  // TPC-H, uniform

/// The experiment protocol for one figure: sample the family, obtain the
/// profile's recommendation (may legitimately fail for System A), run the
/// standard configuration ladder, and print histograms/CFC/goal sections.
struct FigureOptions {
  std::string figure;        // "Figure 3"
  std::string system;        // "A" / "B" / "C"
  std::string family_name;   // for display
  bool print_histograms = false;  // Figs 1-2 style per-config histograms
  bool print_goal = false;        // Example 2 goal check
};

/// Runs and prints; returns 0 on success (main()-friendly).
int RunCfcFigure(Database* db, QueryFamily family,
                 const AdvisorOptions* profile, const FigureOptions& opts);

/// Rendering of one configuration line of paper Table 1.
std::string Table1Row(const std::string& label, uint64_t total_pages,
                      double build_seconds, double scale_inverse);

/// One point of the repo's wall-clock perf trajectory. Benches that accept
/// `--bench-json <path>` write one of these as a flat JSON object so runs
/// on the same hardware can be diffed across commits:
///   {"name": "...", "queries_per_second": n, "wall_seconds": n,
///    "speedup_vs_serial": n, "thread_count": n, "git_rev": "..."}
/// Speedups compare against the serial Volcano executor on the same
/// workload in the same process; simulated costs are bit-identical by
/// contract, so the trajectory tracks pure wall-clock engineering.
struct BenchJsonReport {
  std::string name;
  double queries_per_second = 0.0;
  double wall_seconds = 0.0;
  double speedup_vs_serial = 1.0;
  size_t thread_count = 1;
  std::string git_rev;  // filled from the repo's .git when left empty
};

/// Strips one "--bench-json <path>" pair from argv (updating *argc) and
/// returns the path, or "" when the flag is absent. Run before
/// benchmark::Initialize so google-benchmark never sees the flag.
std::string TakeBenchJsonArg(int* argc, char** argv);

/// Commit hash from `.git/HEAD` (searched upward from the working
/// directory, following one level of `ref:` indirection and falling back
/// to packed-refs); "unknown" when no repository is found. No subprocess,
/// no libgit: benches must stay runnable in minimal containers.
std::string GitRevision();

/// Writes the report atomically as JSON; fills `git_rev` if empty.
Status WriteBenchJsonReport(const std::string& path, BenchJsonReport r);

/// Schema check for CI: the file must be a flat JSON object holding
/// exactly the BenchJsonReport fields with the right types (numbers
/// finite, thread_count a positive integer, strings non-empty).
Status ValidateBenchJsonFile(const std::string& path);

/// As above, additionally returning the report's benchmark name on
/// success — the key the trajectory tooling groups runs by.
Status ValidateBenchJsonFile(const std::string& path, std::string* name);

/// The bench_json_check gate over a whole artifact set: every file must
/// pass ValidateBenchJsonFile, and no two files (nor one file listed
/// twice) may report the same benchmark name — trajectory plots keyed by
/// name would otherwise silently average two distinct runs. The error
/// names both offending paths.
Status ValidateBenchJsonSet(const std::vector<std::string>& paths);

}  // namespace bench
}  // namespace tabbench

#endif  // TABBENCH_BENCH_BENCH_SUPPORT_H_
