// Reproduces the Section 4.3 overall-workload numbers for SkTH3J on System
// C: conservative lower bounds of total workload time, clamping each
// timed-out query at the 30-minute limit. The paper reports 174,861s on P
// (78 timeouts), 91,019s on R (50 timeouts), 5,445s on 1C (1 timeout) —
// "a very conservative overall workload assessment results in 1C producing
// almost 17 times better results than R".

#include <cstdio>

#include "bench_support.h"
#include "core/goal.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeSkthDb();
  if (db == nullptr) return 1;
  std::printf("=== Section 4.3 totals: SkTH3J workload lower bounds ===\n");

  QueryFamily family = GenerateTpch3J(db->catalog(), db->stats(), "SkTH3J");
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;

  AdvisorOptions profile = SystemCProfile();
  auto rec = exp.Recommend(profile);
  auto runs = exp.RunStandard(rec.ok() ? &rec->config : nullptr);
  if (!runs.ok()) {
    std::fprintf(stderr, "%s\n", runs.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-4s %10s %10s %16s\n", "cfg", "timeouts", "completed",
              "lower bound (s)");
  double total_p = 0, total_r = 0, total_1c = 0;
  for (const auto& r : *runs) {
    double completed = 0;
    for (const auto& t : r.result.timings) {
      if (!t.timed_out) completed += t.seconds;
    }
    std::printf("%-4s %10zu %9.0fs %15.0fs\n", r.config_name.c_str(),
                r.result.timeouts, completed,
                r.result.total_clamped_seconds);
    if (r.config_name == "P") total_p = r.result.total_clamped_seconds;
    if (r.config_name == "R") total_r = r.result.total_clamped_seconds;
    if (r.config_name == "1C") total_1c = r.result.total_clamped_seconds;
  }
  if (total_1c > 0) {
    std::printf("\nimprovement ratios (lower bounds): P/1C = %.1fx",
                ImprovementRatio(total_p, total_1c));
    if (total_r > 0) {
      std::printf(", R/1C = %.1fx (paper: ~17x), P/R = %.1fx",
                  ImprovementRatio(total_r, total_1c),
                  ImprovementRatio(total_p, total_r));
    }
    std::printf("\n");
  }
  std::printf(
      "note: totals clamp timeout queries at 1800s, so they are lower "
      "bounds;\nthe bound is much tighter on 1C (few timeouts) than on P/R, "
      "exactly as the paper cautions.\n");
  return 0;
}
