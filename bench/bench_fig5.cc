// Reproduces paper Figure 5: System B on family NREF2J. "The performance of
// the recommended configuration ... is almost indistinguishable from that
// of the P configuration."

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  AdvisorOptions profile = SystemBProfile();
  FigureOptions opts;
  opts.figure = "Figure 5";
  opts.system = "B";
  opts.family_name = "NREF2J";
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
