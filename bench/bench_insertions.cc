// Reproduces the Section 4.4 insertion experiment: single-row inserts into
// Neighboring_seq (the widest and largest NREF relation) under P, R and 1C.
// The paper observes (a) insertion time roughly linear in the number of
// tuples for every configuration, (b) inserts ordered P < R < 1C, and (c) a
// break-even point — about 400K tuples at paper scale, i.e. the workload's
// query savings on 1C pay for its slower inserts until the insert volume
// approaches 10% of the database (at 20 workload repetitions).

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_support.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace tabbench;
  using namespace tabbench::bench;
  const std::string bench_json = TakeBenchJsonArg(&argc, argv);
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  std::printf("=== Section 4.4: insertions into neighboring_seq ===\n");

  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;
  auto rec = exp.Recommend(SystemAProfile());
  if (!rec.ok()) {
    std::fprintf(stderr, "advisor failed: %s\n",
                 rec.status().ToString().c_str());
    return 1;
  }

  // Per-insert cost under each configuration (averaged over a small batch;
  // rows mimic the generator's shape).
  Rng rng(99);
  size_t n_protein = db->TableRowCount("protein");
  auto insert_batch = [&](int64_t batch) {
    double total = 0;
    for (int64_t i = 0; i < batch; ++i) {
      std::vector<Value> row;
      row.emplace_back(static_cast<int64_t>(rng.Uniform(n_protein)));
      row.emplace_back(static_cast<int64_t>(1000000 + i));  // fresh ordinal
      row.emplace_back(static_cast<int64_t>(rng.Uniform(n_protein)));
      row.emplace_back(static_cast<int64_t>(rng.Uniform(600)));
      row.emplace_back(static_cast<int64_t>(40 + rng.Uniform(3000)));
      row.emplace_back(40.0 + rng.UniformDouble() * 960.0);
      row.emplace_back(static_cast<int64_t>(40 + rng.Uniform(3000)));
      int64_t s1 = rng.UniformInt(1, 400), s2 = rng.UniformInt(1, 400);
      row.emplace_back(s1);
      row.emplace_back(s2);
      row.emplace_back(s1 + 100);
      row.emplace_back(s2 + 100);
      auto c = db->TimedInsert("neighboring_seq", Tuple(std::move(row)));
      if (!c.ok()) return -1.0;
      total += *c;
    }
    return total / static_cast<double>(batch);
  };

  struct ConfigCase {
    const char* name;
    Configuration config;
  };
  std::vector<ConfigCase> cases;
  cases.push_back({"P", MakePConfig()});
  cases.push_back({"R", rec->config});
  cases.push_back({"1C", Make1CConfig(db->catalog())});

  const int64_t kBatch = 400;
  std::printf("\nper-insert simulated cost (avg over %lld inserts):\n",
              static_cast<long long>(kBatch));
  std::map<std::string, double> insert_cost;
  std::map<std::string, double> workload_time;
  size_t timed_ops = 0;  // inserts + workload queries across all cases
  const auto wall_start = std::chrono::steady_clock::now();
  for (auto& c : cases) {
    if (c.config.indexes.empty() && c.config.views.empty()) {
      if (!db->ResetToPrimary().ok()) return 1;
    } else {
      auto rep = db->ApplyConfiguration(c.config);
      if (!rep.ok()) {
        std::fprintf(stderr, "%s\n", rep.status().ToString().c_str());
        return 1;
      }
    }
    // Linearity check: two batches should cost about the same per insert.
    double cost1 = insert_batch(kBatch / 2);
    double cost2 = insert_batch(kBatch / 2);
    if (cost1 < 0 || cost2 < 0) return 1;
    insert_cost[c.name] = (cost1 + cost2) / 2.0;
    std::printf("  %-3s  %8.4fs/insert   (batch halves: %.4f / %.4f -> "
                "%s linear)\n",
                c.name, insert_cost[c.name], cost1, cost2,
                (cost2 < cost1 * 1.5 && cost1 < cost2 * 1.5) ? "roughly"
                                                             : "NOT");
    auto run = RunWorkload(db.get(), exp.workload().Sql());
    if (!run.ok()) return 1;
    workload_time[c.name] = run->total_clamped_seconds;
    std::printf("       workload lower bound: %.0fs (%zu timeouts)\n",
                run->total_clamped_seconds, run->timeouts);
    timed_ops += static_cast<size_t>(kBatch) + exp.workload().Sql().size();
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  (void)db->ResetToPrimary();

  std::printf("\ninsert ordering: P (%.4fs) < R (%.4fs) < 1C (%.4fs): %s\n",
              insert_cost["P"], insert_cost["R"], insert_cost["1C"],
              (insert_cost["P"] <= insert_cost["R"] &&
               insert_cost["R"] <= insert_cost["1C"])
                  ? "matches the paper"
                  : "ordering differs");

  // Break-even: number of inserts at which R's faster inserts make up for
  // its slower queries relative to 1C.
  double query_gain = workload_time["R"] - workload_time["1C"];
  double insert_penalty = insert_cost["1C"] - insert_cost["R"];
  if (insert_penalty > 0 && query_gain > 0) {
    double n = query_gain / insert_penalty;
    uint64_t table_rows = db->TableRowCount("neighboring_seq");
    std::printf(
        "\nbreak-even: %.0f inserts (x%.0f scale = %.0f paper-equivalent "
        "tuples; paper: ~400,000)\n",
        n, ScaleInverse(), n * ScaleInverse());
    std::printf(
        "that is %.1f%% of neighboring_seq per single workload execution; "
        "at 20 repetitions, %.1f%% of the table (paper: ~10%%)\n",
        100.0 * n / static_cast<double>(table_rows),
        100.0 * 20.0 * n / static_cast<double>(table_rows));
  } else {
    std::printf("\nbreak-even: not reached (R is not both query-slower and "
                "insert-faster than 1C on this sample)\n");
  }

  if (!bench_json.empty()) {
    BenchJsonReport report;
    report.name = "insertions_nref_write_path";
    report.wall_seconds = wall_seconds;
    report.queries_per_second =
        wall_seconds > 0.0 ? static_cast<double>(timed_ops) / wall_seconds
                           : 0.0;
    report.speedup_vs_serial = 1.0;
    report.thread_count = 1;
    Status st = WriteBenchJsonReport(bench_json, report);
    if (!st.ok()) {
      std::printf("bench-json write failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %s (%zu timed ops in %.2fs wall)\n",
                bench_json.c_str(), timed_ops, wall_seconds);
  }
  return 0;
}
