// Extension ablation (paper Sections 2.2 and 6): the paper proposes
// recommenders that accept quality-of-service goals as constraints on the
// cumulative frequency curve, instead of the single total-cost number the
// 2004 tools optimized. This bench compares, on the same NREF3J workload:
//
//   * the total-cost advisor (System A's machinery, era-faithful), and
//   * the goal-driven advisor (this library's extension) targeting the
//     paper's Example-2 goal,
//
// reporting space used, estimated vs actual goal satisfaction, and the
// resulting curves. The expected shape: the goal-driven advisor meets (or
// approaches) G with less space, because it stops as soon as the estimated
// curve clears the goal.

#include <cstdio>

#include "advisor/goal_advisor.h"
#include "bench_support.h"
#include "core/goal.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  std::printf("=== Extension: goal-driven vs total-cost recommendation ===\n");

  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;
  PerformanceGoal goal = PerformanceGoal::PaperExample2();
  std::printf("goal G: %s\nworkload: %zu NREF3J queries\n\n",
              goal.ToString().c_str(), exp.workload().queries.size());

  auto bound = BindWorkload(exp.workload(), db->catalog());
  if (!bound.ok()) return 1;

  std::vector<NamedCurve> curves;

  // Total-cost advisor (System B's profile: indexes only, era-faithful).
  AdvisorOptions profile = SystemBProfile();
  auto rec_cost = exp.Recommend(profile);
  if (!rec_cost.ok()) return 1;

  // Goal-driven advisor with the same candidate machinery and budget.
  if (!db->ResetToPrimary().ok()) return 1;
  AdvisorOptions gopts = profile;
  gopts.space_budget_pages = exp.SpaceBudgetPages();
  GoalDrivenAdvisor goal_advisor(db->CurrentView(), gopts, goal);
  auto rec_goal = goal_advisor.Recommend(*bound);
  if (!rec_goal.ok()) {
    std::fprintf(stderr, "goal advisor failed: %s\n",
                 rec_goal.status().ToString().c_str());
    return 1;
  }

  struct Case {
    std::string label;
    Configuration config;
    double est_pages;
  } cases[] = {
      {"R-cost", rec_cost->config, rec_cost->est_pages},
      {"R-goal", rec_goal->config, rec_goal->est_pages},
  };
  std::printf("%-8s %8s %8s %8s %10s %12s\n", "advisor", "indexes", "views",
              "pages", "goal(est)", "goal(actual)");
  {
    auto p = exp.RunOn(MakePConfig());
    if (!p.ok()) return 1;
    curves.push_back({"P", p->result.Cfc()});
  }
  for (auto& c : cases) {
    Configuration config = c.config;
    config.name = c.label;
    auto run = exp.RunOn(config);
    if (!run.ok()) return 1;
    auto cfc = run->result.Cfc();
    bool est_met = (c.label == "R-goal") ? rec_goal->goal_met_by_estimates
                                         : false;
    std::printf("%-8s %8zu %8zu %8.0f %10s %12s\n", c.label.c_str(),
                c.config.indexes.size(), c.config.views.size(), c.est_pages,
                c.label == "R-goal" ? (est_met ? "met" : "short") : "n/a",
                goal.SatisfiedBy(cfc) ? "MET" : "short");
    curves.push_back({c.label, cfc});
  }
  {
    auto one_c = exp.RunOn(Make1CConfig(db->catalog()));
    if (!one_c.ok()) return 1;
    curves.push_back({"1C", one_c->result.Cfc()});
  }

  std::printf("\n%s", RenderGoalCheck(goal, curves).c_str());
  std::printf("%s", RenderCfcComparison(curves, {},
                                        "-- total-cost vs goal-driven --")
                        .c_str());
  std::printf(
      "\nshape check: R-goal targets the curve's weak spots directly; "
      "R-cost pours budget into the total.\n");
  return 0;
}
