// Reproduces paper Figures 1 and 2: log-binned histograms (with t_out bin)
// of the NREF2J query execution times on System A, first on the primary-key
// configuration (Fig 1) and then on the recommended configuration (Fig 2).

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateNref2J(db->catalog(), db->stats());
  AdvisorOptions profile = SystemAProfile();
  FigureOptions opts;
  opts.figure = "Figures 1 and 2";
  opts.system = "A";
  opts.family_name = "NREF2J";
  opts.print_histograms = true;
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
