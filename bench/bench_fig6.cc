// Reproduces paper Figure 6: System B on family NREF3J. "The recommended
// configuration performs relatively better, but the gap it exhibits to the
// 1C configuration is still significant."

#include "bench_support.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  AdvisorOptions profile = SystemBProfile();
  FigureOptions opts;
  opts.figure = "Figure 6";
  opts.system = "B";
  opts.family_name = "NREF3J";
  return RunCfcFigure(db.get(), std::move(family), &profile, opts);
}
