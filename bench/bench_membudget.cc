// Ablation (DESIGN.md §6): the paper's setup keeps "the raw data size ...
// an order of magnitude larger than the main memory of the computers
// utilized" (Section 3.2.1). This bench sweeps the buffer-pool-to-data
// ratio on the same database and workload: in the paper's regime (~0.1)
// the P-vs-1C gap is wide; as memory approaches and passes the data size,
// rescans become cheap and the configurations converge.

#include <cstdio>

#include "bench_support.h"
#include "core/runner.h"

int main() {
  using namespace tabbench;
  using namespace tabbench::bench;
  std::printf("=== Ablation: buffer-pool-to-data ratio (NREF3J, P vs 1C) ===\n");

  auto db = MakeNrefDb();
  if (db == nullptr) return 1;
  const double base_pages = static_cast<double>(db->BasePages());

  QueryFamily family = GenerateNref3J(db->catalog(), db->stats());
  ExperimentOptions eopts;
  eopts.workload_size = std::min<size_t>(WorkloadSize(), 40);
  FamilyExperiment exp(db.get(), std::move(family), eopts);
  if (!exp.Prepare().ok()) return 1;

  double gap_at_paper_ratio = 0.0;
  double gap_at_big_memory = 0.0;
  for (double mem_ratio : {0.1, 0.5, 2.0}) {
    size_t pool = static_cast<size_t>(
        std::max(32.0, mem_ratio * base_pages));
    db->buffer_pool()->SetCapacity(pool);
    auto runs = exp.RunStandard(nullptr);  // P then 1C
    if (!runs.ok()) {
      std::fprintf(stderr, "%s\n", runs.status().ToString().c_str());
      return 1;
    }
    const auto& p = (*runs)[0].result;
    const auto& one_c = (*runs)[1].result;
    double gap = p.total_clamped_seconds /
                 std::max(1.0, one_c.total_clamped_seconds);
    std::printf(
        "\nmem/data = %.1f (%zu pages):\n"
        "  P : timeouts=%2zu total=%7.0fs\n"
        "  1C: timeouts=%2zu total=%7.0fs   P/1C = %.2fx\n",
        mem_ratio, pool, p.timeouts, p.total_clamped_seconds,
        one_c.timeouts, one_c.total_clamped_seconds, gap);
    if (mem_ratio == 0.1) gap_at_paper_ratio = gap;
    if (mem_ratio == 2.0) gap_at_big_memory = gap;
  }
  std::printf("\nshape check: the indexing gap %s as memory grows "
              "(%.2fx at the paper's ratio vs %.2fx with memory > data).\n",
              gap_at_big_memory <= gap_at_paper_ratio ? "narrows" : "WIDENS",
              gap_at_paper_ratio, gap_at_big_memory);
  std::printf("Boral & DeWitt's 1983 point, rerun 40 years later: "
              "parallel/fast hardware is no substitute for indexing — "
              "until everything fits in memory.\n");
  return 0;
}
