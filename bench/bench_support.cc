#include "bench_support.h"

#include <cstdio>
#include <cstdlib>

#include "core/goal.h"
#include "util/strings.h"

namespace tabbench {
namespace bench {

double ScaleInverse() {
  const char* env = std::getenv("TABBENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v >= 50.0) return v;
  }
  return 400.0;
}

size_t WorkloadSize() {
  const char* env = std::getenv("TABBENCH_WORKLOAD");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 5) return static_cast<size_t>(v);
  }
  return 100;
}

std::unique_ptr<Database> MakeNrefDb() {
  NrefScaleOptions opts;
  opts.scale_inverse = ScaleInverse();
  auto db = GenerateNref(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "NREF generation failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  return db.TakeValue();
}

std::unique_ptr<Database> MakeSkthDb() {
  TpchScaleOptions opts;
  opts.scale_inverse = ScaleInverse();
  opts.zipf_theta = 1.0;
  auto db = GenerateTpch(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "SkTH generation failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  return db.TakeValue();
}

std::unique_ptr<Database> MakeUnthDb() {
  TpchScaleOptions opts;
  opts.scale_inverse = ScaleInverse();
  opts.zipf_theta = 0.0;
  auto db = GenerateTpch(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "UnTH generation failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  return db.TakeValue();
}

int RunCfcFigure(Database* db, QueryFamily family,
                 const AdvisorOptions* profile, const FigureOptions& opts) {
  std::printf("=== %s: system %s on %s (scale 1/%.0f, %zu queries) ===\n",
              opts.figure.c_str(), opts.system.c_str(),
              opts.family_name.c_str(), ScaleInverse(), WorkloadSize());
  std::printf("family size before sampling: %zu queries\n",
              family.queries.size());

  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db, std::move(family), eopts);
  Status st = exp.Prepare();
  if (!st.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Recommendation rec;
  bool have_rec = false;
  if (profile != nullptr) {
    auto r = exp.Recommend(*profile);
    if (r.ok()) {
      rec = r.TakeValue();
      have_rec = true;
      std::printf(
          "recommendation: %zu indexes, %zu views "
          "(est. workload cost %.0fs -> %.0fs, %.0f pages of budget %.0f)\n",
          rec.config.indexes.size(), rec.config.views.size(),
          rec.est_cost_before, rec.est_cost_after, rec.est_pages,
          exp.SpaceBudgetPages());
    } else {
      // The paper's System A produced no recommendation for NREF3J
      // (Section 4.1.2); surface that outcome rather than failing.
      std::printf("recommender declined: %s\n",
                  r.status().ToString().c_str());
    }
  }

  auto runs = exp.RunStandard(have_rec ? &rec.config : nullptr);
  if (!runs.ok()) {
    std::fprintf(stderr, "runs failed: %s\n",
                 runs.status().ToString().c_str());
    return 1;
  }

  std::vector<NamedCurve> curves;
  for (const auto& r : *runs) {
    std::printf(
        "%-3s built in %s (%llu secondary pages); workload: %zu timeouts, "
        "clamped total %s\n",
        r.config_name.c_str(), HumanSeconds(r.build.build_seconds).c_str(),
        static_cast<unsigned long long>(r.build.secondary_pages),
        r.result.timeouts, HumanSeconds(r.result.total_clamped_seconds).c_str());
    curves.push_back({r.config_name, r.result.Cfc()});
  }
  if (opts.print_histograms) {
    for (const auto& r : *runs) {
      auto h = LogHistogram::Build(r.result.timings, 1.0, 1800.0, 2);
      std::printf("%s\n",
                  RenderHistogram(
                      h, StrFormat("-- query elapsed times on %s --",
                                   r.config_name.c_str()))
                      .c_str());
    }
  }
  std::printf("%s",
              RenderCfcComparison(curves, {},
                                  "-- cumulative frequency of elapsed times --")
                  .c_str());
  std::printf("%s", RenderQuantiles(curves, {0.25, 0.5, 0.75, 0.9}).c_str());
  if (opts.print_goal) {
    std::printf("%s", RenderGoalCheck(PerformanceGoal::PaperExample2(), curves)
                          .c_str());
  }
  // First-order stochastic dominance verdicts (Section 2.2).
  for (size_t i = 0; i < curves.size(); ++i) {
    for (size_t j = 0; j < curves.size(); ++j) {
      if (i == j) continue;
      if (curves[i].cfc.Dominates(curves[j].cfc)) {
        std::printf("dominance: %s > %s\n", curves[i].name.c_str(),
                    curves[j].name.c_str());
      }
    }
  }
  return 0;
}

std::string Table1Row(const std::string& label, uint64_t total_pages,
                      double build_seconds, double scale_inverse) {
  // Scaled pages -> paper-equivalent bytes: each scaled page stands for
  // scale_inverse real pages.
  double bytes = static_cast<double>(total_pages) *
                 static_cast<double>(kPageSize) * scale_inverse;
  double gib = bytes / (1024.0 * 1024.0 * 1024.0);
  return StrFormat("  %-14s %8.1f GB-equiv   build %8.0f min", label.c_str(),
                   gib, build_seconds / 60.0);
}

}  // namespace bench
}  // namespace tabbench
