#include "bench_support.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

#include "core/goal.h"
#include "util/file_util.h"
#include "util/status.h"
#include "util/strings.h"

namespace tabbench {
namespace bench {

double ScaleInverse() {
  const char* env = std::getenv("TABBENCH_SCALE");
  if (env != nullptr) {
    double v = std::atof(env);
    if (v >= 50.0) return v;
  }
  return 400.0;
}

size_t WorkloadSize() {
  const char* env = std::getenv("TABBENCH_WORKLOAD");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v >= 5) return static_cast<size_t>(v);
  }
  return 100;
}

std::unique_ptr<Database> MakeNrefDb() {
  NrefScaleOptions opts;
  opts.scale_inverse = ScaleInverse();
  auto db = GenerateNref(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "NREF generation failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  return db.TakeValue();
}

std::unique_ptr<Database> MakeSkthDb() {
  TpchScaleOptions opts;
  opts.scale_inverse = ScaleInverse();
  opts.zipf_theta = 1.0;
  auto db = GenerateTpch(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "SkTH generation failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  return db.TakeValue();
}

std::unique_ptr<Database> MakeUnthDb() {
  TpchScaleOptions opts;
  opts.scale_inverse = ScaleInverse();
  opts.zipf_theta = 0.0;
  auto db = GenerateTpch(opts);
  if (!db.ok()) {
    std::fprintf(stderr, "UnTH generation failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  return db.TakeValue();
}

int RunCfcFigure(Database* db, QueryFamily family,
                 const AdvisorOptions* profile, const FigureOptions& opts) {
  std::printf("=== %s: system %s on %s (scale 1/%.0f, %zu queries) ===\n",
              opts.figure.c_str(), opts.system.c_str(),
              opts.family_name.c_str(), ScaleInverse(), WorkloadSize());
  std::printf("family size before sampling: %zu queries\n",
              family.queries.size());

  ExperimentOptions eopts;
  eopts.workload_size = WorkloadSize();
  FamilyExperiment exp(db, std::move(family), eopts);
  Status st = exp.Prepare();
  if (!st.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n", st.ToString().c_str());
    return 1;
  }

  Recommendation rec;
  bool have_rec = false;
  if (profile != nullptr) {
    auto r = exp.Recommend(*profile);
    if (r.ok()) {
      rec = r.TakeValue();
      have_rec = true;
      std::printf(
          "recommendation: %zu indexes, %zu views "
          "(est. workload cost %.0fs -> %.0fs, %.0f pages of budget %.0f)\n",
          rec.config.indexes.size(), rec.config.views.size(),
          rec.est_cost_before, rec.est_cost_after, rec.est_pages,
          exp.SpaceBudgetPages());
    } else {
      // The paper's System A produced no recommendation for NREF3J
      // (Section 4.1.2); surface that outcome rather than failing.
      std::printf("recommender declined: %s\n",
                  r.status().ToString().c_str());
    }
  }

  auto runs = exp.RunStandard(have_rec ? &rec.config : nullptr);
  if (!runs.ok()) {
    std::fprintf(stderr, "runs failed: %s\n",
                 runs.status().ToString().c_str());
    return 1;
  }

  std::vector<NamedCurve> curves;
  for (const auto& r : *runs) {
    std::printf(
        "%-3s built in %s (%llu secondary pages); workload: %zu timeouts, "
        "clamped total %s\n",
        r.config_name.c_str(), HumanSeconds(r.build.build_seconds).c_str(),
        static_cast<unsigned long long>(r.build.secondary_pages),
        r.result.timeouts, HumanSeconds(r.result.total_clamped_seconds).c_str());
    curves.push_back({r.config_name, r.result.Cfc()});
  }
  if (opts.print_histograms) {
    for (const auto& r : *runs) {
      auto h = LogHistogram::Build(r.result.timings, 1.0, 1800.0, 2);
      std::printf("%s\n",
                  RenderHistogram(
                      h, StrFormat("-- query elapsed times on %s --",
                                   r.config_name.c_str()))
                      .c_str());
    }
  }
  std::printf("%s",
              RenderCfcComparison(curves, {},
                                  "-- cumulative frequency of elapsed times --")
                  .c_str());
  std::printf("%s", RenderQuantiles(curves, {0.25, 0.5, 0.75, 0.9}).c_str());
  if (opts.print_goal) {
    std::printf("%s", RenderGoalCheck(PerformanceGoal::PaperExample2(), curves)
                          .c_str());
  }
  // First-order stochastic dominance verdicts (Section 2.2).
  for (size_t i = 0; i < curves.size(); ++i) {
    for (size_t j = 0; j < curves.size(); ++j) {
      if (i == j) continue;
      if (curves[i].cfc.Dominates(curves[j].cfc)) {
        std::printf("dominance: %s > %s\n", curves[i].name.c_str(),
                    curves[j].name.c_str());
      }
    }
  }
  return 0;
}

std::string Table1Row(const std::string& label, uint64_t total_pages,
                      double build_seconds, double scale_inverse) {
  // Scaled pages -> paper-equivalent bytes: each scaled page stands for
  // scale_inverse real pages.
  double bytes = static_cast<double>(total_pages) *
                 static_cast<double>(kPageSize) * scale_inverse;
  double gib = bytes / (1024.0 * 1024.0 * 1024.0);
  return StrFormat("  %-14s %8.1f GB-equiv   build %8.0f min", label.c_str(),
                   gib, build_seconds / 60.0);
}

std::string TakeBenchJsonArg(int* argc, char** argv) {
  for (int i = 1; i + 1 < *argc; ++i) {
    if (std::string(argv[i]) == "--bench-json") {
      std::string path = argv[i + 1];
      for (int j = i; j + 2 < *argc; ++j) argv[j] = argv[j + 2];
      *argc -= 2;
      return path;
    }
  }
  return "";
}

namespace {

/// First line of `path`, stripped of trailing whitespace; "" on any error.
std::string ReadFirstLine(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (!in || !std::getline(in, line)) return "";
  while (!line.empty() &&
         (line.back() == '\r' || line.back() == ' ' || line.back() == '\t')) {
    line.pop_back();
  }
  return line;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string GitRevision() {
  std::string prefix;
  for (int depth = 0; depth < 8; ++depth, prefix += "../") {
    std::string head = ReadFirstLine(prefix + ".git/HEAD");
    if (head.empty()) continue;
    if (head.rfind("ref: ", 0) != 0) return head;  // detached HEAD
    const std::string ref = head.substr(5);
    std::string hash = ReadFirstLine(prefix + ".git/" + ref);
    if (!hash.empty()) return hash;
    // Loose ref missing: the ref may live in packed-refs
    // ("<hash> <refname>" lines, '#' comments, '^' peel lines).
    std::ifstream packed(prefix + ".git/packed-refs");
    std::string line;
    while (packed && std::getline(packed, line)) {
      if (line.empty() || line[0] == '#' || line[0] == '^') continue;
      const size_t sp = line.find(' ');
      if (sp == std::string::npos) continue;
      if (line.compare(sp + 1, std::string::npos, ref) == 0) {
        return line.substr(0, sp);
      }
    }
    return "unknown";
  }
  return "unknown";
}

Status WriteBenchJsonReport(const std::string& path, BenchJsonReport r) {
  if (r.git_rev.empty()) r.git_rev = GitRevision();
  std::string body = StrFormat(
      "{\n"
      "  \"name\": \"%s\",\n"
      "  \"queries_per_second\": %.17g,\n"
      "  \"wall_seconds\": %.17g,\n"
      "  \"speedup_vs_serial\": %.17g,\n"
      "  \"thread_count\": %zu,\n"
      "  \"git_rev\": \"%s\"\n"
      "}\n",
      JsonEscape(r.name).c_str(), r.queries_per_second, r.wall_seconds,
      r.speedup_vs_serial, r.thread_count, JsonEscape(r.git_rev).c_str());
  return AtomicWriteFile(path, body);
}

namespace {

/// Flat-object JSON scanner for ValidateBenchJsonFile: just enough grammar
/// for the one shape WriteBenchJsonReport emits (string and number values,
/// no nesting), with byte offsets in every error so a mangled artifact is
/// debuggable from the CI log alone.
struct FlatJsonValue {
  bool is_string = false;
  std::string str;
  double num = 0.0;
};

Status ParseFlatJson(const std::string& text,
                     std::map<std::string, FlatJsonValue>* out) {
  size_t i = 0;
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument(
        StrFormat("BENCH json offset %zu: %s", i, why.c_str()));
  };
  auto skip_ws = [&] {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\n' ||
                               text[i] == '\t' || text[i] == '\r')) {
      ++i;
    }
  };
  auto parse_string = [&](std::string* s) {
    if (i >= text.size() || text[i] != '"') return false;
    ++i;
    s->clear();
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) ++i;
      s->push_back(text[i++]);
    }
    if (i >= text.size()) return false;
    ++i;  // closing quote
    return true;
  };
  skip_ws();
  if (i >= text.size() || text[i] != '{') return fail("expected '{'");
  ++i;
  skip_ws();
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(&key)) return fail("expected '\"key\"'");
      if (out->count(key) != 0) return fail("duplicate key '" + key + "'");
      skip_ws();
      if (i >= text.size() || text[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      FlatJsonValue v;
      if (i < text.size() && text[i] == '"') {
        v.is_string = true;
        if (!parse_string(&v.str)) return fail("unterminated string");
      } else {
        char* end = nullptr;
        v.num = std::strtod(text.c_str() + i, &end);
        if (end == text.c_str() + i) return fail("expected a value");
        i = static_cast<size_t>(end - text.c_str());
      }
      (*out)[key] = std::move(v);
      skip_ws();
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      return fail("expected ',' or '}'");
    }
  }
  skip_ws();
  if (i != text.size()) return fail("trailing bytes after object");
  return Status::OK();
}

}  // namespace

Status ValidateBenchJsonFile(const std::string& path) {
  std::string unused;
  return ValidateBenchJsonFile(path, &unused);
}

Status ValidateBenchJsonFile(const std::string& path, std::string* name) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  std::map<std::string, FlatJsonValue> obj;
  Status st = ParseFlatJson(buf.str(), &obj);
  if (!st.ok()) return st;
  auto fail = [&](const std::string& why) {
    return Status::InvalidArgument(path + ": " + why);
  };
  auto want_string = [&](const std::string& key, Status* out) {
    auto it = obj.find(key);
    if (it == obj.end()) {
      *out = fail("missing key '" + key + "'");
    } else if (!it->second.is_string || it->second.str.empty()) {
      *out = fail("'" + key + "' must be a non-empty string");
    }
  };
  auto want_number = [&](const std::string& key, Status* out) {
    auto it = obj.find(key);
    if (it == obj.end()) {
      *out = fail("missing key '" + key + "'");
    } else if (it->second.is_string || !std::isfinite(it->second.num) ||
               it->second.num < 0.0) {
      *out = fail("'" + key + "' must be a finite non-negative number");
    }
  };
  st = Status::OK();
  want_string("name", &st);
  if (!st.ok()) return st;
  want_number("queries_per_second", &st);
  if (!st.ok()) return st;
  want_number("wall_seconds", &st);
  if (!st.ok()) return st;
  want_number("speedup_vs_serial", &st);
  if (!st.ok()) return st;
  want_number("thread_count", &st);
  if (!st.ok()) return st;
  const double tc = obj["thread_count"].num;
  if (tc < 1.0 || tc != std::floor(tc)) {
    return fail("'thread_count' must be a positive integer");
  }
  want_string("git_rev", &st);
  if (!st.ok()) return st;
  if (obj.size() != 6) return fail("unexpected extra keys");
  if (name != nullptr) *name = obj["name"].str;
  return Status::OK();
}

Status ValidateBenchJsonSet(const std::vector<std::string>& paths) {
  std::map<std::string, std::string> first_path;  // name -> earliest path
  for (const std::string& path : paths) {
    std::string name;
    TB_RETURN_IF_ERROR(ValidateBenchJsonFile(path, &name));
    auto ins = first_path.emplace(name, path);
    if (!ins.second) {
      return Status::InvalidArgument(
          path + ": duplicate benchmark name '" + name +
          "' (already reported by " + ins.first->second + ")");
    }
  }
  return Status::OK();
}

}  // namespace bench
}  // namespace tabbench
