#include "exec/vec/trace_merge.h"

namespace tabbench {
namespace vec {

void AppendCheck(AccessTrace* dst) {
  if (!dst->empty()) {
    TraceEvent& back = dst->back();
    if (back.kind == TraceEvent::Kind::kTimeoutCheck ||
        back.kind == TraceEvent::Kind::kUnitTuplesChecked ||
        back.kind == TraceEvent::Kind::kUnitHashChecked) {
      return;
    }
    if (back.arg == 1 && (back.kind == TraceEvent::Kind::kTuples ||
                          back.kind == TraceEvent::Kind::kHashOps)) {
      TraceEvent::Kind merged = back.kind == TraceEvent::Kind::kTuples
                                    ? TraceEvent::Kind::kUnitTuplesChecked
                                    : TraceEvent::Kind::kUnitHashChecked;
      dst->pop_back();
      if (!dst->empty() && dst->back().kind == merged) {
        ++dst->back().arg;
      } else {
        dst->push_back({merged, 1});
      }
      return;
    }
  }
  dst->push_back({TraceEvent::Kind::kTimeoutCheck, 0});
}

void AppendRecordedEvent(AccessTrace* dst, const TraceEvent& ev) {
  switch (ev.kind) {
    case TraceEvent::Kind::kTimeoutCheck:
      // A fragment-leading bare check meets the tail of the previous
      // fragment for the first time here; RecordCheck's rules apply.
      AppendCheck(dst);
      return;
    case TraceEvent::Kind::kUnitTuplesChecked:
    case TraceEvent::Kind::kUnitHashChecked:
      // A fragment-leading unit run would have merged into a same-kind run
      // under continuous recording; any other tail takes a plain push
      // (RecordCheck never pops through a completed unit run).
      if (!dst->empty() && dst->back().kind == ev.kind) {
        dst->back().arg += ev.arg;
        return;
      }
      dst->push_back(ev);
      return;
    default:
      dst->push_back(ev);
      return;
  }
}

void AppendCheckedUnitTuples(AccessTrace* dst, uint64_t n) {
  for (uint64_t i = 0; i < n; ++i) {
    AppendCharge(dst, TraceEvent::Kind::kTuples, 1);
    AppendCheck(dst);
  }
}

double IncrementalReplay::Advance(const AccessTrace& trace,
                                  const CostParams& params) {
  for (; pos_ < trace.size(); ++pos_) {
    const TraceEvent& ev = trace[pos_];
    switch (ev.kind) {
      case TraceEvent::Kind::kTouchSeq:
        if (!pool_.Touch(ev.arg)) time_ += params.page_io_seconds;
        break;
      case TraceEvent::Kind::kTouchRandom:
        if (!pool_.Touch(ev.arg)) time_ += params.random_io_seconds;
        break;
      case TraceEvent::Kind::kIoPages:
        time_ += static_cast<double>(ev.arg) * params.page_io_seconds;
        break;
      case TraceEvent::Kind::kTuples:
        time_ += static_cast<double>(ev.arg) * params.cpu_tuple_seconds;
        break;
      case TraceEvent::Kind::kHashOps:
        time_ += static_cast<double>(ev.arg) * params.cpu_hash_seconds;
        break;
      case TraceEvent::Kind::kTimeoutCheck:
        break;
      case TraceEvent::Kind::kUnitTuplesChecked:
        time_ += static_cast<double>(ev.arg) * params.cpu_tuple_seconds;
        break;
      case TraceEvent::Kind::kUnitHashChecked:
        time_ += static_cast<double>(ev.arg) * params.cpu_hash_seconds;
        break;
    }
  }
  return time_;
}

Status ApplyTraceToContext(const AccessTrace& trace, ExecContext* ctx) {
  for (const TraceEvent& ev : trace) {
    switch (ev.kind) {
      case TraceEvent::Kind::kTouchSeq:
        ctx->TouchPage(ev.arg);
        break;
      case TraceEvent::Kind::kTouchRandom:
        ctx->TouchPageRandom(ev.arg);
        break;
      case TraceEvent::Kind::kIoPages:
        ctx->ChargeIoPages(ev.arg);
        break;
      case TraceEvent::Kind::kTuples:
        ctx->ChargeTuples(ev.arg);
        break;
      case TraceEvent::Kind::kHashOps:
        ctx->ChargeHashOps(ev.arg);
        break;
      case TraceEvent::Kind::kTimeoutCheck: {
        Status s = ctx->CheckTimeout();
        if (!s.ok()) return s;
        break;
      }
      case TraceEvent::Kind::kUnitTuplesChecked:
        for (uint64_t k = 0; k < ev.arg; ++k) {
          ctx->ChargeTuples(1);
          Status s = ctx->CheckTimeout();
          if (!s.ok()) return s;
        }
        break;
      case TraceEvent::Kind::kUnitHashChecked:
        for (uint64_t k = 0; k < ev.arg; ++k) {
          ctx->ChargeHashOps(1);
          Status s = ctx->CheckTimeout();
          if (!s.ok()) return s;
        }
        break;
    }
  }
  return Status::OK();
}

}  // namespace vec
}  // namespace tabbench
