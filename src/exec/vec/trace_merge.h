#ifndef TABBENCH_EXEC_VEC_TRACE_MERGE_H_
#define TABBENCH_EXEC_VEC_TRACE_MERGE_H_

#include <cstdint>
#include <vector>

#include "exec/exec_context.h"
#include "storage/buffer_pool.h"
#include "util/status.h"
#include "util/trace_event.h"

namespace tabbench {
namespace vec {

/// The vectorized executor's determinism contract (DESIGN.md §6e):
///
/// Morsel workers execute through private *recording* ExecContexts (scratch
/// pool, timeout enforcement off), calling the same charge methods in the
/// same per-row order the Volcano operators would — so each worker's trace
/// fragment is coalesced by ExecContext::RecordCheck itself. Fragments are
/// then concatenated in canonical morsel order; AppendRecordedEvent below
/// re-applies exactly the merges RecordCheck would have performed across
/// the fragment boundary, so the concatenation equals the trace a single
/// continuous recording would have produced. Finally ApplyTraceToContext
/// walks the canonical trace through the caller's real ExecContext,
/// reproducing the serial executor's floating-point operation shapes, pool
/// state, counters, and timeout/cancellation semantics bit for bit.
///
/// Charges that depend on cross-morsel state (hash spill byte counters,
/// first-occurrence group inserts) cannot be recorded locally. Workers
/// leave a sentinel event in the fragment instead — kTuples with arg 0, a
/// shape no live charge produces — which (a) terminates RecordCheck
/// coalescing runs at the right spot and (b) is replaced during assembly by
/// the real charge block, computed sequentially in canonical order.
inline constexpr TraceEvent kSinkSentinel{TraceEvent::Kind::kTuples, 0};

inline bool IsSinkSentinel(const TraceEvent& ev) {
  return ev.kind == TraceEvent::Kind::kTuples && ev.arg == 0;
}

/// Appends one worker-recorded event onto `dst`, merging across the
/// boundary exactly as ExecContext::RecordCheck would have if recording had
/// been continuous. Only the first events of a fragment can interact with
/// `dst`'s tail; every later event was already coalesced by the worker.
void AppendRecordedEvent(AccessTrace* dst, const TraceEvent& ev);

/// Trace-building primitives for the sequential assembly walk. These mirror
/// ExecContext's recording (RecordCheck for checks, plain pushes for
/// charges) without touching a pool or a clock.
void AppendCheck(AccessTrace* dst);
inline void AppendCharge(AccessTrace* dst, TraceEvent::Kind kind,
                         uint64_t arg) {
  dst->push_back({kind, arg});
}
/// `n` repetitions of {ChargeTuples(1); CheckTimeout()} — the aggregate
/// output loop's shape.
void AppendCheckedUnitTuples(AccessTrace* dst, uint64_t n);

/// Mirror of the executor's SpillTracker (exec/operators.cc): same byte
/// counter, same page arithmetic, emitting the same ChargeIoPages events —
/// but into a trace under assembly instead of a live context.
class SpillMirror {
 public:
  explicit SpillMirror(size_t work_mem_pages)
      : work_mem_pages_(work_mem_pages) {}

  void Add(size_t bytes, AccessTrace* dst) {
    bytes_ += bytes;
    size_t pages = bytes_ / kPageSize;
    if (pages > work_mem_pages_) {
      uint64_t over = pages - work_mem_pages_;
      if (over > spilled_) {
        AppendCharge(dst, TraceEvent::Kind::kIoPages, 2 * (over - spilled_));
        spilled_ = over;
      }
    }
  }

  bool spilled() const { return spilled_ > 0; }

 private:
  size_t work_mem_pages_;
  size_t bytes_ = 0;
  uint64_t spilled_ = 0;
};

/// Incremental ReplayTrace over a scratch cold pool, used to detect doomed
/// queries between pipelines: once the cold-replay clock passes
/// `limit + pool_capacity * max_io` the apply step is guaranteed to trip
/// its timeout within the already-assembled prefix (same argument as
/// ExecContext::set_record_budget), so later pipelines can be skipped.
class IncrementalReplay {
 public:
  IncrementalReplay(size_t pool_capacity, double start_seconds)
      : pool_(pool_capacity), time_(start_seconds) {}

  /// Replays trace[pos..) where pos is where the previous call stopped.
  /// Returns the clock after the new events.
  double Advance(const AccessTrace& trace, const CostParams& params);

  double time() const { return time_; }

 private:
  BufferPool pool_;
  double time_;
  size_t pos_ = 0;
};

/// Walks the canonical trace through `ctx`, performing each recorded charge
/// with the live methods (TouchPage, ChargeTuples, CheckTimeout, ...) so
/// simulated time, the buffer pool, page/tuple counters, and — when `ctx`
/// itself records a trace — the re-recorded trace are all exactly what the
/// Volcano executor would have produced. Stops at the first CheckTimeout
/// that fails and returns its status (Timeout / Cancelled / injected
/// fault), leaving `ctx` as a live aborting execution would.
Status ApplyTraceToContext(const AccessTrace& trace, ExecContext* ctx);

}  // namespace vec
}  // namespace tabbench

#endif  // TABBENCH_EXEC_VEC_TRACE_MERGE_H_
