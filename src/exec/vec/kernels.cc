#include "exec/vec/kernels.h"

namespace tabbench {
namespace vec {

namespace {

void AndEqLit(const Column& c, const Value& lit, std::vector<uint8_t>* pass) {
  const size_t n = c.size();
  uint8_t* p = pass->data();
  if (lit.is_null()) {
    // col = NULL literal: equal exactly when the column value is NULL
    // (Value::Compare sorts NULL == NULL).
    for (size_t i = 0; i < n; ++i) p[i] &= c.nulls[i];
    return;
  }
  switch (c.type) {
    case TypeId::kInt: {
      const int64_t v = lit.as_int();
      const int64_t* a = c.ints.data();
      const uint8_t* nu = c.nulls.data();
      for (size_t i = 0; i < n; ++i) {
        p[i] &= static_cast<uint8_t>((nu[i] == 0) & (a[i] == v));
      }
      return;
    }
    case TypeId::kDouble: {
      const double v = lit.as_double();
      const double* a = c.doubles.data();
      const uint8_t* nu = c.nulls.data();
      for (size_t i = 0; i < n; ++i) {
        p[i] &= static_cast<uint8_t>((nu[i] == 0) & (a[i] == v));
      }
      return;
    }
    case TypeId::kString: {
      const std::string& v = lit.as_string();
      for (size_t i = 0; i < n; ++i) {
        p[i] &= static_cast<uint8_t>((c.nulls[i] == 0) & (c.strings[i] == v));
      }
      return;
    }
  }
}

void AndEqCol(const Column& a, const Column& b, std::vector<uint8_t>* pass) {
  const size_t n = a.size();
  uint8_t* p = pass->data();
  const uint8_t* na = a.nulls.data();
  const uint8_t* nb = b.nulls.data();
  if (a.type == b.type && a.type == TypeId::kInt) {
    const int64_t* va = a.ints.data();
    const int64_t* vb = b.ints.data();
    for (size_t i = 0; i < n; ++i) {
      p[i] &= static_cast<uint8_t>((na[i] & nb[i]) |
                                   ((na[i] == 0) & (nb[i] == 0) &
                                    (va[i] == vb[i])));
    }
    return;
  }
  if (a.type == b.type && a.type == TypeId::kDouble) {
    const double* va = a.doubles.data();
    const double* vb = b.doubles.data();
    for (size_t i = 0; i < n; ++i) {
      p[i] &= static_cast<uint8_t>((na[i] & nb[i]) |
                                   ((na[i] == 0) & (nb[i] == 0) &
                                    (va[i] == vb[i])));
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    p[i] &= static_cast<uint8_t>(a.EqualsColumn(i, b, i));
  }
}

void AndInSet(const Column& c,
              const std::unordered_set<Value, ValueHash>& in_set,
              std::vector<uint8_t>* pass) {
  const size_t n = c.size();
  uint8_t* p = pass->data();
  for (size_t i = 0; i < n; ++i) {
    if (p[i] == 0) continue;
    p[i] = in_set.count(c.GetValue(i)) > 0 ? 1 : 0;
  }
}

}  // namespace

void AndPredIntoPass(const ColumnBatch& batch, const CompiledPred& pred,
                     std::vector<uint8_t>* pass) {
  switch (pred.kind) {
    case ResidualPred::Kind::kColEqLit:
      AndEqLit(batch.col(static_cast<size_t>(pred.pos_a)), pred.literal, pass);
      return;
    case ResidualPred::Kind::kColEqCol:
      AndEqCol(batch.col(static_cast<size_t>(pred.pos_a)),
               batch.col(static_cast<size_t>(pred.pos_b)), pass);
      return;
    case ResidualPred::Kind::kInSet:
      AndInSet(batch.col(static_cast<size_t>(pred.pos_a)), *pred.in_set, pass);
      return;
  }
}

void FilterBatch(const ColumnBatch& batch,
                 const std::vector<CompiledPred>& preds,
                 std::vector<uint8_t>* pass) {
  pass->assign(batch.num_rows(), 1);
  for (const auto& p : preds) AndPredIntoPass(batch, p, pass);
}

void PassToSelection(const std::vector<uint8_t>& pass, SelectionVector* sel) {
  sel->clear();
  sel->resize(pass.size());
  uint32_t* out = sel->data();
  size_t n = 0;
  for (size_t i = 0; i < pass.size(); ++i) {
    out[n] = static_cast<uint32_t>(i);
    n += pass[i];
  }
  sel->resize(n);
}

}  // namespace vec
}  // namespace tabbench
