#include "exec/vec/pipeline.h"

namespace tabbench {
namespace vec {

namespace {

/// Key-column types of an index, in key order (what index-only rows carry).
std::vector<TypeId> IndexKeyTypes(const IndexInfo& idx) {
  const std::vector<TypeId>& heap_types = idx.heap->codec().types();
  std::vector<TypeId> out;
  out.reserve(idx.key_cols.size());
  for (int c : idx.key_cols) {
    out.push_back(heap_types[static_cast<size_t>(c)]);
  }
  return out;
}

class Compiler {
 public:
  Compiler(const ObjectResolver& resolver, const InSets& in_sets)
      : resolver_(resolver), in_sets_(in_sets) {}

  Result<VecPlan> Compile(const PhysicalPlan& plan) {
    const PlanNode& root = *plan.root;
    if (!root.residual.empty()) {
      return Status::Unsupported("vec: residuals on root node");
    }
    switch (root.kind) {
      case PlanNode::Kind::kProject: {
        if (root.children.size() != 1) {
          return Status::Internal("Project needs 1 child");
        }
        Sink sink;
        sink.kind = Sink::Kind::kCollectProject;
        for (const auto& s : root.select) {
          if (s.kind != BoundSelectItem::Kind::kColumn) {
            return Status::Internal("Project only handles plain columns");
          }
          int p = root.children[0]->FindSlot(SlotRef{s.column.rel,
                                                     s.column.col});
          if (p < 0) return Status::Internal("project slot not in child");
          sink.positions.push_back(static_cast<size_t>(p));
        }
        TB_RETURN_IF_ERROR(
            CompileInto(*root.children[0], {}, std::move(sink)));
        break;
      }
      case PlanNode::Kind::kHashAggregate: {
        if (root.children.size() != 1) {
          return Status::Internal("HashAggregate needs 1 child");
        }
        const PlanNode& c = *root.children[0];
        Sink sink;
        sink.kind = Sink::Kind::kAggregate;
        sink.select = root.select;
        for (const auto& g : root.group_by) {
          int p = c.FindSlot(SlotRef{g.rel, g.col});
          if (p < 0) return Status::Internal("group-by slot not in child");
          sink.group_pos.push_back(p);
        }
        sink.select_group_idx.assign(root.select.size(), -1);
        for (size_t i = 0; i < root.select.size(); ++i) {
          const auto& s = root.select[i];
          if (s.kind == BoundSelectItem::Kind::kColumn) {
            for (size_t gi = 0; gi < root.group_by.size(); ++gi) {
              if (root.group_by[gi].SameAs(s.column)) {
                sink.select_group_idx[i] = static_cast<int>(gi);
                break;
              }
            }
            if (sink.select_group_idx[i] < 0) {
              return Status::Internal("select column not in group key");
            }
          } else if (s.kind == BoundSelectItem::Kind::kCountDistinct) {
            int p = c.FindSlot(SlotRef{s.column.rel, s.column.col});
            if (p < 0) return Status::Internal("distinct slot not in child");
            sink.select_distinct_pos.push_back(p);
            ++sink.num_distinct_aggs;
          }
        }
        out_.root_is_aggregate = true;
        TB_RETURN_IF_ERROR(
            CompileInto(*root.children[0], {}, std::move(sink)));
        break;
      }
      default:
        return Status::Unsupported("vec: unhandled root node kind");
    }
    return std::move(out_);
  }

 private:
  /// Output column types of a pipeline-able subtree node.
  Result<std::vector<TypeId>> NodeTypes(const PlanNode& node) {
    switch (node.kind) {
      case PlanNode::Kind::kSeqScan: {
        const HeapTable* heap = resolver_.FindHeap(node.object);
        if (heap == nullptr) return Status::NotFound("table " + node.object);
        return heap->codec().types();
      }
      case PlanNode::Kind::kIndexScan: {
        const IndexInfo* idx = resolver_.FindIndex(node.index_name);
        if (idx == nullptr) {
          return Status::NotFound("index " + node.index_name);
        }
        if (node.index_only) return IndexKeyTypes(*idx);
        return idx->heap->codec().types();
      }
      case PlanNode::Kind::kHashJoin: {
        std::vector<TypeId> l, r;
        TB_ASSIGN_OR_RETURN(l, NodeTypes(*node.children[0]));
        TB_ASSIGN_OR_RETURN(r, NodeTypes(*node.children[1]));
        l.insert(l.end(), r.begin(), r.end());
        return l;
      }
      case PlanNode::Kind::kIndexNLJoin: {
        std::vector<TypeId> l;
        TB_ASSIGN_OR_RETURN(l, NodeTypes(*node.children[0]));
        const IndexInfo* idx = resolver_.FindIndex(node.index_name);
        if (idx == nullptr) {
          return Status::NotFound("index " + node.index_name);
        }
        std::vector<TypeId> r = node.index_only
                                    ? IndexKeyTypes(*idx)
                                    : idx->heap->codec().types();
        l.insert(l.end(), r.begin(), r.end());
        return l;
      }
      default:
        return Status::Unsupported("vec: node kind below joins/scans");
    }
  }

  /// Emits the pipelines for `node`, whose rows flow through `tail` into
  /// `sink`. Mirrors Volcano Open() recursion: a hash join first emits its
  /// build subtree's pipelines (breaker: this join's table), then compiles
  /// its probe subtree with a probe stage prepended.
  Status CompileInto(const PlanNode& node, std::vector<ProbeStage> tail,
                     Sink sink) {
    switch (node.kind) {
      case PlanNode::Kind::kSeqScan: {
        const HeapTable* heap = resolver_.FindHeap(node.object);
        if (heap == nullptr) return Status::NotFound("table " + node.object);
        Pipeline p;
        p.source = Pipeline::SourceKind::kHeapScan;
        p.heap = heap;
        p.source_types = heap->codec().types();
        TB_ASSIGN_OR_RETURN(p.source_preds, CompilePreds(node, in_sets_));
        p.stages = std::move(tail);
        p.sink = std::move(sink);
        out_.pipelines.push_back(std::move(p));
        return Status::OK();
      }
      case PlanNode::Kind::kIndexScan: {
        const IndexInfo* idx = resolver_.FindIndex(node.index_name);
        if (idx == nullptr) {
          return Status::NotFound("index " + node.index_name);
        }
        Pipeline p;
        p.source = Pipeline::SourceKind::kIndexScan;
        p.index = idx;
        p.index_only = node.index_only;
        for (const auto& part : node.seek) {
          if (part.from_outer) {
            return Status::Internal("leaf IndexScan cannot reference outer row");
          }
          p.prefix.push_back(part.literal);
        }
        p.source_types = node.index_only ? IndexKeyTypes(*idx)
                                         : idx->heap->codec().types();
        TB_ASSIGN_OR_RETURN(p.source_preds, CompilePreds(node, in_sets_));
        p.stages = std::move(tail);
        p.sink = std::move(sink);
        out_.pipelines.push_back(std::move(p));
        return Status::OK();
      }
      case PlanNode::Kind::kHashJoin: {
        if (node.children.size() != 2) {
          return Status::Internal("HashJoin needs 2 children");
        }
        int join_id = static_cast<int>(out_.num_joins++);
        ProbeStage ps;
        ps.kind = ProbeStage::Kind::kHashProbe;
        ps.join_id = join_id;
        Sink build_sink;
        build_sink.kind = Sink::Kind::kBuild;
        build_sink.join_id = join_id;
        for (const auto& [l, r] : node.hash_keys) {
          int lp = node.children[0]->FindSlot(l);
          int rp = node.children[1]->FindSlot(r);
          if (lp < 0 || rp < 0) {
            return Status::Internal("hash key not found in child output");
          }
          build_sink.build_key_pos.push_back(lp);
          ps.probe_key_pos.push_back(rp);
        }
        TB_RETURN_IF_ERROR(
            CompileInto(*node.children[0], {}, std::move(build_sink)));
        TB_ASSIGN_OR_RETURN(ps.preds, CompilePreds(node, in_sets_));
        TB_ASSIGN_OR_RETURN(ps.out_types, NodeTypes(node));
        tail.insert(tail.begin(), std::move(ps));
        return CompileInto(*node.children[1], std::move(tail),
                           std::move(sink));
      }
      case PlanNode::Kind::kIndexNLJoin: {
        if (node.children.size() != 1) {
          return Status::Internal("IndexNLJoin needs 1 child (outer)");
        }
        const IndexInfo* idx = resolver_.FindIndex(node.index_name);
        if (idx == nullptr) {
          return Status::NotFound("index " + node.index_name);
        }
        ProbeStage ps;
        ps.kind = ProbeStage::Kind::kIndexNLProbe;
        ps.index = idx;
        ps.seek = node.seek;
        ps.index_only = node.index_only;
        for (const auto& part : node.seek) {
          if (!part.from_outer) continue;
          int p = node.children[0]->FindSlot(part.outer);
          if (p < 0) {
            return Status::Internal("seek outer slot not in outer output");
          }
          ps.seek_outer_pos.push_back(p);
        }
        TB_ASSIGN_OR_RETURN(ps.preds, CompilePreds(node, in_sets_));
        TB_ASSIGN_OR_RETURN(ps.out_types, NodeTypes(node));
        tail.insert(tail.begin(), std::move(ps));
        return CompileInto(*node.children[0], std::move(tail),
                           std::move(sink));
      }
      default:
        return Status::Unsupported("vec: unhandled node kind in pipeline");
    }
  }

  const ObjectResolver& resolver_;
  const InSets& in_sets_;
  VecPlan out_;
};

}  // namespace

Result<VecPlan> CompileVecPlan(const PhysicalPlan& plan,
                               const ObjectResolver& resolver,
                               const InSets& in_sets) {
  if (plan.root == nullptr) {
    return Status::InvalidArgument("plan has no root");
  }
  Compiler c(resolver, in_sets);
  return c.Compile(plan);
}

}  // namespace vec
}  // namespace tabbench
