#include "exec/vec/vec_executor.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "exec/operators.h"
#include "exec/vec/kernels.h"
#include "exec/vec/morsel_scheduler.h"
#include "exec/vec/pipeline.h"
#include "exec/vec/trace_merge.h"
#include "util/fault_injection.h"

namespace tabbench {
namespace vec {

namespace {

uint64_t GetU64LE(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}
uint32_t GetU32LE(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

/// Column-wise decode of one heap page (record format: [u16 len][TupleCodec
/// bytes], see storage/heap_table.h) straight into typed column arrays —
/// no per-row Tuple or Value materialization on this path.
void DecodePageIntoBatch(const Page* page, ColumnBatch* batch) {
  batch->Clear();
  const uint8_t* data = page->data;
  size_t off = 0;
  const size_t ncols = batch->num_cols();
  for (uint32_t slot = 0; slot < page->num_slots; ++slot) {
    off += 2;  // record length header
    for (size_t c = 0; c < ncols; ++c) {
      Column& col = batch->col(c);
      uint8_t tag = data[off++];
      if (tag == 0) {
        col.AppendNull();
        continue;
      }
      switch (col.type) {
        case TypeId::kInt:
          col.AppendInt(static_cast<int64_t>(GetU64LE(data + off)));
          off += 8;
          break;
        case TypeId::kDouble: {
          uint64_t bits = GetU64LE(data + off);
          off += 8;
          double d;
          std::memcpy(&d, &bits, 8);
          col.AppendDouble(d);
          break;
        }
        case TypeId::kString: {
          uint32_t len = GetU32LE(data + off);
          off += 4;
          col.AppendString(reinterpret_cast<const char*>(data + off), len);
          off += len;
          break;
        }
      }
    }
    batch->FinishRow();
  }
}

bool EvalPreds(const std::vector<CompiledPred>& preds, const Tuple& t) {
  for (const auto& p : preds) {
    if (!p.Eval(t)) return false;
  }
  return true;
}

/// Meaning of one kSinkSentinel in a fragment, in fragment order. The
/// sentinel stands for a charge block that depends on cross-morsel
/// sequential state (spill byte counters, first-occurrence inserts) and is
/// reconstructed during the canonical assembly walk.
struct SentinelInfo {
  enum class Kind {
    kBuildRow,      // hash-join build insert: H(1), spill I/O?, check
    kProbeSpillRow, // spilled-join probe row: H(1), Grace I/O, check
    kAggRow,        // aggregate input row: H(1), check, spills, distinct H's
  };
  Kind kind = Kind::kBuildRow;
  int join_id = -1;    // kBuildRow / kProbeSpillRow
  uint64_t bytes = 0;  // kBuildRow: row bytes; kProbeSpillRow: probe row bytes
  uint32_t row = 0;    // kAggRow: index into the morsel's sink rows
};

/// Everything one morsel produces. Written by exactly one worker; read only
/// after the scheduler's join.
struct MorselOut {
  AccessTrace fragment;
  std::vector<SentinelInfo> sentinels;
  /// Rows that reached the sink, in canonical (source) order.
  std::vector<Tuple> sink_rows;
  /// Build/aggregate sinks: per sink row, the projected key and its
  /// partition (computed where Volcano computes its key projection).
  std::vector<Tuple> sink_keys;
  std::vector<uint8_t> sink_parts;
  /// Aggregate sinks, filled by the canonical partition merge: whether this
  /// row first created its group / first inserted each distinct value.
  std::vector<uint8_t> agg_new_group;
  std::vector<uint8_t> agg_value_new;  // rows * num_distinct_aggs
  /// Replay-cost bounds of `fragment` (pure charges; touches add at most
  /// max_io each). Only computed when the doomed-query gate is active.
  double charge_lower = 0.0;
  double charge_upper = 0.0;
};

/// A completed hash-join breaker: build rows in canonical order plus a
/// fixed-partition hash index over them. Immutable once its pipeline's
/// merge finishes; probe morsels read it concurrently.
struct JoinTable {
  std::vector<Tuple> rows;
  std::vector<std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash>>
      parts{kVecPartitions};
  bool spilled = false;
};

struct AggGroupState {
  uint64_t count = 0;
  std::vector<std::unordered_set<Value, ValueHash>> distinct;
};

/// One aggregate partition: groups in first-occurrence order.
struct AggPartition {
  std::unordered_map<Tuple, size_t, TupleHash> index;
  std::vector<Tuple> keys;
  std::vector<AggGroupState> groups;
};

class VecExecutor {
 public:
  VecExecutor(const VecPlan& vplan, ExecContext* ctx,
              const VecExecOptions& options)
      : vplan_(vplan),
        ctx_(ctx),
        options_(options),
        replay_(ctx->pool()->capacity(), ctx->sim_time()) {
    // Doomed-query gate (see ExecContext::set_record_budget): once the
    // canonical cold replay passes limit + capacity * max_io, the apply
    // step is guaranteed to abort inside the already-assembled prefix.
    double limit = 0.0;
    if (ctx->enforce_timeout()) limit = ctx->params().timeout_seconds;
    if (ctx->record_budget() > 0.0 &&
        (limit == 0.0 || ctx->record_budget() < limit)) {
      limit = ctx->record_budget();
    }
    if (limit > 0.0) {
      double max_io = std::max(ctx->params().page_io_seconds,
                               ctx->params().random_io_seconds);
      gate_ = limit + static_cast<double>(ctx->pool()->capacity()) * max_io;
    }
    joins_.resize(vplan.num_joins);
    for (auto& j : joins_) j = std::make_unique<JoinTable>();
    probe_spill_bytes_.assign(vplan.num_joins, 0);
  }

  Result<QueryResult> Run() {
    for (const Pipeline& p : vplan_.pipelines) {
      TB_RETURN_IF_ERROR(RunPipeline(p));
      if (doomed_) break;
    }
    if (doomed_) {
      // The gate proves an abort inside the assembled prefix; a trailing
      // check is a deterministic backstop in case the crossing fell after
      // the prefix's last recorded check.
      AppendCheck(&trace_);
    }
    Status applied = ApplyTraceToContext(trace_, ctx_);
    QueryResult result;
    auto finish = [&](bool timed_out) -> QueryResult {
      result.timed_out = timed_out;
      result.sim_seconds =
          timed_out ? ctx_->params().timeout_seconds : ctx_->sim_time();
      result.pages_read = ctx_->pages_read();
      result.tuples_processed = ctx_->tuples_processed();
      if (timed_out) result.rows.clear();
      return result;
    };
    if (!applied.ok()) {
      if (applied.IsTimeout()) return finish(/*timed_out=*/true);
      return applied;
    }
    result.rows = std::move(result_rows_);
    return finish(/*timed_out=*/false);
  }

 private:
  // ------------------------------------------------------------- pipeline

  Status RunPipeline(const Pipeline& p) {
    size_t n_morsels;
    size_t pages_per_morsel = std::max<size_t>(1, options_.morsel_pages);
    if (p.source == Pipeline::SourceKind::kHeapScan) {
      size_t pages = p.heap->num_pages();
      n_morsels = (pages + pages_per_morsel - 1) / pages_per_morsel;
    } else {
      // Index sources use the real B+-tree iterators (worker-context touch
      // callbacks), which are sequential by nature: one morsel.
      n_morsels = 1;
    }

    std::vector<MorselOut> outs(n_morsels);
    MorselScheduler::Options sopt;
    sopt.pool = options_.pool;
    sopt.max_helpers = options_.max_parallelism;
    sopt.cancel = ctx_->cancellation_token();
    if (gate_ > 0.0) sopt.abort_seconds = gate_ - replay_.time() + 1.0;
    Status error;
    bool cancelled = false;
    size_t completed = MorselScheduler::Run(
        n_morsels,
        [&](size_t i, MorselReport* report) {
          return RunMorsel(p, i, pages_per_morsel, &outs[i], report);
        },
        sopt, &error, &cancelled);
    if (cancelled) return Status::Cancelled("query cancelled");
    TB_RETURN_IF_ERROR(error);

    // Canonical partition merge: aggregate sinks need their first-occurrence
    // flags before assembly can reconstruct the sentinel blocks.
    if (p.sink.kind == Sink::Kind::kAggregate) {
      MergeAggregate(p, outs, completed);
    }

    // Sequential assembly in morsel order, with the deterministic doomed cut.
    SpillMirror spill(ctx_->params().work_mem_pages);
    for (size_t i = 0; i < completed && !doomed_; ++i) {
      AssembleFragment(p, outs[i], &spill);
      if (gate_ > 0.0) {
        pending_upper_ += outs[i].charge_upper;
        if (replay_.time() + pending_upper_ > gate_) {
          replay_.Advance(trace_, ctx_->params());
          pending_upper_ = 0.0;
          if (replay_.time() > gate_) doomed_ = true;
        }
      }
    }
    if (doomed_) return Status::OK();
    if (completed < n_morsels) {
      // Runtime doomed-abort stopped dispatch but the sequential gate did
      // not confirm within the completed prefix (its +1.0 s slack): the
      // remaining morsels must still run for exactness.
      Status err2;
      bool cancelled2 = false;
      MorselScheduler::Options resume = sopt;
      resume.abort_seconds = 0.0;
      size_t more = MorselScheduler::Run(
          n_morsels - completed,
          [&](size_t i, MorselReport* report) {
            return RunMorsel(p, completed + i, pages_per_morsel,
                             &outs[completed + i], report);
          },
          resume, &err2, &cancelled2);
      if (cancelled2) return Status::Cancelled("query cancelled");
      TB_RETURN_IF_ERROR(err2);
      if (p.sink.kind == Sink::Kind::kAggregate) {
        MergeAggregate(p, outs, n_morsels);
      }
      for (size_t i = completed; i < completed + more; ++i) {
        AssembleFragment(p, outs[i], &spill);
      }
      completed = n_morsels;
    }

    // End of source: Volcano's scan operators issue one final check when
    // the cursor/iterator is exhausted.
    AppendCheck(&trace_);

    switch (p.sink.kind) {
      case Sink::Kind::kBuild: {
        JoinTable* jt = joins_[static_cast<size_t>(p.sink.join_id)].get();
        jt->spilled = spill.spilled();
        MergeBuild(outs, jt);
        break;
      }
      case Sink::Kind::kCollectProject:
        for (auto& out : outs) {
          for (auto& t : out.sink_rows) result_rows_.push_back(std::move(t));
        }
        break;
      case Sink::Kind::kAggregate:
        EmitAggregateOutput(p);
        break;
    }
    if (gate_ > 0.0 && replay_.time() + pending_upper_ > gate_) {
      replay_.Advance(trace_, ctx_->params());
      pending_upper_ = 0.0;
      if (replay_.time() > gate_) doomed_ = true;
    }
    return Status::OK();
  }

  // --------------------------------------------------------- morsel (worker)

  /// Per-morsel state threaded through the row loop.
  struct MorselCtx {
    const Pipeline* pipeline = nullptr;
    ExecContext* wctx = nullptr;
    MorselOut* out = nullptr;
  };

  Status RunMorsel(const Pipeline& p, size_t index, size_t pages_per_morsel,
                   MorselOut* out, MorselReport* report) {
    TB_FAULT_POINT("exec.vec.morsel");
    BufferPool scratch(ctx_->pool()->capacity());
    ExecContext wctx(ctx_->store(), &scratch, ctx_->params());
    wctx.set_enforce_timeout(false);
    wctx.set_trace(&out->fragment);
    MorselCtx m;
    m.pipeline = &p;
    m.wctx = &wctx;
    m.out = out;
    Status s = p.source == Pipeline::SourceKind::kHeapScan
                   ? RunHeapMorsel(p, index * pages_per_morsel,
                                   std::min(p.heap->num_pages(),
                                            (index + 1) * pages_per_morsel),
                                   &m)
                   : RunIndexMorsel(p, &m);
    if (!s.ok()) return s;
    if (p.sink.kind == Sink::Kind::kAggregate) {
      out->agg_new_group.assign(out->sink_rows.size(), 0);
      out->agg_value_new.assign(
          out->sink_rows.size() * p.sink.num_distinct_aggs, 0);
    }
    if (gate_ > 0.0) {
      ComputeChargeBounds(out);
      report->charge_seconds_lower_bound = out->charge_lower;
    }
    return Status::OK();
  }

  Status RunHeapMorsel(const Pipeline& p, size_t begin_page, size_t end_page,
                       MorselCtx* m) {
    ColumnBatch batch(p.source_types);
    std::vector<uint8_t> pass;
    for (size_t pg = begin_page; pg < end_page; ++pg) {
      PageId pid = p.heap->pages()[pg];
      m->wctx->TouchPage(pid);
      DecodePageIntoBatch(ctx_->store()->GetPage(pid), &batch);
      FilterBatch(batch, p.source_preds, &pass);
      for (size_t r = 0; r < batch.num_rows(); ++r) {
        m->wctx->ChargeTuples(1);
        TB_RETURN_IF_ERROR(m->wctx->CheckTimeout());
        if (!pass[r]) continue;
        TB_RETURN_IF_ERROR(ProcessRow(batch.RowAsTuple(r), 0, m));
      }
    }
    return Status::OK();
  }

  Status RunIndexMorsel(const Pipeline& p, MorselCtx* m) {
    ExecContext* wctx = m->wctx;
    BTree::Iterator iter =
        p.prefix.empty()
            ? p.index->btree->ScanAll(
                  [wctx](PageId id) { wctx->TouchPage(id); })
            : p.index->btree->SeekPrefix(
                  p.prefix, [wctx](PageId id) { wctx->TouchPageRandom(id); });
    IndexKey key;
    Rid rid;
    while (iter.Next(&key, &rid)) {
      wctx->ChargeTuples(1);
      TB_RETURN_IF_ERROR(wctx->CheckTimeout());
      Tuple t;
      if (p.index_only) {
        t = Tuple(std::move(key));
      } else {
        auto fetched = p.index->heap->Fetch(
            rid, [wctx](PageId id) { wctx->TouchPageRandom(id); });
        if (!fetched.ok()) return fetched.status();
        wctx->ChargeTuples(1);
        t = fetched.TakeValue();
      }
      if (!EvalPreds(p.source_preds, t)) continue;
      TB_RETURN_IF_ERROR(ProcessRow(std::move(t), 0, m));
    }
    return Status::OK();
  }

  /// Runs one row through the probe stages from `si` on, charging the
  /// worker context in exactly the order the Volcano operators interleave
  /// their charges per row.
  Status ProcessRow(Tuple t, size_t si, MorselCtx* m) {
    const Pipeline& p = *m->pipeline;
    if (si == p.stages.size()) {
      return SinkRow(std::move(t), m);
    }
    const ProbeStage& st = p.stages[si];
    if (st.kind == ProbeStage::Kind::kHashProbe) {
      const JoinTable& jt = *joins_[static_cast<size_t>(st.join_id)];
      if (jt.spilled) {
        // H(1) + Grace probe-stream I/O + check depend on the sequential
        // spill byte counter: leave a sentinel for the assembly walk.
        m->out->fragment.push_back(kSinkSentinel);
        SentinelInfo info;
        info.kind = SentinelInfo::Kind::kProbeSpillRow;
        info.join_id = st.join_id;
        info.bytes = t.ByteSize();
        m->out->sentinels.push_back(info);
      } else {
        m->wctx->ChargeHashOps(1);
        TB_RETURN_IF_ERROR(m->wctx->CheckTimeout());
      }
      Tuple key = ProjectKey(t, st.probe_key_pos);
      size_t part = key.Hash() % kVecPartitions;
      auto it = jt.parts[part].find(key);
      if (it == jt.parts[part].end()) return Status::OK();
      for (uint32_t ord : it->second) {
        Tuple joined = Tuple::Concat(jt.rows[ord], t);
        m->wctx->ChargeTuples(1);
        TB_RETURN_IF_ERROR(m->wctx->CheckTimeout());
        if (!EvalPreds(st.preds, joined)) continue;
        TB_RETURN_IF_ERROR(ProcessRow(std::move(joined), si + 1, m));
      }
      return Status::OK();
    }
    // Index nested-loop probe.
    TB_RETURN_IF_ERROR(m->wctx->CheckTimeout());
    IndexKey prefix;
    prefix.reserve(st.seek.size());
    size_t outer_i = 0;
    for (const auto& part : st.seek) {
      if (part.from_outer) {
        prefix.push_back(
            t.at(static_cast<size_t>(st.seek_outer_pos[outer_i++])));
      } else {
        prefix.push_back(part.literal);
      }
    }
    ExecContext* wctx = m->wctx;
    BTree::Iterator iter = st.index->btree->SeekPrefix(
        prefix, [wctx](PageId id) { wctx->TouchPageRandom(id); });
    IndexKey key;
    Rid rid;
    while (iter.Next(&key, &rid)) {
      wctx->ChargeTuples(1);
      TB_RETURN_IF_ERROR(wctx->CheckTimeout());
      Tuple inner_row;
      if (st.index_only) {
        inner_row = Tuple(std::move(key));
      } else {
        auto fetched = st.index->heap->Fetch(
            rid, [wctx](PageId id) { wctx->TouchPageRandom(id); });
        if (!fetched.ok()) return fetched.status();
        wctx->ChargeTuples(1);
        inner_row = fetched.TakeValue();
      }
      Tuple joined = Tuple::Concat(t, inner_row);
      if (!EvalPreds(st.preds, joined)) continue;
      TB_RETURN_IF_ERROR(ProcessRow(std::move(joined), si + 1, m));
    }
    return Status::OK();
  }

  Status SinkRow(Tuple t, MorselCtx* m) {
    const Sink& sink = m->pipeline->sink;
    MorselOut* out = m->out;
    switch (sink.kind) {
      case Sink::Kind::kCollectProject:
        m->wctx->ChargeTuples(1);  // ProjectOp charges without a check
        out->sink_rows.push_back(t.Project(sink.positions));
        break;
      case Sink::Kind::kBuild: {
        out->fragment.push_back(kSinkSentinel);
        SentinelInfo info;
        info.kind = SentinelInfo::Kind::kBuildRow;
        info.join_id = sink.join_id;
        info.bytes = t.ByteSize();
        out->sentinels.push_back(info);
        Tuple key = ProjectKey(t, sink.build_key_pos);
        out->sink_parts.push_back(
            static_cast<uint8_t>(key.Hash() % kVecPartitions));
        out->sink_keys.push_back(std::move(key));
        out->sink_rows.push_back(std::move(t));
        break;
      }
      case Sink::Kind::kAggregate: {
        out->fragment.push_back(kSinkSentinel);
        SentinelInfo info;
        info.kind = SentinelInfo::Kind::kAggRow;
        info.row = static_cast<uint32_t>(out->sink_rows.size());
        out->sentinels.push_back(info);
        Tuple key = ProjectKey(t, sink.group_pos);
        out->sink_parts.push_back(
            static_cast<uint8_t>(key.Hash() % kVecPartitions));
        out->sink_keys.push_back(std::move(key));
        out->sink_rows.push_back(std::move(t));
        break;
      }
    }
    return Status::OK();
  }

  static Tuple ProjectKey(const Tuple& t, const std::vector<int>& pos) {
    std::vector<Value> vals;
    vals.reserve(pos.size());
    for (int p : pos) vals.push_back(t.at(static_cast<size_t>(p)));
    return Tuple(std::move(vals));
  }

  /// Pure-charge replay bounds of a fragment: lower excludes touches (they
  /// may all hit), upper prices every touch as the dearest miss. Sentinels
  /// (arg 0) contribute nothing — a lower bound stays a lower bound.
  void ComputeChargeBounds(MorselOut* out) const {
    const CostParams& par = ctx_->params();
    double max_io = std::max(par.page_io_seconds, par.random_io_seconds);
    double lower = 0.0;
    double upper = 0.0;
    for (const TraceEvent& ev : out->fragment) {
      switch (ev.kind) {
        case TraceEvent::Kind::kTouchSeq:
        case TraceEvent::Kind::kTouchRandom:
          upper += max_io;
          break;
        case TraceEvent::Kind::kIoPages:
          lower += static_cast<double>(ev.arg) * par.page_io_seconds;
          break;
        case TraceEvent::Kind::kTuples:
        case TraceEvent::Kind::kUnitTuplesChecked:
          lower += static_cast<double>(ev.arg) * par.cpu_tuple_seconds;
          break;
        case TraceEvent::Kind::kHashOps:
        case TraceEvent::Kind::kUnitHashChecked:
          lower += static_cast<double>(ev.arg) * par.cpu_hash_seconds;
          break;
        case TraceEvent::Kind::kTimeoutCheck:
          break;
      }
    }
    out->charge_lower = lower;
    out->charge_upper = lower + upper;
  }

  // ---------------------------------------------------------------- merge

  void MergeBuild(std::vector<MorselOut>& outs, JoinTable* jt) {
    std::vector<size_t> offsets(outs.size(), 0);
    size_t total = 0;
    for (size_t i = 0; i < outs.size(); ++i) {
      offsets[i] = total;
      total += outs[i].sink_rows.size();
    }
    jt->rows.resize(total);
    ParallelFor(
        options_.pool, outs.size(),
        [&](size_t i) {
          for (size_t r = 0; r < outs[i].sink_rows.size(); ++r) {
            jt->rows[offsets[i] + r] = std::move(outs[i].sink_rows[r]);
          }
        },
        [](size_t, Status) {});
    ParallelFor(
        options_.pool, kVecPartitions,
        [&](size_t part) {
          for (size_t i = 0; i < outs.size(); ++i) {
            MorselOut& out = outs[i];
            for (size_t r = 0; r < out.sink_keys.size(); ++r) {
              if (out.sink_parts[r] != part) continue;
              jt->parts[part][std::move(out.sink_keys[r])].push_back(
                  static_cast<uint32_t>(offsets[i] + r));
            }
          }
        },
        [](size_t, Status) {});
  }

  /// Walks sink rows in canonical order per partition, building the final
  /// group states and stamping each row's first-occurrence flags (disjoint
  /// row slots per partition — no synchronization needed).
  void MergeAggregate(const Pipeline& p, std::vector<MorselOut>& outs,
                      size_t completed) {
    size_t num_distinct = p.sink.num_distinct_aggs;
    agg_parts_.assign(kVecPartitions, AggPartition{});
    ParallelFor(
        options_.pool, kVecPartitions,
        [&](size_t part) {
          AggPartition& ap = agg_parts_[part];
          for (size_t i = 0; i < completed; ++i) {
            MorselOut& out = outs[i];
            for (size_t r = 0; r < out.sink_keys.size(); ++r) {
              if (out.sink_parts[r] != part) continue;
              auto [it, inserted] =
                  ap.index.try_emplace(out.sink_keys[r], ap.keys.size());
              if (inserted) {
                ap.keys.push_back(out.sink_keys[r]);
                ap.groups.emplace_back();
                ap.groups.back().distinct.resize(num_distinct);
                out.agg_new_group[r] = 1;
              }
              AggGroupState& g = ap.groups[it->second];
              ++g.count;
              for (size_t d = 0; d < num_distinct; ++d) {
                const Value& v = out.sink_rows[r].at(
                    static_cast<size_t>(p.sink.select_distinct_pos[d]));
                auto [vit, vinserted] = g.distinct[d].insert(v);
                (void)vit;
                if (vinserted) out.agg_value_new[r * num_distinct + d] = 1;
              }
            }
          }
        },
        [](size_t, Status) {});
  }

  // ------------------------------------------------------------- assembly

  void AssembleFragment(const Pipeline& p, const MorselOut& out,
                        SpillMirror* spill) {
    size_t sent_i = 0;
    for (const TraceEvent& ev : out.fragment) {
      if (!IsSinkSentinel(ev)) {
        AppendRecordedEvent(&trace_, ev);
        continue;
      }
      const SentinelInfo& info = out.sentinels[sent_i++];
      switch (info.kind) {
        case SentinelInfo::Kind::kBuildRow:
          AppendCharge(&trace_, TraceEvent::Kind::kHashOps, 1);
          spill->Add(info.bytes + 24, &trace_);
          AppendCheck(&trace_);
          break;
        case SentinelInfo::Kind::kProbeSpillRow: {
          AppendCharge(&trace_, TraceEvent::Kind::kHashOps, 1);
          size_t& acc = probe_spill_bytes_[static_cast<size_t>(info.join_id)];
          acc += info.bytes;
          while (acc >= kPageSize) {
            AppendCharge(&trace_, TraceEvent::Kind::kIoPages, 2);
            acc -= kPageSize;
          }
          AppendCheck(&trace_);
          break;
        }
        case SentinelInfo::Kind::kAggRow: {
          AppendCharge(&trace_, TraceEvent::Kind::kHashOps, 1);
          AppendCheck(&trace_);
          size_t r = info.row;
          size_t num_distinct = p.sink.num_distinct_aggs;
          if (out.agg_new_group[r]) {
            spill->Add(out.sink_keys[r].ByteSize() + 32, &trace_);
          }
          for (size_t d = 0; d < num_distinct; ++d) {
            if (out.agg_value_new[r * num_distinct + d]) {
              const Value& v = out.sink_rows[r].at(
                  static_cast<size_t>(p.sink.select_distinct_pos[d]));
              spill->Add(v.ByteSize() + 16, &trace_);
            }
            AppendCharge(&trace_, TraceEvent::Kind::kHashOps, 1);
          }
          break;
        }
      }
    }
  }

  /// Aggregate output phase: one checked unit-tuple charge per group, rows
  /// emitted in partition-major first-occurrence order (deterministic and
  /// thread-count independent; Volcano's hash-iteration order differs, so
  /// result comparisons treat aggregate outputs as a multiset).
  void EmitAggregateOutput(const Pipeline& p) {
    const Sink& sink = p.sink;
    size_t num_groups = 0;
    for (const auto& ap : agg_parts_) num_groups += ap.keys.size();
    bool scalar_empty = num_groups == 0 && sink.group_pos.empty();
    uint64_t out_rows = scalar_empty ? 1 : num_groups;
    AppendCheckedUnitTuples(&trace_, out_rows);
    auto emit = [&](const Tuple& key, const AggGroupState& g) {
      std::vector<Value> vals;
      vals.reserve(sink.select.size());
      size_t di = 0;
      for (size_t si = 0; si < sink.select.size(); ++si) {
        switch (sink.select[si].kind) {
          case BoundSelectItem::Kind::kColumn:
            vals.push_back(
                key.at(static_cast<size_t>(sink.select_group_idx[si])));
            break;
          case BoundSelectItem::Kind::kCountStar:
            vals.push_back(Value(static_cast<int64_t>(g.count)));
            break;
          case BoundSelectItem::Kind::kCountDistinct:
            vals.push_back(Value(static_cast<int64_t>(g.distinct[di].size())));
            ++di;
            break;
        }
      }
      result_rows_.push_back(Tuple(std::move(vals)));
    };
    if (scalar_empty) {
      AggGroupState g;
      g.distinct.resize(sink.num_distinct_aggs);
      emit(Tuple(), g);
      return;
    }
    for (const auto& ap : agg_parts_) {
      for (size_t s = 0; s < ap.keys.size(); ++s) emit(ap.keys[s], ap.groups[s]);
    }
  }

  const VecPlan& vplan_;
  ExecContext* ctx_;
  VecExecOptions options_;
  IncrementalReplay replay_;
  double gate_ = 0.0;          // 0 = no timeout/budget to race against
  double pending_upper_ = 0.0;  // assembled-but-not-replayed upper bound
  bool doomed_ = false;
  AccessTrace trace_;
  std::vector<std::unique_ptr<JoinTable>> joins_;
  std::vector<size_t> probe_spill_bytes_;  // per join, Grace probe counter
  std::vector<AggPartition> agg_parts_;
  std::vector<Tuple> result_rows_;
};

}  // namespace

Result<QueryResult> ExecutePlanVectorized(const PhysicalPlan& plan,
                                          const ObjectResolver& resolver,
                                          ExecContext* ctx,
                                          const VecExecOptions& options) {
  // Dry-run compile against empty IN-sets first: an Unsupported plan must
  // be rejected before any charge lands on ctx, so the Volcano fallback
  // replays the query from scratch without double counting.
  {
    InSets probe_sets(plan.in_sets.size());
    auto probe = CompileVecPlan(plan, resolver, probe_sets);
    if (!probe.ok()) return probe.status();
  }

  // IN-subquery sets are real query work, charged live to ctx exactly as
  // the Volcano driver charges them (exec/plan_executor.cc).
  InSets in_sets;
  for (const auto& spec : plan.in_sets) {
    auto set = MaterializeInSet(spec, resolver, ctx);
    if (!set.ok()) {
      if (set.status().IsTimeout()) {
        QueryResult result;
        result.timed_out = true;
        result.sim_seconds = ctx->params().timeout_seconds;
        result.pages_read = ctx->pages_read();
        result.tuples_processed = ctx->tuples_processed();
        return result;
      }
      return set.status();
    }
    in_sets.push_back(set.TakeValue());
  }

  VecPlan vplan;
  TB_ASSIGN_OR_RETURN(vplan, CompileVecPlan(plan, resolver, in_sets));
  VecExecutor exec(vplan, ctx, options);
  return exec.Run();
}

}  // namespace vec
}  // namespace tabbench
