#include "exec/vec/morsel_scheduler.h"

#include <algorithm>
#include <atomic>

#include "util/mutex.h"

namespace tabbench {
namespace vec {

namespace {

/// State shared between the calling thread and helper jobs for one Run().
/// The configuration quadruple is const — set once before any helper is
/// spawned, immutable after — so helpers read it with no synchronization.
struct RunState {
  RunState(size_t n_in,
           const std::function<Status(size_t, MorselReport*)>* body_in,
           CancellationToken cancel_in, double abort_seconds_in)
      : n(n_in),
        body(body_in),
        cancel(std::move(cancel_in)),
        abort_seconds(abort_seconds_in) {}

  const size_t n;
  const std::function<Status(size_t, MorselReport*)>* const body;
  const CancellationToken cancel;
  const double abort_seconds;

  std::atomic<size_t> next{0};
  std::atomic<bool> stop{false};
  std::atomic<bool> cancelled{false};

  Mutex mu;
  double charge_sum TB_GUARDED_BY(mu) = 0.0;
  size_t error_index TB_GUARDED_BY(mu) = 0;
  Status error TB_GUARDED_BY(mu);
};

void ClaimLoop(RunState* st) {
  for (;;) {
    if (st->stop.load(std::memory_order_acquire)) return;
    if (st->cancel.cancelled()) {
      st->cancelled.store(true, std::memory_order_release);
      st->stop.store(true, std::memory_order_release);
      return;
    }
    size_t i = st->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= st->n) return;
    MorselReport report;
    Status s = (*st->body)(i, &report);
    MutexLock lock(&st->mu);
    st->charge_sum += report.charge_seconds_lower_bound;
    if (!s.ok() && (st->error.ok() || i < st->error_index)) {
      st->error = std::move(s);
      st->error_index = i;
      st->stop.store(true, std::memory_order_release);
    }
    if (st->abort_seconds > 0.0 && st->charge_sum > st->abort_seconds) {
      st->stop.store(true, std::memory_order_release);
    }
  }
}

}  // namespace

size_t MorselScheduler::Run(
    size_t n, const std::function<Status(size_t, MorselReport*)>& body,
    const Options& options, Status* error, bool* cancelled) {
  *error = Status::OK();
  *cancelled = false;
  if (n == 0) return 0;

  RunState st(n, &body, options.cancel, options.abort_seconds);

  size_t want = 0;
  if (options.pool != nullptr && n > 1) {
    want = options.max_helpers > 0 ? options.max_helpers
                                   : options.pool->num_workers();
    want = std::min(want, n - 1);
  }
  Latch done(want);
  for (size_t h = 0; h < want; ++h) {
    // Plain Submit: a full queue or a shut-down pool simply means this
    // helper never materializes (admission control wins over speed).
    Status s = options.pool->Submit([&st, &done] {
      ClaimLoop(&st);
      done.CountDown();
    });
    if (!s.ok()) done.CountDown();
  }

  ClaimLoop(&st);
  done.Wait();

  {
    MutexLock lock(&st.mu);
    *error = st.error;
  }
  *cancelled = st.cancelled.load(std::memory_order_acquire);
  return std::min(st.next.load(std::memory_order_acquire), n);
}

}  // namespace vec
}  // namespace tabbench
