#ifndef TABBENCH_EXEC_VEC_PIPELINE_H_
#define TABBENCH_EXEC_VEC_PIPELINE_H_

#include <string>
#include <vector>

#include "exec/operators.h"
#include "exec/plan.h"
#include "exec/plan_executor.h"
#include "types/value.h"
#include "util/status.h"

namespace tabbench {
namespace vec {

/// Hash-join partitions for the parallel build/merge step. A fixed count —
/// independent of thread budget — keeps group emission order identical
/// between serial and parallel vectorized runs.
inline constexpr size_t kVecPartitions = 32;

/// A non-breaking stage applied to every row flowing through a pipeline.
struct ProbeStage {
  enum class Kind { kHashProbe, kIndexNLProbe };
  Kind kind = Kind::kHashProbe;

  /// kHashProbe: which compiled hash join's table to probe.
  int join_id = -1;
  /// Probe-side key positions within the incoming row (right side of the
  /// plan's hash_keys).
  std::vector<int> probe_key_pos;

  /// kIndexNLProbe.
  const IndexInfo* index = nullptr;
  std::vector<SeekKeyPart> seek;
  std::vector<int> seek_outer_pos;
  bool index_only = false;

  /// Residuals evaluated on the joined row. Layouts match the Volcano
  /// operators: hash join concatenates build ++ probe (incoming) columns;
  /// index NL join concatenates outer (incoming) ++ inner columns.
  std::vector<CompiledPred> preds;
  /// Column types of the row this stage emits.
  std::vector<TypeId> out_types;
};

/// What a pipeline does with rows that reach its end.
struct Sink {
  enum class Kind { kCollectProject, kBuild, kAggregate };
  Kind kind = Kind::kCollectProject;

  /// kCollectProject: output positions (the root Project's select list).
  std::vector<size_t> positions;

  /// kBuild: hash join fed by this pipeline, plus the build-side key
  /// positions (left side of hash_keys).
  int join_id = -1;
  std::vector<int> build_key_pos;

  /// kAggregate (always the query root).
  std::vector<int> group_pos;
  std::vector<int> select_distinct_pos;
  std::vector<int> select_group_idx;
  std::vector<BoundSelectItem> select;
  size_t num_distinct_aggs = 0;
};

/// A pipeline: one batch source, a chain of probe stages, one sink.
struct Pipeline {
  enum class SourceKind { kHeapScan, kIndexScan };
  SourceKind source = SourceKind::kHeapScan;

  const HeapTable* heap = nullptr;   // kHeapScan
  const IndexInfo* index = nullptr;  // kIndexScan
  IndexKey prefix;                   // kIndexScan (empty = full scan)
  bool index_only = false;           // kIndexScan

  std::vector<CompiledPred> source_preds;
  std::vector<TypeId> source_types;

  std::vector<ProbeStage> stages;
  Sink sink;
};

/// A Plan tree compiled to pipelines in Volcano Open() order: hash-join
/// build pipelines first (deepest recursion first), then the pipeline that
/// feeds the root. Executing them in order with each pipeline's breaker
/// completed before the next starts reproduces the serial executor's charge
/// sequence.
struct VecPlan {
  std::vector<Pipeline> pipelines;
  size_t num_joins = 0;
  bool root_is_aggregate = false;
};

/// Compiles `plan` for the vectorized engine. Plans whose shape the engine
/// does not cover (aggregates below the root, residuals on root
/// project/aggregate nodes, unknown node kinds) return Unsupported — the
/// caller falls back to the Volcano executor, which handles everything.
/// `in_sets` must outlive the compiled plan (predicates point into it).
Result<VecPlan> CompileVecPlan(const PhysicalPlan& plan,
                               const ObjectResolver& resolver,
                               const InSets& in_sets);

}  // namespace vec
}  // namespace tabbench

#endif  // TABBENCH_EXEC_VEC_PIPELINE_H_
