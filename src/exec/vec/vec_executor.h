#ifndef TABBENCH_EXEC_VEC_VEC_EXECUTOR_H_
#define TABBENCH_EXEC_VEC_VEC_EXECUTOR_H_

#include <cstddef>

#include "exec/exec_context.h"
#include "exec/plan.h"
#include "exec/plan_executor.h"
#include "util/thread_pool.h"

namespace tabbench {
namespace vec {

/// Knobs for the morsel-driven vectorized executor.
struct VecExecOptions {
  /// Pool supplying helper threads for morsel phases. nullptr runs every
  /// morsel on the calling thread (serial vectorized execution).
  ThreadPool* pool = nullptr;
  /// Helper-job cap per morsel phase; 0 means pool->num_workers(). The
  /// calling thread always participates on top of this.
  size_t max_parallelism = 0;
  /// Heap pages per scan morsel.
  size_t morsel_pages = 32;
};

/// Executes `plan` with the morsel-driven, batch-vectorized engine:
/// pipelines pull column batches from page-granular morsels, filter them
/// with branch-free kernels, and run the surviving rows through probe
/// stages into breaker sinks — in parallel across morsels when a pool is
/// given.
///
/// Simulated-cost contract: the query's charges are recorded into per-morsel
/// trace fragments, assembled in canonical morsel order (exec/vec/
/// trace_merge.h), and applied to `ctx` through its live charge methods —
/// so simulated time, buffer-pool state, page/tuple counters, and
/// timeout/cancellation behavior are bit-identical to the Volcano executor
/// on the same plan, whether zero, one, or many helper threads ran.
///
/// Plans the engine does not cover return Status::Unsupported *before any
/// work is charged to ctx*, so the caller can fall back to ExecutePlan
/// transparently. Under injected faults the engine is attempt-granular: a
/// failing morsel phase surfaces its error without charging the partial
/// attempt (DESIGN.md §6e lists the deviations).
Result<QueryResult> ExecutePlanVectorized(const PhysicalPlan& plan,
                                          const ObjectResolver& resolver,
                                          ExecContext* ctx,
                                          const VecExecOptions& options);

}  // namespace vec
}  // namespace tabbench

#endif  // TABBENCH_EXEC_VEC_VEC_EXECUTOR_H_
