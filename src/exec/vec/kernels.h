#ifndef TABBENCH_EXEC_VEC_KERNELS_H_
#define TABBENCH_EXEC_VEC_KERNELS_H_

#include <cstdint>
#include <vector>

#include "exec/operators.h"
#include "exec/vec/column_batch.h"

namespace tabbench {
namespace vec {

/// Evaluates one compiled predicate over a whole batch, ANDing the result
/// into `pass` (one flag per row). The hot paths — int/double equality
/// against a literal or another column — run branch-free over the typed
/// arrays; string and IN-set predicates fall back to per-row compares.
/// Predicate semantics match CompiledPred::Eval exactly (NULL == NULL is
/// true, Value::Compare equality).
void AndPredIntoPass(const ColumnBatch& batch, const CompiledPred& pred,
                     std::vector<uint8_t>* pass);

/// Evaluates all predicates, producing the pass flags for a batch.
void FilterBatch(const ColumnBatch& batch,
                 const std::vector<CompiledPred>& preds,
                 std::vector<uint8_t>* pass);

/// Compacts pass flags into a selection vector, branch-free.
void PassToSelection(const std::vector<uint8_t>& pass, SelectionVector* sel);

}  // namespace vec
}  // namespace tabbench

#endif  // TABBENCH_EXEC_VEC_KERNELS_H_
