#ifndef TABBENCH_EXEC_VEC_COLUMN_BATCH_H_
#define TABBENCH_EXEC_VEC_COLUMN_BATCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/tuple.h"
#include "types/value.h"

namespace tabbench {
namespace vec {

/// Rows a batch reader decodes per step. One morsel holds several batches;
/// the value bounds working-set size, not correctness.
inline constexpr size_t kVecBatchRows = 1024;

/// Row indices that survived a filter kernel, in ascending order.
using SelectionVector = std::vector<uint32_t>;

/// One column of a batch: type-specialized storage plus a null flag per
/// row. Ints and doubles live in flat arrays so filter kernels compare
/// machine words instead of dispatching through Value's variant; strings
/// keep their std::string slots so capacity is reused across refills.
struct Column {
  TypeId type = TypeId::kInt;
  std::vector<uint8_t> nulls;  // 1 = NULL
  std::vector<int64_t> ints;
  std::vector<double> doubles;
  std::vector<std::string> strings;

  size_t size() const { return nulls.size(); }

  void Clear() {
    nulls.clear();
    ints.clear();
    doubles.clear();
    strings.clear();
  }

  void AppendNull() {
    nulls.push_back(1);
    switch (type) {
      case TypeId::kInt:
        ints.push_back(0);
        break;
      case TypeId::kDouble:
        doubles.push_back(0.0);
        break;
      case TypeId::kString:
        strings.emplace_back();
        break;
    }
  }

  void AppendInt(int64_t v) {
    nulls.push_back(0);
    ints.push_back(v);
  }
  void AppendDouble(double v) {
    nulls.push_back(0);
    doubles.push_back(v);
  }
  void AppendString(const char* data, size_t len) {
    nulls.push_back(0);
    strings.emplace_back(data, len);
  }

  void AppendValue(const Value& v) {
    if (v.is_null()) {
      AppendNull();
      return;
    }
    switch (type) {
      case TypeId::kInt:
        AppendInt(v.as_int());
        break;
      case TypeId::kDouble:
        AppendDouble(v.as_double());
        break;
      case TypeId::kString:
        AppendString(v.as_string().data(), v.as_string().size());
        break;
    }
  }

  Value GetValue(size_t row) const {
    if (nulls[row]) return Value();
    switch (type) {
      case TypeId::kInt:
        return Value(ints[row]);
      case TypeId::kDouble:
        return Value(doubles[row]);
      case TypeId::kString:
        return Value(strings[row]);
    }
    return Value();
  }

  /// Equality with Value's semantics: NULL == NULL, NULL != non-null.
  bool EqualsValue(size_t row, const Value& v) const {
    if (nulls[row]) return v.is_null();
    if (v.is_null()) return false;
    switch (type) {
      case TypeId::kInt:
        return ints[row] == v.as_int();
      case TypeId::kDouble:
        return doubles[row] == v.as_double();
      case TypeId::kString:
        return strings[row] == v.as_string();
    }
    return false;
  }

  bool EqualsColumn(size_t row, const Column& o, size_t orow) const {
    if (nulls[row] || o.nulls[orow]) return nulls[row] && o.nulls[orow];
    switch (type) {
      case TypeId::kInt:
        return ints[row] == o.ints[orow];
      case TypeId::kDouble:
        return doubles[row] == o.doubles[orow];
      case TypeId::kString:
        return strings[row] == o.strings[orow];
    }
    return false;
  }

  /// Value::ByteSize of the row without materializing the Value.
  size_t ValueByteSize(size_t row) const {
    if (nulls[row]) return 1;
    switch (type) {
      case TypeId::kInt:
      case TypeId::kDouble:
        return 8;
      case TypeId::kString:
        return 2 + strings[row].size();
    }
    return 1;
  }
};

/// A batch of rows in columnar layout. Doubles as a growable row store
/// (morsel outputs, hash-join build payloads): Append* never shrinks
/// capacity, Clear() keeps it.
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(const std::vector<TypeId>& types) { Reset(types); }

  void Reset(const std::vector<TypeId>& types) {
    cols_.resize(types.size());
    for (size_t i = 0; i < types.size(); ++i) {
      cols_[i].type = types[i];
      cols_[i].Clear();
    }
    rows_ = 0;
  }

  void Clear() {
    for (auto& c : cols_) c.Clear();
    rows_ = 0;
  }

  size_t num_cols() const { return cols_.size(); }
  size_t num_rows() const { return rows_; }
  Column& col(size_t i) { return cols_[i]; }
  const Column& col(size_t i) const { return cols_[i]; }

  /// Callers append one value per column, then seal the row.
  void FinishRow() { ++rows_; }

  void AppendTupleRow(const Tuple& t) {
    for (size_t i = 0; i < cols_.size(); ++i) cols_[i].AppendValue(t.at(i));
    FinishRow();
  }

  /// Copies row `row` of this batch onto the end of `out` (all columns).
  void AppendRowTo(size_t row, std::vector<Value>* out) const {
    for (const auto& c : cols_) out->push_back(c.GetValue(row));
  }

  Tuple RowAsTuple(size_t row) const {
    std::vector<Value> vals;
    vals.reserve(cols_.size());
    AppendRowTo(row, &vals);
    return Tuple(std::move(vals));
  }

  /// Sum of Value::ByteSize over the row — matches Tuple::ByteSize of the
  /// materialized row, byte for byte (spill accounting needs this).
  size_t RowByteSize(size_t row) const {
    size_t n = 0;
    for (const auto& c : cols_) n += c.ValueByteSize(row);
    return n;
  }

  std::vector<TypeId> types() const {
    std::vector<TypeId> out;
    out.reserve(cols_.size());
    for (const auto& c : cols_) out.push_back(c.type);
    return out;
  }

 private:
  std::vector<Column> cols_;
  size_t rows_ = 0;
};

}  // namespace vec
}  // namespace tabbench

#endif  // TABBENCH_EXEC_VEC_COLUMN_BATCH_H_
