#ifndef TABBENCH_EXEC_VEC_MORSEL_SCHEDULER_H_
#define TABBENCH_EXEC_VEC_MORSEL_SCHEDULER_H_

#include <cstddef>
#include <functional>

#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace tabbench {
namespace vec {

/// Work a morsel reports back so the scheduler can stop a doomed query
/// early: simulated seconds its fragment is guaranteed to cost on replay
/// (pure charges; buffer-pool misses only add to it).
struct MorselReport {
  double charge_seconds_lower_bound = 0.0;
};

/// Runs `body(morsel_index, report)` for every morsel in [0, n).
///
/// Self-scheduling over a shared atomic cursor: the *calling thread* claims
/// morsels in index order, and up to `max_helpers` helper jobs submitted to
/// `pool` steal from the same cursor. Helpers are pure acceleration —
/// Submit() bouncing off the pool's admission control (queue full, unrelated
/// load) just means fewer helpers, never deadlock and never a changed
/// result, so intra-query parallelism respects the service's admission
/// control by construction.
///
/// Stop conditions, checked before every claim:
///  - `cancel` revoked → no new morsels are dispatched; in-flight morsels
///    drain before Run returns (the Session force-cancel contract);
///  - a morsel returned an error → same drain, and the error of the
///    *lowest* morsel index is returned (deterministic under any
///    interleaving);
///  - the accumulated lower-bound charge clock passed `abort_seconds`
///    (doomed query; > 0 enables) → Run returns OK and the executor's
///    deterministic sequential gate decides the actual trace cut.
///
/// Because claims are handed out in index order and every claimed morsel
/// completes, the completed set is always a prefix [0, k] of the morsel
/// list — the property the deterministic trace assembly relies on.
class MorselScheduler {
 public:
  struct Options {
    ThreadPool* pool = nullptr;  // nullptr → run everything on the caller
    size_t max_helpers = 0;      // 0 → pool->num_workers()
    CancellationToken cancel;
    double abort_seconds = 0.0;
  };

  /// Returns the number of morsels completed (always a prefix; == n when
  /// nothing stopped early). Sets *error to the winning morsel error, if
  /// any; *cancelled when the token stopped dispatch.
  static size_t Run(size_t n,
                    const std::function<Status(size_t, MorselReport*)>& body,
                    const Options& options, Status* error, bool* cancelled);
};

}  // namespace vec
}  // namespace tabbench

#endif  // TABBENCH_EXEC_VEC_MORSEL_SCHEDULER_H_
