#include "exec/plan_validate.h"

#include "util/strings.h"

namespace tabbench {

namespace {

Status ValidateResiduals(const PlanNode& node, size_t num_in_sets) {
  for (const auto& p : node.residual) {
    if (node.FindSlot(p.a) < 0) {
      return Status::Internal("residual slot (" + std::to_string(p.a.rel) +
                              "," + std::to_string(p.a.col) +
                              ") not in node output");
    }
    switch (p.kind) {
      case ResidualPred::Kind::kColEqCol:
        if (node.FindSlot(p.b) < 0) {
          return Status::Internal("residual rhs slot not in node output");
        }
        break;
      case ResidualPred::Kind::kInSet:
        if (p.in_set < 0 ||
            p.in_set >= static_cast<int>(num_in_sets)) {
          return Status::Internal(
              StrFormat("residual IN-set %d out of range (%zu sets)",
                        p.in_set, num_in_sets));
        }
        break;
      case ResidualPred::Kind::kColEqLit:
        break;
    }
  }
  return Status::OK();
}

Status ValidateNode(const PlanNode& node, size_t num_in_sets) {
  for (const auto& c : node.children) {
    if (c == nullptr) return Status::Internal("null child node");
    TB_RETURN_IF_ERROR(ValidateNode(*c, num_in_sets));
  }
  TB_RETURN_IF_ERROR(ValidateResiduals(node, num_in_sets));

  switch (node.kind) {
    case PlanNode::Kind::kSeqScan: {
      if (!node.children.empty()) {
        return Status::Internal("SeqScan must be a leaf");
      }
      if (node.object.empty()) {
        return Status::Internal("SeqScan without an object");
      }
      if (node.output_cols.empty()) {
        return Status::Internal("SeqScan with empty output");
      }
      break;
    }
    case PlanNode::Kind::kIndexScan: {
      if (!node.children.empty()) {
        return Status::Internal("IndexScan must be a leaf");
      }
      if (node.index_name.empty()) {
        return Status::Internal("IndexScan without an index");
      }
      for (const auto& part : node.seek) {
        if (part.from_outer) {
          return Status::Internal("leaf IndexScan cannot probe outer slots");
        }
      }
      break;
    }
    case PlanNode::Kind::kHashJoin: {
      if (node.children.size() != 2) {
        return Status::Internal("HashJoin needs exactly 2 children");
      }
      for (const auto& [l, r] : node.hash_keys) {
        if (node.children[0]->FindSlot(l) < 0) {
          return Status::Internal("hash key not in build child");
        }
        if (node.children[1]->FindSlot(r) < 0) {
          return Status::Internal("hash key not in probe child");
        }
      }
      // Output must be the concatenation of the children's outputs.
      size_t expect = node.children[0]->output_cols.size() +
                      node.children[1]->output_cols.size();
      if (node.output_cols.size() != expect) {
        return Status::Internal("HashJoin output arity mismatch");
      }
      break;
    }
    case PlanNode::Kind::kIndexNLJoin: {
      if (node.children.size() != 1) {
        return Status::Internal("IndexNLJoin needs exactly 1 child");
      }
      if (node.index_name.empty()) {
        return Status::Internal("IndexNLJoin without an inner index");
      }
      bool any_outer = false;
      for (const auto& part : node.seek) {
        if (!part.from_outer) continue;
        any_outer = true;
        if (node.children[0]->FindSlot(part.outer) < 0) {
          return Status::Internal("NLJ seek slot not in outer child");
        }
      }
      if (!any_outer) {
        return Status::Internal(
            "IndexNLJoin without an outer-bound seek column");
      }
      if (node.output_cols.size() <= node.children[0]->output_cols.size()) {
        return Status::Internal("IndexNLJoin output must extend the outer");
      }
      break;
    }
    case PlanNode::Kind::kHashAggregate: {
      if (node.children.size() != 1) {
        return Status::Internal("HashAggregate needs exactly 1 child");
      }
      if (node.select.empty()) {
        return Status::Internal("HashAggregate with empty select list");
      }
      const PlanNode& c = *node.children[0];
      for (const auto& g : node.group_by) {
        if (c.FindSlot(SlotRef{g.rel, g.col}) < 0) {
          return Status::Internal("group-by slot not in child output");
        }
      }
      for (const auto& s : node.select) {
        if (s.kind == BoundSelectItem::Kind::kCountDistinct &&
            c.FindSlot(SlotRef{s.column.rel, s.column.col}) < 0) {
          return Status::Internal("COUNT DISTINCT slot not in child output");
        }
      }
      break;
    }
    case PlanNode::Kind::kProject: {
      if (node.children.size() != 1) {
        return Status::Internal("Project needs exactly 1 child");
      }
      const PlanNode& c = *node.children[0];
      for (const auto& s : node.select) {
        if (s.kind != BoundSelectItem::Kind::kColumn) {
          return Status::Internal("Project with aggregate select item");
        }
        if (c.FindSlot(SlotRef{s.column.rel, s.column.col}) < 0) {
          return Status::Internal("projected slot not in child output");
        }
      }
      break;
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidatePlan(const PhysicalPlan& plan) {
  if (plan.root == nullptr) return Status::Internal("plan without a root");
  for (const auto& spec : plan.in_sets) {
    if (spec.index_name.empty() && spec.column_pos < 0) {
      return Status::Internal("IN-set spec lacks both index and position");
    }
  }
  return ValidateNode(*plan.root, plan.in_sets.size());
}

}  // namespace tabbench
