#include "exec/exec_context.h"

// Header-only implementation; this translation unit exists so the exec
// library has a stable archive member for the context and its defaults.

namespace tabbench {}  // namespace tabbench
