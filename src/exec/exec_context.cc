#include "exec/exec_context.h"

namespace tabbench {

ReplayOutcome ReplayTrace(const AccessTrace& trace, BufferPool* pool,
                          const CostParams& params, double start_seconds) {
  ReplayOutcome out;
  double time = start_seconds;
  for (const TraceEvent& ev : trace) {
    switch (ev.kind) {
      case TraceEvent::Kind::kTouchSeq:
        if (!pool->Touch(ev.arg)) {
          ++out.pages_read;
          time += params.page_io_seconds;
        }
        break;
      case TraceEvent::Kind::kTouchRandom:
        if (!pool->Touch(ev.arg)) {
          ++out.pages_read;
          time += params.random_io_seconds;
        }
        break;
      case TraceEvent::Kind::kIoPages:
        out.pages_read += ev.arg;
        time += static_cast<double>(ev.arg) * params.page_io_seconds;
        break;
      case TraceEvent::Kind::kTuples:
        time += static_cast<double>(ev.arg) * params.cpu_tuple_seconds;
        break;
      case TraceEvent::Kind::kHashOps:
        time += static_cast<double>(ev.arg) * params.cpu_hash_seconds;
        break;
      case TraceEvent::Kind::kTimeoutCheck:
        if (time > params.timeout_seconds) {
          // A live run aborts at this check: the timing is clamped and no
          // further page is touched, leaving the pool in this exact state.
          out.sim_seconds = params.timeout_seconds;
          out.timed_out = true;
          return out;
        }
        break;
      case TraceEvent::Kind::kUnitTuplesChecked:
        // The executor's per-tuple loop: the same add-then-compare the live
        // run performed, repetition by repetition, so the replay trips (or
        // doesn't) at exactly the same tuple. 1.0 * c == c exactly, so the
        // unit charge is the plain parameter.
        for (uint64_t k = 0; k < ev.arg; ++k) {
          time += params.cpu_tuple_seconds;
          if (time > params.timeout_seconds) {
            out.sim_seconds = params.timeout_seconds;
            out.timed_out = true;
            return out;
          }
        }
        break;
      case TraceEvent::Kind::kUnitHashChecked:
        for (uint64_t k = 0; k < ev.arg; ++k) {
          time += params.cpu_hash_seconds;
          if (time > params.timeout_seconds) {
            out.sim_seconds = params.timeout_seconds;
            out.timed_out = true;
            return out;
          }
        }
        break;
    }
  }
  out.sim_seconds = time;
  return out;
}

}  // namespace tabbench
