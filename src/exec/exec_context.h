#ifndef TABBENCH_EXEC_EXEC_CONTEXT_H_
#define TABBENCH_EXEC_EXEC_CONTEXT_H_

#include <cstdint>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/status.h"
#include "util/trace_event.h"

namespace tabbench {

/// Cost-model parameters shared by the executor (which *charges* them to
/// simulated time) and the optimizer (which *predicts* them).
///
/// The defaults reproduce the paper's hardware envelope at our 1/100 data
/// scale: databases are scaled down ~100x, so the per-page I/O charge is
/// scaled up 100x from a 2005-era 0.5 ms sequential page read. A full scan
/// of the scaled Neighboring_seq (787 K rows) then costs the same simulated
/// minutes the paper's 78.7 M-row scans cost in wall-clock, and the 30-minute
/// timeout bites the same queries. See DESIGN.md §3 (substitutions).
struct CostParams {
  /// Simulated seconds per *sequential* page fetched from disk (buffer-pool
  /// miss during a scan). This charge is scaled with the data (DESIGN.md
  /// §3): one scaled page stands for `scale_inverse` real pages of
  /// streaming.
  double page_io_seconds = 0.05;
  /// Simulated seconds per *random* page fetched from disk (index descent,
  /// leaf probe, heap row fetch). This is a real 2005 seek+rotate and is
  /// NOT scaled — a probe touches O(height) pages regardless of how the
  /// data was scaled down.
  double random_io_seconds = 0.006;
  /// Simulated seconds per tuple passing through an operator.
  double cpu_tuple_seconds = 2e-6;
  /// Extra simulated seconds per hash-table insert or probe.
  double cpu_hash_seconds = 1e-6;
  /// Memory available to a single hash table before it spills, in pages.
  /// Beyond this, every extra page of hash data charges a write + a read.
  size_t work_mem_pages = 256;
  /// Per-query timeout: "a timeout limit of 30 minutes is set for running
  /// each query" (Section 4.1).
  double timeout_seconds = 1800.0;
};

/// TraceEvent / AccessTrace live in util/trace_event.h (the run journal
/// serializes them from below this layer); ExecContext records them and
/// ReplayTrace consumes them here.

/// Replays a recorded trace against `pool`, applying the same charges in
/// the same order (and the same floating-point operation shapes) the live
/// executor would, and aborting at the first recorded timeout check whose
/// accumulated simulated time exceeds `params.timeout_seconds`. The pool is
/// left exactly as a live (timeout-enforced) execution would leave it.
struct ReplayOutcome {
  double sim_seconds = 0.0;  // clamped to the timeout when timed_out
  uint64_t pages_read = 0;
  bool timed_out = false;
};
/// `start_seconds` seeds the replay clock: a retried attempt resumes the
/// query's cumulative simulated time (prior attempts + backoff charges), and
/// the replay must apply its FP additions to that same running value to stay
/// bit-identical with the serial run. The timeout compares against the
/// cumulative clock, so it bounds the whole retry loop, not one attempt.
ReplayOutcome ReplayTrace(const AccessTrace& trace, BufferPool* pool,
                          const CostParams& params, double start_seconds);
inline ReplayOutcome ReplayTrace(const AccessTrace& trace, BufferPool* pool,
                                 const CostParams& params) {
  return ReplayTrace(trace, pool, params, 0.0);
}

/// Per-query execution state: routes every page access through the buffer
/// pool, accumulates simulated elapsed time, and trips the timeout.
///
/// Concurrency contract: an ExecContext (and the BufferPool it routes to)
/// belongs to one thread at a time. Concurrent query execution gives every
/// session its *own* context + pool view over the shared read-only storage
/// (see src/service/session.h); the engine's shared pool is only ever
/// advanced single-threaded.
class ExecContext {
 public:
  ExecContext(PageStore* store, BufferPool* pool, CostParams params)
      : store_(store), pool_(pool), params_(params) {}

  /// Declares a *sequential* access to `id`: LRU bookkeeping plus a
  /// streaming I/O charge on miss.
  void TouchPage(PageId id) {
    if (trace_) trace_->push_back({TraceEvent::Kind::kTouchSeq, id});
    if (!pool_->Touch(id)) {
      ++pages_read_;
      sim_time_ += params_.page_io_seconds;
    }
  }

  /// Declares a *random* access to `id` (probe, fetch): LRU bookkeeping
  /// plus a seek-priced charge on miss.
  void TouchPageRandom(PageId id) {
    if (trace_) trace_->push_back({TraceEvent::Kind::kTouchRandom, id});
    if (!pool_->Touch(id)) {
      ++pages_read_;
      sim_time_ += params_.random_io_seconds;
    }
  }

  /// Charges pure I/O without buffer-pool interaction (spill writes/reads).
  void ChargeIoPages(uint64_t n) {
    if (trace_) trace_->push_back({TraceEvent::Kind::kIoPages, n});
    pages_read_ += n;
    sim_time_ += static_cast<double>(n) * params_.page_io_seconds;
  }

  void ChargeTuples(uint64_t n) {
    if (trace_) trace_->push_back({TraceEvent::Kind::kTuples, n});
    tuples_ += n;
    sim_time_ += static_cast<double>(n) * params_.cpu_tuple_seconds;
  }

  void ChargeHashOps(uint64_t n) {
    if (trace_) trace_->push_back({TraceEvent::Kind::kHashOps, n});
    sim_time_ += static_cast<double>(n) * params_.cpu_hash_seconds;
  }

  bool TimedOut() const {
    return enforce_timeout_ && sim_time_ > params_.timeout_seconds;
  }

  /// OK; Cancelled once the context's token is revoked; Timeout once the
  /// simulated clock passes the limit. Every call site is a safe abort
  /// point, which makes this the cancellation poll — and the surfacing
  /// point for faults latched mid-operation by TB_FAULT_TRIGGER sites.
  /// Timeout is tested before the latched fault, so a query that would
  /// time out anyway reports the timeout in serial and replayed runs alike.
  Status CheckTimeout() const {
    if (trace_) RecordCheck();
    if (cancel_.cancelled()) return Status::Cancelled("query cancelled");
    if (TimedOut()) return Status::Timeout("query exceeded timeout");
    if (record_budget_ > 0.0 && sim_time_ > record_budget_) {
      return Status::Timeout("record budget exceeded");
    }
    if (FaultInjectionArmed()) {
      Status injected = FaultRegistry::TakePending();
      if (!injected.ok()) return injected;
    }
    return Status::OK();
  }

  /// Advances simulated time by a retry backoff delay. Deliberately NOT a
  /// trace event: the parallel runner re-applies backoff at attempt
  /// boundaries via ReplayTrace's start_seconds, so recording it here would
  /// double-charge the replay.
  void ChargeBackoff(double seconds) { sim_time_ += seconds; }

  /// Attaches a cooperative cancellation token; CheckTimeout() fails with
  /// Cancelled once it is revoked.
  void set_cancellation_token(CancellationToken token) {
    cancel_ = std::move(token);
  }

  /// Directs every subsequent charge into `trace` (nullptr stops
  /// recording). Recording does not change any charge or timing.
  void set_trace(AccessTrace* trace) { trace_ = trace; }

  /// When disabled, the timeout never trips (CheckTimeout still records its
  /// abort points into the trace). Trace-recording runs disable enforcement
  /// so the *full* charge sequence is captured; the replay re-applies the
  /// timeout at the recorded check points.
  void set_enforce_timeout(bool enforce) { enforce_timeout_ = enforce; }

  /// Aborts execution (as a timeout) once simulated time passes `budget`,
  /// independent of enforce_timeout(). Trace-recording runs use this to
  /// avoid executing doomed queries to completion: an LRU replay of the
  /// trace from *any* starting pool saves at most `pool capacity` first-
  /// touch hits versus the cold recording run, so once the cold clock is
  /// past timeout + capacity * max_io_cost every replay is guaranteed to
  /// trip within the recorded prefix (see RunWorkloadParallel). 0 disables.
  void set_record_budget(double budget) { record_budget_ = budget; }

  double sim_time() const { return sim_time_; }
  uint64_t pages_read() const { return pages_read_; }
  uint64_t tuples_processed() const { return tuples_; }
  bool enforce_timeout() const { return enforce_timeout_; }
  double record_budget() const { return record_budget_; }
  const CancellationToken& cancellation_token() const { return cancel_; }
  const CostParams& params() const { return params_; }
  PageStore* store() const { return store_; }
  BufferPool* pool() const { return pool_; }

 private:
  /// Trace bookkeeping for CheckTimeout(). Two rewrites keep traces small
  /// without changing what a replay computes:
  ///  - a check right after a single-unit tuple/hash charge folds the pair
  ///    into a counted kUnitTuplesChecked/kUnitHashChecked event (the
  ///    executor charges per tuple, so these runs dominate trace volume);
  ///  - consecutive checks with no intervening charge collapse — and a
  ///    coalesced event already ends on a check, so one directly after it
  ///    is dropped too. Comparisons repeat bit-identically; no FP state
  ///    changes between them.
  void RecordCheck() const {
    if (!trace_->empty()) {
      TraceEvent& back = trace_->back();
      if (back.kind == TraceEvent::Kind::kTimeoutCheck ||
          back.kind == TraceEvent::Kind::kUnitTuplesChecked ||
          back.kind == TraceEvent::Kind::kUnitHashChecked) {
        return;
      }
      if (back.arg == 1 && (back.kind == TraceEvent::Kind::kTuples ||
                            back.kind == TraceEvent::Kind::kHashOps)) {
        TraceEvent::Kind merged = back.kind == TraceEvent::Kind::kTuples
                                      ? TraceEvent::Kind::kUnitTuplesChecked
                                      : TraceEvent::Kind::kUnitHashChecked;
        trace_->pop_back();
        if (!trace_->empty() && trace_->back().kind == merged) {
          ++trace_->back().arg;
        } else {
          trace_->push_back({merged, 1});
        }
        return;
      }
    }
    trace_->push_back({TraceEvent::Kind::kTimeoutCheck, 0});
  }

  PageStore* store_;
  BufferPool* pool_;
  CostParams params_;
  CancellationToken cancel_;
  AccessTrace* trace_ = nullptr;
  bool enforce_timeout_ = true;
  double record_budget_ = 0.0;
  double sim_time_ = 0.0;
  uint64_t pages_read_ = 0;
  uint64_t tuples_ = 0;
};

}  // namespace tabbench

#endif  // TABBENCH_EXEC_EXEC_CONTEXT_H_
