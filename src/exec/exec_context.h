#ifndef TABBENCH_EXEC_EXEC_CONTEXT_H_
#define TABBENCH_EXEC_EXEC_CONTEXT_H_

#include <cstdint>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace tabbench {

/// Cost-model parameters shared by the executor (which *charges* them to
/// simulated time) and the optimizer (which *predicts* them).
///
/// The defaults reproduce the paper's hardware envelope at our 1/100 data
/// scale: databases are scaled down ~100x, so the per-page I/O charge is
/// scaled up 100x from a 2005-era 0.5 ms sequential page read. A full scan
/// of the scaled Neighboring_seq (787 K rows) then costs the same simulated
/// minutes the paper's 78.7 M-row scans cost in wall-clock, and the 30-minute
/// timeout bites the same queries. See DESIGN.md §3 (substitutions).
struct CostParams {
  /// Simulated seconds per *sequential* page fetched from disk (buffer-pool
  /// miss during a scan). This charge is scaled with the data (DESIGN.md
  /// §3): one scaled page stands for `scale_inverse` real pages of
  /// streaming.
  double page_io_seconds = 0.05;
  /// Simulated seconds per *random* page fetched from disk (index descent,
  /// leaf probe, heap row fetch). This is a real 2005 seek+rotate and is
  /// NOT scaled — a probe touches O(height) pages regardless of how the
  /// data was scaled down.
  double random_io_seconds = 0.006;
  /// Simulated seconds per tuple passing through an operator.
  double cpu_tuple_seconds = 2e-6;
  /// Extra simulated seconds per hash-table insert or probe.
  double cpu_hash_seconds = 1e-6;
  /// Memory available to a single hash table before it spills, in pages.
  /// Beyond this, every extra page of hash data charges a write + a read.
  size_t work_mem_pages = 256;
  /// Per-query timeout: "a timeout limit of 30 minutes is set for running
  /// each query" (Section 4.1).
  double timeout_seconds = 1800.0;
};

/// Per-query execution state: routes every page access through the buffer
/// pool, accumulates simulated elapsed time, and trips the timeout.
class ExecContext {
 public:
  ExecContext(PageStore* store, BufferPool* pool, CostParams params)
      : store_(store), pool_(pool), params_(params) {}

  /// Declares a *sequential* access to `id`: LRU bookkeeping plus a
  /// streaming I/O charge on miss.
  void TouchPage(PageId id) {
    if (!pool_->Touch(id)) {
      ++pages_read_;
      sim_time_ += params_.page_io_seconds;
    }
  }

  /// Declares a *random* access to `id` (probe, fetch): LRU bookkeeping
  /// plus a seek-priced charge on miss.
  void TouchPageRandom(PageId id) {
    if (!pool_->Touch(id)) {
      ++pages_read_;
      sim_time_ += params_.random_io_seconds;
    }
  }

  /// Charges pure I/O without buffer-pool interaction (spill writes/reads).
  void ChargeIoPages(uint64_t n) {
    pages_read_ += n;
    sim_time_ += static_cast<double>(n) * params_.page_io_seconds;
  }

  void ChargeTuples(uint64_t n) {
    tuples_ += n;
    sim_time_ += static_cast<double>(n) * params_.cpu_tuple_seconds;
  }

  void ChargeHashOps(uint64_t n) {
    sim_time_ += static_cast<double>(n) * params_.cpu_hash_seconds;
  }

  bool TimedOut() const { return sim_time_ > params_.timeout_seconds; }

  /// OK, or Timeout once the simulated clock passes the limit.
  Status CheckTimeout() const {
    if (TimedOut()) return Status::Timeout("query exceeded timeout");
    return Status::OK();
  }

  double sim_time() const { return sim_time_; }
  uint64_t pages_read() const { return pages_read_; }
  uint64_t tuples_processed() const { return tuples_; }
  const CostParams& params() const { return params_; }
  PageStore* store() const { return store_; }
  BufferPool* pool() const { return pool_; }

 private:
  PageStore* store_;
  BufferPool* pool_;
  CostParams params_;
  double sim_time_ = 0.0;
  uint64_t pages_read_ = 0;
  uint64_t tuples_ = 0;
};

}  // namespace tabbench

#endif  // TABBENCH_EXEC_EXEC_CONTEXT_H_
