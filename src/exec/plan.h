#ifndef TABBENCH_EXEC_PLAN_H_
#define TABBENCH_EXEC_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/binder.h"
#include "types/value.h"

namespace tabbench {

/// A column of an intermediate result, identified by the query's relation
/// occurrence and the column position within that base table.
struct SlotRef {
  int rel = -1;
  int col = -1;

  bool operator==(const SlotRef& o) const {
    return rel == o.rel && col == o.col;
  }
};

/// Specification of an `IN (SELECT c FROM T GROUP BY c HAVING COUNT(*)..k)`
/// value set. The executor materializes each spec once per query (a
/// frequency scan of T) and residual predicates reference it by position.
struct InSetSpec {
  std::string table;
  std::string column;
  /// Position of `column` within the table's row layout (heap-scan path).
  int column_pos = -1;
  char cmp = '<';
  int64_t k = 0;
  /// When set by the optimizer, the frequency scan runs index-only over this
  /// index instead of scanning the heap (cheaper when the configuration has
  /// a single-column index on `column` — the 1C effect).
  std::string index_name;
};

/// A predicate evaluated on a node's output rows.
struct ResidualPred {
  enum class Kind { kColEqLit, kColEqCol, kInSet };
  Kind kind = Kind::kColEqLit;
  SlotRef a;
  SlotRef b;       // kColEqCol
  Value literal;   // kColEqLit
  int in_set = -1; // kInSet: index into PhysicalPlan::in_sets
};

/// One component of an index-seek prefix: the value probed into the next
/// index column comes either from a literal or from the outer row of an
/// index nested-loop join.
struct SeekKeyPart {
  bool from_outer = false;
  Value literal;    // when !from_outer
  SlotRef outer;    // when from_outer
};

/// A node of a physical plan tree. Kinds:
///   kSeqScan       leaf; full scan of a base table or materialized view
///   kIndexScan     leaf; B+-tree probe with a literal prefix, then heap
///                  fetches (or none when `index_only`)
///   kHashJoin      children[0] build, children[1] probe
///   kIndexNLJoin   children[0] outer; inner = index probe per outer row
///   kHashAggregate children[0]; GROUP BY + COUNT(*) / COUNT(DISTINCT)
///   kProject       children[0]; final projection for non-aggregate queries
struct PlanNode {
  enum class Kind {
    kSeqScan,
    kIndexScan,
    kHashJoin,
    kIndexNLJoin,
    kHashAggregate,
    kProject,
  };
  Kind kind = Kind::kSeqScan;
  std::vector<std::unique_ptr<PlanNode>> children;

  /// Output columns, in order. Scans list the base table's columns (or the
  /// view's projection); joins concatenate left then right.
  std::vector<SlotRef> output_cols;

  /// Predicates applied to this node's output (after scan/join/probe).
  std::vector<ResidualPred> residual;

  // --- scans ---
  /// Physical object scanned: base-table name or view name.
  std::string object;
  /// True when `object` is a materialized view.
  bool is_view = false;
  /// Index used by kIndexScan / kIndexNLJoin (inner side).
  std::string index_name;
  /// Seek prefix for the index (literals for kIndexScan; may mix outer
  /// references for kIndexNLJoin).
  std::vector<SeekKeyPart> seek;
  /// kIndexScan only: skip heap fetches; outputs exactly the index key
  /// columns (`output_cols` then maps index key parts to slots).
  bool index_only = false;

  // --- kHashJoin ---
  /// Equality key pairs: (left slot in children[0], right slot in
  /// children[1]).
  std::vector<std::pair<SlotRef, SlotRef>> hash_keys;

  // --- kHashAggregate / kProject ---
  /// Select-list shape for the root node.
  std::vector<BoundSelectItem> select;
  std::vector<BoundColumn> group_by;

  /// Optimizer's cardinality/cost annotations (for EXPLAIN and tests).
  double est_rows = 0.0;
  double est_cost = 0.0;
  /// Measured output rows, filled by ExecutePlanAnalyze (-1 = not run).
  int64_t actual_rows = -1;

  /// Position of `slot` in output_cols, or -1.
  int FindSlot(const SlotRef& slot) const;

  /// Pretty-printed operator tree (EXPLAIN).
  std::string ToString(int indent = 0) const;
};

/// A complete physical plan: the operator tree plus the IN-set specs it
/// references.
struct PhysicalPlan {
  std::unique_ptr<PlanNode> root;
  std::vector<InSetSpec> in_sets;
  double est_cost = 0.0;

  std::string ToString() const;
};

}  // namespace tabbench

#endif  // TABBENCH_EXEC_PLAN_H_
